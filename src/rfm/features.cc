#include "rfm/features.h"

#include <algorithm>
#include <cassert>

#include "common/macros.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace churnlab {
namespace rfm {

RfmFeatureMatrix::RfmFeatureMatrix(std::vector<retail::CustomerId> customers,
                                   int32_t num_windows, size_t num_features)
    : customers_(std::move(customers)),
      num_windows_(num_windows),
      num_features_(num_features) {
  assert(num_windows >= 0);
  values_.assign(customers_.size() * static_cast<size_t>(num_windows_) *
                     num_features_,
                 0.0);
}

double* RfmFeatureMatrix::Features(size_t row, int32_t window) {
  assert(row < customers_.size());
  assert(window >= 0 && window < num_windows_);
  return values_.data() +
         (row * static_cast<size_t>(num_windows_) +
          static_cast<size_t>(window)) *
             num_features_;
}

const double* RfmFeatureMatrix::Features(size_t row, int32_t window) const {
  return const_cast<RfmFeatureMatrix*>(this)->Features(row, window);
}

std::vector<double> RfmFeatureMatrix::FeatureVector(size_t row,
                                                    int32_t window) const {
  const double* begin = Features(row, window);
  return std::vector<double>(begin, begin + num_features_);
}

Result<RfmFeatureExtractor> RfmFeatureExtractor::Make(
    RfmFeatureOptions options) {
  if (options.window_span_months <= 0) {
    return Status::InvalidArgument("window_span_months must be positive");
  }
  if (!options.use_recency && !options.use_frequency &&
      !options.use_monetary) {
    return Status::InvalidArgument(
        "at least one RFM feature family must be enabled");
  }
  return RfmFeatureExtractor(options);
}

std::vector<std::string> RfmFeatureExtractor::FeatureNames() const {
  std::vector<std::string> names;
  if (options_.use_recency) {
    names.push_back("recency_days");
    names.push_back("recency_over_mean_gap");
  }
  if (options_.use_frequency) {
    names.push_back("frequency_window");
    names.push_back("frequency_mean_history");
  }
  if (options_.use_monetary) {
    names.push_back("monetary_window");
    names.push_back("monetary_mean_history");
  }
  return names;
}

size_t RfmFeatureExtractor::NumFeatures() const {
  return FeatureNames().size();
}

int32_t RfmFeatureExtractor::NumWindowsFor(
    const retail::Dataset& dataset) const {
  if (options_.num_windows >= 0) return options_.num_windows;
  const retail::Day span_days =
      options_.window_span_months * retail::kDaysPerMonth;
  const retail::Day last_day = dataset.store().max_day();
  if (last_day < 0) return 0;
  return last_day / span_days + 1;
}

Result<RfmFeatureMatrix> RfmFeatureExtractor::Extract(
    const retail::Dataset& dataset) const {
  CHURNLAB_SPAN("rfm.extract");
  static obs::Counter* const extractions =
      obs::MetricsRegistry::Global().GetCounter("churnlab.rfm.extractions");
  static obs::Counter* const feature_rows =
      obs::MetricsRegistry::Global().GetCounter("churnlab.rfm.feature_rows");
  if (!dataset.store().finalized()) {
    return Status::InvalidArgument("dataset store is not finalized");
  }
  const retail::Day span_days =
      options_.window_span_months * retail::kDaysPerMonth;
  const int32_t num_windows = NumWindowsFor(dataset);
  const std::vector<retail::CustomerId>& customers =
      dataset.store().Customers();

  RfmFeatureMatrix matrix(customers, num_windows, NumFeatures());

  for (size_t row = 0; row < customers.size(); ++row) {
    const auto receipts = dataset.store().History(customers[row]);
    size_t next_receipt = 0;

    // Running history state up to the current window end.
    retail::Day last_receipt_day = -1;
    retail::Day first_receipt_day = -1;
    size_t receipts_so_far = 0;
    double spend_so_far = 0.0;

    for (int32_t k = 0; k < num_windows; ++k) {
      const retail::Day window_end = (k + 1) * span_days;  // exclusive
      size_t receipts_in_window = 0;
      double spend_in_window = 0.0;
      while (next_receipt < receipts.size() &&
             receipts[next_receipt].day < window_end) {
        const retail::Receipt& receipt = receipts[next_receipt];
        if (first_receipt_day < 0) first_receipt_day = receipt.day;
        last_receipt_day = receipt.day;
        ++receipts_so_far;
        spend_so_far += receipt.spend;
        ++receipts_in_window;
        spend_in_window += receipt.spend;
        ++next_receipt;
      }

      double* out = matrix.Features(row, k);
      size_t f = 0;
      if (options_.use_recency) {
        // Customers never seen get the maximal recency (whole span so far).
        const double recency_days =
            last_receipt_day < 0
                ? static_cast<double>(window_end)
                : static_cast<double>(window_end - 1 - last_receipt_day);
        out[f++] = recency_days;
        double mean_gap;
        if (receipts_so_far >= 2) {
          mean_gap = static_cast<double>(last_receipt_day -
                                         first_receipt_day) /
                     static_cast<double>(receipts_so_far - 1);
          mean_gap = std::max(mean_gap, 0.5);
        } else {
          mean_gap = static_cast<double>(span_days);
        }
        out[f++] = recency_days / mean_gap;
      }
      if (options_.use_frequency) {
        out[f++] = static_cast<double>(receipts_in_window);
        out[f++] = static_cast<double>(receipts_so_far) /
                   static_cast<double>(k + 1);
      }
      if (options_.use_monetary) {
        out[f++] = spend_in_window;
        out[f++] = spend_so_far / static_cast<double>(k + 1);
      }
      assert(f == NumFeatures());
    }
  }
  extractions->Increment();
  feature_rows->Increment(customers.size() * static_cast<size_t>(num_windows));
  return matrix;
}

}  // namespace rfm
}  // namespace churnlab
