#include "rfm/logistic.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "common/macros.h"
#include "common/math_util.h"

namespace churnlab {
namespace rfm {

namespace {
Status ValidateTrainingData(const std::vector<std::vector<double>>& rows,
                            const std::vector<int>& labels) {
  if (rows.empty()) {
    return Status::InvalidArgument("no training rows");
  }
  if (rows.size() != labels.size()) {
    return Status::InvalidArgument("rows / labels size mismatch");
  }
  const size_t width = rows.front().size();
  for (const std::vector<double>& row : rows) {
    if (row.size() != width) {
      return Status::InvalidArgument("ragged training rows");
    }
    for (const double v : row) {
      if (!std::isfinite(v)) {
        return Status::InvalidArgument("non-finite feature value");
      }
    }
  }
  for (const int label : labels) {
    if (label != 0 && label != 1) {
      return Status::InvalidArgument("labels must be 0 or 1");
    }
  }
  return Status::OK();
}
}  // namespace

Status LogisticRegression::Fit(const std::vector<std::vector<double>>& rows,
                               const std::vector<int>& labels) {
  CHURNLAB_RETURN_NOT_OK(ValidateTrainingData(rows, labels));
  weights_.assign(rows.front().size(), 0.0);
  intercept_ = 0.0;
  fitted_ = false;
  Status status = options_.solver == LogisticSolver::kIrls
                      ? FitIrls(rows, labels)
                      : FitGradientDescent(rows, labels);
  if (!status.ok()) return status;
  fitted_ = true;
  final_loss_ = ComputeLoss(rows, labels);
  return Status::OK();
}

double LogisticRegression::DecisionFunction(
    const std::vector<double>& features) const {
  assert(features.size() == weights_.size());
  return Dot(weights_, features) + intercept_;
}

double LogisticRegression::PredictProbability(
    const std::vector<double>& features) const {
  return Sigmoid(DecisionFunction(features));
}

double LogisticRegression::ComputeLoss(
    const std::vector<std::vector<double>>& rows,
    const std::vector<int>& labels) const {
  double loss = 0.0;
  for (size_t i = 0; i < rows.size(); ++i) {
    const double z = DecisionFunction(rows[i]);
    // -log p(y|z) = log(1+exp(z)) - y z, numerically stable via Log1pExp.
    loss += Log1pExp(z) - (labels[i] == 1 ? z : 0.0);
  }
  loss /= static_cast<double>(rows.size());
  double penalty = 0.0;
  for (const double w : weights_) penalty += w * w;
  return loss + 0.5 * options_.l2 * penalty;
}

Status LogisticRegression::FitIrls(
    const std::vector<std::vector<double>>& rows,
    const std::vector<int>& labels) {
  const size_t n = rows.size();
  const size_t d = weights_.size();
  const size_t dim = d + 1;  // parameters: weights + intercept (last slot)

  std::vector<double> gradient(dim, 0.0);
  std::vector<double> hessian(dim * dim, 0.0);

  for (iterations_used_ = 0; iterations_used_ < options_.max_iterations;
       ++iterations_used_) {
    std::fill(gradient.begin(), gradient.end(), 0.0);
    std::fill(hessian.begin(), hessian.end(), 0.0);

    for (size_t i = 0; i < n; ++i) {
      const double p = PredictProbability(rows[i]);
      const double residual = p - static_cast<double>(labels[i]);
      // IRLS weight; floor keeps the Hessian positive definite when the
      // classes separate perfectly.
      const double w = std::max(p * (1.0 - p), 1e-10);
      for (size_t a = 0; a < d; ++a) {
        gradient[a] += residual * rows[i][a];
        for (size_t b = a; b < d; ++b) {
          hessian[a * dim + b] += w * rows[i][a] * rows[i][b];
        }
        hessian[a * dim + d] += w * rows[i][a];
      }
      gradient[d] += residual;
      hessian[d * dim + d] += w;
    }

    const double inv_n = 1.0 / static_cast<double>(n);
    for (size_t a = 0; a < dim; ++a) gradient[a] *= inv_n;
    for (size_t a = 0; a < dim; ++a) {
      for (size_t b = a; b < dim; ++b) {
        hessian[a * dim + b] *= inv_n;
        hessian[b * dim + a] = hessian[a * dim + b];
      }
    }
    // L2 term (weights only, not intercept).
    for (size_t a = 0; a < d; ++a) {
      gradient[a] += options_.l2 * weights_[a];
      hessian[a * dim + a] += options_.l2;
    }
    // Tiny ridge on the full Hessian for numerical safety.
    for (size_t a = 0; a < dim; ++a) hessian[a * dim + a] += 1e-12;

    CHURNLAB_ASSIGN_OR_RETURN(const std::vector<double> step,
                              SolveLinearSystem(hessian, gradient));
    double max_update = 0.0;
    for (size_t a = 0; a < d; ++a) {
      weights_[a] -= step[a];
      max_update = std::max(max_update, std::abs(step[a]));
    }
    intercept_ -= step[d];
    max_update = std::max(max_update, std::abs(step[d]));
    if (max_update < options_.tolerance) {
      ++iterations_used_;
      break;
    }
  }
  return Status::OK();
}

Status LogisticRegression::FitGradientDescent(
    const std::vector<std::vector<double>>& rows,
    const std::vector<int>& labels) {
  const size_t n = rows.size();
  const size_t d = weights_.size();
  std::vector<double> gradient(d + 1, 0.0);

  for (iterations_used_ = 0; iterations_used_ < options_.max_iterations;
       ++iterations_used_) {
    std::fill(gradient.begin(), gradient.end(), 0.0);
    for (size_t i = 0; i < n; ++i) {
      const double residual =
          PredictProbability(rows[i]) - static_cast<double>(labels[i]);
      for (size_t a = 0; a < d; ++a) gradient[a] += residual * rows[i][a];
      gradient[d] += residual;
    }
    const double inv_n = 1.0 / static_cast<double>(n);
    double max_update = 0.0;
    for (size_t a = 0; a < d; ++a) {
      const double g = gradient[a] * inv_n + options_.l2 * weights_[a];
      weights_[a] -= options_.learning_rate * g;
      max_update = std::max(max_update, std::abs(options_.learning_rate * g));
    }
    const double g0 = gradient[d] * inv_n;
    intercept_ -= options_.learning_rate * g0;
    max_update = std::max(max_update, std::abs(options_.learning_rate * g0));
    if (max_update < options_.tolerance) {
      ++iterations_used_;
      break;
    }
  }
  return Status::OK();
}

}  // namespace rfm
}  // namespace churnlab
