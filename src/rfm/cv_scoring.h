#ifndef CHURNLAB_RFM_CV_SCORING_H_
#define CHURNLAB_RFM_CV_SCORING_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "core/score_matrix.h"
#include "rfm/logistic.h"

namespace churnlab {
namespace rfm {

/// \brief Shared out-of-fold scoring step for the trained baselines
/// (RfmModel, SequenceModel).
///
/// For one window: standardises features on each training fold, fits a
/// logistic regression, writes out-of-fold P(defecting) for labelled rows
/// and full-model probabilities for unlabelled rows into `matrix` at
/// column `window`. When `cross_validate` is false (too few labelled
/// examples for honest folds), labelled rows are scored in-sample instead.
///
/// `labelled_design[i]` is the feature row of the example whose ScoreMatrix
/// row is `labelled_rows[i]` and whose 0/1 target is `targets[i]`;
/// `unlabelled_design` / `unlabelled_rows` likewise.
Status ScoreWindowWithCv(const std::vector<std::vector<double>>& labelled_design,
                         const std::vector<int>& targets,
                         const std::vector<size_t>& labelled_rows,
                         const std::vector<std::vector<double>>& unlabelled_design,
                         const std::vector<size_t>& unlabelled_rows,
                         const LogisticRegressionOptions& logistic_options,
                         size_t cv_folds, uint64_t cv_seed,
                         bool cross_validate, int32_t window,
                         core::ScoreMatrix* matrix);

}  // namespace rfm
}  // namespace churnlab

#endif  // CHURNLAB_RFM_CV_SCORING_H_
