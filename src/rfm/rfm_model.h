#ifndef CHURNLAB_RFM_RFM_MODEL_H_
#define CHURNLAB_RFM_RFM_MODEL_H_

#include <cstdint>

#include "common/result.h"
#include "core/score_matrix.h"
#include "retail/dataset.h"
#include "rfm/features.h"
#include "rfm/logistic.h"

namespace churnlab {
namespace rfm {

/// Configuration of the RFM baseline (Buckinx & Van den Poel 2005, as
/// described in section 3.1 of the paper: "a logistic regression on these
/// three types of variables").
struct RfmModelOptions {
  RfmFeatureOptions features;
  LogisticRegressionOptions logistic;
  /// Folds for out-of-fold scoring of labelled customers (paper: 5).
  size_t cv_folds = 5;
  uint64_t cv_seed = 1234;
};

/// \brief The RFM attrition baseline with honest cross-validated scoring.
///
/// For each window k the model extracts R/F/M features from behaviour up to
/// the window's end, standardises them, and fits a logistic regression of
/// cohort (loyal = 0, defecting = 1) on the features. Labelled customers
/// receive *out-of-fold* probabilities (each fold scored by a model that
/// never saw it); unlabelled customers are scored by a model trained on all
/// labelled rows.
///
/// Scores are P(defecting): **higher = more likely defecting** — the
/// opposite orientation of StabilityModel's scores. Evaluation code passes
/// the orientation explicitly (see eval::AurocOptions).
class RfmModel {
 public:
  static Result<RfmModel> Make(RfmModelOptions options);

  int32_t NumWindowsFor(const retail::Dataset& dataset) const;

  /// Scores every customer at every window. Requires a finalized dataset
  /// with at least cv_folds labelled customers of each cohort; with fewer,
  /// it degrades to in-sample scoring (train on all labelled rows).
  Result<core::ScoreMatrix> ScoreDataset(const retail::Dataset& dataset) const;

  const RfmModelOptions& options() const { return options_; }

 private:
  explicit RfmModel(RfmModelOptions options, RfmFeatureExtractor extractor)
      : options_(options), extractor_(std::move(extractor)) {}

  RfmModelOptions options_;
  RfmFeatureExtractor extractor_;
};

}  // namespace rfm
}  // namespace churnlab

#endif  // CHURNLAB_RFM_RFM_MODEL_H_
