#include "rfm/scaler.h"

#include <cmath>

#include "common/macros.h"

namespace churnlab {
namespace rfm {

Status StandardScaler::Fit(const std::vector<std::vector<double>>& rows) {
  if (rows.empty()) {
    return Status::InvalidArgument("cannot fit scaler on zero rows");
  }
  const size_t width = rows.front().size();
  means_.assign(width, 0.0);
  scales_.assign(width, 1.0);
  for (const std::vector<double>& row : rows) {
    if (row.size() != width) {
      means_.clear();
      scales_.clear();
      return Status::InvalidArgument("ragged feature rows");
    }
    for (size_t j = 0; j < width; ++j) means_[j] += row[j];
  }
  const double n = static_cast<double>(rows.size());
  for (double& mean : means_) mean /= n;
  std::vector<double> sq(width, 0.0);
  for (const std::vector<double>& row : rows) {
    for (size_t j = 0; j < width; ++j) {
      const double centered = row[j] - means_[j];
      sq[j] += centered * centered;
    }
  }
  for (size_t j = 0; j < width; ++j) {
    const double stddev = std::sqrt(sq[j] / n);
    scales_[j] = stddev > 1e-12 ? stddev : 1.0;
  }
  return Status::OK();
}

Status StandardScaler::Transform(std::vector<double>* row) const {
  if (!fitted()) {
    return Status::InvalidArgument("scaler not fitted");
  }
  if (row->size() != means_.size()) {
    return Status::InvalidArgument("row width does not match scaler");
  }
  for (size_t j = 0; j < row->size(); ++j) {
    (*row)[j] = ((*row)[j] - means_[j]) / scales_[j];
  }
  return Status::OK();
}

Status StandardScaler::Transform(std::vector<std::vector<double>>* rows) const {
  for (std::vector<double>& row : *rows) {
    CHURNLAB_RETURN_NOT_OK(Transform(&row));
  }
  return Status::OK();
}

}  // namespace rfm
}  // namespace churnlab
