#include "rfm/rfm_model.h"

#include <vector>

#include "common/macros.h"
#include "rfm/cv_scoring.h"

namespace churnlab {
namespace rfm {

Result<RfmModel> RfmModel::Make(RfmModelOptions options) {
  if (options.cv_folds < 2) {
    return Status::InvalidArgument("cv_folds must be >= 2");
  }
  CHURNLAB_ASSIGN_OR_RETURN(RfmFeatureExtractor extractor,
                            RfmFeatureExtractor::Make(options.features));
  return RfmModel(options, std::move(extractor));
}

int32_t RfmModel::NumWindowsFor(const retail::Dataset& dataset) const {
  return extractor_.NumWindowsFor(dataset);
}

Result<core::ScoreMatrix> RfmModel::ScoreDataset(
    const retail::Dataset& dataset) const {
  CHURNLAB_ASSIGN_OR_RETURN(const RfmFeatureMatrix features,
                            extractor_.Extract(dataset));
  const std::vector<retail::CustomerId>& customers = features.customers();
  const int32_t num_windows = features.num_windows();
  core::ScoreMatrix matrix(customers, num_windows);

  // Split rows into labelled (train pool) and unlabelled.
  std::vector<size_t> labelled_rows;
  std::vector<int> labelled_targets;
  std::vector<size_t> unlabelled_rows;
  size_t positives = 0;
  for (size_t row = 0; row < customers.size(); ++row) {
    const retail::Cohort cohort = dataset.LabelOf(customers[row]).cohort;
    if (cohort == retail::Cohort::kUnlabeled) {
      unlabelled_rows.push_back(row);
    } else {
      labelled_rows.push_back(row);
      const int target = cohort == retail::Cohort::kDefecting ? 1 : 0;
      positives += static_cast<size_t>(target);
      labelled_targets.push_back(target);
    }
  }
  if (labelled_rows.empty()) {
    return Status::InvalidArgument(
        "RFM baseline needs labelled customers to train on");
  }
  const size_t negatives = labelled_rows.size() - positives;
  const bool can_cross_validate = positives >= options_.cv_folds &&
                                  negatives >= options_.cv_folds;

  for (int32_t window = 0; window < num_windows; ++window) {
    // Materialise this window's design matrices once.
    std::vector<std::vector<double>> labelled_design;
    labelled_design.reserve(labelled_rows.size());
    for (const size_t row : labelled_rows) {
      labelled_design.push_back(features.FeatureVector(row, window));
    }
    std::vector<std::vector<double>> unlabelled_design;
    unlabelled_design.reserve(unlabelled_rows.size());
    for (const size_t row : unlabelled_rows) {
      unlabelled_design.push_back(features.FeatureVector(row, window));
    }
    CHURNLAB_RETURN_NOT_OK(ScoreWindowWithCv(
        labelled_design, labelled_targets, labelled_rows, unlabelled_design,
        unlabelled_rows, options_.logistic, options_.cv_folds,
        options_.cv_seed, can_cross_validate, window, &matrix));
  }
  return matrix;
}

}  // namespace rfm
}  // namespace churnlab
