#ifndef CHURNLAB_RFM_FEATURES_H_
#define CHURNLAB_RFM_FEATURES_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "retail/dataset.h"
#include "retail/types.h"

namespace churnlab {
namespace rfm {

/// Which predictor families to extract — the R, F and M of Shepard's RFM
/// model, per Buckinx & Van den Poel 2005. Ablation benches toggle these.
struct RfmFeatureOptions {
  /// Window span in months; aligned with the stability model's windows so
  /// both models are evaluated at the same instants.
  int32_t window_span_months = 2;
  /// Number of windows; negative = cover the dataset.
  int32_t num_windows = -1;
  bool use_recency = true;
  bool use_frequency = true;
  bool use_monetary = true;
};

/// Per-customer, per-window feature rows.
///
/// Features at window k describe behaviour observed in [0, end of window k)
/// — everything an analyst would know at that instant:
///  - recency:   days between the last receipt and the window end, and the
///               same normalised by the customer's mean inter-purchase gap;
///  - frequency: receipts inside window k, and mean receipts per window
///               over the history so far;
///  - monetary:  spend inside window k, and mean spend per window so far.
class RfmFeatureMatrix {
 public:
  RfmFeatureMatrix(std::vector<retail::CustomerId> customers,
                   int32_t num_windows, size_t num_features);

  size_t num_rows() const { return customers_.size(); }
  int32_t num_windows() const { return num_windows_; }
  size_t num_features() const { return num_features_; }

  const std::vector<retail::CustomerId>& customers() const {
    return customers_;
  }

  /// Feature vector of (row, window) as a mutable pointer of
  /// num_features() doubles.
  double* Features(size_t row, int32_t window);
  const double* Features(size_t row, int32_t window) const;

  /// Copies one (row, window) feature vector.
  std::vector<double> FeatureVector(size_t row, int32_t window) const;

 private:
  std::vector<retail::CustomerId> customers_;
  int32_t num_windows_ = 0;
  size_t num_features_ = 0;
  std::vector<double> values_;  // [row][window][feature]
};

/// \brief Extracts RFM feature matrices from a dataset.
class RfmFeatureExtractor {
 public:
  /// Validates options (at least one family enabled, positive span).
  static Result<RfmFeatureExtractor> Make(RfmFeatureOptions options);

  /// Names of the extracted features, in column order.
  std::vector<std::string> FeatureNames() const;

  size_t NumFeatures() const;

  /// Number of windows materialised for `dataset`.
  int32_t NumWindowsFor(const retail::Dataset& dataset) const;

  /// Extracts features for every customer and window.
  Result<RfmFeatureMatrix> Extract(const retail::Dataset& dataset) const;

  const RfmFeatureOptions& options() const { return options_; }

 private:
  explicit RfmFeatureExtractor(RfmFeatureOptions options)
      : options_(options) {}

  RfmFeatureOptions options_;
};

}  // namespace rfm
}  // namespace churnlab

#endif  // CHURNLAB_RFM_FEATURES_H_
