#ifndef CHURNLAB_RFM_SEQUENCE_MODEL_H_
#define CHURNLAB_RFM_SEQUENCE_MODEL_H_

#include <cstdint>

#include "common/result.h"
#include "core/score_matrix.h"
#include "retail/dataset.h"
#include "rfm/logistic.h"

namespace churnlab {
namespace rfm {

/// Options of the sequence-similarity baseline.
struct SequenceModelOptions {
  /// Window span in months (aligned with the other models).
  int32_t window_span_months = 2;
  int32_t num_windows = -1;
  /// Number of most recent receipts forming the "last sequence".
  size_t last_receipts = 6;
  /// Number of historically most frequent segments forming the customer's
  /// long-run category profile.
  size_t profile_segments = 15;
  LogisticRegressionOptions logistic;
  size_t cv_folds = 5;
  uint64_t cv_seed = 4321;
};

/// \brief Category-sequence similarity baseline, in the spirit of Miguéis,
/// Van den Poel, Camanho & Falcão e Cunha (2012) — the related work the
/// paper cites for sequence-based partial-churn models.
///
/// The paper only *evaluates* against RFM; this third model widens the
/// comparison. For each customer and window it compares the *last sequence*
/// (the segments of the most recent `last_receipts` receipts up to the
/// window end) against the customer's long-run category profile (their
/// historically most frequent segments):
///
///  - Jaccard similarity of last-sequence segments vs profile;
///  - coverage: fraction of the profile present in the last sequence;
///  - novelty: fraction of last-sequence segments never bought before;
///  - recent basket size relative to the historical mean;
///  - receipts inside the window.
///
/// A cross-validated logistic regression maps the features to P(defecting):
/// **higher = more likely defecting**, like RfmModel.
class SequenceModel {
 public:
  static Result<SequenceModel> Make(SequenceModelOptions options);

  int32_t NumWindowsFor(const retail::Dataset& dataset) const;

  /// Scores every customer at every window (out-of-fold for labelled
  /// customers; in-sample fallback for tiny cohorts, as RfmModel).
  Result<core::ScoreMatrix> ScoreDataset(const retail::Dataset& dataset) const;

  /// Names of the extracted features, in column order (exposed for tests).
  static std::vector<std::string> FeatureNames();

  const SequenceModelOptions& options() const { return options_; }

 private:
  explicit SequenceModel(SequenceModelOptions options) : options_(options) {}

  SequenceModelOptions options_;
};

}  // namespace rfm
}  // namespace churnlab

#endif  // CHURNLAB_RFM_SEQUENCE_MODEL_H_
