#ifndef CHURNLAB_RFM_LOGISTIC_H_
#define CHURNLAB_RFM_LOGISTIC_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace churnlab {
namespace rfm {

/// Training algorithm for the logistic solver.
enum class LogisticSolver : uint8_t {
  /// Newton / iteratively-reweighted least squares. Quadratic convergence;
  /// the default for RFM's handful of features.
  kIrls = 0,
  /// Plain batch gradient descent with a fixed learning rate. Used as a
  /// fallback and by tests as an independent cross-check of IRLS.
  kGradientDescent = 1,
};

struct LogisticRegressionOptions {
  LogisticSolver solver = LogisticSolver::kIrls;
  /// L2 penalty on the weights (not the intercept).
  double l2 = 1e-3;
  size_t max_iterations = 100;
  /// Convergence threshold on the max absolute parameter update.
  double tolerance = 1e-8;
  /// Gradient-descent step size (ignored by IRLS).
  double learning_rate = 0.1;
};

/// \brief Binary L2-regularised logistic regression, the model class of the
/// paper's RFM baseline ("built using a logistic regression on these three
/// types of variables").
///
/// \code
///   LogisticRegression model(options);
///   CHURNLAB_RETURN_NOT_OK(model.Fit(rows, labels));
///   double p = model.PredictProbability(features);
/// \endcode
class LogisticRegression {
 public:
  explicit LogisticRegression(LogisticRegressionOptions options = {})
      : options_(options) {}

  /// Fits on `rows` (one feature vector per example, all the same width)
  /// and binary `labels` (0/1). Inputs are used as-is; standardise first
  /// (see StandardScaler). Fails on empty/ragged input, labels of one
  /// class only is allowed (the intercept absorbs it).
  Status Fit(const std::vector<std::vector<double>>& rows,
             const std::vector<int>& labels);

  /// P(label = 1 | features). Requires a successful Fit.
  double PredictProbability(const std::vector<double>& features) const;

  /// Decision-function value w . x + b.
  double DecisionFunction(const std::vector<double>& features) const;

  bool fitted() const { return fitted_; }
  const std::vector<double>& weights() const { return weights_; }
  double intercept() const { return intercept_; }
  /// Iterations the last Fit used.
  size_t iterations_used() const { return iterations_used_; }

  /// Mean negative log-likelihood (with L2 term) of the last Fit's data at
  /// the current parameters — exposed for convergence tests.
  double final_loss() const { return final_loss_; }

 private:
  Status FitIrls(const std::vector<std::vector<double>>& rows,
                 const std::vector<int>& labels);
  Status FitGradientDescent(const std::vector<std::vector<double>>& rows,
                            const std::vector<int>& labels);
  double ComputeLoss(const std::vector<std::vector<double>>& rows,
                     const std::vector<int>& labels) const;

  LogisticRegressionOptions options_;
  std::vector<double> weights_;
  double intercept_ = 0.0;
  bool fitted_ = false;
  size_t iterations_used_ = 0;
  double final_loss_ = 0.0;
};

}  // namespace rfm
}  // namespace churnlab

#endif  // CHURNLAB_RFM_LOGISTIC_H_
