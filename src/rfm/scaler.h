#ifndef CHURNLAB_RFM_SCALER_H_
#define CHURNLAB_RFM_SCALER_H_

#include <vector>

#include "common/result.h"

namespace churnlab {
namespace rfm {

/// \brief Per-feature standardisation (zero mean, unit variance) fitted on
/// training rows and applied to train and test alike — keeps the logistic
/// solver well-conditioned regardless of feature units (days vs euros).
class StandardScaler {
 public:
  StandardScaler() = default;

  /// Computes per-column mean and standard deviation from `rows` (all rows
  /// must share one width). Constant columns get scale 1 (they transform to
  /// zero). Fails on empty or ragged input.
  Status Fit(const std::vector<std::vector<double>>& rows);

  /// Transforms one row in place. Requires Fit; width must match.
  Status Transform(std::vector<double>* row) const;

  /// Transforms many rows in place.
  Status Transform(std::vector<std::vector<double>>* rows) const;

  bool fitted() const { return !means_.empty(); }
  const std::vector<double>& means() const { return means_; }
  const std::vector<double>& scales() const { return scales_; }

 private:
  std::vector<double> means_;
  std::vector<double> scales_;
};

}  // namespace rfm
}  // namespace churnlab

#endif  // CHURNLAB_RFM_SCALER_H_
