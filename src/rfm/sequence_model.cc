#include "rfm/sequence_model.h"

#include <algorithm>
#include <set>
#include <span>
#include <unordered_map>
#include <vector>

#include "common/macros.h"
#include "rfm/cv_scoring.h"

namespace churnlab {
namespace rfm {

std::vector<std::string> SequenceModel::FeatureNames() {
  return {"jaccard_last_vs_profile", "profile_coverage",
          "off_profile_fraction",    "recent_basket_ratio",
          "receipts_in_window"};
}

Result<SequenceModel> SequenceModel::Make(SequenceModelOptions options) {
  if (options.window_span_months <= 0) {
    return Status::InvalidArgument("window_span_months must be positive");
  }
  if (options.last_receipts == 0) {
    return Status::InvalidArgument("last_receipts must be positive");
  }
  if (options.profile_segments == 0) {
    return Status::InvalidArgument("profile_segments must be positive");
  }
  if (options.cv_folds < 2) {
    return Status::InvalidArgument("cv_folds must be >= 2");
  }
  return SequenceModel(options);
}

int32_t SequenceModel::NumWindowsFor(const retail::Dataset& dataset) const {
  if (options_.num_windows >= 0) return options_.num_windows;
  const retail::Day span_days =
      options_.window_span_months * retail::kDaysPerMonth;
  const retail::Day last_day = dataset.store().max_day();
  if (last_day < 0) return 0;
  return last_day / span_days + 1;
}

namespace {

/// Per-customer feature extraction state, advanced window by window.
class SequenceState {
 public:
  SequenceState(const retail::Dataset& dataset, size_t last_receipts,
                size_t profile_segments)
      : dataset_(dataset),
        last_receipts_(last_receipts),
        profile_segments_(profile_segments) {}

  /// Consumes receipts with day < window_end and returns this window's
  /// feature row.
  std::vector<double> Advance(std::span<const retail::Receipt> receipts,
                              size_t* next_receipt, retail::Day window_end) {
    size_t receipts_in_window = 0;
    while (*next_receipt < receipts.size() &&
           receipts[*next_receipt].day < window_end) {
      const retail::Receipt& receipt = receipts[*next_receipt];
      std::set<retail::SegmentId> segments;
      for (const retail::ItemId item : receipt.items) {
        const retail::SegmentId segment =
            dataset_.taxonomy().SegmentOf(item);
        if (segment != retail::kInvalidSegment) segments.insert(segment);
      }
      for (const retail::SegmentId segment : segments) {
        ++historical_counts_[segment];
      }
      total_items_ += receipt.items.size();
      ++total_receipts_;
      receipt_segments_.push_back(std::move(segments));
      ++receipts_in_window;
      ++(*next_receipt);
    }

    std::vector<double> features(5, 0.0);
    features[4] = static_cast<double>(receipts_in_window);
    if (receipt_segments_.empty()) {
      features[3] = 1.0;  // no evidence of basket shrinkage
      return features;
    }

    // Last sequence: union of the most recent `last_receipts_` receipts.
    std::set<retail::SegmentId> last_sequence;
    const size_t begin =
        receipt_segments_.size() > last_receipts_
            ? receipt_segments_.size() - last_receipts_
            : 0;
    size_t last_items = 0;
    for (size_t i = begin; i < receipt_segments_.size(); ++i) {
      last_sequence.insert(receipt_segments_[i].begin(),
                           receipt_segments_[i].end());
      last_items += receipt_segments_[i].size();
    }
    const size_t last_count = receipt_segments_.size() - begin;

    // Long-run profile: historically most frequent segments.
    std::vector<std::pair<int, retail::SegmentId>> ranked;
    ranked.reserve(historical_counts_.size());
    for (const auto& [segment, count] : historical_counts_) {
      ranked.emplace_back(-count, segment);  // negative: ascending sort
    }
    const size_t profile_size =
        std::min(profile_segments_, ranked.size());
    std::partial_sort(ranked.begin(), ranked.begin() + profile_size,
                      ranked.end());
    std::set<retail::SegmentId> profile;
    for (size_t i = 0; i < profile_size; ++i) {
      profile.insert(ranked[i].second);
    }

    size_t intersection = 0;
    for (const retail::SegmentId segment : last_sequence) {
      if (profile.count(segment)) ++intersection;
    }
    const size_t union_size =
        last_sequence.size() + profile.size() - intersection;
    features[0] = union_size > 0 ? static_cast<double>(intersection) /
                                       static_cast<double>(union_size)
                                 : 0.0;
    features[1] = profile.empty()
                      ? 0.0
                      : static_cast<double>(intersection) /
                            static_cast<double>(profile.size());
    features[2] = last_sequence.empty()
                      ? 0.0
                      : 1.0 - static_cast<double>(intersection) /
                                  static_cast<double>(last_sequence.size());
    const double historical_mean_basket =
        total_receipts_ > 0 ? static_cast<double>(total_items_) /
                                  static_cast<double>(total_receipts_)
                            : 1.0;
    const double recent_mean_basket =
        last_count > 0 ? static_cast<double>(last_items) /
                             static_cast<double>(last_count)
                       : 0.0;
    features[3] = historical_mean_basket > 0.0
                      ? recent_mean_basket / historical_mean_basket
                      : 1.0;
    return features;
  }

 private:
  const retail::Dataset& dataset_;
  size_t last_receipts_;
  size_t profile_segments_;
  std::unordered_map<retail::SegmentId, int> historical_counts_;
  std::vector<std::set<retail::SegmentId>> receipt_segments_;
  size_t total_items_ = 0;
  size_t total_receipts_ = 0;
};

}  // namespace

Result<core::ScoreMatrix> SequenceModel::ScoreDataset(
    const retail::Dataset& dataset) const {
  if (!dataset.store().finalized()) {
    return Status::InvalidArgument("dataset store is not finalized");
  }
  const std::vector<retail::CustomerId>& customers =
      dataset.store().Customers();
  const int32_t num_windows = NumWindowsFor(dataset);
  const retail::Day span_days =
      options_.window_span_months * retail::kDaysPerMonth;
  core::ScoreMatrix matrix(customers, num_windows);

  // Extract features for everyone: [row][window] -> feature vector.
  std::vector<std::vector<std::vector<double>>> features(customers.size());
  for (size_t row = 0; row < customers.size(); ++row) {
    SequenceState state(dataset, options_.last_receipts,
                        options_.profile_segments);
    const auto receipts = dataset.store().History(customers[row]);
    size_t next_receipt = 0;
    features[row].reserve(static_cast<size_t>(num_windows));
    for (int32_t window = 0; window < num_windows; ++window) {
      features[row].push_back(
          state.Advance(receipts, &next_receipt, (window + 1) * span_days));
    }
  }

  // Partition rows, then reuse the shared CV scorer per window.
  std::vector<size_t> labelled_rows;
  std::vector<int> targets;
  std::vector<size_t> unlabelled_rows;
  size_t positives = 0;
  for (size_t row = 0; row < customers.size(); ++row) {
    const retail::Cohort cohort = dataset.LabelOf(customers[row]).cohort;
    if (cohort == retail::Cohort::kUnlabeled) {
      unlabelled_rows.push_back(row);
    } else {
      labelled_rows.push_back(row);
      const int target = cohort == retail::Cohort::kDefecting ? 1 : 0;
      positives += static_cast<size_t>(target);
      targets.push_back(target);
    }
  }
  if (labelled_rows.empty()) {
    return Status::InvalidArgument(
        "sequence baseline needs labelled customers to train on");
  }
  const size_t negatives = labelled_rows.size() - positives;
  const bool cross_validate = positives >= options_.cv_folds &&
                              negatives >= options_.cv_folds;

  for (int32_t window = 0; window < num_windows; ++window) {
    std::vector<std::vector<double>> labelled_design;
    labelled_design.reserve(labelled_rows.size());
    for (const size_t row : labelled_rows) {
      labelled_design.push_back(features[row][window]);
    }
    std::vector<std::vector<double>> unlabelled_design;
    unlabelled_design.reserve(unlabelled_rows.size());
    for (const size_t row : unlabelled_rows) {
      unlabelled_design.push_back(features[row][window]);
    }
    CHURNLAB_RETURN_NOT_OK(ScoreWindowWithCv(
        labelled_design, targets, labelled_rows, unlabelled_design,
        unlabelled_rows, options_.logistic, options_.cv_folds,
        options_.cv_seed, cross_validate, window, &matrix));
  }
  return matrix;
}

}  // namespace rfm
}  // namespace churnlab
