#include "rfm/cv_scoring.h"

#include "common/kfold.h"
#include "common/macros.h"
#include "rfm/scaler.h"

namespace churnlab {
namespace rfm {

namespace {
Status FitAndScore(const std::vector<std::vector<double>>& design,
                   const std::vector<int>& targets,
                   const std::vector<size_t>& matrix_rows,
                   const std::vector<size_t>& train_positions,
                   const std::vector<size_t>& test_positions,
                   const LogisticRegressionOptions& logistic_options,
                   int32_t window, core::ScoreMatrix* matrix) {
  std::vector<std::vector<double>> train_rows;
  std::vector<int> train_labels;
  train_rows.reserve(train_positions.size());
  train_labels.reserve(train_positions.size());
  for (const size_t position : train_positions) {
    train_rows.push_back(design[position]);
    train_labels.push_back(targets[position]);
  }
  StandardScaler scaler;
  CHURNLAB_RETURN_NOT_OK(scaler.Fit(train_rows));
  CHURNLAB_RETURN_NOT_OK(scaler.Transform(&train_rows));
  LogisticRegression model(logistic_options);
  CHURNLAB_RETURN_NOT_OK(model.Fit(train_rows, train_labels));
  for (const size_t position : test_positions) {
    std::vector<double> row = design[position];
    CHURNLAB_RETURN_NOT_OK(scaler.Transform(&row));
    matrix->Set(matrix_rows[position], window, model.PredictProbability(row));
  }
  return Status::OK();
}
}  // namespace

Status ScoreWindowWithCv(
    const std::vector<std::vector<double>>& labelled_design,
    const std::vector<int>& targets,
    const std::vector<size_t>& labelled_rows,
    const std::vector<std::vector<double>>& unlabelled_design,
    const std::vector<size_t>& unlabelled_rows,
    const LogisticRegressionOptions& logistic_options, size_t cv_folds,
    uint64_t cv_seed, bool cross_validate, int32_t window,
    core::ScoreMatrix* matrix) {
  if (labelled_design.empty()) {
    return Status::InvalidArgument("no labelled examples to train on");
  }
  if (labelled_design.size() != targets.size() ||
      labelled_design.size() != labelled_rows.size() ||
      unlabelled_design.size() != unlabelled_rows.size()) {
    return Status::InvalidArgument("design/target/row size mismatch");
  }

  if (cross_validate) {
    CHURNLAB_ASSIGN_OR_RETURN(const StratifiedKFold folds,
                              StratifiedKFold::Make(targets, cv_folds,
                                                    cv_seed));
    for (size_t fold = 0; fold < folds.num_folds(); ++fold) {
      CHURNLAB_RETURN_NOT_OK(FitAndScore(
          labelled_design, targets, labelled_rows, folds.TrainIndices(fold),
          folds.TestIndices(fold), logistic_options, window, matrix));
    }
  } else {
    std::vector<size_t> all_positions(labelled_design.size());
    for (size_t i = 0; i < all_positions.size(); ++i) all_positions[i] = i;
    CHURNLAB_RETURN_NOT_OK(FitAndScore(labelled_design, targets,
                                       labelled_rows, all_positions,
                                       all_positions, logistic_options,
                                       window, matrix));
  }

  if (!unlabelled_design.empty()) {
    // Full model over every labelled row scores the unlabelled ones.
    std::vector<std::vector<double>> train_rows = labelled_design;
    StandardScaler scaler;
    CHURNLAB_RETURN_NOT_OK(scaler.Fit(train_rows));
    CHURNLAB_RETURN_NOT_OK(scaler.Transform(&train_rows));
    LogisticRegression model(logistic_options);
    CHURNLAB_RETURN_NOT_OK(model.Fit(train_rows, targets));
    for (size_t i = 0; i < unlabelled_design.size(); ++i) {
      std::vector<double> row = unlabelled_design[i];
      CHURNLAB_RETURN_NOT_OK(scaler.Transform(&row));
      matrix->Set(unlabelled_rows[i], window, model.PredictProbability(row));
    }
  }
  return Status::OK();
}

}  // namespace rfm
}  // namespace churnlab
