#include "common/logging.h"

#include <atomic>
#include <cstdio>
#include <cstring>
#include <string_view>

namespace churnlab {

namespace {
std::atomic<int> g_level{static_cast<int>(LogLevel::kWarning)};

std::string_view Basename(std::string_view path) {
  const size_t pos = path.find_last_of('/');
  return pos == std::string_view::npos ? path : path.substr(pos + 1);
}
}  // namespace

std::string_view LogLevelToString(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}

void Logger::SetLevel(LogLevel level) {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel Logger::GetLevel() {
  return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed));
}

bool Logger::IsEnabled(LogLevel level) {
  return static_cast<int>(level) >=
         g_level.load(std::memory_order_relaxed);
}

void Logger::Log(LogLevel level, std::string_view file, int line,
                 std::string_view message) {
  if (!IsEnabled(level)) return;
  const std::string_view base = Basename(file);
  const std::string_view name = LogLevelToString(level);
  // One fprintf per message keeps interleaving at line granularity.
  std::fprintf(stderr, "[churnlab %.*s %.*s:%d] %.*s\n",
               static_cast<int>(name.size()), name.data(),
               static_cast<int>(base.size()), base.data(), line,
               static_cast<int>(message.size()), message.data());
}

}  // namespace churnlab
