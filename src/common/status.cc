#include "common/status.h"

#include <cstdio>
#include <cstdlib>

namespace churnlab {

std::string_view StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "Invalid argument";
    case StatusCode::kIOError:
      return "IO error";
    case StatusCode::kNotFound:
      return "Not found";
    case StatusCode::kAlreadyExists:
      return "Already exists";
    case StatusCode::kOutOfRange:
      return "Out of range";
    case StatusCode::kNotImplemented:
      return "Not implemented";
    case StatusCode::kInternal:
      return "Internal error";
    case StatusCode::kCancelled:
      return "Cancelled";
    case StatusCode::kFailedPrecondition:
      return "Failed precondition";
    case StatusCode::kResourceExhausted:
      return "Resource exhausted";
    case StatusCode::kDataLoss:
      return "Data loss";
  }
  return "Unknown";
}

Status::Status(StatusCode code, std::string message) {
  if (code != StatusCode::kOk) {
    state_ = std::make_shared<const State>(State{code, std::move(message)});
  }
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out(StatusCodeToString(code()));
  if (!message().empty()) {
    out += ": ";
    out += message();
  }
  return out;
}

Status Status::WithContext(std::string_view context) const {
  if (ok()) return *this;
  std::string combined(context);
  combined += ": ";
  combined += message();
  return Status(code(), std::move(combined));
}

void Status::Abort() const { Abort(""); }

void Status::Abort(std::string_view context) const {
  if (ok()) return;
  if (context.empty()) {
    std::fprintf(stderr, "churnlab fatal: %s\n", ToString().c_str());
  } else {
    std::fprintf(stderr, "churnlab fatal: %.*s: %s\n",
                 static_cast<int>(context.size()), context.data(),
                 ToString().c_str());
  }
  std::abort();
}

}  // namespace churnlab
