#ifndef CHURNLAB_COMMON_THREAD_POOL_H_
#define CHURNLAB_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace churnlab {

/// \brief Fixed-size worker pool for data-parallel scoring of customers.
///
/// Tasks are arbitrary `std::function<void()>`s executed FIFO. The pool is
/// deliberately simple (single mutex-protected queue); churnlab's parallel
/// sections are coarse-grained per-customer chunks, so queue contention is
/// negligible.
///
/// Exception safety: a throwing task does not kill its worker or leak the
/// in-flight count (the decrement is RAII). The first exception thrown by
/// any task is captured and rethrown from the next WaitIdle() call, after
/// every task has drained; later exceptions cannot all be rethrown, so they
/// are *counted* (see dropped_exceptions()), reported through the
/// process-wide dropped-exception hook (obs wires it to the
/// `churnlab.threadpool.dropped_exceptions` counter), and logged as a
/// warning from the WaitIdle that observes them. The pool remains usable
/// after the rethrow.
class ThreadPool {
 public:
  /// Called once per dropped (non-first) task exception, on the worker
  /// thread that caught it. Must be safe to call concurrently.
  using DroppedExceptionHook = void (*)();

  /// Called once on each worker thread as it starts, with a process-unique
  /// worker ordinal. Must be safe to call concurrently. obs wires this to
  /// the flight recorder so dumps label pool threads, and to the
  /// `churnlab.threadpool.workers_started` counter.
  using WorkerStartHook = void (*)(size_t ordinal);

  /// Creates a pool with `num_threads` workers (>= 1; 0 is clamped to 1).
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues `task` for execution.
  void Submit(std::function<void()> task);

  /// Blocks until every submitted task has finished. If any task threw
  /// since the last WaitIdle, rethrows the first captured exception.
  void WaitIdle();

  size_t num_threads() const { return workers_.size(); }

  /// Tasks submitted but not yet picked up by a worker. A health/telemetry
  /// probe, not a synchronization primitive: the value is stale the moment
  /// it returns.
  size_t QueueDepth() const;

  /// Task exceptions dropped (captured after the first) over this pool's
  /// lifetime. Fault tests assert on this count.
  uint64_t dropped_exceptions() const;

  /// Installs the process-wide dropped-exception hook (nullptr to remove).
  /// Typically obs::InstallFaultTelemetry's bridge.
  static void SetDroppedExceptionHook(DroppedExceptionHook hook);

  /// Installs the process-wide worker-start hook (nullptr to remove). Only
  /// workers started after installation observe it.
  static void SetWorkerStartHook(WorkerStartHook hook);

 private:
  void WorkerLoop();

  mutable std::mutex mutex_;
  std::condition_variable work_available_;
  std::condition_variable all_done_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  size_t in_flight_ = 0;
  bool shutting_down_ = false;
  /// First exception thrown by a task since the last WaitIdle rethrow.
  std::exception_ptr first_exception_;
  /// Lifetime total of dropped exceptions, and the slice of it not yet
  /// reported by a WaitIdle warning.
  uint64_t dropped_exceptions_ = 0;
  uint64_t dropped_unreported_ = 0;
};

/// Runs `body(i)` for every i in [begin, end), splitting the range into
/// contiguous chunks across `num_threads` threads. Executes inline when the
/// range is small or num_threads <= 1. `body` must be safe to invoke
/// concurrently for distinct i. If `body` throws, the remaining indices of
/// that worker's chunk are skipped (other chunks still run to completion)
/// and the first captured exception is rethrown on the calling thread after
/// every worker has joined.
void ParallelFor(size_t begin, size_t end, size_t num_threads,
                 const std::function<void(size_t)>& body);

}  // namespace churnlab

#endif  // CHURNLAB_COMMON_THREAD_POOL_H_
