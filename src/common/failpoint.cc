#include "common/failpoint.h"

#include <chrono>
#include <cstdlib>
#include <thread>
#include <utility>

#include "common/macros.h"
#include "common/string_util.h"

namespace churnlab {

namespace {

/// Process-wide trigger observer (telemetry bridge). Relaxed is fine: the
/// observer is installed once at startup, before faults are armed.
std::atomic<FailpointObserver*> g_observer{nullptr};

/// Stable 64-bit mix (murmur3 finalizer) used to spread corrupt-bytes
/// positions across the buffer deterministically.
uint64_t Mix64(uint64_t x) {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ULL;
  x ^= x >> 33;
  return x;
}

/// Parses "name(arg)" shapes; returns true and the inner text on match.
bool ParseCall(std::string_view text, std::string_view name,
               std::string_view* arg) {
  if (!StartsWith(text, name)) return false;
  std::string_view rest = text.substr(name.size());
  if (rest.size() < 2 || rest.front() != '(' || rest.back() != ')') {
    return false;
  }
  *arg = rest.substr(1, rest.size() - 2);
  return true;
}

Status ParseAction(std::string_view text, FailpointConfig* config) {
  std::string_view arg;
  if (text == "error") {
    config->action = FailpointAction::kError;
    return Status::OK();
  }
  if (text == "throw") {
    config->action = FailpointAction::kThrow;
    return Status::OK();
  }
  if (text == "corrupt-bytes") {
    config->action = FailpointAction::kCorruptBytes;
    return Status::OK();
  }
  if (ParseCall(text, "delay", &arg)) {
    CHURNLAB_ASSIGN_OR_RETURN(config->delay_ms, ParseDouble(arg));
    if (config->delay_ms < 0.0) {
      return Status::InvalidArgument("failpoint delay must be >= 0 ms");
    }
    config->action = FailpointAction::kDelay;
    return Status::OK();
  }
  if (text == "abort") {
    config->action = FailpointAction::kAbort;
    return Status::OK();
  }
  if (ParseCall(text, "abort", &arg)) {
    uint64_t code = 0;
    CHURNLAB_ASSIGN_OR_RETURN(code, ParseUint64(arg));
    if (code == 0 || code > 255) {
      return Status::InvalidArgument("abort(code) needs code in [1, 255]");
    }
    config->abort_code = static_cast<int>(code);
    config->action = FailpointAction::kAbort;
    return Status::OK();
  }
  return Status::InvalidArgument("unknown failpoint action '" +
                                 std::string(text) + "'");
}

Status ParseModifier(std::string_view text, FailpointConfig* config) {
  std::string_view arg;
  if (text == "always") {
    config->schedule = FailpointConfig::Schedule::kAlways;
    config->schedule_n = 1;
    return Status::OK();
  }
  if (ParseCall(text, "every", &arg)) {
    CHURNLAB_ASSIGN_OR_RETURN(config->schedule_n, ParseUint64(arg));
    if (config->schedule_n == 0) {
      return Status::InvalidArgument("every(N) needs N >= 1");
    }
    config->schedule = FailpointConfig::Schedule::kEveryN;
    return Status::OK();
  }
  if (ParseCall(text, "nth", &arg)) {
    CHURNLAB_ASSIGN_OR_RETURN(config->schedule_n, ParseUint64(arg));
    if (config->schedule_n == 0) {
      return Status::InvalidArgument("nth(N) needs N >= 1 (hits count from 1)");
    }
    config->schedule = FailpointConfig::Schedule::kNth;
    return Status::OK();
  }
  if (ParseCall(text, "key", &arg)) {
    CHURNLAB_ASSIGN_OR_RETURN(config->key, ParseUint64(arg));
    config->has_key = true;
    return Status::OK();
  }
  if (ParseCall(text, "limit", &arg)) {
    CHURNLAB_ASSIGN_OR_RETURN(config->limit, ParseUint64(arg));
    if (config->limit == 0) {
      return Status::InvalidArgument("limit(M) needs M >= 1");
    }
    return Status::OK();
  }
  return Status::InvalidArgument("unknown failpoint modifier '" +
                                 std::string(text) + "'");
}

}  // namespace

std::string_view FailpointActionToString(FailpointAction action) {
  switch (action) {
    case FailpointAction::kError:
      return "error";
    case FailpointAction::kThrow:
      return "throw";
    case FailpointAction::kCorruptBytes:
      return "corrupt-bytes";
    case FailpointAction::kDelay:
      return "delay";
    case FailpointAction::kAbort:
      return "abort";
  }
  return "unknown";
}

Failpoint::Failpoint(std::string site)
    : site_(std::move(site)), span_name_("failpoint." + site_) {}

void Failpoint::Arm(FailpointConfig config) {
  std::lock_guard<std::mutex> lock(mutex_);
  config_ = config;
  hits_ = 0;
  fires_ = 0;
  armed_.store(true, std::memory_order_relaxed);
}

void Failpoint::Disarm() {
  std::lock_guard<std::mutex> lock(mutex_);
  armed_.store(false, std::memory_order_relaxed);
}

uint64_t Failpoint::hits() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return hits_;
}

uint64_t Failpoint::fires() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return fires_;
}

bool Failpoint::ShouldFire(uint64_t key, FailpointConfig* config,
                           uint64_t* fire) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!armed_.load(std::memory_order_relaxed)) return false;
  if (config_.has_key && key != config_.key) return false;
  ++hits_;
  bool fires = false;
  switch (config_.schedule) {
    case FailpointConfig::Schedule::kAlways:
      fires = true;
      break;
    case FailpointConfig::Schedule::kEveryN:
      fires = hits_ % config_.schedule_n == 0;
      break;
    case FailpointConfig::Schedule::kNth:
      fires = hits_ == config_.schedule_n;
      break;
  }
  if (fires && config_.limit > 0 && fires_ >= config_.limit) fires = false;
  if (!fires) return false;
  *fire = ++fires_;
  *config = config_;
  return true;
}

Status Failpoint::Act(const FailpointConfig& config, uint64_t fire,
                      std::string* bytes) {
  if (FailpointObserver* observer =
          g_observer.load(std::memory_order_acquire)) {
    observer->OnTrigger(*this, config.action);
  }
  switch (config.action) {
    case FailpointAction::kError:
      return Status::Internal("failpoint '" + site_ + "' injected failure");
    case FailpointAction::kThrow:
      throw FailpointException(site_);
    case FailpointAction::kDelay:
      std::this_thread::sleep_for(
          std::chrono::duration<double, std::milli>(config.delay_ms));
      return Status::OK();
    case FailpointAction::kCorruptBytes:
      // Flip one deterministic bit per fire: position from the fire
      // ordinal, never the same twice in a row for growing buffers.
      if (bytes != nullptr && !bytes->empty()) {
        const uint64_t mixed = Mix64(fire);
        (*bytes)[mixed % bytes->size()] ^=
            static_cast<char>(1u << (mixed % 8));
      }
      return Status::OK();
    case FailpointAction::kAbort:
      // The observer above already ran (flight-recorder dump attempted);
      // now die without flushing anything else, like a kill -9 landing
      // exactly here.
      std::_Exit(config.abort_code);
  }
  return Status::OK();
}

Status Failpoint::Evaluate(uint64_t key) {
  FailpointConfig config;
  uint64_t fire = 0;
  if (!ShouldFire(key, &config, &fire)) return Status::OK();
  return Act(config, fire, nullptr);
}

Status Failpoint::CorruptBytes(std::string* bytes, uint64_t key) {
  FailpointConfig config;
  uint64_t fire = 0;
  if (!ShouldFire(key, &config, &fire)) return Status::OK();
  return Act(config, fire, bytes);
}

FailpointRegistry& FailpointRegistry::Global() {
  static FailpointRegistry* const registry = new FailpointRegistry();
  return *registry;
}

Failpoint* FailpointRegistry::Get(std::string_view site) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = sites_.find(site);
  if (it != sites_.end()) return it->second.get();
  auto failpoint =
      std::unique_ptr<Failpoint>(new Failpoint(std::string(site)));
  Failpoint* pointer = failpoint.get();
  sites_.emplace(std::string(site), std::move(failpoint));
  return pointer;
}

Status FailpointRegistry::ArmFromSpec(std::string_view spec) {
  for (const std::string_view entry : Split(spec, ';')) {
    const std::string_view trimmed = StripAsciiWhitespace(entry);
    if (trimmed.empty()) continue;
    const size_t equals = trimmed.find('=');
    if (equals == std::string_view::npos || equals == 0) {
      return Status::InvalidArgument(
          "failpoint spec entry '" + std::string(trimmed) +
          "' is not of the form site=action[@modifier...]");
    }
    const std::string_view site =
        StripAsciiWhitespace(trimmed.substr(0, equals));
    FailpointConfig config;
    bool first = true;
    for (const std::string_view part :
         Split(trimmed.substr(equals + 1), '@')) {
      const std::string_view token = StripAsciiWhitespace(part);
      const Status parsed = first ? ParseAction(token, &config)
                                  : ParseModifier(token, &config);
      if (!parsed.ok()) {
        return parsed.WithContext("failpoint spec entry '" +
                                  std::string(trimmed) + "'");
      }
      first = false;
    }
    if (first) {
      return Status::InvalidArgument("failpoint spec entry '" +
                                     std::string(trimmed) +
                                     "' is missing an action");
    }
    Get(site)->Arm(config);
  }
  return Status::OK();
}

Status FailpointRegistry::ArmFromEnv() {
  const char* spec = std::getenv("CHURNLAB_FAILPOINTS");
  if (spec == nullptr || *spec == '\0') return Status::OK();
  return ArmFromSpec(spec).WithContext("CHURNLAB_FAILPOINTS");
}

void FailpointRegistry::DisarmAll() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [site, failpoint] : sites_) failpoint->Disarm();
}

std::vector<Failpoint*> FailpointRegistry::Armed() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<Failpoint*> armed;
  for (const auto& [site, failpoint] : sites_) {
    if (failpoint->armed()) armed.push_back(failpoint.get());
  }
  return armed;
}

void FailpointRegistry::SetObserver(FailpointObserver* observer) {
  g_observer.store(observer, std::memory_order_release);
}

}  // namespace churnlab
