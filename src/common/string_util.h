#ifndef CHURNLAB_COMMON_STRING_UTIL_H_
#define CHURNLAB_COMMON_STRING_UTIL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"

namespace churnlab {

/// Splits `text` on `delimiter`, keeping empty fields ("a,,b" -> 3 fields).
std::vector<std::string_view> Split(std::string_view text, char delimiter);

/// Joins `parts` with `separator`.
std::string Join(const std::vector<std::string>& parts,
                 std::string_view separator);

/// Removes leading and trailing ASCII whitespace.
std::string_view StripAsciiWhitespace(std::string_view text);

/// True iff `text` begins with `prefix` / ends with `suffix`.
bool StartsWith(std::string_view text, std::string_view prefix);
bool EndsWith(std::string_view text, std::string_view suffix);

/// ASCII lower-casing (locale independent).
std::string AsciiToLower(std::string_view text);

/// Strict full-string numeric parsers: the entire (whitespace-stripped)
/// input must be consumed, otherwise InvalidArgument is returned.
Result<int64_t> ParseInt64(std::string_view text);
Result<uint64_t> ParseUint64(std::string_view text);
Result<double> ParseDouble(std::string_view text);

/// Formats `value` with `digits` digits after the decimal point.
std::string FormatDouble(double value, int digits);

/// Renders 1234567 as "1,234,567" for report output.
std::string FormatWithThousandsSeparators(int64_t value);

}  // namespace churnlab

#endif  // CHURNLAB_COMMON_STRING_UTIL_H_
