#include "common/string_util.h"

#include <cctype>
#include <cerrno>
#include <charconv>
#include <cstdio>
#include <cstdlib>

namespace churnlab {

std::vector<std::string_view> Split(std::string_view text, char delimiter) {
  std::vector<std::string_view> parts;
  size_t start = 0;
  for (;;) {
    const size_t pos = text.find(delimiter, start);
    if (pos == std::string_view::npos) {
      parts.push_back(text.substr(start));
      return parts;
    }
    parts.push_back(text.substr(start, pos - start));
    start = pos + 1;
  }
}

std::string Join(const std::vector<std::string>& parts,
                 std::string_view separator) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += separator;
    out += parts[i];
  }
  return out;
}

std::string_view StripAsciiWhitespace(std::string_view text) {
  size_t begin = 0;
  size_t end = text.size();
  while (begin < end &&
         std::isspace(static_cast<unsigned char>(text[begin]))) {
    ++begin;
  }
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(text[end - 1]))) {
    --end;
  }
  return text.substr(begin, end - begin);
}

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view text, std::string_view suffix) {
  return text.size() >= suffix.size() &&
         text.substr(text.size() - suffix.size()) == suffix;
}

std::string AsciiToLower(std::string_view text) {
  std::string out(text);
  for (char& c : out) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

Result<int64_t> ParseInt64(std::string_view text) {
  const std::string_view stripped = StripAsciiWhitespace(text);
  int64_t value = 0;
  const auto [ptr, ec] =
      std::from_chars(stripped.data(), stripped.data() + stripped.size(),
                      value);
  if (ec != std::errc() || ptr != stripped.data() + stripped.size()) {
    return Status::InvalidArgument("cannot parse int64 from '" +
                                   std::string(text) + "'");
  }
  return value;
}

Result<uint64_t> ParseUint64(std::string_view text) {
  const std::string_view stripped = StripAsciiWhitespace(text);
  uint64_t value = 0;
  const auto [ptr, ec] =
      std::from_chars(stripped.data(), stripped.data() + stripped.size(),
                      value);
  if (ec != std::errc() || ptr != stripped.data() + stripped.size()) {
    return Status::InvalidArgument("cannot parse uint64 from '" +
                                   std::string(text) + "'");
  }
  return value;
}

Result<double> ParseDouble(std::string_view text) {
  const std::string_view stripped = StripAsciiWhitespace(text);
  if (stripped.empty()) {
    return Status::InvalidArgument("cannot parse double from empty string");
  }
  // std::from_chars for double is not available in all libstdc++ configs we
  // target, so go through strtod with an explicit end check.
  const std::string buffer(stripped);
  errno = 0;
  char* end = nullptr;
  const double value = std::strtod(buffer.c_str(), &end);
  if (errno == ERANGE || end != buffer.c_str() + buffer.size()) {
    return Status::InvalidArgument("cannot parse double from '" +
                                   std::string(text) + "'");
  }
  return value;
}

std::string FormatDouble(double value, int digits) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*f", digits, value);
  return buffer;
}

std::string FormatWithThousandsSeparators(int64_t value) {
  const bool negative = value < 0;
  std::string digits = std::to_string(negative ? -value : value);
  std::string out;
  out.reserve(digits.size() + digits.size() / 3 + 1);
  const size_t first_group = digits.size() % 3 == 0 ? 3 : digits.size() % 3;
  for (size_t i = 0; i < digits.size(); ++i) {
    if (i != 0 && (i - first_group) % 3 == 0 && i >= first_group) out += ',';
    out += digits[i];
  }
  return negative ? "-" + out : out;
}

}  // namespace churnlab
