#ifndef CHURNLAB_COMMON_STOPWATCH_H_
#define CHURNLAB_COMMON_STOPWATCH_H_

#include <chrono>

namespace churnlab {

/// \brief Wall-clock stopwatch for coarse timing in harnesses and reports.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()), lap_(start_) {}

  /// Restarts the stopwatch (total and lap segment).
  void Reset() {
    start_ = Clock::now();
    lap_ = start_;
  }

  /// Elapsed seconds since construction / last Reset.
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed milliseconds since construction / last Reset.
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

  /// Seconds since the last Lap() (or construction / Reset), and starts the
  /// next lap segment. The overall ElapsedSeconds() is unaffected, so one
  /// stopwatch can time consecutive phases and the whole run:
  /// \code
  ///   Stopwatch sw;
  ///   LoadData();   const double load_s = sw.LapSeconds();
  ///   RunSearch();  const double search_s = sw.LapSeconds();
  ///   Report(load_s, search_s, sw.ElapsedSeconds());
  /// \endcode
  double LapSeconds() {
    const Clock::time_point now = Clock::now();
    const double seconds = std::chrono::duration<double>(now - lap_).count();
    lap_ = now;
    return seconds;
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
  Clock::time_point lap_;
};

}  // namespace churnlab

#endif  // CHURNLAB_COMMON_STOPWATCH_H_
