#ifndef CHURNLAB_COMMON_STOPWATCH_H_
#define CHURNLAB_COMMON_STOPWATCH_H_

#include <chrono>

namespace churnlab {

/// \brief Wall-clock stopwatch for coarse timing in harnesses and reports.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  /// Restarts the stopwatch.
  void Reset() { start_ = Clock::now(); }

  /// Elapsed seconds since construction / last Reset.
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed milliseconds since construction / last Reset.
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace churnlab

#endif  // CHURNLAB_COMMON_STOPWATCH_H_
