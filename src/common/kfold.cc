#include "common/kfold.h"

#include <algorithm>
#include <map>

namespace churnlab {

Result<StratifiedKFold> StratifiedKFold::Make(const std::vector<int>& labels,
                                              size_t k, uint64_t seed) {
  if (k < 2) {
    return Status::InvalidArgument("k must be >= 2");
  }
  if (labels.size() < k) {
    return Status::InvalidArgument("need at least k examples");
  }

  // Group indices by class, shuffle within class, deal round-robin.
  std::map<int, std::vector<size_t>> by_class;
  for (size_t i = 0; i < labels.size(); ++i) {
    by_class[labels[i]].push_back(i);
  }
  Rng rng(seed);
  std::vector<std::vector<size_t>> folds(k);
  size_t next_fold = 0;
  for (auto& [label, indices] : by_class) {
    (void)label;
    rng.Shuffle(&indices);
    for (const size_t index : indices) {
      folds[next_fold].push_back(index);
      next_fold = (next_fold + 1) % k;
    }
  }
  for (std::vector<size_t>& fold : folds) {
    std::sort(fold.begin(), fold.end());
  }
  return StratifiedKFold(std::move(folds));
}

std::vector<size_t> StratifiedKFold::TrainIndices(size_t fold) const {
  std::vector<size_t> train;
  for (size_t f = 0; f < folds_.size(); ++f) {
    if (f == fold) continue;
    train.insert(train.end(), folds_[f].begin(), folds_[f].end());
  }
  std::sort(train.begin(), train.end());
  return train;
}

}  // namespace churnlab
