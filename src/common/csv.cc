#include "common/csv.h"

#include <sstream>

namespace churnlab {

Result<CsvReader> CsvReader::Open(const std::string& path, char delimiter) {
  std::ifstream file(path, std::ios::binary);
  if (!file) {
    return Status::IOError("cannot open '" + path + "' for reading");
  }
  std::ostringstream contents;
  contents << file.rdbuf();
  if (file.bad()) {
    return Status::IOError("error while reading '" + path + "'");
  }
  return CsvReader(std::move(contents).str(), delimiter);
}

CsvReader CsvReader::FromString(std::string text, char delimiter) {
  return CsvReader(std::move(text), delimiter);
}

bool CsvReader::ReadRow(std::vector<std::string>* row) {
  row->clear();
  if (!status_.ok() || pos_ >= text_.size()) return false;

  std::string field;
  bool in_quotes = false;
  bool field_was_quoted = false;

  while (pos_ < text_.size()) {
    const char c = text_[pos_];
    if (in_quotes) {
      if (c == '"') {
        if (pos_ + 1 < text_.size() && text_[pos_ + 1] == '"') {
          field += '"';
          pos_ += 2;
        } else {
          in_quotes = false;
          ++pos_;
        }
      } else {
        field += c;
        ++pos_;
      }
      continue;
    }
    if (c == '"' && field.empty() && !field_was_quoted) {
      in_quotes = true;
      field_was_quoted = true;
      ++pos_;
    } else if (c == delimiter_) {
      row->push_back(std::move(field));
      field.clear();
      field_was_quoted = false;
      ++pos_;
    } else if (c == '\n' || c == '\r') {
      ++pos_;
      if (c == '\r' && pos_ < text_.size() && text_[pos_] == '\n') ++pos_;
      row->push_back(std::move(field));
      ++row_number_;
      return true;
    } else {
      field += c;
      ++pos_;
    }
  }

  if (in_quotes) {
    status_ = Status::InvalidArgument(
        "unterminated quoted CSV field at end of input (row " +
        std::to_string(row_number_ + 1) + ")");
    return false;
  }
  // Final row without trailing newline.
  row->push_back(std::move(field));
  ++row_number_;
  return true;
}

Result<CsvWriter> CsvWriter::Open(const std::string& path, char delimiter) {
  CsvWriter writer(delimiter);
  writer.file_.open(path, std::ios::binary | std::ios::trunc);
  if (!writer.file_) {
    return Status::IOError("cannot open '" + path + "' for writing");
  }
  writer.to_file_ = true;
  return writer;
}

CsvWriter CsvWriter::ToStringBuffer(char delimiter) {
  return CsvWriter(delimiter);
}

void CsvWriter::AppendField(std::string_view field) {
  const bool needs_quoting =
      field.find_first_of("\"\r\n") != std::string_view::npos ||
      field.find(delimiter_) != std::string_view::npos;
  if (!needs_quoting) {
    buffer_.append(field);
    return;
  }
  buffer_ += '"';
  for (char c : field) {
    if (c == '"') buffer_ += '"';
    buffer_ += c;
  }
  buffer_ += '"';
}

Status CsvWriter::WriteRow(const std::vector<std::string>& fields) {
  for (size_t i = 0; i < fields.size(); ++i) {
    if (i > 0) buffer_ += delimiter_;
    AppendField(fields[i]);
  }
  buffer_ += '\n';
  if (to_file_ && buffer_.size() >= size_t{1} << 20) {
    file_.write(buffer_.data(), static_cast<std::streamsize>(buffer_.size()));
    buffer_.clear();
    if (!file_) return Status::IOError("CSV write failed");
  }
  return Status::OK();
}

Status CsvWriter::Close() {
  if (!to_file_) return Status::OK();
  if (!buffer_.empty()) {
    file_.write(buffer_.data(), static_cast<std::streamsize>(buffer_.size()));
    buffer_.clear();
  }
  file_.close();
  if (file_.fail()) return Status::IOError("CSV close failed");
  return Status::OK();
}

}  // namespace churnlab
