#ifndef CHURNLAB_COMMON_FAILPOINT_H_
#define CHURNLAB_COMMON_FAILPOINT_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace churnlab {

/// \file
/// Named, registry-backed failpoints for deterministic fault injection.
///
/// A failpoint is a named site in the code (`"serve.ingest.batch"`) that is
/// normally inert — disarmed, a hit costs one relaxed atomic load and a
/// predicted branch — but can be armed, programmatically or via the
/// `CHURNLAB_FAILPOINTS` environment/CLI spec, to inject a failure:
///
///   - *error*:         the site observes an Internal Status
///   - *throw*:         the site throws FailpointException
///   - *corrupt-bytes*: the site deterministically flips one bit of a byte
///                      buffer it is about to write/consume
///   - *delay(ms)*:     the site sleeps for `ms` milliseconds
///   - *abort[(code)]*: the process exits immediately via std::_Exit with
///                      the given nonzero status (default 42) — no atexit
///                      handlers, no buffered-stream flush. The trigger
///                      observer runs first, so the flight recorder gets a
///                      chance to dump. This is how the crash harness
///                      simulates kill -9 at an exact instruction boundary.
///
/// Trigger schedules are deterministic — `always`, `every(N)` (hits N, 2N,
/// ...), `nth(K)` (hit K only) — so an injected fault replays bit-identically
/// run over run. Sites that pass a key (customer id, shard index) can be
/// narrowed with `key(K)`, which makes injection deterministic even across
/// thread counts, and `limit(M)` caps the number of fires. The full spec
/// grammar lives in docs/ROBUSTNESS.md:
///
///   CHURNLAB_FAILPOINTS='serve.shard.task=throw@nth(1);x=delay(5)@every(10)'
///
/// Typical use in a Status-returning function:
/// \code
///   Status IngestBatch(...) {
///     CHURNLAB_FAILPOINT("serve.ingest.batch");
///     ...
///   }
/// \endcode

/// What an armed failpoint does when its schedule fires.
enum class FailpointAction {
  kError,         ///< the site observes Status::Internal
  kThrow,         ///< the site throws FailpointException
  kCorruptBytes,  ///< CorruptBytes() flips one bit of the buffer
  kDelay,         ///< the site sleeps for delay_ms
  kAbort,         ///< the process _Exit()s with abort_code (crash injection)
};

std::string_view FailpointActionToString(FailpointAction action);

/// Thrown by the *throw* action. Carries the site name so handlers (and
/// ThreadPool exception capture) can attribute the fault.
class FailpointException : public std::runtime_error {
 public:
  explicit FailpointException(const std::string& site)
      : std::runtime_error("failpoint '" + site + "' injected exception"),
        site_(site) {}

  const std::string& site() const { return site_; }

 private:
  std::string site_;
};

/// Full arming configuration of one failpoint.
struct FailpointConfig {
  FailpointAction action = FailpointAction::kError;
  /// Sleep duration for the *delay* action.
  double delay_ms = 0.0;
  /// Exit status for the *abort* action; must be in [1, 255] so the parent
  /// can always distinguish an injected crash from a clean exit.
  int abort_code = 42;

  enum class Schedule {
    kAlways,  ///< every matching hit fires
    kEveryN,  ///< matching hits N, 2N, 3N, ... fire (deterministic 1-in-N)
    kNth,     ///< only matching hit number N fires
  };
  Schedule schedule = Schedule::kAlways;
  /// The N of kEveryN / kNth; ignored (and 1) for kAlways.
  uint64_t schedule_n = 1;

  /// When set, only hits carrying exactly this key (customer id, shard
  /// index, ... — site-defined) count toward the schedule. Keyed arming is
  /// what makes injection deterministic across thread counts.
  bool has_key = false;
  uint64_t key = 0;

  /// Maximum number of fires; 0 means unlimited.
  uint64_t limit = 0;
};

class Failpoint;

/// Telemetry hook: installed process-wide (see obs::InstallFaultTelemetry,
/// which bridges triggers into the metrics registry and the span tree).
/// OnTrigger runs on the hitting thread, before the action executes.
class FailpointObserver {
 public:
  virtual ~FailpointObserver() = default;
  virtual void OnTrigger(const Failpoint& failpoint,
                         FailpointAction action) = 0;
};

/// \brief One named failpoint. Instances are owned by the registry and are
/// never freed, so call sites may cache the pointer in a static.
class Failpoint {
 public:
  /// Sentinel for hits at sites that have no natural key.
  static constexpr uint64_t kNoKey = ~uint64_t{0};

  const std::string& site() const { return site_; }
  /// "failpoint.<site>" — stable storage for trace spans.
  const std::string& span_name() const { return span_name_; }

  /// Disarmed fast path: one relaxed load.
  bool armed() const { return armed_.load(std::memory_order_relaxed); }

  void Arm(FailpointConfig config);
  void Disarm();

  /// Matching hits / action fires since the last Arm().
  uint64_t hits() const;
  uint64_t fires() const;

  /// Evaluates one hit. Returns the injected error for the *error* action,
  /// throws for *throw*, sleeps then returns OK for *delay*, and returns OK
  /// for *corrupt-bytes* (which only acts through CorruptBytes) or when the
  /// schedule does not fire. Call only behind an armed() check (the
  /// CHURNLAB_FAILPOINT macros do).
  Status Evaluate(uint64_t key = kNoKey);

  /// Hit for byte-buffer sites: when the schedule fires with the
  /// *corrupt-bytes* action, deterministically flips one bit of `*bytes`
  /// (position and bit derived from the fire count; empty buffers are left
  /// alone). Other actions behave exactly as Evaluate.
  Status CorruptBytes(std::string* bytes, uint64_t key = kNoKey);

 private:
  friend class FailpointRegistry;
  explicit Failpoint(std::string site);

  /// Counts the hit and decides whether the schedule fires; returns the
  /// config snapshot to act on.
  bool ShouldFire(uint64_t key, FailpointConfig* config, uint64_t* fire);

  Status Act(const FailpointConfig& config, uint64_t fire,
             std::string* bytes);

  const std::string site_;
  const std::string span_name_;
  std::atomic<bool> armed_{false};
  mutable std::mutex mutex_;
  FailpointConfig config_;
  uint64_t hits_ = 0;
  uint64_t fires_ = 0;
};

/// \brief Process-wide name -> Failpoint map.
///
/// Lookup takes a mutex; hitting a (cached) failpoint pointer is lock-free
/// while disarmed. Failpoints are created on first Get and never freed.
class FailpointRegistry {
 public:
  FailpointRegistry() = default;
  FailpointRegistry(const FailpointRegistry&) = delete;
  FailpointRegistry& operator=(const FailpointRegistry&) = delete;

  static FailpointRegistry& Global();

  /// Finds or creates the named failpoint. The pointer stays valid for the
  /// process lifetime.
  Failpoint* Get(std::string_view site);

  /// Arms failpoints from a spec string (grammar in docs/ROBUSTNESS.md):
  ///
  ///   spec   := entry (';' entry)*
  ///   entry  := site '=' action ('@' modifier)*
  ///   action := 'error' | 'throw' | 'corrupt-bytes' | 'delay(' ms ')'
  ///             | 'abort' | 'abort(' code ')'
  ///   mod    := 'always' | 'every(' N ')' | 'nth(' N ')' | 'key(' K ')'
  ///             | 'limit(' M ')'
  ///
  /// Empty entries are ignored; an invalid entry fails the whole call with
  /// InvalidArgument and arms nothing from it (earlier entries stay armed).
  Status ArmFromSpec(std::string_view spec);

  /// Arms from the CHURNLAB_FAILPOINTS environment variable; OK when unset
  /// or empty.
  Status ArmFromEnv();

  void DisarmAll();

  /// Currently armed failpoints, sorted by site name.
  std::vector<Failpoint*> Armed() const;

  /// Installs the process-wide trigger observer (not owned; pass nullptr to
  /// remove). Typically obs::InstallFaultTelemetry's bridge.
  static void SetObserver(FailpointObserver* observer);

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Failpoint>, std::less<>> sites_;
};

/// Hits a keyless failpoint in a Status-returning function: on an injected
/// error the enclosing function returns it. Disarmed cost: one relaxed load.
#define CHURNLAB_FAILPOINT(site_name)                              \
  do {                                                             \
    static ::churnlab::Failpoint* const churnlab_failpoint__ =     \
        ::churnlab::FailpointRegistry::Global().Get(site_name);    \
    if (churnlab_failpoint__->armed()) {                           \
      ::churnlab::Status churnlab_failpoint_status__ =             \
          churnlab_failpoint__->Evaluate();                        \
      if (!churnlab_failpoint_status__.ok()) {                     \
        return churnlab_failpoint_status__;                        \
      }                                                            \
    }                                                              \
  } while (false)

/// As CHURNLAB_FAILPOINT, with a site-defined key (customer id, shard
/// index, ...) the spec can match with key(K).
#define CHURNLAB_FAILPOINT_KEYED(site_name, key_value)             \
  do {                                                             \
    static ::churnlab::Failpoint* const churnlab_failpoint__ =     \
        ::churnlab::FailpointRegistry::Global().Get(site_name);    \
    if (churnlab_failpoint__->armed()) {                           \
      ::churnlab::Status churnlab_failpoint_status__ =             \
          churnlab_failpoint__->Evaluate(                          \
              static_cast<uint64_t>(key_value));                   \
      if (!churnlab_failpoint_status__.ok()) {                     \
        return churnlab_failpoint_status__;                        \
      }                                                            \
    }                                                              \
  } while (false)

}  // namespace churnlab

#endif  // CHURNLAB_COMMON_FAILPOINT_H_
