#ifndef CHURNLAB_COMMON_RESULT_H_
#define CHURNLAB_COMMON_RESULT_H_

#include <optional>
#include <type_traits>
#include <utility>

#include "common/status.h"

namespace churnlab {

/// \brief A value-or-error discriminated union, Arrow-style.
///
/// `Result<T>` holds either a `T` (success) or a non-OK `Status` (failure).
/// Functions that logically return a value but can fail should return
/// `Result<T>`:
/// \code
///   Result<Dataset> LoadCsv(const std::string& path);
///
///   auto res = LoadCsv(path);
///   if (!res.ok()) return res.status();
///   Dataset ds = std::move(res).ValueOrDie();
/// \endcode
/// or with the convenience macro:
/// \code
///   CHURNLAB_ASSIGN_OR_RETURN(Dataset ds, LoadCsv(path));
/// \endcode
template <typename T>
class [[nodiscard]] Result {
 public:
  using ValueType = T;

  /// Constructs a failed result. `status` must not be OK; an OK status is
  /// converted to an Internal error since there is no value to hold.
  Result(Status status)  // NOLINT(google-explicit-constructor)
      : status_(std::move(status)) {
    if (status_.ok()) {
      status_ = Status::Internal("Result constructed from OK status");
    }
  }

  /// Constructs a successful result holding `value`.
  Result(T value)  // NOLINT(google-explicit-constructor)
      : value_(std::move(value)) {}

  Result(const Result&) = default;
  Result& operator=(const Result&) = default;
  Result(Result&&) noexcept(std::is_nothrow_move_constructible_v<T>) = default;
  Result& operator=(Result&&) noexcept(
      std::is_nothrow_move_assignable_v<T>) = default;

  /// True iff a value is present.
  bool ok() const { return value_.has_value(); }

  /// The status: OK when a value is present, the error otherwise.
  const Status& status() const { return status_; }

  /// Returns the contained value; aborts if this result holds an error.
  const T& ValueOrDie() const& {
    DieIfError();
    return *value_;
  }
  T& ValueOrDie() & {
    DieIfError();
    return *value_;
  }
  T&& ValueOrDie() && {
    DieIfError();
    return std::move(*value_);
  }

  /// Alias for ValueOrDie, mirroring std::expected::value naming.
  const T& operator*() const& { return ValueOrDie(); }
  T& operator*() & { return ValueOrDie(); }
  T&& operator*() && { return std::move(*this).ValueOrDie(); }

  const T* operator->() const { return &ValueOrDie(); }
  T* operator->() { return &ValueOrDie(); }

  /// Returns the value, or `fallback` if this result holds an error.
  T ValueOr(T fallback) const& { return ok() ? *value_ : std::move(fallback); }
  T ValueOr(T fallback) && {
    return ok() ? std::move(*value_) : std::move(fallback);
  }

 private:
  void DieIfError() const {
    if (!ok()) status_.Abort("Result::ValueOrDie on error");
  }

  Status status_;
  std::optional<T> value_;
};

}  // namespace churnlab

#endif  // CHURNLAB_COMMON_RESULT_H_
