#include "common/math_util.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>

namespace churnlab {

double Sigmoid(double x) {
  if (x >= 0.0) {
    const double z = std::exp(-x);
    return 1.0 / (1.0 + z);
  }
  const double z = std::exp(x);
  return z / (1.0 + z);
}

double Log1pExp(double x) {
  if (x > 35.0) return x;           // exp(-x) below double epsilon
  if (x < -35.0) return std::exp(x);
  return std::log1p(std::exp(x));
}

double ClampedPow(double base, double exponent, double max_abs_exponent) {
  assert(base > 0.0);
  assert(max_abs_exponent >= 0.0);
  const double log_base = std::log(base);
  double log_value = exponent * log_base;
  const double limit = max_abs_exponent * std::abs(log_base);
  log_value = std::clamp(log_value, -limit, limit);
  return std::exp(log_value);
}

double Dot(const std::vector<double>& a, const std::vector<double>& b) {
  assert(a.size() == b.size());
  double sum = 0.0;
  for (size_t i = 0; i < a.size(); ++i) sum += a[i] * b[i];
  return sum;
}

double Mean(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  return std::accumulate(values.begin(), values.end(), 0.0) /
         static_cast<double>(values.size());
}

double Variance(const std::vector<double>& values) {
  if (values.size() < 2) return 0.0;
  const double mean = Mean(values);
  double sum = 0.0;
  for (double v : values) sum += (v - mean) * (v - mean);
  return sum / static_cast<double>(values.size());
}

double StdDev(const std::vector<double>& values) {
  return std::sqrt(Variance(values));
}

double Clamp(double value, double lo, double hi) {
  return std::clamp(value, lo, hi);
}

bool AlmostEqual(double a, double b, double tolerance) {
  return std::abs(a - b) <= tolerance;
}

Result<std::vector<double>> SolveLinearSystem(std::vector<double> a,
                                              std::vector<double> b) {
  const size_t n = b.size();
  if (a.size() != n * n) {
    return Status::InvalidArgument("matrix is not n x n for n = rhs size");
  }
  // Forward elimination with partial pivoting.
  for (size_t col = 0; col < n; ++col) {
    size_t pivot = col;
    double best = std::abs(a[col * n + col]);
    for (size_t row = col + 1; row < n; ++row) {
      const double candidate = std::abs(a[row * n + col]);
      if (candidate > best) {
        best = candidate;
        pivot = row;
      }
    }
    if (best < 1e-300) {
      return Status::Internal("singular matrix in SolveLinearSystem");
    }
    if (pivot != col) {
      for (size_t k = col; k < n; ++k) {
        std::swap(a[col * n + k], a[pivot * n + k]);
      }
      std::swap(b[col], b[pivot]);
    }
    const double inv_diag = 1.0 / a[col * n + col];
    for (size_t row = col + 1; row < n; ++row) {
      const double factor = a[row * n + col] * inv_diag;
      if (factor == 0.0) continue;
      a[row * n + col] = 0.0;
      for (size_t k = col + 1; k < n; ++k) {
        a[row * n + k] -= factor * a[col * n + k];
      }
      b[row] -= factor * b[col];
    }
  }
  // Back substitution.
  std::vector<double> x(n, 0.0);
  for (size_t row_plus_1 = n; row_plus_1 > 0; --row_plus_1) {
    const size_t row = row_plus_1 - 1;
    double sum = b[row];
    for (size_t k = row + 1; k < n; ++k) {
      sum -= a[row * n + k] * x[k];
    }
    x[row] = sum / a[row * n + row];
  }
  return x;
}

std::vector<double> FractionalRanks(const std::vector<double>& values) {
  const size_t n = values.size();
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), size_t{0});
  std::sort(order.begin(), order.end(),
            [&](size_t a, size_t b) { return values[a] < values[b]; });

  std::vector<double> ranks(n, 0.0);
  size_t i = 0;
  while (i < n) {
    size_t j = i;
    while (j + 1 < n && values[order[j + 1]] == values[order[i]]) ++j;
    // Positions i..j (0-based) share the average of 1-based ranks i+1..j+1.
    const double avg_rank = (static_cast<double>(i) +
                             static_cast<double>(j)) / 2.0 + 1.0;
    for (size_t k = i; k <= j; ++k) ranks[order[k]] = avg_rank;
    i = j + 1;
  }
  return ranks;
}

}  // namespace churnlab
