#include "common/retry.h"

#include <algorithm>
#include <chrono>
#include <exception>
#include <thread>

namespace churnlab {

double RetryPolicy::BackoffMs(int retry) const {
  double backoff = initial_backoff_ms;
  for (int i = 1; i < retry; ++i) {
    backoff *= multiplier;
    if (backoff >= max_backoff_ms) break;
  }
  return std::min(backoff, max_backoff_ms);
}

Status RetryWithBackoff(
    const RetryPolicy& policy, const std::function<Status()>& fn,
    const std::function<void(int retry, const Status&)>& on_retry) {
  Status last;
  const int attempts = 1 + std::max(policy.max_retries, 0);
  for (int attempt = 0; attempt < attempts; ++attempt) {
    if (attempt > 0) {
      if (on_retry) on_retry(attempt, last);
      const double backoff_ms = policy.BackoffMs(attempt);
      if (backoff_ms > 0.0) {
        std::this_thread::sleep_for(
            std::chrono::duration<double, std::milli>(backoff_ms));
      }
    }
    try {
      last = fn();
    } catch (const std::exception& e) {
      last = Status::Internal(std::string("retried operation threw: ") +
                              e.what());
    } catch (...) {
      last = Status::Internal("retried operation threw a non-std exception");
    }
    if (last.ok()) return last;
  }
  return last;
}

}  // namespace churnlab
