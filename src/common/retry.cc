#include "common/retry.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <exception>
#include <thread>

namespace churnlab {

double RetryPolicy::BackoffMs(int retry) const {
  // Closed form instead of a multiply loop: O(1) at any attempt count, and
  // a non-finite intermediate (overflowing multiplier chain) clamps to the
  // cap instead of propagating inf/nan into the sleep duration.
  double backoff = initial_backoff_ms;
  if (retry > 1) {
    backoff *= std::pow(multiplier, static_cast<double>(retry - 1));
  }
  if (!std::isfinite(backoff)) return std::max(max_backoff_ms, 0.0);
  return std::clamp(backoff, 0.0, std::max(max_backoff_ms, 0.0));
}

Status RetryWithBackoff(
    const RetryPolicy& policy, const std::function<Status()>& fn,
    const std::function<void(int retry, const Status&)>& on_retry) {
  Status last;
  // 64-bit attempt budget: max_retries == INT_MAX must not wrap `1 + n`
  // into a non-positive count that would skip fn entirely and return a
  // default-constructed OK status.
  const int64_t attempts =
      1 + static_cast<int64_t>(std::max(policy.max_retries, 0));
  for (int64_t attempt = 0; attempt < attempts; ++attempt) {
    if (attempt > 0) {
      const int retry = static_cast<int>(attempt);  // <= INT_MAX by bound
      if (on_retry) on_retry(retry, last);
      const double backoff_ms = policy.BackoffMs(retry);
      if (backoff_ms > 0.0) {
        std::this_thread::sleep_for(
            std::chrono::duration<double, std::milli>(backoff_ms));
      }
    }
    try {
      last = fn();
    } catch (const std::exception& e) {
      last = Status::Internal(std::string("retried operation threw: ") +
                              e.what());
    } catch (...) {
      last = Status::Internal("retried operation threw a non-std exception");
    }
    if (last.ok()) return last;
  }
  return last;
}

}  // namespace churnlab
