#ifndef CHURNLAB_COMMON_CSV_H_
#define CHURNLAB_COMMON_CSV_H_

#include <fstream>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace churnlab {

/// \brief Incremental RFC-4180-style CSV reader over a file or in-memory
/// text.
///
/// Supports quoted fields (embedded delimiters, quotes doubled as `""`,
/// embedded newlines inside quotes) and both `\n` and `\r\n` row endings.
/// Rows are surfaced as vectors of decoded field strings:
/// \code
///   CHURNLAB_ASSIGN_OR_RETURN(CsvReader reader, CsvReader::Open(path));
///   std::vector<std::string> row;
///   while (reader.ReadRow(&row)) { ... }
///   CHURNLAB_RETURN_NOT_OK(reader.status());
/// \endcode
class CsvReader {
 public:
  /// Opens `path` for reading. Fails with IOError if unreadable.
  static Result<CsvReader> Open(const std::string& path, char delimiter = ',');

  /// Wraps in-memory CSV text (copied).
  static CsvReader FromString(std::string text, char delimiter = ',');

  CsvReader(CsvReader&&) = default;
  CsvReader& operator=(CsvReader&&) = default;
  CsvReader(const CsvReader&) = delete;
  CsvReader& operator=(const CsvReader&) = delete;

  /// Reads the next row into `*row` (cleared first). Returns false at end of
  /// input or on malformed input; check `status()` to distinguish.
  bool ReadRow(std::vector<std::string>* row);

  /// OK unless a malformed record (e.g. unterminated quote) was hit.
  const Status& status() const { return status_; }

  /// 1-based number of the last row returned (0 before the first ReadRow).
  size_t row_number() const { return row_number_; }

 private:
  CsvReader(std::string text, char delimiter)
      : text_(std::move(text)), delimiter_(delimiter) {}

  std::string text_;
  size_t pos_ = 0;
  char delimiter_;
  size_t row_number_ = 0;
  Status status_;
};

/// \brief CSV writer with RFC-4180 quoting.
///
/// Fields containing the delimiter, a quote, or a newline are quoted with
/// internal quotes doubled. Rows end with a single `\n`.
class CsvWriter {
 public:
  /// Opens `path` for (truncating) write.
  static Result<CsvWriter> Open(const std::string& path, char delimiter = ',');

  /// Collects output in memory; retrieve it with `ToString()`.
  static CsvWriter ToStringBuffer(char delimiter = ',');

  CsvWriter(CsvWriter&&) = default;
  CsvWriter& operator=(CsvWriter&&) = default;
  CsvWriter(const CsvWriter&) = delete;
  CsvWriter& operator=(const CsvWriter&) = delete;

  /// Appends one row.
  Status WriteRow(const std::vector<std::string>& fields);

  /// Flushes and closes the underlying file (no-op for string buffers).
  Status Close();

  /// Buffered output for ToStringBuffer writers.
  const std::string& ToString() const { return buffer_; }

 private:
  explicit CsvWriter(char delimiter) : delimiter_(delimiter) {}

  void AppendField(std::string_view field);

  char delimiter_;
  std::string buffer_;
  std::ofstream file_;
  bool to_file_ = false;
};

}  // namespace churnlab

#endif  // CHURNLAB_COMMON_CSV_H_
