#ifndef CHURNLAB_COMMON_ARENA_H_
#define CHURNLAB_COMMON_ARENA_H_

#include <array>
#include <cstddef>
#include <memory>
#include <vector>

namespace churnlab {

/// \brief Bump/pool allocator for dense per-customer state blocks.
///
/// Memory is carved sequentially out of large chunks (bump allocation).
/// Every block is rounded up to a size class — the powers of two from 8
/// up, plus a 3/4 midpoint between consecutive powers from 24 up (8, 16,
/// 24, 32, 48, 64, 96, ...), capping rounding waste at ~25% — and released
/// blocks go onto a per-class intrusive freelist for reuse, so growing a
/// counter block from one class to the next recycles the old block for a
/// later customer instead of fragmenting the heap. All blocks are 8-byte
/// aligned (classes are multiples of 8 carved from aligned chunk offsets),
/// which covers every element type stored in them, doubles included.
///
/// The arena never returns memory to the OS before destruction —
/// bytes_reserved() is monotone — but byte accounting is exact:
/// bytes_in_use() tracks live block capacity, and the difference between
/// the two is freelist plus bump slack. Not thread-safe; the serving layer
/// keeps one arena per shard behind the shard mutex.
class BlockArena {
 public:
  static constexpr size_t kDefaultChunkBytes = size_t{256} * 1024;
  static constexpr size_t kMinBlockBytes = 8;

  explicit BlockArena(size_t chunk_bytes = kDefaultChunkBytes);
  BlockArena(BlockArena&&) noexcept = default;
  BlockArena& operator=(BlockArena&&) noexcept = default;
  BlockArena(const BlockArena&) = delete;
  BlockArena& operator=(const BlockArena&) = delete;

  /// A block whose capacity is `min_bytes` rounded up to its size class.
  /// The capacity is written to `*capacity_bytes` and must be passed back
  /// verbatim to Release. The returned memory is uninitialized.
  void* Allocate(size_t min_bytes, size_t* capacity_bytes);

  /// Returns `block` (of capacity `capacity_bytes`, as reported by
  /// Allocate) to the freelist of its size class. nullptr is a no-op.
  void Release(void* block, size_t capacity_bytes);

  /// The smallest size class (>= kMinBlockBytes) serving `min_bytes`.
  static size_t SizeClassFor(size_t min_bytes);

  /// Chunk bytes held from the OS.
  size_t bytes_reserved() const { return bytes_reserved_; }
  /// Bytes inside live (allocated, unreleased) blocks, by class capacity.
  size_t bytes_in_use() const { return bytes_in_use_; }
  /// Live blocks outstanding.
  size_t blocks_in_use() const { return blocks_in_use_; }

 private:
  struct Chunk {
    std::unique_ptr<unsigned char[]> data;
    size_t size = 0;
    size_t used = 0;
  };
  /// Two classes per power of two (plus 8 and 16) cover every
  /// representable size on 64-bit platforms.
  static constexpr size_t kNumClasses = 128;

  /// Freelist index of the class holding blocks of `class_bytes`.
  static size_t ClassIndex(size_t class_bytes);

  size_t chunk_bytes_;
  std::vector<Chunk> chunks_;
  /// Intrusive singly-linked freelists: the first 8 bytes of a released
  /// block point at the next one (class sizes are >= 8 by construction).
  std::array<void*, kNumClasses> free_lists_{};
  size_t bytes_reserved_ = 0;
  size_t bytes_in_use_ = 0;
  size_t blocks_in_use_ = 0;
};

}  // namespace churnlab

#endif  // CHURNLAB_COMMON_ARENA_H_
