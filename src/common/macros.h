#ifndef CHURNLAB_COMMON_MACROS_H_
#define CHURNLAB_COMMON_MACROS_H_

#include <utility>

#include "common/status.h"

/// \file
/// Control-flow helpers for Status / Result plumbing, mirroring the
/// Arrow-style `RETURN_NOT_OK` / `ASSIGN_OR_RAISE` idioms.

#define CHURNLAB_CONCAT_IMPL(x, y) x##y
#define CHURNLAB_CONCAT(x, y) CHURNLAB_CONCAT_IMPL(x, y)

/// Evaluates `expr` (a Status expression); returns it from the enclosing
/// function if it is not OK.
#define CHURNLAB_RETURN_NOT_OK(expr)                       \
  do {                                                     \
    ::churnlab::Status churnlab_status_macro__ = (expr);   \
    if (!churnlab_status_macro__.ok()) {                   \
      return churnlab_status_macro__;                      \
    }                                                      \
  } while (false)

/// Evaluates `rexpr` (a Result<T> expression); on failure returns its status
/// from the enclosing function, on success assigns the value to `lhs` (which
/// may be a declaration such as `auto v`).
#define CHURNLAB_ASSIGN_OR_RETURN(lhs, rexpr) \
  CHURNLAB_ASSIGN_OR_RETURN_IMPL(             \
      CHURNLAB_CONCAT(churnlab_result_macro__, __COUNTER__), lhs, rexpr)

#define CHURNLAB_ASSIGN_OR_RETURN_IMPL(result_name, lhs, rexpr) \
  auto&& result_name = (rexpr);                                 \
  if (!result_name.ok()) {                                      \
    return result_name.status();                                \
  }                                                             \
  lhs = std::move(result_name).ValueOrDie()

/// Aborts the process if `expr` is not OK. For contexts with no error
/// channel (main(), benchmarks).
#define CHURNLAB_CHECK_OK(expr)                          \
  do {                                                   \
    ::churnlab::Status churnlab_status_macro__ = (expr); \
    churnlab_status_macro__.Abort(#expr);                \
  } while (false)

#endif  // CHURNLAB_COMMON_MACROS_H_
