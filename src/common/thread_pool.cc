#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <utility>

#include "common/logging.h"

namespace churnlab {

namespace {
std::atomic<ThreadPool::DroppedExceptionHook> g_dropped_hook{nullptr};
std::atomic<ThreadPool::WorkerStartHook> g_worker_start_hook{nullptr};
/// Process-unique worker ordinal, so hooks can label threads across pools.
std::atomic<size_t> g_next_worker_ordinal{0};
}  // namespace

ThreadPool::ThreadPool(size_t num_threads) {
  num_threads = std::max<size_t>(1, num_threads);
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] {
      const size_t ordinal =
          g_next_worker_ordinal.fetch_add(1, std::memory_order_relaxed);
      if (WorkerStartHook hook =
              g_worker_start_hook.load(std::memory_order_acquire)) {
        hook(ordinal);
      }
      WorkerLoop();
    });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutting_down_ = true;
  }
  work_available_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(task));
  }
  work_available_.notify_one();
}

uint64_t ThreadPool::dropped_exceptions() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return dropped_exceptions_;
}

void ThreadPool::SetDroppedExceptionHook(DroppedExceptionHook hook) {
  g_dropped_hook.store(hook, std::memory_order_release);
}

void ThreadPool::SetWorkerStartHook(WorkerStartHook hook) {
  g_worker_start_hook.store(hook, std::memory_order_release);
}

size_t ThreadPool::QueueDepth() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return queue_.size();
}

void ThreadPool::WaitIdle() {
  std::unique_lock<std::mutex> lock(mutex_);
  all_done_.wait(lock, [this] { return queue_.empty() && in_flight_ == 0; });
  const uint64_t dropped = std::exchange(dropped_unreported_, 0);
  if (first_exception_ != nullptr) {
    std::exception_ptr exception = std::exchange(first_exception_, nullptr);
    lock.unlock();
    if (dropped > 0) {
      CHURNLAB_LOG(Warning)
          << "thread pool dropped " << dropped
          << " additional task exception(s) behind the one being rethrown";
    }
    std::rethrow_exception(exception);
  }
  lock.unlock();
  if (dropped > 0) {
    CHURNLAB_LOG(Warning) << "thread pool dropped " << dropped
                          << " task exception(s)";
  }
}

void ThreadPool::WorkerLoop() {
  // Decrements in_flight_ on every exit path of a task, including throws,
  // so WaitIdle can never deadlock on a leaked count.
  struct InFlightGuard {
    ThreadPool* pool;
    ~InFlightGuard() {
      std::lock_guard<std::mutex> lock(pool->mutex_);
      --pool->in_flight_;
      if (pool->queue_.empty() && pool->in_flight_ == 0) {
        pool->all_done_.notify_all();
      }
    }
  };
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_available_.wait(
          lock, [this] { return shutting_down_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutting down
      task = std::move(queue_.front());
      queue_.pop_front();
      ++in_flight_;
    }
    {
      InFlightGuard guard{this};
      try {
        task();
      } catch (...) {
        bool dropped = false;
        {
          std::lock_guard<std::mutex> lock(mutex_);
          if (first_exception_ == nullptr) {
            first_exception_ = std::current_exception();
          } else {
            ++dropped_exceptions_;
            ++dropped_unreported_;
            dropped = true;
          }
        }
        if (dropped) {
          if (DroppedExceptionHook hook =
                  g_dropped_hook.load(std::memory_order_acquire)) {
            hook();
          }
        }
      }
    }
  }
}

void ParallelFor(size_t begin, size_t end, size_t num_threads,
                 const std::function<void(size_t)>& body) {
  if (begin >= end) return;
  const size_t count = end - begin;
  if (num_threads <= 1 || count < 2) {
    for (size_t i = begin; i < end; ++i) body(i);
    return;
  }
  num_threads = std::min(num_threads, count);
  std::mutex exception_mutex;
  std::exception_ptr first_exception;
  std::vector<std::thread> threads;
  threads.reserve(num_threads);
  const size_t chunk = (count + num_threads - 1) / num_threads;
  for (size_t t = 0; t < num_threads; ++t) {
    const size_t lo = begin + t * chunk;
    const size_t hi = std::min(end, lo + chunk);
    if (lo >= hi) break;
    threads.emplace_back([lo, hi, &body, &exception_mutex, &first_exception] {
      try {
        for (size_t i = lo; i < hi; ++i) body(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(exception_mutex);
        if (first_exception == nullptr) {
          first_exception = std::current_exception();
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  if (first_exception != nullptr) std::rethrow_exception(first_exception);
}

}  // namespace churnlab
