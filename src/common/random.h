#ifndef CHURNLAB_COMMON_RANDOM_H_
#define CHURNLAB_COMMON_RANDOM_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace churnlab {

/// \brief Deterministic pseudo-random generator (xoshiro256**) with the
/// sampling distributions the simulator and models need.
///
/// The generator is fully reproducible from its 64-bit seed on every
/// platform, which is what lets every experiment and test in the repository
/// pin its workload. Not cryptographic. Not thread-safe; use `Fork()` to
/// derive independent per-worker streams.
class Rng {
 public:
  /// Seeds the state from `seed` via SplitMix64 (so that nearby seeds give
  /// uncorrelated streams).
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// Returns the next raw 64-bit output.
  uint64_t NextUint64();

  /// Uniform in [0, bound). `bound` must be > 0. Uses Lemire's unbiased
  /// multiply-shift rejection method.
  uint64_t NextUint64(uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1) with 53 random bits.
  double NextDouble();

  /// Uniform double in [lo, hi).
  double UniformDouble(double lo, double hi);

  /// True with probability `p` (clamped to [0, 1]).
  bool Bernoulli(double p);

  /// Standard normal via Marsaglia polar method (cached spare deviate).
  double Normal();

  /// Normal with the given mean and standard deviation (stddev >= 0).
  double Normal(double mean, double stddev);

  /// Exponential with rate `lambda` > 0.
  double Exponential(double lambda);

  /// Poisson with mean `mean` >= 0. Knuth's product method for small means,
  /// normal approximation with continuity correction for mean > 64.
  int64_t Poisson(double mean);

  /// Gamma(shape k > 0, scale theta > 0) via Marsaglia-Tsang.
  double Gamma(double shape, double scale);

  /// Fisher-Yates shuffle of `values`.
  template <typename T>
  void Shuffle(std::vector<T>* values) {
    for (size_t i = values->size(); i > 1; --i) {
      const size_t j = static_cast<size_t>(NextUint64(i));
      std::swap((*values)[i - 1], (*values)[j]);
    }
  }

  /// Samples `k` distinct indices from [0, n) in uniformly random order.
  /// Returns fewer than `k` only when k > n (then all of [0, n) shuffled).
  std::vector<size_t> SampleWithoutReplacement(size_t n, size_t k);

  /// Derives an independent generator; deterministic given this generator's
  /// state. Advances this generator.
  Rng Fork();

 private:
  uint64_t state_[4];
  double spare_normal_ = 0.0;
  bool has_spare_normal_ = false;
};

/// \brief Zipf(s) sampler over the integers [0, n).
///
/// P(X = i) is proportional to 1 / (i + 1)^s. Uses Hörmann's
/// rejection-inversion, which is O(1) per sample for any n and s >= 0 —
/// the standard choice for product-popularity skew in retail simulation.
class ZipfDistribution {
 public:
  /// \param n number of distinct values, must be >= 1.
  /// \param s skew exponent, must be >= 0 (0 = uniform).
  ZipfDistribution(size_t n, double s);

  /// Draws one value in [0, n).
  size_t Sample(Rng* rng) const;

  size_t n() const { return n_; }
  double s() const { return s_; }

 private:
  double H(double x) const;
  double HInverse(double x) const;

  size_t n_;
  double s_;
  double h_x1_;
  double h_n_;
  double threshold_;  // s_ == 1 handled via log forms inside H/HInverse.
};

/// \brief Samples from an arbitrary discrete distribution in O(1) using
/// Walker's alias method; O(n) setup.
class DiscreteDistribution {
 public:
  /// \param weights non-negative, at least one strictly positive.
  /// Weights need not be normalised.
  explicit DiscreteDistribution(const std::vector<double>& weights);

  /// Draws an index in [0, weights.size()).
  size_t Sample(Rng* rng) const;

  size_t size() const { return prob_.size(); }

 private:
  std::vector<double> prob_;
  std::vector<uint32_t> alias_;
};

}  // namespace churnlab

#endif  // CHURNLAB_COMMON_RANDOM_H_
