#ifndef CHURNLAB_COMMON_FLAGS_H_
#define CHURNLAB_COMMON_FLAGS_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/status.h"

namespace churnlab {

/// \brief Minimal command-line flag parser for the CLI tool and harnesses.
///
/// Supports `--name=value`, `--name value`, bare `--bool_flag`, and `--help`
/// (which makes Parse return Cancelled after printing usage). Arguments not
/// starting with `--` are collected as positionals.
///
/// \code
///   FlagParser parser("score a dataset");
///   std::string data;
///   double alpha = 2.0;
///   parser.AddString("data", "", "dataset path (.clb or CSV prefix)", &data);
///   parser.AddDouble("alpha", alpha, "significance alpha", &alpha);
///   CHURNLAB_RETURN_NOT_OK(parser.Parse(argc, argv));
/// \endcode
class FlagParser {
 public:
  explicit FlagParser(std::string description);

  /// Registers a flag bound to `*target` (which also provides the default).
  /// Names must be unique; registration aborts on duplicates.
  void AddString(const std::string& name, const std::string& default_value,
                 const std::string& help, std::string* target);
  void AddInt64(const std::string& name, int64_t default_value,
                const std::string& help, int64_t* target);
  void AddUint64(const std::string& name, uint64_t default_value,
                 const std::string& help, uint64_t* target);
  void AddDouble(const std::string& name, double default_value,
                 const std::string& help, double* target);
  /// Boolean flags accept `--flag`, `--flag=true/false`, `--flag=1/0`.
  void AddBool(const std::string& name, bool default_value,
               const std::string& help, bool* target);

  /// Parses `argv[begin..argc)`. Returns InvalidArgument on unknown flags
  /// or unparsable values, Cancelled if `--help` was requested (usage is
  /// printed to stderr).
  Status Parse(int argc, const char* const* argv, int begin = 1);

  /// Arguments that did not look like flags, in order.
  const std::vector<std::string>& positional() const { return positional_; }

  /// Human-readable flag summary.
  std::string Usage() const;

 private:
  enum class Kind { kString, kInt64, kUint64, kDouble, kBool };
  struct Flag {
    Kind kind;
    void* target;
    std::string help;
    std::string default_text;
  };

  void Register(const std::string& name, Kind kind, void* target,
                std::string help, std::string default_text);
  Status Assign(const std::string& name, const std::string& value);

  std::string description_;
  std::map<std::string, Flag> flags_;
  std::vector<std::string> positional_;
};

}  // namespace churnlab

#endif  // CHURNLAB_COMMON_FLAGS_H_
