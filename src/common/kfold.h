#ifndef CHURNLAB_COMMON_KFOLD_H_
#define CHURNLAB_COMMON_KFOLD_H_

#include <cstddef>
#include <vector>

#include "common/random.h"
#include "common/result.h"

namespace churnlab {

/// \brief Stratified k-fold splitter.
///
/// Partitions example indices [0, labels.size()) into `k` folds whose class
/// proportions match the full set (binary or multi-class integer labels).
/// Used for the paper's 5-fold cross-validation: both the (w, alpha)
/// parameter search and the held-out scoring of the RFM logistic baseline.
class StratifiedKFold {
 public:
  /// Builds the folds. Requires 2 <= k <= labels.size(); shuffling is
  /// deterministic given `seed`.
  static Result<StratifiedKFold> Make(const std::vector<int>& labels,
                                      size_t k, uint64_t seed);

  size_t num_folds() const { return folds_.size(); }

  /// Example indices of fold `fold` (the test split of that round).
  const std::vector<size_t>& TestIndices(size_t fold) const {
    return folds_.at(fold);
  }

  /// Example indices of every fold except `fold` (the train split),
  /// ascending order.
  std::vector<size_t> TrainIndices(size_t fold) const;

 private:
  explicit StratifiedKFold(std::vector<std::vector<size_t>> folds)
      : folds_(std::move(folds)) {}

  std::vector<std::vector<size_t>> folds_;
};

}  // namespace churnlab

#endif  // CHURNLAB_COMMON_KFOLD_H_
