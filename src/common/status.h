#ifndef CHURNLAB_COMMON_STATUS_H_
#define CHURNLAB_COMMON_STATUS_H_

#include <memory>
#include <string>
#include <string_view>
#include <utility>

namespace churnlab {

/// \brief Machine-readable category of a Status.
///
/// Mirrors the Arrow/RocksDB convention: a small closed enumeration of error
/// classes, with free-form detail text carried alongside.
enum class StatusCode : char {
  kOk = 0,
  kInvalidArgument = 1,
  kIOError = 2,
  kNotFound = 3,
  kAlreadyExists = 4,
  kOutOfRange = 5,
  kNotImplemented = 6,
  kInternal = 7,
  kCancelled = 8,
  /// The operation requires state the object is not in (e.g. finishing a
  /// stream that never saw an observation).
  kFailedPrecondition = 9,
  /// A bounded resource (admission quota, queue capacity) is exhausted;
  /// the caller should back off and retry (HTTP 429, see docs/API.md).
  kResourceExhausted = 10,
  /// Unrecoverable loss or corruption of durable data (an interior journal
  /// frame failing its CRC, a truncated non-tail segment). Distinct from
  /// kIOError: retrying cannot help, the bytes are gone.
  kDataLoss = 11,
};

/// \brief Returns a human-readable name for a status code ("OK",
/// "Invalid argument", ...).
std::string_view StatusCodeToString(StatusCode code);

/// \brief Outcome of an operation that can fail.
///
/// `Status` is the library-wide error-reporting type: public APIs that can
/// fail return `Status` (or `Result<T>`, see result.h) instead of throwing.
/// The OK status is represented by a null internal state so that success is a
/// single pointer comparison and costs no allocation.
///
/// Typical usage:
/// \code
///   Status st = dataset.SaveCsv(path);
///   if (!st.ok()) return st;
/// \endcode
/// or with the convenience macro:
/// \code
///   CHURNLAB_RETURN_NOT_OK(dataset.SaveCsv(path));
/// \endcode
class Status {
 public:
  /// Creates an OK status.
  Status() = default;

  /// Creates a status with the given code and message. `code` must not be
  /// `StatusCode::kOk`; use the default constructor for success.
  Status(StatusCode code, std::string message);

  Status(const Status& other) = default;
  Status& operator=(const Status& other) = default;
  Status(Status&& other) noexcept = default;
  Status& operator=(Status&& other) noexcept = default;

  /// Returns an OK status.
  static Status OK() { return Status(); }

  static Status InvalidArgument(std::string message) {
    return Status(StatusCode::kInvalidArgument, std::move(message));
  }
  static Status IOError(std::string message) {
    return Status(StatusCode::kIOError, std::move(message));
  }
  static Status NotFound(std::string message) {
    return Status(StatusCode::kNotFound, std::move(message));
  }
  static Status AlreadyExists(std::string message) {
    return Status(StatusCode::kAlreadyExists, std::move(message));
  }
  static Status OutOfRange(std::string message) {
    return Status(StatusCode::kOutOfRange, std::move(message));
  }
  static Status NotImplemented(std::string message) {
    return Status(StatusCode::kNotImplemented, std::move(message));
  }
  static Status Internal(std::string message) {
    return Status(StatusCode::kInternal, std::move(message));
  }
  static Status Cancelled(std::string message) {
    return Status(StatusCode::kCancelled, std::move(message));
  }
  static Status FailedPrecondition(std::string message) {
    return Status(StatusCode::kFailedPrecondition, std::move(message));
  }
  static Status ResourceExhausted(std::string message) {
    return Status(StatusCode::kResourceExhausted, std::move(message));
  }
  static Status DataLoss(std::string message) {
    return Status(StatusCode::kDataLoss, std::move(message));
  }

  /// True iff the status is success.
  bool ok() const { return state_ == nullptr; }

  /// Status code; `kOk` for success.
  StatusCode code() const {
    return state_ == nullptr ? StatusCode::kOk : state_->code;
  }

  /// Detail message; empty for success.
  const std::string& message() const {
    static const std::string kEmpty;
    return state_ == nullptr ? kEmpty : state_->message;
  }

  bool IsInvalidArgument() const {
    return code() == StatusCode::kInvalidArgument;
  }
  bool IsIOError() const { return code() == StatusCode::kIOError; }
  bool IsNotFound() const { return code() == StatusCode::kNotFound; }
  bool IsAlreadyExists() const { return code() == StatusCode::kAlreadyExists; }
  bool IsOutOfRange() const { return code() == StatusCode::kOutOfRange; }
  bool IsNotImplemented() const {
    return code() == StatusCode::kNotImplemented;
  }
  bool IsInternal() const { return code() == StatusCode::kInternal; }
  bool IsCancelled() const { return code() == StatusCode::kCancelled; }
  bool IsFailedPrecondition() const {
    return code() == StatusCode::kFailedPrecondition;
  }
  bool IsResourceExhausted() const {
    return code() == StatusCode::kResourceExhausted;
  }
  bool IsDataLoss() const { return code() == StatusCode::kDataLoss; }

  /// "OK" or "<code name>: <message>".
  std::string ToString() const;

  /// Returns a copy of this status with `context` prepended to the message,
  /// e.g. `st.WithContext("loading dataset")`. OK statuses pass through.
  Status WithContext(std::string_view context) const;

  /// Aborts the process with the status text if not OK. Intended for
  /// callers that have no error channel (tests, example main()s).
  void Abort() const;
  void Abort(std::string_view context) const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code() == b.code() && a.message() == b.message();
  }
  friend bool operator!=(const Status& a, const Status& b) { return !(a == b); }

 private:
  struct State {
    StatusCode code;
    std::string message;
  };
  // Null iff OK. Shared so copies are cheap; Status is immutable once built.
  std::shared_ptr<const State> state_;
};

}  // namespace churnlab

#endif  // CHURNLAB_COMMON_STATUS_H_
