#ifndef CHURNLAB_COMMON_MATH_UTIL_H_
#define CHURNLAB_COMMON_MATH_UTIL_H_

#include <cstddef>
#include <vector>

#include "common/result.h"

namespace churnlab {

/// Numerically stable logistic sigmoid 1 / (1 + exp(-x)).
double Sigmoid(double x);

/// log(1 + exp(x)) without overflow for large |x|.
double Log1pExp(double x);

/// base^exponent computed as exp(exponent * ln(base)) with the exponent
/// clamped to [-`max_abs_exponent`, +`max_abs_exponent`] so significance
/// weights of very long purchase histories cannot overflow or underflow.
/// Requires base > 0.
double ClampedPow(double base, double exponent, double max_abs_exponent);

/// Dot product of equally-sized vectors.
double Dot(const std::vector<double>& a, const std::vector<double>& b);

/// Arithmetic mean; 0 for an empty vector.
double Mean(const std::vector<double>& values);

/// Population variance (divides by N); 0 for fewer than 2 values.
double Variance(const std::vector<double>& values);

/// Population standard deviation.
double StdDev(const std::vector<double>& values);

/// Clamps `value` to [lo, hi].
double Clamp(double value, double lo, double hi);

/// True iff |a - b| <= tolerance.
bool AlmostEqual(double a, double b, double tolerance = 1e-9);

/// Ranks of `values` with ties averaged (1-based, "fractional ranking"),
/// as used by the Mann-Whitney formulation of AUROC.
std::vector<double> FractionalRanks(const std::vector<double>& values);

/// Solves the dense linear system A x = b for x, where `a` is an n x n
/// matrix in row-major order and `b` has n entries. Gaussian elimination
/// with partial pivoting — appropriate for the small (<= ~10 unknowns)
/// Newton steps of the logistic solver. Fails with InvalidArgument on shape
/// mismatch and Internal on a (numerically) singular matrix.
Result<std::vector<double>> SolveLinearSystem(std::vector<double> a,
                                              std::vector<double> b);

}  // namespace churnlab

#endif  // CHURNLAB_COMMON_MATH_UTIL_H_
