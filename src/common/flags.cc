#include "common/flags.h"

#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "common/macros.h"
#include "common/string_util.h"

namespace churnlab {

FlagParser::FlagParser(std::string description)
    : description_(std::move(description)) {}

void FlagParser::Register(const std::string& name, Kind kind, void* target,
                          std::string help, std::string default_text) {
  const auto [it, inserted] = flags_.emplace(
      name, Flag{kind, target, std::move(help), std::move(default_text)});
  (void)it;
  if (!inserted) {
    std::fprintf(stderr, "duplicate flag registration: --%s\n", name.c_str());
    std::abort();
  }
}

void FlagParser::AddString(const std::string& name,
                           const std::string& default_value,
                           const std::string& help, std::string* target) {
  *target = default_value;
  Register(name, Kind::kString, target, help, "\"" + default_value + "\"");
}

void FlagParser::AddInt64(const std::string& name, int64_t default_value,
                          const std::string& help, int64_t* target) {
  *target = default_value;
  Register(name, Kind::kInt64, target, help, std::to_string(default_value));
}

void FlagParser::AddUint64(const std::string& name, uint64_t default_value,
                           const std::string& help, uint64_t* target) {
  *target = default_value;
  Register(name, Kind::kUint64, target, help, std::to_string(default_value));
}

void FlagParser::AddDouble(const std::string& name, double default_value,
                           const std::string& help, double* target) {
  *target = default_value;
  Register(name, Kind::kDouble, target, help, FormatDouble(default_value, 3));
}

void FlagParser::AddBool(const std::string& name, bool default_value,
                         const std::string& help, bool* target) {
  *target = default_value;
  Register(name, Kind::kBool, target, help, default_value ? "true" : "false");
}

Status FlagParser::Assign(const std::string& name, const std::string& value) {
  const auto it = flags_.find(name);
  if (it == flags_.end()) {
    return Status::InvalidArgument("unknown flag --" + name + "\n" + Usage());
  }
  Flag& flag = it->second;
  switch (flag.kind) {
    case Kind::kString:
      *static_cast<std::string*>(flag.target) = value;
      return Status::OK();
    case Kind::kInt64: {
      CHURNLAB_ASSIGN_OR_RETURN(*static_cast<int64_t*>(flag.target),
                                ParseInt64(value));
      return Status::OK();
    }
    case Kind::kUint64: {
      CHURNLAB_ASSIGN_OR_RETURN(*static_cast<uint64_t*>(flag.target),
                                ParseUint64(value));
      return Status::OK();
    }
    case Kind::kDouble: {
      CHURNLAB_ASSIGN_OR_RETURN(*static_cast<double*>(flag.target),
                                ParseDouble(value));
      return Status::OK();
    }
    case Kind::kBool: {
      const std::string lowered = AsciiToLower(value);
      if (lowered == "true" || lowered == "1" || lowered.empty()) {
        *static_cast<bool*>(flag.target) = true;
      } else if (lowered == "false" || lowered == "0") {
        *static_cast<bool*>(flag.target) = false;
      } else {
        return Status::InvalidArgument("cannot parse bool flag --" + name +
                                       " from '" + value + "'");
      }
      return Status::OK();
    }
  }
  return Status::Internal("unreachable flag kind");
}

Status FlagParser::Parse(int argc, const char* const* argv, int begin) {
  positional_.clear();
  for (int i = begin; i < argc; ++i) {
    const std::string argument = argv[i];
    if (argument == "--help" || argument == "-h") {
      std::fprintf(stderr, "%s", Usage().c_str());
      return Status::Cancelled("help requested");
    }
    if (!StartsWith(argument, "--")) {
      positional_.push_back(argument);
      continue;
    }
    const std::string body = argument.substr(2);
    const size_t equals = body.find('=');
    if (equals != std::string::npos) {
      CHURNLAB_RETURN_NOT_OK(
          Assign(body.substr(0, equals), body.substr(equals + 1)));
      continue;
    }
    // `--name value` form, except bool flags which may stand alone.
    const auto it = flags_.find(body);
    if (it == flags_.end()) {
      return Status::InvalidArgument("unknown flag --" + body + "\n" +
                                     Usage());
    }
    if (it->second.kind == Kind::kBool) {
      *static_cast<bool*>(it->second.target) = true;
      continue;
    }
    if (i + 1 >= argc) {
      return Status::InvalidArgument("flag --" + body + " expects a value");
    }
    CHURNLAB_RETURN_NOT_OK(Assign(body, argv[++i]));
  }
  return Status::OK();
}

std::string FlagParser::Usage() const {
  std::ostringstream out;
  out << description_ << "\n";
  for (const auto& [name, flag] : flags_) {
    out << "  --" << name << "  (default " << flag.default_text << ")\n"
        << "      " << flag.help << "\n";
  }
  return out.str();
}

}  // namespace churnlab
