#ifndef CHURNLAB_COMMON_LOGGING_H_
#define CHURNLAB_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace churnlab {

/// Severity levels for the library logger, in increasing order.
enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarning = 2,
  kError = 3,
  kOff = 4,
};

std::string_view LogLevelToString(LogLevel level);

/// \brief Minimal leveled logger writing to stderr.
///
/// The logger is process-global and thread-safe (each message is formatted
/// into a single write). Verbosity defaults to kWarning so library internals
/// stay quiet unless callers opt in:
/// \code
///   Logger::SetLevel(LogLevel::kInfo);
///   CHURNLAB_LOG(INFO) << "simulated " << n << " receipts";
/// \endcode
class Logger {
 public:
  /// Sets the global minimum level; messages below it are dropped.
  static void SetLevel(LogLevel level);
  static LogLevel GetLevel();

  /// True iff a message at `level` would be emitted.
  static bool IsEnabled(LogLevel level);

  /// Emits one message. Prefer the CHURNLAB_LOG macro.
  static void Log(LogLevel level, std::string_view file, int line,
                  std::string_view message);
};

/// Implementation detail of CHURNLAB_LOG: collects stream output and emits
/// it on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line)
      : level_(level), file_(file), line_(line) {}
  ~LogMessage() { Logger::Log(level_, file_, line_, stream_.str()); }

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

  /// Lvalue view of a temporary, so the voidify idiom below can bind it.
  LogMessage& self() { return *this; }

 private:
  LogLevel level_;
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

/// Implementation detail of CHURNLAB_LOG: swallows the streamed message so
/// both arms of the macro's conditional have type void. operator& binds
/// looser than << and tighter than ?:, which is exactly the precedence the
/// macro needs.
class LogMessageVoidify {
 public:
  void operator&(LogMessage&) {}
};

// A single expression (conditional + voidify) rather than an if/else so the
// macro composes safely with surrounding control flow:
//   if (x) CHURNLAB_LOG(Info) << "a"; else Other();
// attaches the else to the outer if. The disabled branch still skips
// evaluation of the streamed operands.
#define CHURNLAB_LOG(severity)                                              \
  !::churnlab::Logger::IsEnabled(::churnlab::LogLevel::k##severity)         \
      ? (void)0                                                             \
      : ::churnlab::LogMessageVoidify() &                                   \
            ::churnlab::LogMessage(::churnlab::LogLevel::k##severity,       \
                                   __FILE__, __LINE__)                      \
                .self()

#define CHURNLAB_LOG_DEBUG() CHURNLAB_LOG(Debug)
#define CHURNLAB_LOG_INFO() CHURNLAB_LOG(Info)
#define CHURNLAB_LOG_WARNING() CHURNLAB_LOG(Warning)
#define CHURNLAB_LOG_ERROR() CHURNLAB_LOG(Error)

}  // namespace churnlab

#endif  // CHURNLAB_COMMON_LOGGING_H_
