#include "common/arena.h"

#include <cstring>

namespace churnlab {

BlockArena::BlockArena(size_t chunk_bytes)
    : chunk_bytes_(chunk_bytes < kMinBlockBytes ? kMinBlockBytes
                                                : chunk_bytes) {}

size_t BlockArena::SizeClassFor(size_t min_bytes) {
  size_t pow2 = kMinBlockBytes;
  while (pow2 < min_bytes) pow2 <<= 1;
  // From 32 bytes up, a 3/4-of-power midpoint class (24, 48, 96, ...) sits
  // between consecutive powers of two: still a multiple of 8, and it caps
  // per-block rounding waste at ~25% instead of ~50%. Below 32 the
  // midpoints would break 8-byte alignment, so only 8 and 16 exist.
  if (pow2 >= 32) {
    const size_t mid = pow2 / 2 + pow2 / 4;
    if (min_bytes <= mid) return mid;
  }
  return pow2;
}

size_t BlockArena::ClassIndex(size_t class_bytes) {
  // 8 -> 0, 16 -> 1, 24 -> 2, 32 -> 3, 48 -> 4, 64 -> 5, 96 -> 6, ...
  size_t pow2 = kMinBlockBytes;
  size_t index = 0;
  while (pow2 < class_bytes) {
    pow2 <<= 1;
    index += pow2 >= 32 ? 2 : 1;
  }
  // A midpoint class sits one slot below its enclosing power of two.
  if (class_bytes != pow2) --index;
  return index;
}

void* BlockArena::Allocate(size_t min_bytes, size_t* capacity_bytes) {
  const size_t cls = SizeClassFor(min_bytes);
  *capacity_bytes = cls;
  const size_t index = ClassIndex(cls);
  bytes_in_use_ += cls;
  ++blocks_in_use_;
  if (free_lists_[index] != nullptr) {
    void* block = free_lists_[index];
    std::memcpy(&free_lists_[index], block, sizeof(void*));
    return block;
  }
  if (chunks_.empty() || chunks_.back().size - chunks_.back().used < cls) {
    // A block larger than the configured chunk span gets a dedicated chunk
    // of exactly its class size; the bump tail of the previous chunk stays
    // counted as reserved-but-unused slack.
    Chunk chunk;
    chunk.size = cls > chunk_bytes_ ? cls : chunk_bytes_;
    chunk.data = std::make_unique<unsigned char[]>(chunk.size);
    bytes_reserved_ += chunk.size;
    chunks_.push_back(std::move(chunk));
  }
  Chunk& chunk = chunks_.back();
  void* block = chunk.data.get() + chunk.used;
  chunk.used += cls;
  return block;
}

void BlockArena::Release(void* block, size_t capacity_bytes) {
  if (block == nullptr) return;
  const size_t index = ClassIndex(capacity_bytes);
  std::memcpy(block, &free_lists_[index], sizeof(void*));
  free_lists_[index] = block;
  bytes_in_use_ -= capacity_bytes;
  --blocks_in_use_;
}

}  // namespace churnlab
