#include "common/random.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>

namespace churnlab {

namespace {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : state_) s = SplitMix64(&sm);
  // A theoretically possible all-zero state would make xoshiro degenerate.
  if ((state_[0] | state_[1] | state_[2] | state_[3]) == 0) {
    state_[0] = 0x9E3779B97F4A7C15ULL;
  }
}

uint64_t Rng::NextUint64() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

uint64_t Rng::NextUint64(uint64_t bound) {
  assert(bound > 0);
  // Lemire's nearly-divisionless unbiased bounded sampling.
  uint64_t x = NextUint64();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  uint64_t low = static_cast<uint64_t>(m);
  if (low < bound) {
    const uint64_t threshold = (0 - bound) % bound;
    while (low < threshold) {
      x = NextUint64();
      m = static_cast<__uint128_t>(x) * bound;
      low = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  assert(lo <= hi);
  const uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  // span == 0 means the full 64-bit range [INT64_MIN, INT64_MAX].
  if (span == 0) return static_cast<int64_t>(NextUint64());
  return lo + static_cast<int64_t>(NextUint64(span));
}

double Rng::NextDouble() {
  return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
}

double Rng::UniformDouble(double lo, double hi) {
  return lo + (hi - lo) * NextDouble();
}

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

double Rng::Normal() {
  if (has_spare_normal_) {
    has_spare_normal_ = false;
    return spare_normal_;
  }
  double u, v, s;
  do {
    u = UniformDouble(-1.0, 1.0);
    v = UniformDouble(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  spare_normal_ = v * factor;
  has_spare_normal_ = true;
  return u * factor;
}

double Rng::Normal(double mean, double stddev) {
  return mean + stddev * Normal();
}

double Rng::Exponential(double lambda) {
  assert(lambda > 0.0);
  double u;
  do {
    u = NextDouble();
  } while (u == 0.0);
  return -std::log(u) / lambda;
}

int64_t Rng::Poisson(double mean) {
  if (mean <= 0.0) return 0;
  if (mean > 64.0) {
    // Normal approximation with continuity correction; error is negligible
    // relative to the simulator's own stochasticity at these means.
    const double draw = Normal(mean, std::sqrt(mean));
    return std::max<int64_t>(0, static_cast<int64_t>(std::llround(draw)));
  }
  const double limit = std::exp(-mean);
  int64_t count = -1;
  double product = 1.0;
  do {
    ++count;
    product *= NextDouble();
  } while (product > limit);
  return count;
}

double Rng::Gamma(double shape, double scale) {
  assert(shape > 0.0 && scale > 0.0);
  if (shape < 1.0) {
    // Boost to shape+1 then apply the standard power correction.
    const double u = std::max(NextDouble(), 1e-300);
    return Gamma(shape + 1.0, scale) * std::pow(u, 1.0 / shape);
  }
  // Marsaglia-Tsang squeeze method.
  const double d = shape - 1.0 / 3.0;
  const double c = 1.0 / std::sqrt(9.0 * d);
  for (;;) {
    double x, v;
    do {
      x = Normal();
      v = 1.0 + c * x;
    } while (v <= 0.0);
    v = v * v * v;
    const double u = NextDouble();
    if (u < 1.0 - 0.0331 * x * x * x * x) return d * v * scale;
    if (u > 0.0 && std::log(u) < 0.5 * x * x + d * (1.0 - v + std::log(v))) {
      return d * v * scale;
    }
  }
}

std::vector<size_t> Rng::SampleWithoutReplacement(size_t n, size_t k) {
  k = std::min(k, n);
  std::vector<size_t> result;
  result.reserve(k);
  if (k == 0) return result;
  if (k * 3 >= n) {
    // Dense case: partial Fisher-Yates over all indices.
    std::vector<size_t> indices(n);
    std::iota(indices.begin(), indices.end(), size_t{0});
    for (size_t i = 0; i < k; ++i) {
      const size_t j = i + static_cast<size_t>(NextUint64(n - i));
      std::swap(indices[i], indices[j]);
      result.push_back(indices[i]);
    }
    return result;
  }
  // Sparse case: Floyd's algorithm, then shuffle for uniform order.
  std::vector<size_t> chosen;
  chosen.reserve(k);
  for (size_t j = n - k; j < n; ++j) {
    const size_t t = static_cast<size_t>(NextUint64(j + 1));
    if (std::find(chosen.begin(), chosen.end(), t) == chosen.end()) {
      chosen.push_back(t);
    } else {
      chosen.push_back(j);
    }
  }
  Shuffle(&chosen);
  return chosen;
}

Rng Rng::Fork() { return Rng(NextUint64()); }

// ---------------------------------------------------------------------------
// ZipfDistribution — Hörmann rejection-inversion ("Rejection-inversion to
// generate variates from monotone discrete distributions", 1996), following
// the layout used by absl and the JDK. Internally samples k in [1, n] and
// returns k - 1.
// ---------------------------------------------------------------------------

namespace {
// (exp(x) - 1) / x with the x -> 0 limit handled.
double ExpM1OverX(double x) {
  return std::abs(x) > 1e-8 ? std::expm1(x) / x : 1.0 + x / 2.0;
}
}  // namespace

ZipfDistribution::ZipfDistribution(size_t n, double s) : n_(n), s_(s) {
  assert(n >= 1);
  assert(s >= 0.0);
  h_x1_ = H(1.5) - 1.0;
  h_n_ = H(static_cast<double>(n_) + 0.5);
  threshold_ = 2.0 - HInverse(H(2.5) - std::pow(2.0, -s_));
}

// H(x) = integral of x^-s: ((x)^(1-s) - 1)/(1-s), with the s == 1 log limit.
double ZipfDistribution::H(double x) const {
  const double log_x = std::log(x);
  return ExpM1OverX((1.0 - s_) * log_x) * log_x;
}

double ZipfDistribution::HInverse(double x) const {
  if (std::abs(1.0 - s_) < 1e-12) return std::exp(x);
  // Solve ((t)^(1-s) - 1) / (1-s) = x  =>  t = (1 + x(1-s))^(1/(1-s)).
  const double t = std::max(1.0 + x * (1.0 - s_), 1e-300);
  return std::pow(t, 1.0 / (1.0 - s_));
}

size_t ZipfDistribution::Sample(Rng* rng) const {
  if (n_ == 1) return 0;
  for (;;) {
    const double u = h_n_ + rng->NextDouble() * (h_x1_ - h_n_);
    const double x = HInverse(u);
    double k = std::floor(x + 0.5);
    if (k < 1.0) k = 1.0;
    if (k > static_cast<double>(n_)) k = static_cast<double>(n_);
    if (k - x <= threshold_ ||
        u >= H(k + 0.5) - std::exp(-std::log(k) * s_)) {
      return static_cast<size_t>(k) - 1;
    }
  }
}

// ---------------------------------------------------------------------------
// DiscreteDistribution — Walker/Vose alias method.
// ---------------------------------------------------------------------------

DiscreteDistribution::DiscreteDistribution(
    const std::vector<double>& weights) {
  const size_t n = weights.size();
  assert(n > 0);
  double total = 0.0;
  for (double w : weights) {
    assert(w >= 0.0);
    total += w;
  }
  assert(total > 0.0);

  prob_.assign(n, 0.0);
  alias_.assign(n, 0);

  std::vector<double> scaled(n);
  for (size_t i = 0; i < n; ++i) {
    scaled[i] = weights[i] * static_cast<double>(n) / total;
  }

  std::vector<uint32_t> small, large;
  small.reserve(n);
  large.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    (scaled[i] < 1.0 ? small : large).push_back(static_cast<uint32_t>(i));
  }

  while (!small.empty() && !large.empty()) {
    const uint32_t s = small.back();
    small.pop_back();
    const uint32_t l = large.back();
    large.pop_back();
    prob_[s] = scaled[s];
    alias_[s] = l;
    scaled[l] = (scaled[l] + scaled[s]) - 1.0;
    (scaled[l] < 1.0 ? small : large).push_back(l);
  }
  for (uint32_t i : large) prob_[i] = 1.0;
  for (uint32_t i : small) prob_[i] = 1.0;  // numerical leftovers
}

size_t DiscreteDistribution::Sample(Rng* rng) const {
  const size_t column = static_cast<size_t>(rng->NextUint64(prob_.size()));
  return rng->NextDouble() < prob_[column] ? column : alias_[column];
}

}  // namespace churnlab
