#ifndef CHURNLAB_COMMON_BINARY_IO_H_
#define CHURNLAB_COMMON_BINARY_IO_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace churnlab {

/// \brief Growable little-endian binary output buffer used by the dataset
/// binary format.
///
/// Integers are written as LEB128 varints (datasets are mostly small ids, so
/// varints roughly halve file size versus fixed width); doubles as raw IEEE
/// bytes; strings as varint length + bytes.
class BinaryWriter {
 public:
  BinaryWriter() = default;

  void WriteVarint(uint64_t value);
  /// ZigZag-encoded signed varint.
  void WriteSignedVarint(int64_t value);
  void WriteDouble(double value);
  void WriteString(std::string_view value);
  void WriteBytes(const void* data, size_t size);

  const std::string& buffer() const { return buffer_; }

  /// Writes the accumulated buffer to `path` (truncating). Failpoint site
  /// `common.binary_io.save` (corrupt-bytes flips a bit of the written copy,
  /// never of the in-memory buffer).
  Status SaveToFile(const std::string& path) const;

  /// Appends the accumulated buffer to `path` (creating it if absent).
  /// Used by append-only formats such as fleet snapshot generations. Same
  /// failpoint site as SaveToFile.
  Status AppendToFile(const std::string& path) const;

 private:
  Status WriteTo(const std::string& path, bool append) const;

  std::string buffer_;
};

/// CRC-32 (IEEE 802.3, polynomial 0xEDB88320) of `size` bytes at `data`,
/// continued from `seed` (pass a previous return value to checksum data in
/// chunks; 0 starts a fresh checksum). Used by the fleet snapshot format to
/// detect torn or corrupted shard frames.
uint32_t Crc32(const void* data, size_t size, uint32_t seed = 0);

/// \brief Reader over a binary buffer produced by BinaryWriter.
///
/// All reads are bounds-checked: fixed-width and varint reads return
/// OutOfRange on truncated input, while ReadBytes — whose size is an
/// untrusted, externally-framed length prefix — returns InvalidArgument
/// when the prefix exceeds the remaining buffer.
class BinaryReader {
 public:
  explicit BinaryReader(std::string buffer) : buffer_(std::move(buffer)) {}

  /// Loads the whole file at `path` into a reader. Failpoint site
  /// `common.binary_io.open` (corrupt-bytes flips a bit of the loaded copy).
  static Result<BinaryReader> OpenFile(const std::string& path);

  Result<uint64_t> ReadVarint();
  Result<int64_t> ReadSignedVarint();
  Result<double> ReadDouble();
  Result<std::string> ReadString();
  /// Reads exactly `size` raw bytes (the counterpart of WriteBytes when the
  /// length is framed externally, e.g. snapshot shard frames). `size` is
  /// treated as untrusted: a prefix larger than the remaining buffer fails
  /// with InvalidArgument before any allocation is sized from it.
  Result<std::string> ReadBytes(size_t size);

  /// True when the whole buffer has been consumed.
  bool AtEnd() const { return pos_ >= buffer_.size(); }
  size_t remaining() const { return buffer_.size() - pos_; }

 private:
  std::string buffer_;
  size_t pos_ = 0;
};

}  // namespace churnlab

#endif  // CHURNLAB_COMMON_BINARY_IO_H_
