#ifndef CHURNLAB_COMMON_RETRY_H_
#define CHURNLAB_COMMON_RETRY_H_

#include <functional>
#include <string>

#include "common/status.h"

namespace churnlab {

/// \brief Capped exponential backoff policy for retryable operations.
///
/// Attempt k (0-based) that fails sleeps
/// `min(initial_backoff_ms * multiplier^k, max_backoff_ms)` before attempt
/// k+1. `max_retries` counts *retries*, so an operation runs at most
/// `1 + max_retries` times. Used by serve shard tasks and snapshot writes
/// (docs/ROBUSTNESS.md §Retry policy).
struct RetryPolicy {
  /// Retries after the first attempt; 0 disables retrying.
  int max_retries = 2;
  double initial_backoff_ms = 1.0;
  double multiplier = 2.0;
  double max_backoff_ms = 50.0;

  /// Backoff before retry number `retry` (1-based), in milliseconds.
  double BackoffMs(int retry) const;
};

/// \brief Runs `fn` under `policy`, returning the first OK status or the
/// last failure after retries are exhausted.
///
/// Exceptions thrown by `fn` are captured as `Internal` statuses and count
/// as failed attempts (they do not propagate). `on_retry`, when set, is
/// invoked before each backoff sleep with the 1-based retry number and the
/// status that caused it — the serve layer uses it to bump retry metrics.
Status RetryWithBackoff(
    const RetryPolicy& policy, const std::function<Status()>& fn,
    const std::function<void(int retry, const Status&)>& on_retry = nullptr);

}  // namespace churnlab

#endif  // CHURNLAB_COMMON_RETRY_H_
