#include "common/binary_io.h"

#include <fstream>
#include <sstream>

#include "common/failpoint.h"
#include "common/macros.h"

namespace churnlab {

void BinaryWriter::WriteVarint(uint64_t value) {
  while (value >= 0x80) {
    buffer_ += static_cast<char>((value & 0x7F) | 0x80);
    value >>= 7;
  }
  buffer_ += static_cast<char>(value);
}

void BinaryWriter::WriteSignedVarint(int64_t value) {
  const uint64_t zigzag =
      (static_cast<uint64_t>(value) << 1) ^
      static_cast<uint64_t>(value >> 63);
  WriteVarint(zigzag);
}

void BinaryWriter::WriteDouble(double value) {
  static_assert(sizeof(double) == 8);
  char bytes[8];
  std::memcpy(bytes, &value, 8);
  buffer_.append(bytes, 8);
}

void BinaryWriter::WriteString(std::string_view value) {
  WriteVarint(value.size());
  buffer_.append(value.data(), value.size());
}

void BinaryWriter::WriteBytes(const void* data, size_t size) {
  buffer_.append(static_cast<const char*>(data), size);
}

Status BinaryWriter::WriteTo(const std::string& path, bool append) const {
  static Failpoint* const save_failpoint =
      FailpointRegistry::Global().Get("common.binary_io.save");
  const std::string* bytes = &buffer_;
  std::string corrupted;
  if (save_failpoint->armed()) {
    // Corrupt a copy so the in-memory writer stays pristine; error/throw
    // actions fire here, before the file is touched.
    corrupted = buffer_;
    CHURNLAB_RETURN_NOT_OK(save_failpoint->CorruptBytes(&corrupted));
    bytes = &corrupted;
  }
  const auto mode =
      std::ios::binary | (append ? std::ios::app : std::ios::trunc);
  std::ofstream file(path, mode);
  if (!file) return Status::IOError("cannot open '" + path + "' for writing");
  file.write(bytes->data(), static_cast<std::streamsize>(bytes->size()));
  file.close();
  if (file.fail()) return Status::IOError("write to '" + path + "' failed");
  return Status::OK();
}

Status BinaryWriter::SaveToFile(const std::string& path) const {
  return WriteTo(path, /*append=*/false);
}

Status BinaryWriter::AppendToFile(const std::string& path) const {
  return WriteTo(path, /*append=*/true);
}

uint32_t Crc32(const void* data, size_t size, uint32_t seed) {
  // Table generated once from the reflected polynomial; byte-at-a-time is
  // plenty for snapshot frames (checksum cost is dwarfed by serialization).
  static const uint32_t* const kTable = [] {
    static uint32_t table[256];
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = i;
      for (int bit = 0; bit < 8; ++bit) {
        crc = (crc >> 1) ^ (0xEDB88320u & (~(crc & 1u) + 1u));
      }
      table[i] = crc;
    }
    return table;
  }();
  uint32_t crc = ~seed;
  const uint8_t* bytes = static_cast<const uint8_t*>(data);
  for (size_t i = 0; i < size; ++i) {
    crc = (crc >> 8) ^ kTable[(crc ^ bytes[i]) & 0xFF];
  }
  return ~crc;
}

Result<BinaryReader> BinaryReader::OpenFile(const std::string& path) {
  static Failpoint* const open_failpoint =
      FailpointRegistry::Global().Get("common.binary_io.open");
  std::ifstream file(path, std::ios::binary);
  if (!file) return Status::IOError("cannot open '" + path + "' for reading");
  std::ostringstream contents;
  contents << file.rdbuf();
  if (file.bad()) return Status::IOError("error while reading '" + path + "'");
  std::string buffer = std::move(contents).str();
  if (open_failpoint->armed()) {
    CHURNLAB_RETURN_NOT_OK(open_failpoint->CorruptBytes(&buffer));
  }
  return BinaryReader(std::move(buffer));
}

Result<uint64_t> BinaryReader::ReadVarint() {
  uint64_t value = 0;
  int shift = 0;
  while (pos_ < buffer_.size()) {
    const uint8_t byte = static_cast<uint8_t>(buffer_[pos_++]);
    if (shift >= 64 || (shift == 63 && (byte & 0x7F) > 1)) {
      return Status::OutOfRange("varint overflows 64 bits");
    }
    value |= static_cast<uint64_t>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) return value;
    shift += 7;
  }
  return Status::OutOfRange("truncated varint at end of buffer");
}

Result<int64_t> BinaryReader::ReadSignedVarint() {
  CHURNLAB_ASSIGN_OR_RETURN(const uint64_t zigzag, ReadVarint());
  return static_cast<int64_t>((zigzag >> 1) ^ (~(zigzag & 1) + 1));
}

Result<double> BinaryReader::ReadDouble() {
  if (remaining() < 8) {
    return Status::OutOfRange("truncated double at end of buffer");
  }
  double value;
  std::memcpy(&value, buffer_.data() + pos_, 8);
  pos_ += 8;
  return value;
}

Result<std::string> BinaryReader::ReadString() {
  CHURNLAB_ASSIGN_OR_RETURN(const uint64_t size, ReadVarint());
  if (remaining() < size) {
    return Status::OutOfRange("truncated string at end of buffer");
  }
  std::string value = buffer_.substr(pos_, size);
  pos_ += size;
  return value;
}

Result<std::string> BinaryReader::ReadBytes(size_t size) {
  if (remaining() < size) {
    return Status::InvalidArgument(
        "length prefix (" + std::to_string(size) +
        " bytes) exceeds remaining buffer (" + std::to_string(remaining()) +
        " bytes)");
  }
  std::string value = buffer_.substr(pos_, size);
  pos_ += size;
  return value;
}

}  // namespace churnlab
