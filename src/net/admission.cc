#include "net/admission.h"

#include "common/failpoint.h"

namespace churnlab {
namespace net {

void AdmissionGate::Ticket::Release() {
  if (gate_ != nullptr) {
    gate_->Release(bytes_);
    gate_ = nullptr;
  }
}

Result<AdmissionGate::Ticket> AdmissionGate::Admit(size_t body_bytes) {
  CHURNLAB_FAILPOINT("net.overload");
  std::lock_guard<std::mutex> lock(mutex_);
  if (inflight_ >= options_.max_inflight_requests) {
    return Status::ResourceExhausted(
        "admission bound reached: " + std::to_string(inflight_) +
        " requests in flight");
  }
  if (pending_bytes_ + body_bytes > options_.max_pending_bytes) {
    return Status::ResourceExhausted(
        "admission bound reached: " +
        std::to_string(pending_bytes_ + body_bytes) +
        " pending body bytes exceed " +
        std::to_string(options_.max_pending_bytes));
  }
  ++inflight_;
  pending_bytes_ += body_bytes;
  return Ticket(this, body_bytes);
}

void AdmissionGate::Release(size_t bytes) {
  std::lock_guard<std::mutex> lock(mutex_);
  --inflight_;
  pending_bytes_ -= bytes;
}

size_t AdmissionGate::inflight() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return inflight_;
}

size_t AdmissionGate::pending_bytes() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return pending_bytes_;
}

}  // namespace net
}  // namespace churnlab
