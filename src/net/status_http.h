#ifndef CHURNLAB_NET_STATUS_HTTP_H_
#define CHURNLAB_NET_STATUS_HTTP_H_

#include <string_view>

#include "common/status.h"

namespace churnlab {
namespace net {

/// The single source of truth for mapping the library's error taxonomy onto
/// HTTP status codes (docs/API.md "Error taxonomy"). Every endpoint builds
/// its error responses through this function, so a given StatusCode always
/// produces the same wire status:
///
///   kOk                 -> 200   kNotImplemented     -> 501
///   kInvalidArgument    -> 400   kInternal           -> 500
///   kNotFound           -> 404   kCancelled          -> 503 (draining)
///   kAlreadyExists      -> 409   kFailedPrecondition -> 409
///   kOutOfRange         -> 413   kResourceExhausted  -> 429 (overload)
///   kIOError            -> 500
int StatusToHttp(const Status& status);
int StatusCodeToHttp(StatusCode code);

/// Canonical reason phrase for the status codes this server emits
/// ("Not Found", "Too Many Requests", ...); "Unknown" otherwise.
std::string_view HttpReasonPhrase(int http_status);

}  // namespace net
}  // namespace churnlab

#endif  // CHURNLAB_NET_STATUS_HTTP_H_
