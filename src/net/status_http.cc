#include "net/status_http.h"

namespace churnlab {
namespace net {

int StatusCodeToHttp(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return 200;
    case StatusCode::kInvalidArgument:
      return 400;
    case StatusCode::kNotFound:
      return 404;
    case StatusCode::kAlreadyExists:
    case StatusCode::kFailedPrecondition:
      return 409;
    case StatusCode::kOutOfRange:
      return 413;
    case StatusCode::kResourceExhausted:
      return 429;
    case StatusCode::kNotImplemented:
      return 501;
    case StatusCode::kCancelled:
      return 503;
    case StatusCode::kIOError:
    case StatusCode::kInternal:
    case StatusCode::kDataLoss:
      return 500;
  }
  return 500;
}

int StatusToHttp(const Status& status) {
  return StatusCodeToHttp(status.code());
}

std::string_view HttpReasonPhrase(int http_status) {
  switch (http_status) {
    case 200:
      return "OK";
    case 400:
      return "Bad Request";
    case 404:
      return "Not Found";
    case 405:
      return "Method Not Allowed";
    case 409:
      return "Conflict";
    case 413:
      return "Payload Too Large";
    case 429:
      return "Too Many Requests";
    case 500:
      return "Internal Server Error";
    case 501:
      return "Not Implemented";
    case 503:
      return "Service Unavailable";
    default:
      return "Unknown";
  }
}

}  // namespace net
}  // namespace churnlab
