#ifndef CHURNLAB_NET_COALESCER_H_
#define CHURNLAB_NET_COALESCER_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <vector>

#include "common/result.h"
#include "net/backend.h"
#include "retail/types.h"
#include "serve/fleet.h"

namespace churnlab {
namespace net {

/// \brief Merges concurrent small ingest requests into large deterministic
/// fleet batches.
///
/// Requests enqueue under one mutex, which assigns every receipt a global
/// *arrival sequence number* — the enqueue order IS the ingestion order.
/// The first waiter becomes the leader: it drains the queue (up to
/// Options::max_batch_receipts per round), concatenates the drained
/// requests into one IngestBatch in sequence order, runs it against the
/// backend once, then demultiplexes the merged BatchReport back into
/// per-request slices (serve::SliceBatchReport) and wakes each waiter.
/// Followers block until their slice is ready. When the queue still holds
/// requests after a round the leader keeps going; otherwise leadership is
/// released to the next arrival.
///
/// Determinism: per-customer monitor state depends only on that customer's
/// observation order, and batch boundaries are invisible to it — so a
/// fleet fed through the coalescer ends byte-identical to an offline
/// replay of the same receipts in arrival-sequence order, regardless of
/// how requests interleaved or how rounds were cut. Each response carries
/// its first receipt's sequence number so an external observer can
/// reconstruct the arrival order.
///
/// Backpressure: receipts buffered but not yet ingested are bounded by
/// Options::max_queue_receipts; beyond it Ingest fails fast with
/// ResourceExhausted (HTTP 429) instead of queueing unboundedly.
class IngestCoalescer {
 public:
  struct Options {
    /// Largest merged batch handed to the backend in one round.
    size_t max_batch_receipts = 8192;
    /// Bound on receipts waiting to be ingested (excess -> 429).
    size_t max_queue_receipts = 65536;
    /// Sequence number assigned to the first receipt to arrive. A server
    /// recovering from a journal seeds this with the recovered next
    /// sequence so the global arrival numbering continues unbroken.
    uint64_t first_sequence = 0;
  };

  /// One request's demultiplexed result.
  struct Outcome {
    serve::BatchReport report;
    /// Arrival sequence number of the request's first receipt (sequence
    /// numbers start at 0 and increment once per receipt).
    uint64_t first_sequence = 0;
  };

  IngestCoalescer(Options options, ScoringBackend* backend);

  /// Ingests `receipts` as part of a coalesced batch; blocks until the
  /// batch containing them completed. An empty request is a cheap no-op
  /// (sequence of the next receipt to arrive, empty report). Thread-safe.
  Result<Outcome> Ingest(std::vector<retail::Receipt> receipts);

  /// Receipts enqueued but not yet handed to the backend.
  size_t pending_receipts() const;

 private:
  struct PendingRequest {
    std::vector<retail::Receipt> receipts;
    uint64_t first_sequence = 0;
    bool done = false;
    Status status;
    serve::BatchReport slice;
  };

  /// Drains and ingests rounds until the queue is empty. Called by the
  /// leader with `lock` held; unlocks around the backend call.
  void RunLeader(std::unique_lock<std::mutex>* lock);

  Options options_;
  ScoringBackend* backend_;
  mutable std::mutex mutex_;
  std::condition_variable done_cv_;
  std::deque<PendingRequest*> queue_;
  size_t queued_receipts_ = 0;
  uint64_t next_sequence_ = 0;
  bool leader_active_ = false;
};

}  // namespace net
}  // namespace churnlab

#endif  // CHURNLAB_NET_COALESCER_H_
