#ifndef CHURNLAB_NET_ADMISSION_H_
#define CHURNLAB_NET_ADMISSION_H_

#include <cstddef>
#include <mutex>

#include "common/result.h"
#include "common/status.h"

namespace churnlab {
namespace net {

/// \brief Bounded admission control for request bodies.
///
/// Every request acquires a Ticket before its body is processed; the gate
/// enforces two global bounds — concurrently admitted requests and the sum
/// of their body bytes — so a flood degrades into fast 429 responses
/// instead of unbounded queueing (the "never OOM" contract of docs/API.md
/// "Overload"). Release is RAII: dropping the Ticket returns its capacity.
///
/// Overload returns ResourceExhausted, which StatusToHttp maps to 429; the
/// server attaches `Retry-After: retry_after_seconds`. The gate also hits
/// the `net.overload` failpoint on every admission attempt, so tests can
/// force shedding without building real pressure.
class AdmissionGate {
 public:
  struct Options {
    /// Concurrently admitted requests (ingest requests in flight).
    size_t max_inflight_requests = 64;
    /// Sum of admitted request-body bytes.
    size_t max_pending_bytes = 32u << 20;
    /// Advisory client backoff attached to 429/503 responses.
    int retry_after_seconds = 1;
  };

  explicit AdmissionGate(Options options) : options_(options) {}

  class Ticket {
   public:
    Ticket() = default;
    Ticket(Ticket&& other) noexcept
        : gate_(other.gate_), bytes_(other.bytes_) {
      other.gate_ = nullptr;
    }
    Ticket& operator=(Ticket&& other) noexcept {
      if (this != &other) {
        Release();
        gate_ = other.gate_;
        bytes_ = other.bytes_;
        other.gate_ = nullptr;
      }
      return *this;
    }
    Ticket(const Ticket&) = delete;
    Ticket& operator=(const Ticket&) = delete;
    ~Ticket() { Release(); }

    bool admitted() const { return gate_ != nullptr; }

   private:
    friend class AdmissionGate;
    Ticket(AdmissionGate* gate, size_t bytes) : gate_(gate), bytes_(bytes) {}
    void Release();

    AdmissionGate* gate_ = nullptr;
    size_t bytes_ = 0;
  };

  /// Admits a request carrying `body_bytes`, or ResourceExhausted when
  /// either bound would be exceeded. Thread-safe.
  Result<Ticket> Admit(size_t body_bytes);

  size_t inflight() const;
  size_t pending_bytes() const;
  const Options& options() const { return options_; }

 private:
  void Release(size_t bytes);

  Options options_;
  mutable std::mutex mutex_;
  size_t inflight_ = 0;
  size_t pending_bytes_ = 0;
};

}  // namespace net
}  // namespace churnlab

#endif  // CHURNLAB_NET_ADMISSION_H_
