#ifndef CHURNLAB_NET_JSON_CODEC_H_
#define CHURNLAB_NET_JSON_CODEC_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "retail/types.h"
#include "serve/fleet.h"

namespace churnlab {
namespace net {

/// \brief Parses a POST /v1/ingest body.
///
/// Expected shape (field order free, unknown keys rejected):
/// \code
///   {"receipts": [{"customer": 17, "day": 360, "spend": 12.5,
///                  "items": [3, 19]}, ...]}
/// \endcode
/// `spend` and `items` are optional per receipt; `customer` and `day` are
/// required. A dedicated iterative scanner — NOT the general obs::ParseJson
/// (which recurses on nesting and has no depth cap) — so a hostile body of
/// 1M open brackets is rejected in O(1) stack. `max_receipts` bounds the
/// batch (OutOfRange beyond it); syntax and shape errors are
/// InvalidArgument, which the server maps to 400 with the parse reason in
/// the error body (quarantine-style: the reason names the offending
/// receipt index).
Result<std::vector<retail::Receipt>> ParseReceiptBatch(std::string_view body,
                                                       size_t max_receipts);

/// {"receipts_ingested":N,"new_customers":N,"sequence":S,
///  "alerts":[...],"rejected":[...],"poisoned":[...]}
/// `sequence` is the arrival sequence number assigned to the request's
/// first receipt by the coalescer — replaying receipts in sequence order
/// reproduces the server's fleet state byte-for-byte.
std::string WriteBatchReportJson(const serve::BatchReport& report,
                                 uint64_t first_sequence);

/// {"customer":id,"shard":s,"stability":x,"state_bytes":b}
std::string WriteCustomerJson(const serve::CustomerQuery& query);

/// Fleet health as JSON: aggregates plus one entry per shard.
std::string WriteHealthJson(const serve::FleetHealth& health);

/// {"error":{"code":"<StatusCodeToString>","message":"..."}}
std::string WriteErrorJson(const Status& status);

/// {"ok":true,"path":"..."} for POST /v1/snapshot.
std::string WriteSnapshotJson(std::string_view path);

}  // namespace net
}  // namespace churnlab

#endif  // CHURNLAB_NET_JSON_CODEC_H_
