#include "net/json_codec.h"

#include <limits>
#include <utility>

#include "common/macros.h"
#include "common/string_util.h"
#include "obs/json.h"

namespace churnlab {
namespace net {

namespace {

/// Iterative cursor over a fixed-shape JSON document. Nesting is matched
/// explicitly by the grammar below (object -> array -> flat object -> flat
/// array, depth 4), never by recursion.
class Scanner {
 public:
  explicit Scanner(std::string_view text) : text_(text) {}

  void SkipWhitespace() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool Peek(char expected) {
    SkipWhitespace();
    return pos_ < text_.size() && text_[pos_] == expected;
  }

  bool Consume(char expected) {
    if (!Peek(expected)) return false;
    ++pos_;
    return true;
  }

  Status Expect(char expected) {
    if (Consume(expected)) return Status::OK();
    return Status::InvalidArgument(
        std::string("expected '") + expected + "' at byte " +
        std::to_string(pos_) + " of the JSON body");
  }

  /// A JSON string with no escapes (sufficient for the fixed key set; an
  /// escaped key cannot match any known key anyway).
  Result<std::string_view> Key() {
    CHURNLAB_RETURN_NOT_OK(Expect('"'));
    const size_t start = pos_;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      if (text_[pos_] == '\\') {
        return Status::InvalidArgument("escaped JSON keys are not accepted");
      }
      ++pos_;
    }
    if (pos_ >= text_.size()) {
      return Status::InvalidArgument("unterminated JSON string");
    }
    const std::string_view key = text_.substr(start, pos_ - start);
    ++pos_;  // closing quote
    return key;
  }

  /// The raw extent of one JSON number token.
  Result<std::string_view> NumberToken() {
    SkipWhitespace();
    const size_t start = pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if ((c >= '0' && c <= '9') || c == '-' || c == '+' || c == '.' ||
          c == 'e' || c == 'E') {
        ++pos_;
      } else {
        break;
      }
    }
    if (pos_ == start) {
      return Status::InvalidArgument("expected a JSON number at byte " +
                                     std::to_string(start));
    }
    return text_.substr(start, pos_ - start);
  }

  Result<uint64_t> Uint() {
    CHURNLAB_ASSIGN_OR_RETURN(const std::string_view token, NumberToken());
    return ParseUint64(token);
  }

  Result<int64_t> Int() {
    CHURNLAB_ASSIGN_OR_RETURN(const std::string_view token, NumberToken());
    return ParseInt64(token);
  }

  Result<double> Number() {
    CHURNLAB_ASSIGN_OR_RETURN(const std::string_view token, NumberToken());
    return ParseDouble(token);
  }

  bool AtEnd() {
    SkipWhitespace();
    return pos_ >= text_.size();
  }

 private:
  std::string_view text_;
  size_t pos_ = 0;
};

Status ReceiptError(size_t index, const Status& status) {
  return status.WithContext("receipt " + std::to_string(index));
}

/// One flat receipt object. `index` only flavors error messages.
Status ParseOneReceipt(Scanner* scanner, size_t index,
                       retail::Receipt* receipt) {
  CHURNLAB_RETURN_NOT_OK(scanner->Expect('{'));
  bool have_customer = false;
  bool have_day = false;
  if (!scanner->Consume('}')) {
    for (;;) {
      Result<std::string_view> key = scanner->Key();
      if (!key.ok()) return ReceiptError(index, key.status());
      CHURNLAB_RETURN_NOT_OK(scanner->Expect(':'));
      if (*key == "customer") {
        Result<uint64_t> value = scanner->Uint();
        if (!value.ok()) return ReceiptError(index, value.status());
        if (*value > std::numeric_limits<retail::CustomerId>::max()) {
          return ReceiptError(
              index, Status::InvalidArgument("customer id does not fit"));
        }
        receipt->customer = static_cast<retail::CustomerId>(*value);
        have_customer = true;
      } else if (*key == "day") {
        Result<int64_t> value = scanner->Int();
        if (!value.ok()) return ReceiptError(index, value.status());
        if (*value < std::numeric_limits<retail::Day>::min() ||
            *value > std::numeric_limits<retail::Day>::max()) {
          return ReceiptError(
              index, Status::InvalidArgument("day does not fit in int32"));
        }
        receipt->day = static_cast<retail::Day>(*value);
        have_day = true;
      } else if (*key == "spend") {
        Result<double> value = scanner->Number();
        if (!value.ok()) return ReceiptError(index, value.status());
        receipt->spend = *value;
      } else if (*key == "items") {
        CHURNLAB_RETURN_NOT_OK(scanner->Expect('['));
        if (!scanner->Consume(']')) {
          for (;;) {
            Result<uint64_t> item = scanner->Uint();
            if (!item.ok()) return ReceiptError(index, item.status());
            if (*item > std::numeric_limits<retail::ItemId>::max()) {
              return ReceiptError(
                  index, Status::InvalidArgument("item id does not fit"));
            }
            receipt->items.push_back(static_cast<retail::ItemId>(*item));
            if (scanner->Consume(']')) break;
            CHURNLAB_RETURN_NOT_OK(scanner->Expect(','));
          }
        }
      } else {
        return ReceiptError(index, Status::InvalidArgument(
                                       "unknown receipt field '" +
                                       std::string(*key) + "'"));
      }
      if (scanner->Consume('}')) break;
      CHURNLAB_RETURN_NOT_OK(scanner->Expect(','));
    }
  }
  if (!have_customer) {
    return ReceiptError(index,
                        Status::InvalidArgument("missing 'customer'"));
  }
  if (!have_day) {
    return ReceiptError(index, Status::InvalidArgument("missing 'day'"));
  }
  return Status::OK();
}

void WriteStatusJson(const Status& status, obs::JsonWriter* json) {
  json->BeginObject()
      .Key("code")
      .String(StatusCodeToString(status.code()))
      .Key("message")
      .String(status.message())
      .EndObject();
}

}  // namespace

Result<std::vector<retail::Receipt>> ParseReceiptBatch(std::string_view body,
                                                       size_t max_receipts) {
  Scanner scanner(body);
  CHURNLAB_RETURN_NOT_OK(scanner.Expect('{'));
  CHURNLAB_ASSIGN_OR_RETURN(const std::string_view key, scanner.Key());
  if (key != "receipts") {
    return Status::InvalidArgument("ingest body must hold one 'receipts' key");
  }
  CHURNLAB_RETURN_NOT_OK(scanner.Expect(':'));
  CHURNLAB_RETURN_NOT_OK(scanner.Expect('['));
  std::vector<retail::Receipt> receipts;
  if (!scanner.Consume(']')) {
    for (;;) {
      if (receipts.size() >= max_receipts) {
        return Status::OutOfRange("ingest batch exceeds " +
                                  std::to_string(max_receipts) +
                                  " receipts");
      }
      retail::Receipt receipt;
      CHURNLAB_RETURN_NOT_OK(
          ParseOneReceipt(&scanner, receipts.size(), &receipt));
      receipts.push_back(std::move(receipt));
      if (scanner.Consume(']')) break;
      CHURNLAB_RETURN_NOT_OK(scanner.Expect(','));
    }
  }
  CHURNLAB_RETURN_NOT_OK(scanner.Expect('}'));
  if (!scanner.AtEnd()) {
    return Status::InvalidArgument("trailing bytes after the JSON body");
  }
  return receipts;
}

std::string WriteBatchReportJson(const serve::BatchReport& report,
                                 uint64_t first_sequence) {
  obs::JsonWriter json;
  json.BeginObject()
      .Key("receipts_ingested")
      .Uint(report.receipts_ingested)
      .Key("new_customers")
      .Uint(report.new_customers)
      .Key("sequence")
      .Uint(first_sequence);
  json.Key("alerts").BeginArray();
  for (const serve::FleetAlert& alert : report.alerts) {
    json.BeginObject()
        .Key("customer")
        .Uint(alert.customer)
        .Key("batch_index")
        .Uint(alert.batch_index)
        .Key("kind")
        .String(alert.alert.kind == core::StabilityAlert::Kind::kSharpDrop
                    ? "sharp_drop"
                    : "low_stability")
        .Key("window")
        .Int(alert.alert.window_index)
        .Key("stability")
        .Double(alert.alert.stability)
        .Key("drop")
        .Double(alert.alert.drop)
        .EndObject();
  }
  json.EndArray();
  json.Key("rejected").BeginArray();
  for (const serve::RejectedReceipt& rejected : report.rejected) {
    json.BeginObject()
        .Key("customer")
        .Uint(rejected.customer)
        .Key("batch_index")
        .Uint(rejected.batch_index)
        .Key("day")
        .Int(rejected.day)
        .Key("reason");
    WriteStatusJson(rejected.reason, &json);
    json.EndObject();
  }
  json.EndArray();
  json.Key("poisoned").BeginArray();
  for (const serve::PoisonedShard& poisoned : report.poisoned) {
    json.BeginObject().Key("shard").Uint(poisoned.shard).Key("reason");
    WriteStatusJson(poisoned.reason, &json);
    json.EndObject();
  }
  json.EndArray().EndObject();
  return json.str();
}

std::string WriteCustomerJson(const serve::CustomerQuery& query) {
  obs::JsonWriter json;
  json.BeginObject()
      .Key("customer")
      .Uint(query.customer)
      .Key("shard")
      .Uint(query.shard)
      .Key("stability")
      .Double(query.stability)
      .Key("state_bytes")
      .Uint(query.state_bytes)
      .EndObject();
  return json.str();
}

std::string WriteHealthJson(const serve::FleetHealth& health) {
  obs::JsonWriter json;
  json.BeginObject()
      .Key("receipts_total")
      .Uint(health.receipts_total)
      .Key("customers_total")
      .Uint(health.customers_total)
      .Key("poisoned_shards")
      .Uint(health.poisoned_shards)
      .Key("queue_depth")
      .Uint(health.queue_depth);
  json.Key("shards").BeginArray();
  for (const serve::ShardHealthStats& shard : health.shards) {
    json.BeginObject()
        .Key("shard")
        .Uint(shard.shard)
        .Key("ok")
        .Bool(shard.status.ok())
        .Key("receipts")
        .Uint(shard.receipts)
        .Key("rejected")
        .Uint(shard.rejected)
        .Key("alerts")
        .Uint(shard.alerts)
        .Key("retries")
        .Uint(shard.retries)
        .Key("customers")
        .Uint(shard.customers)
        .Key("last_batch_receipts")
        .Uint(shard.last_batch_receipts);
    if (!shard.status.ok()) {
      json.Key("error").String(shard.status.ToString());
    }
    json.EndObject();
  }
  json.EndArray().EndObject();
  return json.str();
}

std::string WriteErrorJson(const Status& status) {
  obs::JsonWriter json;
  json.BeginObject().Key("error");
  WriteStatusJson(status, &json);
  json.EndObject();
  return json.str();
}

std::string WriteSnapshotJson(std::string_view path) {
  obs::JsonWriter json;
  json.BeginObject().Key("ok").Bool(true).Key("path").String(path).EndObject();
  return json.str();
}

}  // namespace net
}  // namespace churnlab
