#include "net/coalescer.h"

#include <iterator>
#include <utility>

#include "obs/metrics.h"

namespace churnlab {
namespace net {

namespace {

struct CoalescerMetrics {
  obs::Counter* batches;
  obs::Counter* requests;
  obs::Gauge* pending;
  obs::Histogram* batch_receipts;
};

const CoalescerMetrics& Metrics() {
  static const CoalescerMetrics metrics = [] {
    obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
    return CoalescerMetrics{
        registry.GetCounter("churnlab.net.coalesced_batches"),
        registry.GetCounter("churnlab.net.coalesced_requests"),
        registry.GetGauge("churnlab.net.pending_receipts"),
        registry.GetHistogram("churnlab.net.coalesced_batch_receipts",
                              obs::HistogramOptions::ExponentialLatency()),
    };
  }();
  return metrics;
}

}  // namespace

IngestCoalescer::IngestCoalescer(Options options, ScoringBackend* backend)
    : options_(options),
      backend_(backend),
      next_sequence_(options.first_sequence) {}

Result<IngestCoalescer::Outcome> IngestCoalescer::Ingest(
    std::vector<retail::Receipt> receipts) {
  PendingRequest request;
  std::unique_lock<std::mutex> lock(mutex_);
  if (queued_receipts_ + receipts.size() > options_.max_queue_receipts) {
    return Status::ResourceExhausted(
        "ingest queue holds " + std::to_string(queued_receipts_) +
        " receipts; bound is " + std::to_string(options_.max_queue_receipts));
  }
  request.first_sequence = next_sequence_;
  next_sequence_ += receipts.size();
  queued_receipts_ += receipts.size();
  Metrics().pending->Set(static_cast<double>(queued_receipts_));
  request.receipts = std::move(receipts);
  queue_.push_back(&request);
  if (!leader_active_) {
    // First waiter leads: drain rounds until the queue (ours included) is
    // empty, then hand leadership to the next arrival.
    leader_active_ = true;
    RunLeader(&lock);
    leader_active_ = false;
  } else {
    done_cv_.wait(lock, [&request] { return request.done; });
  }
  if (!request.status.ok()) return request.status;
  return Outcome{std::move(request.slice), request.first_sequence};
}

void IngestCoalescer::RunLeader(std::unique_lock<std::mutex>* lock) {
  const CoalescerMetrics& metrics = Metrics();
  while (!queue_.empty()) {
    // One round: pop whole requests until the batch bound would be crossed
    // (a single request larger than the bound still goes, alone).
    std::vector<PendingRequest*> round;
    std::vector<size_t> counts;
    size_t round_receipts = 0;
    while (!queue_.empty()) {
      PendingRequest* next = queue_.front();
      if (!round.empty() && round_receipts + next->receipts.size() >
                                options_.max_batch_receipts) {
        break;
      }
      queue_.pop_front();
      round_receipts += next->receipts.size();
      counts.push_back(next->receipts.size());
      round.push_back(next);
    }
    queued_receipts_ -= round_receipts;
    metrics.pending->Set(static_cast<double>(queued_receipts_));
    lock->unlock();

    // Concatenate in arrival-sequence order (queue order); round entries
    // belong to threads blocked on their `done` flag, so touching them
    // unlocked is safe.
    std::vector<retail::Receipt> merged;
    merged.reserve(round_receipts);
    for (PendingRequest* entry : round) {
      merged.insert(merged.end(),
                    std::make_move_iterator(entry->receipts.begin()),
                    std::make_move_iterator(entry->receipts.end()));
      entry->receipts.clear();
    }
    // The round's receipts are sequence-contiguous (requests drain in
    // enqueue order), so the first entry's sequence numbers the whole
    // merged batch for the backend's write-ahead journal.
    Result<serve::BatchReport> report =
        merged.empty()
            ? Result<serve::BatchReport>(serve::BatchReport{})
            : backend_->Ingest(round.front()->first_sequence, merged);
    metrics.batches->Increment();
    metrics.requests->Increment(round.size());
    metrics.batch_receipts->Record(static_cast<double>(round_receipts));

    lock->lock();
    size_t offset = 0;
    for (size_t i = 0; i < round.size(); ++i) {
      PendingRequest* entry = round[i];
      if (report.ok()) {
        entry->slice = SliceBatchReport(*report, offset, offset + counts[i]);
      } else {
        entry->status = report.status();
      }
      offset += counts[i];
      entry->done = true;
    }
    done_cv_.notify_all();
  }
}

size_t IngestCoalescer::pending_receipts() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return queued_receipts_;
}

}  // namespace net
}  // namespace churnlab
