#include "net/backend.h"

#include "common/macros.h"

namespace churnlab {
namespace net {

Result<serve::BatchReport> FleetBackend::Ingest(
    uint64_t first_sequence, std::span<const retail::Receipt> receipts) {
  std::lock_guard<std::mutex> lock(mutex_);
  // Write-ahead: the batch must be journaled before the fleet applies it.
  // Under FsyncPolicy::kAlways the append is durable when it returns; under
  // kBatch the Sync below makes the whole round durable before any of its
  // responses are sent (the coalescer acks only after Ingest returns).
  if (options_.journal != nullptr) {
    CHURNLAB_RETURN_NOT_OK(options_.journal->Append(first_sequence, receipts));
  }
  Result<serve::BatchReport> report = fleet_->IngestBatch(receipts);
  if (options_.journal != nullptr && report.ok()) {
    CHURNLAB_RETURN_NOT_OK(options_.journal->Sync());
  }
  return report;
}

Result<serve::CustomerQuery> FleetBackend::Customer(
    retail::CustomerId customer) {
  // Deliberately not under mutex_: QueryCustomer takes only the customer's
  // shard lock, so reads stay responsive while a large ingest runs.
  return fleet_->QueryCustomer(customer);
}

Result<serve::FleetHealth> FleetBackend::Health() {
  std::lock_guard<std::mutex> lock(mutex_);
  return fleet_->HealthReport();
}

Result<serve::StateMemoryStats> FleetBackend::Memory() {
  std::lock_guard<std::mutex> lock(mutex_);
  return fleet_->MemoryUsage();
}

Result<std::string> FleetBackend::Snapshot() {
  if (options_.snapshot_path.empty()) {
    return Status::FailedPrecondition(
        "no snapshot path configured (start the server with one to enable "
        "POST /v1/snapshot and the drain-time flush)");
  }
  if (options_.journal != nullptr && !options_.snapshot_append) {
    // A truncating snapshot destroys the previous checkpoint's bytes before
    // the new checkpoint record lands — a crash in that window would leave
    // nothing to recover from. Journaling therefore requires the
    // append-mode generation format (enforced at startup too).
    return Status::InvalidArgument(
        "journaling requires append-mode snapshots");
  }
  std::lock_guard<std::mutex> lock(mutex_);
  serve::SnapshotRef ref;
  if (options_.snapshot_append) {
    CHURNLAB_ASSIGN_OR_RETURN(
        ref, fleet_->AppendSnapshotGeneration(options_.snapshot_path));
  } else {
    CHURNLAB_ASSIGN_OR_RETURN(
        ref, fleet_->SaveSnapshotWithRef(options_.snapshot_path));
  }
  if (options_.journal != nullptr) {
    // Under the mutex every journaled receipt is applied, so the journal's
    // next sequence IS the snapshot's watermark; segments at or below it
    // are truncated.
    CHURNLAB_RETURN_NOT_OK(options_.journal->Checkpoint(
        options_.journal->next_sequence(), ref));
  }
  return options_.snapshot_path;
}

}  // namespace net
}  // namespace churnlab
