#include "net/backend.h"

#include "common/macros.h"

namespace churnlab {
namespace net {

Result<serve::BatchReport> FleetBackend::Ingest(
    std::span<const retail::Receipt> receipts) {
  std::lock_guard<std::mutex> lock(mutex_);
  return fleet_->IngestBatch(receipts);
}

Result<serve::CustomerQuery> FleetBackend::Customer(
    retail::CustomerId customer) {
  // Deliberately not under mutex_: QueryCustomer takes only the customer's
  // shard lock, so reads stay responsive while a large ingest runs.
  return fleet_->QueryCustomer(customer);
}

Result<serve::FleetHealth> FleetBackend::Health() {
  std::lock_guard<std::mutex> lock(mutex_);
  return fleet_->HealthReport();
}

Result<serve::StateMemoryStats> FleetBackend::Memory() {
  std::lock_guard<std::mutex> lock(mutex_);
  return fleet_->MemoryUsage();
}

Result<std::string> FleetBackend::Snapshot() {
  if (options_.snapshot_path.empty()) {
    return Status::FailedPrecondition(
        "no snapshot path configured (start the server with one to enable "
        "POST /v1/snapshot and the drain-time flush)");
  }
  std::lock_guard<std::mutex> lock(mutex_);
  if (options_.snapshot_append) {
    CHURNLAB_RETURN_NOT_OK(
        fleet_->AppendSnapshotToFile(options_.snapshot_path));
  } else {
    CHURNLAB_RETURN_NOT_OK(fleet_->SaveSnapshotToFile(options_.snapshot_path));
  }
  return options_.snapshot_path;
}

}  // namespace net
}  // namespace churnlab
