#ifndef CHURNLAB_NET_BACKEND_H_
#define CHURNLAB_NET_BACKEND_H_

#include <mutex>
#include <span>
#include <string>

#include "common/result.h"
#include "retail/types.h"
#include "serve/fleet.h"

namespace churnlab {
namespace net {

/// \brief What the HTTP front end needs from a scoring engine.
///
/// An abstract seam (rather than serve::ScoringFleet directly) so the net
/// layer never depends on the churnlab::api facade — the facade depends on
/// net, and tests can serve a scripted backend without a fleet.
///
/// Thread contract: Ingest, Health, Memory and Snapshot are mutually
/// serialized by the implementation; Customer may run concurrently with
/// any of them (FleetBackend satisfies this with one operation mutex plus
/// the fleet's own per-shard locking for Customer).
class ScoringBackend {
 public:
  virtual ~ScoringBackend() = default;

  /// Ingests one coalesced batch. `first_sequence` is the arrival sequence
  /// number of the batch's first receipt (the coalescer's rounds are
  /// sequence-contiguous), which a journaling backend persists with the
  /// batch so crash recovery can replay in arrival order.
  virtual Result<serve::BatchReport> Ingest(
      uint64_t first_sequence, std::span<const retail::Receipt> receipts) = 0;
  virtual Result<serve::CustomerQuery> Customer(
      retail::CustomerId customer) = 0;
  virtual Result<serve::FleetHealth> Health() = 0;
  virtual Result<serve::StateMemoryStats> Memory() = 0;
  /// Flushes fleet state to the configured snapshot destination and
  /// returns its path.
  virtual Result<std::string> Snapshot() = 0;
};

/// ScoringBackend over a borrowed serve::ScoringFleet. Fleet operations
/// are "call between operations" (fleet.h), so every mutating entry point
/// runs under one mutex; Customer bypasses it because QueryCustomer
/// synchronizes on its shard's own lock.
class FleetBackend final : public ScoringBackend {
 public:
  struct Options {
    /// Snapshot destination; empty disables POST /v1/snapshot and the
    /// drain-time flush (FailedPrecondition).
    std::string snapshot_path;
    /// Append a generation (crash-tolerant CHLFGENS, the default) versus
    /// truncating with a bare snapshot.
    bool snapshot_append = true;
    /// Write-ahead ingest journal (borrowed; may be null). When set, every
    /// batch is appended — and, under FsyncPolicy::kAlways/kBatch, made
    /// durable — before Ingest returns, and Snapshot() checkpoints the
    /// journal at the applied-sequence watermark after flushing the
    /// snapshot. The journal's own sequence tracking enforces that batches
    /// arrive contiguous.
    serve::IngestJournal* journal = nullptr;
  };

  FleetBackend(serve::ScoringFleet* fleet, Options options)
      : fleet_(fleet), options_(std::move(options)) {}

  Result<serve::BatchReport> Ingest(
      uint64_t first_sequence,
      std::span<const retail::Receipt> receipts) override;
  Result<serve::CustomerQuery> Customer(retail::CustomerId customer) override;
  Result<serve::FleetHealth> Health() override;
  Result<serve::StateMemoryStats> Memory() override;
  Result<std::string> Snapshot() override;

 private:
  serve::ScoringFleet* fleet_;
  Options options_;
  std::mutex mutex_;
};

}  // namespace net
}  // namespace churnlab

#endif  // CHURNLAB_NET_BACKEND_H_
