#include "net/router.h"

#include <utility>

#include "common/string_util.h"
#include "net/json_codec.h"
#include "net/status_http.h"

namespace churnlab {
namespace net {

void Router::Add(std::string method, std::string pattern, Handler handler) {
  Route route;
  route.method = std::move(method);
  route.pattern = std::move(pattern);
  for (const std::string_view segment : Split(route.pattern, '/')) {
    route.segments.emplace_back(segment);
  }
  route.handler = std::move(handler);
  routes_.push_back(std::move(route));
}

bool Router::MatchPath(const Route& route, std::string_view path,
                       std::vector<std::string>* params) {
  const std::vector<std::string_view> segments = Split(path, '/');
  if (segments.size() != route.segments.size()) return false;
  params->clear();
  for (size_t i = 0; i < segments.size(); ++i) {
    const std::string& pattern_segment = route.segments[i];
    if (!pattern_segment.empty() && pattern_segment.front() == '{' &&
        pattern_segment.back() == '}') {
      if (segments[i].empty()) return false;  // "{id}" needs a value.
      params->emplace_back(segments[i]);
    } else if (pattern_segment != segments[i]) {
      return false;
    }
  }
  return true;
}

HttpResponse Router::Dispatch(const HttpRequest& request) const {
  std::vector<std::string> params;
  std::vector<std::string> allowed;
  for (const Route& route : routes_) {
    if (!MatchPath(route, request.path, &params)) continue;
    if (route.method == request.method) {
      return route.handler(request, params);
    }
    allowed.push_back(route.method);
  }
  HttpResponse response;
  if (!allowed.empty()) {
    response.status_code = 405;
    response.headers.emplace_back("Allow", Join(allowed, ", "));
    response.body = WriteErrorJson(Status::InvalidArgument(
        "method " + request.method + " is not allowed for " + request.path));
  } else {
    const Status not_found =
        Status::NotFound("no route for " + request.path);
    response.status_code = StatusToHttp(not_found);
    response.body = WriteErrorJson(not_found);
  }
  return response;
}

}  // namespace net
}  // namespace churnlab
