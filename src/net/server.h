#ifndef CHURNLAB_NET_SERVER_H_
#define CHURNLAB_NET_SERVER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/result.h"
#include "common/thread_pool.h"
#include "net/admission.h"
#include "net/backend.h"
#include "net/coalescer.h"
#include "net/http.h"
#include "net/router.h"

namespace churnlab {
namespace net {

struct ServerOptions {
  /// IPv4 address to bind (dotted quad).
  std::string bind_address = "127.0.0.1";
  /// TCP port; 0 binds an ephemeral port, readable via port() after
  /// Start().
  uint16_t port = 0;
  /// Connection worker threads; also the bound on concurrently *served*
  /// connections (accepted connections beyond it queue on the pool).
  size_t num_threads = 8;
  /// Wire-parsing bounds (untrusted lengths are clamped against these).
  HttpParser::Limits limits;
  /// Admission control (429 shedding) for request bodies.
  AdmissionGate::Options admission;
  /// Ingest coalescing bounds.
  IngestCoalescer::Options coalescer;
  /// Receipts accepted per ingest request (OutOfRange -> 413 beyond it).
  size_t max_receipts_per_request = 100000;
  /// Idle-connection poll tick; also the drain-notice latency bound for
  /// connections parked in keep-alive.
  int poll_interval_ms = 100;
  /// Periodic snapshot/checkpoint interval, run on the acceptor thread
  /// (<= 0 disables). With a journaling backend each tick flushes a
  /// snapshot generation and truncates the journal at its watermark,
  /// bounding replay work after a crash.
  int snapshot_interval_ms = 0;
};

/// \brief Dependency-free blocking HTTP/1.1 server over a ScoringBackend.
///
/// One acceptor thread multiplexes the listen socket and a self-pipe drain
/// signal through poll(2); each accepted connection is served start to
/// finish by a ThreadPool task (keep-alive and pipelining included).
/// Overload never allocates proportionally to attacker input: body sizes
/// are clamped by the parser, request admission is bounded by the
/// AdmissionGate, and ingest buffering is bounded by the coalescer.
///
/// Graceful drain: RequestDrain() (or SIGTERM/SIGINT after
/// InstallSignalHandler, which writes the self-pipe — async-signal-safe)
/// stops the acceptor, lets in-flight requests finish (new requests get
/// 503 + Retry-After, responses switch to Connection: close), then flushes
/// a final snapshot through the backend. Wait() returns that flush's
/// status.
///
/// Failpoint sites: net.accept (per accepted connection), net.read (per
/// recv, key = connection fd), net.parse (per parsed buffer, key =
/// connection fd), net.overload (per admission attempt).
class HttpServer {
 public:
  /// Validates options and builds the routing table. `backend` is borrowed
  /// and must outlive the server.
  static Result<std::unique_ptr<HttpServer>> Make(ServerOptions options,
                                                  ScoringBackend* backend);

  ~HttpServer();
  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// Binds, listens, and starts the acceptor thread.
  Status Start();

  /// The bound port (after Start; meaningful when options.port was 0).
  uint16_t port() const { return port_; }

  /// Begins a graceful drain. Thread-safe and idempotent; also the target
  /// of the installed signal handler.
  void RequestDrain();

  /// Blocks until the drain completed; returns the final snapshot flush's
  /// status ("no snapshot path" is reported OK: there is nothing to
  /// flush).
  Status Wait();

  /// RequestDrain() + Wait().
  Status Shutdown();

  /// Routes SIGTERM and SIGINT to RequestDrain() of this server. At most
  /// one server per process may install handlers (AlreadyExists
  /// otherwise); they stay installed for the process lifetime.
  Status InstallSignalHandler();

  bool draining() const {
    return draining_.load(std::memory_order_relaxed);
  }

 private:
  HttpServer(ServerOptions options, ScoringBackend* backend);

  void BuildRoutes();
  /// Acceptor thread body: poll listen fd + drain pipe, dispatch
  /// connections, then run the drain sequence.
  void AcceptLoop();
  /// Serves one connection until close/error/drain. Returns the terminal
  /// status (connection close is OK).
  Status ServeConnection(int fd);
  /// Handles one parsed request (routing, metrics, flight span).
  HttpResponse HandleRequest(const HttpRequest& request);
  HttpResponse HandleIngest(const HttpRequest& request);
  /// StatusToHttp + error JSON + Retry-After on 429/503.
  HttpResponse ErrorResponse(const Status& status) const;

  ServerOptions options_;
  ScoringBackend* backend_;
  AdmissionGate gate_;
  IngestCoalescer coalescer_;
  Router router_;
  std::unique_ptr<ThreadPool> pool_;
  std::thread acceptor_;
  int listen_fd_ = -1;
  int drain_pipe_[2] = {-1, -1};
  uint16_t port_ = 0;
  std::atomic<bool> draining_{false};
  std::atomic<bool> started_{false};
  /// Final snapshot flush status, written by the acceptor thread before it
  /// exits and read by Wait() after join.
  Status drain_status_;
};

}  // namespace net
}  // namespace churnlab

#endif  // CHURNLAB_NET_SERVER_H_
