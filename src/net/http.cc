#include "net/http.h"

#include <algorithm>

#include "common/string_util.h"
#include "net/status_http.h"

namespace churnlab {
namespace net {

namespace {

/// RFC 7230 token characters (method and header-name alphabet).
bool IsTokenChar(char c) {
  if (c >= 'a' && c <= 'z') return true;
  if (c >= 'A' && c <= 'Z') return true;
  if (c >= '0' && c <= '9') return true;
  switch (c) {
    case '!':
    case '#':
    case '$':
    case '%':
    case '&':
    case '\'':
    case '*':
    case '+':
    case '-':
    case '.':
    case '^':
    case '_':
    case '`':
    case '|':
    case '~':
      return true;
    default:
      return false;
  }
}

bool IsToken(std::string_view text) {
  if (text.empty()) return false;
  return std::all_of(text.begin(), text.end(), IsTokenChar);
}

}  // namespace

const std::string* HttpRequest::FindHeader(std::string_view name) const {
  for (const auto& [key, value] : headers) {
    if (key == name) return &value;
  }
  return nullptr;
}

std::string SerializeResponse(const HttpResponse& response, bool keep_alive) {
  std::string out;
  out.reserve(128 + response.body.size());
  out += "HTTP/1.1 ";
  out += std::to_string(response.status_code);
  out += ' ';
  out += HttpReasonPhrase(response.status_code);
  out += "\r\n";
  if (!response.content_type.empty()) {
    out += "Content-Type: ";
    out += response.content_type;
    out += "\r\n";
  }
  out += "Content-Length: ";
  out += std::to_string(response.body.size());
  out += "\r\n";
  for (const auto& [key, value] : response.headers) {
    out += key;
    out += ": ";
    out += value;
    out += "\r\n";
  }
  out += keep_alive ? "Connection: keep-alive\r\n" : "Connection: close\r\n";
  out += "\r\n";
  out += response.body;
  return out;
}

Status HttpParser::Feed(std::string_view bytes) {
  if (state_ == State::kError) {
    return Status::FailedPrecondition(
        "HTTP parser is poisoned by an earlier error");
  }
  buffer_.append(bytes);
  for (;;) {
    switch (state_) {
      case State::kHeader: {
        const size_t header_end = buffer_.find("\r\n\r\n");
        if (header_end == std::string::npos) {
          // Bound the unparsed header section; a peer that streams an
          // endless request line / header block is cut off here.
          if (buffer_.size() > limits_.max_header_bytes) {
            state_ = State::kError;
            return Status::OutOfRange("HTTP header section exceeds " +
                                      std::to_string(
                                          limits_.max_header_bytes) +
                                      " bytes");
          }
          const size_t line_end = buffer_.find("\r\n");
          if (line_end == std::string::npos &&
              buffer_.size() > limits_.max_request_line) {
            state_ = State::kError;
            return Status::OutOfRange("HTTP request line exceeds " +
                                      std::to_string(
                                          limits_.max_request_line) +
                                      " bytes");
          }
          return Status::OK();  // Need more bytes.
        }
        if (header_end + 4 > limits_.max_header_bytes) {
          state_ = State::kError;
          return Status::OutOfRange(
              "HTTP header section exceeds " +
              std::to_string(limits_.max_header_bytes) + " bytes");
        }
        const Status status = ParseHeaderSection(header_end);
        if (!status.ok()) {
          state_ = State::kError;
          return status;
        }
        buffer_.erase(0, header_end + 4);
        state_ = content_length_ == 0 ? State::kComplete : State::kBody;
        break;
      }
      case State::kBody: {
        if (buffer_.size() < content_length_) return Status::OK();
        request_.body.assign(buffer_, 0, content_length_);
        buffer_.erase(0, content_length_);
        state_ = State::kComplete;
        break;
      }
      case State::kComplete:
        // Pipelined bytes stay buffered until TakeRequest + Continue.
        return Status::OK();
      case State::kError:
        return Status::FailedPrecondition("unreachable");
    }
  }
}

Status HttpParser::ParseHeaderSection(size_t header_end) {
  const std::string_view section(buffer_.data(), header_end);
  const size_t line_end = section.find("\r\n");
  const std::string_view request_line =
      line_end == std::string_view::npos ? section
                                         : section.substr(0, line_end);
  if (request_line.size() > limits_.max_request_line) {
    return Status::OutOfRange("HTTP request line exceeds " +
                              std::to_string(limits_.max_request_line) +
                              " bytes");
  }

  // Request line: METHOD SP request-target SP HTTP/1.minor
  const size_t method_end = request_line.find(' ');
  if (method_end == std::string_view::npos) {
    return Status::InvalidArgument("malformed HTTP request line");
  }
  const size_t target_end = request_line.find(' ', method_end + 1);
  if (target_end == std::string_view::npos ||
      request_line.find(' ', target_end + 1) != std::string_view::npos) {
    return Status::InvalidArgument("malformed HTTP request line");
  }
  const std::string_view method = request_line.substr(0, method_end);
  const std::string_view target =
      request_line.substr(method_end + 1, target_end - method_end - 1);
  const std::string_view version = request_line.substr(target_end + 1);
  if (!IsToken(method)) {
    return Status::InvalidArgument("malformed HTTP method");
  }
  if (target.empty()) {
    return Status::InvalidArgument("empty HTTP request target");
  }
  HttpRequest request;
  if (version == "HTTP/1.1") {
    request.version_minor = 1;
  } else if (version == "HTTP/1.0") {
    request.version_minor = 0;
  } else {
    return Status::InvalidArgument("unsupported HTTP version '" +
                                   std::string(version) + "'");
  }
  request.method = std::string(method);
  request.target = std::string(target);
  const size_t query_pos = target.find('?');
  request.path = std::string(target.substr(0, query_pos));
  if (query_pos != std::string_view::npos) {
    request.query = std::string(target.substr(query_pos + 1));
  }

  // Header fields.
  bool have_content_length = false;
  size_t cursor = line_end == std::string_view::npos ? section.size()
                                                     : line_end + 2;
  while (cursor < section.size()) {
    size_t end = section.find("\r\n", cursor);
    if (end == std::string_view::npos) end = section.size();
    const std::string_view line = section.substr(cursor, end - cursor);
    cursor = end + 2;
    const size_t colon = line.find(':');
    if (colon == std::string_view::npos) {
      return Status::InvalidArgument("malformed HTTP header field");
    }
    const std::string_view raw_name = line.substr(0, colon);
    if (!IsToken(raw_name)) {
      return Status::InvalidArgument("malformed HTTP header name");
    }
    std::string name = AsciiToLower(raw_name);
    std::string value(StripAsciiWhitespace(line.substr(colon + 1)));
    if (name == "content-length") {
      // Request-smuggling hygiene (RFC 9112 §6.3): ANY repeated
      // Content-Length is rejected, even when the copies agree — two
      // parsers disagreeing on which copy wins is exactly how a desynced
      // body is smuggled past a front proxy.
      if (have_content_length) {
        return Status::InvalidArgument("duplicate Content-Length headers");
      }
      // The length is untrusted: parse strictly and clamp against the
      // configured bound BEFORE any body storage is reserved.
      Result<uint64_t> parsed = ParseUint64(value);
      if (!parsed.ok()) {
        return Status::InvalidArgument("malformed Content-Length '" + value +
                                       "'");
      }
      if (*parsed > limits_.max_body_bytes) {
        return Status::OutOfRange(
            "request body of " + value + " bytes exceeds the " +
            std::to_string(limits_.max_body_bytes) + "-byte bound");
      }
      content_length_ = static_cast<size_t>(*parsed);
      have_content_length = true;
    } else if (name == "transfer-encoding") {
      return Status::NotImplemented(
          "Transfer-Encoding is not supported; use Content-Length");
    }
    request.headers.emplace_back(std::move(name), std::move(value));
  }
  if (!have_content_length) content_length_ = 0;

  request.keep_alive = request.version_minor >= 1;
  if (const std::string* connection = request.FindHeader("connection")) {
    const std::string lowered = AsciiToLower(*connection);
    if (lowered == "close") {
      request.keep_alive = false;
    } else if (lowered == "keep-alive") {
      request.keep_alive = true;
    }
  }
  request_ = std::move(request);
  return Status::OK();
}

HttpRequest HttpParser::TakeRequest() {
  HttpRequest request = std::move(request_);
  request_ = HttpRequest();
  content_length_ = 0;
  state_ = State::kHeader;
  return request;
}

}  // namespace net
}  // namespace churnlab
