#include "net/server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstring>
#include <limits>
#include <utility>

#include "common/failpoint.h"
#include "common/macros.h"
#include "common/string_util.h"
#include "net/json_codec.h"
#include "net/status_http.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/prometheus.h"
#include "obs/structured_log.h"

namespace churnlab {
namespace net {

namespace {

struct NetMetrics {
  obs::Counter* requests;
  obs::Counter* connections;
  obs::Counter* shed;
  obs::Counter* parse_errors;
  obs::Counter* bytes_read;
  obs::Counter* bytes_written;
  obs::Counter* responses_2xx;
  obs::Counter* responses_4xx;
  obs::Counter* responses_5xx;
  obs::Counter* drains;
  obs::Gauge* connections_active;
  obs::Gauge* inflight;
  obs::Histogram* request_us;
};

const NetMetrics& Metrics() {
  static const NetMetrics metrics = [] {
    obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
    return NetMetrics{
        registry.GetCounter("churnlab.net.requests"),
        registry.GetCounter("churnlab.net.connections"),
        registry.GetCounter("churnlab.net.shed"),
        registry.GetCounter("churnlab.net.parse_errors"),
        registry.GetCounter("churnlab.net.bytes_read"),
        registry.GetCounter("churnlab.net.bytes_written"),
        registry.GetCounter("churnlab.net.responses_2xx"),
        registry.GetCounter("churnlab.net.responses_4xx"),
        registry.GetCounter("churnlab.net.responses_5xx"),
        registry.GetCounter("churnlab.net.drains"),
        registry.GetGauge("churnlab.net.connections_active"),
        registry.GetGauge("churnlab.net.inflight"),
        registry.GetHistogram("churnlab.net.request_us",
                              obs::HistogramOptions::ExponentialLatency()),
    };
  }();
  return metrics;
}

uint32_t RequestSite() {
  static const uint32_t kSite =
      obs::FlightRecorder::RegisterSite("net.request");
  return kSite;
}

Status Errno(const char* what) {
  return Status::IOError(std::string(what) + ": " + std::strerror(errno));
}

/// Write fd for the installed signal handler; one server per process.
std::atomic<int> g_signal_drain_fd{-1};
/// Termination signals seen by the handler. The first requests a graceful
/// drain; the second forces an immediate exit (an operator hitting Ctrl-C
/// twice means NOW, not "after the drain finishes").
std::atomic<int> g_signal_count{0};

extern "C" void OnDrainSignal(int) {
  const int count =
      g_signal_count.fetch_add(1, std::memory_order_relaxed) + 1;
  if (count >= 2) {
    // Everything here must be async-signal-safe: a raw write(2) of a
    // preformatted structured-log line, then _exit. No flushing, no locks.
    static constexpr char kForced[] =
        "{\"level\":\"error\",\"event\":\"drain_forced\",\"reason\":"
        "\"second termination signal during drain\"}\n";
    [[maybe_unused]] const ssize_t rc =
        ::write(STDERR_FILENO, kForced, sizeof(kForced) - 1);
    ::_exit(3);
  }
  const int fd = g_signal_drain_fd.load(std::memory_order_relaxed);
  if (fd >= 0) {
    const char byte = 'q';
    // Best effort: the pipe is non-blocking and a full pipe already means
    // a drain is pending.
    [[maybe_unused]] const ssize_t rc = ::write(fd, &byte, 1);
  }
}

Status SendAll(int fd, std::string_view bytes) {
  size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n =
        ::send(fd, bytes.data() + sent, bytes.size() - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Errno("send");
    }
    sent += static_cast<size_t>(n);
  }
  Metrics().bytes_written->Increment(bytes.size());
  return Status::OK();
}

}  // namespace

HttpServer::HttpServer(ServerOptions options, ScoringBackend* backend)
    : options_(std::move(options)),
      backend_(backend),
      gate_(options_.admission),
      coalescer_(options_.coalescer, backend) {}

Result<std::unique_ptr<HttpServer>> HttpServer::Make(ServerOptions options,
                                                     ScoringBackend* backend) {
  if (backend == nullptr) {
    return Status::InvalidArgument("HttpServer needs a backend");
  }
  if (options.num_threads == 0) options.num_threads = 1;
  if (options.poll_interval_ms <= 0) options.poll_interval_ms = 100;
  if (options.limits.max_body_bytes == 0 ||
      options.limits.max_header_bytes == 0 ||
      options.limits.max_request_line == 0) {
    return Status::InvalidArgument("HTTP parser limits must be positive");
  }
  std::unique_ptr<HttpServer> server(
      new HttpServer(std::move(options), backend));
  server->BuildRoutes();
  return server;
}

void HttpServer::BuildRoutes() {
  router_.Add("POST", "/v1/ingest",
              [this](const HttpRequest& request,
                     const std::vector<std::string>&) {
                return HandleIngest(request);
              });
  router_.Add(
      "GET", "/v1/customers/{id}",
      [this](const HttpRequest&, const std::vector<std::string>& params) {
        const Result<uint64_t> id = ParseUint64(params[0]);
        if (!id.ok() ||
            *id > std::numeric_limits<retail::CustomerId>::max()) {
          return ErrorResponse(Status::InvalidArgument(
              "'" + params[0] + "' is not a customer id"));
        }
        const Result<serve::CustomerQuery> query =
            backend_->Customer(static_cast<retail::CustomerId>(*id));
        if (!query.ok()) return ErrorResponse(query.status());
        HttpResponse response;
        response.body = WriteCustomerJson(*query);
        return response;
      });
  router_.Add("GET", "/v1/health",
              [this](const HttpRequest&, const std::vector<std::string>&) {
                const Result<serve::FleetHealth> health = backend_->Health();
                if (!health.ok()) return ErrorResponse(health.status());
                HttpResponse response;
                response.body = WriteHealthJson(*health);
                return response;
              });
  router_.Add("GET", "/metrics",
              [](const HttpRequest&, const std::vector<std::string>&) {
                HttpResponse response;
                response.content_type =
                    "text/plain; version=0.0.4; charset=utf-8";
                response.body = obs::ExportPrometheusGlobal();
                return response;
              });
  router_.Add("POST", "/v1/snapshot",
              [this](const HttpRequest&, const std::vector<std::string>&) {
                const Result<std::string> path = backend_->Snapshot();
                if (!path.ok()) return ErrorResponse(path.status());
                HttpResponse response;
                response.body = WriteSnapshotJson(*path);
                return response;
              });
}

HttpResponse HttpServer::ErrorResponse(const Status& status) const {
  HttpResponse response;
  response.status_code = StatusToHttp(status);
  response.body = WriteErrorJson(status);
  if (response.status_code == 429 || response.status_code == 503) {
    response.headers.emplace_back(
        "Retry-After", std::to_string(gate_.options().retry_after_seconds));
  }
  return response;
}

HttpResponse HttpServer::HandleIngest(const HttpRequest& request) {
  if (draining()) {
    Metrics().shed->Increment();
    return ErrorResponse(
        Status::Cancelled("server is draining; retry against a peer"));
  }
  Result<AdmissionGate::Ticket> ticket = gate_.Admit(request.body.size());
  if (!ticket.ok()) {
    if (ticket.status().IsResourceExhausted()) Metrics().shed->Increment();
    return ErrorResponse(ticket.status());
  }
  Result<std::vector<retail::Receipt>> receipts =
      ParseReceiptBatch(request.body, options_.max_receipts_per_request);
  if (!receipts.ok()) return ErrorResponse(receipts.status());
  Result<IngestCoalescer::Outcome> outcome =
      coalescer_.Ingest(std::move(*receipts));
  if (!outcome.ok()) {
    if (outcome.status().IsResourceExhausted()) Metrics().shed->Increment();
    return ErrorResponse(outcome.status());
  }
  HttpResponse response;
  response.body =
      WriteBatchReportJson(outcome->report, outcome->first_sequence);
  return response;
}

HttpResponse HttpServer::HandleRequest(const HttpRequest& request) {
  const NetMetrics& metrics = Metrics();
  metrics.requests->Increment();
  metrics.inflight->Add(1.0);
  HttpResponse response;
  {
    obs::FlightSpan span(RequestSite());
    obs::ScopedLatency latency(metrics.request_us);
    response = router_.Dispatch(request);
  }
  metrics.inflight->Add(-1.0);
  if (response.status_code < 400) {
    metrics.responses_2xx->Increment();
  } else if (response.status_code < 500) {
    metrics.responses_4xx->Increment();
  } else {
    metrics.responses_5xx->Increment();
  }
  return response;
}

Status HttpServer::ServeConnection(int fd) {
  HttpParser parser(options_.limits);
  char buffer[8192];
  for (;;) {
    pollfd pfd{fd, POLLIN, 0};
    const int rc = ::poll(&pfd, 1, options_.poll_interval_ms);
    if (rc < 0) {
      if (errno == EINTR) continue;
      return Errno("poll");
    }
    if (rc == 0) {
      // Idle tick: the only work is noticing a drain and closing.
      if (draining()) return Status::OK();
      continue;
    }
    CHURNLAB_FAILPOINT_KEYED("net.read", static_cast<uint64_t>(fd));
    const ssize_t n = ::recv(fd, buffer, sizeof(buffer), 0);
    if (n == 0) return Status::OK();  // Peer closed.
    if (n < 0) {
      if (errno == EINTR) continue;
      return Errno("recv");
    }
    Metrics().bytes_read->Increment(static_cast<uint64_t>(n));
    CHURNLAB_FAILPOINT_KEYED("net.parse", static_cast<uint64_t>(fd));
    Status parsed = parser.Feed({buffer, static_cast<size_t>(n)});
    for (;;) {
      if (!parsed.ok()) {
        // Best-effort error response; the connection closes either way
        // because the parser cannot resynchronize mid-stream.
        Metrics().parse_errors->Increment();
        HttpResponse response = ErrorResponse(parsed);
        if (response.status_code < 500) {
          Metrics().responses_4xx->Increment();
        } else {
          Metrics().responses_5xx->Increment();
        }
        (void)SendAll(fd, SerializeResponse(response, /*keep_alive=*/false));
        return parsed;
      }
      if (!parser.HasRequest()) break;
      const HttpRequest request = parser.TakeRequest();
      const HttpResponse response = HandleRequest(request);
      const bool keep_alive = request.keep_alive && !draining();
      CHURNLAB_RETURN_NOT_OK(
          SendAll(fd, SerializeResponse(response, keep_alive)));
      if (!keep_alive) return Status::OK();
      parsed = parser.Continue();  // Pipelined follow-ups.
    }
  }
}

Status HttpServer::Start() {
  if (started_.load(std::memory_order_relaxed)) {
    return Status::FailedPrecondition("server already started");
  }
  if (::pipe(drain_pipe_) != 0) return Errno("pipe");
  for (const int fd : drain_pipe_) {
    ::fcntl(fd, F_SETFD, FD_CLOEXEC);
  }
  // Non-blocking write end: RequestDrain (and the signal handler) must
  // never block on a full pipe.
  ::fcntl(drain_pipe_[1], F_SETFL, O_NONBLOCK);

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) return Errno("socket");
  const int enable = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &enable,
               sizeof(enable));
  sockaddr_in address{};
  address.sin_family = AF_INET;
  address.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.bind_address.c_str(),
                  &address.sin_addr) != 1) {
    return Status::InvalidArgument("'" + options_.bind_address +
                                   "' is not an IPv4 address");
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&address),
             sizeof(address)) != 0) {
    return Errno("bind");
  }
  if (::listen(listen_fd_, 128) != 0) return Errno("listen");
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                    &bound_len) != 0) {
    return Errno("getsockname");
  }
  port_ = ntohs(bound.sin_port);

  pool_ = std::make_unique<ThreadPool>(options_.num_threads);
  acceptor_ = std::thread(&HttpServer::AcceptLoop, this);
  started_.store(true, std::memory_order_relaxed);
  obs::LogEvent(LogLevel::kInfo, "net_server_started", __FILE__, __LINE__)
      .Str("bind", options_.bind_address)
      .Uint("port", port_)
      .Uint("threads", options_.num_threads);
  return Status::OK();
}

void HttpServer::AcceptLoop() {
  const NetMetrics& metrics = Metrics();
  using Clock = std::chrono::steady_clock;
  const bool periodic = options_.snapshot_interval_ms > 0;
  const auto interval = std::chrono::milliseconds(
      periodic ? options_.snapshot_interval_ms : 0);
  Clock::time_point next_snapshot = Clock::now() + interval;
  for (;;) {
    int timeout = -1;
    if (periodic) {
      const auto remaining =
          std::chrono::duration_cast<std::chrono::milliseconds>(
              next_snapshot - Clock::now())
              .count();
      timeout = remaining <= 0
                    ? 0
                    : static_cast<int>(std::min<long long>(
                          remaining, std::numeric_limits<int>::max()));
    }
    pollfd fds[2] = {{listen_fd_, POLLIN, 0}, {drain_pipe_[0], POLLIN, 0}};
    const int rc = ::poll(fds, 2, timeout);
    if (rc < 0) {
      if (errno == EINTR) continue;
      drain_status_ = Errno("poll");
      break;
    }
    if (periodic && Clock::now() >= next_snapshot) {
      // Periodic checkpoint: flush a snapshot generation (the backend
      // serializes against in-flight ingests) and, when journaling,
      // truncate the journal at its watermark. Deadline-based, so steady
      // accept traffic cannot starve the tick.
      next_snapshot = Clock::now() + interval;
      const Result<std::string> snapshot = backend_->Snapshot();
      if (snapshot.ok()) {
        obs::LogEvent(LogLevel::kInfo, "net_periodic_snapshot", __FILE__,
                      __LINE__)
            .Str("path", *snapshot);
      } else if (!snapshot.status().IsFailedPrecondition()) {
        obs::LogEvent(LogLevel::kWarning, "net_periodic_snapshot_failed",
                      __FILE__, __LINE__)
            .Str("status", snapshot.status().ToString());
      }
    }
    if (rc == 0) continue;  // Timeout tick only.
    if (fds[1].revents != 0) break;  // Drain requested.
    if ((fds[0].revents & POLLIN) == 0) continue;
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == ECONNABORTED) {
        continue;
      }
      drain_status_ = Errno("accept");
      break;
    }
    const auto accept_gate = []() -> Status {
      CHURNLAB_FAILPOINT("net.accept");
      return Status::OK();
    };
    if (const Status admitted = accept_gate(); !admitted.ok()) {
      obs::LogEvent(LogLevel::kWarning, "net_accept_fault", __FILE__,
                    __LINE__)
          .Str("status", admitted.ToString());
      ::close(fd);
      continue;
    }
    metrics.connections->Increment();
    metrics.connections_active->Add(1.0);
    pool_->Submit([this, fd, &metrics] {
      Status status;
      try {
        status = ServeConnection(fd);
      } catch (const std::exception& e) {
        status = Status::Internal(std::string("connection task: ") +
                                  e.what());
      }
      if (!status.ok()) {
        obs::LogEvent(LogLevel::kWarning, "net_connection_error", __FILE__,
                      __LINE__)
            .Uint("fd", static_cast<uint64_t>(fd))
            .Str("status", status.ToString());
      }
      ::close(fd);
      metrics.connections_active->Add(-1.0);
    });
  }

  // Drain sequence: stop accepting, finish in-flight connections, flush a
  // final snapshot so a restart resumes from everything this process
  // ingested.
  draining_.store(true, std::memory_order_relaxed);
  ::close(listen_fd_);
  listen_fd_ = -1;
  try {
    pool_->WaitIdle();
  } catch (const std::exception& e) {
    if (drain_status_.ok()) {
      drain_status_ = Status::Internal(
          std::string("connection task threw during drain: ") + e.what());
    }
  }
  const Result<std::string> snapshot = backend_->Snapshot();
  if (snapshot.ok()) {
    obs::LogEvent(LogLevel::kInfo, "net_drain_snapshot", __FILE__, __LINE__)
        .Str("path", *snapshot);
  } else if (!snapshot.status().IsFailedPrecondition()) {
    if (drain_status_.ok()) drain_status_ = snapshot.status();
  }
  // FailedPrecondition means "no snapshot destination configured": a clean
  // drain with nothing to flush.
  metrics.drains->Increment();
  obs::LogEvent(LogLevel::kInfo, "net_server_drained", __FILE__, __LINE__)
      .Str("status", drain_status_.ToString());
}

void HttpServer::RequestDrain() {
  if (drain_pipe_[1] < 0) return;
  const char byte = 'q';
  [[maybe_unused]] const ssize_t rc = ::write(drain_pipe_[1], &byte, 1);
}

Status HttpServer::Wait() {
  if (!started_.load(std::memory_order_relaxed)) {
    return Status::FailedPrecondition("server was never started");
  }
  if (acceptor_.joinable()) acceptor_.join();
  return drain_status_;
}

Status HttpServer::Shutdown() {
  RequestDrain();
  return Wait();
}

Status HttpServer::InstallSignalHandler() {
  if (!started_.load(std::memory_order_relaxed)) {
    return Status::FailedPrecondition(
        "start the server before installing signal handlers");
  }
  int expected = -1;
  if (!g_signal_drain_fd.compare_exchange_strong(
          expected, drain_pipe_[1], std::memory_order_relaxed)) {
    return Status::AlreadyExists(
        "another server already owns the process signal handlers");
  }
  struct sigaction action{};
  action.sa_handler = OnDrainSignal;
  ::sigemptyset(&action.sa_mask);
  if (::sigaction(SIGTERM, &action, nullptr) != 0 ||
      ::sigaction(SIGINT, &action, nullptr) != 0) {
    return Errno("sigaction");
  }
  return Status::OK();
}

HttpServer::~HttpServer() {
  if (started_.load(std::memory_order_relaxed)) {
    RequestDrain();
    if (acceptor_.joinable()) acceptor_.join();
  }
  // Disarm the signal handler's pipe reference before closing the fd.
  int mine = drain_pipe_[1];
  g_signal_drain_fd.compare_exchange_strong(mine, -1,
                                            std::memory_order_relaxed);
  for (int& fd : drain_pipe_) {
    if (fd >= 0) ::close(fd);
    fd = -1;
  }
  if (listen_fd_ >= 0) ::close(listen_fd_);
}

}  // namespace net
}  // namespace churnlab
