#ifndef CHURNLAB_NET_ROUTER_H_
#define CHURNLAB_NET_ROUTER_H_

#include <functional>
#include <string>
#include <vector>

#include "net/http.h"

namespace churnlab {
namespace net {

/// \brief Method + path-pattern dispatch for the HTTP server.
///
/// Patterns are literal segments with `{name}` placeholders capturing one
/// segment: "/v1/customers/{id}" matches "/v1/customers/42" and hands the
/// handler params = {"42"}. An unknown path yields 404; a known path with
/// the wrong method yields 405 with an Allow header listing the methods
/// that would have matched. Both error bodies are built through the same
/// error JSON as every endpoint.
class Router {
 public:
  /// `params` holds the captured segments in pattern order.
  using Handler = std::function<HttpResponse(
      const HttpRequest& request, const std::vector<std::string>& params)>;

  void Add(std::string method, std::string pattern, Handler handler);

  /// Routes `request` to the matching handler, or builds the 404/405
  /// response.
  HttpResponse Dispatch(const HttpRequest& request) const;

 private:
  struct Route {
    std::string method;
    std::string pattern;
    std::vector<std::string> segments;  ///< pattern split on '/'.
    Handler handler;
  };

  static bool MatchPath(const Route& route, std::string_view path,
                        std::vector<std::string>* params);

  std::vector<Route> routes_;
};

}  // namespace net
}  // namespace churnlab

#endif  // CHURNLAB_NET_ROUTER_H_
