#ifndef CHURNLAB_NET_HTTP_H_
#define CHURNLAB_NET_HTTP_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace churnlab {
namespace net {

/// One parsed HTTP/1.x request.
struct HttpRequest {
  std::string method;  ///< Upper-case as received ("GET", "POST").
  std::string target;  ///< Raw request-target, query string included.
  std::string path;    ///< `target` up to the first '?'.
  std::string query;   ///< `target` after the first '?', or empty.
  /// 0 for HTTP/1.0, 1 for HTTP/1.1 (anything else is rejected).
  int version_minor = 1;
  /// Header fields in arrival order, names ASCII-lower-cased.
  std::vector<std::pair<std::string, std::string>> headers;
  std::string body;
  /// Connection semantics after this request: HTTP/1.1 defaults to
  /// keep-alive, HTTP/1.0 to close, either overridden by a Connection
  /// header.
  bool keep_alive = true;

  /// First header with `name` (must be given lower-case); nullptr if
  /// absent.
  const std::string* FindHeader(std::string_view name) const;
};

/// One HTTP response under construction by a handler.
struct HttpResponse {
  int status_code = 200;
  std::string content_type = "application/json";
  /// Extra headers (e.g. Retry-After); Content-Type/Length, Connection and
  /// the status line are emitted by SerializeResponse.
  std::vector<std::pair<std::string, std::string>> headers;
  std::string body;
};

/// Renders `response` as an HTTP/1.1 wire message. `keep_alive` controls
/// the Connection header (the server echoes the request's semantics, or
/// forces close while draining).
std::string SerializeResponse(const HttpResponse& response, bool keep_alive);

/// \brief Incremental HTTP/1.1 request parser.
///
/// Feed() accepts bytes in arbitrary fragments (a request line torn across
/// recv() boundaries is reassembled) and buffers at most one in-progress
/// request plus any pipelined bytes behind it. All lengths derived from the
/// wire are untrusted: the header section is bounded by
/// Limits::max_header_bytes *before* it is parsed, and a Content-Length
/// larger than Limits::max_body_bytes is rejected at header-complete time,
/// before any body storage is reserved — a hostile 2^60 Content-Length
/// costs nothing.
///
/// Errors are sticky and carry the taxonomy the server maps to wire codes
/// through StatusToHttp: malformed syntax -> InvalidArgument (400),
/// oversized line/header/body -> OutOfRange (413), Transfer-Encoding
/// (unsupported) -> NotImplemented (501).
///
/// \code
///   HttpParser parser({});
///   CHURNLAB_RETURN_NOT_OK(parser.Feed(bytes));
///   while (parser.HasRequest()) {
///     HttpRequest request = parser.TakeRequest();
///     ...handle...
///     CHURNLAB_RETURN_NOT_OK(parser.Continue());  // pipelined follow-ups
///   }
/// \endcode
class HttpParser {
 public:
  struct Limits {
    /// Request line (method + target + version) byte bound.
    size_t max_request_line = 4096;
    /// Whole header section (request line included) byte bound.
    size_t max_header_bytes = 16384;
    /// Content-Length bound; larger bodies are rejected without
    /// allocation.
    size_t max_body_bytes = 8u << 20;
  };

  explicit HttpParser(Limits limits) : limits_(limits) {}

  /// Appends bytes and parses as far as possible. Stops consuming once a
  /// full request is ready (HasRequest()), leaving pipelined bytes
  /// buffered. After an error the parser is poisoned: the connection must
  /// be closed.
  Status Feed(std::string_view bytes);

  /// Resumes parsing buffered (pipelined) bytes after TakeRequest().
  Status Continue() { return Feed({}); }

  /// True once a complete request is parsed and waiting.
  bool HasRequest() const { return state_ == State::kComplete; }

  /// Hands over the parsed request and resets for the next one. HasRequest
  /// must be true.
  HttpRequest TakeRequest();

  /// Bytes buffered but not yet consumed (pipelined tail).
  size_t buffered_bytes() const { return buffer_.size(); }

 private:
  enum class State : uint8_t { kHeader, kBody, kComplete, kError };

  /// Parses the header section in buffer_[0, header_end) and transitions
  /// to kBody / kComplete.
  Status ParseHeaderSection(size_t header_end);

  Limits limits_;
  State state_ = State::kHeader;
  std::string buffer_;
  size_t content_length_ = 0;
  HttpRequest request_;
};

}  // namespace net
}  // namespace churnlab

#endif  // CHURNLAB_NET_HTTP_H_
