#ifndef CHURNLAB_EVAL_EXPERIMENT_H_
#define CHURNLAB_EVAL_EXPERIMENT_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "core/score_matrix.h"
#include "core/stability_model.h"
#include "datagen/scenario.h"
#include "eval/roc.h"
#include "retail/dataset.h"
#include "rfm/rfm_model.h"

namespace churnlab {
namespace eval {

/// AUROC of one model at one window.
///
/// `report_month` is the month at which the window's data is complete
/// (window end). Figure 1's x-axis uses this convention: a window covering
/// months [18, 20) is reported at month 20, which is why the paper reads
/// "two months after the start of attrition (month 18), AUROC = 0.79".
struct WindowAuroc {
  int32_t window = 0;
  int32_t report_month = 0;
  double auroc = 0.5;
};

/// Computes the per-window AUROC series of a score matrix against the
/// dataset's cohort labels (defecting = positive class). Unlabelled
/// customers are excluded. Windows are scored in parallel across
/// `num_threads` workers (1 = sequential); each window is independent, so
/// the series is identical for any thread count.
Result<std::vector<WindowAuroc>> AurocPerWindow(
    const retail::Dataset& dataset, const core::ScoreMatrix& scores,
    ScoreOrientation orientation, int32_t window_span_months,
    size_t num_threads = 1);

/// Options for the Figure 1 reproduction: the paper's headline experiment
/// (stability vs RFM detection AUROC over the months around the attrition
/// onset).
struct Figure1Options {
  datagen::PaperScenarioConfig scenario;
  core::StabilityModelOptions stability;
  rfm::RfmModelOptions rfm;
  /// Report months to include (inclusive bounds; the paper plots 12..24).
  int32_t first_report_month = 12;
  int32_t last_report_month = 24;
  /// Bootstrap resamples for the stability AUROC confidence interval;
  /// 0 disables (bounds stay at [0, 1]).
  size_t bootstrap_resamples = 0;
  /// Worker threads for the evaluation sweeps (per-window AUROC and
  /// bootstrap; 1 = sequential). Results are identical for any thread
  /// count. Model *scoring* threads are configured separately via
  /// stability.num_threads.
  size_t num_threads = 1;

  Figure1Options();
};

struct Figure1Row {
  int32_t report_month = 0;
  double stability_auroc = 0.5;
  double rfm_auroc = 0.5;
  /// 95% bootstrap interval of the stability AUROC (present when
  /// Figure1Options::bootstrap_resamples > 0).
  double stability_auroc_lower = 0.0;
  double stability_auroc_upper = 1.0;
};

struct Figure1Result {
  std::vector<Figure1Row> rows;
  retail::DatasetStats stats;
  /// Nominal onset month of the scenario (the figure's vertical line).
  int32_t onset_month = 18;
};

/// \brief End-to-end experiment drivers.
class ExperimentRunner {
 public:
  /// Validates the options eagerly (matching window spans, valid stability
  /// model), per the library-wide `static Result<T> Make(Options)`
  /// convention (docs/API.md).
  static Result<ExperimentRunner> Make(Figure1Options options);

  /// Generates the configured scenario and evaluates both models on it.
  Result<Figure1Result> Run() const;

  /// Evaluates both models on a caller-provided dataset (e.g. one loaded
  /// from disk) with the same reporting as Run().
  Result<Figure1Result> RunOnDataset(const retail::Dataset& dataset) const;

  const Figure1Options& options() const { return options_; }

 private:
  explicit ExperimentRunner(Figure1Options options)
      : options_(std::move(options)) {}

  Figure1Options options_;
};

}  // namespace eval
}  // namespace churnlab

#endif  // CHURNLAB_EVAL_EXPERIMENT_H_
