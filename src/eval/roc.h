#ifndef CHURNLAB_EVAL_ROC_H_
#define CHURNLAB_EVAL_ROC_H_

#include <cstdint>
#include <vector>

#include "common/result.h"

namespace churnlab {
namespace eval {

/// Which direction of a score indicates the positive (defecting) class.
/// The stability model emits *loyalty* scores (low stability = defecting,
/// so kLowerIsPositive); the RFM baseline emits defection probabilities
/// (kHigherIsPositive).
enum class ScoreOrientation : uint8_t {
  kHigherIsPositive = 0,
  kLowerIsPositive = 1,
};

/// One operating point of a ROC curve.
struct RocPoint {
  /// Classify positive when the oriented score is >= this threshold.
  double threshold = 0.0;
  double false_positive_rate = 0.0;
  double true_positive_rate = 0.0;
};

/// \brief Area under the ROC curve via the rank (Mann-Whitney U) statistic,
/// with fractional ranks handling ties exactly.
///
/// `labels` are 0/1 with 1 = positive. Requires at least one example of
/// each class (AUROC is undefined otherwise). The result is in [0, 1];
/// 0.5 = chance.
Result<double> Auroc(const std::vector<double>& scores,
                     const std::vector<int>& labels,
                     ScoreOrientation orientation);

/// \brief Full ROC curve: one point per distinct score threshold, endpoints
/// (0,0) and (1,1) included, ordered by ascending false-positive rate.
///
/// This is the curve whose area `Auroc` summarises and whose threshold
/// sweep corresponds to the paper's beta parameter on customer stability.
Result<std::vector<RocPoint>> RocCurve(const std::vector<double>& scores,
                                       const std::vector<int>& labels,
                                       ScoreOrientation orientation);

/// Trapezoidal area under an ROC curve produced by RocCurve — used by tests
/// to cross-check the rank-based Auroc.
double TrapezoidalArea(const std::vector<RocPoint>& curve);

}  // namespace eval
}  // namespace churnlab

#endif  // CHURNLAB_EVAL_ROC_H_
