#ifndef CHURNLAB_EVAL_PR_CURVE_H_
#define CHURNLAB_EVAL_PR_CURVE_H_

#include <vector>

#include "common/result.h"
#include "eval/roc.h"

namespace churnlab {
namespace eval {

/// One operating point of a precision-recall curve.
struct PrPoint {
  double threshold = 0.0;
  double recall = 0.0;
  double precision = 1.0;
};

/// \brief Precision-recall curve, ordered by increasing recall.
///
/// The paper evaluates with ROC/AUROC on balanced retailer-provided
/// cohorts; deployed churn screening is heavily imbalanced (a few percent
/// defectors), where precision-recall is the informative view — AUROC is
/// insensitive to the false-positive *count* that dominates campaign cost.
/// Ties share one point, endpoints included: recall 0 at the conservative
/// end (precision defined as 1 there by convention) through recall 1.
Result<std::vector<PrPoint>> PrCurve(const std::vector<double>& scores,
                                     const std::vector<int>& labels,
                                     ScoreOrientation orientation);

/// Average precision: the step-function integral
/// AP = sum_i (R_i - R_{i-1}) * P_i over the PR curve. Equals 1 for a
/// perfect ranking; equals the positive base rate for a random one.
Result<double> AveragePrecision(const std::vector<double>& scores,
                                const std::vector<int>& labels,
                                ScoreOrientation orientation);

}  // namespace eval
}  // namespace churnlab

#endif  // CHURNLAB_EVAL_PR_CURVE_H_
