#include "eval/explanation_quality.h"

#include <set>
#include <unordered_map>
#include <vector>

#include "common/macros.h"

namespace churnlab {
namespace eval {

namespace {
/// Ground-truth losses of one customer at segment granularity: segment ->
/// earliest loss month among its repertoire entries.
std::unordered_map<retail::SegmentId, int32_t> TrueLossesOf(
    const datagen::CustomerProfile& profile, const datagen::Market& market) {
  std::unordered_map<retail::SegmentId, int32_t> losses;
  for (const datagen::RepertoireEntry& entry : profile.repertoire) {
    if (entry.loss_month < 0) continue;
    const retail::SegmentId segment = market.taxonomy.SegmentOf(entry.item);
    if (segment == retail::kInvalidSegment) continue;
    const auto it = losses.find(segment);
    if (it == losses.end() || entry.loss_month < it->second) {
      losses[segment] = entry.loss_month;
    }
  }
  return losses;
}
}  // namespace

Result<ExplanationQualityResult> ExplanationQuality::Run(
    const datagen::PaperScenarioOutput& scenario,
    const ExplanationQualityOptions& options) {
  if (options.top_k == 0) {
    return Status::InvalidArgument("top_k must be positive");
  }
  if (options.windows_after_onset <= 0) {
    return Status::InvalidArgument("windows_after_onset must be positive");
  }
  if (options.stability.granularity != retail::Granularity::kSegment) {
    return Status::InvalidArgument(
        "explanation grading runs at segment granularity (ground truth is "
        "segment-level)");
  }
  core::StabilityModelOptions model_options = options.stability;
  model_options.explanation.top_k = options.top_k;
  CHURNLAB_ASSIGN_OR_RETURN(const core::StabilityModel model,
                            core::StabilityModel::Make(model_options));

  const int32_t span = options.stability.window_span_months;
  ExplanationQualityResult result;
  size_t correct_reported = 0;
  size_t correct_top1 = 0;
  size_t top1_graded = 0;
  size_t recalled_losses = 0;

  for (const datagen::CustomerProfile& profile : scenario.profiles) {
    if (profile.cohort != retail::Cohort::kDefecting) continue;
    if (profile.attrition_onset_month < 0) continue;
    const auto true_losses = TrueLossesOf(profile, scenario.market);
    if (true_losses.empty()) continue;

    CHURNLAB_ASSIGN_OR_RETURN(
        const core::CustomerReport report,
        model.AnalyzeCustomer(scenario.dataset, profile.customer));

    // First graded window: the first whose end month exceeds the onset.
    const int32_t first_window = profile.attrition_onset_month / span;
    const int32_t last_window =
        first_window + options.windows_after_onset - 1;

    bool graded_any = false;
    std::set<retail::SegmentId> reported_true_losses;
    for (const core::CustomerWindowReport& window : report.windows) {
      if (window.window_index < first_window ||
          window.window_index > last_window) {
        continue;
      }
      if (window.drop_from_previous < options.min_drop) continue;

      graded_any = true;
      ++result.windows_graded;
      bool is_top1 = true;
      for (const core::NamedMissingProduct& missing : window.missing) {
        if (!missing.newly_missing) continue;
        ++result.reported_products;
        // Resolve the reported segment by name.
        const retail::SegmentId segment =
            scenario.market.FindSegment(missing.name);
        const auto truth = true_losses.find(segment);
        const bool correct =
            truth != true_losses.end() &&
            truth->second >= window.begin_month - span &&
            truth->second < window.end_month;
        if (correct) {
          ++correct_reported;
          reported_true_losses.insert(segment);
          if (is_top1) ++correct_top1;
        }
        if (is_top1) {
          ++top1_graded;
          is_top1 = false;
        }
      }
    }
    if (graded_any) ++result.customers_graded;

    // Recall: true losses within the graded horizon that got reported.
    const int32_t horizon_begin = first_window * span;
    const int32_t horizon_end = (last_window + 1) * span;
    for (const auto& [segment, loss_month] : true_losses) {
      if (loss_month < horizon_begin || loss_month >= horizon_end) continue;
      ++result.true_losses_in_horizon;
      if (reported_true_losses.count(segment)) ++recalled_losses;
    }
  }

  if (result.reported_products > 0) {
    result.precision = static_cast<double>(correct_reported) /
                       static_cast<double>(result.reported_products);
  }
  if (top1_graded > 0) {
    result.top1_accuracy = static_cast<double>(correct_top1) /
                           static_cast<double>(top1_graded);
  }
  if (result.true_losses_in_horizon > 0) {
    result.recall = static_cast<double>(recalled_losses) /
                    static_cast<double>(result.true_losses_in_horizon);
  }
  return result;
}

}  // namespace eval
}  // namespace churnlab
