#include "eval/threshold.h"

#include <algorithm>

#include "common/macros.h"

namespace churnlab {
namespace eval {

Result<std::vector<OperatingPoint>> EnumerateOperatingPoints(
    const std::vector<double>& scores, const std::vector<int>& labels,
    ScoreOrientation orientation) {
  // Reuse the ROC machinery: every ROC point is one threshold.
  CHURNLAB_ASSIGN_OR_RETURN(const std::vector<RocPoint> curve,
                            RocCurve(scores, labels, orientation));
  std::vector<OperatingPoint> points;
  points.reserve(curve.size());
  for (const RocPoint& roc_point : curve) {
    // Skip the synthetic pre-curve point (threshold above every score).
    // It predicts nothing positive; keep it anyway as the most
    // conservative option with zero recall.
    const double oriented_threshold = roc_point.threshold;
    const double threshold =
        orientation == ScoreOrientation::kHigherIsPositive
            ? oriented_threshold
            : -oriented_threshold;
    CHURNLAB_ASSIGN_OR_RETURN(
        const ConfusionMatrix confusion,
        ConfusionAtThreshold(scores, labels, threshold, orientation));
    OperatingPoint point;
    point.threshold = threshold;
    point.precision = confusion.Precision();
    point.recall = confusion.Recall();
    point.false_positive_rate = confusion.FalsePositiveRate();
    point.f1 = confusion.F1();
    point.accuracy = confusion.Accuracy();
    points.push_back(point);
  }
  return points;
}

Result<OperatingPoint> SelectMaxF1(const std::vector<double>& scores,
                                   const std::vector<int>& labels,
                                   ScoreOrientation orientation) {
  CHURNLAB_ASSIGN_OR_RETURN(
      const std::vector<OperatingPoint> points,
      EnumerateOperatingPoints(scores, labels, orientation));
  const OperatingPoint* best = &points.front();
  for (const OperatingPoint& point : points) {
    if (point.f1 > best->f1) best = &point;
  }
  return *best;
}

Result<OperatingPoint> SelectForRecall(const std::vector<double>& scores,
                                       const std::vector<int>& labels,
                                       ScoreOrientation orientation,
                                       double target_recall) {
  if (target_recall < 0.0 || target_recall > 1.0) {
    return Status::InvalidArgument("target_recall must be in [0, 1]");
  }
  CHURNLAB_ASSIGN_OR_RETURN(
      const std::vector<OperatingPoint> points,
      EnumerateOperatingPoints(scores, labels, orientation));
  // Points are ordered conservative -> aggressive; recall is
  // non-decreasing along that order. Take the first that reaches target.
  for (const OperatingPoint& point : points) {
    if (point.recall >= target_recall) return point;
  }
  return Status::NotFound("no threshold reaches recall " +
                          std::to_string(target_recall));
}

Result<OperatingPoint> SelectForPrecision(const std::vector<double>& scores,
                                          const std::vector<int>& labels,
                                          ScoreOrientation orientation,
                                          double target_precision) {
  if (target_precision < 0.0 || target_precision > 1.0) {
    return Status::InvalidArgument("target_precision must be in [0, 1]");
  }
  CHURNLAB_ASSIGN_OR_RETURN(
      const std::vector<OperatingPoint> points,
      EnumerateOperatingPoints(scores, labels, orientation));
  // Scan aggressive -> conservative, remember the most aggressive point
  // meeting the precision bar (precision is not monotone, so scan all).
  const OperatingPoint* best = nullptr;
  for (const OperatingPoint& point : points) {
    if (point.precision >= target_precision &&
        (point.recall > 0.0 || point.precision > 0.0)) {
      if (best == nullptr || point.recall > best->recall) best = &point;
    }
  }
  if (best == nullptr) {
    return Status::NotFound("no threshold reaches precision " +
                            std::to_string(target_precision));
  }
  return *best;
}

}  // namespace eval
}  // namespace churnlab
