#include "eval/report.h"

#include <algorithm>
#include <sstream>

#include "common/csv.h"
#include "common/macros.h"

namespace churnlab {
namespace eval {

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TextTable::AddRow(std::vector<std::string> cells) {
  while (headers_.size() < cells.size()) {
    headers_.emplace_back();
  }
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

std::string TextTable::ToString() const {
  std::vector<size_t> widths(headers_.size(), 0);
  for (size_t j = 0; j < headers_.size(); ++j) {
    widths[j] = headers_[j].size();
  }
  for (const std::vector<std::string>& row : rows_) {
    for (size_t j = 0; j < row.size(); ++j) {
      widths[j] = std::max(widths[j], row[j].size());
    }
  }

  std::ostringstream out;
  const auto emit_row = [&](const std::vector<std::string>& cells) {
    for (size_t j = 0; j < cells.size(); ++j) {
      if (j > 0) out << "  ";
      out << cells[j];
      if (j + 1 < cells.size()) {
        out << std::string(widths[j] - cells[j].size(), ' ');
      }
    }
    out << "\n";
  };
  emit_row(headers_);
  size_t separator_width = 0;
  for (size_t j = 0; j < widths.size(); ++j) {
    separator_width += widths[j] + (j > 0 ? 2 : 0);
  }
  out << std::string(separator_width, '-') << "\n";
  for (const std::vector<std::string>& row : rows_) {
    emit_row(row);
  }
  return out.str();
}

Status TextTable::WriteCsv(const std::string& path) const {
  CHURNLAB_ASSIGN_OR_RETURN(CsvWriter writer, CsvWriter::Open(path));
  CHURNLAB_RETURN_NOT_OK(writer.WriteRow(headers_));
  for (const std::vector<std::string>& row : rows_) {
    CHURNLAB_RETURN_NOT_OK(writer.WriteRow(row));
  }
  return writer.Close();
}

}  // namespace eval
}  // namespace churnlab
