#ifndef CHURNLAB_EVAL_THRESHOLD_H_
#define CHURNLAB_EVAL_THRESHOLD_H_

#include <vector>

#include "common/result.h"
#include "eval/metrics.h"
#include "eval/roc.h"

namespace churnlab {
namespace eval {

/// One classifier operating point: a threshold (the paper's beta on
/// customer stability) and the metrics it induces.
struct OperatingPoint {
  double threshold = 0.0;
  double precision = 0.0;
  double recall = 0.0;
  double false_positive_rate = 0.0;
  double f1 = 0.0;
  double accuracy = 0.0;
};

/// All distinct operating points of a score set, ordered from the most
/// conservative (fewest positive predictions) to the most aggressive.
Result<std::vector<OperatingPoint>> EnumerateOperatingPoints(
    const std::vector<double>& scores, const std::vector<int>& labels,
    ScoreOrientation orientation);

/// Picks the operating point with maximal F1 (ties: the more conservative
/// one).
Result<OperatingPoint> SelectMaxF1(const std::vector<double>& scores,
                                   const std::vector<int>& labels,
                                   ScoreOrientation orientation);

/// Picks the most conservative operating point whose recall reaches
/// `target_recall` — "catch at least X% of defectors with the fewest false
/// alarms", the retention-campaign budgeting question. Fails when even the
/// most aggressive threshold misses the target (only possible for
/// target > 1).
Result<OperatingPoint> SelectForRecall(const std::vector<double>& scores,
                                       const std::vector<int>& labels,
                                       ScoreOrientation orientation,
                                       double target_recall);

/// Picks the most aggressive operating point whose precision still reaches
/// `target_precision`. Fails when no threshold achieves it.
Result<OperatingPoint> SelectForPrecision(const std::vector<double>& scores,
                                          const std::vector<int>& labels,
                                          ScoreOrientation orientation,
                                          double target_precision);

}  // namespace eval
}  // namespace churnlab

#endif  // CHURNLAB_EVAL_THRESHOLD_H_
