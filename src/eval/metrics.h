#ifndef CHURNLAB_EVAL_METRICS_H_
#define CHURNLAB_EVAL_METRICS_H_

#include <cstddef>
#include <string>
#include <vector>

#include "common/result.h"
#include "eval/roc.h"

namespace churnlab {
namespace eval {

/// Standard binary confusion counts at one operating threshold.
struct ConfusionMatrix {
  size_t true_positives = 0;
  size_t false_positives = 0;
  size_t true_negatives = 0;
  size_t false_negatives = 0;

  size_t total() const {
    return true_positives + false_positives + true_negatives +
           false_negatives;
  }
  double Accuracy() const;
  /// Precision = TP / (TP + FP); 0 when no positive predictions.
  double Precision() const;
  /// Recall (true-positive rate) = TP / (TP + FN); 0 when no positives.
  double Recall() const;
  /// False-positive rate = FP / (FP + TN); 0 when no negatives.
  double FalsePositiveRate() const;
  double F1() const;
  /// Mean of recall and true-negative rate.
  double BalancedAccuracy() const;

  std::string ToString() const;
};

/// Computes the confusion matrix classifying positive when the *oriented*
/// score passes `threshold` (i.e. for kLowerIsPositive — the stability
/// model's beta rule "defecting if Stability <= beta" — an example is
/// positive when score <= threshold).
Result<ConfusionMatrix> ConfusionAtThreshold(const std::vector<double>& scores,
                                             const std::vector<int>& labels,
                                             double threshold,
                                             ScoreOrientation orientation);

/// Lift of the top `fraction` of examples by oriented score: the positive
/// rate inside the selected head divided by the overall positive rate. The
/// retail-marketing view of ranking quality (lift 3 at 10% = mailing the
/// top decile reaches 3x the churners of a random mailing).
Result<double> LiftAtFraction(const std::vector<double>& scores,
                              const std::vector<int>& labels, double fraction,
                              ScoreOrientation orientation);

}  // namespace eval
}  // namespace churnlab

#endif  // CHURNLAB_EVAL_METRICS_H_
