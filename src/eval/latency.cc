#include "eval/latency.h"

#include "common/macros.h"
#include "common/math_util.h"
#include "eval/distribution.h"

namespace churnlab {
namespace eval {

Result<LatencyResult> MeasureDetectionLatency(
    const retail::Dataset& dataset, const core::ScoreMatrix& scores,
    const LatencyOptions& options) {
  if (options.window_span_months <= 0) {
    return Status::InvalidArgument("window_span_months must be positive");
  }
  if (options.warmup_windows < 0) {
    return Status::InvalidArgument("warmup_windows must be >= 0");
  }

  LatencyResult result;
  for (size_t row = 0; row < scores.customers().size(); ++row) {
    const retail::CustomerLabel label =
        dataset.LabelOf(scores.customers()[row]);
    if (label.cohort == retail::Cohort::kUnlabeled) continue;

    // First flagged window, if any.
    int32_t flagged_window = -1;
    for (int32_t window = options.warmup_windows;
         window < scores.num_windows(); ++window) {
      const double score = scores.At(row, window);
      const bool flagged =
          options.orientation == ScoreOrientation::kLowerIsPositive
              ? score <= options.beta
              : score >= options.beta;
      if (flagged) {
        flagged_window = window;
        break;
      }
    }

    if (label.cohort == retail::Cohort::kLoyal) {
      ++result.loyal;
      if (flagged_window >= 0) ++result.loyal_flagged;
      continue;
    }
    ++result.defectors;
    if (flagged_window < 0) continue;
    ++result.defectors_flagged;
    if (label.attrition_onset_month >= 0) {
      const int32_t report_month =
          (flagged_window + 1) * options.window_span_months;
      result.lags_months.push_back(
          static_cast<double>(report_month - label.attrition_onset_month));
    }
  }
  if (result.defectors == 0 || result.loyal == 0) {
    return Status::InvalidArgument(
        "latency needs labelled loyal and defecting customers");
  }
  if (!result.lags_months.empty()) {
    CHURNLAB_ASSIGN_OR_RETURN(result.median_lag_months,
                              Quantile(result.lags_months, 0.5));
    result.mean_lag_months = Mean(result.lags_months);
  }
  result.false_alarm_rate = static_cast<double>(result.loyal_flagged) /
                            static_cast<double>(result.loyal);
  return result;
}

}  // namespace eval
}  // namespace churnlab
