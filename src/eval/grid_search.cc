#include "eval/grid_search.h"

#include <cmath>
#include <mutex>
#include <utility>
#include <vector>

#include "common/kfold.h"
#include "common/logging.h"
#include "common/macros.h"
#include "common/math_util.h"
#include "common/stopwatch.h"
#include "common/thread_pool.h"
#include "core/stability_model.h"
#include "eval/roc.h"
#include "obs/metrics.h"
#include "obs/structured_log.h"
#include "obs/trace.h"

namespace churnlab {
namespace eval {

namespace {

/// Evaluates one (window span, alpha) grid cell: scores the dataset under
/// those hyper-parameters and cross-validates the detection AUROC. Pure
/// function of its inputs, so cells can run on any thread in any order
/// with byte-identical results.
Result<GridSearchCell> EvaluateCell(
    const retail::Dataset& dataset, const GridSearchOptions& options,
    const StratifiedKFold& folds,
    const std::vector<retail::CustomerId>& labelled,
    const std::vector<int>& targets, int32_t span, double alpha) {
  CHURNLAB_SPAN("eval.grid_cell");
  core::StabilityModelOptions model_options;
  model_options.significance.alpha = alpha;
  model_options.window_span_months = span;
  model_options.granularity = options.granularity;
  CHURNLAB_ASSIGN_OR_RETURN(const core::StabilityModel model,
                            core::StabilityModel::Make(model_options));
  CHURNLAB_ASSIGN_OR_RETURN(const core::ScoreMatrix scores,
                            model.ScoreDataset(dataset));

  // Windows contributing to the objective.
  std::vector<int32_t> objective_windows;
  for (int32_t window = 0; window < scores.num_windows(); ++window) {
    const int32_t report_month = (window + 1) * span;
    if (report_month > options.onset_month &&
        report_month <=
            options.onset_month + options.objective_horizon_months) {
      objective_windows.push_back(window);
    }
  }
  if (objective_windows.empty()) {
    return Status::InvalidArgument(
        "no windows fall in the objective horizon for span " +
        std::to_string(span));
  }

  std::vector<double> fold_objectives;
  fold_objectives.reserve(folds.num_folds());
  for (size_t fold = 0; fold < folds.num_folds(); ++fold) {
    const std::vector<size_t>& test = folds.TestIndices(fold);
    double auroc_sum = 0.0;
    size_t auroc_count = 0;
    for (const int32_t window : objective_windows) {
      std::vector<double> fold_scores;
      std::vector<int> fold_labels;
      fold_scores.reserve(test.size());
      fold_labels.reserve(test.size());
      for (const size_t index : test) {
        CHURNLAB_ASSIGN_OR_RETURN(
            const double score, scores.ScoreOf(labelled[index], window));
        fold_scores.push_back(score);
        fold_labels.push_back(targets[index]);
      }
      const Result<double> auroc = Auroc(fold_scores, fold_labels,
                                         ScoreOrientation::kLowerIsPositive);
      if (!auroc.ok()) continue;  // single-class fold at this window
      auroc_sum += auroc.ValueOrDie();
      ++auroc_count;
    }
    if (auroc_count > 0) {
      fold_objectives.push_back(auroc_sum /
                                static_cast<double>(auroc_count));
    }
  }
  if (fold_objectives.empty()) {
    return Status::Internal("every fold was degenerate in grid search");
  }

  GridSearchCell cell;
  cell.window_span_months = span;
  cell.alpha = alpha;
  cell.mean_auroc = Mean(fold_objectives);
  cell.std_auroc = StdDev(fold_objectives);
  return cell;
}

}  // namespace

Result<GridSearchResult> StabilityGridSearch::Run(
    const retail::Dataset& dataset) const {
  CHURNLAB_SPAN("eval.grid_search");
  static obs::Counter* const cells_evaluated =
      obs::MetricsRegistry::Global().GetCounter(
          "churnlab.eval.grid_cells_evaluated");
  static obs::Histogram* const cell_ms =
      obs::MetricsRegistry::Global().GetHistogram(
          "churnlab.eval.grid_cell_ms",
          obs::HistogramOptions::ExponentialLatency());
  static obs::Gauge* const eval_threads =
      obs::MetricsRegistry::Global().GetGauge("churnlab.eval.threads");
  // Grid shape and fold count were validated by Make; only dataset-dependent
  // checks remain here.
  const GridSearchOptions& options = options_;
  const size_t num_threads = options.num_threads == 0 ? 1
                                                      : options.num_threads;
  eval_threads->Set(static_cast<double>(num_threads));

  // Labelled customers and their targets.
  std::vector<retail::CustomerId> labelled;
  std::vector<int> targets;
  for (const retail::CustomerId customer : dataset.store().Customers()) {
    const retail::Cohort cohort = dataset.LabelOf(customer).cohort;
    if (cohort == retail::Cohort::kUnlabeled) continue;
    labelled.push_back(customer);
    targets.push_back(cohort == retail::Cohort::kDefecting ? 1 : 0);
  }
  if (labelled.size() < options.folds) {
    return Status::InvalidArgument("not enough labelled customers for folds");
  }
  CHURNLAB_ASSIGN_OR_RETURN(
      const StratifiedKFold folds,
      StratifiedKFold::Make(targets, options.folds, options.seed));

  // Flatten the grid so every cell has a stable index: results are written
  // by index and collected in grid order, making the output independent of
  // task scheduling.
  std::vector<std::pair<int32_t, double>> grid;
  grid.reserve(options.window_spans_months.size() * options.alphas.size());
  for (const int32_t span : options.window_spans_months) {
    for (const double alpha : options.alphas) {
      grid.emplace_back(span, alpha);
    }
  }

  obs::ProgressLogger progress("grid_search", grid.size());
  std::mutex progress_mutex;
  size_t completed = 0;
  std::vector<Result<GridSearchCell>> cell_results(
      grid.size(), Status::Internal("grid cell was not evaluated"));
  const auto evaluate_into = [&](size_t index) {
    Stopwatch cell_timer;
    cell_results[index] =
        EvaluateCell(dataset, options, folds, labelled, targets,
                     grid[index].first, grid[index].second);
    cells_evaluated->Increment();
    cell_ms->Record(cell_timer.ElapsedSeconds() * 1e3);
    std::lock_guard<std::mutex> lock(progress_mutex);
    progress.Step(++completed);
  };

  if (num_threads <= 1) {
    for (size_t index = 0; index < grid.size(); ++index) {
      evaluate_into(index);
    }
  } else {
    // One cell per task: cell costs vary strongly with the window span, so
    // FIFO work-stealing balances better than static chunking would.
    ThreadPool pool(num_threads);
    for (size_t index = 0; index < grid.size(); ++index) {
      pool.Submit([&evaluate_into, index] { evaluate_into(index); });
    }
    pool.WaitIdle();
  }
  progress.Done();

  GridSearchResult result;
  result.cells.reserve(grid.size());
  for (Result<GridSearchCell>& cell_result : cell_results) {
    CHURNLAB_RETURN_NOT_OK(cell_result.status());
    const GridSearchCell& cell = cell_result.ValueOrDie();
    CHURNLAB_LOG(Debug) << "grid cell w=" << cell.window_span_months
                        << " alpha=" << cell.alpha
                        << " auroc=" << cell.mean_auroc << " +- "
                        << cell.std_auroc;
    result.cells.push_back(cell);
  }

  result.best = result.cells.front();
  for (const GridSearchCell& cell : result.cells) {
    if (cell.mean_auroc > result.best.mean_auroc) result.best = cell;
  }
  return result;
}

Result<StabilityGridSearch> StabilityGridSearch::Make(
    GridSearchOptions options) {
  if (options.window_spans_months.empty() || options.alphas.empty()) {
    return Status::InvalidArgument("empty parameter grid");
  }
  if (options.folds < 2) {
    return Status::InvalidArgument("folds must be >= 2");
  }
  return StabilityGridSearch(std::move(options));
}

}  // namespace eval
}  // namespace churnlab
