#include "eval/metrics.h"

#include <algorithm>
#include <numeric>
#include <sstream>

#include "common/macros.h"

namespace churnlab {
namespace eval {

double ConfusionMatrix::Accuracy() const {
  const size_t n = total();
  if (n == 0) return 0.0;
  return static_cast<double>(true_positives + true_negatives) /
         static_cast<double>(n);
}

double ConfusionMatrix::Precision() const {
  const size_t predicted_positive = true_positives + false_positives;
  if (predicted_positive == 0) return 0.0;
  return static_cast<double>(true_positives) /
         static_cast<double>(predicted_positive);
}

double ConfusionMatrix::Recall() const {
  const size_t actual_positive = true_positives + false_negatives;
  if (actual_positive == 0) return 0.0;
  return static_cast<double>(true_positives) /
         static_cast<double>(actual_positive);
}

double ConfusionMatrix::FalsePositiveRate() const {
  const size_t actual_negative = false_positives + true_negatives;
  if (actual_negative == 0) return 0.0;
  return static_cast<double>(false_positives) /
         static_cast<double>(actual_negative);
}

double ConfusionMatrix::F1() const {
  const double precision = Precision();
  const double recall = Recall();
  if (precision + recall == 0.0) return 0.0;
  return 2.0 * precision * recall / (precision + recall);
}

double ConfusionMatrix::BalancedAccuracy() const {
  return (Recall() + (1.0 - FalsePositiveRate())) / 2.0;
}

std::string ConfusionMatrix::ToString() const {
  std::ostringstream out;
  out << "TP=" << true_positives << " FP=" << false_positives
      << " TN=" << true_negatives << " FN=" << false_negatives;
  return out.str();
}

Result<ConfusionMatrix> ConfusionAtThreshold(const std::vector<double>& scores,
                                             const std::vector<int>& labels,
                                             double threshold,
                                             ScoreOrientation orientation) {
  if (scores.size() != labels.size()) {
    return Status::InvalidArgument("scores / labels size mismatch");
  }
  ConfusionMatrix confusion;
  for (size_t i = 0; i < scores.size(); ++i) {
    if (labels[i] != 0 && labels[i] != 1) {
      return Status::InvalidArgument("labels must be 0 or 1");
    }
    const bool predicted_positive =
        orientation == ScoreOrientation::kHigherIsPositive
            ? scores[i] >= threshold
            : scores[i] <= threshold;
    if (predicted_positive) {
      if (labels[i] == 1) {
        ++confusion.true_positives;
      } else {
        ++confusion.false_positives;
      }
    } else {
      if (labels[i] == 1) {
        ++confusion.false_negatives;
      } else {
        ++confusion.true_negatives;
      }
    }
  }
  return confusion;
}

Result<double> LiftAtFraction(const std::vector<double>& scores,
                              const std::vector<int>& labels, double fraction,
                              ScoreOrientation orientation) {
  if (scores.size() != labels.size()) {
    return Status::InvalidArgument("scores / labels size mismatch");
  }
  if (scores.empty()) {
    return Status::InvalidArgument("empty input");
  }
  if (fraction <= 0.0 || fraction > 1.0) {
    return Status::InvalidArgument("fraction must be in (0, 1]");
  }
  size_t positives = 0;
  for (const int label : labels) {
    if (label != 0 && label != 1) {
      return Status::InvalidArgument("labels must be 0 or 1");
    }
    positives += static_cast<size_t>(label);
  }
  if (positives == 0) {
    return Status::InvalidArgument("lift undefined with no positives");
  }

  std::vector<size_t> order(scores.size());
  std::iota(order.begin(), order.end(), size_t{0});
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return orientation == ScoreOrientation::kHigherIsPositive
               ? scores[a] > scores[b]
               : scores[a] < scores[b];
  });

  const size_t head = std::max<size_t>(
      1, static_cast<size_t>(fraction * static_cast<double>(scores.size())));
  size_t head_positives = 0;
  for (size_t i = 0; i < head; ++i) {
    head_positives += static_cast<size_t>(labels[order[i]]);
  }
  const double head_rate =
      static_cast<double>(head_positives) / static_cast<double>(head);
  const double base_rate =
      static_cast<double>(positives) / static_cast<double>(scores.size());
  return head_rate / base_rate;
}

}  // namespace eval
}  // namespace churnlab
