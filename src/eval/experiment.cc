#include "eval/experiment.h"

#include <vector>

#include "common/macros.h"
#include "common/thread_pool.h"
#include "eval/bootstrap.h"
#include "obs/metrics.h"
#include "obs/structured_log.h"
#include "obs/trace.h"

namespace churnlab {
namespace eval {

namespace {
obs::Counter* AurocCounter() {
  static obs::Counter* const counter =
      obs::MetricsRegistry::Global().GetCounter(
          "churnlab.eval.auroc_computations");
  return counter;
}
}  // namespace

Figure1Options::Figure1Options() {
  // Paper settings: alpha = 2, window span = 2 months, segment granularity.
  stability.significance.alpha = 2.0;
  stability.window_span_months = 2;
  stability.granularity = retail::Granularity::kSegment;
  rfm.features.window_span_months = 2;
}

Result<std::vector<WindowAuroc>> AurocPerWindow(
    const retail::Dataset& dataset, const core::ScoreMatrix& scores,
    ScoreOrientation orientation, int32_t window_span_months,
    size_t num_threads) {
  CHURNLAB_SPAN("eval.auroc_per_window");
  if (window_span_months <= 0) {
    return Status::InvalidArgument("window_span_months must be positive");
  }
  // Labelled rows only.
  std::vector<size_t> rows;
  std::vector<int> labels;
  for (size_t row = 0; row < scores.customers().size(); ++row) {
    const retail::Cohort cohort =
        dataset.LabelOf(scores.customers()[row]).cohort;
    if (cohort == retail::Cohort::kUnlabeled) continue;
    rows.push_back(row);
    labels.push_back(cohort == retail::Cohort::kDefecting ? 1 : 0);
  }
  if (rows.empty()) {
    return Status::InvalidArgument("dataset has no labelled customers");
  }

  // Each window's AUROC is independent; compute them in parallel and keep
  // per-window slots so the series order (and every bit of it) matches the
  // sequential run.
  const size_t num_windows = static_cast<size_t>(scores.num_windows());
  std::vector<Result<double>> window_aurocs(
      num_windows, Status::Internal("window was not evaluated"));
  ParallelFor(0, num_windows, num_threads, [&](size_t window) {
    std::vector<double> window_scores(rows.size());
    for (size_t i = 0; i < rows.size(); ++i) {
      window_scores[i] = scores.At(rows[i], static_cast<int32_t>(window));
    }
    window_aurocs[window] = Auroc(window_scores, labels, orientation);
    AurocCounter()->Increment();
  });

  std::vector<WindowAuroc> series;
  series.reserve(num_windows);
  for (size_t window = 0; window < num_windows; ++window) {
    CHURNLAB_RETURN_NOT_OK(window_aurocs[window].status());
    WindowAuroc point;
    point.window = static_cast<int32_t>(window);
    point.report_month =
        (static_cast<int32_t>(window) + 1) * window_span_months;
    point.auroc = window_aurocs[window].ValueOrDie();
    series.push_back(point);
  }
  return series;
}

Result<Figure1Result> ExperimentRunner::Run() const {
  CHURNLAB_ASSIGN_OR_RETURN(const retail::Dataset dataset,
                            datagen::MakePaperDataset(options_.scenario));
  return RunOnDataset(dataset);
}

Result<Figure1Result> ExperimentRunner::RunOnDataset(
    const retail::Dataset& dataset) const {
  CHURNLAB_SPAN("eval.figure1");
  // The matching-window-span invariant was established by Make.
  const Figure1Options& options = options_;

  // Four coarse phases: score stability, AUROC it, score RFM, AUROC it.
  obs::ProgressLogger progress("evaluate", 4);
  CHURNLAB_ASSIGN_OR_RETURN(const core::StabilityModel stability_model,
                            core::StabilityModel::Make(options.stability));
  CHURNLAB_ASSIGN_OR_RETURN(const core::ScoreMatrix stability_scores,
                            stability_model.ScoreDataset(dataset));
  progress.Step(1, "stability scores");
  CHURNLAB_ASSIGN_OR_RETURN(
      const std::vector<WindowAuroc> stability_series,
      AurocPerWindow(dataset, stability_scores,
                     ScoreOrientation::kLowerIsPositive,
                     options.stability.window_span_months,
                     options.num_threads));
  progress.Step(2, "stability AUROC");

  CHURNLAB_ASSIGN_OR_RETURN(const rfm::RfmModel rfm_model,
                            rfm::RfmModel::Make(options.rfm));
  CHURNLAB_ASSIGN_OR_RETURN(const core::ScoreMatrix rfm_scores,
                            rfm_model.ScoreDataset(dataset));
  progress.Step(3, "rfm scores");
  CHURNLAB_ASSIGN_OR_RETURN(
      const std::vector<WindowAuroc> rfm_series,
      AurocPerWindow(dataset, rfm_scores, ScoreOrientation::kHigherIsPositive,
                     options.rfm.features.window_span_months,
                     options.num_threads));
  progress.Done();

  if (stability_series.size() != rfm_series.size()) {
    return Status::Internal("model window counts diverged");
  }

  Figure1Result result;
  result.stats = dataset.ComputeStats();
  result.onset_month = options.scenario.population.attrition.onset_month;

  // Labelled rows, reused by the per-window bootstrap.
  std::vector<size_t> labelled_rows;
  std::vector<int> labels;
  if (options.bootstrap_resamples > 0) {
    for (size_t row = 0; row < stability_scores.customers().size(); ++row) {
      const retail::Cohort cohort =
          dataset.LabelOf(stability_scores.customers()[row]).cohort;
      if (cohort == retail::Cohort::kUnlabeled) continue;
      labelled_rows.push_back(row);
      labels.push_back(cohort == retail::Cohort::kDefecting ? 1 : 0);
    }
  }

  // Every window's bootstrap interval is seeded identically and resampled
  // independently, so the per-window sweep parallelises without changing a
  // bit of the output.
  std::vector<Result<ConfidenceInterval>> intervals(
      stability_series.size(), Status::Internal("window was not evaluated"));
  if (options.bootstrap_resamples > 0) {
    CHURNLAB_SPAN("eval.bootstrap_sweep");
    ParallelFor(0, stability_series.size(), options.num_threads,
                [&](size_t i) {
                  std::vector<double> window_scores;
                  window_scores.reserve(labelled_rows.size());
                  for (const size_t labelled_row : labelled_rows) {
                    window_scores.push_back(stability_scores.At(
                        labelled_row, stability_series[i].window));
                  }
                  BootstrapOptions bootstrap;
                  bootstrap.resamples = options.bootstrap_resamples;
                  intervals[i] = BootstrapAuroc(
                      window_scores, labels,
                      ScoreOrientation::kLowerIsPositive, bootstrap);
                });
  }

  for (size_t i = 0; i < stability_series.size(); ++i) {
    const int32_t month = stability_series[i].report_month;
    if (month < options.first_report_month ||
        month > options.last_report_month) {
      continue;
    }
    Figure1Row row;
    row.report_month = month;
    row.stability_auroc = stability_series[i].auroc;
    row.rfm_auroc = rfm_series[i].auroc;
    if (options.bootstrap_resamples > 0) {
      CHURNLAB_RETURN_NOT_OK(intervals[i].status());
      row.stability_auroc_lower = intervals[i].ValueOrDie().lower;
      row.stability_auroc_upper = intervals[i].ValueOrDie().upper;
    }
    result.rows.push_back(row);
  }
  return result;
}

Result<ExperimentRunner> ExperimentRunner::Make(Figure1Options options) {
  if (options.stability.window_span_months !=
      options.rfm.features.window_span_months) {
    return Status::InvalidArgument(
        "stability and RFM models must share one window span so their "
        "AUROC series are comparable");
  }
  CHURNLAB_RETURN_NOT_OK(
      core::StabilityModel::Make(options.stability).status());
  CHURNLAB_RETURN_NOT_OK(rfm::RfmModel::Make(options.rfm).status());
  return ExperimentRunner(std::move(options));
}

}  // namespace eval
}  // namespace churnlab
