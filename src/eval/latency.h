#ifndef CHURNLAB_EVAL_LATENCY_H_
#define CHURNLAB_EVAL_LATENCY_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "core/score_matrix.h"
#include "eval/roc.h"
#include "retail/dataset.h"

namespace churnlab {
namespace eval {

/// Options for detection-latency measurement.
struct LatencyOptions {
  /// Flag a customer at the first window whose oriented score crosses this
  /// threshold (for kLowerIsPositive: score <= beta).
  double beta = 0.6;
  ScoreOrientation orientation = ScoreOrientation::kLowerIsPositive;
  /// Windows ignored at the start (burn-in; no significance history).
  int32_t warmup_windows = 2;
  /// Months per window, for converting window indices to months.
  int32_t window_span_months = 2;
};

/// How long after their ground-truth onset defectors get flagged, and how
/// often loyal customers are flagged at all.
struct LatencyResult {
  size_t defectors = 0;
  /// Defectors flagged at some window.
  size_t defectors_flagged = 0;
  /// Lag in months from onset to the flagging window's report month, one
  /// entry per flagged defector (negative = flagged before the declared
  /// onset, possible with early losses / prodromes).
  std::vector<double> lags_months;
  double median_lag_months = 0.0;
  double mean_lag_months = 0.0;
  size_t loyal = 0;
  /// Loyal customers flagged at least once (lifetime false alarms).
  size_t loyal_flagged = 0;
  double false_alarm_rate = 0.0;
};

/// \brief Measures when the beta rule first fires for each customer.
///
/// The AUROC view (Figure 1) asks "how separable are the cohorts at month
/// m"; the latency view asks the operational question — "how many months
/// after a customer starts defecting does the screen catch them, and what
/// does that cost in false alarms". Requires ground-truth onset months in
/// the dataset labels.
Result<LatencyResult> MeasureDetectionLatency(const retail::Dataset& dataset,
                                              const core::ScoreMatrix& scores,
                                              const LatencyOptions& options);

}  // namespace eval
}  // namespace churnlab

#endif  // CHURNLAB_EVAL_LATENCY_H_
