#ifndef CHURNLAB_EVAL_BOOTSTRAP_H_
#define CHURNLAB_EVAL_BOOTSTRAP_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "eval/roc.h"

namespace churnlab {
namespace eval {

/// A point estimate with a percentile-bootstrap confidence interval.
struct ConfidenceInterval {
  double estimate = 0.0;
  double lower = 0.0;
  double upper = 0.0;
  /// Nominal coverage, e.g. 0.95.
  double confidence = 0.95;
};

struct BootstrapOptions {
  /// Number of bootstrap resamples.
  size_t resamples = 1000;
  /// Two-sided confidence level in (0, 1).
  double confidence = 0.95;
  uint64_t seed = 2016;
  /// Worker threads drawing resamples (1 = sequential). Every resample is
  /// seeded independently from (seed, resample index), so the interval is
  /// identical for any thread count.
  size_t num_threads = 1;
};

/// \brief Percentile-bootstrap confidence interval for AUROC.
///
/// Resamples (score, label) pairs with replacement `resamples` times and
/// takes the empirical quantiles of the resampled AUROCs. Resamples that
/// draw a single class are redrawn (up to a bounded number of retries;
/// beyond that the resample is skipped). Deterministic given the seed.
///
/// The paper reports bare AUROC values; the interval quantifies how much
/// of a reproduction gap is within sampling noise.
Result<ConfidenceInterval> BootstrapAuroc(const std::vector<double>& scores,
                                          const std::vector<int>& labels,
                                          ScoreOrientation orientation,
                                          const BootstrapOptions& options);

}  // namespace eval
}  // namespace churnlab

#endif  // CHURNLAB_EVAL_BOOTSTRAP_H_
