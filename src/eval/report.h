#ifndef CHURNLAB_EVAL_REPORT_H_
#define CHURNLAB_EVAL_REPORT_H_

#include <string>
#include <vector>

#include "common/status.h"

namespace churnlab {
namespace eval {

/// \brief Column-aligned text table for experiment output, with CSV export.
///
/// \code
///   TextTable table({"month", "stability AUROC", "RFM AUROC"});
///   table.AddRow({"12", "0.51", "0.50"});
///   std::cout << table.ToString();
///   table.WriteCsv("fig1.csv");
/// \endcode
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> headers);

  /// Appends a row; short rows are padded with empty cells, long rows
  /// extend the column count.
  void AddRow(std::vector<std::string> cells);

  size_t num_rows() const { return rows_.size(); }

  /// Renders with right-padded columns and a header separator line.
  std::string ToString() const;

  /// Writes header + rows as CSV.
  Status WriteCsv(const std::string& path) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace eval
}  // namespace churnlab

#endif  // CHURNLAB_EVAL_REPORT_H_
