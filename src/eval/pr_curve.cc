#include "eval/pr_curve.h"

#include <algorithm>
#include <numeric>

#include "common/macros.h"

namespace churnlab {
namespace eval {

Result<std::vector<PrPoint>> PrCurve(const std::vector<double>& scores,
                                     const std::vector<int>& labels,
                                     ScoreOrientation orientation) {
  if (scores.size() != labels.size()) {
    return Status::InvalidArgument("scores / labels size mismatch");
  }
  if (scores.empty()) {
    return Status::InvalidArgument("empty input");
  }
  size_t positives = 0;
  for (const int label : labels) {
    if (label != 0 && label != 1) {
      return Status::InvalidArgument("labels must be 0 or 1");
    }
    positives += static_cast<size_t>(label);
  }
  if (positives == 0) {
    return Status::InvalidArgument("PR curve needs at least one positive");
  }

  std::vector<double> oriented(scores.size());
  for (size_t i = 0; i < scores.size(); ++i) {
    oriented[i] = orientation == ScoreOrientation::kHigherIsPositive
                      ? scores[i]
                      : -scores[i];
  }
  std::vector<size_t> order(scores.size());
  std::iota(order.begin(), order.end(), size_t{0});
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return oriented[a] > oriented[b];
  });

  std::vector<PrPoint> curve;
  curve.push_back(PrPoint{oriented[order.front()] + 1.0, 0.0, 1.0});
  size_t true_positives = 0;
  size_t predicted_positives = 0;
  size_t i = 0;
  while (i < order.size()) {
    const double threshold = oriented[order[i]];
    while (i < order.size() && oriented[order[i]] == threshold) {
      true_positives += static_cast<size_t>(labels[order[i]]);
      ++predicted_positives;
      ++i;
    }
    PrPoint point;
    point.threshold = orientation == ScoreOrientation::kHigherIsPositive
                          ? threshold
                          : -threshold;
    point.recall = static_cast<double>(true_positives) /
                   static_cast<double>(positives);
    point.precision = static_cast<double>(true_positives) /
                      static_cast<double>(predicted_positives);
    curve.push_back(point);
  }
  return curve;
}

Result<double> AveragePrecision(const std::vector<double>& scores,
                                const std::vector<int>& labels,
                                ScoreOrientation orientation) {
  CHURNLAB_ASSIGN_OR_RETURN(const std::vector<PrPoint> curve,
                            PrCurve(scores, labels, orientation));
  double average_precision = 0.0;
  for (size_t i = 1; i < curve.size(); ++i) {
    average_precision +=
        (curve[i].recall - curve[i - 1].recall) * curve[i].precision;
  }
  return average_precision;
}

}  // namespace eval
}  // namespace churnlab
