#include "eval/ascii_chart.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/string_util.h"

namespace churnlab {
namespace eval {

Result<std::string> RenderAsciiChart(const std::vector<ChartSeries>& series,
                                     const AsciiChartOptions& options) {
  if (series.empty()) {
    return Status::InvalidArgument("no series to plot");
  }
  if (options.width < 8 || options.height < 4) {
    return Status::InvalidArgument("chart must be at least 8x4");
  }
  if (!(options.y_max > options.y_min)) {
    return Status::InvalidArgument("need y_max > y_min");
  }

  double x_min = std::numeric_limits<double>::infinity();
  double x_max = -std::numeric_limits<double>::infinity();
  for (const ChartSeries& s : series) {
    if (s.xs.size() != s.ys.size()) {
      return Status::InvalidArgument("series '" + s.label +
                                     "' has mismatched xs/ys");
    }
    for (const double x : s.xs) {
      x_min = std::min(x_min, x);
      x_max = std::max(x_max, x);
    }
  }
  if (!(x_max > x_min)) {
    return Status::InvalidArgument("need at least two distinct x values");
  }

  const size_t width = options.width;
  const size_t height = options.height;
  std::vector<std::string> grid(height, std::string(width, ' '));

  const auto column_of = [&](double x) {
    const double t = (x - x_min) / (x_max - x_min);
    return static_cast<size_t>(std::lround(
        std::clamp(t, 0.0, 1.0) * static_cast<double>(width - 1)));
  };
  const auto row_of = [&](double y) {
    const double t =
        (y - options.y_min) / (options.y_max - options.y_min);
    const size_t from_bottom = static_cast<size_t>(std::lround(
        std::clamp(t, 0.0, 1.0) * static_cast<double>(height - 1)));
    return height - 1 - from_bottom;
  };

  // Vertical marker first so data overdraws it.
  if (std::isfinite(options.x_marker) && options.x_marker >= x_min &&
      options.x_marker <= x_max) {
    const size_t column = column_of(options.x_marker);
    for (size_t row = 0; row < height; ++row) grid[row][column] = '|';
  }

  for (const ChartSeries& s : series) {
    // Draw segments between consecutive points with linear interpolation,
    // one glyph per column so lines stay readable.
    for (size_t i = 0; i + 1 < s.xs.size(); ++i) {
      const size_t c0 = column_of(s.xs[i]);
      const size_t c1 = column_of(s.xs[i + 1]);
      const size_t begin = std::min(c0, c1);
      const size_t end = std::max(c0, c1);
      for (size_t column = begin; column <= end; ++column) {
        const double t =
            end == begin
                ? 0.0
                : static_cast<double>(column - begin) /
                      static_cast<double>(end - begin);
        const double y = c0 <= c1 ? s.ys[i] + t * (s.ys[i + 1] - s.ys[i])
                                  : s.ys[i + 1] +
                                        t * (s.ys[i] - s.ys[i + 1]);
        grid[row_of(y)][column] = s.glyph;
      }
    }
    if (s.xs.size() == 1) {
      grid[row_of(s.ys[0])][column_of(s.xs[0])] = s.glyph;
    }
  }

  std::ostringstream out;
  for (size_t row = 0; row < height; ++row) {
    const double y = options.y_max -
                     (options.y_max - options.y_min) *
                         static_cast<double>(row) /
                         static_cast<double>(height - 1);
    out << FormatDouble(y, 2) << " +" << grid[row] << "\n";
  }
  out << "     +" << std::string(width, '-') << "\n";
  std::string x_axis(width + 6, ' ');
  const std::string left = FormatDouble(x_min, 0);
  const std::string right = FormatDouble(x_max, 0);
  x_axis.replace(6, left.size(), left);
  if (width + 6 > right.size()) {
    x_axis.replace(width + 6 - right.size(), right.size(), right);
  }
  out << x_axis << "  (" << options.x_label << ")\n";
  out << "     legend:";
  for (const ChartSeries& s : series) {
    out << "  " << s.glyph << " = " << s.label;
  }
  out << "\n";
  return out.str();
}

}  // namespace eval
}  // namespace churnlab
