#ifndef CHURNLAB_EVAL_ASCII_CHART_H_
#define CHURNLAB_EVAL_ASCII_CHART_H_

#include <limits>
#include <string>
#include <vector>

#include "common/result.h"

namespace churnlab {
namespace eval {

/// One plotted series: (x, y) points and the glyph that draws it.
struct ChartSeries {
  std::string label;
  char glyph = '*';
  std::vector<double> xs;
  std::vector<double> ys;
};

struct AsciiChartOptions {
  size_t width = 64;
  size_t height = 16;
  /// Y-axis range; defaults fit AUROC / stability plots.
  double y_min = 0.0;
  double y_max = 1.0;
  /// Optional vertical marker (e.g. the attrition onset month); NaN = none.
  double x_marker = std::numeric_limits<double>::quiet_NaN();
  std::string x_label = "month";
};

/// \brief Renders line series as a monospace chart — the terminal rendition
/// of the paper's figures.
///
/// Output: a height x width grid with y-axis tick labels, one glyph per
/// series (later series overdraw earlier ones), an optional vertical
/// marker column of '|', an x-axis with min/max labels and a legend line.
/// Points outside the ranges are clamped to the border.
Result<std::string> RenderAsciiChart(const std::vector<ChartSeries>& series,
                                     const AsciiChartOptions& options);

}  // namespace eval
}  // namespace churnlab

#endif  // CHURNLAB_EVAL_ASCII_CHART_H_
