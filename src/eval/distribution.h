#ifndef CHURNLAB_EVAL_DISTRIBUTION_H_
#define CHURNLAB_EVAL_DISTRIBUTION_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "core/score_matrix.h"
#include "retail/dataset.h"

namespace churnlab {
namespace eval {

/// Quantile summary of one cohort's scores at one window.
struct CohortQuantiles {
  int32_t window = 0;
  int32_t report_month = 0;
  size_t count = 0;
  double p10 = 0.0;
  double p25 = 0.0;
  double median = 0.0;
  double p75 = 0.0;
  double p90 = 0.0;
  double mean = 0.0;
};

/// Per-window quantiles of both cohorts — the population-level view of
/// Figure 2: where the loyal and defecting stability distributions sit and
/// when they separate.
struct CohortDistribution {
  std::vector<CohortQuantiles> loyal;
  std::vector<CohortQuantiles> defecting;
};

/// Empirical quantile (linear interpolation between order statistics) of
/// `values`; `q` in [0, 1]. Fails on empty input or q outside [0, 1].
Result<double> Quantile(std::vector<double> values, double q);

/// Computes per-window score quantiles for the loyal and defecting cohorts
/// of `dataset` from a score matrix. `window_span_months` sets the
/// report-month axis.
Result<CohortDistribution> ComputeCohortDistribution(
    const retail::Dataset& dataset, const core::ScoreMatrix& scores,
    int32_t window_span_months);

}  // namespace eval
}  // namespace churnlab

#endif  // CHURNLAB_EVAL_DISTRIBUTION_H_
