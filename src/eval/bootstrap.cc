#include "eval/bootstrap.h"

#include <algorithm>

#include "common/macros.h"
#include "common/random.h"
#include "common/thread_pool.h"

namespace churnlab {
namespace eval {

Result<ConfidenceInterval> BootstrapAuroc(const std::vector<double>& scores,
                                          const std::vector<int>& labels,
                                          ScoreOrientation orientation,
                                          const BootstrapOptions& options) {
  if (options.resamples == 0) {
    return Status::InvalidArgument("resamples must be positive");
  }
  if (options.confidence <= 0.0 || options.confidence >= 1.0) {
    return Status::InvalidArgument("confidence must be in (0, 1)");
  }
  ConfidenceInterval interval;
  interval.confidence = options.confidence;
  CHURNLAB_ASSIGN_OR_RETURN(interval.estimate,
                            Auroc(scores, labels, orientation));

  const size_t n = scores.size();
  // Each resample owns its RNG stream, seeded from (seed, resample index):
  // SplitMix64 seeding decorrelates nearby seeds, and the resamples become
  // order-independent, so the statistic vector is identical for any thread
  // count.
  std::vector<double> statistics(options.resamples, 0.0);
  std::vector<char> computed(options.resamples, 0);
  ParallelFor(0, options.resamples, options.num_threads, [&](size_t b) {
    Rng rng(options.seed + static_cast<uint64_t>(b));
    std::vector<double> resample_scores(n);
    std::vector<int> resample_labels(n);
    // Redraw degenerate (single-class) resamples a bounded number of times.
    for (int attempt = 0; attempt < 16 && !computed[b]; ++attempt) {
      for (size_t i = 0; i < n; ++i) {
        const size_t pick = static_cast<size_t>(rng.NextUint64(n));
        resample_scores[i] = scores[pick];
        resample_labels[i] = labels[pick];
      }
      const Result<double> auroc =
          Auroc(resample_scores, resample_labels, orientation);
      if (auroc.ok()) {
        statistics[b] = auroc.ValueOrDie();
        computed[b] = 1;
      }
    }
  });
  // Compact in resample order, dropping the (rare) degenerate ones.
  size_t kept = 0;
  for (size_t b = 0; b < options.resamples; ++b) {
    if (computed[b]) statistics[kept++] = statistics[b];
  }
  statistics.resize(kept);
  if (statistics.empty()) {
    return Status::Internal("every bootstrap resample was degenerate");
  }

  std::sort(statistics.begin(), statistics.end());
  const double tail = (1.0 - options.confidence) / 2.0;
  const auto quantile_at = [&](double q) {
    const double position =
        q * static_cast<double>(statistics.size() - 1);
    const size_t lower_index = static_cast<size_t>(position);
    const double fraction = position - static_cast<double>(lower_index);
    if (lower_index + 1 >= statistics.size()) return statistics.back();
    return statistics[lower_index] * (1.0 - fraction) +
           statistics[lower_index + 1] * fraction;
  };
  interval.lower = quantile_at(tail);
  interval.upper = quantile_at(1.0 - tail);
  return interval;
}

}  // namespace eval
}  // namespace churnlab
