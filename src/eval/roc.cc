#include "eval/roc.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/macros.h"
#include "common/math_util.h"

namespace churnlab {
namespace eval {

namespace {
Status ValidateInput(const std::vector<double>& scores,
                     const std::vector<int>& labels, size_t* num_positive,
                     size_t* num_negative) {
  if (scores.size() != labels.size()) {
    return Status::InvalidArgument("scores / labels size mismatch");
  }
  if (scores.empty()) {
    return Status::InvalidArgument("empty input");
  }
  // NaN scores would make the ranking comparators' ordering unspecified
  // and the returned AUROC garbage; infinities rank deterministically but
  // are always a bug upstream. Reject both.
  for (size_t i = 0; i < scores.size(); ++i) {
    if (!std::isfinite(scores[i])) {
      return Status::InvalidArgument(
          "score at index " + std::to_string(i) + " is not finite (" +
          std::to_string(scores[i]) + "); AUROC is undefined on NaN/inf");
    }
  }
  size_t positives = 0;
  for (const int label : labels) {
    if (label != 0 && label != 1) {
      return Status::InvalidArgument("labels must be 0 or 1");
    }
    positives += static_cast<size_t>(label);
  }
  if (positives == 0 || positives == labels.size()) {
    return Status::InvalidArgument(
        "AUROC needs at least one positive and one negative example");
  }
  *num_positive = positives;
  *num_negative = labels.size() - positives;
  return Status::OK();
}

std::vector<double> Orient(const std::vector<double>& scores,
                           ScoreOrientation orientation) {
  if (orientation == ScoreOrientation::kHigherIsPositive) return scores;
  std::vector<double> oriented(scores.size());
  for (size_t i = 0; i < scores.size(); ++i) oriented[i] = -scores[i];
  return oriented;
}
}  // namespace

Result<double> Auroc(const std::vector<double>& scores,
                     const std::vector<int>& labels,
                     ScoreOrientation orientation) {
  size_t num_positive = 0;
  size_t num_negative = 0;
  CHURNLAB_RETURN_NOT_OK(
      ValidateInput(scores, labels, &num_positive, &num_negative));

  const std::vector<double> oriented = Orient(scores, orientation);
  const std::vector<double> ranks = FractionalRanks(oriented);
  double positive_rank_sum = 0.0;
  for (size_t i = 0; i < labels.size(); ++i) {
    if (labels[i] == 1) positive_rank_sum += ranks[i];
  }
  const double n_pos = static_cast<double>(num_positive);
  const double n_neg = static_cast<double>(num_negative);
  const double u_statistic =
      positive_rank_sum - n_pos * (n_pos + 1.0) / 2.0;
  return u_statistic / (n_pos * n_neg);
}

Result<std::vector<RocPoint>> RocCurve(const std::vector<double>& scores,
                                       const std::vector<int>& labels,
                                       ScoreOrientation orientation) {
  size_t num_positive = 0;
  size_t num_negative = 0;
  CHURNLAB_RETURN_NOT_OK(
      ValidateInput(scores, labels, &num_positive, &num_negative));

  const std::vector<double> oriented = Orient(scores, orientation);
  std::vector<size_t> order(oriented.size());
  std::iota(order.begin(), order.end(), size_t{0});
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return oriented[a] > oriented[b];
  });

  std::vector<RocPoint> curve;
  curve.push_back(RocPoint{oriented[order.front()] + 1.0, 0.0, 0.0});

  size_t true_positives = 0;
  size_t false_positives = 0;
  const double n_pos = static_cast<double>(num_positive);
  const double n_neg = static_cast<double>(num_negative);
  size_t i = 0;
  while (i < order.size()) {
    const double threshold = oriented[order[i]];
    // Consume the whole tie group before emitting a point so ties share one
    // operating point (classify-positive-at-threshold includes all of them).
    while (i < order.size() && oriented[order[i]] == threshold) {
      if (labels[order[i]] == 1) {
        ++true_positives;
      } else {
        ++false_positives;
      }
      ++i;
    }
    curve.push_back(RocPoint{threshold,
                             static_cast<double>(false_positives) / n_neg,
                             static_cast<double>(true_positives) / n_pos});
  }
  return curve;
}

double TrapezoidalArea(const std::vector<RocPoint>& curve) {
  double area = 0.0;
  for (size_t i = 1; i < curve.size(); ++i) {
    const double width =
        curve[i].false_positive_rate - curve[i - 1].false_positive_rate;
    const double height =
        (curve[i].true_positive_rate + curve[i - 1].true_positive_rate) / 2.0;
    area += width * height;
  }
  return area;
}

}  // namespace eval
}  // namespace churnlab
