#ifndef CHURNLAB_EVAL_EXPLANATION_QUALITY_H_
#define CHURNLAB_EVAL_EXPLANATION_QUALITY_H_

#include <cstdint>

#include "common/result.h"
#include "core/stability_model.h"
#include "datagen/scenario.h"

namespace churnlab {
namespace eval {

/// Options for grading explanation correctness against simulator ground
/// truth.
struct ExplanationQualityOptions {
  core::StabilityModelOptions stability;
  /// Explanations graded per window: the top_k newly-missing products.
  size_t top_k = 3;
  /// Windows inspected per defector, starting at the first window whose
  /// end month is past the customer's onset.
  int32_t windows_after_onset = 3;
  /// Only windows whose stability dropped at least this much are graded
  /// (the paper's workflow: explain *decreases*).
  double min_drop = 0.05;
};

/// Aggregate explanation-correctness metrics.
///
/// A reported product is *correct* when the customer's ground-truth
/// repertoire really lost an item of that segment around the graded window
/// (loss month within one window span of it). Ground truth includes
/// attrition-injected and natural-turnover losses alike.
struct ExplanationQualityResult {
  size_t customers_graded = 0;
  size_t windows_graded = 0;
  /// Fraction of reported top-k newly-missing products that are true
  /// losses.
  double precision = 0.0;
  /// Fraction of graded windows whose single most significant newly-missing
  /// product is a true loss.
  double top1_accuracy = 0.0;
  /// Fraction of true lost segments (loss month within the graded horizon)
  /// that some graded window reported in its top-k.
  double recall = 0.0;
  size_t reported_products = 0;
  size_t true_losses_in_horizon = 0;
};

/// \brief Grades section 3.2's claim quantitatively: when the model blames
/// products for a stability drop, are those the products the customer
/// actually stopped buying? Requires the scenario's generating profiles
/// (ground truth), hence a PaperScenarioOutput.
class ExplanationQuality {
 public:
  static Result<ExplanationQualityResult> Run(
      const datagen::PaperScenarioOutput& scenario,
      const ExplanationQualityOptions& options);
};

}  // namespace eval
}  // namespace churnlab

#endif  // CHURNLAB_EVAL_EXPLANATION_QUALITY_H_
