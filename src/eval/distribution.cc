#include "eval/distribution.h"

#include <algorithm>
#include <cmath>

#include "common/macros.h"
#include "common/math_util.h"

namespace churnlab {
namespace eval {

Result<double> Quantile(std::vector<double> values, double q) {
  if (values.empty()) {
    return Status::InvalidArgument("quantile of empty sample");
  }
  if (q < 0.0 || q > 1.0) {
    return Status::InvalidArgument("q must be in [0, 1]");
  }
  std::sort(values.begin(), values.end());
  const double position = q * static_cast<double>(values.size() - 1);
  const size_t lower = static_cast<size_t>(position);
  const double fraction = position - static_cast<double>(lower);
  if (lower + 1 >= values.size()) return values.back();
  return values[lower] * (1.0 - fraction) + values[lower + 1] * fraction;
}

namespace {
Result<CohortQuantiles> Summarise(const std::vector<double>& values,
                                  int32_t window,
                                  int32_t window_span_months) {
  CohortQuantiles quantiles;
  quantiles.window = window;
  quantiles.report_month = (window + 1) * window_span_months;
  quantiles.count = values.size();
  CHURNLAB_ASSIGN_OR_RETURN(quantiles.p10, Quantile(values, 0.10));
  CHURNLAB_ASSIGN_OR_RETURN(quantiles.p25, Quantile(values, 0.25));
  CHURNLAB_ASSIGN_OR_RETURN(quantiles.median, Quantile(values, 0.50));
  CHURNLAB_ASSIGN_OR_RETURN(quantiles.p75, Quantile(values, 0.75));
  CHURNLAB_ASSIGN_OR_RETURN(quantiles.p90, Quantile(values, 0.90));
  quantiles.mean = Mean(values);
  return quantiles;
}
}  // namespace

Result<CohortDistribution> ComputeCohortDistribution(
    const retail::Dataset& dataset, const core::ScoreMatrix& scores,
    int32_t window_span_months) {
  if (window_span_months <= 0) {
    return Status::InvalidArgument("window_span_months must be positive");
  }
  std::vector<size_t> loyal_rows;
  std::vector<size_t> defecting_rows;
  for (size_t row = 0; row < scores.customers().size(); ++row) {
    switch (dataset.LabelOf(scores.customers()[row]).cohort) {
      case retail::Cohort::kLoyal:
        loyal_rows.push_back(row);
        break;
      case retail::Cohort::kDefecting:
        defecting_rows.push_back(row);
        break;
      case retail::Cohort::kUnlabeled:
        break;
    }
  }
  if (loyal_rows.empty() || defecting_rows.empty()) {
    return Status::InvalidArgument(
        "need at least one loyal and one defecting customer");
  }

  CohortDistribution distribution;
  std::vector<double> values;
  for (int32_t window = 0; window < scores.num_windows(); ++window) {
    values.clear();
    for (const size_t row : loyal_rows) values.push_back(scores.At(row, window));
    CHURNLAB_ASSIGN_OR_RETURN(CohortQuantiles loyal,
                              Summarise(values, window, window_span_months));
    distribution.loyal.push_back(loyal);

    values.clear();
    for (const size_t row : defecting_rows) {
      values.push_back(scores.At(row, window));
    }
    CHURNLAB_ASSIGN_OR_RETURN(CohortQuantiles defecting,
                              Summarise(values, window, window_span_months));
    distribution.defecting.push_back(defecting);
  }
  return distribution;
}

}  // namespace eval
}  // namespace churnlab
