#ifndef CHURNLAB_EVAL_GRID_SEARCH_H_
#define CHURNLAB_EVAL_GRID_SEARCH_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "retail/dataset.h"
#include "retail/types.h"

namespace churnlab {
namespace eval {

/// Options of the (window span, alpha) cross-validated parameter search
/// (section 3.1: "These values were chosen after performing a 5-fold
/// cross-validation search", yielding w = 2 months, alpha = 2).
struct GridSearchOptions {
  std::vector<int32_t> window_spans_months = {1, 2, 3};
  std::vector<double> alphas = {1.25, 1.5, 2.0, 3.0, 4.0};
  size_t folds = 5;
  uint64_t seed = 99;
  /// Objective: mean detection AUROC over the windows whose report month
  /// falls in (onset_month, onset_month + objective_horizon_months].
  int32_t onset_month = 18;
  int32_t objective_horizon_months = 6;
  retail::Granularity granularity = retail::Granularity::kSegment;
  /// Worker threads evaluating grid cells (one cell per task; 1 =
  /// sequential). Results are byte-identical for any thread count: each
  /// cell is computed independently and collected in grid order.
  size_t num_threads = 1;
};

/// One grid cell's cross-validated objective.
struct GridSearchCell {
  int32_t window_span_months = 0;
  double alpha = 0.0;
  /// Mean / standard deviation of the fold objectives.
  double mean_auroc = 0.0;
  double std_auroc = 0.0;
};

struct GridSearchResult {
  std::vector<GridSearchCell> cells;
  /// The argmax cell by mean AUROC.
  GridSearchCell best;
};

/// \brief 5-fold cross-validated grid search over the stability model's
/// hyper-parameters.
///
/// The stability model has no trained weights, so "cross-validation" here
/// is pure model selection: each fold's customers are scored by the model
/// and the fold AUROC is recorded; the objective is the fold mean, and its
/// spread shows the selection's stability.
class StabilityGridSearch {
 public:
  /// Validates the options eagerly (non-empty grid, folds >= 2), per the
  /// library-wide `static Result<T> Make(Options)` convention (docs/API.md).
  static Result<StabilityGridSearch> Make(GridSearchOptions options);

  /// Searches on `dataset` with the options captured at Make time.
  Result<GridSearchResult> Run(const retail::Dataset& dataset) const;

  const GridSearchOptions& options() const { return options_; }

 private:
  explicit StabilityGridSearch(GridSearchOptions options)
      : options_(std::move(options)) {}

  GridSearchOptions options_;
};

}  // namespace eval
}  // namespace churnlab

#endif  // CHURNLAB_EVAL_GRID_SEARCH_H_
