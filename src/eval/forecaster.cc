#include "eval/forecaster.h"

#include <algorithm>
#include <vector>

#include "common/kfold.h"
#include "common/macros.h"
#include "common/stopwatch.h"
#include "eval/roc.h"
#include "obs/metrics.h"
#include "obs/structured_log.h"
#include "obs/trace.h"
#include "rfm/scaler.h"

namespace churnlab {
namespace eval {

Result<ForecastResult> StabilityForecaster::Run(
    const retail::Dataset& dataset) const {
  CHURNLAB_SPAN("eval.forecast");
  static obs::Counter* const forecast_runs =
      obs::MetricsRegistry::Global().GetCounter("churnlab.eval.forecast_runs");
  static obs::Histogram* const fold_ms =
      obs::MetricsRegistry::Global().GetHistogram(
          "churnlab.eval.fold_ms",
          obs::HistogramOptions::ExponentialLatency());
  forecast_runs->Increment();
  // Option invariants (positive months, feature_windows >= 1, cv_folds >= 2)
  // were established by Make; only dataset-dependent checks remain here.
  const ForecastOptions& options = options_;

  CHURNLAB_ASSIGN_OR_RETURN(const core::StabilityModel model,
                            core::StabilityModel::Make(options.stability));
  CHURNLAB_ASSIGN_OR_RETURN(const core::ScoreMatrix scores,
                            model.ScoreDataset(dataset));

  const int32_t span = options.stability.window_span_months;
  // Last window whose report month does not exceed the decision month.
  const int32_t last_window = options.decision_month / span - 1;
  if (last_window < options.feature_windows - 1 ||
      last_window >= scores.num_windows()) {
    return Status::InvalidArgument(
        "decision_month leaves too few complete windows for the requested "
        "feature_windows");
  }

  ForecastResult result;
  std::vector<std::vector<double>> design;
  std::vector<int> targets;
  std::vector<int32_t> onsets;  // parallel to design; -1 for loyal
  for (size_t row = 0; row < scores.customers().size(); ++row) {
    const retail::CustomerLabel label =
        dataset.LabelOf(scores.customers()[row]);
    int target;
    if (label.cohort == retail::Cohort::kLoyal) {
      target = 0;
    } else if (label.cohort == retail::Cohort::kDefecting) {
      if (label.attrition_onset_month >= 0 &&
          label.attrition_onset_month <= options.decision_month) {
        ++result.num_already_defecting;
        continue;  // detection case, not forecasting
      }
      if (label.attrition_onset_month < 0 ||
          label.attrition_onset_month >
              options.decision_month + options.horizon_months) {
        continue;  // defects beyond the horizon: out of scope either way
      }
      target = 1;
    } else {
      continue;  // unlabeled
    }

    std::vector<double> features;
    features.reserve(static_cast<size_t>(options.feature_windows) + 2);
    double minimum = 1.0;
    for (int32_t w = last_window - options.feature_windows + 1;
         w <= last_window; ++w) {
      const double value = scores.At(row, w);
      features.push_back(value);
      minimum = std::min(minimum, value);
    }
    const double trend =
        options.feature_windows >= 2
            ? scores.At(row, last_window) - scores.At(row, last_window - 1)
            : 0.0;
    features.push_back(trend);
    features.push_back(minimum);

    if (options.use_visit_counts) {
      const retail::Day span_days = span * retail::kDaysPerMonth;
      std::vector<double> counts(
          static_cast<size_t>(options.feature_windows), 0.0);
      const retail::Day range_begin =
          (last_window - options.feature_windows + 1) * span_days;
      for (const retail::Receipt& receipt :
           dataset.store().History(scores.customers()[row])) {
        if (receipt.day < range_begin ||
            receipt.day >= (last_window + 1) * span_days) {
          continue;
        }
        ++counts[static_cast<size_t>((receipt.day - range_begin) /
                                     span_days)];
      }
      features.insert(features.end(), counts.begin(), counts.end());
    }

    design.push_back(std::move(features));
    targets.push_back(target);
    onsets.push_back(target == 1 ? label.attrition_onset_month : -1);
    if (target == 1) {
      ++result.num_future_defectors;
    } else {
      ++result.num_loyal;
    }
  }

  if (result.num_future_defectors < options.cv_folds ||
      result.num_loyal < options.cv_folds) {
    return Status::InvalidArgument(
        "too few future defectors or loyal customers for " +
        std::to_string(options.cv_folds) + "-fold scoring");
  }

  CHURNLAB_ASSIGN_OR_RETURN(
      const StratifiedKFold folds,
      StratifiedKFold::Make(targets, options.cv_folds, options.cv_seed));
  std::vector<double> out_of_fold(design.size(), 0.0);
  obs::ProgressLogger progress("forecast_cv", folds.num_folds());
  Stopwatch fold_timer;
  for (size_t fold = 0; fold < folds.num_folds(); ++fold) {
    std::vector<std::vector<double>> train_rows;
    std::vector<int> train_labels;
    for (const size_t index : folds.TrainIndices(fold)) {
      train_rows.push_back(design[index]);
      train_labels.push_back(targets[index]);
    }
    rfm::StandardScaler scaler;
    CHURNLAB_RETURN_NOT_OK(scaler.Fit(train_rows));
    CHURNLAB_RETURN_NOT_OK(scaler.Transform(&train_rows));
    rfm::LogisticRegression logistic(options.logistic);
    CHURNLAB_RETURN_NOT_OK(logistic.Fit(train_rows, train_labels));
    for (const size_t index : folds.TestIndices(fold)) {
      std::vector<double> row = design[index];
      CHURNLAB_RETURN_NOT_OK(scaler.Transform(&row));
      out_of_fold[index] = logistic.PredictProbability(row);
    }
    fold_ms->Record(fold_timer.LapSeconds() * 1e3);
    progress.Step(fold + 1);
  }
  progress.Done();

  CHURNLAB_ASSIGN_OR_RETURN(
      result.auroc,
      Auroc(out_of_fold, targets, ScoreOrientation::kHigherIsPositive));

  // Lead-time decomposition: defectors whose onset is exactly `lead` months
  // out, against the full loyal cohort.
  for (int32_t lead = 1; lead <= options.horizon_months; ++lead) {
    ForecastResult::LeadBucket bucket;
    bucket.lead_months = lead;
    std::vector<double> bucket_scores;
    std::vector<int> bucket_labels;
    for (size_t i = 0; i < design.size(); ++i) {
      if (targets[i] == 0) {
        bucket_scores.push_back(out_of_fold[i]);
        bucket_labels.push_back(0);
      } else if (onsets[i] == options.decision_month + lead) {
        bucket_scores.push_back(out_of_fold[i]);
        bucket_labels.push_back(1);
        ++bucket.num_defectors;
      }
    }
    if (bucket.num_defectors > 0) {
      const Result<double> auroc = Auroc(
          bucket_scores, bucket_labels, ScoreOrientation::kHigherIsPositive);
      if (auroc.ok()) bucket.auroc = auroc.ValueOrDie();
    }
    result.by_lead.push_back(bucket);
  }
  return result;
}

Result<StabilityForecaster> StabilityForecaster::Make(
    ForecastOptions options) {
  if (options.decision_month <= 0 || options.horizon_months <= 0) {
    return Status::InvalidArgument(
        "decision_month and horizon_months must be positive");
  }
  if (options.feature_windows < 1) {
    return Status::InvalidArgument("feature_windows must be >= 1");
  }
  if (options.cv_folds < 2) {
    return Status::InvalidArgument("cv_folds must be >= 2");
  }
  CHURNLAB_RETURN_NOT_OK(
      core::StabilityModel::Make(options.stability).status());
  return StabilityForecaster(std::move(options));
}

}  // namespace eval
}  // namespace churnlab
