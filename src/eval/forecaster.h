#ifndef CHURNLAB_EVAL_FORECASTER_H_
#define CHURNLAB_EVAL_FORECASTER_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "core/stability_model.h"
#include "retail/dataset.h"
#include "rfm/logistic.h"

namespace churnlab {
namespace eval {

/// Options for forward-looking defection prediction.
///
/// The paper's abstract claims the model "is able to identify customers
/// that are likely to defect in the future months"; this component makes
/// that operational. At `decision_month` the forecaster sees each
/// customer's stability series so far and predicts whether the customer's
/// attrition onset falls within the next `horizon_months`. Customers whose
/// onset already passed are excluded (they are detection, not forecasting,
/// cases).
struct ForecastOptions {
  core::StabilityModelOptions stability;
  /// Stability data through this month is visible.
  int32_t decision_month = 16;
  /// Predict onsets in (decision_month, decision_month + horizon_months].
  int32_t horizon_months = 6;
  /// Trailing stability windows summarised into features.
  int32_t feature_windows = 3;
  /// Also include per-window receipt counts over the trailing windows.
  /// Stability measures *what* the customer buys; visit counts measure
  /// *how often* they come — pre-onset disengagement shows up in the
  /// latter first.
  bool use_visit_counts = true;
  rfm::LogisticRegressionOptions logistic;
  size_t cv_folds = 5;
  uint64_t cv_seed = 77;
};

struct ForecastResult {
  /// Out-of-fold AUROC of future-defector vs loyal discrimination, pooled
  /// over the whole horizon.
  double auroc = 0.5;
  size_t num_future_defectors = 0;
  size_t num_loyal = 0;
  /// Defectors excluded because their onset precedes the decision month.
  size_t num_already_defecting = 0;

  /// AUROC restricted to defectors whose onset is `lead` months after the
  /// decision month (vs all loyal customers); index 0 = lead 1. NaN-free:
  /// buckets with no defectors carry auroc = -1.
  struct LeadBucket {
    int32_t lead_months = 0;
    double auroc = -1.0;
    size_t num_defectors = 0;
  };
  std::vector<LeadBucket> by_lead;
};

/// \brief Predicts *future* defection from the stability trend and (by
/// default) the visit-count trend.
///
/// Features per customer: the last `feature_windows` stability values, the
/// first difference of the last two, the minimum over the trailing windows,
/// and (when `use_visit_counts`) the receipt count of each trailing window.
/// A cross-validated logistic regression turns them into an out-of-fold
/// probability, evaluated by AUROC against the ground-truth onset months.
class StabilityForecaster {
 public:
  /// Validates the options eagerly, per the library-wide
  /// `static Result<T> Make(Options)` convention (docs/API.md).
  static Result<StabilityForecaster> Make(ForecastOptions options);

  /// Forecasts on `dataset` with the options captured at Make time.
  Result<ForecastResult> Run(const retail::Dataset& dataset) const;

  const ForecastOptions& options() const { return options_; }

 private:
  explicit StabilityForecaster(ForecastOptions options)
      : options_(std::move(options)) {}

  ForecastOptions options_;
};

}  // namespace eval
}  // namespace churnlab

#endif  // CHURNLAB_EVAL_FORECASTER_H_
