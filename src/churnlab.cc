#include "churnlab.h"

#include <utility>

#include "common/macros.h"
#include "common/string_util.h"

namespace churnlab {
namespace api {

Result<Dataset> LoadDataset(const std::string& path) {
  if (path.empty()) {
    return Status::InvalidArgument("dataset path is empty");
  }
  if (EndsWith(path, ".clb")) return retail::Dataset::LoadBinary(path);
  return retail::Dataset::LoadCsv(path);
}

Result<Dataset> MakeScenario(const ScenarioConfig& config) {
  return datagen::MakePaperDataset(config);
}

Result<Figure2Scenario> MakeFigure2Scenario() {
  return datagen::MakeFigure2Scenario();
}

// ---------------------------------------------------------------------------
// ScorerHandle
// ---------------------------------------------------------------------------

Result<ScorerHandle> ScorerHandle::Make(ScorerOptions options) {
  CHURNLAB_ASSIGN_OR_RETURN(core::StabilityModel model,
                            core::StabilityModel::Make(std::move(options)));
  return ScorerHandle(std::move(model));
}

Result<ScoreMatrix> ScorerHandle::ScoreDataset(const Dataset& dataset) const {
  return model_.ScoreDataset(dataset);
}

Result<StabilitySeries> ScorerHandle::ScoreCustomer(
    const Dataset& dataset, CustomerId customer) const {
  return model_.ScoreCustomer(dataset, customer);
}

Result<CustomerReport> ScorerHandle::AnalyzeCustomer(
    const Dataset& dataset, CustomerId customer) const {
  return model_.AnalyzeCustomer(dataset, customer);
}

Result<SignificanceProfile> ScorerHandle::ProfileCustomer(
    const Dataset& dataset, CustomerId customer, int32_t window) const {
  return model_.ProfileCustomer(dataset, customer, window);
}

// ---------------------------------------------------------------------------
// FleetHandle
// ---------------------------------------------------------------------------

Result<FleetHandle> FleetHandle::Make(FleetOptions options,
                                      const Dataset& dataset) {
  CHURNLAB_ASSIGN_OR_RETURN(
      serve::ScoringFleet fleet,
      serve::ScoringFleet::Make(std::move(options), &dataset.taxonomy()));
  return FleetHandle(std::move(fleet));
}

Result<BatchReport> FleetHandle::IngestBatch(
    std::span<const Receipt> receipts) {
  return fleet_.IngestBatch(receipts);
}

Result<BatchReport> FleetHandle::AdvanceAllTo(Day day) {
  return fleet_.AdvanceAllTo(day);
}

Result<BatchReport> FleetHandle::FinishAll() { return fleet_.FinishAll(); }

Status FleetHandle::SaveSnapshot(const std::string& path) const {
  return fleet_.SaveSnapshotToFile(path);
}

Status FleetHandle::AppendSnapshot(const std::string& path) const {
  return fleet_.AppendSnapshotToFile(path);
}

Result<FleetHandle> FleetHandle::Restore(const std::string& path,
                                         const Dataset& dataset,
                                         size_t num_threads,
                                         StateLayout layout) {
  return OpenSnapshot(path, dataset, num_threads, layout);
}

Result<FleetHandle> OpenSnapshot(const std::string& path,
                                 const Dataset& dataset, size_t num_threads,
                                 StateLayout layout) {
  CHURNLAB_ASSIGN_OR_RETURN(
      serve::ScoringFleet fleet,
      serve::ScoringFleet::RestoreFromFile(path, &dataset.taxonomy(),
                                           num_threads, layout));
  return FleetHandle(std::move(fleet));
}

Result<RecoveredFleet> RecoverFleet(const std::string& journal_dir,
                                    const std::string& snapshot_path,
                                    FleetOptions fresh_options,
                                    const Dataset& dataset,
                                    size_t num_threads, StateLayout layout) {
  serve::JournalOptions journal_options;
  journal_options.directory = journal_dir;
  journal_options.recover = true;
  journal_options.read_only = true;
  serve::JournalRecovery recovery;
  CHURNLAB_ASSIGN_OR_RETURN(
      serve::IngestJournal journal,
      serve::IngestJournal::Open(journal_options, &recovery));
  CHURNLAB_ASSIGN_OR_RETURN(
      serve::ScoringFleet fleet,
      serve::ScoringFleet::Recover(recovery, snapshot_path,
                                   std::move(fresh_options),
                                   &dataset.taxonomy(), num_threads, layout));
  recovery.frames.clear();
  recovery.frames.shrink_to_fit();
  return RecoveredFleet{FleetHandle(std::move(fleet)), std::move(recovery)};
}

// ---------------------------------------------------------------------------
// ServerHandle
// ---------------------------------------------------------------------------

Result<ServerHandle> ServerHandle::Make(Options options, FleetHandle fleet) {
  auto owned_fleet = std::make_unique<FleetHandle>(std::move(fleet));
  std::unique_ptr<serve::IngestJournal> journal;
  if (!options.journal_dir.empty()) {
    serve::JournalOptions journal_options;
    journal_options.directory = options.journal_dir;
    journal_options.fsync = options.journal_fsync;
    CHURNLAB_ASSIGN_OR_RETURN(serve::IngestJournal opened,
                              serve::IngestJournal::Open(journal_options));
    journal = std::make_unique<serve::IngestJournal>(std::move(opened));
  }
  return Assemble(std::move(options), std::move(owned_fleet),
                  std::move(journal));
}

Result<ServerHandle> ServerHandle::Recover(Options options,
                                           FleetOptions fleet_options,
                                           const Dataset& dataset,
                                           size_t num_threads,
                                           StateLayout layout,
                                           JournalRecovery* recovery_out) {
  if (options.journal_dir.empty()) {
    return Status::InvalidArgument(
        "ServerHandle::Recover requires a journal directory");
  }
  serve::JournalOptions journal_options;
  journal_options.directory = options.journal_dir;
  journal_options.fsync = options.journal_fsync;
  journal_options.recover = true;
  serve::JournalRecovery recovery;
  CHURNLAB_ASSIGN_OR_RETURN(
      serve::IngestJournal opened,
      serve::IngestJournal::Open(journal_options, &recovery));
  CHURNLAB_ASSIGN_OR_RETURN(
      serve::ScoringFleet fleet,
      serve::ScoringFleet::Recover(recovery, options.snapshot_path,
                                   std::move(fleet_options),
                                   &dataset.taxonomy(), num_threads, layout));
  recovery.frames.clear();
  recovery.frames.shrink_to_fit();
  if (recovery_out != nullptr) *recovery_out = recovery;
  auto owned_fleet = std::make_unique<FleetHandle>(
      FleetHandle(std::move(fleet)));
  auto journal = std::make_unique<serve::IngestJournal>(std::move(opened));
  return Assemble(std::move(options), std::move(owned_fleet),
                  std::move(journal));
}

Result<ServerHandle> ServerHandle::Assemble(
    Options options, std::unique_ptr<FleetHandle> fleet,
    std::unique_ptr<serve::IngestJournal> journal) {
  if (journal != nullptr) {
    if (options.snapshot_path.empty()) {
      return Status::InvalidArgument(
          "journaling requires a snapshot path for checkpoints");
    }
    if (!options.snapshot_append) {
      return Status::InvalidArgument(
          "journaling requires append-mode snapshots: a truncating "
          "snapshot destroys the generation the journal checkpoint "
          "refers to");
    }
    // Arrival-sequence numbering continues where the journal stops, so a
    // recovered server's journal frames extend the crashed server's
    // sequence space with no gap or overlap.
    options.http.coalescer.first_sequence = journal->next_sequence();
  }
  net::FleetBackend::Options backend_options;
  backend_options.snapshot_path = std::move(options.snapshot_path);
  backend_options.snapshot_append = options.snapshot_append;
  backend_options.journal = journal.get();
  auto backend = std::make_unique<net::FleetBackend>(
      &fleet->fleet_, std::move(backend_options));
  CHURNLAB_ASSIGN_OR_RETURN(
      std::unique_ptr<net::HttpServer> server,
      net::HttpServer::Make(std::move(options.http), backend.get()));
  return ServerHandle(std::move(fleet), std::move(journal),
                      std::move(backend), std::move(server));
}

Status ServerHandle::Start() { return server_->Start(); }

// ---------------------------------------------------------------------------
// EvalRunner
// ---------------------------------------------------------------------------

Result<EvalRunner> EvalRunner::Make(EvalRunnerOptions options) {
  if (options.num_threads == 0) options.num_threads = 1;
  return EvalRunner(options);
}

Result<Figure1Result> EvalRunner::Figure1(const Dataset& dataset,
                                          Figure1Options options) const {
  options.num_threads = options_.num_threads;
  CHURNLAB_ASSIGN_OR_RETURN(const eval::ExperimentRunner runner,
                            eval::ExperimentRunner::Make(std::move(options)));
  return runner.RunOnDataset(dataset);
}

Result<ForecastResult> EvalRunner::Forecast(const Dataset& dataset,
                                            ForecastOptions options) const {
  CHURNLAB_ASSIGN_OR_RETURN(
      const eval::StabilityForecaster forecaster,
      eval::StabilityForecaster::Make(std::move(options)));
  return forecaster.Run(dataset);
}

Result<GridSearchResult> EvalRunner::GridSearch(
    const Dataset& dataset, GridSearchOptions options) const {
  options.num_threads = options_.num_threads;
  CHURNLAB_ASSIGN_OR_RETURN(
      const eval::StabilityGridSearch search,
      eval::StabilityGridSearch::Make(std::move(options)));
  return search.Run(dataset);
}

}  // namespace api
}  // namespace churnlab
