#ifndef CHURNLAB_SERVE_JOURNAL_H_
#define CHURNLAB_SERVE_JOURNAL_H_

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "retail/types.h"

namespace churnlab {
namespace serve {

/// \file
/// Durable write-ahead ingest journal (docs/ROBUSTNESS.md §Durability).
///
/// The HTTP front end must never acknowledge an ingest it can lose: every
/// coalesced batch is appended to the journal — tagged with its contiguous
/// receipt-sequence range — *before* the fleet applies it or the response
/// is sent. After a crash, ScoringFleet::Recover restores the checkpointed
/// snapshot and replays journal frames above the checkpoint watermark in
/// sequence order, reproducing the pre-crash state byte-for-byte (arrival
/// sequence fully determines fleet state; batch boundaries do not).
///
/// On-disk layout under JournalOptions::directory (docs/API.md):
///
///   seg-000000001.chlj    segment: "CHLJSEG1" magic, varint version,
///   seg-000000002.chlj    varint segment number, then frames
///   journal.ckpt          checkpoint: "CHLJCKPT" magic, varint version,
///                         watermark + snapshot reference (tmp + rename)
///
/// Each frame is [varint payload size, varint CRC32, payload] where the
/// payload serializes (first_sequence, receipts). A torn or CRC-failing
/// tail — a crash mid-append — is cleanly discarded on recovery; any other
/// corruption (an interior frame, a sequence gap) is a hard DataLoss error,
/// never a silent skip.

/// When appended frames are flushed to stable storage.
enum class FsyncPolicy {
  /// fsync after every Append, before the append returns. An acknowledged
  /// batch survives power loss; highest latency.
  kAlways,
  /// One fsync per coalesced round (IngestJournal::Sync), after the fleet
  /// applied the round but before any of its responses are sent
  /// ("batch-ack"): acknowledged receipts still never outlive a crash,
  /// amortized over the whole round.
  kBatch,
  /// Never fsync. Survives process death (the page cache is the kernel's)
  /// but not power loss. For tests and throughput benchmarks.
  kNone,
};

Result<FsyncPolicy> ParseFsyncPolicy(std::string_view text);
std::string_view FsyncPolicyToString(FsyncPolicy policy);

struct JournalOptions {
  /// Directory holding segments and the checkpoint; created if missing.
  std::string directory;
  FsyncPolicy fsync = FsyncPolicy::kBatch;
  /// Rotate the active segment once it exceeds this many bytes.
  uint64_t max_segment_bytes = 64ull << 20;
  /// Permit opening a journal that already holds frames (their scan is
  /// returned through the JournalRecovery out-parameter). Without this,
  /// opening a non-empty journal fails with FailedPrecondition so a fresh
  /// server cannot silently shadow recoverable state.
  bool recover = false;
  /// Scan without mutating: no tail truncation, no append descriptor, and
  /// Append/Sync/Checkpoint fail. For offline inspection and the oracle
  /// tooling (serve-replay --recover).
  bool read_only = false;
};

/// Reference to the snapshot a checkpoint corresponds to. The checkpoint
/// names the *exact* bytes (size + CRC32 of the bare snapshot payload), so
/// recovery restores the checkpointed generation — never a newer orphan
/// generation whose receipts still sit in the un-truncated journal (which
/// would double-apply them).
struct SnapshotRef {
  enum class Kind : uint8_t {
    kNone = 0,        ///< checkpoint without a snapshot (watermark 0 only)
    kBare = 1,        ///< whole-file "CHLFLEET" snapshot
    kGeneration = 2,  ///< one generation of an append-mode "CHLFGENS" file
  };
  Kind kind = Kind::kNone;
  /// Size and CRC32 of the bare snapshot payload bytes.
  uint64_t size = 0;
  uint32_t crc = 0;
};

/// One replayable journal record: a coalesced batch and the first of its
/// contiguous receipt sequence numbers.
struct JournalFrame {
  uint64_t first_sequence = 0;
  std::vector<retail::Receipt> receipts;
  /// One past the last sequence number covered by this frame.
  uint64_t end_sequence() const { return first_sequence + receipts.size(); }
};

/// What IngestJournal::Open found on disk (all zero/empty for a fresh
/// journal). `frames` holds every intact frame above the watermark, in
/// sequence order, ready for ScoringFleet::Recover.
struct JournalRecovery {
  /// Next-sequence watermark of the last checkpoint: every receipt with
  /// sequence < watermark is captured by the checkpointed snapshot.
  uint64_t watermark = 0;
  /// The snapshot the checkpoint corresponds to (kind kNone when the
  /// journal has never been checkpointed against a snapshot).
  SnapshotRef snapshot;
  /// Intact frames above the watermark, contiguous in sequence.
  std::vector<JournalFrame> frames;
  /// One past the highest recovered sequence (== watermark when no frames
  /// survive it). Appending resumes here.
  uint64_t next_sequence = 0;
  uint64_t segments_scanned = 0;
  uint64_t frames_scanned = 0;
  /// Torn / CRC-failing tail frames discarded from the newest segment.
  uint64_t discarded_tail_frames = 0;
  uint64_t discarded_tail_bytes = 0;
};

/// \brief Append-only, CRC-framed, generation-numbered write-ahead journal
/// of coalesced ingest batches.
///
/// Not thread-safe: the owner (net::FleetBackend) serializes Append / Sync
/// / Checkpoint behind its operation mutex, which is also what makes the
/// watermark exact — a checkpoint never races an append.
///
/// Failpoint sites (docs/ROBUSTNESS.md): serve.journal.append (key = the
/// frame's first sequence; corrupt-bytes flips a bit of the on-disk frame
/// after its CRC was computed), serve.journal.fsync, and
/// serve.journal.checkpoint (before the checkpoint record is renamed into
/// place). The *abort* action at these sites is how check_crash.sh kills
/// the process at exact durability boundaries.
class IngestJournal {
 public:
  /// Opens (creating the directory if needed) and scans the journal. The
  /// scan's findings land in `*recovery` (pass nullptr to require an empty
  /// journal regardless of options.recover). See JournalOptions::recover
  /// for the fresh-open safety check.
  static Result<IngestJournal> Open(JournalOptions options,
                                    JournalRecovery* recovery = nullptr);

  IngestJournal(IngestJournal&& other) noexcept;
  IngestJournal& operator=(IngestJournal&& other) noexcept;
  IngestJournal(const IngestJournal&) = delete;
  IngestJournal& operator=(const IngestJournal&) = delete;
  ~IngestJournal();

  /// Appends one coalesced batch as a single frame. `first_sequence` must
  /// equal next_sequence() — the journal enforces the contiguity it later
  /// relies on during recovery. Durable on return under FsyncPolicy::kAlways.
  Status Append(uint64_t first_sequence,
                std::span<const retail::Receipt> receipts);

  /// Flushes appended frames to stable storage (one fsync); no-op when
  /// nothing was appended since the last flush or under FsyncPolicy::kNone.
  Status Sync();

  /// Records that every sequence below `watermark` is durably captured by
  /// the snapshot `ref` refers to, then drops journal segments that hold
  /// only sequences below the watermark (rotating the active segment first
  /// when it is fully covered). The checkpoint record is written
  /// tmp + fsync + rename + directory fsync, so it is either the old or the
  /// new checkpoint — never a torn one.
  Status Checkpoint(uint64_t watermark, const SnapshotRef& ref);

  /// Sequence number the next Append must carry.
  uint64_t next_sequence() const { return next_sequence_; }

  const JournalOptions& options() const { return options_; }

  /// Closes descriptors early (also done by the destructor). Does not
  /// fsync: callers that need durability call Sync first.
  void Close();

 private:
  explicit IngestJournal(JournalOptions options);

  std::string SegmentPath(uint64_t segment) const;
  Status OpenActiveSegment(uint64_t segment, uint64_t expected_size);
  Status RotateSegment();
  Status WriteCheckpointRecord(uint64_t watermark, const SnapshotRef& ref);
  Status SyncDirectory();

  JournalOptions options_;
  /// Number of the active (newest) segment; 0 before the first append of a
  /// fresh journal (the first segment is seg-000000001).
  uint64_t active_segment_ = 0;
  int fd_ = -1;      ///< append descriptor of the active segment
  int dir_fd_ = -1;  ///< directory descriptor for durable renames/unlinks
  uint64_t active_segment_bytes_ = 0;
  uint64_t next_sequence_ = 0;
  bool active_segment_has_frames_ = false;
  bool dirty_ = false;  ///< frames written since the last fsync
  /// Oldest segment still on disk (1-based; == active when only one).
  uint64_t oldest_segment_ = 0;
  /// End sequence (exclusive) of every retained, non-active segment, by
  /// segment number: Checkpoint unlinks a segment only when its whole
  /// range is below the watermark.
  std::vector<std::pair<uint64_t, uint64_t>> sealed_segment_ends_;
};

}  // namespace serve
}  // namespace churnlab

#endif  // CHURNLAB_SERVE_JOURNAL_H_
