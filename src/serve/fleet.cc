#include "serve/fleet.h"

#include <algorithm>
#include <tuple>
#include <utility>

#include "common/failpoint.h"
#include "common/macros.h"
#include "obs/fault_obs.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/prometheus.h"
#include "obs/structured_log.h"
#include "obs/trace.h"

namespace churnlab {
namespace serve {

namespace {

constexpr char kSnapshotMagic[] = "CHLFLEET";
/// Append-mode generation files: a sequence of [magic, varint payload size,
/// varint CRC32, payload] frames where each payload is one full bare
/// snapshot (docs/ROBUSTNESS.md §Snapshot recovery).
constexpr char kGenerationMagic[] = "CHLFGENS";
constexpr size_t kSnapshotMagicSize = 8;
constexpr uint64_t kSnapshotVersion = 1;

struct ServeMetrics {
  obs::Counter* receipts_ingested;
  obs::Counter* alerts_raised;
  obs::Counter* batches_ingested;
  obs::Counter* rejected_receipts;
  obs::Counter* shard_retries;
  obs::Counter* poisoned_shards;
  obs::Counter* snapshot_fallbacks;
  obs::Gauge* customers;
  obs::Histogram* ingest_batch_us;
};

const ServeMetrics& Metrics() {
  static const ServeMetrics metrics = [] {
    obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
    return ServeMetrics{
        registry.GetCounter("churnlab.serve.receipts_ingested"),
        registry.GetCounter("churnlab.serve.alerts_raised"),
        registry.GetCounter("churnlab.serve.batches_ingested"),
        registry.GetCounter("churnlab.serve.rejected_receipts"),
        registry.GetCounter("churnlab.serve.shard_retries"),
        registry.GetCounter("churnlab.serve.poisoned_shards"),
        registry.GetCounter("churnlab.serve.snapshot_fallbacks"),
        registry.GetGauge("churnlab.serve.customers"),
        registry.GetHistogram("churnlab.serve.ingest_batch_us",
                              obs::HistogramOptions::ExponentialLatency()),
    };
  }();
  return metrics;
}

/// Canonical alert order: batch position first (0 for whole-fleet sweeps),
/// then customer, then the alert's own (window, kind). Independent of both
/// thread count and shard count.
bool AlertLess(const FleetAlert& a, const FleetAlert& b) {
  return std::tie(a.batch_index, a.customer, a.alert.window_index,
                  a.alert.kind) < std::tie(b.batch_index, b.customer,
                                           b.alert.window_index,
                                           b.alert.kind);
}

constexpr size_t kUnsetCount = ~size_t{0};

/// Per-shard scratch for one fleet operation. Mutated only by the shard's
/// own task; survives across retry attempts, so `progress` lets a retried
/// task resume after the last fully-processed item instead of
/// double-ingesting.
struct ShardOutput {
  Status status = Status::OK();
  std::vector<FleetAlert> alerts;
  std::vector<RejectedReceipt> rejected;
  size_t receipts = 0;
  size_t new_customers = 0;
  /// Retry attempts burned by this shard's task.
  uint64_t retries = 0;
  /// Items of this shard's work list fully processed (ingested, rejected,
  /// or swept) so far.
  size_t progress = 0;
  /// Shard population before the first attempt touched it.
  size_t customers_before = kUnsetCount;
};

void WriteScorerOptions(const core::OnlineStabilityScorer::Options& options,
                        BinaryWriter* writer) {
  writer->WriteVarint(static_cast<uint64_t>(options.significance.kind));
  writer->WriteDouble(options.significance.alpha);
  writer->WriteDouble(options.significance.max_abs_exponent);
  writer->WriteDouble(options.significance.ewma_lambda);
  writer->WriteSignedVarint(options.window_span_days);
  writer->WriteSignedVarint(options.origin_day);
}

Status ReadScorerOptions(BinaryReader* reader,
                         core::OnlineStabilityScorer::Options* options) {
  CHURNLAB_ASSIGN_OR_RETURN(const uint64_t kind, reader->ReadVarint());
  if (kind > static_cast<uint64_t>(core::SignificanceKind::kEwma)) {
    return Status::IOError("snapshot holds an unknown significance kind");
  }
  options->significance.kind = static_cast<core::SignificanceKind>(kind);
  CHURNLAB_ASSIGN_OR_RETURN(options->significance.alpha,
                            reader->ReadDouble());
  CHURNLAB_ASSIGN_OR_RETURN(options->significance.max_abs_exponent,
                            reader->ReadDouble());
  CHURNLAB_ASSIGN_OR_RETURN(options->significance.ewma_lambda,
                            reader->ReadDouble());
  CHURNLAB_ASSIGN_OR_RETURN(const int64_t span, reader->ReadSignedVarint());
  CHURNLAB_ASSIGN_OR_RETURN(const int64_t origin,
                            reader->ReadSignedVarint());
  options->window_span_days = static_cast<retail::Day>(span);
  options->origin_day = static_cast<retail::Day>(origin);
  return Status::OK();
}

void WritePolicy(const core::MonitorPolicy& policy, BinaryWriter* writer) {
  writer->WriteDouble(policy.beta);
  writer->WriteSignedVarint(policy.consecutive_windows);
  writer->WriteDouble(policy.drop_threshold);
  writer->WriteSignedVarint(policy.warmup_windows);
}

Status ReadPolicy(BinaryReader* reader, core::MonitorPolicy* policy) {
  CHURNLAB_ASSIGN_OR_RETURN(policy->beta, reader->ReadDouble());
  CHURNLAB_ASSIGN_OR_RETURN(const int64_t consecutive,
                            reader->ReadSignedVarint());
  CHURNLAB_ASSIGN_OR_RETURN(policy->drop_threshold, reader->ReadDouble());
  CHURNLAB_ASSIGN_OR_RETURN(const int64_t warmup,
                            reader->ReadSignedVarint());
  policy->consecutive_windows = static_cast<int32_t>(consecutive);
  policy->warmup_windows = static_cast<int32_t>(warmup);
  return Status::OK();
}

}  // namespace

namespace {

/// Flight-recorder sites instrumenting the fleet's hot paths. Interned
/// once; recording is a no-op while the recorder is disarmed.
uint32_t IngestBatchSite() {
  static const uint32_t kSite =
      obs::FlightRecorder::RegisterSite("serve.ingest_batch");
  return kSite;
}

uint32_t ShardTaskSite() {
  static const uint32_t kSite =
      obs::FlightRecorder::RegisterSite("serve.shard.task");
  return kSite;
}

}  // namespace

ScoringFleet::ScoringFleet(FleetOptions options, CustomerStateStore store,
                           core::SymbolMapper mapper)
    : options_(std::move(options)),
      store_(std::move(store)),
      mapper_(std::move(mapper)),
      shard_health_(store_.num_shards()),
      shard_stats_(store_.num_shards()),
      shard_latency_(store_.num_shards(), nullptr),
      shard_gauges_(store_.num_shards()) {}

Result<ScoringFleet> ScoringFleet::Make(FleetOptions options,
                                        const retail::Taxonomy* taxonomy) {
  obs::InstallFaultTelemetry();
  if (options.num_threads == 0) options.num_threads = 1;
  CHURNLAB_ASSIGN_OR_RETURN(
      core::SymbolMapper mapper,
      core::SymbolMapper::Make(options.granularity, taxonomy));
  StateStoreOptions store_options;
  store_options.scorer = options.scorer;
  store_options.policy = options.policy;
  store_options.num_shards = options.num_shards;
  store_options.layout = options.layout;
  CHURNLAB_ASSIGN_OR_RETURN(CustomerStateStore store,
                            CustomerStateStore::Make(store_options));
  return ScoringFleet(std::move(options), std::move(store),
                      std::move(mapper));
}

void ScoringFleet::MapSymbols(const retail::Receipt& receipt,
                              std::vector<core::Symbol>* scratch) const {
  scratch->clear();
  scratch->reserve(receipt.items.size());
  for (const retail::ItemId item : receipt.items) {
    scratch->push_back(mapper_.Map(item));
  }
  std::sort(scratch->begin(), scratch->end());
  scratch->erase(std::unique(scratch->begin(), scratch->end()),
                 scratch->end());
}

Result<BatchReport> ScoringFleet::IngestBatch(
    std::span<const retail::Receipt> receipts) {
  CHURNLAB_SPAN("serve.ingest_batch");
  CHURNLAB_FAILPOINT("serve.ingest.batch");
  const ServeMetrics& metrics = Metrics();
  obs::ScopedLatency latency(metrics.ingest_batch_us);

  // Partition by shard, preserving batch order within each shard so every
  // customer's receipts stay chronological.
  const size_t num_shards = store_.num_shards();
  std::vector<std::vector<size_t>> by_shard(num_shards);
  for (size_t i = 0; i < receipts.size(); ++i) {
    by_shard[store_.ShardOf(receipts[i].customer)].push_back(i);
  }

  std::vector<ShardOutput> outputs(num_shards);
  const auto run_shard = [&](size_t shard) {
    ShardOutput& out = outputs[shard];
    obs::FlightSpan flight(ShardTaskSite(), shard);
    // Per-shard latency histogram, interned lazily by the shard's own task
    // (at most one task per shard is in flight, so the slot never races).
    if (obs::DetailedTimingEnabled() && shard_latency_[shard] == nullptr) {
      shard_latency_[shard] = obs::MetricsRegistry::Global().GetHistogram(
          obs::LabeledMetricName("churnlab.serve.shard_ingest_us",
                                 {{"shard", std::to_string(shard)}}));
    }
    obs::ScopedLatency shard_latency(shard_latency_[shard]);
    std::vector<core::Symbol> symbols;
    // Processes the shard's receipts from out.progress on. A failpoint for
    // a receipt fires before that receipt mutates any state, so a retried
    // attempt resumes cleanly; quarantined receipts advance progress like
    // ingested ones.
    const auto process =
        [&](CustomerStateStore::ShardAccessor& access) -> Status {
      const std::vector<size_t>& indices = by_shard[shard];
      while (out.progress < indices.size()) {
        const size_t batch_index = indices[out.progress];
        const retail::Receipt& receipt = receipts[batch_index];
        if (receipt.customer == retail::kInvalidCustomer) {
          Status bad = Status::InvalidArgument(
              "batch receipt has an invalid customer id");
          if (!options_.quarantine_malformed) return bad;
          out.rejected.push_back(RejectedReceipt{
              receipt.customer, batch_index, receipt.day, std::move(bad)});
          ++out.progress;
          continue;
        }
        CHURNLAB_FAILPOINT_KEYED("serve.ingest.receipt", receipt.customer);
        MapSymbols(receipt, &symbols);
        CustomerStateStore::CustomerRef state =
            access.GetOrCreate(receipt.customer);
        Result<std::vector<core::StabilityAlert>> closed =
            state.Observe(receipt.day, symbols);
        if (!closed.ok()) {
          if (!options_.quarantine_malformed) return closed.status();
          out.rejected.push_back(RejectedReceipt{
              receipt.customer, batch_index, receipt.day, closed.status()});
          ++out.progress;
          continue;
        }
        for (core::StabilityAlert& alert : *closed) {
          out.alerts.push_back(
              FleetAlert{receipt.customer, batch_index, alert});
        }
        ++out.receipts;
        ++out.progress;
      }
      return Status::OK();
    };
    const auto attempt = [&]() -> Status {
      CHURNLAB_FAILPOINT_KEYED("serve.shard.task", shard);
      return store_.WithShard(
          shard, [&](CustomerStateStore::ShardAccessor& access) -> Status {
            if (out.customers_before == kUnsetCount) {
              out.customers_before = access.size();
            }
            const Status status = process(access);
            out.new_customers = access.size() - out.customers_before;
            return status;
          });
    };
    out.status = RetryWithBackoff(
        options_.shard_retry, attempt, [&metrics, &out](int, const Status&) {
          metrics.shard_retries->Increment();
          ++out.retries;
        });
  };

  const size_t num_threads = std::min(options_.num_threads, num_shards);
  if (num_threads > 1) {
    if (pool_ == nullptr) {
      pool_ = std::make_unique<ThreadPool>(num_threads);
    }
    for (size_t shard = 0; shard < num_shards; ++shard) {
      if (by_shard[shard].empty() || !shard_health_[shard].ok()) continue;
      pool_->Submit([&run_shard, shard] { run_shard(shard); });
    }
    pool_->WaitIdle();
  } else {
    for (size_t shard = 0; shard < num_shards; ++shard) {
      if (by_shard[shard].empty() || !shard_health_[shard].ok()) continue;
      run_shard(shard);
    }
  }

  BatchReport report;
  for (size_t shard = 0; shard < num_shards; ++shard) {
    ShardOutput& out = outputs[shard];
    ShardStats& stats = shard_stats_[shard];
    stats.last_batch_receipts = by_shard[shard].size();
    if (!shard_health_[shard].ok()) {
      // Already poisoned: the shard never ran; quarantine its receipts.
      report.poisoned.push_back(PoisonedShard{shard, shard_health_[shard]});
      stats.rejected += by_shard[shard].size();
      for (const size_t batch_index : by_shard[shard]) {
        const retail::Receipt& receipt = receipts[batch_index];
        report.rejected.push_back(RejectedReceipt{
            receipt.customer, batch_index, receipt.day,
            shard_health_[shard].WithContext("shard poisoned")});
      }
      continue;
    }
    if (!out.status.ok()) {
      // Retries exhausted. With quarantine on, poison only this shard and
      // quarantine its unprocessed tail; otherwise fail the batch (first
      // failing shard by index, so the reported error is deterministic).
      if (!options_.quarantine_malformed) return out.status;
      shard_health_[shard] = out.status;
      metrics.poisoned_shards->Increment();
      report.poisoned.push_back(PoisonedShard{shard, out.status});
      stats.rejected += by_shard[shard].size() - out.progress;
      for (size_t i = out.progress; i < by_shard[shard].size(); ++i) {
        const size_t batch_index = by_shard[shard][i];
        const retail::Receipt& receipt = receipts[batch_index];
        report.rejected.push_back(RejectedReceipt{
            receipt.customer, batch_index, receipt.day,
            out.status.WithContext("shard poisoned")});
      }
    }
    stats.receipts += out.receipts;
    stats.rejected += out.rejected.size();
    stats.alerts += out.alerts.size();
    stats.retries += out.retries;
    report.receipts_ingested += out.receipts;
    report.new_customers += out.new_customers;
    report.alerts.insert(report.alerts.end(),
                         std::make_move_iterator(out.alerts.begin()),
                         std::make_move_iterator(out.alerts.end()));
    report.rejected.insert(report.rejected.end(),
                           std::make_move_iterator(out.rejected.begin()),
                           std::make_move_iterator(out.rejected.end()));
  }
  std::sort(report.alerts.begin(), report.alerts.end(), AlertLess);
  std::sort(report.rejected.begin(), report.rejected.end(),
            [](const RejectedReceipt& a, const RejectedReceipt& b) {
              return a.batch_index < b.batch_index;
            });

  metrics.batches_ingested->Increment();
  metrics.receipts_ingested->Increment(report.receipts_ingested);
  metrics.alerts_raised->Increment(report.alerts.size());
  metrics.rejected_receipts->Increment(report.rejected.size());
  metrics.customers->Set(static_cast<double>(store_.NumCustomers()));
  obs::FlightRecorder::Record(IngestBatchSite(), receipts.size());
  PublishShardTelemetry();
  return report;
}

FleetHealth ScoringFleet::HealthReport() const {
  FleetHealth health;
  const size_t num_shards = store_.num_shards();
  health.shards.reserve(num_shards);
  for (size_t shard = 0; shard < num_shards; ++shard) {
    ShardHealthStats entry;
    entry.shard = shard;
    entry.status = shard_health_[shard];
    const ShardStats& stats = shard_stats_[shard];
    entry.receipts = stats.receipts;
    entry.rejected = stats.rejected;
    entry.alerts = stats.alerts;
    entry.retries = stats.retries;
    entry.last_batch_receipts = stats.last_batch_receipts;
    entry.customers = store_.ShardCustomers(shard);
    if (shard_latency_[shard] != nullptr) {
      entry.task_latency_us = shard_latency_[shard]->Snapshot();
    }
    if (!entry.status.ok()) ++health.poisoned_shards;
    health.receipts_total += entry.receipts;
    health.customers_total += entry.customers;
    health.shards.push_back(std::move(entry));
  }
  health.queue_depth = pool_ != nullptr ? pool_->QueueDepth() : 0;
  return health;
}

const ScoringFleet::ShardGauges& ScoringFleet::ShardGaugesFor(
    size_t shard) const {
  ShardGauges& gauges = shard_gauges_[shard];
  if (gauges.receipts != nullptr) return gauges;
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  const std::string label = std::to_string(shard);
  const auto gauge = [&](std::string_view base) {
    return registry.GetGauge(
        obs::LabeledMetricName(base, {{"shard", label}}));
  };
  gauges.receipts = gauge("churnlab.serve.shard_receipts");
  gauges.rejected = gauge("churnlab.serve.shard_rejected");
  gauges.alerts = gauge("churnlab.serve.shard_alerts");
  gauges.retries = gauge("churnlab.serve.shard_retries");
  gauges.last_batch_receipts =
      gauge("churnlab.serve.shard_last_batch_receipts");
  gauges.poisoned = gauge("churnlab.serve.shard_poisoned");
  gauges.customers = gauge("churnlab.serve.shard_customers");
  gauges.bytes = gauge("churnlab.serve.bytes");
  return gauges;
}

void ScoringFleet::PublishShardTelemetry() {
  // Gated like the other detailed instrumentation: default runs must not
  // grow the global registry by O(shards).
  if (!obs::DetailedTimingEnabled()) return;
  for (size_t shard = 0; shard < store_.num_shards(); ++shard) {
    const ShardGauges& gauges = ShardGaugesFor(shard);
    const ShardStats& stats = shard_stats_[shard];
    gauges.receipts->Set(static_cast<double>(stats.receipts));
    gauges.rejected->Set(static_cast<double>(stats.rejected));
    gauges.alerts->Set(static_cast<double>(stats.alerts));
    gauges.retries->Set(static_cast<double>(stats.retries));
    gauges.last_batch_receipts->Set(
        static_cast<double>(stats.last_batch_receipts));
    gauges.poisoned->Set(shard_health_[shard].ok() ? 0.0 : 1.0);
    gauges.customers->Set(static_cast<double>(store_.ShardCustomers(shard)));
  }
  static obs::Gauge* const queue_depth =
      obs::MetricsRegistry::Global().GetGauge("churnlab.serve.queue_depth");
  queue_depth->Set(
      static_cast<double>(pool_ != nullptr ? pool_->QueueDepth() : 0));
}

StateMemoryStats ScoringFleet::MemoryUsage() const {
  StateMemoryStats total;
  const bool detailed = obs::DetailedTimingEnabled();
  for (size_t shard = 0; shard < store_.num_shards(); ++shard) {
    const StateMemoryStats stats = store_.ShardMemoryUsage(shard);
    if (detailed) {
      ShardGaugesFor(shard).bytes->Set(
          static_cast<double>(stats.total_bytes));
    }
    total += stats;
  }
  static obs::Gauge* const bytes_total =
      obs::MetricsRegistry::Global().GetGauge("churnlab.serve.bytes_total");
  bytes_total->Set(static_cast<double>(total.total_bytes));
  return total;
}

template <typename PerCustomerOp>
Result<BatchReport> ScoringFleet::ForAllCustomers(const char* span_name,
                                                  PerCustomerOp&& op) {
  CHURNLAB_SPAN(span_name);
  const ServeMetrics& metrics = Metrics();
  const size_t num_shards = store_.num_shards();
  std::vector<ShardOutput> outputs(num_shards);
  const auto run_shard = [&](size_t shard) {
    ShardOutput& out = outputs[shard];
    obs::FlightSpan flight(ShardTaskSite(), shard);
    const auto attempt = [&]() -> Status {
      CHURNLAB_FAILPOINT_KEYED("serve.shard.task", shard);
      return store_.WithShard(
          shard, [&](CustomerStateStore::ShardAccessor& access) -> Status {
            while (out.progress < access.size()) {
              CustomerStateStore::CustomerRef state = access.At(out.progress);
              Result<std::vector<core::StabilityAlert>> closed = op(state);
              if (!closed.ok()) return closed.status();
              for (core::StabilityAlert& alert : *closed) {
                out.alerts.push_back(FleetAlert{state.customer(), 0, alert});
              }
              ++out.progress;
            }
            return Status::OK();
          });
    };
    out.status = RetryWithBackoff(
        options_.shard_retry, attempt, [&metrics, &out](int, const Status&) {
          metrics.shard_retries->Increment();
          ++out.retries;
        });
  };

  const size_t num_threads = std::min(options_.num_threads, num_shards);
  if (num_threads > 1) {
    if (pool_ == nullptr) {
      pool_ = std::make_unique<ThreadPool>(num_threads);
    }
    for (size_t shard = 0; shard < num_shards; ++shard) {
      if (!shard_health_[shard].ok()) continue;
      pool_->Submit([&run_shard, shard] { run_shard(shard); });
    }
    pool_->WaitIdle();
  } else {
    for (size_t shard = 0; shard < num_shards; ++shard) {
      if (shard_health_[shard].ok()) run_shard(shard);
    }
  }

  BatchReport report;
  for (size_t shard = 0; shard < num_shards; ++shard) {
    ShardOutput& out = outputs[shard];
    if (!shard_health_[shard].ok()) {
      report.poisoned.push_back(PoisonedShard{shard, shard_health_[shard]});
      continue;
    }
    if (!out.status.ok()) {
      if (!options_.quarantine_malformed) return out.status;
      shard_health_[shard] = out.status;
      metrics.poisoned_shards->Increment();
      report.poisoned.push_back(PoisonedShard{shard, out.status});
    }
    shard_stats_[shard].alerts += out.alerts.size();
    shard_stats_[shard].retries += out.retries;
    report.alerts.insert(report.alerts.end(),
                         std::make_move_iterator(out.alerts.begin()),
                         std::make_move_iterator(out.alerts.end()));
  }
  std::sort(report.alerts.begin(), report.alerts.end(), AlertLess);
  metrics.alerts_raised->Increment(report.alerts.size());
  PublishShardTelemetry();
  return report;
}

Result<BatchReport> ScoringFleet::AdvanceAllTo(retail::Day day) {
  return ForAllCustomers("serve.advance_all",
                         [day](CustomerStateStore::CustomerRef& state) {
                           return state.AdvanceTo(day);
                         });
}

Result<BatchReport> ScoringFleet::FinishAll() {
  return ForAllCustomers("serve.finish_all",
                         [](CustomerStateStore::CustomerRef& state) {
                           return state.Finish();
                         });
}

Status ScoringFleet::SaveSnapshot(BinaryWriter* writer) const {
  CHURNLAB_SPAN("serve.save_snapshot");
  static Failpoint* const write_frame_failpoint =
      FailpointRegistry::Global().Get("serve.snapshot.write_frame");
  writer->WriteBytes(kSnapshotMagic, kSnapshotMagicSize);
  writer->WriteVarint(kSnapshotVersion);
  WriteScorerOptions(options_.scorer, writer);
  WritePolicy(options_.policy, writer);
  // num_threads is deliberately NOT serialized: it is a pure runtime
  // concern, and the snapshot bytes must be identical for any thread count.
  writer->WriteVarint(options_.num_shards);
  writer->WriteVarint(static_cast<uint64_t>(options_.granularity));
  for (size_t shard = 0; shard < store_.num_shards(); ++shard) {
    BinaryWriter frame;
    store_.SaveShardState(shard, &frame);
    const std::string* payload = &frame.buffer();
    writer->WriteVarint(payload->size());
    writer->WriteVarint(Crc32(payload->data(), payload->size()));
    // The failpoint corrupts the payload *after* the CRC is computed from
    // the pristine bytes, modelling a torn write Restore must detect.
    std::string corrupted;
    if (write_frame_failpoint->armed()) {
      corrupted = *payload;
      CHURNLAB_RETURN_NOT_OK(
          write_frame_failpoint->CorruptBytes(&corrupted, shard));
      payload = &corrupted;
    }
    writer->WriteBytes(payload->data(), payload->size());
  }
  return Status::OK();
}

Status ScoringFleet::SaveSnapshotToFile(const std::string& path) const {
  return RetryWithBackoff(options_.shard_retry, [&]() -> Status {
    BinaryWriter writer;
    CHURNLAB_RETURN_NOT_OK(SaveSnapshot(&writer));
    return writer.SaveToFile(path);
  });
}

Status ScoringFleet::AppendSnapshotToFile(const std::string& path) const {
  return AppendSnapshotGeneration(path).status();
}

Result<SnapshotRef> ScoringFleet::AppendSnapshotGeneration(
    const std::string& path) const {
  SnapshotRef ref;
  const Status written =
      RetryWithBackoff(options_.shard_retry, [&]() -> Status {
        BinaryWriter snapshot;
        CHURNLAB_RETURN_NOT_OK(SaveSnapshot(&snapshot));
        const std::string& payload = snapshot.buffer();
        ref.kind = SnapshotRef::Kind::kGeneration;
        ref.size = payload.size();
        ref.crc = Crc32(payload.data(), payload.size());
        BinaryWriter generation;
        generation.WriteBytes(kGenerationMagic, kSnapshotMagicSize);
        generation.WriteVarint(payload.size());
        generation.WriteVarint(ref.crc);
        generation.WriteBytes(payload.data(), payload.size());
        return generation.AppendToFile(path);
      });
  if (!written.ok()) return written;
  return ref;
}

Result<SnapshotRef> ScoringFleet::SaveSnapshotWithRef(
    const std::string& path) const {
  SnapshotRef ref;
  const Status written =
      RetryWithBackoff(options_.shard_retry, [&]() -> Status {
        BinaryWriter writer;
        CHURNLAB_RETURN_NOT_OK(SaveSnapshot(&writer));
        ref.kind = SnapshotRef::Kind::kBare;
        ref.size = writer.buffer().size();
        ref.crc = Crc32(writer.buffer().data(), writer.buffer().size());
        return writer.SaveToFile(path);
      });
  if (!written.ok()) return written;
  return ref;
}

Result<ScoringFleet> ScoringFleet::Restore(BinaryReader* reader,
                                           const retail::Taxonomy* taxonomy,
                                           size_t num_threads,
                                           StateLayout layout) {
  CHURNLAB_SPAN("serve.restore_snapshot");
  static Failpoint* const read_frame_failpoint =
      FailpointRegistry::Global().Get("serve.snapshot.read_frame");
  CHURNLAB_ASSIGN_OR_RETURN(const std::string magic,
                            reader->ReadBytes(kSnapshotMagicSize));
  if (magic != std::string_view(kSnapshotMagic, kSnapshotMagicSize)) {
    return Status::IOError("not a fleet snapshot (bad magic)");
  }
  CHURNLAB_ASSIGN_OR_RETURN(const uint64_t version, reader->ReadVarint());
  if (version != kSnapshotVersion) {
    return Status::IOError("unsupported fleet snapshot version");
  }
  FleetOptions options;
  CHURNLAB_RETURN_NOT_OK(ReadScorerOptions(reader, &options.scorer));
  CHURNLAB_RETURN_NOT_OK(ReadPolicy(reader, &options.policy));
  CHURNLAB_ASSIGN_OR_RETURN(const uint64_t num_shards, reader->ReadVarint());
  CHURNLAB_ASSIGN_OR_RETURN(const uint64_t granularity,
                            reader->ReadVarint());
  if (num_shards == 0 || num_shards > (1u << 20)) {
    return Status::IOError("fleet snapshot shard count is implausible");
  }
  if (granularity > static_cast<uint64_t>(retail::Granularity::kSegment)) {
    return Status::IOError("fleet snapshot holds an unknown granularity");
  }
  options.num_shards = num_shards;
  options.num_threads = num_threads > 0 ? num_threads : 1;
  options.granularity = static_cast<retail::Granularity>(granularity);
  options.layout = layout;

  CHURNLAB_ASSIGN_OR_RETURN(ScoringFleet fleet, Make(options, taxonomy));
  for (size_t shard = 0; shard < fleet.store_.num_shards(); ++shard) {
    CHURNLAB_ASSIGN_OR_RETURN(const uint64_t size, reader->ReadVarint());
    CHURNLAB_ASSIGN_OR_RETURN(const uint64_t crc, reader->ReadVarint());
    // ReadBytes clamps the untrusted length prefix against the remaining
    // buffer, so a corrupted size cannot over-read or over-allocate.
    CHURNLAB_ASSIGN_OR_RETURN(std::string payload,
                              reader->ReadBytes(size));
    if (read_frame_failpoint->armed()) {
      CHURNLAB_RETURN_NOT_OK(
          read_frame_failpoint->CorruptBytes(&payload, shard));
    }
    if (Crc32(payload.data(), payload.size()) != crc) {
      return Status::IOError("fleet snapshot shard frame failed its CRC");
    }
    BinaryReader frame(std::move(payload));
    CHURNLAB_RETURN_NOT_OK(fleet.store_.LoadShardState(shard, &frame));
    if (!frame.AtEnd()) {
      return Status::IOError("fleet snapshot shard frame has trailing bytes");
    }
  }
  if (!reader->AtEnd()) {
    return Status::IOError("fleet snapshot has trailing bytes");
  }
  Metrics().customers->Set(static_cast<double>(fleet.NumCustomers()));
  return fleet;
}

BatchReport SliceBatchReport(const BatchReport& merged, size_t begin_index,
                             size_t end_index) {
  BatchReport slice;
  if (end_index < begin_index) end_index = begin_index;
  for (const FleetAlert& alert : merged.alerts) {
    if (alert.batch_index < begin_index || alert.batch_index >= end_index) {
      continue;
    }
    FleetAlert rebased = alert;
    rebased.batch_index -= begin_index;
    slice.alerts.push_back(std::move(rebased));
  }
  for (const RejectedReceipt& rejected : merged.rejected) {
    if (rejected.batch_index < begin_index ||
        rejected.batch_index >= end_index) {
      continue;
    }
    RejectedReceipt rebased = rejected;
    rebased.batch_index -= begin_index;
    slice.rejected.push_back(std::move(rebased));
  }
  // Every receipt of the range was either ingested or rejected; the merged
  // report's counts cannot be attributed to a sub-span directly, but the
  // range size minus its rejections can. new_customers stays 0: "first
  // touch" is a property of the whole coalesced batch, not of the sub-span
  // (documented in the header).
  slice.receipts_ingested = (end_index - begin_index) - slice.rejected.size();
  slice.poisoned = merged.poisoned;
  return slice;
}

Result<CustomerQuery> ScoringFleet::QueryCustomer(
    retail::CustomerId customer) {
  if (customer == retail::kInvalidCustomer) {
    return Status::InvalidArgument("invalid customer id");
  }
  const size_t shard = store_.ShardOf(customer);
  return store_.WithShard(
      shard,
      [&](CustomerStateStore::ShardAccessor& access)
          -> Result<CustomerQuery> {
        CHURNLAB_ASSIGN_OR_RETURN(CustomerStateStore::CustomerRef state,
                                  access.Find(customer));
        CustomerQuery query;
        query.customer = customer;
        query.shard = shard;
        query.stability = state.last_stability();
        query.state_bytes = state.MemoryUsage();
        return query;
      });
}

Result<ScoringFleet> ScoringFleet::RestoreFromFile(
    const std::string& path, const retail::Taxonomy* taxonomy,
    size_t num_threads, StateLayout layout) {
  CHURNLAB_ASSIGN_OR_RETURN(BinaryReader reader,
                            BinaryReader::OpenFile(path));
  if (reader.remaining() < kSnapshotMagicSize) {
    return Status::IOError("'" + path + "' is too short to be a snapshot");
  }
  CHURNLAB_ASSIGN_OR_RETURN(std::string magic,
                            reader.ReadBytes(kSnapshotMagicSize));
  if (magic != std::string_view(kGenerationMagic, kSnapshotMagicSize)) {
    // Bare snapshot: re-open so Restore sees the magic it expects.
    CHURNLAB_ASSIGN_OR_RETURN(BinaryReader bare,
                              BinaryReader::OpenFile(path));
    return Restore(&bare, taxonomy, num_threads, layout);
  }

  // Generation file: scan frames, keep the newest whose CRC verifies. A
  // frame that cannot be parsed ends the scan (torn tail from a crashed or
  // partially-retried append); a parseable frame with a bad CRC is skipped.
  static Failpoint* const read_frame_failpoint =
      FailpointRegistry::Global().Get("serve.snapshot.read_frame");
  std::string newest;
  bool have_valid = false;
  uint64_t generations = 0;
  uint64_t crc_failures = 0;
  bool torn = false;
  for (;;) {
    const Result<uint64_t> size = reader.ReadVarint();
    if (!size.ok()) {
      torn = true;
      break;
    }
    const Result<uint64_t> crc = reader.ReadVarint();
    if (!crc.ok()) {
      torn = true;
      break;
    }
    Result<std::string> payload = reader.ReadBytes(*size);
    if (!payload.ok()) {
      torn = true;
      break;
    }
    if (read_frame_failpoint->armed()) {
      CHURNLAB_RETURN_NOT_OK(
          read_frame_failpoint->CorruptBytes(&*payload, generations));
    }
    ++generations;
    if (Crc32(payload->data(), payload->size()) != *crc) {
      ++crc_failures;
    } else {
      newest = std::move(*payload);
      have_valid = true;
    }
    if (reader.AtEnd()) break;
    const Result<std::string> next_magic =
        reader.ReadBytes(std::min<size_t>(kSnapshotMagicSize,
                                          reader.remaining()));
    if (!next_magic.ok() ||
        *next_magic !=
            std::string_view(kGenerationMagic, kSnapshotMagicSize)) {
      torn = true;
      break;
    }
  }
  if (!have_valid) {
    return Status::IOError("snapshot generation file '" + path +
                           "' holds no restorable generation");
  }
  if (torn || crc_failures > 0) {
    obs::LogEvent(LogLevel::kWarning, "snapshot_generation_fallback",
                  __FILE__, __LINE__)
        .Str("path", path)
        .Uint("generations_seen", generations)
        .Uint("crc_failures", crc_failures)
        .Bool("torn_tail", torn);
    Metrics().snapshot_fallbacks->Increment();
  }
  BinaryReader newest_reader(std::move(newest));
  return Restore(&newest_reader, taxonomy, num_threads, layout);
}

namespace {

/// Loads the bare snapshot payload a journal checkpoint names. For a bare
/// file the whole content must match `ref`; for a generation file the
/// matching generation is searched for (a torn tail ends the scan — the
/// checkpointed generation always precedes it, so a tear can only hide an
/// orphan generation that was never checkpointed).
Result<std::string> LoadSnapshotByRef(const std::string& path,
                                      const SnapshotRef& ref) {
  CHURNLAB_ASSIGN_OR_RETURN(BinaryReader reader,
                            BinaryReader::OpenFile(path));
  if (reader.remaining() < kSnapshotMagicSize) {
    return Status::DataLoss("snapshot '" + path +
                            "' is too short for the journal checkpoint");
  }
  if (ref.kind == SnapshotRef::Kind::kBare) {
    CHURNLAB_ASSIGN_OR_RETURN(std::string payload,
                              reader.ReadBytes(reader.remaining()));
    if (payload.size() != ref.size ||
        Crc32(payload.data(), payload.size()) != ref.crc) {
      return Status::DataLoss(
          "snapshot '" + path +
          "' does not match the journal checkpoint's size/CRC");
    }
    return payload;
  }
  CHURNLAB_ASSIGN_OR_RETURN(std::string magic,
                            reader.ReadBytes(kSnapshotMagicSize));
  if (magic != std::string_view(kGenerationMagic, kSnapshotMagicSize)) {
    return Status::DataLoss("snapshot '" + path +
                            "' is not the generation file the journal "
                            "checkpoint references");
  }
  for (;;) {
    const Result<uint64_t> size = reader.ReadVarint();
    if (!size.ok()) break;
    const Result<uint64_t> crc = reader.ReadVarint();
    if (!crc.ok()) break;
    Result<std::string> payload = reader.ReadBytes(*size);
    if (!payload.ok()) break;
    if (*size == ref.size && *crc == ref.crc &&
        Crc32(payload->data(), payload->size()) == ref.crc) {
      return std::move(*payload);
    }
    if (reader.AtEnd()) break;
    const Result<std::string> next_magic = reader.ReadBytes(
        std::min<size_t>(kSnapshotMagicSize, reader.remaining()));
    if (!next_magic.ok() ||
        *next_magic !=
            std::string_view(kGenerationMagic, kSnapshotMagicSize)) {
      break;
    }
  }
  return Status::DataLoss(
      "snapshot '" + path +
      "' holds no generation matching the journal checkpoint");
}

}  // namespace

Result<ScoringFleet> ScoringFleet::Recover(
    const JournalRecovery& recovery, const std::string& snapshot_path,
    const FleetOptions& fresh_options, const retail::Taxonomy* taxonomy,
    size_t num_threads, StateLayout layout) {
  CHURNLAB_SPAN("serve.recover");
  Result<ScoringFleet> base = [&]() -> Result<ScoringFleet> {
    if (recovery.snapshot.kind == SnapshotRef::Kind::kNone) {
      if (recovery.watermark != 0) {
        return Status::DataLoss(
            "journal checkpoint has watermark " +
            std::to_string(recovery.watermark) +
            " but references no snapshot");
      }
      FleetOptions options = fresh_options;
      if (num_threads > 0) options.num_threads = num_threads;
      options.layout = layout;
      return Make(options, taxonomy);
    }
    if (snapshot_path.empty()) {
      return Status::InvalidArgument(
          "journal checkpoint references a snapshot but no snapshot path "
          "was given");
    }
    CHURNLAB_ASSIGN_OR_RETURN(
        std::string payload,
        LoadSnapshotByRef(snapshot_path, recovery.snapshot));
    BinaryReader snapshot(std::move(payload));
    return Restore(&snapshot, taxonomy, num_threads, layout);
  }();
  if (!base.ok()) {
    return base.status().WithContext("recovering fleet base state");
  }
  ScoringFleet fleet = std::move(base).ValueOrDie();

  // Replay the journaled batches exactly as the coalescer applied them.
  // Sequence order fully determines fleet state, so the recovered fleet's
  // snapshot is byte-identical to the crashed server's would have been.
  uint64_t replayed_receipts = 0;
  for (const JournalFrame& frame : recovery.frames) {
    Result<BatchReport> report = fleet.IngestBatch(frame.receipts);
    if (!report.ok()) {
      return report.status().WithContext(
          "replaying journal frame at sequence " +
          std::to_string(frame.first_sequence));
    }
    replayed_receipts += frame.receipts.size();
  }
  obs::LogEvent(LogLevel::kInfo, "journal_replay_complete", __FILE__,
                __LINE__)
      .Uint("frames", recovery.frames.size())
      .Uint("receipts", replayed_receipts)
      .Uint("watermark", recovery.watermark)
      .Uint("next_sequence", recovery.next_sequence)
      .Uint("customers", fleet.NumCustomers());
  return fleet;
}

}  // namespace serve
}  // namespace churnlab
