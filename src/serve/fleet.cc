#include "serve/fleet.h"

#include <algorithm>
#include <tuple>
#include <utility>

#include "common/macros.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace churnlab {
namespace serve {

namespace {

constexpr char kSnapshotMagic[] = "CHLFLEET";
constexpr size_t kSnapshotMagicSize = 8;
constexpr uint64_t kSnapshotVersion = 1;

struct ServeMetrics {
  obs::Counter* receipts_ingested;
  obs::Counter* alerts_raised;
  obs::Counter* batches_ingested;
  obs::Gauge* customers;
  obs::Histogram* ingest_batch_us;
};

const ServeMetrics& Metrics() {
  static const ServeMetrics metrics = [] {
    obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
    return ServeMetrics{
        registry.GetCounter("churnlab.serve.receipts_ingested"),
        registry.GetCounter("churnlab.serve.alerts_raised"),
        registry.GetCounter("churnlab.serve.batches_ingested"),
        registry.GetGauge("churnlab.serve.customers"),
        registry.GetHistogram("churnlab.serve.ingest_batch_us",
                              obs::HistogramOptions::ExponentialLatency()),
    };
  }();
  return metrics;
}

/// Canonical alert order: batch position first (0 for whole-fleet sweeps),
/// then customer, then the alert's own (window, kind). Independent of both
/// thread count and shard count.
bool AlertLess(const FleetAlert& a, const FleetAlert& b) {
  return std::tie(a.batch_index, a.customer, a.alert.window_index,
                  a.alert.kind) < std::tie(b.batch_index, b.customer,
                                           b.alert.window_index,
                                           b.alert.kind);
}

/// Per-shard scratch for one fleet operation.
struct ShardOutput {
  Status status = Status::OK();
  std::vector<FleetAlert> alerts;
  size_t receipts = 0;
  size_t new_customers = 0;
};

void WriteScorerOptions(const core::OnlineStabilityScorer::Options& options,
                        BinaryWriter* writer) {
  writer->WriteVarint(static_cast<uint64_t>(options.significance.kind));
  writer->WriteDouble(options.significance.alpha);
  writer->WriteDouble(options.significance.max_abs_exponent);
  writer->WriteDouble(options.significance.ewma_lambda);
  writer->WriteSignedVarint(options.window_span_days);
  writer->WriteSignedVarint(options.origin_day);
}

Status ReadScorerOptions(BinaryReader* reader,
                         core::OnlineStabilityScorer::Options* options) {
  CHURNLAB_ASSIGN_OR_RETURN(const uint64_t kind, reader->ReadVarint());
  if (kind > static_cast<uint64_t>(core::SignificanceKind::kEwma)) {
    return Status::IOError("snapshot holds an unknown significance kind");
  }
  options->significance.kind = static_cast<core::SignificanceKind>(kind);
  CHURNLAB_ASSIGN_OR_RETURN(options->significance.alpha,
                            reader->ReadDouble());
  CHURNLAB_ASSIGN_OR_RETURN(options->significance.max_abs_exponent,
                            reader->ReadDouble());
  CHURNLAB_ASSIGN_OR_RETURN(options->significance.ewma_lambda,
                            reader->ReadDouble());
  CHURNLAB_ASSIGN_OR_RETURN(const int64_t span, reader->ReadSignedVarint());
  CHURNLAB_ASSIGN_OR_RETURN(const int64_t origin,
                            reader->ReadSignedVarint());
  options->window_span_days = static_cast<retail::Day>(span);
  options->origin_day = static_cast<retail::Day>(origin);
  return Status::OK();
}

void WritePolicy(const core::MonitorPolicy& policy, BinaryWriter* writer) {
  writer->WriteDouble(policy.beta);
  writer->WriteSignedVarint(policy.consecutive_windows);
  writer->WriteDouble(policy.drop_threshold);
  writer->WriteSignedVarint(policy.warmup_windows);
}

Status ReadPolicy(BinaryReader* reader, core::MonitorPolicy* policy) {
  CHURNLAB_ASSIGN_OR_RETURN(policy->beta, reader->ReadDouble());
  CHURNLAB_ASSIGN_OR_RETURN(const int64_t consecutive,
                            reader->ReadSignedVarint());
  CHURNLAB_ASSIGN_OR_RETURN(policy->drop_threshold, reader->ReadDouble());
  CHURNLAB_ASSIGN_OR_RETURN(const int64_t warmup,
                            reader->ReadSignedVarint());
  policy->consecutive_windows = static_cast<int32_t>(consecutive);
  policy->warmup_windows = static_cast<int32_t>(warmup);
  return Status::OK();
}

}  // namespace

ScoringFleet::ScoringFleet(FleetOptions options, CustomerStateStore store,
                           core::SymbolMapper mapper)
    : options_(std::move(options)),
      store_(std::move(store)),
      mapper_(std::move(mapper)) {}

Result<ScoringFleet> ScoringFleet::Make(FleetOptions options,
                                        const retail::Taxonomy* taxonomy) {
  if (options.num_threads == 0) options.num_threads = 1;
  CHURNLAB_ASSIGN_OR_RETURN(
      core::SymbolMapper mapper,
      core::SymbolMapper::Make(options.granularity, taxonomy));
  StateStoreOptions store_options;
  store_options.scorer = options.scorer;
  store_options.policy = options.policy;
  store_options.num_shards = options.num_shards;
  CHURNLAB_ASSIGN_OR_RETURN(CustomerStateStore store,
                            CustomerStateStore::Make(store_options));
  return ScoringFleet(std::move(options), std::move(store),
                      std::move(mapper));
}

void ScoringFleet::MapSymbols(const retail::Receipt& receipt,
                              std::vector<core::Symbol>* scratch) const {
  scratch->clear();
  scratch->reserve(receipt.items.size());
  for (const retail::ItemId item : receipt.items) {
    scratch->push_back(mapper_.Map(item));
  }
  std::sort(scratch->begin(), scratch->end());
  scratch->erase(std::unique(scratch->begin(), scratch->end()),
                 scratch->end());
}

Result<BatchReport> ScoringFleet::IngestBatch(
    std::span<const retail::Receipt> receipts) {
  CHURNLAB_SPAN("serve.ingest_batch");
  const ServeMetrics& metrics = Metrics();
  obs::ScopedLatency latency(metrics.ingest_batch_us);

  // Partition by shard, preserving batch order within each shard so every
  // customer's receipts stay chronological.
  const size_t num_shards = store_.num_shards();
  std::vector<std::vector<size_t>> by_shard(num_shards);
  for (size_t i = 0; i < receipts.size(); ++i) {
    by_shard[store_.ShardOf(receipts[i].customer)].push_back(i);
  }

  std::vector<ShardOutput> outputs(num_shards);
  const auto run_shard = [&](size_t shard) {
    ShardOutput& out = outputs[shard];
    std::vector<core::Symbol> symbols;
    store_.WithShard(shard, [&](CustomerStateStore::ShardAccessor& access) {
      const size_t customers_before = access.states().size();
      for (const size_t batch_index : by_shard[shard]) {
        const retail::Receipt& receipt = receipts[batch_index];
        if (receipt.customer == retail::kInvalidCustomer) {
          out.status = Status::InvalidArgument(
              "batch receipt has an invalid customer id");
          return;
        }
        MapSymbols(receipt, &symbols);
        CustomerStateStore::CustomerState& state =
            access.GetOrCreate(receipt.customer);
        Result<std::vector<core::StabilityAlert>> closed =
            state.monitor.Observe(receipt.day, symbols);
        if (!closed.ok()) {
          out.status = closed.status();
          return;
        }
        for (core::StabilityAlert& alert : *closed) {
          out.alerts.push_back(
              FleetAlert{receipt.customer, batch_index, alert});
        }
        ++out.receipts;
      }
      out.new_customers = access.states().size() - customers_before;
    });
  };

  const size_t num_threads = std::min(options_.num_threads, num_shards);
  if (num_threads > 1) {
    if (pool_ == nullptr) {
      pool_ = std::make_unique<ThreadPool>(num_threads);
    }
    for (size_t shard = 0; shard < num_shards; ++shard) {
      if (by_shard[shard].empty()) continue;
      pool_->Submit([&run_shard, shard] { run_shard(shard); });
    }
    pool_->WaitIdle();
  } else {
    for (size_t shard = 0; shard < num_shards; ++shard) {
      if (!by_shard[shard].empty()) run_shard(shard);
    }
  }

  BatchReport report;
  for (ShardOutput& out : outputs) {
    // First failing shard by index, so the reported error is deterministic.
    CHURNLAB_RETURN_NOT_OK(out.status);
    report.receipts_ingested += out.receipts;
    report.new_customers += out.new_customers;
    report.alerts.insert(report.alerts.end(),
                         std::make_move_iterator(out.alerts.begin()),
                         std::make_move_iterator(out.alerts.end()));
  }
  std::sort(report.alerts.begin(), report.alerts.end(), AlertLess);

  metrics.batches_ingested->Increment();
  metrics.receipts_ingested->Increment(report.receipts_ingested);
  metrics.alerts_raised->Increment(report.alerts.size());
  metrics.customers->Set(static_cast<double>(store_.NumCustomers()));
  return report;
}

template <typename PerCustomerOp>
Result<BatchReport> ScoringFleet::ForAllCustomers(const char* span_name,
                                                  PerCustomerOp&& op) {
  CHURNLAB_SPAN(span_name);
  const ServeMetrics& metrics = Metrics();
  const size_t num_shards = store_.num_shards();
  std::vector<ShardOutput> outputs(num_shards);
  const auto run_shard = [&](size_t shard) {
    ShardOutput& out = outputs[shard];
    store_.WithShard(shard, [&](CustomerStateStore::ShardAccessor& access) {
      for (CustomerStateStore::CustomerState& state : access.states()) {
        Result<std::vector<core::StabilityAlert>> closed = op(state);
        if (!closed.ok()) {
          out.status = closed.status();
          return;
        }
        for (core::StabilityAlert& alert : *closed) {
          out.alerts.push_back(FleetAlert{state.customer, 0, alert});
        }
      }
    });
  };

  const size_t num_threads = std::min(options_.num_threads, num_shards);
  if (num_threads > 1) {
    if (pool_ == nullptr) {
      pool_ = std::make_unique<ThreadPool>(num_threads);
    }
    for (size_t shard = 0; shard < num_shards; ++shard) {
      pool_->Submit([&run_shard, shard] { run_shard(shard); });
    }
    pool_->WaitIdle();
  } else {
    for (size_t shard = 0; shard < num_shards; ++shard) run_shard(shard);
  }

  BatchReport report;
  for (ShardOutput& out : outputs) {
    CHURNLAB_RETURN_NOT_OK(out.status);
    report.alerts.insert(report.alerts.end(),
                         std::make_move_iterator(out.alerts.begin()),
                         std::make_move_iterator(out.alerts.end()));
  }
  std::sort(report.alerts.begin(), report.alerts.end(), AlertLess);
  metrics.alerts_raised->Increment(report.alerts.size());
  return report;
}

Result<BatchReport> ScoringFleet::AdvanceAllTo(retail::Day day) {
  return ForAllCustomers(
      "serve.advance_all",
      [day](CustomerStateStore::CustomerState& state) {
        return state.monitor.AdvanceTo(day);
      });
}

Result<BatchReport> ScoringFleet::FinishAll() {
  return ForAllCustomers("serve.finish_all",
                         [](CustomerStateStore::CustomerState& state) {
                           return state.monitor.Finish();
                         });
}

void ScoringFleet::SaveSnapshot(BinaryWriter* writer) const {
  CHURNLAB_SPAN("serve.save_snapshot");
  writer->WriteBytes(kSnapshotMagic, kSnapshotMagicSize);
  writer->WriteVarint(kSnapshotVersion);
  WriteScorerOptions(options_.scorer, writer);
  WritePolicy(options_.policy, writer);
  // num_threads is deliberately NOT serialized: it is a pure runtime
  // concern, and the snapshot bytes must be identical for any thread count.
  writer->WriteVarint(options_.num_shards);
  writer->WriteVarint(static_cast<uint64_t>(options_.granularity));
  for (size_t shard = 0; shard < store_.num_shards(); ++shard) {
    BinaryWriter frame;
    store_.SaveShardState(shard, &frame);
    const std::string& payload = frame.buffer();
    writer->WriteVarint(payload.size());
    writer->WriteVarint(Crc32(payload.data(), payload.size()));
    writer->WriteBytes(payload.data(), payload.size());
  }
}

Status ScoringFleet::SaveSnapshotToFile(const std::string& path) const {
  BinaryWriter writer;
  SaveSnapshot(&writer);
  return writer.SaveToFile(path);
}

Result<ScoringFleet> ScoringFleet::Restore(BinaryReader* reader,
                                           const retail::Taxonomy* taxonomy,
                                           size_t num_threads) {
  CHURNLAB_SPAN("serve.restore_snapshot");
  CHURNLAB_ASSIGN_OR_RETURN(const std::string magic,
                            reader->ReadBytes(kSnapshotMagicSize));
  if (magic != std::string_view(kSnapshotMagic, kSnapshotMagicSize)) {
    return Status::IOError("not a fleet snapshot (bad magic)");
  }
  CHURNLAB_ASSIGN_OR_RETURN(const uint64_t version, reader->ReadVarint());
  if (version != kSnapshotVersion) {
    return Status::IOError("unsupported fleet snapshot version");
  }
  FleetOptions options;
  CHURNLAB_RETURN_NOT_OK(ReadScorerOptions(reader, &options.scorer));
  CHURNLAB_RETURN_NOT_OK(ReadPolicy(reader, &options.policy));
  CHURNLAB_ASSIGN_OR_RETURN(const uint64_t num_shards, reader->ReadVarint());
  CHURNLAB_ASSIGN_OR_RETURN(const uint64_t granularity,
                            reader->ReadVarint());
  if (num_shards == 0 || num_shards > (1u << 20)) {
    return Status::IOError("fleet snapshot shard count is implausible");
  }
  if (granularity > static_cast<uint64_t>(retail::Granularity::kSegment)) {
    return Status::IOError("fleet snapshot holds an unknown granularity");
  }
  options.num_shards = num_shards;
  options.num_threads = num_threads > 0 ? num_threads : 1;
  options.granularity = static_cast<retail::Granularity>(granularity);

  CHURNLAB_ASSIGN_OR_RETURN(ScoringFleet fleet, Make(options, taxonomy));
  for (size_t shard = 0; shard < fleet.store_.num_shards(); ++shard) {
    CHURNLAB_ASSIGN_OR_RETURN(const uint64_t size, reader->ReadVarint());
    CHURNLAB_ASSIGN_OR_RETURN(const uint64_t crc, reader->ReadVarint());
    CHURNLAB_ASSIGN_OR_RETURN(std::string payload,
                              reader->ReadBytes(size));
    if (Crc32(payload.data(), payload.size()) != crc) {
      return Status::IOError("fleet snapshot shard frame failed its CRC");
    }
    BinaryReader frame(std::move(payload));
    CHURNLAB_RETURN_NOT_OK(fleet.store_.LoadShardState(shard, &frame));
    if (!frame.AtEnd()) {
      return Status::IOError("fleet snapshot shard frame has trailing bytes");
    }
  }
  if (!reader->AtEnd()) {
    return Status::IOError("fleet snapshot has trailing bytes");
  }
  Metrics().customers->Set(static_cast<double>(fleet.NumCustomers()));
  return fleet;
}

Result<ScoringFleet> ScoringFleet::RestoreFromFile(
    const std::string& path, const retail::Taxonomy* taxonomy,
    size_t num_threads) {
  CHURNLAB_ASSIGN_OR_RETURN(BinaryReader reader,
                            BinaryReader::OpenFile(path));
  return Restore(&reader, taxonomy, num_threads);
}

}  // namespace serve
}  // namespace churnlab
