#include "serve/state_store.h"

#include <algorithm>
#include <cstring>
#include <span>
#include <string>
#include <utility>

#include "common/arena.h"
#include "common/failpoint.h"
#include "common/macros.h"
#include "core/pow_cache.h"
#include "core/state_kernel.h"

namespace churnlab {
namespace serve {

std::string_view StateLayoutToString(StateLayout layout) {
  return layout == StateLayout::kCompact ? "compact" : "heap";
}

Result<StateLayout> ParseStateLayout(std::string_view text) {
  if (text == "compact") return StateLayout::kCompact;
  if (text == "heap") return StateLayout::kHeap;
  return Status::InvalidArgument("unknown state layout '" + std::string(text) +
                                 "' (expected compact|heap)");
}

namespace {

// ---------------------------------------------------------------------------
// Compact layout: SoA scalar columns + arena-backed variable-size blocks.
// ---------------------------------------------------------------------------

/// One variable-size array carved from the shard arena. `size` is the
/// logical element count; `capacity_bytes` is the arena size class and must
/// be passed back verbatim on release. 32-bit fields keep the handle (and
/// the 5-handle BlockSet) small; per-customer blocks are bounded far below
/// 4 GiB by the snapshot-load symbol caps.
struct BlockHandle {
  void* data = nullptr;
  uint32_t size = 0;
  uint32_t capacity_bytes = 0;

  template <typename T>
  std::span<T> Span() const {
    return {static_cast<T*>(data), size};
  }
};

/// The five growable arrays of one customer.
struct BlockSet {
  BlockHandle contain_counts;     // int32_t
  BlockHandle contain_histogram;  // uint32_t
  BlockHandle ewma_values;        // double
  BlockHandle ewma_stamps;        // int32_t
  BlockHandle current_symbols;    // core::Symbol

  size_t CapacityBytes() const {
    return size_t{contain_counts.capacity_bytes} +
           contain_histogram.capacity_bytes + ewma_values.capacity_bytes +
           ewma_stamps.capacity_bytes + current_symbols.capacity_bytes;
  }
};

/// Ensures `h` can hold `n` elements of T, reallocating from the arena (the
/// old block goes back to its size-class freelist). Leaves h->size alone.
template <typename T>
void EnsureBlockCapacity(BlockArena* arena, BlockHandle* h, size_t n) {
  const size_t min_bytes = n * sizeof(T);
  if (min_bytes <= h->capacity_bytes) return;
  size_t capacity = 0;
  void* fresh = arena->Allocate(min_bytes, &capacity);
  if (h->size > 0) {
    std::memcpy(fresh, h->data, size_t{h->size} * sizeof(T));
  }
  arena->Release(h->data, h->capacity_bytes);
  h->data = fresh;
  h->capacity_bytes = static_cast<uint32_t>(capacity);
}

/// Grows the logical size to `n`, zero-filling [old_size, n) — the same
/// contract as resizing a value-initialized std::vector.
template <typename T>
std::span<T> GrowBlock(BlockArena* arena, BlockHandle* h, size_t n) {
  EnsureBlockCapacity<T>(arena, h, n);
  if (n > h->size) {
    std::memset(static_cast<T*>(h->data) + h->size, 0,
                (n - h->size) * sizeof(T));
    h->size = static_cast<uint32_t>(n);
  }
  return h->Span<T>();
}

/// Parallel scalar columns, one entry per customer slot.
struct CompactColumns {
  std::vector<retail::CustomerId> customer;
  // Tracker scalars.
  std::vector<int32_t> windows_seen;
  std::vector<uint32_t> num_seen;
  std::vector<double> incremental_total;
  std::vector<double> ewma_total;
  // Scorer scalars.
  std::vector<int32_t> current_window;
  std::vector<retail::Day> last_observed_day;
  // Monitor debounce scalars.
  std::vector<double> last_stability;
  std::vector<uint8_t> has_previous;
  std::vector<int32_t> low_streak;

  size_t size() const { return customer.size(); }

  template <typename Fn>
  void ForEachColumn(Fn&& fn) {
    fn(customer);
    fn(windows_seen);
    fn(num_seen);
    fn(incremental_total);
    fn(ewma_total);
    fn(current_window);
    fn(last_observed_day);
    fn(last_stability);
    fn(has_previous);
    fn(low_streak);
  }

  template <typename Fn>
  void ForEachColumn(Fn&& fn) const {
    const_cast<CompactColumns*>(this)->ForEachColumn(
        [&fn](auto& column) { fn(std::as_const(column)); });
  }

  void Reserve(size_t n) {
    ForEachColumn([n](auto& column) { column.reserve(n); });
  }

  /// Freshly-constructed per-customer defaults, matching the heap layout's
  /// member initializers.
  void AppendDefault(retail::CustomerId id) {
    customer.push_back(id);
    windows_seen.push_back(0);
    num_seen.push_back(0);
    incremental_total.push_back(0.0);
    ewma_total.push_back(0.0);
    current_window.push_back(0);
    last_observed_day.push_back(-1);
    last_stability.push_back(1.0);
    has_previous.push_back(0);
    low_streak.push_back(0);
  }

  /// Truncates every column back to `n` entries. Exception-rollback path: a
  /// push_back partway through AppendDefault leaves the columns uneven.
  void Rollback(size_t n) {
    ForEachColumn([n](auto& column) {
      if (column.size() > n) column.resize(n);
    });
  }

  size_t CapacityBytes() const {
    size_t total = 0;
    ForEachColumn([&total](const auto& column) {
      total += column.capacity() * sizeof(column[0]);
    });
    return total;
  }
};

/// Sum of one slot's scalar column entries, for per-customer accounting.
constexpr size_t kCompactScalarBytesPerSlot =
    sizeof(retail::CustomerId) + 3 * sizeof(int32_t) + sizeof(uint32_t) +
    3 * sizeof(double) + sizeof(retail::Day) + sizeof(uint8_t);

struct CompactStorage {
  CompactColumns cols;
  std::vector<BlockSet> blocks;
  BlockArena arena;
};

// Lightweight views satisfying the state concepts of core/state_kernel.h
// over CompactStorage. The kernels they instantiate are the very same that
// run inside StabilityMonitor, which is what makes the two layouts
// byte-identical by construction.

class CompactTrackerRef {
 public:
  CompactTrackerRef(CompactStorage* s, size_t slot) : s_(s), slot_(slot) {}

  int32_t& WindowsSeen() { return s_->cols.windows_seen[slot_]; }
  uint32_t& NumSeen() { return s_->cols.num_seen[slot_]; }
  double& IncrementalTotal() { return s_->cols.incremental_total[slot_]; }
  double& EwmaTotal() { return s_->cols.ewma_total[slot_]; }
  std::span<int32_t> ContainCounts() {
    return blocks().contain_counts.Span<int32_t>();
  }
  std::span<uint32_t> ContainHistogram() {
    return blocks().contain_histogram.Span<uint32_t>();
  }
  std::span<double> EwmaValues() {
    return blocks().ewma_values.Span<double>();
  }
  std::span<int32_t> EwmaStamps() {
    return blocks().ewma_stamps.Span<int32_t>();
  }
  std::span<int32_t> GrowContainCounts(size_t n) {
    return GrowBlock<int32_t>(&s_->arena, &blocks().contain_counts, n);
  }
  std::span<uint32_t> GrowContainHistogram(size_t n) {
    return GrowBlock<uint32_t>(&s_->arena, &blocks().contain_histogram, n);
  }
  void GrowEwma(size_t n) {
    GrowBlock<double>(&s_->arena, &blocks().ewma_values, n);
    GrowBlock<int32_t>(&s_->arena, &blocks().ewma_stamps, n);
  }
  void ClearTracker() {
    WindowsSeen() = 0;
    NumSeen() = 0;
    IncrementalTotal() = 0.0;
    EwmaTotal() = 0.0;
    // Blocks keep their capacity (GrowBlock zero-fills on regrowth).
    BlockSet& b = blocks();
    b.contain_counts.size = 0;
    b.contain_histogram.size = 0;
    b.ewma_values.size = 0;
    b.ewma_stamps.size = 0;
  }

 private:
  BlockSet& blocks() { return s_->blocks[slot_]; }

  CompactStorage* s_;
  size_t slot_;
};

class CompactScorerRef {
 public:
  CompactScorerRef(CompactStorage* s, size_t slot) : s_(s), slot_(slot) {}

  std::span<const core::Symbol> CurrentSymbols() const {
    return s_->blocks[slot_].current_symbols.Span<const core::Symbol>();
  }
  void InsertCurrentSymbol(size_t pos, core::Symbol symbol) {
    BlockHandle& h = s_->blocks[slot_].current_symbols;
    const size_t old_size = h.size;
    EnsureBlockCapacity<core::Symbol>(&s_->arena, &h, old_size + 1);
    auto* data = static_cast<core::Symbol*>(h.data);
    std::memmove(data + pos + 1, data + pos,
                 (old_size - pos) * sizeof(core::Symbol));
    data[pos] = symbol;
    h.size = static_cast<uint32_t>(old_size + 1);
  }
  void AppendCurrentSymbol(core::Symbol symbol) {
    BlockHandle& h = s_->blocks[slot_].current_symbols;
    EnsureBlockCapacity<core::Symbol>(&s_->arena, &h, size_t{h.size} + 1);
    static_cast<core::Symbol*>(h.data)[h.size] = symbol;
    ++h.size;
  }
  void ReserveCurrentSymbols(size_t n) {
    EnsureBlockCapacity<core::Symbol>(&s_->arena,
                                      &s_->blocks[slot_].current_symbols, n);
  }
  void ClearCurrentSymbols() { s_->blocks[slot_].current_symbols.size = 0; }
  int32_t& CurrentWindow() { return s_->cols.current_window[slot_]; }
  retail::Day& LastObservedDay() {
    return s_->cols.last_observed_day[slot_];
  }

 private:
  CompactStorage* s_;
  size_t slot_;
};

class CompactMonitorRef {
 public:
  CompactMonitorRef(CompactStorage* s, size_t slot) : s_(s), slot_(slot) {}

  double& LastStability() { return s_->cols.last_stability[slot_]; }
  uint8_t& HasPrevious() { return s_->cols.has_previous[slot_]; }
  int32_t& LowStreak() { return s_->cols.low_streak[slot_]; }

 private:
  CompactStorage* s_;
  size_t slot_;
};

/// Estimated footprint of the id -> slot index (nodes + bucket array).
size_t IndexMemoryUsage(
    const std::unordered_map<retail::CustomerId, uint32_t>& index) {
  return index.bucket_count() * sizeof(void*) +
         index.size() *
             (sizeof(std::pair<const retail::CustomerId, uint32_t>) +
              2 * sizeof(void*));
}

}  // namespace

/// One shard. Heap-allocated (the mutex is immovable) so the store itself
/// stays movable, which Result<CustomerStateStore> requires. Exactly one of
/// `slab` / `compact` is populated, per StateStoreOptions::layout.
struct Shard {
  explicit Shard(const StateStoreOptions& options)
      : pows(options.scorer.significance.alpha,
             options.scorer.significance.max_abs_exponent,
             options.scorer.significance.ewma_lambda) {}

  mutable std::mutex mutex;
  std::unordered_map<retail::CustomerId, uint32_t> index;
  /// kHeap: one monitor object per slot, insertion-ordered.
  std::vector<CustomerStateStore::CustomerState> slab;
  /// kCompact: SoA columns + arena blocks.
  CompactStorage compact;
  /// Interned power tables shared by every compact customer in the shard
  /// (heap monitors carry their own). Guarded by `mutex` like the rest.
  core::PowCache pows;
};

namespace {

size_t ShardSize(const Shard& shard, StateLayout layout) {
  return layout == StateLayout::kCompact ? shard.compact.cols.size()
                                         : shard.slab.size();
}

}  // namespace

CustomerStateStore::CustomerStateStore(
    StateStoreOptions options, core::StabilityMonitor prototype,
    std::vector<std::unique_ptr<Shard>> shards)
    : options_(std::move(options)),
      prototype_(std::move(prototype)),
      shards_(std::move(shards)) {}

CustomerStateStore::~CustomerStateStore() = default;
CustomerStateStore::CustomerStateStore(CustomerStateStore&&) noexcept =
    default;
CustomerStateStore& CustomerStateStore::operator=(
    CustomerStateStore&&) noexcept = default;

Result<CustomerStateStore> CustomerStateStore::Make(
    StateStoreOptions options) {
  if (options.num_shards == 0) {
    return Status::InvalidArgument("num_shards must be >= 1");
  }
  CHURNLAB_ASSIGN_OR_RETURN(
      core::StabilityMonitor prototype,
      core::StabilityMonitor::Make(options.scorer, options.policy));
  std::vector<std::unique_ptr<Shard>> shards;
  shards.reserve(options.num_shards);
  for (size_t i = 0; i < options.num_shards; ++i) {
    shards.push_back(std::make_unique<Shard>(options));
  }
  return CustomerStateStore(std::move(options), std::move(prototype),
                            std::move(shards));
}

std::mutex& CustomerStateStore::ShardMutex(size_t shard) const {
  return shards_[shard]->mutex;
}

size_t CustomerStateStore::ShardCustomers(size_t shard) const {
  std::lock_guard<std::mutex> lock(shards_[shard]->mutex);
  return ShardSize(*shards_[shard], options_.layout);
}

size_t CustomerStateStore::NumCustomers() const {
  size_t total = 0;
  for (const std::unique_ptr<Shard>& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    total += ShardSize(*shard, options_.layout);
  }
  return total;
}

// --------------------------------------------------------------------------
// CustomerRef
// --------------------------------------------------------------------------

retail::CustomerId CustomerStateStore::CustomerRef::customer() const {
  if (store_->options_.layout == StateLayout::kCompact) {
    return shard_->compact.cols.customer[slot_];
  }
  return shard_->slab[slot_].customer;
}

Result<std::vector<core::StabilityAlert>>
CustomerStateStore::CustomerRef::Observe(
    retail::Day day, const std::vector<core::Symbol>& symbols) {
  if (store_->options_.layout == StateLayout::kHeap) {
    return shard_->slab[slot_].monitor.Observe(day, symbols);
  }
  CompactTrackerRef ts(&shard_->compact, slot_);
  CompactScorerRef ss(&shard_->compact, slot_);
  CompactMonitorRef ms(&shard_->compact, slot_);
  return core::kernel::MonitorObserve(
      ts, ss, ms, store_->options_.scorer, store_->options_.policy,
      shard_->pows, day, std::span<const core::Symbol>(symbols));
}

Result<std::vector<core::StabilityAlert>>
CustomerStateStore::CustomerRef::AdvanceTo(retail::Day day) {
  if (store_->options_.layout == StateLayout::kHeap) {
    return shard_->slab[slot_].monitor.AdvanceTo(day);
  }
  CompactTrackerRef ts(&shard_->compact, slot_);
  CompactScorerRef ss(&shard_->compact, slot_);
  CompactMonitorRef ms(&shard_->compact, slot_);
  return core::kernel::MonitorAdvanceTo(ts, ss, ms, store_->options_.scorer,
                                        store_->options_.policy,
                                        shard_->pows, day);
}

Result<std::vector<core::StabilityAlert>>
CustomerStateStore::CustomerRef::Finish() {
  if (store_->options_.layout == StateLayout::kHeap) {
    return shard_->slab[slot_].monitor.Finish();
  }
  CompactTrackerRef ts(&shard_->compact, slot_);
  CompactScorerRef ss(&shard_->compact, slot_);
  CompactMonitorRef ms(&shard_->compact, slot_);
  return core::kernel::MonitorFinish(ts, ss, ms, store_->options_.scorer,
                                     store_->options_.policy, shard_->pows);
}

double CustomerStateStore::CustomerRef::last_stability() const {
  if (store_->options_.layout == StateLayout::kCompact) {
    return shard_->compact.cols.last_stability[slot_];
  }
  return shard_->slab[slot_].monitor.last_stability();
}

size_t CustomerStateStore::CustomerRef::MemoryUsage() const {
  if (store_->options_.layout == StateLayout::kCompact) {
    return kCompactScalarBytesPerSlot + sizeof(BlockSet) +
           shard_->compact.blocks[slot_].CapacityBytes();
  }
  const CustomerState& state = shard_->slab[slot_];
  return sizeof(CustomerState) + state.monitor.MemoryUsage();
}

// --------------------------------------------------------------------------
// ShardAccessor
// --------------------------------------------------------------------------

CustomerStateStore::CustomerRef
CustomerStateStore::ShardAccessor::GetOrCreate(retail::CustomerId customer) {
  Shard& shard = *store_->shards_[shard_index_];
  const auto it = shard.index.find(customer);
  if (it != shard.index.end()) {
    return CustomerRef(store_, &shard, it->second);
  }
  // First touch. Storage is appended first and the index entry published
  // last, with full rollback if any step throws (monitor copy, column
  // push_back, index rehash), so the shard never ends up with an index
  // entry pointing at a slot that was never built — the pre-compact code
  // inserted into the index first and a throwing monitor copy left a
  // dangling slot behind.
  static Failpoint* const create_failpoint =
      FailpointRegistry::Global().Get("serve.state.create");
  const bool compact = store_->options_.layout == StateLayout::kCompact;
  const size_t slot = ShardSize(shard, store_->options_.layout);
  try {
    if (create_failpoint->armed()) {
      // Creation has no Status channel, so the *error* action surfaces as
      // FailpointException too (Evaluate throws for *throw* on its own).
      if (!create_failpoint->Evaluate(customer).ok()) {
        throw FailpointException("serve.state.create");
      }
    }
    if (compact) {
      shard.compact.cols.AppendDefault(customer);
      shard.compact.blocks.emplace_back();
    } else {
      shard.slab.emplace_back(customer,
                              core::StabilityMonitor(store_->prototype_));
    }
    shard.index.emplace(customer, static_cast<uint32_t>(slot));
  } catch (...) {
    shard.compact.cols.Rollback(slot);
    if (shard.compact.blocks.size() > slot) shard.compact.blocks.pop_back();
    if (shard.slab.size() > slot) shard.slab.pop_back();
    shard.index.erase(customer);
    throw;
  }
  return CustomerRef(store_, &shard, slot);
}

Result<CustomerStateStore::CustomerRef>
CustomerStateStore::ShardAccessor::Find(retail::CustomerId customer) {
  Shard& shard = *store_->shards_[shard_index_];
  const auto it = shard.index.find(customer);
  if (it == shard.index.end()) {
    return Status::NotFound("customer " + std::to_string(customer) +
                            " is not held by the fleet");
  }
  return CustomerRef(store_, &shard, it->second);
}

size_t CustomerStateStore::ShardAccessor::size() const {
  return ShardSize(*store_->shards_[shard_index_], store_->options_.layout);
}

retail::CustomerId CustomerStateStore::ShardAccessor::CustomerAt(
    size_t slot) const {
  const Shard& shard = *store_->shards_[shard_index_];
  if (store_->options_.layout == StateLayout::kCompact) {
    return shard.compact.cols.customer[slot];
  }
  return shard.slab[slot].customer;
}

CustomerStateStore::CustomerRef CustomerStateStore::ShardAccessor::At(
    size_t slot) {
  return CustomerRef(store_, store_->shards_[shard_index_].get(), slot);
}

// --------------------------------------------------------------------------
// Snapshot frames + accounting
// --------------------------------------------------------------------------

void CustomerStateStore::SaveShardState(size_t shard,
                                        BinaryWriter* writer) const {
  Shard& s = *shards_[shard];
  std::lock_guard<std::mutex> lock(s.mutex);
  if (options_.layout == StateLayout::kCompact) {
    writer->WriteVarint(s.compact.cols.size());
    for (size_t slot = 0; slot < s.compact.cols.size(); ++slot) {
      writer->WriteVarint(s.compact.cols.customer[slot]);
      CompactTrackerRef ts(&s.compact, slot);
      CompactScorerRef ss(&s.compact, slot);
      CompactMonitorRef ms(&s.compact, slot);
      core::kernel::MonitorSaveState(ts, ss, ms, writer);
    }
    return;
  }
  writer->WriteVarint(s.slab.size());
  for (const CustomerState& state : s.slab) {
    writer->WriteVarint(state.customer);
    state.monitor.SaveState(writer);
  }
}

Status CustomerStateStore::LoadShardState(size_t shard,
                                          BinaryReader* reader) {
  Shard& s = *shards_[shard];
  std::lock_guard<std::mutex> lock(s.mutex);
  // All-or-nothing: parse into scratch storage and swap it in only once the
  // whole frame decoded, so a corrupt record cannot leave the shard
  // half-replaced (the pre-compact code cleared the shard up front and
  // returned mid-loop, stranding a partial load).
  std::unordered_map<retail::CustomerId, uint32_t> index;
  std::vector<CustomerState> slab;
  CompactStorage compact;
  CHURNLAB_ASSIGN_OR_RETURN(const uint64_t count, reader->ReadVarint());
  // The count is an untrusted length prefix: every customer needs at least
  // one byte of payload, so a count beyond the remaining bytes is
  // corruption — reject it before sizing any allocation from it.
  if (count > reader->remaining()) {
    return Status::InvalidArgument(
        "snapshot shard customer count (" + std::to_string(count) +
        ") exceeds remaining snapshot bytes (" +
        std::to_string(reader->remaining()) + ")");
  }
  const bool is_compact = options_.layout == StateLayout::kCompact;
  index.reserve(count);
  if (is_compact) {
    compact.cols.Reserve(count);
    compact.blocks.reserve(count);
  } else {
    slab.reserve(count);
  }
  for (uint64_t i = 0; i < count; ++i) {
    CHURNLAB_ASSIGN_OR_RETURN(const uint64_t id, reader->ReadVarint());
    if (id >= retail::kInvalidCustomer) {
      return Status::IOError("snapshot shard holds an invalid customer id");
    }
    const auto customer = static_cast<retail::CustomerId>(id);
    if (ShardOf(customer) != shard) {
      return Status::IOError(
          "snapshot customer hashed to a different shard; the snapshot was "
          "written with a different shard count or is corrupted");
    }
    if (!index.try_emplace(customer, static_cast<uint32_t>(i)).second) {
      return Status::IOError("snapshot shard repeats a customer id");
    }
    if (is_compact) {
      compact.cols.AppendDefault(customer);
      compact.blocks.emplace_back();
      CompactTrackerRef ts(&compact, i);
      CompactScorerRef ss(&compact, i);
      CompactMonitorRef ms(&compact, i);
      CHURNLAB_RETURN_NOT_OK(
          core::kernel::MonitorLoadState(ts, ss, ms, options_.policy,
                                         reader));
    } else {
      slab.emplace_back(customer, core::StabilityMonitor(prototype_));
      CHURNLAB_RETURN_NOT_OK(slab.back().monitor.LoadState(reader));
    }
  }
  s.index = std::move(index);
  s.slab = std::move(slab);
  s.compact = std::move(compact);
  return Status::OK();
}

StateMemoryStats CustomerStateStore::ShardMemoryUsage(size_t shard) const {
  const Shard& s = *shards_[shard];
  std::lock_guard<std::mutex> lock(s.mutex);
  StateMemoryStats stats;
  stats.index_bytes = IndexMemoryUsage(s.index);
  if (options_.layout == StateLayout::kCompact) {
    stats.customers = s.compact.cols.size();
    stats.scalar_bytes = s.compact.cols.CapacityBytes() +
                         s.compact.blocks.capacity() * sizeof(BlockSet);
    stats.block_bytes = s.compact.arena.bytes_in_use();
    stats.arena_reserved_bytes = s.compact.arena.bytes_reserved();
    stats.shared_bytes = s.pows.MemoryUsage();
  } else {
    stats.customers = s.slab.size();
    stats.scalar_bytes = s.slab.capacity() * sizeof(CustomerState);
    for (const CustomerState& state : s.slab) {
      stats.block_bytes += state.monitor.MemoryUsage();
    }
  }
  stats.total_bytes =
      stats.scalar_bytes + stats.index_bytes + stats.shared_bytes +
      std::max(stats.block_bytes, stats.arena_reserved_bytes);
  return stats;
}

StateMemoryStats CustomerStateStore::MemoryUsage() const {
  StateMemoryStats total;
  for (size_t shard = 0; shard < shards_.size(); ++shard) {
    total += ShardMemoryUsage(shard);
  }
  return total;
}

}  // namespace serve
}  // namespace churnlab
