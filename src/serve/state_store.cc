#include "serve/state_store.h"

#include <utility>

#include "common/macros.h"

namespace churnlab {
namespace serve {

/// One shard: a dense insertion-ordered slab plus an id -> slot index.
/// Heap-allocated (the mutex is immovable) so the store itself stays
/// movable, which Result<CustomerStateStore> requires.
struct Shard {
  mutable std::mutex mutex;
  std::vector<CustomerStateStore::CustomerState> slab;
  std::unordered_map<retail::CustomerId, size_t> index;
};

CustomerStateStore::CustomerStateStore(
    StateStoreOptions options, core::StabilityMonitor prototype,
    std::vector<std::unique_ptr<Shard>> shards)
    : options_(std::move(options)),
      prototype_(std::move(prototype)),
      shards_(std::move(shards)) {}

CustomerStateStore::~CustomerStateStore() = default;
CustomerStateStore::CustomerStateStore(CustomerStateStore&&) noexcept =
    default;
CustomerStateStore& CustomerStateStore::operator=(
    CustomerStateStore&&) noexcept = default;

Result<CustomerStateStore> CustomerStateStore::Make(
    StateStoreOptions options) {
  if (options.num_shards == 0) {
    return Status::InvalidArgument("num_shards must be >= 1");
  }
  CHURNLAB_ASSIGN_OR_RETURN(
      core::StabilityMonitor prototype,
      core::StabilityMonitor::Make(options.scorer, options.policy));
  std::vector<std::unique_ptr<Shard>> shards;
  shards.reserve(options.num_shards);
  for (size_t i = 0; i < options.num_shards; ++i) {
    shards.push_back(std::make_unique<Shard>());
  }
  return CustomerStateStore(std::move(options), std::move(prototype),
                            std::move(shards));
}

std::mutex& CustomerStateStore::ShardMutex(size_t shard) const {
  return shards_[shard]->mutex;
}

size_t CustomerStateStore::ShardCustomers(size_t shard) const {
  std::lock_guard<std::mutex> lock(shards_[shard]->mutex);
  return shards_[shard]->slab.size();
}

size_t CustomerStateStore::NumCustomers() const {
  size_t total = 0;
  for (const std::unique_ptr<Shard>& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    total += shard->slab.size();
  }
  return total;
}

CustomerStateStore::CustomerState&
CustomerStateStore::ShardAccessor::GetOrCreate(retail::CustomerId customer) {
  Shard& shard = *store_->shards_[shard_index_];
  const auto [it, inserted] = shard.index.try_emplace(customer,
                                                      shard.slab.size());
  if (inserted) {
    shard.slab.emplace_back(customer,
                            core::StabilityMonitor(store_->prototype_));
  }
  return shard.slab[it->second];
}

std::vector<CustomerStateStore::CustomerState>&
CustomerStateStore::ShardAccessor::states() {
  return store_->shards_[shard_index_]->slab;
}

const std::vector<CustomerStateStore::CustomerState>&
CustomerStateStore::ShardAccessor::states() const {
  return store_->shards_[shard_index_]->slab;
}

void CustomerStateStore::SaveShardState(size_t shard,
                                        BinaryWriter* writer) const {
  const Shard& s = *shards_[shard];
  std::lock_guard<std::mutex> lock(s.mutex);
  writer->WriteVarint(s.slab.size());
  for (const CustomerState& state : s.slab) {
    writer->WriteVarint(state.customer);
    state.monitor.SaveState(writer);
  }
}

Status CustomerStateStore::LoadShardState(size_t shard,
                                          BinaryReader* reader) {
  Shard& s = *shards_[shard];
  std::lock_guard<std::mutex> lock(s.mutex);
  s.slab.clear();
  s.index.clear();
  CHURNLAB_ASSIGN_OR_RETURN(const uint64_t count, reader->ReadVarint());
  // The count is an untrusted length prefix: every customer needs at least
  // one byte of payload, so a count beyond the remaining bytes is
  // corruption — reject it before sizing any allocation from it.
  if (count > reader->remaining()) {
    return Status::InvalidArgument(
        "snapshot shard customer count (" + std::to_string(count) +
        ") exceeds remaining snapshot bytes (" +
        std::to_string(reader->remaining()) + ")");
  }
  s.slab.reserve(count);
  s.index.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    CHURNLAB_ASSIGN_OR_RETURN(const uint64_t id, reader->ReadVarint());
    if (id >= retail::kInvalidCustomer) {
      return Status::IOError("snapshot shard holds an invalid customer id");
    }
    const auto customer = static_cast<retail::CustomerId>(id);
    if (ShardOf(customer) != shard) {
      return Status::IOError(
          "snapshot customer hashed to a different shard; the snapshot was "
          "written with a different shard count or is corrupted");
    }
    if (!s.index.try_emplace(customer, s.slab.size()).second) {
      return Status::IOError("snapshot shard repeats a customer id");
    }
    s.slab.emplace_back(customer, core::StabilityMonitor(prototype_));
    CHURNLAB_RETURN_NOT_OK(s.slab.back().monitor.LoadState(reader));
  }
  return Status::OK();
}

}  // namespace serve
}  // namespace churnlab
