#include "serve/journal.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <utility>

#include "common/binary_io.h"
#include "common/failpoint.h"
#include "common/macros.h"
#include "obs/metrics.h"
#include "obs/structured_log.h"
#include "obs/trace.h"

namespace churnlab {
namespace serve {

namespace {

/// Segment header magic. The trailing '1' doubles as the format version a
/// human sees in hexdumps; the varint version after it is what code checks.
constexpr char kSegmentMagic[] = "CHLJSEG1";
constexpr char kCheckpointMagic[] = "CHLJCKPT";
constexpr size_t kJournalMagicSize = 8;
constexpr uint64_t kJournalVersion = 1;
constexpr char kCheckpointName[] = "journal.ckpt";
constexpr char kCheckpointTmpName[] = "journal.ckpt.tmp";

/// Sanity bounds on untrusted on-disk counts, well above anything the
/// coalescer produces but small enough to stop a corrupted varint from
/// sizing an allocation.
constexpr uint64_t kMaxFrameReceipts = 1ull << 24;
constexpr uint64_t kMaxReceiptItems = 1ull << 20;

struct JournalMetrics {
  obs::Counter* appended_frames;
  obs::Counter* appended_bytes;
  obs::Counter* checkpoints;
  obs::Counter* truncated_segments;
  obs::Counter* recovered_frames;
  obs::Counter* recovered_receipts;
  obs::Counter* discarded_tail_frames;
  obs::Histogram* fsync_us;
};

const JournalMetrics& Metrics() {
  static const JournalMetrics metrics = [] {
    obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
    return JournalMetrics{
        registry.GetCounter("churnlab.journal.appended_frames"),
        registry.GetCounter("churnlab.journal.appended_bytes"),
        registry.GetCounter("churnlab.journal.checkpoints"),
        registry.GetCounter("churnlab.journal.truncated_segments"),
        registry.GetCounter("churnlab.journal.recovered_frames"),
        registry.GetCounter("churnlab.journal.recovered_receipts"),
        registry.GetCounter("churnlab.journal.discarded_tail_frames"),
        registry.GetHistogram("churnlab.journal.fsync_us",
                              obs::HistogramOptions::ExponentialLatency()),
    };
  }();
  return metrics;
}

Status ErrnoStatus(const std::string& what, const std::string& path) {
  return Status::IOError(what + " '" + path + "': " + std::strerror(errno));
}

/// write(2) the whole buffer, riding out EINTR and short writes.
Status WriteAll(int fd, const char* data, size_t size,
                const std::string& path) {
  while (size > 0) {
    const ssize_t n = ::write(fd, data, size);
    if (n < 0) {
      if (errno == EINTR) continue;
      return ErrnoStatus("cannot write journal", path);
    }
    data += n;
    size -= static_cast<size_t>(n);
  }
  return Status::OK();
}

Status FsyncFd(int fd, const std::string& path) {
  obs::ScopedLatency latency(Metrics().fsync_us);
  if (::fsync(fd) != 0) return ErrnoStatus("cannot fsync", path);
  return Status::OK();
}

/// Serializes one frame payload: the batch's first sequence number, then
/// the receipts.
void WriteFramePayload(uint64_t first_sequence,
                       std::span<const retail::Receipt> receipts,
                       BinaryWriter* payload) {
  payload->WriteVarint(first_sequence);
  payload->WriteVarint(receipts.size());
  for (const retail::Receipt& receipt : receipts) {
    payload->WriteVarint(receipt.customer);
    payload->WriteSignedVarint(receipt.day);
    payload->WriteDouble(receipt.spend);
    payload->WriteVarint(receipt.items.size());
    for (const retail::ItemId item : receipt.items) {
      payload->WriteVarint(item);
    }
  }
}

Status ParseFramePayload(std::string payload, JournalFrame* frame) {
  BinaryReader reader(std::move(payload));
  CHURNLAB_ASSIGN_OR_RETURN(frame->first_sequence, reader.ReadVarint());
  CHURNLAB_ASSIGN_OR_RETURN(const uint64_t count, reader.ReadVarint());
  if (count > kMaxFrameReceipts) {
    return Status::IOError("journal frame receipt count is implausible");
  }
  frame->receipts.clear();
  frame->receipts.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    retail::Receipt receipt;
    CHURNLAB_ASSIGN_OR_RETURN(const uint64_t customer, reader.ReadVarint());
    receipt.customer = static_cast<retail::CustomerId>(customer);
    CHURNLAB_ASSIGN_OR_RETURN(const int64_t day, reader.ReadSignedVarint());
    receipt.day = static_cast<retail::Day>(day);
    CHURNLAB_ASSIGN_OR_RETURN(receipt.spend, reader.ReadDouble());
    CHURNLAB_ASSIGN_OR_RETURN(const uint64_t items, reader.ReadVarint());
    if (items > kMaxReceiptItems) {
      return Status::IOError("journal receipt item count is implausible");
    }
    receipt.items.reserve(items);
    for (uint64_t j = 0; j < items; ++j) {
      CHURNLAB_ASSIGN_OR_RETURN(const uint64_t item, reader.ReadVarint());
      receipt.items.push_back(static_cast<retail::ItemId>(item));
    }
    frame->receipts.push_back(std::move(receipt));
  }
  if (!reader.AtEnd()) {
    return Status::IOError("journal frame payload has trailing bytes");
  }
  return Status::OK();
}

/// Parses the checkpoint record. The record is tiny and renamed into place
/// atomically, so any parse or CRC failure means real corruption: DataLoss.
Status ParseCheckpoint(const std::string& path, uint64_t* watermark,
                       SnapshotRef* ref) {
  CHURNLAB_ASSIGN_OR_RETURN(BinaryReader reader,
                            BinaryReader::OpenFile(path));
  const Status bad =
      Status::DataLoss("journal checkpoint '" + path + "' is corrupted");
  Result<std::string> magic = reader.ReadBytes(kJournalMagicSize);
  if (!magic.ok() ||
      *magic != std::string_view(kCheckpointMagic, kJournalMagicSize)) {
    return bad;
  }
  const Result<uint64_t> size = reader.ReadVarint();
  if (!size.ok()) return bad;
  const Result<uint64_t> crc = reader.ReadVarint();
  if (!crc.ok()) return bad;
  Result<std::string> payload = reader.ReadBytes(*size);
  if (!payload.ok() || !reader.AtEnd() ||
      Crc32(payload->data(), payload->size()) != *crc) {
    return bad;
  }
  BinaryReader body(std::move(*payload));
  const Result<uint64_t> version = body.ReadVarint();
  if (!version.ok() || *version != kJournalVersion) return bad;
  const Result<uint64_t> mark = body.ReadVarint();
  const Result<uint64_t> kind = body.ReadVarint();
  const Result<uint64_t> snapshot_size = body.ReadVarint();
  const Result<uint64_t> snapshot_crc = body.ReadVarint();
  if (!mark.ok() || !kind.ok() || !snapshot_size.ok() ||
      !snapshot_crc.ok() || !body.AtEnd() ||
      *kind > static_cast<uint64_t>(SnapshotRef::Kind::kGeneration)) {
    return bad;
  }
  *watermark = *mark;
  ref->kind = static_cast<SnapshotRef::Kind>(*kind);
  ref->size = *snapshot_size;
  ref->crc = static_cast<uint32_t>(*snapshot_crc);
  return Status::OK();
}

struct SegmentFile {
  uint64_t number = 0;
  std::string path;
};

}  // namespace

Result<FsyncPolicy> ParseFsyncPolicy(std::string_view text) {
  if (text == "always") return FsyncPolicy::kAlways;
  if (text == "batch") return FsyncPolicy::kBatch;
  if (text == "none") return FsyncPolicy::kNone;
  return Status::InvalidArgument("unknown fsync policy '" +
                                 std::string(text) +
                                 "' (want always|batch|none)");
}

std::string_view FsyncPolicyToString(FsyncPolicy policy) {
  switch (policy) {
    case FsyncPolicy::kAlways:
      return "always";
    case FsyncPolicy::kBatch:
      return "batch";
    case FsyncPolicy::kNone:
      return "none";
  }
  return "unknown";
}

IngestJournal::IngestJournal(JournalOptions options)
    : options_(std::move(options)) {}

IngestJournal::IngestJournal(IngestJournal&& other) noexcept
    : options_(std::move(other.options_)),
      active_segment_(other.active_segment_),
      fd_(other.fd_),
      dir_fd_(other.dir_fd_),
      active_segment_bytes_(other.active_segment_bytes_),
      next_sequence_(other.next_sequence_),
      active_segment_has_frames_(other.active_segment_has_frames_),
      dirty_(other.dirty_),
      oldest_segment_(other.oldest_segment_),
      sealed_segment_ends_(std::move(other.sealed_segment_ends_)) {
  other.fd_ = -1;
  other.dir_fd_ = -1;
}

IngestJournal& IngestJournal::operator=(IngestJournal&& other) noexcept {
  if (this != &other) {
    Close();
    options_ = std::move(other.options_);
    active_segment_ = other.active_segment_;
    fd_ = other.fd_;
    dir_fd_ = other.dir_fd_;
    active_segment_bytes_ = other.active_segment_bytes_;
    next_sequence_ = other.next_sequence_;
    active_segment_has_frames_ = other.active_segment_has_frames_;
    dirty_ = other.dirty_;
    oldest_segment_ = other.oldest_segment_;
    sealed_segment_ends_ = std::move(other.sealed_segment_ends_);
    other.fd_ = -1;
    other.dir_fd_ = -1;
  }
  return *this;
}

IngestJournal::~IngestJournal() { Close(); }

void IngestJournal::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  if (dir_fd_ >= 0) {
    ::close(dir_fd_);
    dir_fd_ = -1;
  }
}

std::string IngestJournal::SegmentPath(uint64_t segment) const {
  char name[32];
  std::snprintf(name, sizeof(name), "seg-%09llu.chlj",
                static_cast<unsigned long long>(segment));
  return options_.directory + "/" + name;
}

Status IngestJournal::SyncDirectory() {
  if (options_.fsync == FsyncPolicy::kNone || dir_fd_ < 0) {
    return Status::OK();
  }
  if (::fsync(dir_fd_) != 0) {
    return ErrnoStatus("cannot fsync journal directory", options_.directory);
  }
  return Status::OK();
}

Status IngestJournal::OpenActiveSegment(uint64_t segment,
                                        uint64_t expected_size) {
  const std::string path = SegmentPath(segment);
  const int fd = ::open(path.c_str(), O_WRONLY | O_APPEND);
  if (fd < 0) return ErrnoStatus("cannot reopen journal segment", path);
  fd_ = fd;
  active_segment_ = segment;
  active_segment_bytes_ = expected_size;
  return Status::OK();
}

Status IngestJournal::RotateSegment() {
  if (fd_ >= 0) {
    // Seal the outgoing segment: flush it, remember its end sequence so
    // Checkpoint knows when it may be unlinked.
    if (dirty_ && options_.fsync != FsyncPolicy::kNone) {
      CHURNLAB_RETURN_NOT_OK(FsyncFd(fd_, SegmentPath(active_segment_)));
      dirty_ = false;
    }
    ::close(fd_);
    fd_ = -1;
    sealed_segment_ends_.emplace_back(active_segment_, next_sequence_);
  }
  const uint64_t segment = active_segment_ + 1;
  const std::string path = SegmentPath(segment);
  const int fd =
      ::open(path.c_str(), O_WRONLY | O_CREAT | O_EXCL | O_APPEND, 0644);
  if (fd < 0) return ErrnoStatus("cannot create journal segment", path);
  BinaryWriter header;
  header.WriteBytes(kSegmentMagic, kJournalMagicSize);
  header.WriteVarint(kJournalVersion);
  header.WriteVarint(segment);
  const Status written =
      WriteAll(fd, header.buffer().data(), header.buffer().size(), path);
  if (!written.ok()) {
    ::close(fd);
    return written;
  }
  fd_ = fd;
  active_segment_ = segment;
  active_segment_bytes_ = header.buffer().size();
  active_segment_has_frames_ = false;
  if (oldest_segment_ == 0) oldest_segment_ = segment;
  // Make the new directory entry durable before frames land in it.
  return SyncDirectory();
}

Status IngestJournal::Append(uint64_t first_sequence,
                             std::span<const retail::Receipt> receipts) {
  if (options_.read_only) {
    return Status::FailedPrecondition("journal is open read-only");
  }
  if (first_sequence != next_sequence_) {
    return Status::InvalidArgument(
        "journal append out of sequence: frame starts at " +
        std::to_string(first_sequence) + ", journal expects " +
        std::to_string(next_sequence_));
  }
  if (receipts.empty()) return Status::OK();
  if (fd_ < 0 || active_segment_bytes_ >= options_.max_segment_bytes) {
    CHURNLAB_RETURN_NOT_OK(RotateSegment());
  }
  BinaryWriter payload;
  WriteFramePayload(first_sequence, receipts, &payload);
  BinaryWriter frame;
  frame.WriteVarint(payload.buffer().size());
  frame.WriteVarint(Crc32(payload.buffer().data(), payload.buffer().size()));
  frame.WriteBytes(payload.buffer().data(), payload.buffer().size());
  std::string bytes = frame.buffer();
  // The failpoint fires after the CRC was computed from the pristine
  // payload: corrupt-bytes models a torn/bit-rotted on-disk frame recovery
  // must detect, abort models a crash landing exactly before the write.
  static Failpoint* const append_failpoint =
      FailpointRegistry::Global().Get("serve.journal.append");
  if (append_failpoint->armed()) {
    CHURNLAB_RETURN_NOT_OK(
        append_failpoint->CorruptBytes(&bytes, first_sequence));
  }
  const std::string path = SegmentPath(active_segment_);
  CHURNLAB_RETURN_NOT_OK(WriteAll(fd_, bytes.data(), bytes.size(), path));
  active_segment_bytes_ += bytes.size();
  active_segment_has_frames_ = true;
  next_sequence_ = first_sequence + receipts.size();
  dirty_ = true;
  Metrics().appended_frames->Increment();
  Metrics().appended_bytes->Increment(bytes.size());
  if (options_.fsync == FsyncPolicy::kAlways) {
    CHURNLAB_RETURN_NOT_OK(Sync());
  }
  return Status::OK();
}

Status IngestJournal::Sync() {
  if (options_.read_only) {
    return Status::FailedPrecondition("journal is open read-only");
  }
  if (!dirty_ || options_.fsync == FsyncPolicy::kNone) return Status::OK();
  CHURNLAB_FAILPOINT("serve.journal.fsync");
  CHURNLAB_RETURN_NOT_OK(FsyncFd(fd_, SegmentPath(active_segment_)));
  dirty_ = false;
  return Status::OK();
}

Status IngestJournal::WriteCheckpointRecord(uint64_t watermark,
                                            const SnapshotRef& ref) {
  BinaryWriter body;
  body.WriteVarint(kJournalVersion);
  body.WriteVarint(watermark);
  body.WriteVarint(static_cast<uint64_t>(ref.kind));
  body.WriteVarint(ref.size);
  body.WriteVarint(ref.crc);
  BinaryWriter record;
  record.WriteBytes(kCheckpointMagic, kJournalMagicSize);
  record.WriteVarint(body.buffer().size());
  record.WriteVarint(Crc32(body.buffer().data(), body.buffer().size()));
  record.WriteBytes(body.buffer().data(), body.buffer().size());

  const std::string tmp = options_.directory + "/" + kCheckpointTmpName;
  const std::string final_path = options_.directory + "/" + kCheckpointName;
  const int fd =
      ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return ErrnoStatus("cannot create checkpoint", tmp);
  Status st =
      WriteAll(fd, record.buffer().data(), record.buffer().size(), tmp);
  if (st.ok() && options_.fsync != FsyncPolicy::kNone) {
    st = FsyncFd(fd, tmp);
  }
  ::close(fd);
  if (!st.ok()) return st;
  if (::rename(tmp.c_str(), final_path.c_str()) != 0) {
    return ErrnoStatus("cannot install checkpoint", final_path);
  }
  return SyncDirectory();
}

Status IngestJournal::Checkpoint(uint64_t watermark,
                                 const SnapshotRef& ref) {
  CHURNLAB_SPAN("serve.journal.checkpoint");
  if (options_.read_only) {
    return Status::FailedPrecondition("journal is open read-only");
  }
  if (watermark > next_sequence_) {
    return Status::InvalidArgument(
        "checkpoint watermark " + std::to_string(watermark) +
        " is beyond the journal's next sequence " +
        std::to_string(next_sequence_));
  }
  if (ref.kind == SnapshotRef::Kind::kNone && watermark > 0) {
    return Status::InvalidArgument(
        "a checkpoint with a nonzero watermark needs a snapshot reference");
  }
  // Frames at or above the watermark must be durable before the checkpoint
  // claims everything below it lives in the snapshot (truncation follows).
  CHURNLAB_RETURN_NOT_OK(Sync());
  // Crash window the chaos harness aims at: the snapshot generation is
  // already on disk, but the checkpoint record naming it is not.
  CHURNLAB_FAILPOINT("serve.journal.checkpoint");
  CHURNLAB_RETURN_NOT_OK(WriteCheckpointRecord(watermark, ref));
  Metrics().checkpoints->Increment();

  // Drop segments whose whole range is below the watermark: first rotate
  // away the active segment when it is fully covered (so the newest bytes
  // keep living in a fresh segment), then unlink covered sealed segments.
  if (fd_ >= 0 && active_segment_has_frames_ && next_sequence_ <= watermark) {
    CHURNLAB_RETURN_NOT_OK(RotateSegment());
  }
  uint64_t unlinked = 0;
  std::vector<std::pair<uint64_t, uint64_t>> retained;
  for (const auto& [segment, end_sequence] : sealed_segment_ends_) {
    if (end_sequence <= watermark) {
      const std::string path = SegmentPath(segment);
      if (::unlink(path.c_str()) != 0 && errno != ENOENT) {
        return ErrnoStatus("cannot unlink journal segment", path);
      }
      ++unlinked;
    } else {
      retained.push_back({segment, end_sequence});
    }
  }
  sealed_segment_ends_ = std::move(retained);
  oldest_segment_ = sealed_segment_ends_.empty()
                        ? active_segment_
                        : sealed_segment_ends_.front().first;
  if (unlinked > 0) {
    Metrics().truncated_segments->Increment(unlinked);
    CHURNLAB_RETURN_NOT_OK(SyncDirectory());
  }
  return Status::OK();
}

Result<IngestJournal> IngestJournal::Open(JournalOptions options,
                                          JournalRecovery* recovery) {
  CHURNLAB_SPAN("serve.journal.open");
  if (options.directory.empty()) {
    return Status::InvalidArgument("journal directory must not be empty");
  }
  if (options.max_segment_bytes == 0) {
    return Status::InvalidArgument("journal max_segment_bytes must be >= 1");
  }
  std::error_code ec;
  std::filesystem::create_directories(options.directory, ec);
  if (ec) {
    return Status::IOError("cannot create journal directory '" +
                           options.directory + "': " + ec.message());
  }

  IngestJournal journal(std::move(options));
  if (!journal.options_.read_only) {
    journal.dir_fd_ =
        ::open(journal.options_.directory.c_str(), O_RDONLY | O_DIRECTORY);
    if (journal.dir_fd_ < 0) {
      return ErrnoStatus("cannot open journal directory",
                         journal.options_.directory);
    }
  }

  // Enumerate segments (sorted by number) and the checkpoint.
  std::vector<SegmentFile> segments;
  bool have_checkpoint = false;
  for (const auto& entry :
       std::filesystem::directory_iterator(journal.options_.directory, ec)) {
    const std::string name = entry.path().filename().string();
    if (name == kCheckpointName) {
      have_checkpoint = true;
      continue;
    }
    unsigned long long number = 0;
    char trailer[6] = {0};
    if (std::sscanf(name.c_str(), "seg-%9llu%5s", &number, trailer) == 2 &&
        std::string_view(trailer) == ".chlj" && number > 0) {
      segments.push_back({number, entry.path().string()});
    }
  }
  if (ec) {
    return Status::IOError("cannot list journal directory '" +
                           journal.options_.directory +
                           "': " + ec.message());
  }
  std::sort(segments.begin(), segments.end(),
            [](const SegmentFile& a, const SegmentFile& b) {
              return a.number < b.number;
            });

  JournalRecovery scratch;
  JournalRecovery* out = recovery != nullptr ? recovery : &scratch;
  *out = JournalRecovery();

  if (have_checkpoint) {
    CHURNLAB_RETURN_NOT_OK(
        ParseCheckpoint(journal.options_.directory + "/" + kCheckpointName,
                        &out->watermark, &out->snapshot));
  }
  if ((recovery == nullptr || !journal.options_.recover) &&
      (!segments.empty() || have_checkpoint)) {
    return Status::FailedPrecondition(
        "journal '" + journal.options_.directory +
        "' already holds state; pass --recover to replay it or remove the "
        "directory to start fresh");
  }

  // Scan every segment in order. Only the newest segment may end in a torn
  // or CRC-failing tail (a crash mid-append); anything else is DataLoss.
  uint64_t running_next = 0;
  bool have_frames = false;
  uint64_t last_good_end = 0;  // byte offset after the last intact frame
  for (size_t i = 0; i < segments.size(); ++i) {
    const SegmentFile& segment = segments[i];
    const bool last_segment = i + 1 == segments.size();
    if (i > 0 && segment.number != segments[i - 1].number + 1) {
      return Status::DataLoss("journal segment numbering has a gap before '" +
                              segment.path + "'");
    }
    CHURNLAB_ASSIGN_OR_RETURN(BinaryReader reader,
                              BinaryReader::OpenFile(segment.path));
    const uint64_t total = reader.remaining();
    const auto offset = [&] { return total - reader.remaining(); };
    const Status bad_header = Status::DataLoss(
        "journal segment '" + segment.path + "' has a corrupted header");
    Result<std::string> magic = reader.ReadBytes(kJournalMagicSize);
    if (!magic.ok() ||
        *magic != std::string_view(kSegmentMagic, kJournalMagicSize)) {
      return bad_header;
    }
    const Result<uint64_t> version = reader.ReadVarint();
    if (!version.ok() || *version != kJournalVersion) return bad_header;
    const Result<uint64_t> number = reader.ReadVarint();
    if (!number.ok() || *number != segment.number) return bad_header;

    uint64_t good_end = offset();
    uint64_t segment_frames = 0;
    Status torn = Status::OK();
    while (!reader.AtEnd()) {
      JournalFrame frame;
      Status frame_status = Status::OK();
      const Result<uint64_t> size = reader.ReadVarint();
      const Result<uint64_t> crc =
          size.ok() ? reader.ReadVarint() : Result<uint64_t>(size.status());
      if (!crc.ok()) {
        frame_status = crc.status();
      } else {
        Result<std::string> payload = reader.ReadBytes(*size);
        if (!payload.ok()) {
          frame_status = payload.status();
        } else if (Crc32(payload->data(), payload->size()) != *crc) {
          frame_status =
              Status::IOError("journal frame failed its CRC check");
        } else {
          frame_status = ParseFramePayload(std::move(*payload), &frame);
        }
      }
      if (!frame_status.ok()) {
        if (!last_segment) {
          return Status::DataLoss(
              "journal segment '" + segment.path +
              "' has a corrupted interior frame: " + frame_status.message());
        }
        torn = frame_status;
        break;
      }
      if (have_frames && frame.first_sequence != running_next) {
        return Status::DataLoss(
            "journal sequence gap in '" + segment.path + "': frame starts at " +
            std::to_string(frame.first_sequence) + ", expected " +
            std::to_string(running_next));
      }
      have_frames = true;
      running_next = frame.end_sequence();
      good_end = offset();
      ++segment_frames;
      out->frames.push_back(std::move(frame));
      ++out->frames_scanned;
    }
    ++out->segments_scanned;
    if (!torn.ok()) {
      // Torn tail of the newest segment: discard it, truncate the file at
      // the last intact frame, and keep appending from there.
      ++out->discarded_tail_frames;
      out->discarded_tail_bytes += total - good_end;
      Metrics().discarded_tail_frames->Increment();
      obs::LogEvent(LogLevel::kWarning, "journal_torn_tail", __FILE__,
                    __LINE__)
          .Str("segment", segment.path)
          .Uint("discarded_bytes", total - good_end)
          .Str("reason", torn.message());
      if (!journal.options_.read_only &&
          ::truncate(segment.path.c_str(),
                     static_cast<off_t>(good_end)) != 0) {
        return ErrnoStatus("cannot truncate torn journal tail",
                           segment.path);
      }
      last_good_end = good_end;
    } else {
      last_good_end = total;
    }

    if (last_segment) {
      journal.active_segment_has_frames_ = segment_frames > 0;
    } else {
      journal.sealed_segment_ends_.emplace_back(segment.number,
                                                running_next);
    }
  }

  // A journal that was never checkpointed must start at sequence 0 — a
  // nonzero start would mean earlier acknowledged receipts are nowhere.
  if (have_frames && out->watermark == 0 && !out->frames.empty() &&
      out->frames.front().first_sequence != 0) {
    return Status::DataLoss(
        "journal begins at sequence " +
        std::to_string(out->frames.front().first_sequence) +
        " but no checkpoint covers the receipts before it");
  }

  // Trim frames fully below the watermark (left behind when a crash landed
  // between the checkpoint record and segment truncation); replaying them
  // would double-apply receipts the snapshot already holds.
  {
    std::vector<JournalFrame> kept;
    for (JournalFrame& frame : out->frames) {
      if (frame.end_sequence() <= out->watermark) continue;
      if (frame.first_sequence < out->watermark) {
        return Status::DataLoss(
            "journal checkpoint watermark " +
            std::to_string(out->watermark) +
            " splits a frame starting at sequence " +
            std::to_string(frame.first_sequence));
      }
      kept.push_back(std::move(frame));
    }
    out->frames = std::move(kept);
  }
  if (!out->frames.empty() &&
      out->frames.front().first_sequence != out->watermark) {
    return Status::DataLoss(
        "journal frames resume at sequence " +
        std::to_string(out->frames.front().first_sequence) +
        " but the checkpoint watermark is " +
        std::to_string(out->watermark));
  }

  out->next_sequence = out->frames.empty()
                           ? std::max(out->watermark, running_next)
                           : out->frames.back().end_sequence();
  journal.next_sequence_ = out->next_sequence;

  if (!segments.empty()) {
    const SegmentFile& last = segments.back();
    journal.oldest_segment_ = segments.front().number;
    journal.active_segment_ = last.number;
    if (!journal.options_.read_only) {
      CHURNLAB_RETURN_NOT_OK(
          journal.OpenActiveSegment(last.number, last_good_end));
    }
  }

  uint64_t recovered_receipts = 0;
  for (const JournalFrame& frame : out->frames) {
    recovered_receipts += frame.receipts.size();
  }
  if (out->frames_scanned > 0 || out->watermark > 0) {
    Metrics().recovered_frames->Increment(out->frames.size());
    Metrics().recovered_receipts->Increment(recovered_receipts);
    obs::LogEvent(LogLevel::kInfo, "journal_recovered", __FILE__, __LINE__)
        .Str("directory", journal.options_.directory)
        .Uint("watermark", out->watermark)
        .Uint("frames", out->frames.size())
        .Uint("receipts", recovered_receipts)
        .Uint("next_sequence", out->next_sequence)
        .Uint("discarded_tail_frames", out->discarded_tail_frames);
  }
  return journal;
}

}  // namespace serve
}  // namespace churnlab
