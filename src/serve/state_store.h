#ifndef CHURNLAB_SERVE_STATE_STORE_H_
#define CHURNLAB_SERVE_STATE_STORE_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/binary_io.h"
#include "common/result.h"
#include "core/monitor.h"
#include "retail/types.h"

namespace churnlab {
namespace serve {

/// Stable 64-bit mix (the murmur3 finalizer). Used instead of std::hash so
/// shard assignment — and therefore snapshot layout and alert grouping — is
/// identical across runs, standard libraries, and platforms.
inline uint64_t StableHash(uint64_t x) {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ULL;
  x ^= x >> 33;
  return x;
}

struct Shard;

/// How a shard stores customer state in memory. The layout is invisible on
/// the wire: both run the identical kernels of core/state_kernel.h, so
/// alerts and snapshot bytes are bit-identical across layouts, and either
/// layout loads snapshots written by the other.
enum class StateLayout : uint8_t {
  /// Structure-of-arrays scalar columns plus arena-backed blocks for the
  /// variable-size per-symbol counters, with one shared power-table cache
  /// per shard. Roughly halves bytes/customer versus kHeap and makes shard
  /// byte accounting O(1).
  kCompact = 0,
  /// One heap-allocated StabilityMonitor object per customer (the original
  /// layout). Kept for A/B comparison and as the reference semantics.
  kHeap = 1,
};

/// "compact" / "heap".
std::string_view StateLayoutToString(StateLayout layout);
/// Inverse of StateLayoutToString; InvalidArgument on anything else.
Result<StateLayout> ParseStateLayout(std::string_view text);

struct StateStoreOptions {
  core::OnlineStabilityScorer::Options scorer;
  core::MonitorPolicy policy;
  /// Number of independent shards (>= 1). Each shard has its own mutex and
  /// dense customer slab; customers are assigned by
  /// StableHash(customer_id) % num_shards.
  size_t num_shards = 16;
  /// In-memory representation of per-customer state (see StateLayout).
  StateLayout layout = StateLayout::kCompact;
};

/// Byte accounting for one shard, or — summed with operator+= — a whole
/// store/fleet. All figures are capacities actually held from the heap, not
/// logical sizes.
struct StateMemoryStats {
  size_t customers = 0;
  /// Fixed-size per-customer storage: SoA column capacity (compact) or the
  /// monitor slab capacity (heap), block-handle table included.
  size_t scalar_bytes = 0;
  /// Live variable-size storage: arena blocks in use (compact) or the sum
  /// of per-monitor heap vectors (heap).
  size_t block_bytes = 0;
  /// Arena chunk bytes held from the OS (compact only; >= block_bytes, the
  /// difference is freelist + bump slack). 0 for the heap layout.
  size_t arena_reserved_bytes = 0;
  /// Estimated id -> slot hash index footprint.
  size_t index_bytes = 0;
  /// Per-shard shared tables (the interned power caches). 0 for the heap
  /// layout, whose monitors each carry private tables inside block_bytes.
  size_t shared_bytes = 0;
  /// scalar + index + shared + max(block, arena_reserved): what the layout
  /// actually costs, counting arena slack against the compact layout.
  size_t total_bytes = 0;

  StateMemoryStats& operator+=(const StateMemoryStats& other) {
    customers += other.customers;
    scalar_bytes += other.scalar_bytes;
    block_bytes += other.block_bytes;
    arena_reserved_bytes += other.arena_reserved_bytes;
    index_bytes += other.index_bytes;
    shared_bytes += other.shared_bytes;
    total_bytes += other.total_bytes;
    return *this;
  }
};

/// \brief Sharded owner of per-customer streaming state.
///
/// Each customer is one logical StabilityMonitor (an OnlineStabilityScorer
/// plus alerting policy), physically stored per StateLayout. Customers live
/// in `num_shards` shards, each with one mutex, an id -> slot index, and
/// slot storage in creation order. The ScoringFleet partitions batches by
/// shard and processes each shard sequentially under its lock, so two
/// receipts of one customer can never race.
///
/// Determinism: slot order is creation order, which the fleet makes
/// batch-order within a shard; snapshots iterate slots in order, so the
/// byte stream is independent of thread count and of the layout.
class CustomerStateStore {
 public:
  /// One customer of the kHeap layout.
  struct CustomerState {
    retail::CustomerId customer = retail::kInvalidCustomer;
    core::StabilityMonitor monitor;

    CustomerState(retail::CustomerId id, core::StabilityMonitor m)
        : customer(id), monitor(std::move(m)) {}
  };

  /// Validates the scorer options and shard count, per the library-wide
  /// `static Result<T> Make(Options)` convention (docs/API.md).
  static Result<CustomerStateStore> Make(StateStoreOptions options);

  ~CustomerStateStore();
  CustomerStateStore(CustomerStateStore&&) noexcept;
  CustomerStateStore& operator=(CustomerStateStore&&) noexcept;

  size_t num_shards() const { return shards_.size(); }
  size_t ShardOf(retail::CustomerId customer) const {
    return StableHash(customer) % shards_.size();
  }

  /// Total customers across all shards. Locks each shard in turn; do not
  /// call from inside WithShard.
  size_t NumCustomers() const;

  /// Customers held by one shard. Locks that shard; do not call from
  /// inside WithShard on the same shard.
  size_t ShardCustomers(size_t shard) const;

  /// Layout-agnostic handle to one customer's state inside a locked shard.
  /// Valid only while the shard lock is held (i.e. inside the WithShard
  /// callback that produced it) and until the next GetOrCreate on the
  /// shard.
  class CustomerRef {
   public:
    retail::CustomerId customer() const;

    /// Feeds one observation; returns alerts for every window that closed.
    /// Same contract as StabilityMonitor::Observe.
    Result<std::vector<core::StabilityAlert>> Observe(
        retail::Day day, const std::vector<core::Symbol>& symbols);
    /// Closes windows up to the one containing `day` without a purchase.
    Result<std::vector<core::StabilityAlert>> AdvanceTo(retail::Day day);
    /// End-of-stream flush; no-op for a never-fed customer.
    Result<std::vector<core::StabilityAlert>> Finish();

    /// Stability of the most recently closed window (1.0 before any).
    double last_stability() const;

    /// Bytes attributable to this customer: per-slot scalar footprint plus
    /// live block capacities (compact), or sizeof(CustomerState) plus the
    /// monitor's heap usage (heap). Shared per-shard tables excluded.
    size_t MemoryUsage() const;

   private:
    friend class CustomerStateStore;
    CustomerRef(CustomerStateStore* store, Shard* shard, size_t slot)
        : store_(store), shard_(shard), slot_(slot) {}

    CustomerStateStore* store_;
    Shard* shard_;
    size_t slot_;
  };

  /// Mutable view of one locked shard, handed to WithShard callbacks.
  class ShardAccessor {
   public:
    /// The customer's state, created on first touch. Creation is
    /// exception-safe: storage is appended first and the index entry
    /// published last, with full rollback if any step throws, so the shard
    /// can never hold an index entry pointing at a slot that was never
    /// built. Hits the "serve.state.create" failpoint on the creation
    /// path (injected faults surface as FailpointException).
    CustomerRef GetOrCreate(retail::CustomerId customer);

    /// Handle to an existing customer's state; NotFound without creating
    /// one (the read-only counterpart of GetOrCreate, used by the network
    /// front end's GET /v1/customers/{id}).
    Result<CustomerRef> Find(retail::CustomerId customer);

    /// Customers in this shard.
    size_t size() const;
    /// The id stored at `slot` (creation order, slot < size()).
    retail::CustomerId CustomerAt(size_t slot) const;
    /// Handle to the state at `slot` (creation order, slot < size()).
    CustomerRef At(size_t slot);

   private:
    friend class CustomerStateStore;
    ShardAccessor(CustomerStateStore* store, size_t shard_index)
        : store_(store), shard_index_(shard_index) {}

    CustomerStateStore* store_;
    size_t shard_index_;
  };

  /// Runs `fn(ShardAccessor&)` with shard `shard` locked and returns fn's
  /// result. Distinct shards may be visited concurrently.
  template <typename Fn>
  auto WithShard(size_t shard, Fn&& fn) {
    std::lock_guard<std::mutex> lock(ShardMutex(shard));
    ShardAccessor accessor(this, shard);
    return fn(accessor);
  }

  /// Serializes shard `shard` (customer count, then per customer: id +
  /// monitor state) into `writer`. Locks the shard. The byte stream is
  /// identical for both layouts (same kernels run either way).
  void SaveShardState(size_t shard, BinaryWriter* writer) const;

  /// Replaces shard `shard` with state written by SaveShardState. The store
  /// must have been Made with the same options as the saver; customers that
  /// do not hash to `shard` are rejected as corruption. All-or-nothing: the
  /// frame is parsed into scratch storage and swapped in only when it
  /// decodes completely, so on any error the shard's prior state is
  /// untouched. Locks the shard.
  Status LoadShardState(size_t shard, BinaryReader* reader);

  /// Byte accounting for one shard. Locks that shard; O(1) for the compact
  /// layout, O(customers) for the heap layout.
  StateMemoryStats ShardMemoryUsage(size_t shard) const;

  /// Sum of ShardMemoryUsage over all shards. Locks each shard in turn.
  StateMemoryStats MemoryUsage() const;

  const StateStoreOptions& options() const { return options_; }

 private:
  friend class ShardAccessor;
  friend class CustomerRef;

  CustomerStateStore(StateStoreOptions options,
                     core::StabilityMonitor prototype,
                     std::vector<std::unique_ptr<Shard>> shards);

  std::mutex& ShardMutex(size_t shard) const;

  StateStoreOptions options_;
  /// A validated, never-fed monitor; kHeap customers copy it (cheap: all
  /// internal vectors are empty until the first observation).
  core::StabilityMonitor prototype_;
  /// unique_ptr so the store stays movable (Shard holds a mutex).
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace serve
}  // namespace churnlab

#endif  // CHURNLAB_SERVE_STATE_STORE_H_
