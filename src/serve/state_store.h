#ifndef CHURNLAB_SERVE_STATE_STORE_H_
#define CHURNLAB_SERVE_STATE_STORE_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "common/binary_io.h"
#include "common/result.h"
#include "core/monitor.h"
#include "retail/types.h"

namespace churnlab {
namespace serve {

/// Stable 64-bit mix (the murmur3 finalizer). Used instead of std::hash so
/// shard assignment — and therefore snapshot layout and alert grouping — is
/// identical across runs, standard libraries, and platforms.
inline uint64_t StableHash(uint64_t x) {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ULL;
  x ^= x >> 33;
  return x;
}

struct Shard;

struct StateStoreOptions {
  core::OnlineStabilityScorer::Options scorer;
  core::MonitorPolicy policy;
  /// Number of independent shards (>= 1). Each shard has its own mutex and
  /// dense customer slab; customers are assigned by
  /// StableHash(customer_id) % num_shards.
  size_t num_shards = 16;
};

/// \brief Sharded owner of per-customer streaming state.
///
/// Each customer is one StabilityMonitor (an OnlineStabilityScorer plus
/// alerting policy). Customers live in `num_shards` shards, each a dense
/// slab (std::vector, insertion-ordered) plus an id -> slot index and one
/// mutex. The ScoringFleet partitions batches by shard and processes each
/// shard sequentially under its lock, so two receipts of one customer can
/// never race.
///
/// Determinism: slab order is creation order, which the fleet makes
/// batch-order within a shard; snapshots iterate slabs in slot order, so
/// the byte stream is independent of thread count.
class CustomerStateStore {
 public:
  struct CustomerState {
    retail::CustomerId customer = retail::kInvalidCustomer;
    core::StabilityMonitor monitor;

    CustomerState(retail::CustomerId id, core::StabilityMonitor m)
        : customer(id), monitor(std::move(m)) {}
  };

  /// Validates the scorer options and shard count, per the library-wide
  /// `static Result<T> Make(Options)` convention (docs/API.md).
  static Result<CustomerStateStore> Make(StateStoreOptions options);

  ~CustomerStateStore();
  CustomerStateStore(CustomerStateStore&&) noexcept;
  CustomerStateStore& operator=(CustomerStateStore&&) noexcept;

  size_t num_shards() const { return shards_.size(); }
  size_t ShardOf(retail::CustomerId customer) const {
    return StableHash(customer) % shards_.size();
  }

  /// Total customers across all shards. Locks each shard in turn; do not
  /// call from inside WithShard.
  size_t NumCustomers() const;

  /// Customers held by one shard. Locks that shard; do not call from
  /// inside WithShard on the same shard.
  size_t ShardCustomers(size_t shard) const;

  /// Mutable view of one locked shard, handed to WithShard callbacks.
  class ShardAccessor {
   public:
    /// The customer's state, created on first touch (fresh monitor copied
    /// from the validated prototype). The reference is stable until the
    /// next GetOrCreate on this shard (slab may reallocate).
    CustomerState& GetOrCreate(retail::CustomerId customer);

    /// States in creation order.
    std::vector<CustomerState>& states();
    const std::vector<CustomerState>& states() const;

   private:
    friend class CustomerStateStore;
    ShardAccessor(CustomerStateStore* store, size_t shard_index)
        : store_(store), shard_index_(shard_index) {}

    CustomerStateStore* store_;
    size_t shard_index_;
  };

  /// Runs `fn(ShardAccessor&)` with shard `shard` locked and returns fn's
  /// result. Distinct shards may be visited concurrently.
  template <typename Fn>
  auto WithShard(size_t shard, Fn&& fn) {
    std::lock_guard<std::mutex> lock(ShardMutex(shard));
    ShardAccessor accessor(this, shard);
    return fn(accessor);
  }

  /// Serializes shard `shard` (customer count, then per customer: id +
  /// monitor state) into `writer`. Locks the shard.
  void SaveShardState(size_t shard, BinaryWriter* writer) const;

  /// Replaces shard `shard` with state written by SaveShardState. The store
  /// must have been Made with the same options as the saver; customers that
  /// do not hash to `shard` are rejected as corruption. Locks the shard.
  Status LoadShardState(size_t shard, BinaryReader* reader);

  const StateStoreOptions& options() const { return options_; }

 private:
  friend class ShardAccessor;

  CustomerStateStore(StateStoreOptions options,
                     core::StabilityMonitor prototype,
                     std::vector<std::unique_ptr<Shard>> shards);

  std::mutex& ShardMutex(size_t shard) const;

  StateStoreOptions options_;
  /// A validated, never-fed monitor; new customers copy it (cheap: all
  /// internal vectors are empty until the first observation).
  core::StabilityMonitor prototype_;
  /// unique_ptr so the store stays movable (Shard holds a mutex).
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace serve
}  // namespace churnlab

#endif  // CHURNLAB_SERVE_STATE_STORE_H_
