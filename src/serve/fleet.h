#ifndef CHURNLAB_SERVE_FLEET_H_
#define CHURNLAB_SERVE_FLEET_H_

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/binary_io.h"
#include "common/result.h"
#include "common/retry.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "core/symbol_mapper.h"
#include "obs/metrics.h"
#include "retail/taxonomy.h"
#include "retail/types.h"
#include "serve/journal.h"
#include "serve/state_store.h"

namespace churnlab {
namespace serve {

struct FleetOptions {
  core::OnlineStabilityScorer::Options scorer;
  core::MonitorPolicy policy;
  /// Shards of the underlying CustomerStateStore (>= 1).
  size_t num_shards = 16;
  /// Worker threads fanning batches out across shards (0 is clamped to 1).
  /// Results — alerts, reports, snapshots — are byte-identical for any
  /// thread count (guaranteed by tests).
  size_t num_threads = 1;
  /// Symbol space the monitors observe (the paper's experiments run at
  /// segment granularity).
  retail::Granularity granularity = retail::Granularity::kSegment;
  /// In-memory representation of per-customer state (see StateLayout).
  /// Runtime-only, like num_threads: never serialized, and alerts plus
  /// snapshot bytes are identical across layouts.
  StateLayout layout = StateLayout::kCompact;
  /// Graceful degradation (docs/ROBUSTNESS.md): when true, malformed
  /// receipts (invalid customer id, stream-contract violations such as a
  /// stale day) are quarantined into BatchReport::rejected instead of
  /// failing the batch. When false, the first malformed receipt fails
  /// IngestBatch with its error (the pre-robustness contract).
  bool quarantine_malformed = true;
  /// Backoff for failed shard tasks (and snapshot file writes). A shard
  /// task that still fails after `shard_retry.max_retries` retries poisons
  /// only its shard, not the fleet.
  RetryPolicy shard_retry;
};

/// One raised alert, attributed to its customer.
struct FleetAlert {
  retail::CustomerId customer = retail::kInvalidCustomer;
  /// Index within the IngestBatch span of the receipt whose ingestion
  /// closed the alerting window; 0 for AdvanceAllTo / FinishAll alerts.
  size_t batch_index = 0;
  core::StabilityAlert alert;
};

/// One quarantined receipt: kept out of the fleet state, reported with the
/// reason it was rejected. Sorted by batch_index (unique per receipt), so
/// the list is deterministic for any thread count.
struct RejectedReceipt {
  retail::CustomerId customer = retail::kInvalidCustomer;
  /// Index within the IngestBatch span.
  size_t batch_index = 0;
  retail::Day day = 0;
  Status reason;
};

/// A shard whose task exhausted its retries. The shard's state is frozen
/// (subsequent receipts routed to it are quarantined); the rest of the
/// fleet keeps serving.
struct PoisonedShard {
  size_t shard = 0;
  Status reason;
};

/// Live health of one shard (see ScoringFleet::HealthReport). Counts are
/// cumulative over the fleet's lifetime.
struct ShardHealthStats {
  size_t shard = 0;
  /// OK while serving; the poisoning error once out of service.
  Status status;
  uint64_t receipts = 0;  ///< Receipts ingested by this shard.
  uint64_t rejected = 0;  ///< Receipts quarantined by this shard.
  uint64_t alerts = 0;    ///< Alerts raised by this shard.
  uint64_t retries = 0;   ///< Retry attempts of this shard's tasks.
  size_t customers = 0;   ///< Current shard population.
  /// Receipts routed to this shard by the most recent IngestBatch — the
  /// per-shard ingress pressure (a queue-depth proxy for skew detection).
  size_t last_batch_receipts = 0;
  /// Per-shard task latency (microseconds); empty unless detailed timing
  /// is enabled (obs::SetDetailedTiming).
  obs::HistogramSnapshot task_latency_us;
};

/// Fleet-wide health: every shard plus whole-fleet aggregates.
struct FleetHealth {
  std::vector<ShardHealthStats> shards;
  size_t poisoned_shards = 0;
  uint64_t receipts_total = 0;
  size_t customers_total = 0;
  /// Tasks queued but not yet running on the fleet's pool (0 while
  /// single-threaded or before the first multi-threaded operation).
  size_t queue_depth = 0;
};

/// What one fleet operation did.
struct BatchReport {
  std::vector<FleetAlert> alerts;
  size_t receipts_ingested = 0;
  /// Customers seen for the first time by this operation.
  size_t new_customers = 0;
  /// Quarantined receipts, sorted by batch_index (empty unless
  /// FleetOptions::quarantine_malformed, or a shard is poisoned).
  std::vector<RejectedReceipt> rejected;
  /// Shards that are out of service as of this operation (newly poisoned or
  /// already poisoned), sorted by shard index.
  std::vector<PoisonedShard> poisoned;
};

/// The slice of a merged BatchReport belonging to receipts
/// [begin_index, end_index) of the ingested span. Alerts and rejections are
/// filtered to the range and their batch_index rebased by -begin_index, so
/// a caller that contributed that sub-span of a coalesced batch sees the
/// same report it would have received from ingesting the sub-span alone
/// (the network layer's ingest coalescer demultiplexes responses with
/// this). receipts_ingested counts the range's receipts minus its
/// rejections; new_customers is not attributable to a sub-span and is
/// reported as 0; poisoned is fleet-global and copied whole.
BatchReport SliceBatchReport(const BatchReport& merged, size_t begin_index,
                             size_t end_index);

/// Point-in-time view of one customer (see ScoringFleet::QueryCustomer).
struct CustomerQuery {
  retail::CustomerId customer = retail::kInvalidCustomer;
  /// Shard holding the customer's state.
  size_t shard = 0;
  /// Stability of the most recently closed window (1.0 before any window
  /// has closed — "no evidence of change").
  double stability = 1.0;
  /// Bytes of state attributable to this customer (scalar slot + live
  /// counter blocks; shared per-shard tables excluded).
  size_t state_bytes = 0;
};

/// \brief Batched multi-customer scoring service over a sharded state
/// store.
///
/// IngestBatch partitions a receipt batch by shard, fans the shards out
/// over a ThreadPool, and merges per-shard alerts into one deterministic
/// report. The full fleet state can be snapshotted to a versioned,
/// CRC-framed binary file and restored to continue bit-identically (see
/// docs/API.md for the state machine and snapshot format).
///
/// Fault tolerance (docs/ROBUSTNESS.md): malformed receipts are quarantined
/// into BatchReport::rejected, failed shard tasks are retried with capped
/// exponential backoff and poison only their shard after exhaustion, and
/// RestoreFromFile falls back to the newest valid generation of an
/// append-mode snapshot on a torn tail. Failpoint sites: serve.ingest.batch,
/// serve.ingest.receipt (key = customer id), serve.shard.task (key = shard
/// index), serve.snapshot.write_frame / serve.snapshot.read_frame (key =
/// shard index).
///
/// \code
///   auto fleet = ScoringFleet::Make(options, &dataset.taxonomy())
///                    .ValueOrDie();
///   for (std::span<const retail::Receipt> batch : batches) {
///     auto report = fleet.IngestBatch(batch).ValueOrDie();
///     for (const FleetAlert& a : report.alerts) notify(a);
///   }
///   CHURNLAB_RETURN_NOT_OK(fleet.SaveSnapshotToFile("fleet.snap"));
/// \endcode
class ScoringFleet {
 public:
  /// Validates the options, per the library-wide `static Result<T>
  /// Make(Options)` convention (docs/API.md). `taxonomy` is borrowed and
  /// must outlive the fleet; it is required for segment granularity and
  /// ignored for product granularity.
  static Result<ScoringFleet> Make(FleetOptions options,
                                   const retail::Taxonomy* taxonomy);

  /// Ingests one batch. Receipts of one customer must appear in
  /// chronological order within the batch and across batches (the
  /// per-customer stream contract of OnlineStabilityScorer::Observe);
  /// receipts of distinct customers need no mutual order. Alerts are
  /// sorted by (batch_index, customer, window_index, kind), so the report
  /// is identical for any thread count.
  ///
  /// With quarantine_malformed (the default), malformed receipts land in
  /// the report's `rejected` list and the batch keeps going; with it off,
  /// the first malformed receipt fails the call, the fleet may have
  /// ingested part of the batch, and errors should be treated as fatal for
  /// determinism. Shard-task failures are retried per
  /// FleetOptions::shard_retry; a shard that exhausts its retries is
  /// poisoned (reported in `poisoned`) and its unprocessed receipts — in
  /// this and every later batch — are quarantined.
  Result<BatchReport> IngestBatch(std::span<const retail::Receipt> receipts);

  /// Closes all windows before the one containing `day` for every known
  /// customer ("no activity through day" advancement). Alerts are sorted
  /// by (customer, window_index, kind).
  Result<BatchReport> AdvanceAllTo(retail::Day day);

  /// Flushes every customer's in-progress window and evaluates it against
  /// the policy (end-of-stream). Never-fed customers contribute nothing.
  /// Alerts are sorted by (customer, window_index, kind).
  Result<BatchReport> FinishAll();

  size_t NumCustomers() const { return store_.NumCustomers(); }
  const FleetOptions& options() const { return options_; }

  /// Health of one shard: OK while serving, the poisoning error once the
  /// shard's task exhausted its retries.
  const Status& ShardHealth(size_t shard) const {
    return shard_health_[shard];
  }

  /// Point-in-time fleet health: per-shard cumulative counts, retry/poison
  /// state, population, latency histograms, and the pool's queue depth.
  /// Thread-compatible: call between fleet operations (the CLI samples it
  /// per batch), not concurrently with one.
  FleetHealth HealthReport() const;

  /// Byte accounting summed over all shards (see StateMemoryStats). Also
  /// publishes the `churnlab.serve.bytes_total` gauge, plus per-shard
  /// `churnlab.serve.bytes{shard=k}` gauges when detailed timing is enabled
  /// (obs::SetDetailedTiming). Same calling convention as HealthReport:
  /// between fleet operations, not concurrently with one.
  StateMemoryStats MemoryUsage() const;

  /// Point-in-time view of one customer: latest stability plus state-memory
  /// bytes (the payload of the network front end's GET /v1/customers/{id}).
  /// NotFound for a customer the fleet has never seen. Locks only the
  /// customer's shard, so it may run concurrently with operations touching
  /// other shards — but, like HealthReport, not concurrently with a fleet
  /// operation that may touch the same shard.
  Result<CustomerQuery> QueryCustomer(retail::CustomerId customer);

  /// Serializes the full fleet — versioned header with every option, then
  /// one length- and CRC32-framed frame per shard — so Restore continues
  /// bit-identically from this point. Only fails when a write-path
  /// failpoint injects an error.
  Status SaveSnapshot(BinaryWriter* writer) const;
  /// Writes a bare snapshot to `path` (truncating), retrying the file
  /// write per FleetOptions::shard_retry.
  Status SaveSnapshotToFile(const std::string& path) const;
  /// Appends one CRC-framed snapshot *generation* to `path` (append-only
  /// "CHLFGENS" format; see docs/ROBUSTNESS.md). RestoreFromFile loads the
  /// newest valid generation, so a torn tail from a crashed writer loses at
  /// most the last append.
  Status AppendSnapshotToFile(const std::string& path) const;
  /// As AppendSnapshotToFile, additionally returning the exact identity
  /// (size + CRC32) of the appended generation so a journal checkpoint can
  /// name it. Recovery then restores *that* generation — never a newer
  /// orphan one whose receipts are still in the journal.
  Result<SnapshotRef> AppendSnapshotGeneration(const std::string& path) const;
  /// As SaveSnapshotToFile (bare, truncating "CHLFLEET" format), returning
  /// the snapshot's identity for a journal checkpoint.
  Result<SnapshotRef> SaveSnapshotWithRef(const std::string& path) const;

  /// Rebuilds a fleet from a snapshot. Options are read from the snapshot
  /// header; `taxonomy` is borrowed as in Make. Threads and the storage
  /// layout are pure runtime concerns and are never serialized: the
  /// restored fleet uses `num_threads` workers (1 when 0) and `layout`
  /// storage, with identical results either way — a snapshot written by
  /// one layout restores into the other bit-identically.
  static Result<ScoringFleet> Restore(
      BinaryReader* reader, const retail::Taxonomy* taxonomy,
      size_t num_threads = 0, StateLayout layout = StateLayout::kCompact);
  /// Restores from a bare snapshot ("CHLFLEET") or an append-mode
  /// generation file ("CHLFGENS"). For generation files the newest valid
  /// generation wins; a torn or corrupted tail is skipped with a
  /// structured warning and counts on churnlab.serve.snapshot_fallbacks.
  static Result<ScoringFleet> RestoreFromFile(
      const std::string& path, const retail::Taxonomy* taxonomy,
      size_t num_threads = 0, StateLayout layout = StateLayout::kCompact);

  /// Crash recovery (docs/ROBUSTNESS.md §Durability): rebuilds the fleet a
  /// crashed server would have reached, from the journal scan `recovery`
  /// (IngestJournal::Open) plus the checkpointed snapshot.
  ///
  /// The base state is the snapshot `recovery.snapshot` names — the exact
  /// generation of `snapshot_path` whose size and CRC match (DataLoss when
  /// absent), or a fresh fleet built from `fresh_options` when the journal
  /// was never checkpointed against a snapshot. Journal frames are then
  /// replayed through IngestBatch in sequence order, reproducing the
  /// pre-crash state byte-for-byte (arrival sequence fully determines
  /// fleet state; coalesced batch boundaries do not).
  static Result<ScoringFleet> Recover(
      const JournalRecovery& recovery, const std::string& snapshot_path,
      const FleetOptions& fresh_options, const retail::Taxonomy* taxonomy,
      size_t num_threads = 0, StateLayout layout = StateLayout::kCompact);

 private:
  ScoringFleet(FleetOptions options, CustomerStateStore store,
               core::SymbolMapper mapper);

  /// Maps a receipt's items into the sorted, deduplicated symbol set the
  /// monitors observe. `scratch` is reused across receipts.
  void MapSymbols(const retail::Receipt& receipt,
                  std::vector<core::Symbol>* scratch) const;

  /// Shared tail of AdvanceAllTo / FinishAll: runs `op` on every customer
  /// of every shard and merges alerts sorted by (customer, window, kind).
  template <typename PerCustomerOp>
  Result<BatchReport> ForAllCustomers(const char* span_name,
                                      PerCustomerOp&& op);

  /// Per-shard cumulative stats behind HealthReport. Written only in the
  /// single-threaded merge phase of an operation (like shard_health_).
  struct ShardStats {
    uint64_t receipts = 0;
    uint64_t rejected = 0;
    uint64_t alerts = 0;
    uint64_t retries = 0;
    size_t last_batch_receipts = 0;
  };

  /// Publishes per-shard labeled gauges (`churnlab.serve.shard_*{shard=k}`)
  /// into the global registry. Merge-phase only; gated on detailed timing
  /// so default runs do not grow the registry by O(shards).
  void PublishShardTelemetry();

  /// Interned per-shard labeled gauge handles: the labeled metric names are
  /// built (and the registry consulted) once per shard, not once per batch.
  struct ShardGauges {
    obs::Gauge* receipts = nullptr;
    obs::Gauge* rejected = nullptr;
    obs::Gauge* alerts = nullptr;
    obs::Gauge* retries = nullptr;
    obs::Gauge* last_batch_receipts = nullptr;
    obs::Gauge* poisoned = nullptr;
    obs::Gauge* customers = nullptr;
    obs::Gauge* bytes = nullptr;
  };
  /// The shard's gauge handles, interned on first use (detailed-timing
  /// paths only). Registry pointers are process-lived, so caching is safe.
  const ShardGauges& ShardGaugesFor(size_t shard) const;

  FleetOptions options_;
  CustomerStateStore store_;
  core::SymbolMapper mapper_;
  /// Lazily created on the first multi-threaded operation; unique_ptr so
  /// the fleet stays movable.
  std::unique_ptr<ThreadPool> pool_;
  /// Per-shard health, OK until the shard is poisoned. Written only in the
  /// single-threaded merge phase of an operation, so no lock is needed.
  std::vector<Status> shard_health_;
  std::vector<ShardStats> shard_stats_;
  /// Per-shard task-latency histograms, interned in the global registry
  /// under labeled names. Created lazily by the shard's own task (at most
  /// one task per shard is in flight, so slots never race).
  std::vector<obs::Histogram*> shard_latency_;
  /// Interned gauge handles behind ShardGaugesFor. mutable: filled lazily
  /// from const telemetry paths (MemoryUsage), merge-phase only.
  mutable std::vector<ShardGauges> shard_gauges_;
};

}  // namespace serve
}  // namespace churnlab

#endif  // CHURNLAB_SERVE_FLEET_H_
