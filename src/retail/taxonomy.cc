#include "retail/taxonomy.h"

namespace churnlab {
namespace retail {

DepartmentId Taxonomy::AddDepartment(std::string name) {
  const DepartmentId id = static_cast<DepartmentId>(department_names_.size());
  department_names_.push_back(std::move(name));
  return id;
}

Result<SegmentId> Taxonomy::AddSegment(std::string name,
                                       DepartmentId department) {
  if (department >= department_names_.size()) {
    return Status::OutOfRange("unknown department id " +
                              std::to_string(department));
  }
  const SegmentId id = static_cast<SegmentId>(segment_names_.size());
  segment_names_.push_back(std::move(name));
  segment_department_.push_back(department);
  return id;
}

Status Taxonomy::AssignItem(ItemId item, SegmentId segment) {
  if (segment >= segment_names_.size()) {
    return Status::OutOfRange("unknown segment id " + std::to_string(segment));
  }
  if (item >= item_segment_.size()) {
    item_segment_.resize(item + 1, kInvalidSegment);
  }
  if (item_segment_[item] != kInvalidSegment) {
    if (item_segment_[item] == segment) return Status::OK();
    return Status::AlreadyExists(
        "item " + std::to_string(item) + " already assigned to segment " +
        std::to_string(item_segment_[item]));
  }
  item_segment_[item] = segment;
  ++num_assigned_;
  return Status::OK();
}

SegmentId Taxonomy::SegmentOf(ItemId item) const {
  if (item >= item_segment_.size()) return kInvalidSegment;
  return item_segment_[item];
}

Result<DepartmentId> Taxonomy::DepartmentOf(SegmentId segment) const {
  if (segment >= segment_department_.size()) {
    return Status::OutOfRange("unknown segment id " + std::to_string(segment));
  }
  return segment_department_[segment];
}

bool Taxonomy::HasItem(ItemId item) const {
  return SegmentOf(item) != kInvalidSegment;
}

Result<std::string> Taxonomy::SegmentName(SegmentId segment) const {
  if (segment >= segment_names_.size()) {
    return Status::OutOfRange("unknown segment id " + std::to_string(segment));
  }
  return segment_names_[segment];
}

Result<std::string> Taxonomy::DepartmentName(DepartmentId department) const {
  if (department >= department_names_.size()) {
    return Status::OutOfRange("unknown department id " +
                              std::to_string(department));
  }
  return department_names_[department];
}

std::string Taxonomy::SegmentNameOrPlaceholder(SegmentId segment) const {
  if (segment < segment_names_.size()) return segment_names_[segment];
  return "segment#" + std::to_string(segment);
}

std::vector<ItemId> Taxonomy::ItemsOfSegment(SegmentId segment) const {
  std::vector<ItemId> items;
  for (ItemId item = 0; item < item_segment_.size(); ++item) {
    if (item_segment_[item] == segment) items.push_back(item);
  }
  return items;
}

Status Taxonomy::Validate() const {
  if (segment_department_.size() != segment_names_.size()) {
    return Status::Internal("segment arrays out of sync");
  }
  for (size_t s = 0; s < segment_department_.size(); ++s) {
    if (segment_department_[s] >= department_names_.size()) {
      return Status::Internal("segment " + std::to_string(s) +
                              " references unknown department " +
                              std::to_string(segment_department_[s]));
    }
  }
  for (size_t i = 0; i < item_segment_.size(); ++i) {
    const SegmentId s = item_segment_[i];
    if (s != kInvalidSegment && s >= segment_names_.size()) {
      return Status::Internal("item " + std::to_string(i) +
                              " references unknown segment " +
                              std::to_string(s));
    }
  }
  return Status::OK();
}

}  // namespace retail
}  // namespace churnlab
