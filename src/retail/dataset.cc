#include "retail/dataset.h"

#include <algorithm>
#include <sstream>

#include "common/binary_io.h"
#include "common/csv.h"
#include "common/failpoint.h"
#include "common/logging.h"
#include "common/macros.h"
#include "common/stopwatch.h"
#include "common/string_util.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace churnlab {
namespace retail {

namespace {
// Binary format magic + version. Bump the version on layout changes.
constexpr uint64_t kBinaryMagic = 0x43484C4231ULL;  // "CHLB1"
constexpr uint64_t kBinaryVersion = 1;

void RecordDatasetLoaded(const Dataset& dataset, double seconds) {
  static obs::Counter* const datasets =
      obs::MetricsRegistry::Global().GetCounter(
          "churnlab.retail.datasets_loaded");
  static obs::Counter* const receipts =
      obs::MetricsRegistry::Global().GetCounter(
          "churnlab.retail.receipts_loaded");
  static obs::Gauge* const load_seconds =
      obs::MetricsRegistry::Global().GetGauge(
          "churnlab.retail.last_load_seconds");
  datasets->Increment();
  receipts->Increment(dataset.store().num_receipts());
  load_seconds->Set(seconds);
}

void RecordDatasetSaved() {
  static obs::Counter* const saved = obs::MetricsRegistry::Global().GetCounter(
      "churnlab.retail.datasets_saved");
  saved->Increment();
}
}  // namespace

std::string_view CohortToString(Cohort cohort) {
  switch (cohort) {
    case Cohort::kLoyal:
      return "loyal";
    case Cohort::kDefecting:
      return "defecting";
    case Cohort::kUnlabeled:
      return "unlabeled";
  }
  return "unlabeled";
}

Result<Cohort> CohortFromString(std::string_view text) {
  if (text == "loyal") return Cohort::kLoyal;
  if (text == "defecting") return Cohort::kDefecting;
  if (text == "unlabeled") return Cohort::kUnlabeled;
  return Status::InvalidArgument("unknown cohort '" + std::string(text) + "'");
}

std::string DatasetStats::ToString() const {
  std::ostringstream out;
  out << "customers:             "
      << FormatWithThousandsSeparators(static_cast<int64_t>(num_customers))
      << "\n"
      << "receipts:              "
      << FormatWithThousandsSeparators(static_cast<int64_t>(num_receipts))
      << "\n"
      << "distinct products:     "
      << FormatWithThousandsSeparators(
             static_cast<int64_t>(num_distinct_items))
      << "\n"
      << "taxonomy segments:     "
      << FormatWithThousandsSeparators(static_cast<int64_t>(num_segments))
      << "\n"
      << "taxonomy departments:  "
      << FormatWithThousandsSeparators(static_cast<int64_t>(num_departments))
      << "\n"
      << "day span:              [" << min_day << ", " << max_day << "] ("
      << num_months << " months)\n"
      << "avg basket size:       " << FormatDouble(avg_basket_size, 2) << "\n"
      << "avg receipts/customer: " << FormatDouble(avg_receipts_per_customer, 2)
      << "\n"
      << "avg spend/receipt:     " << FormatDouble(avg_spend_per_receipt, 2)
      << "\n"
      << "labels:                " << num_loyal << " loyal, " << num_defecting
      << " defecting, " << num_unlabeled << " unlabeled\n";
  return out.str();
}

void Dataset::SetLabel(CustomerId customer, CustomerLabel label) {
  labels_[customer] = label;
}

CustomerLabel Dataset::LabelOf(CustomerId customer) const {
  const auto it = labels_.find(customer);
  return it == labels_.end() ? CustomerLabel{} : it->second;
}

std::vector<CustomerId> Dataset::CustomersWithCohort(Cohort cohort) const {
  std::vector<CustomerId> result;
  for (const auto& [customer, label] : labels_) {
    if (label.cohort == cohort) result.push_back(customer);
  }
  std::sort(result.begin(), result.end());
  return result;
}

DatasetStats Dataset::ComputeStats() const {
  DatasetStats stats;
  stats.num_customers = store_.num_customers();
  stats.num_receipts = store_.num_receipts();
  stats.num_distinct_items = store_.CountDistinctItems();
  stats.num_segments = taxonomy_.num_segments();
  stats.num_departments = taxonomy_.num_departments();
  stats.min_day = store_.min_day();
  stats.max_day = store_.max_day();
  stats.num_months = store_.num_receipts() == 0
                         ? 0
                         : DayToMonth(store_.max_day()) -
                               DayToMonth(store_.min_day()) + 1;
  size_t total_items = 0;
  double total_spend = 0.0;
  for (const Receipt& receipt : store_.AllReceipts()) {
    total_items += receipt.items.size();
    total_spend += receipt.spend;
  }
  if (stats.num_receipts > 0) {
    stats.avg_basket_size =
        static_cast<double>(total_items) /
        static_cast<double>(stats.num_receipts);
    stats.avg_spend_per_receipt =
        total_spend / static_cast<double>(stats.num_receipts);
  }
  if (stats.num_customers > 0) {
    stats.avg_receipts_per_customer =
        static_cast<double>(stats.num_receipts) /
        static_cast<double>(stats.num_customers);
  }
  for (const auto& [customer, label] : labels_) {
    switch (label.cohort) {
      case Cohort::kLoyal:
        ++stats.num_loyal;
        break;
      case Cohort::kDefecting:
        ++stats.num_defecting;
        break;
      case Cohort::kUnlabeled:
        ++stats.num_unlabeled;
        break;
    }
  }
  return stats;
}

Result<Dataset> Dataset::FilterByDayRange(Day begin_day, Day end_day) const {
  if (!store_.finalized()) {
    return Status::InvalidArgument("dataset store is not finalized");
  }
  if (begin_day >= end_day) {
    return Status::InvalidArgument("need begin_day < end_day");
  }
  Dataset filtered;
  filtered.items_ = items_;
  filtered.taxonomy_ = taxonomy_;
  filtered.labels_ = labels_;
  for (const Receipt& receipt : store_.AllReceipts()) {
    if (receipt.day < begin_day || receipt.day >= end_day) continue;
    CHURNLAB_RETURN_NOT_OK(filtered.store_.Append(receipt));
  }
  filtered.Finalize();
  return filtered;
}

Result<Dataset> Dataset::FilterCustomers(
    const std::vector<CustomerId>& customers) const {
  if (!store_.finalized()) {
    return Status::InvalidArgument("dataset store is not finalized");
  }
  Dataset filtered;
  filtered.items_ = items_;
  filtered.taxonomy_ = taxonomy_;
  for (const CustomerId customer : customers) {
    for (const Receipt& receipt : store_.History(customer)) {
      CHURNLAB_RETURN_NOT_OK(filtered.store_.Append(receipt));
    }
    const auto label = labels_.find(customer);
    if (label != labels_.end()) {
      filtered.labels_.emplace(customer, label->second);
    }
  }
  filtered.Finalize();
  return filtered;
}

// ---------------------------------------------------------------------------
// CSV serialization
// ---------------------------------------------------------------------------

Status Dataset::SaveCsv(const std::string& prefix) const {
  CHURNLAB_SPAN("retail.save_csv");
  // Receipts.
  {
    CHURNLAB_ASSIGN_OR_RETURN(CsvWriter writer,
                              CsvWriter::Open(prefix + ".receipts.csv"));
    CHURNLAB_RETURN_NOT_OK(
        writer.WriteRow({"customer", "day", "spend", "items"}));
    for (const Receipt& receipt : store_.AllReceipts()) {
      std::string item_field;
      for (size_t i = 0; i < receipt.items.size(); ++i) {
        if (i > 0) item_field += ';';
        item_field += items_.NameOrPlaceholder(receipt.items[i]);
      }
      CHURNLAB_RETURN_NOT_OK(writer.WriteRow(
          {std::to_string(receipt.customer), std::to_string(receipt.day),
           FormatDouble(receipt.spend, 2), std::move(item_field)}));
    }
    CHURNLAB_RETURN_NOT_OK(writer.Close());
  }
  // Taxonomy.
  {
    CHURNLAB_ASSIGN_OR_RETURN(CsvWriter writer,
                              CsvWriter::Open(prefix + ".taxonomy.csv"));
    CHURNLAB_RETURN_NOT_OK(writer.WriteRow({"item", "segment", "department"}));
    for (ItemId item = 0; item < items_.size(); ++item) {
      const SegmentId segment = taxonomy_.SegmentOf(item);
      if (segment == kInvalidSegment) continue;
      CHURNLAB_ASSIGN_OR_RETURN(const std::string segment_name,
                                taxonomy_.SegmentName(segment));
      CHURNLAB_ASSIGN_OR_RETURN(const DepartmentId department,
                                taxonomy_.DepartmentOf(segment));
      CHURNLAB_ASSIGN_OR_RETURN(const std::string department_name,
                                taxonomy_.DepartmentName(department));
      CHURNLAB_RETURN_NOT_OK(writer.WriteRow(
          {items_.NameOrPlaceholder(item), segment_name, department_name}));
    }
    CHURNLAB_RETURN_NOT_OK(writer.Close());
  }
  // Labels.
  {
    CHURNLAB_ASSIGN_OR_RETURN(CsvWriter writer,
                              CsvWriter::Open(prefix + ".labels.csv"));
    CHURNLAB_RETURN_NOT_OK(
        writer.WriteRow({"customer", "cohort", "onset_month"}));
    std::vector<CustomerId> ids;
    ids.reserve(labels_.size());
    for (const auto& [customer, label] : labels_) ids.push_back(customer);
    std::sort(ids.begin(), ids.end());
    for (const CustomerId customer : ids) {
      const CustomerLabel label = labels_.at(customer);
      CHURNLAB_RETURN_NOT_OK(writer.WriteRow(
          {std::to_string(customer), std::string(CohortToString(label.cohort)),
           std::to_string(label.attrition_onset_month)}));
    }
    CHURNLAB_RETURN_NOT_OK(writer.Close());
  }
  RecordDatasetSaved();
  return Status::OK();
}

Result<Dataset> Dataset::LoadCsv(const std::string& prefix) {
  CHURNLAB_SPAN("retail.load_csv");
  CHURNLAB_FAILPOINT("retail.load_csv");
  Stopwatch stopwatch;
  Dataset dataset;
  // Taxonomy first so items get interned with their assignments.
  {
    CHURNLAB_ASSIGN_OR_RETURN(CsvReader reader,
                              CsvReader::Open(prefix + ".taxonomy.csv"));
    std::vector<std::string> row;
    std::unordered_map<std::string, SegmentId> segment_ids;
    std::unordered_map<std::string, DepartmentId> department_ids;
    bool header = true;
    while (reader.ReadRow(&row)) {
      if (header) {
        header = false;
        continue;
      }
      if (row.size() != 3) {
        return Status::InvalidArgument(
            "taxonomy row " + std::to_string(reader.row_number()) +
            " has " + std::to_string(row.size()) + " fields, expected 3");
      }
      DepartmentId department;
      if (const auto it = department_ids.find(row[2]);
          it != department_ids.end()) {
        department = it->second;
      } else {
        department = dataset.taxonomy_.AddDepartment(row[2]);
        department_ids.emplace(row[2], department);
      }
      SegmentId segment;
      if (const auto it = segment_ids.find(row[1]); it != segment_ids.end()) {
        segment = it->second;
      } else {
        CHURNLAB_ASSIGN_OR_RETURN(
            segment, dataset.taxonomy_.AddSegment(row[1], department));
        segment_ids.emplace(row[1], segment);
      }
      const ItemId item = dataset.items_.GetOrAdd(row[0]);
      CHURNLAB_RETURN_NOT_OK(dataset.taxonomy_.AssignItem(item, segment));
    }
    CHURNLAB_RETURN_NOT_OK(reader.status());
  }
  // Receipts.
  {
    CHURNLAB_ASSIGN_OR_RETURN(CsvReader reader,
                              CsvReader::Open(prefix + ".receipts.csv"));
    std::vector<std::string> row;
    bool header = true;
    while (reader.ReadRow(&row)) {
      if (header) {
        header = false;
        continue;
      }
      if (row.size() != 4) {
        return Status::InvalidArgument(
            "receipt row " + std::to_string(reader.row_number()) + " has " +
            std::to_string(row.size()) + " fields, expected 4");
      }
      Receipt receipt;
      CHURNLAB_ASSIGN_OR_RETURN(const uint64_t customer, ParseUint64(row[0]));
      CHURNLAB_FAILPOINT_KEYED("retail.load_csv.receipt", customer);
      receipt.customer = static_cast<CustomerId>(customer);
      CHURNLAB_ASSIGN_OR_RETURN(const int64_t day, ParseInt64(row[1]));
      receipt.day = static_cast<Day>(day);
      CHURNLAB_ASSIGN_OR_RETURN(receipt.spend, ParseDouble(row[2]));
      if (!row[3].empty()) {
        for (const std::string_view name : Split(row[3], ';')) {
          receipt.items.push_back(dataset.items_.GetOrAdd(name));
        }
      }
      CHURNLAB_RETURN_NOT_OK(dataset.store_.Append(std::move(receipt)));
    }
    CHURNLAB_RETURN_NOT_OK(reader.status());
  }
  // Labels.
  {
    CHURNLAB_ASSIGN_OR_RETURN(CsvReader reader,
                              CsvReader::Open(prefix + ".labels.csv"));
    std::vector<std::string> row;
    bool header = true;
    while (reader.ReadRow(&row)) {
      if (header) {
        header = false;
        continue;
      }
      if (row.size() != 3) {
        return Status::InvalidArgument(
            "label row " + std::to_string(reader.row_number()) + " has " +
            std::to_string(row.size()) + " fields, expected 3");
      }
      CHURNLAB_ASSIGN_OR_RETURN(const uint64_t customer, ParseUint64(row[0]));
      CHURNLAB_ASSIGN_OR_RETURN(const Cohort cohort, CohortFromString(row[1]));
      CHURNLAB_ASSIGN_OR_RETURN(const int64_t onset, ParseInt64(row[2]));
      dataset.SetLabel(static_cast<CustomerId>(customer),
                       {cohort, static_cast<int32_t>(onset)});
    }
    CHURNLAB_RETURN_NOT_OK(reader.status());
  }
  dataset.Finalize();
  RecordDatasetLoaded(dataset, stopwatch.ElapsedSeconds());
  CHURNLAB_LOG(Info) << "loaded CSV dataset '" << prefix << "': "
                     << dataset.store().num_receipts() << " receipts, "
                     << dataset.store().num_customers() << " customers";
  return dataset;
}

// ---------------------------------------------------------------------------
// Binary serialization
// ---------------------------------------------------------------------------

Status Dataset::SaveBinary(const std::string& path) const {
  CHURNLAB_SPAN("retail.save_binary");
  BinaryWriter writer;
  writer.WriteVarint(kBinaryMagic);
  writer.WriteVarint(kBinaryVersion);

  // Item dictionary.
  writer.WriteVarint(items_.size());
  for (const std::string& name : items_.names()) writer.WriteString(name);

  // Taxonomy.
  writer.WriteVarint(taxonomy_.num_departments());
  for (DepartmentId d = 0; d < taxonomy_.num_departments(); ++d) {
    CHURNLAB_ASSIGN_OR_RETURN(const std::string name,
                              taxonomy_.DepartmentName(d));
    writer.WriteString(name);
  }
  writer.WriteVarint(taxonomy_.num_segments());
  for (SegmentId s = 0; s < taxonomy_.num_segments(); ++s) {
    CHURNLAB_ASSIGN_OR_RETURN(const std::string name, taxonomy_.SegmentName(s));
    CHURNLAB_ASSIGN_OR_RETURN(const DepartmentId department,
                              taxonomy_.DepartmentOf(s));
    writer.WriteString(name);
    writer.WriteVarint(department);
  }
  // Item -> segment assignments (only assigned items).
  writer.WriteVarint(taxonomy_.num_assigned_items());
  for (ItemId item = 0; item < items_.size(); ++item) {
    const SegmentId segment = taxonomy_.SegmentOf(item);
    if (segment == kInvalidSegment) continue;
    writer.WriteVarint(item);
    writer.WriteVarint(segment);
  }

  // Receipts (delta-encoded days within a customer run would save little at
  // our sizes; keep the layout simple and explicit).
  writer.WriteVarint(store_.num_receipts());
  for (const Receipt& receipt : store_.AllReceipts()) {
    writer.WriteVarint(receipt.customer);
    writer.WriteSignedVarint(receipt.day);
    writer.WriteDouble(receipt.spend);
    writer.WriteVarint(receipt.items.size());
    ItemId previous = 0;
    for (const ItemId item : receipt.items) {  // sorted => ascending deltas
      writer.WriteVarint(item - previous);
      previous = item;
    }
  }

  // Labels.
  std::vector<CustomerId> ids;
  ids.reserve(labels_.size());
  for (const auto& [customer, label] : labels_) ids.push_back(customer);
  std::sort(ids.begin(), ids.end());
  writer.WriteVarint(ids.size());
  for (const CustomerId customer : ids) {
    const CustomerLabel label = labels_.at(customer);
    writer.WriteVarint(customer);
    writer.WriteVarint(static_cast<uint64_t>(label.cohort));
    writer.WriteSignedVarint(label.attrition_onset_month);
  }

  CHURNLAB_RETURN_NOT_OK(writer.SaveToFile(path));
  RecordDatasetSaved();
  return Status::OK();
}

Result<Dataset> Dataset::LoadBinary(const std::string& path) {
  CHURNLAB_SPAN("retail.load_binary");
  CHURNLAB_FAILPOINT("retail.load_binary");
  Stopwatch stopwatch;
  CHURNLAB_ASSIGN_OR_RETURN(BinaryReader reader, BinaryReader::OpenFile(path));
  CHURNLAB_ASSIGN_OR_RETURN(const uint64_t magic, reader.ReadVarint());
  if (magic != kBinaryMagic) {
    return Status::InvalidArgument("'" + path + "' is not a churnlab dataset");
  }
  CHURNLAB_ASSIGN_OR_RETURN(const uint64_t version, reader.ReadVarint());
  if (version != kBinaryVersion) {
    return Status::InvalidArgument("unsupported dataset version " +
                                   std::to_string(version));
  }

  Dataset dataset;
  CHURNLAB_ASSIGN_OR_RETURN(const uint64_t num_items, reader.ReadVarint());
  for (uint64_t i = 0; i < num_items; ++i) {
    CHURNLAB_ASSIGN_OR_RETURN(const std::string name, reader.ReadString());
    dataset.items_.GetOrAdd(name);
  }

  CHURNLAB_ASSIGN_OR_RETURN(const uint64_t num_departments,
                            reader.ReadVarint());
  for (uint64_t d = 0; d < num_departments; ++d) {
    CHURNLAB_ASSIGN_OR_RETURN(const std::string name, reader.ReadString());
    dataset.taxonomy_.AddDepartment(name);
  }
  CHURNLAB_ASSIGN_OR_RETURN(const uint64_t num_segments, reader.ReadVarint());
  for (uint64_t s = 0; s < num_segments; ++s) {
    CHURNLAB_ASSIGN_OR_RETURN(const std::string name, reader.ReadString());
    CHURNLAB_ASSIGN_OR_RETURN(const uint64_t department, reader.ReadVarint());
    CHURNLAB_ASSIGN_OR_RETURN(
        const SegmentId segment,
        dataset.taxonomy_.AddSegment(name,
                                     static_cast<DepartmentId>(department)));
    (void)segment;
  }
  CHURNLAB_ASSIGN_OR_RETURN(const uint64_t num_assigned, reader.ReadVarint());
  for (uint64_t i = 0; i < num_assigned; ++i) {
    CHURNLAB_ASSIGN_OR_RETURN(const uint64_t item, reader.ReadVarint());
    CHURNLAB_ASSIGN_OR_RETURN(const uint64_t segment, reader.ReadVarint());
    CHURNLAB_RETURN_NOT_OK(dataset.taxonomy_.AssignItem(
        static_cast<ItemId>(item), static_cast<SegmentId>(segment)));
  }

  CHURNLAB_ASSIGN_OR_RETURN(const uint64_t num_receipts, reader.ReadVarint());
  for (uint64_t r = 0; r < num_receipts; ++r) {
    Receipt receipt;
    CHURNLAB_ASSIGN_OR_RETURN(const uint64_t customer, reader.ReadVarint());
    receipt.customer = static_cast<CustomerId>(customer);
    CHURNLAB_ASSIGN_OR_RETURN(const int64_t day, reader.ReadSignedVarint());
    receipt.day = static_cast<Day>(day);
    CHURNLAB_ASSIGN_OR_RETURN(receipt.spend, reader.ReadDouble());
    CHURNLAB_ASSIGN_OR_RETURN(const uint64_t item_count, reader.ReadVarint());
    // Untrusted length prefix: each item takes at least one byte, so an
    // item count beyond the remaining bytes is corruption — reject before
    // reserving storage sized from it.
    if (item_count > reader.remaining()) {
      return Status::InvalidArgument(
          "receipt item count exceeds remaining dataset bytes");
    }
    receipt.items.reserve(item_count);
    ItemId previous = 0;
    for (uint64_t i = 0; i < item_count; ++i) {
      CHURNLAB_ASSIGN_OR_RETURN(const uint64_t delta, reader.ReadVarint());
      previous = static_cast<ItemId>(previous + delta);
      receipt.items.push_back(previous);
    }
    CHURNLAB_RETURN_NOT_OK(dataset.store_.Append(std::move(receipt)));
  }

  CHURNLAB_ASSIGN_OR_RETURN(const uint64_t num_labels, reader.ReadVarint());
  for (uint64_t i = 0; i < num_labels; ++i) {
    CHURNLAB_ASSIGN_OR_RETURN(const uint64_t customer, reader.ReadVarint());
    CHURNLAB_ASSIGN_OR_RETURN(const uint64_t cohort, reader.ReadVarint());
    if (cohort > static_cast<uint64_t>(Cohort::kDefecting)) {
      return Status::InvalidArgument("corrupt cohort value " +
                                     std::to_string(cohort));
    }
    CHURNLAB_ASSIGN_OR_RETURN(const int64_t onset, reader.ReadSignedVarint());
    dataset.SetLabel(
        static_cast<CustomerId>(customer),
        {static_cast<Cohort>(cohort), static_cast<int32_t>(onset)});
  }

  dataset.Finalize();
  RecordDatasetLoaded(dataset, stopwatch.ElapsedSeconds());
  return dataset;
}

}  // namespace retail
}  // namespace churnlab
