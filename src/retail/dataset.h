#ifndef CHURNLAB_RETAIL_DATASET_H_
#define CHURNLAB_RETAIL_DATASET_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "retail/item_dictionary.h"
#include "retail/taxonomy.h"
#include "retail/transaction_store.h"
#include "retail/types.h"

namespace churnlab {
namespace retail {

/// Ground-truth label of one customer.
struct CustomerLabel {
  Cohort cohort = Cohort::kUnlabeled;
  /// Month at which attrition was injected; -1 for non-defectors / unknown.
  int32_t attrition_onset_month = -1;
};

/// Summary statistics of a dataset, printable next to the paper's §3
/// description (6M customers, 4M products, 3,388 segments, 28 months).
struct DatasetStats {
  size_t num_customers = 0;
  size_t num_receipts = 0;
  size_t num_distinct_items = 0;
  size_t num_segments = 0;
  size_t num_departments = 0;
  Day min_day = 0;
  Day max_day = -1;
  int32_t num_months = 0;
  double avg_basket_size = 0.0;
  double avg_receipts_per_customer = 0.0;
  double avg_spend_per_receipt = 0.0;
  size_t num_loyal = 0;
  size_t num_defecting = 0;
  size_t num_unlabeled = 0;

  /// Multi-line human-readable rendering.
  std::string ToString() const;
};

/// \brief A complete attrition-analysis corpus: receipts + item dictionary +
/// taxonomy + cohort labels.
///
/// This is the unit the models and experiments consume, and the unit that is
/// serialized. Mirrors the paper's inputs: anonymized timestamped receipts,
/// a product taxonomy, and retailer-provided loyal/defecting customer ids.
///
/// Serialization formats:
///  - CSV, three files under a prefix: `<prefix>.receipts.csv`
///    (customer,day,spend,items where items are ';'-separated names),
///    `<prefix>.taxonomy.csv` (item,segment,department) and
///    `<prefix>.labels.csv` (customer,cohort,onset_month);
///  - a single binary file (`.clb`) with dictionary-encoded receipts —
///    compact and fast, the preferred interchange format.
class Dataset {
 public:
  Dataset() = default;

  Dataset(Dataset&&) = default;
  Dataset& operator=(Dataset&&) = default;
  Dataset(const Dataset&) = delete;
  Dataset& operator=(const Dataset&) = delete;

  TransactionStore& mutable_store() { return store_; }
  const TransactionStore& store() const { return store_; }

  ItemDictionary& mutable_items() { return items_; }
  const ItemDictionary& items() const { return items_; }

  Taxonomy& mutable_taxonomy() { return taxonomy_; }
  const Taxonomy& taxonomy() const { return taxonomy_; }

  /// Sets the ground-truth label of `customer` (overwrites).
  void SetLabel(CustomerId customer, CustomerLabel label);

  /// Label of `customer`; kUnlabeled default when absent.
  CustomerLabel LabelOf(CustomerId customer) const;

  const std::unordered_map<CustomerId, CustomerLabel>& labels() const {
    return labels_;
  }

  /// Customers carrying the given cohort label, ascending id order.
  std::vector<CustomerId> CustomersWithCohort(Cohort cohort) const;

  /// Finalizes the store; call once ingestion is done.
  void Finalize() { store_.Finalize(); }

  /// Computes summary statistics. Requires a finalized store.
  DatasetStats ComputeStats() const;

  /// Returns a new dataset containing only receipts with day in
  /// [begin_day, end_day). Dictionary, taxonomy and all labels are copied
  /// unchanged; customers whose receipts all fall outside the range simply
  /// have no history. Use for temporal train/test splits and "data through
  /// month m" views. Requires a finalized store; the result is finalized.
  Result<Dataset> FilterByDayRange(Day begin_day, Day end_day) const;

  /// Returns a new dataset restricted to `customers` (receipts and labels;
  /// dictionary and taxonomy copied unchanged). Unknown ids are ignored.
  /// Requires a finalized store; the result is finalized.
  Result<Dataset> FilterCustomers(
      const std::vector<CustomerId>& customers) const;

  /// Writes `<prefix>.receipts.csv`, `<prefix>.taxonomy.csv`,
  /// `<prefix>.labels.csv`.
  Status SaveCsv(const std::string& prefix) const;

  /// Reads the three CSV files written by SaveCsv. The result is finalized.
  static Result<Dataset> LoadCsv(const std::string& prefix);

  /// Writes the single-file binary format.
  Status SaveBinary(const std::string& path) const;

  /// Reads a binary file written by SaveBinary. The result is finalized.
  static Result<Dataset> LoadBinary(const std::string& path);

 private:
  TransactionStore store_;
  ItemDictionary items_;
  Taxonomy taxonomy_;
  std::unordered_map<CustomerId, CustomerLabel> labels_;
};

/// Round-trip helpers for Cohort <-> text ("loyal", "defecting",
/// "unlabeled").
std::string_view CohortToString(Cohort cohort);
Result<Cohort> CohortFromString(std::string_view text);

}  // namespace retail
}  // namespace churnlab

#endif  // CHURNLAB_RETAIL_DATASET_H_
