#ifndef CHURNLAB_RETAIL_TYPES_H_
#define CHURNLAB_RETAIL_TYPES_H_

#include <cstdint>
#include <limits>
#include <vector>

namespace churnlab {
namespace retail {

/// Dense identifier of a product (SKU). Ids are assigned by the
/// ItemDictionary in insertion order.
using ItemId = uint32_t;
/// Identifier of a taxonomy segment (group of products).
using SegmentId = uint32_t;
/// Identifier of a taxonomy department (group of segments).
using DepartmentId = uint32_t;
/// Identifier of a customer. Customers need not be dense; the
/// TransactionStore indexes them by hash.
using CustomerId = uint32_t;

inline constexpr ItemId kInvalidItem = std::numeric_limits<ItemId>::max();
inline constexpr SegmentId kInvalidSegment =
    std::numeric_limits<SegmentId>::max();
inline constexpr CustomerId kInvalidCustomer =
    std::numeric_limits<CustomerId>::max();

/// Timestamps are day indices from the start of the observation period
/// (day 0 = first day). The paper's dataset spans May 2012 - Aug 2014 in
/// calendar months; we use fixed 30-day months, which keeps windowing exact
/// and deterministic while preserving the month granularity of the paper's
/// figures.
using Day = int32_t;

inline constexpr Day kDaysPerMonth = 30;

/// Month index containing `day` (floor division; negative days map to
/// negative months).
constexpr int32_t DayToMonth(Day day) {
  return day >= 0 ? day / kDaysPerMonth
                  : -((-day + kDaysPerMonth - 1) / kDaysPerMonth);
}

/// First day of month `month`.
constexpr Day MonthToFirstDay(int32_t month) { return month * kDaysPerMonth; }

/// One timestamped shopping basket.
///
/// `items` is kept sorted and deduplicated by the TransactionStore
/// (the stability model treats baskets as item *sets*, per the paper).
/// `spend` is the basket's monetary total, used by the RFM baseline.
struct Receipt {
  CustomerId customer = kInvalidCustomer;
  Day day = 0;
  double spend = 0.0;
  std::vector<ItemId> items;
};

/// Ground-truth cohort of a customer, mirroring the labels the paper's
/// retailer provided (loyal vs loyal-but-defected-in-the-last-6-months).
enum class Cohort : uint8_t {
  kUnlabeled = 0,
  kLoyal = 1,
  kDefecting = 2,
};

/// Granularity at which models observe purchases: raw products, or products
/// abstracted into taxonomy segments (the paper's experiments run at segment
/// level: 4M products -> 3,388 segments).
enum class Granularity : uint8_t {
  kProduct = 0,
  kSegment = 1,
};

}  // namespace retail
}  // namespace churnlab

#endif  // CHURNLAB_RETAIL_TYPES_H_
