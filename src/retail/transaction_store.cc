#include "retail/transaction_store.h"

#include <algorithm>
#include <cassert>

namespace churnlab {
namespace retail {

Status TransactionStore::Append(Receipt receipt) {
  if (finalized_) {
    return Status::InvalidArgument("cannot append to a finalized store");
  }
  if (receipt.customer == kInvalidCustomer) {
    return Status::InvalidArgument("receipt has invalid customer id");
  }
  if (receipt.day < 0) {
    return Status::InvalidArgument("receipt day must be >= 0, got " +
                                   std::to_string(receipt.day));
  }
  std::sort(receipt.items.begin(), receipt.items.end());
  receipt.items.erase(
      std::unique(receipt.items.begin(), receipt.items.end()),
      receipt.items.end());
  if (!receipt.items.empty() && receipt.items.back() == kInvalidItem) {
    return Status::InvalidArgument("receipt contains kInvalidItem");
  }
  if (receipts_.empty()) {
    min_day_ = receipt.day;
    max_day_ = receipt.day;
  } else {
    min_day_ = std::min(min_day_, receipt.day);
    max_day_ = std::max(max_day_, receipt.day);
  }
  if (!receipt.items.empty()) {
    item_id_bound_ =
        std::max(item_id_bound_, static_cast<size_t>(receipt.items.back()) + 1);
  }
  receipts_.push_back(std::move(receipt));
  distinct_items_valid_ = false;
  return Status::OK();
}

void TransactionStore::Finalize() {
  if (finalized_) return;
  std::stable_sort(receipts_.begin(), receipts_.end(),
                   [](const Receipt& a, const Receipt& b) {
                     if (a.customer != b.customer) {
                       return a.customer < b.customer;
                     }
                     return a.day < b.day;
                   });
  customer_index_.clear();
  customers_sorted_.clear();
  size_t begin = 0;
  for (size_t i = 0; i <= receipts_.size(); ++i) {
    if (i == receipts_.size() ||
        (i > begin && receipts_[i].customer != receipts_[begin].customer)) {
      if (i > begin) {
        const CustomerId customer = receipts_[begin].customer;
        customer_index_.emplace(customer, CustomerSlot{begin, i});
        customers_sorted_.push_back(customer);
      }
      begin = i;
    }
  }
  finalized_ = true;
}

std::span<const Receipt> TransactionStore::History(CustomerId customer) const {
  assert(finalized_);
  const auto it = customer_index_.find(customer);
  if (it == customer_index_.end()) return {};
  return std::span<const Receipt>(receipts_.data() + it->second.begin,
                                  it->second.end - it->second.begin);
}

const std::vector<CustomerId>& TransactionStore::Customers() const {
  assert(finalized_);
  return customers_sorted_;
}

std::span<const Receipt> TransactionStore::AllReceipts() const {
  assert(finalized_);
  return std::span<const Receipt>(receipts_.data(), receipts_.size());
}

size_t TransactionStore::CountDistinctItems() const {
  if (distinct_items_valid_) return distinct_items_cache_;
  std::vector<bool> seen(item_id_bound_, false);
  size_t count = 0;
  for (const Receipt& receipt : receipts_) {
    for (const ItemId item : receipt.items) {
      if (!seen[item]) {
        seen[item] = true;
        ++count;
      }
    }
  }
  distinct_items_cache_ = count;
  distinct_items_valid_ = true;
  return count;
}

}  // namespace retail
}  // namespace churnlab
