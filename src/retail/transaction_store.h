#ifndef CHURNLAB_RETAIL_TRANSACTION_STORE_H_
#define CHURNLAB_RETAIL_TRANSACTION_STORE_H_

#include <span>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "retail/types.h"

namespace churnlab {
namespace retail {

/// \brief In-memory receipt store with per-customer chronological access.
///
/// The store is append-then-read: receipts are appended in any order, then
/// `Finalize()` sorts them by (customer, day) and builds the per-customer
/// index. Reads before finalization fail. This two-phase design keeps the
/// storage layout a single contiguous vector (cache-friendly scans) at the
/// cost of no incremental updates — exactly what a batch attrition analysis
/// needs.
///
/// \code
///   TransactionStore store;
///   store.Append({.customer = 7, .day = 3, .spend = 21.4, .items = {1, 5}});
///   store.Finalize();
///   for (const Receipt& r : store.History(7)) { ... }
/// \endcode
class TransactionStore {
 public:
  TransactionStore() = default;

  TransactionStore(TransactionStore&&) = default;
  TransactionStore& operator=(TransactionStore&&) = default;
  TransactionStore(const TransactionStore&) = delete;
  TransactionStore& operator=(const TransactionStore&) = delete;

  /// Appends one receipt. The item list is sorted and deduplicated (baskets
  /// are item sets in this model). Fails if the store is already finalized,
  /// the customer id is invalid, or the day is negative.
  Status Append(Receipt receipt);

  /// Sorts receipts and builds the customer index. Idempotent.
  void Finalize();

  bool finalized() const { return finalized_; }

  size_t num_receipts() const { return receipts_.size(); }
  size_t num_customers() const { return customer_index_.size(); }
  bool empty() const { return receipts_.empty(); }

  /// Chronologically ordered receipts of `customer`; empty span for unknown
  /// customers. Requires `finalized()`.
  std::span<const Receipt> History(CustomerId customer) const;

  /// All customer ids in ascending order. Requires `finalized()`.
  const std::vector<CustomerId>& Customers() const;

  /// All receipts sorted by (customer, day). Requires `finalized()`.
  std::span<const Receipt> AllReceipts() const;

  /// Earliest / latest receipt day; {0, -1} when empty.
  Day min_day() const { return min_day_; }
  Day max_day() const { return max_day_; }

  /// Largest item id referenced + 1 (0 when empty) — vectors indexed by
  /// ItemId can be sized with this.
  size_t item_id_bound() const { return item_id_bound_; }

  /// Number of distinct items referenced across all receipts (O(items)
  /// bitmap scan; cached after first call on a finalized store).
  size_t CountDistinctItems() const;

 private:
  struct CustomerSlot {
    size_t begin = 0;
    size_t end = 0;
  };

  std::vector<Receipt> receipts_;
  std::unordered_map<CustomerId, CustomerSlot> customer_index_;
  std::vector<CustomerId> customers_sorted_;
  bool finalized_ = false;
  Day min_day_ = 0;
  Day max_day_ = -1;
  size_t item_id_bound_ = 0;
  mutable size_t distinct_items_cache_ = 0;
  mutable bool distinct_items_valid_ = false;
};

}  // namespace retail
}  // namespace churnlab

#endif  // CHURNLAB_RETAIL_TRANSACTION_STORE_H_
