#include "retail/item_dictionary.h"

namespace churnlab {
namespace retail {

ItemId ItemDictionary::GetOrAdd(std::string_view name) {
  const auto it = index_.find(std::string(name));
  if (it != index_.end()) return it->second;
  const ItemId id = static_cast<ItemId>(names_.size());
  names_.emplace_back(name);
  index_.emplace(names_.back(), id);
  return id;
}

ItemId ItemDictionary::Find(std::string_view name) const {
  const auto it = index_.find(std::string(name));
  return it == index_.end() ? kInvalidItem : it->second;
}

Result<std::string> ItemDictionary::Name(ItemId id) const {
  if (id >= names_.size()) {
    return Status::OutOfRange("unknown item id " + std::to_string(id));
  }
  return names_[id];
}

std::string ItemDictionary::NameOrPlaceholder(ItemId id) const {
  if (id < names_.size()) return names_[id];
  return "item#" + std::to_string(id);
}

}  // namespace retail
}  // namespace churnlab
