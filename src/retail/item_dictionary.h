#ifndef CHURNLAB_RETAIL_ITEM_DICTIONARY_H_
#define CHURNLAB_RETAIL_ITEM_DICTIONARY_H_

#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "retail/types.h"

namespace churnlab {
namespace retail {

/// \brief Interns product names to dense `ItemId`s (dictionary encoding).
///
/// Receipts store integer ids only; names live here once. Ids are assigned
/// contiguously from 0 in first-seen order, so they can index plain vectors
/// in the models.
class ItemDictionary {
 public:
  ItemDictionary() = default;

  /// Returns the id of `name`, interning it if new.
  ItemId GetOrAdd(std::string_view name);

  /// Returns the id of `name` or kInvalidItem if absent.
  ItemId Find(std::string_view name) const;

  /// True iff `name` is interned.
  bool Contains(std::string_view name) const {
    return Find(name) != kInvalidItem;
  }

  /// Name of `id`; fails with OutOfRange for unknown ids.
  Result<std::string> Name(ItemId id) const;

  /// Name of `id`; "item#<id>" for unknown ids (report-friendly).
  std::string NameOrPlaceholder(ItemId id) const;

  size_t size() const { return names_.size(); }
  bool empty() const { return names_.empty(); }

  /// All names, indexable by ItemId.
  const std::vector<std::string>& names() const { return names_; }

 private:
  std::vector<std::string> names_;
  std::unordered_map<std::string, ItemId> index_;
};

}  // namespace retail
}  // namespace churnlab

#endif  // CHURNLAB_RETAIL_ITEM_DICTIONARY_H_
