#ifndef CHURNLAB_RETAIL_TAXONOMY_H_
#define CHURNLAB_RETAIL_TAXONOMY_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "retail/types.h"

namespace churnlab {
namespace retail {

/// \brief Three-level product taxonomy: product -> segment -> department.
///
/// The paper's retailer provides a taxonomy that "enables abstracting
/// products in segments" (4M products grouped into 3,388 segments); the
/// stability model is evaluated at segment granularity. This class stores
/// the two upward mappings plus display names, and offers the abstraction
/// operation models need (`SegmentOf`).
///
/// Segments and departments use dense ids assigned via AddDepartment /
/// AddSegment; products are attached with AssignItem. The structure is
/// append-only.
class Taxonomy {
 public:
  Taxonomy() = default;

  /// Registers a department, returning its id.
  DepartmentId AddDepartment(std::string name);

  /// Registers a segment under `department` (must exist), returning its id.
  Result<SegmentId> AddSegment(std::string name, DepartmentId department);

  /// Maps product `item` to `segment` (must exist). Re-assigning an item to
  /// a different segment fails with AlreadyExists; assigning the same
  /// segment twice is a no-op.
  Status AssignItem(ItemId item, SegmentId segment);

  /// Segment of `item`, or kInvalidSegment when the item was never assigned.
  SegmentId SegmentOf(ItemId item) const;

  /// Department of `segment`; fails with OutOfRange for unknown segments.
  Result<DepartmentId> DepartmentOf(SegmentId segment) const;

  /// True iff `item` has a segment assignment.
  bool HasItem(ItemId item) const;

  Result<std::string> SegmentName(SegmentId segment) const;
  Result<std::string> DepartmentName(DepartmentId department) const;
  std::string SegmentNameOrPlaceholder(SegmentId segment) const;

  size_t num_departments() const { return department_names_.size(); }
  size_t num_segments() const { return segment_names_.size(); }
  /// Number of products with a segment assignment.
  size_t num_assigned_items() const { return num_assigned_; }

  /// Items of `segment` in id order (O(total items) scan; intended for
  /// reports, not hot paths).
  std::vector<ItemId> ItemsOfSegment(SegmentId segment) const;

  /// Verifies referential integrity (every segment's department exists,
  /// every assigned item's segment exists).
  Status Validate() const;

 private:
  std::vector<std::string> department_names_;
  std::vector<std::string> segment_names_;
  std::vector<DepartmentId> segment_department_;
  // Indexed by ItemId; kInvalidSegment = unassigned. Grown on demand.
  std::vector<SegmentId> item_segment_;
  size_t num_assigned_ = 0;
};

}  // namespace retail
}  // namespace churnlab

#endif  // CHURNLAB_RETAIL_TAXONOMY_H_
