#ifndef CHURNLAB_OBS_JSON_H_
#define CHURNLAB_OBS_JSON_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/result.h"

namespace churnlab {
namespace obs {

/// \brief Streaming JSON serializer used by the telemetry exporter.
///
/// Commas and nesting are handled automatically; the caller supplies the
/// structure:
/// \code
///   JsonWriter json;
///   json.BeginObject().Key("version").Uint(1).Key("items").BeginArray()
///       .Double(0.5).EndArray().EndObject();
///   std::string doc = json.str();
/// \endcode
/// Non-finite doubles serialize as null so the output is always valid JSON.
class JsonWriter {
 public:
  JsonWriter& BeginObject();
  JsonWriter& EndObject();
  JsonWriter& BeginArray();
  JsonWriter& EndArray();

  /// Writes an object key; the next call must write its value.
  JsonWriter& Key(std::string_view key);

  JsonWriter& String(std::string_view value);
  JsonWriter& Int(int64_t value);
  JsonWriter& Uint(uint64_t value);
  JsonWriter& Double(double value);
  JsonWriter& Bool(bool value);
  JsonWriter& Null();

  /// The serialized document so far.
  const std::string& str() const { return out_; }

 private:
  enum class Scope : uint8_t { kObject, kArray };

  void BeforeValue();
  void Append(std::string_view text) { out_.append(text); }
  void AppendEscaped(std::string_view text);

  std::string out_;
  std::vector<Scope> scopes_;
  std::vector<bool> has_elements_;
  bool pending_key_ = false;
};

/// A parsed JSON value (tests and telemetry round-trips). Object member
/// order is preserved.
struct JsonValue {
  enum class Kind : uint8_t {
    kNull,
    kBool,
    kNumber,
    kString,
    kArray,
    kObject,
  };

  Kind kind = Kind::kNull;
  bool bool_value = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;

  bool is_object() const { return kind == Kind::kObject; }
  bool is_array() const { return kind == Kind::kArray; }

  /// Member lookup for objects; nullptr when absent or not an object.
  const JsonValue* Find(std::string_view key) const;
};

/// Parses a complete JSON document (trailing whitespace allowed, trailing
/// garbage rejected). Supports the full JSON grammar including \uXXXX
/// escapes (encoded to UTF-8; surrogate pairs are combined).
Result<JsonValue> ParseJson(std::string_view text);

}  // namespace obs
}  // namespace churnlab

#endif  // CHURNLAB_OBS_JSON_H_
