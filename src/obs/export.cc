#include "obs/export.h"

#include <cstdio>

namespace churnlab {
namespace obs {

void JsonExporter::WriteHistogram(const HistogramSnapshot& histogram,
                                  JsonWriter* json) {
  json->BeginObject();
  json->Key("count").Uint(histogram.count);
  json->Key("sum").Double(histogram.sum);
  json->Key("min").Double(histogram.min);
  json->Key("max").Double(histogram.max);
  json->Key("mean").Double(histogram.Mean());
  json->Key("p50").Double(histogram.Percentile(0.50));
  json->Key("p90").Double(histogram.Percentile(0.90));
  json->Key("p99").Double(histogram.Percentile(0.99));
  json->Key("buckets").BeginArray();
  for (size_t i = 0; i < histogram.buckets.size(); ++i) {
    // Empty buckets are omitted to keep documents compact; the bucket
    // layout is implied by the histogram's options.
    if (histogram.buckets[i] == 0) continue;
    json->BeginObject();
    if (i < histogram.bounds.size()) {
      json->Key("le").Double(histogram.bounds[i]);
    } else {
      json->Key("le").String("+inf");
    }
    json->Key("count").Uint(histogram.buckets[i]);
    json->EndObject();
  }
  json->EndArray();
  json->EndObject();
}

void JsonExporter::WriteProfileNode(const ProfileNode& node,
                                    JsonWriter* json) {
  json->BeginObject();
  json->Key("name").String(node.name);
  json->Key("count").Uint(node.count);
  json->Key("total_ns").Uint(node.total_ns);
  json->Key("self_ns").Uint(node.self_ns);
  json->Key("children").BeginArray();
  for (const ProfileNode& child : node.children) {
    WriteProfileNode(child, json);
  }
  json->EndArray();
  json->EndObject();
}

std::string JsonExporter::ExportTelemetry(const MetricsSnapshot& metrics,
                                          const ProfileNode* trace) {
  JsonWriter json;
  json.BeginObject();
  json.Key("churnlab_telemetry_version").Int(kTelemetrySchemaVersion);

  json.Key("counters").BeginObject();
  for (const MetricsSnapshot::CounterSample& counter : metrics.counters) {
    json.Key(counter.name).Uint(counter.value);
  }
  json.EndObject();

  json.Key("gauges").BeginObject();
  for (const MetricsSnapshot::GaugeSample& gauge : metrics.gauges) {
    json.Key(gauge.name).Double(gauge.value);
  }
  json.EndObject();

  json.Key("histograms").BeginObject();
  for (const MetricsSnapshot::HistogramSample& sample : metrics.histograms) {
    json.Key(sample.name);
    WriteHistogram(sample.histogram, &json);
  }
  json.EndObject();

  if (trace != nullptr) {
    json.Key("trace");
    WriteProfileNode(*trace, &json);
  }
  json.EndObject();
  return json.str();
}

std::string JsonExporter::ExportGlobal() {
  const MetricsSnapshot metrics = MetricsRegistry::Global().Snapshot();
  if (Trace::IsEnabled()) {
    const ProfileNode trace = Trace::Collect();
    return ExportTelemetry(metrics, &trace);
  }
  return ExportTelemetry(metrics, nullptr);
}

Status JsonExporter::WriteGlobalTelemetry(const std::string& path) {
  const std::string document = ExportGlobal();
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) {
    return Status::IOError("cannot open '" + path + "' for writing");
  }
  const size_t written =
      std::fwrite(document.data(), 1, document.size(), file);
  const bool newline_ok = std::fputc('\n', file) != EOF;
  if (std::fclose(file) != 0 || written != document.size() || !newline_ok) {
    return Status::IOError("failed writing telemetry to '" + path + "'");
  }
  return Status::OK();
}

}  // namespace obs
}  // namespace churnlab
