#ifndef CHURNLAB_OBS_METRICS_H_
#define CHURNLAB_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace churnlab {
namespace obs {

/// \file
/// Lock-cheap process metrics: counters, gauges, and fixed-bucket
/// histograms, owned by a named registry. Metric objects are allocated once
/// and never freed (Reset zeroes values in place), so hot paths may cache
/// the pointer returned by the registry:
///
/// \code
///   static obs::Counter* const receipts =
///       obs::MetricsRegistry::Global().GetCounter(
///           "churnlab.retail.receipts_loaded");
///   receipts->Increment(n);
/// \endcode
///
/// Names follow the `churnlab.<subsystem>.<name>` scheme documented in
/// docs/OBSERVABILITY.md.

/// Monotonically increasing event count. Thread-safe.
class Counter {
 public:
  void Increment(uint64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  uint64_t Value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Last-write-wins instantaneous value. Thread-safe.
class Gauge {
 public:
  void Set(double value) { value_.store(value, std::memory_order_relaxed); }
  void Add(double delta);
  double Value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Bucket layout of a histogram: ascending upper bounds; values above the
/// last bound land in an implicit overflow bucket.
struct HistogramOptions {
  std::vector<double> bucket_bounds;

  /// Default layout for latency-style metrics: 1-2-5 steps from 1 to 1e7
  /// (microseconds when callers record microseconds).
  static HistogramOptions ExponentialLatency();
};

/// Point-in-time copy of a histogram, with percentile estimation by linear
/// interpolation inside the containing bucket.
struct HistogramSnapshot {
  std::vector<double> bounds;
  std::vector<uint64_t> buckets;  ///< bounds.size() + 1 (overflow last).
  uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;

  double Mean() const { return count == 0 ? 0.0 : sum / count; }
  /// Estimated value at quantile `q` in [0, 1]; 0 when empty. Clamped to
  /// the observed [min, max].
  double Percentile(double q) const;
};

/// Fixed-bucket histogram. Record() is wait-free (atomic adds only).
class Histogram {
 public:
  explicit Histogram(HistogramOptions options);

  void Record(double value);
  HistogramSnapshot Snapshot() const;
  void Reset();

 private:
  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<uint64_t>[]> buckets_;
  std::atomic<uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_{0.0};
  std::atomic<double> max_{0.0};
};

/// All registered metrics at one point in time, sorted by name.
struct MetricsSnapshot {
  struct CounterSample {
    std::string name;
    uint64_t value = 0;
  };
  struct GaugeSample {
    std::string name;
    double value = 0.0;
  };
  struct HistogramSample {
    std::string name;
    HistogramSnapshot histogram;
  };

  std::vector<CounterSample> counters;
  std::vector<GaugeSample> gauges;
  std::vector<HistogramSample> histograms;
};

/// \brief Named metric registry; `Global()` is the process-wide instance.
///
/// Lookup takes a mutex; recording through the returned pointers is
/// lock-free. Safe for concurrent use from ThreadPool workers.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  static MetricsRegistry& Global();

  /// Finds or creates the named metric. The pointer stays valid (and keeps
  /// pointing at the same metric) for the registry's lifetime.
  Counter* GetCounter(std::string_view name);
  Gauge* GetGauge(std::string_view name);
  Histogram* GetHistogram(
      std::string_view name,
      const HistogramOptions& options = HistogramOptions::ExponentialLatency());

  MetricsSnapshot Snapshot() const;

  /// Zeroes every metric in place; previously returned pointers stay valid.
  void Reset();

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

/// Detailed timing collects per-operation latency histograms on hot paths
/// (per-window stability, per-observe latency). Off by default so the
/// instrumentation costs one predicted branch when idle; the CLI enables it
/// for --metrics-out / --trace runs.
void SetDetailedTiming(bool enabled);
bool DetailedTimingEnabled();

/// Monotonic clock used by the telemetry layer, in nanoseconds.
uint64_t MonotonicNanos();

/// RAII latency sample: records elapsed microseconds into `histogram` on
/// destruction, but only when detailed timing is enabled at construction.
class ScopedLatency {
 public:
  explicit ScopedLatency(Histogram* histogram)
      : histogram_(DetailedTimingEnabled() ? histogram : nullptr),
        start_ns_(histogram_ != nullptr ? MonotonicNanos() : 0) {}
  ~ScopedLatency() {
    if (histogram_ != nullptr) {
      histogram_->Record(static_cast<double>(MonotonicNanos() - start_ns_) *
                         1e-3);
    }
  }

  ScopedLatency(const ScopedLatency&) = delete;
  ScopedLatency& operator=(const ScopedLatency&) = delete;

 private:
  Histogram* histogram_;
  uint64_t start_ns_;
};

}  // namespace obs
}  // namespace churnlab

#endif  // CHURNLAB_OBS_METRICS_H_
