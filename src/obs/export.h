#ifndef CHURNLAB_OBS_EXPORT_H_
#define CHURNLAB_OBS_EXPORT_H_

#include <string>

#include "common/status.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace churnlab {
namespace obs {

/// Version stamp of the telemetry JSON schema (see docs/OBSERVABILITY.md).
/// Bump on breaking layout changes.
inline constexpr int kTelemetrySchemaVersion = 1;

/// \brief Serializes metrics + trace snapshots to the versioned telemetry
/// JSON document.
///
/// Document layout (version 1):
/// \code
///   {
///     "churnlab_telemetry_version": 1,
///     "counters":   {"churnlab.<subsystem>.<name>": <uint>, ...},
///     "gauges":     {"<name>": <double>, ...},
///     "histograms": {"<name>": {"count":., "sum":., "min":., "max":.,
///                               "mean":., "p50":., "p90":., "p99":.,
///                               "buckets":[{"le":<bound|"+inf">,
///                                           "count":<uint>}, ...]}, ...},
///     "trace":      {<profile tree>}        // only when tracing is on
///   }
/// \endcode
class JsonExporter {
 public:
  /// Serializes an explicit snapshot. `trace` may be null (field omitted).
  static std::string ExportTelemetry(const MetricsSnapshot& metrics,
                                     const ProfileNode* trace);

  /// Snapshot of the global registry plus, when tracing is enabled, the
  /// collected profile tree.
  static std::string ExportGlobal();

  /// ExportGlobal() to a file.
  static Status WriteGlobalTelemetry(const std::string& path);

  /// Appends one profile (sub)tree to `json` as a JSON object.
  static void WriteProfileNode(const ProfileNode& node, JsonWriter* json);

  /// Appends one histogram snapshot to `json` as a JSON object.
  static void WriteHistogram(const HistogramSnapshot& histogram,
                             JsonWriter* json);
};

}  // namespace obs
}  // namespace churnlab

#endif  // CHURNLAB_OBS_EXPORT_H_
