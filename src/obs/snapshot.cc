#include "obs/snapshot.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "obs/json.h"

namespace churnlab {
namespace obs {

TelemetrySnapshotter::TelemetrySnapshotter(Options options,
                                           MetricsRegistry* registry)
    : options_(std::move(options)), registry_(registry) {}

TelemetrySnapshotter::~TelemetrySnapshotter() { Stop(); }

Status TelemetrySnapshotter::Start() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (running_) {
      return Status::InvalidArgument("telemetry snapshotter already running");
    }
  }
  file_ = std::fopen(options_.path.c_str(), "w");
  if (file_ == nullptr) {
    return Status::IOError("cannot open telemetry output '" + options_.path +
                           "'");
  }

  JsonWriter header;
  header.BeginObject();
  header.Key("churnlab_timeseries_version").Int(kTimeseriesSchemaVersion);
  header.Key("interval_ms")
      .Int(std::max(10, options_.interval_ms));
  header.Key("started_at_ns").Uint(MonotonicNanos());
  header.EndObject();
  std::fprintf(file_, "%s\n", header.str().c_str());
  std::fflush(file_);

  // Counter baseline: the first sample's deltas are relative to now, so a
  // snapshotter started mid-process doesn't report the whole history as
  // one spike.
  prev_counters_.clear();
  for (const MetricsSnapshot::CounterSample& counter :
       registry_->Snapshot().counters) {
    prev_counters_[counter.name] = counter.value;
  }
  seq_ = 0;
  last_sample_ns_ = 0;

  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_requested_ = false;
    running_ = true;
  }
  thread_ = std::thread(&TelemetrySnapshotter::Run, this);
  return Status::OK();
}

void TelemetrySnapshotter::Stop() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!running_) return;
    stop_requested_ = true;
  }
  wake_.notify_all();
  if (thread_.joinable()) thread_.join();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    running_ = false;
  }
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
  }
}

bool TelemetrySnapshotter::running() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return running_;
}

uint64_t TelemetrySnapshotter::samples_taken() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return seq_;
}

void TelemetrySnapshotter::Run() {
  const auto interval =
      std::chrono::milliseconds(std::max(10, options_.interval_ms));
  std::unique_lock<std::mutex> lock(mutex_);
  while (!stop_requested_) {
    if (wake_.wait_for(lock, interval,
                       [this] { return stop_requested_; })) {
      break;
    }
    lock.unlock();
    WriteSample();
    lock.lock();
  }
  lock.unlock();
  // Final sample so the series always covers the end of the run.
  WriteSample();
}

void TelemetrySnapshotter::WriteSample() {
  const MetricsSnapshot metrics = registry_->Snapshot();
  // MonotonicNanos ties between samples would break strict monotonicity of
  // t_ns; nudge forward (the clock is nanosecond-grained, so this is
  // effectively unreachable).
  uint64_t now = MonotonicNanos();
  if (now <= last_sample_ns_) now = last_sample_ns_ + 1;

  JsonWriter line;
  line.BeginObject();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    line.Key("seq").Uint(seq_);
  }
  line.Key("t_ns").Uint(now);

  line.Key("counters").BeginObject();
  for (const MetricsSnapshot::CounterSample& counter : metrics.counters) {
    uint64_t& prev = prev_counters_[counter.name];
    // Reset() between samples makes the total go backwards; report the new
    // total as the delta rather than a huge unsigned wraparound.
    const uint64_t delta =
        counter.value >= prev ? counter.value - prev : counter.value;
    prev = counter.value;
    line.Key(counter.name).BeginObject();
    line.Key("total").Uint(counter.value);
    line.Key("delta").Uint(delta);
    line.EndObject();
  }
  line.EndObject();

  line.Key("gauges").BeginObject();
  for (const MetricsSnapshot::GaugeSample& gauge : metrics.gauges) {
    line.Key(gauge.name).Double(gauge.value);
  }
  line.EndObject();

  line.Key("histograms").BeginObject();
  for (const MetricsSnapshot::HistogramSample& sample : metrics.histograms) {
    const HistogramSnapshot& histogram = sample.histogram;
    line.Key(sample.name).BeginObject();
    line.Key("count").Uint(histogram.count);
    line.Key("mean").Double(histogram.Mean());
    line.Key("p50").Double(histogram.Percentile(0.50));
    line.Key("p90").Double(histogram.Percentile(0.90));
    line.Key("p99").Double(histogram.Percentile(0.99));
    line.EndObject();
  }
  line.EndObject();

  line.EndObject();
  std::fprintf(file_, "%s\n", line.str().c_str());
  std::fflush(file_);

  last_sample_ns_ = now;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++seq_;
  }
  static Counter* const snapshots_taken =
      MetricsRegistry::Global().GetCounter("churnlab.obs.snapshots_taken");
  snapshots_taken->Increment();
}

}  // namespace obs
}  // namespace churnlab
