#include "obs/trace.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <map>
#include <memory>
#include <mutex>

#include "obs/metrics.h"

namespace churnlab {
namespace obs {

namespace {

std::atomic<bool> g_enabled{false};

/// Per-thread aggregation node; one per distinct span-name path.
struct AggNode {
  uint64_t count = 0;
  uint64_t total_ns = 0;
  std::map<std::string, std::unique_ptr<AggNode>, std::less<>> children;

  AggNode* Child(std::string_view name) {
    const auto it = children.find(name);
    if (it != children.end()) return it->second.get();
    return children.emplace(std::string(name), std::make_unique<AggNode>())
        .first->second.get();
  }

  void ZeroInPlace() {
    count = 0;
    total_ns = 0;
    for (auto& [name, child] : children) child->ZeroInPlace();
  }
};

struct ThreadTree;

/// Registry of live per-thread trees plus the merged trees of exited
/// threads. Span recording itself only takes the owning thread's mutex;
/// the global mutex guards the thread list and the retired tree.
struct Global {
  std::mutex mutex;
  std::vector<ThreadTree*> threads;
  AggNode retired;
};

Global& GlobalState() {
  static Global* const kGlobal = new Global();
  return *kGlobal;
}

void MergeInto(const AggNode& source, AggNode* target) {
  target->count += source.count;
  target->total_ns += source.total_ns;
  for (const auto& [name, child] : source.children) {
    MergeInto(*child, target->Child(name));
  }
}

struct ThreadTree {
  std::mutex mutex;             // guards root/stack against Collect/Reset
  AggNode root;
  std::vector<AggNode*> stack;  // innermost open span last

  ThreadTree() {
    Global& global = GlobalState();
    std::lock_guard<std::mutex> lock(global.mutex);
    global.threads.push_back(this);
  }

  ~ThreadTree() {
    Global& global = GlobalState();
    std::lock_guard<std::mutex> lock(global.mutex);
    MergeInto(root, &global.retired);
    global.threads.erase(
        std::remove(global.threads.begin(), global.threads.end(), this),
        global.threads.end());
  }
};

ThreadTree& LocalTree() {
  thread_local ThreadTree tree;
  return tree;
}

void BuildProfile(const std::string& name, const AggNode& node,
                  ProfileNode* out) {
  out->name = name;
  out->count = node.count;
  out->total_ns = node.total_ns;
  uint64_t children_total = 0;
  out->children.reserve(node.children.size());
  for (const auto& [child_name, child] : node.children) {
    ProfileNode profile_child;
    BuildProfile(child_name, *child, &profile_child);
    children_total += profile_child.total_ns;
    out->children.push_back(std::move(profile_child));
  }
  out->self_ns =
      node.total_ns > children_total ? node.total_ns - children_total : 0;
  std::stable_sort(out->children.begin(), out->children.end(),
                   [](const ProfileNode& a, const ProfileNode& b) {
                     return a.total_ns > b.total_ns;
                   });
}

void RenderNode(const ProfileNode& node, int depth, uint64_t root_total,
                std::string* out) {
  char line[160];
  std::string label(static_cast<size_t>(depth) * 2, ' ');
  label += node.name;
  if (label.size() > 40) label.resize(40);
  const double share = root_total == 0
                           ? 0.0
                           : 100.0 * static_cast<double>(node.total_ns) /
                                 static_cast<double>(root_total);
  std::snprintf(line, sizeof(line), "%-40s %10llu %12.3f %12.3f %7.1f%%\n",
                label.c_str(), static_cast<unsigned long long>(node.count),
                static_cast<double>(node.total_ns) * 1e-6,
                static_cast<double>(node.self_ns) * 1e-6, share);
  out->append(line);
  for (const ProfileNode& child : node.children) {
    RenderNode(child, depth + 1, root_total, out);
  }
}

}  // namespace

const ProfileNode* ProfileNode::Find(std::string_view child_name) const {
  for (const ProfileNode& child : children) {
    if (child.name == child_name) return &child;
  }
  return nullptr;
}

void Trace::Enable(bool enabled) {
  g_enabled.store(enabled, std::memory_order_relaxed);
}

bool Trace::IsEnabled() {
  return g_enabled.load(std::memory_order_relaxed);
}

void Trace::Reset() {
  Global& global = GlobalState();
  std::lock_guard<std::mutex> lock(global.mutex);
  for (ThreadTree* thread : global.threads) {
    std::lock_guard<std::mutex> thread_lock(thread->mutex);
    thread->root.ZeroInPlace();
  }
  global.retired.ZeroInPlace();
}

ProfileNode Trace::Collect() {
  Global& global = GlobalState();
  std::lock_guard<std::mutex> lock(global.mutex);
  AggNode merged;
  MergeInto(global.retired, &merged);
  for (ThreadTree* thread : global.threads) {
    std::lock_guard<std::mutex> thread_lock(thread->mutex);
    MergeInto(thread->root, &merged);
  }
  // The synthetic root's total is the sum of its children: the
  // conventional "total traced work" denominator (per-thread span roots
  // may overlap in wall time).
  for (const auto& [name, child] : merged.children) {
    merged.total_ns += child->total_ns;
  }
  merged.count = 0;
  ProfileNode root;
  BuildProfile("run", merged, &root);
  return root;
}

std::string Trace::RenderAscii(const ProfileNode& root) {
  std::string out;
  char header[160];
  std::snprintf(header, sizeof(header), "%-40s %10s %12s %12s %8s\n", "span",
                "calls", "total(ms)", "self(ms)", "share");
  out.append(header);
  out.append(86, '-');
  out.push_back('\n');
  RenderNode(root, 0, root.total_ns, &out);
  return out;
}

ScopedSpan::ScopedSpan(const char* name) {
  if (!Trace::IsEnabled()) return;
  ThreadTree& tree = LocalTree();
  std::lock_guard<std::mutex> lock(tree.mutex);
  AggNode* parent = tree.stack.empty() ? &tree.root : tree.stack.back();
  AggNode* node = parent->Child(name);
  tree.stack.push_back(node);
  node_ = node;
  start_ns_ = MonotonicNanos();
}

ScopedSpan::~ScopedSpan() {
  if (node_ == nullptr) return;
  const uint64_t elapsed = MonotonicNanos() - start_ns_;
  ThreadTree& tree = LocalTree();
  std::lock_guard<std::mutex> lock(tree.mutex);
  AggNode* node = static_cast<AggNode*>(node_);
  node->count += 1;
  node->total_ns += elapsed;
  if (!tree.stack.empty() && tree.stack.back() == node) tree.stack.pop_back();
}

}  // namespace obs
}  // namespace churnlab
