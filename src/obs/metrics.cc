#include "obs/metrics.h"

#include <algorithm>
#include <chrono>

namespace churnlab {
namespace obs {

namespace {

std::atomic<bool> g_detailed_timing{false};

// fetch_add on atomic<double> is C++20 but spotty in older libstdc++;
// a CAS loop is portable and the slow path is rare (metrics writes are
// far apart compared to the retry window).
void AtomicAdd(std::atomic<double>* target, double delta) {
  double current = target->load(std::memory_order_relaxed);
  while (!target->compare_exchange_weak(current, current + delta,
                                        std::memory_order_relaxed)) {
  }
}

void AtomicMin(std::atomic<double>* target, double value) {
  double current = target->load(std::memory_order_relaxed);
  while (value < current && !target->compare_exchange_weak(
                                current, value, std::memory_order_relaxed)) {
  }
}

void AtomicMax(std::atomic<double>* target, double value) {
  double current = target->load(std::memory_order_relaxed);
  while (value > current && !target->compare_exchange_weak(
                                current, value, std::memory_order_relaxed)) {
  }
}

}  // namespace

void SetDetailedTiming(bool enabled) {
  g_detailed_timing.store(enabled, std::memory_order_relaxed);
}

bool DetailedTimingEnabled() {
  return g_detailed_timing.load(std::memory_order_relaxed);
}

uint64_t MonotonicNanos() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

void Gauge::Add(double delta) { AtomicAdd(&value_, delta); }

HistogramOptions HistogramOptions::ExponentialLatency() {
  HistogramOptions options;
  // 1-2-5 decades covering 1 us .. 10 s when samples are microseconds.
  for (double decade = 1.0; decade < 1e7 * 1.5; decade *= 10.0) {
    options.bucket_bounds.push_back(decade);
    options.bucket_bounds.push_back(decade * 2.0);
    options.bucket_bounds.push_back(decade * 5.0);
  }
  return options;
}

Histogram::Histogram(HistogramOptions options)
    : bounds_(std::move(options.bucket_bounds)) {
  std::sort(bounds_.begin(), bounds_.end());
  bounds_.erase(std::unique(bounds_.begin(), bounds_.end()), bounds_.end());
  buckets_ = std::make_unique<std::atomic<uint64_t>[]>(bounds_.size() + 1);
  for (size_t i = 0; i <= bounds_.size(); ++i) buckets_[i].store(0);
}

void Histogram::Record(double value) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
  const size_t bucket = static_cast<size_t>(it - bounds_.begin());
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
  const uint64_t previous = count_.fetch_add(1, std::memory_order_relaxed);
  AtomicAdd(&sum_, value);
  if (previous == 0) {
    // First sample seeds min/max; races with a concurrent first sample are
    // resolved by the CAS loops below.
    min_.store(value, std::memory_order_relaxed);
    max_.store(value, std::memory_order_relaxed);
  }
  AtomicMin(&min_, value);
  AtomicMax(&max_, value);
}

HistogramSnapshot Histogram::Snapshot() const {
  HistogramSnapshot snapshot;
  snapshot.bounds = bounds_;
  snapshot.buckets.resize(bounds_.size() + 1);
  for (size_t i = 0; i <= bounds_.size(); ++i) {
    snapshot.buckets[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  snapshot.count = count_.load(std::memory_order_relaxed);
  snapshot.sum = sum_.load(std::memory_order_relaxed);
  snapshot.min = min_.load(std::memory_order_relaxed);
  snapshot.max = max_.load(std::memory_order_relaxed);
  return snapshot;
}

void Histogram::Reset() {
  for (size_t i = 0; i <= bounds_.size(); ++i) {
    buckets_[i].store(0, std::memory_order_relaxed);
  }
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
  min_.store(0.0, std::memory_order_relaxed);
  max_.store(0.0, std::memory_order_relaxed);
}

double HistogramSnapshot::Percentile(double q) const {
  if (count == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(count);
  uint64_t cumulative = 0;
  for (size_t i = 0; i < buckets.size(); ++i) {
    if (buckets[i] == 0) continue;
    const uint64_t next = cumulative + buckets[i];
    if (static_cast<double>(next) >= target) {
      // Interpolate inside bucket i: [lower, upper].
      const double lower = i == 0 ? min : bounds[i - 1];
      const double upper = i < bounds.size() ? bounds[i] : max;
      const double fraction =
          buckets[i] == 0
              ? 0.0
              : (target - static_cast<double>(cumulative)) /
                    static_cast<double>(buckets[i]);
      const double estimate = lower + (upper - lower) * fraction;
      return std::clamp(estimate, min, max);
    }
    cumulative = next;
  }
  return max;
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* const kRegistry = new MetricsRegistry();
  return *kRegistry;
}

Counter* MetricsRegistry::GetCounter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = counters_.find(name);
  if (it != counters_.end()) return it->second.get();
  return counters_.emplace(std::string(name), std::make_unique<Counter>())
      .first->second.get();
}

Gauge* MetricsRegistry::GetGauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = gauges_.find(name);
  if (it != gauges_.end()) return it->second.get();
  return gauges_.emplace(std::string(name), std::make_unique<Gauge>())
      .first->second.get();
}

Histogram* MetricsRegistry::GetHistogram(std::string_view name,
                                         const HistogramOptions& options) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = histograms_.find(name);
  if (it != histograms_.end()) return it->second.get();
  return histograms_
      .emplace(std::string(name), std::make_unique<Histogram>(options))
      .first->second.get();
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  MetricsSnapshot snapshot;
  snapshot.counters.reserve(counters_.size());
  for (const auto& [name, counter] : counters_) {
    snapshot.counters.push_back({name, counter->Value()});
  }
  snapshot.gauges.reserve(gauges_.size());
  for (const auto& [name, gauge] : gauges_) {
    snapshot.gauges.push_back({name, gauge->Value()});
  }
  snapshot.histograms.reserve(histograms_.size());
  for (const auto& [name, histogram] : histograms_) {
    snapshot.histograms.push_back({name, histogram->Snapshot()});
  }
  return snapshot;
}

void MetricsRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& [name, counter] : counters_) counter->Reset();
  for (const auto& [name, gauge] : gauges_) gauge->Reset();
  for (const auto& [name, histogram] : histograms_) histogram->Reset();
}

}  // namespace obs
}  // namespace churnlab
