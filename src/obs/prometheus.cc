#include "obs/prometheus.h"

#include <cctype>
#include <cinttypes>
#include <cstdio>
#include <string_view>

namespace churnlab {
namespace obs {

namespace {

/// Central metric inventory: help text per base name, mirrored in the
/// docs/OBSERVABILITY.md table. Keep the two in sync when adding metrics.
struct MetricHelpEntry {
  const char* base;
  const char* help;
};

constexpr MetricHelpEntry kInventory[] = {
    {"churnlab.core.alerts_low_stability", "monitor low-stability alerts"},
    {"churnlab.core.alerts_sharp_drop", "monitor sharp-drop alerts"},
    {"churnlab.core.customers_scored", "customers through ScoreDataset"},
    {"churnlab.core.observe_latency_us",
     "per-window scoring latency in microseconds (batch samples 1 in 16)"},
    {"churnlab.core.online_observations",
     "OnlineStabilityScorer::Observe calls"},
    {"churnlab.core.online_windows_emitted",
     "windows emitted by the online scorer"},
    {"churnlab.core.online_windows_per_sec",
     "online emission rate since the first emit"},
    {"churnlab.core.receipts_windowed", "receipts binned into windows"},
    {"churnlab.core.score_customer_us",
     "per-customer scoring latency in microseconds"},
    {"churnlab.core.stability_series_computed",
     "per-customer stability series computed"},
    {"churnlab.core.stability_windows_scored",
     "windows scored in batch passes"},
    {"churnlab.core.windows_built", "windows materialised by Windower::Build"},
    {"churnlab.core.windows_per_sec",
     "batch-scoring throughput of the last ScoreDataset"},
    {"churnlab.eval.auroc_computations", "per-window AUROC evaluations"},
    {"churnlab.eval.fold_ms", "per-CV-fold wall time in milliseconds"},
    {"churnlab.eval.forecast_runs", "forecaster invocations"},
    {"churnlab.eval.grid_cell_ms", "per-grid-cell wall time in milliseconds"},
    {"churnlab.eval.grid_cells_evaluated", "grid-search cells evaluated"},
    {"churnlab.eval.threads",
     "worker threads of the last parallel evaluation sweep"},
    {"churnlab.failpoint.triggered", "injected faults fired"},
    {"churnlab.journal.appended_bytes",
     "bytes appended to write-ahead journal segments"},
    {"churnlab.journal.appended_frames",
     "batch frames appended to the write-ahead journal"},
    {"churnlab.journal.checkpoints", "journal checkpoints written"},
    {"churnlab.journal.discarded_tail_frames",
     "torn tail frames discarded during journal recovery"},
    {"churnlab.journal.fsync_us",
     "journal fsync latency in microseconds"},
    {"churnlab.journal.recovered_frames",
     "frames replayed from the journal during recovery"},
    {"churnlab.journal.recovered_receipts",
     "receipts replayed from the journal during recovery"},
    {"churnlab.journal.truncated_segments",
     "journal segments deleted by checkpoint truncation"},
    {"churnlab.net.bytes_read", "bytes received from HTTP clients"},
    {"churnlab.net.bytes_written", "bytes sent to HTTP clients"},
    {"churnlab.net.coalesced_batch_receipts",
     "receipts per coalesced ingest batch"},
    {"churnlab.net.coalesced_batches",
     "merged ingest batches submitted by the coalescer leader"},
    {"churnlab.net.coalesced_requests",
     "ingest requests folded into coalesced batches"},
    {"churnlab.net.connections", "TCP connections accepted"},
    {"churnlab.net.connections_active", "connections currently being served"},
    {"churnlab.net.drains", "graceful drains completed"},
    {"churnlab.net.inflight", "HTTP requests currently being handled"},
    {"churnlab.net.parse_errors",
     "connections dropped on malformed or oversized HTTP input"},
    {"churnlab.net.pending_receipts",
     "receipts queued in the ingest coalescer"},
    {"churnlab.net.request_us", "per-request handling latency in microseconds"},
    {"churnlab.net.requests", "HTTP requests dispatched"},
    {"churnlab.net.responses_2xx", "HTTP responses with 2xx status"},
    {"churnlab.net.responses_4xx", "HTTP responses with 4xx status"},
    {"churnlab.net.responses_5xx", "HTTP responses with 5xx status"},
    {"churnlab.net.shed",
     "requests shed by admission control or the drain gate (429/503)"},
    {"churnlab.obs.flight_events_recorded",
     "events recorded by the flight recorder (including overwritten ones)"},
    {"churnlab.obs.snapshots_taken",
     "time-series samples taken by the telemetry snapshotter"},
    {"churnlab.retail.datasets_loaded", "CSV/binary datasets loaded"},
    {"churnlab.retail.datasets_saved", "datasets written"},
    {"churnlab.retail.last_load_seconds", "wall time of the last load"},
    {"churnlab.retail.receipts_loaded", "receipts across all loads"},
    {"churnlab.rfm.extractions", "RFM feature-extraction passes"},
    {"churnlab.rfm.feature_rows", "(customer, window) feature rows built"},
    {"churnlab.serve.alerts_raised",
     "fleet alerts raised (all kinds, all operations)"},
    {"churnlab.serve.batches_ingested", "ScoringFleet::IngestBatch calls"},
    {"churnlab.serve.bytes",
     "per-shard customer-state bytes held (scalar + blocks + index)"},
    {"churnlab.serve.bytes_total",
     "customer-state bytes held across all shards"},
    {"churnlab.serve.customers",
     "customers currently held by the fleet state store"},
    {"churnlab.serve.ingest_batch_us",
     "per-batch ingestion latency in microseconds"},
    {"churnlab.serve.poisoned_shards",
     "shards taken out of service after retry exhaustion"},
    {"churnlab.serve.queue_depth",
     "fleet thread-pool tasks queued but not yet running"},
    {"churnlab.serve.receipts_ingested",
     "receipts through ScoringFleet::IngestBatch"},
    {"churnlab.serve.rejected_receipts",
     "malformed receipts quarantined into BatchReport::rejected"},
    {"churnlab.serve.shard_alerts", "per-shard fleet alerts raised"},
    {"churnlab.serve.shard_customers", "per-shard customer population"},
    {"churnlab.serve.shard_ingest_us",
     "per-shard ingest-task latency in microseconds"},
    {"churnlab.serve.shard_last_batch_receipts",
     "receipts routed to the shard by the last batch (queue-depth proxy)"},
    {"churnlab.serve.shard_poisoned", "1 when the shard is poisoned, else 0"},
    {"churnlab.serve.shard_receipts", "per-shard receipts ingested"},
    {"churnlab.serve.shard_rejected", "per-shard receipts quarantined"},
    {"churnlab.serve.shard_retries", "shard-task retry attempts"},
    {"churnlab.serve.snapshot_fallbacks",
     "snapshot restores that fell back to an older generation"},
    {"churnlab.threadpool.dropped_exceptions",
     "task exceptions beyond the first per WaitIdle cycle"},
    {"churnlab.threadpool.workers_started",
     "worker threads started by thread pools"},
};

bool IsValidNameChar(char c, bool first) {
  if ((c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' ||
      c == ':') {
    return true;
  }
  return !first && c >= '0' && c <= '9';
}

/// Splits a registry name into its base and the `{...}` label block (empty
/// when unlabeled). The block, if present, is passed through verbatim —
/// LabeledMetricName already escaped its values.
void SplitLabeledName(std::string_view name, std::string_view* base,
                      std::string_view* labels) {
  const size_t brace = name.find('{');
  if (brace == std::string_view::npos) {
    *base = name;
    *labels = {};
    return;
  }
  *base = name.substr(0, brace);
  *labels = name.substr(brace);
}

void AppendDouble(double value, std::string* out) {
  if (value != value) {
    out->append("NaN");
    return;
  }
  if (value > 1.7976931348623157e308) {
    out->append("+Inf");
    return;
  }
  if (value < -1.7976931348623157e308) {
    out->append("-Inf");
    return;
  }
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  out->append(buffer);
}

void AppendUint(uint64_t value, std::string* out) {
  char buffer[24];
  std::snprintf(buffer, sizeof(buffer), "%" PRIu64, value);
  out->append(buffer);
}

/// Emits the `# HELP` / `# TYPE` preamble once per family (families arrive
/// sorted, so labeled variants of one base are contiguous).
void EmitFamilyHeader(std::string_view base, const std::string& family,
                      const char* type, std::string* out,
                      std::string* last_family) {
  if (family == *last_family) return;
  *last_family = family;
  out->append("# HELP ").append(family).append(" ");
  if (const char* help = MetricHelp(base)) {
    out->append(help);
  } else {
    out->append("churnlab metric ").append(base);
  }
  out->append("\n# TYPE ").append(family).append(" ").append(type);
  out->push_back('\n');
}

/// `name{existing}` + extra label -> `name{existing,extra}`; handles the
/// unlabeled case too.
std::string WithExtraLabel(const std::string& name, std::string_view labels,
                           std::string_view extra) {
  std::string out = name;
  if (labels.empty()) {
    out.push_back('{');
    out.append(extra);
    out.push_back('}');
    return out;
  }
  // labels == "{...}": splice the extra label before the closing brace.
  out.append(labels.substr(0, labels.size() - 1));
  out.push_back(',');
  out.append(extra);
  out.push_back('}');
  return out;
}

}  // namespace

std::string ManglePrometheusName(std::string_view name) {
  std::string out;
  out.reserve(name.size() + 1);
  for (size_t i = 0; i < name.size(); ++i) {
    const char c = name[i];
    if (IsValidNameChar(c, /*first=*/out.empty())) {
      out.push_back(c);
    } else if (out.empty() && c >= '0' && c <= '9') {
      out.push_back('_');
      out.push_back(c);
    } else {
      out.push_back('_');
    }
  }
  if (out.empty()) out = "_";
  return out;
}

std::string LabeledMetricName(
    std::string_view base,
    std::initializer_list<std::pair<std::string_view, std::string_view>>
        labels) {
  std::string name(base);
  if (labels.size() == 0) return name;
  name.push_back('{');
  bool first = true;
  for (const auto& [key, value] : labels) {
    if (!first) name.push_back(',');
    first = false;
    name.append(ManglePrometheusName(key));
    name.append("=\"");
    for (const char c : value) {
      switch (c) {
        case '\\':
          name.append("\\\\");
          break;
        case '"':
          name.append("\\\"");
          break;
        case '\n':
          name.append("\\n");
          break;
        default:
          name.push_back(c);
      }
    }
    name.push_back('"');
  }
  name.push_back('}');
  return name;
}

const char* MetricHelp(std::string_view base) {
  for (const MetricHelpEntry& entry : kInventory) {
    if (base == entry.base) return entry.help;
  }
  return nullptr;
}

std::string ExportPrometheus(const MetricsSnapshot& metrics) {
  std::string out;
  std::string last_family;

  for (const MetricsSnapshot::CounterSample& counter : metrics.counters) {
    std::string_view base, labels;
    SplitLabeledName(counter.name, &base, &labels);
    std::string family = ManglePrometheusName(base);
    // Prometheus counters conventionally carry a _total suffix.
    if (family.size() < 6 ||
        family.compare(family.size() - 6, 6, "_total") != 0) {
      family.append("_total");
    }
    EmitFamilyHeader(base, family, "counter", &out, &last_family);
    out.append(family).append(labels).push_back(' ');
    AppendUint(counter.value, &out);
    out.push_back('\n');
  }

  for (const MetricsSnapshot::GaugeSample& gauge : metrics.gauges) {
    std::string_view base, labels;
    SplitLabeledName(gauge.name, &base, &labels);
    const std::string family = ManglePrometheusName(base);
    EmitFamilyHeader(base, family, "gauge", &out, &last_family);
    out.append(family).append(labels).push_back(' ');
    AppendDouble(gauge.value, &out);
    out.push_back('\n');
  }

  for (const MetricsSnapshot::HistogramSample& sample : metrics.histograms) {
    std::string_view base, labels;
    SplitLabeledName(sample.name, &base, &labels);
    const std::string family = ManglePrometheusName(base);
    EmitFamilyHeader(base, family, "histogram", &out, &last_family);
    const HistogramSnapshot& histogram = sample.histogram;
    uint64_t cumulative = 0;
    for (size_t i = 0; i < histogram.buckets.size(); ++i) {
      cumulative += histogram.buckets[i];
      std::string le = "le=\"";
      if (i < histogram.bounds.size()) {
        AppendDouble(histogram.bounds[i], &le);
      } else {
        le.append("+Inf");
      }
      le.push_back('"');
      out.append(WithExtraLabel(family + "_bucket", labels, le));
      out.push_back(' ');
      AppendUint(cumulative, &out);
      out.push_back('\n');
    }
    out.append(family).append("_sum").append(labels).push_back(' ');
    AppendDouble(histogram.sum, &out);
    out.push_back('\n');
    out.append(family).append("_count").append(labels).push_back(' ');
    AppendUint(histogram.count, &out);
    out.push_back('\n');
  }

  return out;
}

std::string ExportPrometheusGlobal() {
  return ExportPrometheus(MetricsRegistry::Global().Snapshot());
}

Status WritePrometheusFile(const std::string& path) {
  const std::string document = ExportPrometheusGlobal();
  const std::string temp = path + ".tmp";
  std::FILE* file = std::fopen(temp.c_str(), "w");
  if (file == nullptr) {
    return Status::IOError("cannot open '" + temp + "' for writing");
  }
  const size_t written =
      std::fwrite(document.data(), 1, document.size(), file);
  if (std::fclose(file) != 0 || written != document.size()) {
    std::remove(temp.c_str());
    return Status::IOError("failed writing prometheus text to '" + temp +
                           "'");
  }
  if (std::rename(temp.c_str(), path.c_str()) != 0) {
    std::remove(temp.c_str());
    return Status::IOError("cannot rename '" + temp + "' to '" + path + "'");
  }
  return Status::OK();
}

}  // namespace obs
}  // namespace churnlab
