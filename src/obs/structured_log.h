#ifndef CHURNLAB_OBS_STRUCTURED_LOG_H_
#define CHURNLAB_OBS_STRUCTURED_LOG_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/logging.h"
#include "common/status.h"
#include "common/stopwatch.h"
#include "obs/json.h"

namespace churnlab {
namespace obs {

/// \brief Optional process-global JSON-lines sink for structured log
/// events.
///
/// When open, every emitted LogEvent is appended to the sink as one JSON
/// object per line in addition to the human-readable stderr line. Writes
/// are serialized; Open/Close are not thread-safe against concurrent
/// emission (configure once at startup).
class StructuredSink {
 public:
  static Status Open(const std::string& path);
  static void Close();
  static bool IsOpen();
  /// Appends one line (a complete JSON document) to the sink.
  static void Write(std::string_view json_line);
};

/// \brief One leveled, named log event carrying key/value fields.
///
/// Streams through the existing Logger (so `Logger::SetLevel` and the
/// human-readable stderr format still apply) and, when StructuredSink is
/// open, additionally emits a JSON line:
/// \code
///   obs::LogEvent(LogLevel::kInfo, "evaluate_progress", __FILE__, __LINE__)
///       .Int("month", month)
///       .Int("months_total", total);
/// \endcode
/// Events below the logger level are dropped entirely; field expressions
/// are still evaluated (use Logger::IsEnabled to guard expensive ones).
class LogEvent {
 public:
  LogEvent(LogLevel level, std::string_view event, const char* file,
           int line);
  ~LogEvent();

  LogEvent(const LogEvent&) = delete;
  LogEvent& operator=(const LogEvent&) = delete;

  LogEvent& Str(std::string_view key, std::string_view value);
  LogEvent& Int(std::string_view key, int64_t value);
  LogEvent& Uint(std::string_view key, uint64_t value);
  LogEvent& Num(std::string_view key, double value);
  LogEvent& Bool(std::string_view key, bool value);

  bool enabled() const { return enabled_; }

 private:
  bool enabled_;
  LogLevel level_;
  const char* file_;
  int line_;
  std::string text_;  // human-readable "event key=value ..." line
  JsonWriter json_;
};

/// \brief Rate-limited progress reporting for long-running loops
/// (evaluate / forecast / grid search). Emits kInfo LogEvents, so progress
/// is suppressed below kInfo; intermediate steps are dropped when they
/// arrive faster than `min_interval_seconds`.
class ProgressLogger {
 public:
  ProgressLogger(std::string task, uint64_t total_steps,
                 double min_interval_seconds = 0.5);

  /// Reports that `completed` of the total steps are done. `detail` is an
  /// optional free-form annotation (e.g. "month=12").
  void Step(uint64_t completed, std::string_view detail = "");

  /// Always emits a final 100% event (unless suppressed by level).
  void Done();

 private:
  void Emit(uint64_t completed, std::string_view detail);

  std::string task_;
  uint64_t total_steps_;
  double min_interval_seconds_;
  Stopwatch timer_;
  double last_emit_seconds_ = -1.0;
  bool emitted_any_ = false;
};

}  // namespace obs
}  // namespace churnlab

#endif  // CHURNLAB_OBS_STRUCTURED_LOG_H_
