#ifndef CHURNLAB_OBS_TRACE_H_
#define CHURNLAB_OBS_TRACE_H_

#include <cstdint>
#include <string>
#include <vector>

namespace churnlab {
namespace obs {

/// One node of the aggregated profile tree: every execution of a span with
/// the same name under the same parent path is folded into one node.
struct ProfileNode {
  std::string name;
  /// Number of completed span executions.
  uint64_t count = 0;
  /// Cumulative wall time including children, nanoseconds.
  uint64_t total_ns = 0;
  /// total_ns minus the children's total_ns (clamped at 0).
  uint64_t self_ns = 0;
  /// Sorted by total_ns descending.
  std::vector<ProfileNode> children;

  const ProfileNode* Find(std::string_view child_name) const;
};

/// \brief Process-wide scoped-span tracing.
///
/// Spans nest per thread (RAII guarantees LIFO order); each thread
/// aggregates its spans into a tree keyed by the span-name path, and
/// Collect() merges every thread's tree (including threads that have since
/// exited) under a synthetic "run" root. Spans opened on ThreadPool workers
/// therefore appear as top-level children of the root rather than under the
/// span that submitted the work — see docs/OBSERVABILITY.md.
///
/// Disabled (the default), a span costs one relaxed atomic load; there is
/// no sampling and no allocation.
class Trace {
 public:
  static void Enable(bool enabled);
  static bool IsEnabled();

  /// Zeroes collected counts/times in place. Must not race with Collect();
  /// active spans keep working (their nodes are zeroed, not freed).
  static void Reset();

  /// Merged profile across all threads. Spans still open are not counted.
  static ProfileNode Collect();

  /// Renders the tree as an indented monospace table (calls, total ms,
  /// self ms, share of root).
  static std::string RenderAscii(const ProfileNode& root);
};

/// RAII span. Use the CHURNLAB_SPAN macro; `name` must outlive the span
/// (string literals qualify).
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name);
  ~ScopedSpan();

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  void* node_ = nullptr;  // internal AggNode*, null when tracing is off
  uint64_t start_ns_ = 0;
};

#define CHURNLAB_OBS_CONCAT_IMPL(x, y) x##y
#define CHURNLAB_OBS_CONCAT(x, y) CHURNLAB_OBS_CONCAT_IMPL(x, y)

/// Opens a scoped trace span covering the rest of the enclosing block.
#define CHURNLAB_SPAN(name)                                      \
  ::churnlab::obs::ScopedSpan CHURNLAB_OBS_CONCAT(churnlab_span__, \
                                                  __LINE__)(name)

}  // namespace obs
}  // namespace churnlab

#endif  // CHURNLAB_OBS_TRACE_H_
