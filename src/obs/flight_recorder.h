#ifndef CHURNLAB_OBS_FLIGHT_RECORDER_H_
#define CHURNLAB_OBS_FLIGHT_RECORDER_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "obs/metrics.h"

namespace churnlab {
namespace obs {

/// \file
/// Lock-free per-thread flight recorder for post-mortem debugging.
///
/// Each thread that records owns a fixed-size SPSC ring buffer of recent
/// event records (site id, timestamp, duration, key). Recording never
/// blocks: the owning thread is the only writer of its ring, slots are
/// plain relaxed atomics, and the ring silently overwrites its oldest
/// entries — the recorder always holds the *last N* events per thread,
/// which is exactly what a post-mortem wants. Disarmed (the default), an
/// instrumented site costs one relaxed atomic load and a predicted branch.
///
/// The rings are dumped — on demand, on fatal error in the CLI, or
/// automatically when a failpoint fires (see obs::InstallFaultTelemetry) —
/// to JSON lines: one header object followed by one object per event,
/// merged across threads in timestamp order. A dump taken while threads
/// are still recording is best-effort: a slot being overwritten mid-read
/// is detected via its embedded sequence number and skipped, never torn.
///
/// Typical instrumentation:
/// \code
///   static const uint32_t kSite =
///       obs::FlightRecorder::RegisterSite("serve.shard.task");
///   obs::FlightSpan span(kSite, shard);   // duration recorded on scope exit
/// \endcode

/// One decoded event from a ring.
struct FlightEvent {
  uint64_t timestamp_ns = 0;  ///< MonotonicNanos() when the event completed.
  uint64_t duration_ns = 0;   ///< 0 for instantaneous events.
  uint64_t key = 0;           ///< Site-defined (customer id, shard, ...).
  uint32_t site = 0;          ///< Id from RegisterSite.
  uint32_t thread = 0;        ///< Ring ordinal (see ThreadLabel).
};

/// \brief Process-wide flight-recorder control plane. All methods are
/// static; per-thread rings are created lazily on first record.
class FlightRecorder {
 public:
  /// Key value for events that have no natural key.
  static constexpr uint64_t kNoKey = ~uint64_t{0};

  struct Options {
    /// Ring capacity per recording thread, in events. Rings created while
    /// armed use the armed capacity; rings outlive Disarm (their contents
    /// stay dumpable) and keep their creation-time capacity.
    size_t events_per_thread = 4096;
  };

  /// Arms recording process-wide. Idempotent; re-arming with different
  /// options only affects rings created afterwards.
  static void Arm(Options options);
  static void Arm() { Arm(Options()); }
  static void Disarm();

  /// Disarmed fast path: one relaxed load.
  static bool IsArmed() { return armed_.load(std::memory_order_relaxed); }

  /// Interns `name` and returns its stable site id. Typically called once
  /// per site through a function-local static. Registering the same name
  /// twice returns the same id.
  static uint32_t RegisterSite(std::string_view name);

  /// The name registered for `site` ("?" for an unknown id).
  static const std::string& SiteName(uint32_t site);

  /// Records one event into the calling thread's ring (no-op while
  /// disarmed). `duration_ns` is 0 for instantaneous events.
  static void Record(uint32_t site, uint64_t key = kNoKey,
                     uint64_t duration_ns = 0);

  /// Labels the calling thread's ring for dumps (e.g. "pool-worker-3").
  /// Creates the ring if needed, even while disarmed.
  static void LabelThread(std::string label);

  /// Label of ring `thread` (its ordinal as a string when never labeled).
  static std::string ThreadLabel(uint32_t thread);

  /// Decodes every ring — including rings of exited threads — into one
  /// list sorted by timestamp (oldest first). Slots that are concurrently
  /// overwritten during the read are skipped.
  static std::vector<FlightEvent> Collect();

  /// Appends a dump to `path` as JSON lines: one header object
  /// (`churnlab_flight_version`, `reason`, `events`, the site table) then
  /// one object per event in timestamp order.
  static Status DumpJsonl(const std::string& path, std::string_view reason);

  /// Configures automatic dumping: when set (non-empty), TriggerDump
  /// appends to this path. The CLI points it at --flight-recorder's path;
  /// the fault-telemetry bridge calls TriggerDump on the first fire of
  /// each failpoint site.
  static void SetAutoDumpPath(std::string path);
  static std::string AutoDumpPath();

  /// DumpJsonl to the auto-dump path; no-op (OK) when the path is unset.
  static Status TriggerDump(std::string_view reason);

  /// Total events ever recorded (monotonic; includes overwritten ones).
  static uint64_t TotalRecorded();

  /// Test support: clears every ring's contents and the recorded-total.
  /// Must not race with concurrent Record calls.
  static void ResetForTest();

 private:
  friend class FlightSpan;
  static std::atomic<bool> armed_;
};

/// RAII span: records (site, key, elapsed ns) into the flight recorder on
/// destruction when the recorder was armed at construction. Cost while
/// disarmed: one relaxed load.
class FlightSpan {
 public:
  explicit FlightSpan(uint32_t site, uint64_t key = FlightRecorder::kNoKey)
      : armed_(FlightRecorder::IsArmed()),
        site_(site),
        key_(key),
        start_ns_(armed_ ? MonotonicNanos() : 0) {}
  ~FlightSpan() {
    if (armed_) {
      FlightRecorder::Record(site_, key_, MonotonicNanos() - start_ns_);
    }
  }

  FlightSpan(const FlightSpan&) = delete;
  FlightSpan& operator=(const FlightSpan&) = delete;

 private:
  bool armed_;
  uint32_t site_;
  uint64_t key_;
  uint64_t start_ns_;
};

}  // namespace obs
}  // namespace churnlab

#endif  // CHURNLAB_OBS_FLIGHT_RECORDER_H_
