#ifndef CHURNLAB_OBS_FAULT_OBS_H_
#define CHURNLAB_OBS_FAULT_OBS_H_

namespace churnlab {
namespace obs {

/// \brief Bridges the fault-injection layer (src/common) into observability.
///
/// src/common cannot link churnlab_obs (obs depends on common), so failpoint
/// triggers and ThreadPool dropped exceptions are reported through hooks.
/// InstallFaultTelemetry installs both bridges process-wide:
///
///   - every failpoint trigger increments `churnlab.failpoint.triggered`
///     and, when tracing is enabled, records an instantaneous
///     `failpoint.<site>` span on the hitting thread;
///   - every dropped ThreadPool task exception increments
///     `churnlab.threadpool.dropped_exceptions`.
///
/// Idempotent and thread-compatible (call before arming faults or fanning
/// out work); the CLI and ScoringFleet::Make call it, so embedders get the
/// telemetry without extra wiring.
void InstallFaultTelemetry();

}  // namespace obs
}  // namespace churnlab

#endif  // CHURNLAB_OBS_FAULT_OBS_H_
