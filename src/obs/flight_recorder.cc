#include "obs/flight_recorder.h"

#include <algorithm>
#include <cstdio>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "obs/json.h"

namespace churnlab {
namespace obs {

namespace {

/// Words per ring slot: [seq, timestamp_ns, duration_ns, key, site].
/// `seq` is the event's global position in its ring (write index), stored
/// *last* with release order; a reader that finds seq != the expected index
/// knows the slot was overwritten mid-read and skips it, so dumps taken
/// while producers are live can never tear an event across two writes.
constexpr size_t kWordsPerSlot = 5;

struct Ring {
  Ring(uint32_t ring_ordinal, size_t ring_capacity)
      : ordinal(ring_ordinal),
        capacity(ring_capacity),
        words(std::make_unique<std::atomic<uint64_t>[]>(ring_capacity *
                                                        kWordsPerSlot)) {
    for (size_t i = 0; i < capacity * kWordsPerSlot; ++i) {
      words[i].store(0, std::memory_order_relaxed);
    }
    // Slot 0's stored seq of 0 would look valid before any write; seed
    // every seq word with a sentinel no real index uses.
    for (size_t slot = 0; slot < capacity; ++slot) {
      words[slot * kWordsPerSlot].store(kEmptySeq, std::memory_order_relaxed);
    }
  }

  static constexpr uint64_t kEmptySeq = ~uint64_t{0};

  const uint32_t ordinal;
  const size_t capacity;
  /// Owner-thread-only write cursor (total events written). Relaxed is
  /// enough: the per-slot seq word carries the release that publishes the
  /// payload words to dumpers.
  std::atomic<uint64_t> next{0};
  std::unique_ptr<std::atomic<uint64_t>[]> words;
  /// Guarded by the registry mutex.
  std::string label;
};

struct Registry {
  std::mutex mutex;
  /// Rings are never freed: threads exit, their last events stay dumpable.
  std::vector<std::unique_ptr<Ring>> rings;
  std::vector<std::string> sites;
  std::map<std::string, uint32_t, std::less<>> site_ids;
  FlightRecorder::Options options;
  std::string auto_dump_path;
  std::atomic<uint64_t> total_recorded{0};
};

Registry& GetRegistry() {
  static Registry* const kRegistry = new Registry();
  return *kRegistry;
}

thread_local Ring* t_ring = nullptr;

Ring* GetThreadRing() {
  if (t_ring != nullptr) return t_ring;
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mutex);
  registry.rings.push_back(std::make_unique<Ring>(
      static_cast<uint32_t>(registry.rings.size()),
      std::max<size_t>(1, registry.options.events_per_thread)));
  t_ring = registry.rings.back().get();
  return t_ring;
}

}  // namespace

std::atomic<bool> FlightRecorder::armed_{false};

void FlightRecorder::Arm(Options options) {
  Registry& registry = GetRegistry();
  {
    std::lock_guard<std::mutex> lock(registry.mutex);
    registry.options = options;
  }
  armed_.store(true, std::memory_order_relaxed);
}

void FlightRecorder::Disarm() {
  armed_.store(false, std::memory_order_relaxed);
}

uint32_t FlightRecorder::RegisterSite(std::string_view name) {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mutex);
  const auto it = registry.site_ids.find(name);
  if (it != registry.site_ids.end()) return it->second;
  const uint32_t id = static_cast<uint32_t>(registry.sites.size());
  registry.sites.emplace_back(name);
  registry.site_ids.emplace(std::string(name), id);
  return id;
}

const std::string& FlightRecorder::SiteName(uint32_t site) {
  static const std::string* const kUnknown = new std::string("?");
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mutex);
  if (site >= registry.sites.size()) return *kUnknown;
  // Site names are interned and never freed, so the reference stays valid
  // after the lock is released.
  return registry.sites[site];
}

void FlightRecorder::Record(uint32_t site, uint64_t key,
                            uint64_t duration_ns) {
  if (!IsArmed()) return;
  Ring* ring = GetThreadRing();
  const uint64_t index = ring->next.load(std::memory_order_relaxed);
  std::atomic<uint64_t>* slot =
      &ring->words[(index % ring->capacity) * kWordsPerSlot];
  // Invalidate the slot first so a concurrent dumper never pairs the new
  // payload with the old seq, then publish payload before the new seq.
  slot[0].store(Ring::kEmptySeq, std::memory_order_relaxed);
  slot[1].store(MonotonicNanos(), std::memory_order_relaxed);
  slot[2].store(duration_ns, std::memory_order_relaxed);
  slot[3].store(key, std::memory_order_relaxed);
  slot[4].store(site, std::memory_order_relaxed);
  slot[0].store(index, std::memory_order_release);
  ring->next.store(index + 1, std::memory_order_release);
  GetRegistry().total_recorded.fetch_add(1, std::memory_order_relaxed);
}

void FlightRecorder::LabelThread(std::string label) {
  Ring* ring = GetThreadRing();
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mutex);
  ring->label = std::move(label);
}

std::string FlightRecorder::ThreadLabel(uint32_t thread) {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mutex);
  if (thread < registry.rings.size() &&
      !registry.rings[thread]->label.empty()) {
    return registry.rings[thread]->label;
  }
  return std::to_string(thread);
}

std::vector<FlightEvent> FlightRecorder::Collect() {
  Registry& registry = GetRegistry();
  std::vector<Ring*> rings;
  {
    std::lock_guard<std::mutex> lock(registry.mutex);
    rings.reserve(registry.rings.size());
    for (const std::unique_ptr<Ring>& ring : registry.rings) {
      rings.push_back(ring.get());
    }
  }
  std::vector<FlightEvent> events;
  for (Ring* ring : rings) {
    const uint64_t next = ring->next.load(std::memory_order_acquire);
    const uint64_t held = std::min<uint64_t>(next, ring->capacity);
    for (uint64_t index = next - held; index < next; ++index) {
      const std::atomic<uint64_t>* slot =
          &ring->words[(index % ring->capacity) * kWordsPerSlot];
      const uint64_t seq = slot[0].load(std::memory_order_acquire);
      FlightEvent event;
      event.timestamp_ns = slot[1].load(std::memory_order_relaxed);
      event.duration_ns = slot[2].load(std::memory_order_relaxed);
      event.key = slot[3].load(std::memory_order_relaxed);
      event.site = static_cast<uint32_t>(
          slot[4].load(std::memory_order_relaxed));
      event.thread = ring->ordinal;
      // Re-check the seq after reading the payload: unchanged means no
      // writer touched the slot in between (the writer invalidates seq
      // before rewriting the payload).
      if (seq != index ||
          slot[0].load(std::memory_order_acquire) != index) {
        continue;  // overwritten (or being overwritten) — skip, never tear
      }
      events.push_back(event);
    }
  }
  std::sort(events.begin(), events.end(),
            [](const FlightEvent& a, const FlightEvent& b) {
              return a.timestamp_ns < b.timestamp_ns;
            });
  return events;
}

Status FlightRecorder::DumpJsonl(const std::string& path,
                                 std::string_view reason) {
  const std::vector<FlightEvent> events = Collect();
  JsonWriter header;
  header.BeginObject();
  header.Key("churnlab_flight_version").Int(1);
  header.Key("reason").String(reason);
  header.Key("dumped_at_ns").Uint(MonotonicNanos());
  header.Key("events").Uint(events.size());
  header.Key("total_recorded").Uint(TotalRecorded());
  header.EndObject();

  std::FILE* file = std::fopen(path.c_str(), "a");
  if (file == nullptr) {
    return Status::IOError("cannot open flight-recorder dump '" + path +
                           "'");
  }
  bool ok = std::fprintf(file, "%s\n", header.str().c_str()) >= 0;
  for (const FlightEvent& event : events) {
    JsonWriter line;
    line.BeginObject();
    line.Key("t_ns").Uint(event.timestamp_ns);
    if (event.duration_ns != 0) line.Key("dur_ns").Uint(event.duration_ns);
    line.Key("site").String(SiteName(event.site));
    if (event.key != kNoKey) line.Key("key").Uint(event.key);
    line.Key("thread").String(ThreadLabel(event.thread));
    line.EndObject();
    if (std::fprintf(file, "%s\n", line.str().c_str()) < 0) {
      ok = false;
      break;
    }
  }
  if (std::fclose(file) != 0 || !ok) {
    return Status::IOError("failed writing flight-recorder dump to '" +
                           path + "'");
  }
  return Status::OK();
}

void FlightRecorder::SetAutoDumpPath(std::string path) {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mutex);
  registry.auto_dump_path = std::move(path);
}

std::string FlightRecorder::AutoDumpPath() {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mutex);
  return registry.auto_dump_path;
}

Status FlightRecorder::TriggerDump(std::string_view reason) {
  const std::string path = AutoDumpPath();
  if (path.empty()) return Status::OK();
  return DumpJsonl(path, reason);
}

uint64_t FlightRecorder::TotalRecorded() {
  return GetRegistry().total_recorded.load(std::memory_order_relaxed);
}

void FlightRecorder::ResetForTest() {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mutex);
  for (const std::unique_ptr<Ring>& ring : registry.rings) {
    ring->next.store(0, std::memory_order_relaxed);
    for (size_t slot = 0; slot < ring->capacity; ++slot) {
      ring->words[slot * kWordsPerSlot].store(Ring::kEmptySeq,
                                              std::memory_order_relaxed);
    }
  }
  registry.total_recorded.store(0, std::memory_order_relaxed);
}

}  // namespace obs
}  // namespace churnlab
