#include "obs/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace churnlab {
namespace obs {

// ---------------------------------------------------------------------------
// JsonWriter
// ---------------------------------------------------------------------------

void JsonWriter::BeforeValue() {
  if (pending_key_) {
    pending_key_ = false;
    return;
  }
  if (scopes_.empty()) return;
  if (has_elements_.back()) out_.push_back(',');
  has_elements_.back() = true;
}

void JsonWriter::AppendEscaped(std::string_view text) {
  out_.push_back('"');
  for (const char c : text) {
    switch (c) {
      case '"':
        Append("\\\"");
        break;
      case '\\':
        Append("\\\\");
        break;
      case '\n':
        Append("\\n");
        break;
      case '\r':
        Append("\\r");
        break;
      case '\t':
        Append("\\t");
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          Append(buffer);
        } else {
          out_.push_back(c);
        }
    }
  }
  out_.push_back('"');
}

JsonWriter& JsonWriter::BeginObject() {
  BeforeValue();
  out_.push_back('{');
  scopes_.push_back(Scope::kObject);
  has_elements_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::EndObject() {
  out_.push_back('}');
  scopes_.pop_back();
  has_elements_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::BeginArray() {
  BeforeValue();
  out_.push_back('[');
  scopes_.push_back(Scope::kArray);
  has_elements_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::EndArray() {
  out_.push_back(']');
  scopes_.pop_back();
  has_elements_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::Key(std::string_view key) {
  if (!has_elements_.empty() && has_elements_.back()) out_.push_back(',');
  if (!has_elements_.empty()) has_elements_.back() = true;
  AppendEscaped(key);
  out_.push_back(':');
  pending_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::String(std::string_view value) {
  BeforeValue();
  AppendEscaped(value);
  return *this;
}

JsonWriter& JsonWriter::Int(int64_t value) {
  BeforeValue();
  out_.append(std::to_string(value));
  return *this;
}

JsonWriter& JsonWriter::Uint(uint64_t value) {
  BeforeValue();
  out_.append(std::to_string(value));
  return *this;
}

JsonWriter& JsonWriter::Double(double value) {
  BeforeValue();
  if (!std::isfinite(value)) {
    Append("null");
    return *this;
  }
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  Append(buffer);
  return *this;
}

JsonWriter& JsonWriter::Bool(bool value) {
  BeforeValue();
  Append(value ? "true" : "false");
  return *this;
}

JsonWriter& JsonWriter::Null() {
  BeforeValue();
  Append("null");
  return *this;
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

const JsonValue* JsonValue::Find(std::string_view key) const {
  if (kind != Kind::kObject) return nullptr;
  for (const auto& [name, value] : object) {
    if (name == key) return &value;
  }
  return nullptr;
}

namespace {

// Local shorthand; the common macro pulls in status.h machinery we already
// have via result.h.
#define CHURNLAB_RETURN_NOT_OK_PARSE(expr)           \
  do {                                               \
    ::churnlab::Status parse_status__ = (expr);      \
    if (!parse_status__.ok()) return parse_status__; \
  } while (false)

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Result<JsonValue> Parse() {
    JsonValue value;
    CHURNLAB_RETURN_NOT_OK_PARSE(ParseValue(&value));
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Error("trailing characters after JSON document");
    }
    return value;
  }

 private:
  Status Error(const std::string& message) const {
    return Status::InvalidArgument("JSON parse error at offset " +
                                   std::to_string(pos_) + ": " + message);
  }

  void SkipWhitespace() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool Consume(char expected) {
    if (pos_ < text_.size() && text_[pos_] == expected) {
      ++pos_;
      return true;
    }
    return false;
  }

  Status ParseValue(JsonValue* out) {
    SkipWhitespace();
    if (pos_ >= text_.size()) return Error("unexpected end of input");
    switch (text_[pos_]) {
      case '{':
        return ParseObject(out);
      case '[':
        return ParseArray(out);
      case '"':
        out->kind = JsonValue::Kind::kString;
        return ParseString(&out->string);
      case 't':
        return ParseLiteral("true", out, JsonValue::Kind::kBool, true);
      case 'f':
        return ParseLiteral("false", out, JsonValue::Kind::kBool, false);
      case 'n':
        return ParseLiteral("null", out, JsonValue::Kind::kNull, false);
      default:
        return ParseNumber(out);
    }
  }

  Status ParseLiteral(std::string_view literal, JsonValue* out,
                      JsonValue::Kind kind, bool bool_value) {
    if (text_.substr(pos_, literal.size()) != literal) {
      return Error("invalid literal");
    }
    pos_ += literal.size();
    out->kind = kind;
    out->bool_value = bool_value;
    return Status::OK();
  }

  Status ParseNumber(JsonValue* out) {
    const size_t begin = pos_;
    if (Consume('-')) {
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == begin) return Error("expected a value");
    const std::string token(text_.substr(begin, pos_ - begin));
    char* end = nullptr;
    const double value = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) return Error("malformed number");
    out->kind = JsonValue::Kind::kNumber;
    out->number = value;
    return Status::OK();
  }

  void AppendUtf8(uint32_t code_point, std::string* out) {
    if (code_point < 0x80) {
      out->push_back(static_cast<char>(code_point));
    } else if (code_point < 0x800) {
      out->push_back(static_cast<char>(0xC0 | (code_point >> 6)));
      out->push_back(static_cast<char>(0x80 | (code_point & 0x3F)));
    } else if (code_point < 0x10000) {
      out->push_back(static_cast<char>(0xE0 | (code_point >> 12)));
      out->push_back(static_cast<char>(0x80 | ((code_point >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (code_point & 0x3F)));
    } else {
      out->push_back(static_cast<char>(0xF0 | (code_point >> 18)));
      out->push_back(static_cast<char>(0x80 | ((code_point >> 12) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | ((code_point >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (code_point & 0x3F)));
    }
  }

  Status ParseHex4(uint32_t* out) {
    if (pos_ + 4 > text_.size()) return Error("truncated \\u escape");
    uint32_t value = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_ + static_cast<size_t>(i)];
      value <<= 4;
      if (c >= '0' && c <= '9') {
        value |= static_cast<uint32_t>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        value |= static_cast<uint32_t>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        value |= static_cast<uint32_t>(c - 'A' + 10);
      } else {
        return Error("invalid \\u escape");
      }
    }
    pos_ += 4;
    *out = value;
    return Status::OK();
  }

  Status ParseString(std::string* out) {
    if (!Consume('"')) return Error("expected '\"'");
    out->clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return Status::OK();
      if (c != '\\') {
        out->push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) return Error("truncated escape");
      const char escape = text_[pos_++];
      switch (escape) {
        case '"':
        case '\\':
        case '/':
          out->push_back(escape);
          break;
        case 'b':
          out->push_back('\b');
          break;
        case 'f':
          out->push_back('\f');
          break;
        case 'n':
          out->push_back('\n');
          break;
        case 'r':
          out->push_back('\r');
          break;
        case 't':
          out->push_back('\t');
          break;
        case 'u': {
          uint32_t code_point = 0;
          CHURNLAB_RETURN_NOT_OK_PARSE(ParseHex4(&code_point));
          if (code_point >= 0xD800 && code_point <= 0xDBFF &&
              pos_ + 1 < text_.size() && text_[pos_] == '\\' &&
              text_[pos_ + 1] == 'u') {
            pos_ += 2;
            uint32_t low = 0;
            CHURNLAB_RETURN_NOT_OK_PARSE(ParseHex4(&low));
            code_point =
                0x10000 + ((code_point - 0xD800) << 10) + (low - 0xDC00);
          }
          AppendUtf8(code_point, out);
          break;
        }
        default:
          return Error("unknown escape character");
      }
    }
    return Error("unterminated string");
  }

  Status ParseObject(JsonValue* out) {
    out->kind = JsonValue::Kind::kObject;
    ++pos_;  // '{'
    SkipWhitespace();
    if (Consume('}')) return Status::OK();
    for (;;) {
      SkipWhitespace();
      std::string key;
      CHURNLAB_RETURN_NOT_OK_PARSE(ParseString(&key));
      SkipWhitespace();
      if (!Consume(':')) return Error("expected ':'");
      JsonValue value;
      CHURNLAB_RETURN_NOT_OK_PARSE(ParseValue(&value));
      out->object.emplace_back(std::move(key), std::move(value));
      SkipWhitespace();
      if (Consume('}')) return Status::OK();
      if (!Consume(',')) return Error("expected ',' or '}'");
    }
  }

  Status ParseArray(JsonValue* out) {
    out->kind = JsonValue::Kind::kArray;
    ++pos_;  // '['
    SkipWhitespace();
    if (Consume(']')) return Status::OK();
    for (;;) {
      JsonValue value;
      CHURNLAB_RETURN_NOT_OK_PARSE(ParseValue(&value));
      out->array.push_back(std::move(value));
      SkipWhitespace();
      if (Consume(']')) return Status::OK();
      if (!Consume(',')) return Error("expected ',' or ']'");
    }
  }

  std::string_view text_;
  size_t pos_ = 0;
};

#undef CHURNLAB_RETURN_NOT_OK_PARSE

}  // namespace

Result<JsonValue> ParseJson(std::string_view text) {
  return Parser(text).Parse();
}

}  // namespace obs
}  // namespace churnlab
