#ifndef CHURNLAB_OBS_PROMETHEUS_H_
#define CHURNLAB_OBS_PROMETHEUS_H_

#include <initializer_list>
#include <string>
#include <string_view>
#include <utility>

#include "common/status.h"
#include "obs/metrics.h"

namespace churnlab {
namespace obs {

/// \file
/// Dependency-free Prometheus text-exposition exporter
/// (node-exporter-textfile compatible; exposition format v0.0.4).
///
/// Registry names (`churnlab.serve.receipts_ingested`) are mangled into
/// valid Prometheus names (`churnlab_serve_receipts_ingested`); counters
/// additionally get the conventional `_total` suffix. Each metric family
/// is preceded by one `# HELP` and one `# TYPE` line, with help text drawn
/// from the central inventory below (mirrors docs/OBSERVABILITY.md).
///
/// Labels ride inside the registry name using the convention produced by
/// LabeledMetricName: `base{key="value",...}`. The JSON exporter treats
/// such names as opaque keys; this exporter splits them back into a family
/// plus a label set, so per-shard gauges like
/// `churnlab.serve.shard_receipts{shard="3"}` export as
/// `churnlab_serve_shard_receipts{shard="3"} 120`.

/// Builds the registry-name encoding of a labeled metric:
/// `base{k1="v1",k2="v2"}`. Label values are escaped (backslash, quote,
/// newline) per the exposition format.
std::string LabeledMetricName(
    std::string_view base,
    std::initializer_list<std::pair<std::string_view, std::string_view>>
        labels);

/// Mangles one metric (base) name into the Prometheus alphabet
/// `[a-zA-Z_:][a-zA-Z0-9_:]*`: every other character becomes '_', and a
/// leading digit is prefixed with '_'.
std::string ManglePrometheusName(std::string_view name);

/// Help text for a known metric base name (the central inventory), or
/// nullptr when the metric is not inventoried (exporters fall back to a
/// generated line).
const char* MetricHelp(std::string_view base);

/// Serializes a metrics snapshot in the Prometheus text exposition format:
/// counters (`_total` suffix), gauges, and full histograms (cumulative
/// `_bucket{le=...}` series plus `_sum` / `_count`).
std::string ExportPrometheus(const MetricsSnapshot& metrics);

/// ExportPrometheus over the global registry.
std::string ExportPrometheusGlobal();

/// Writes ExportPrometheusGlobal() to `path` atomically (temp file +
/// rename), the contract node-exporter's textfile collector expects so a
/// concurrent scrape never sees a half-written file.
Status WritePrometheusFile(const std::string& path);

}  // namespace obs
}  // namespace churnlab

#endif  // CHURNLAB_OBS_PROMETHEUS_H_
