#ifndef CHURNLAB_OBS_SNAPSHOT_H_
#define CHURNLAB_OBS_SNAPSHOT_H_

#include <condition_variable>
#include <cstdint>
#include <cstdio>
#include <map>
#include <mutex>
#include <string>
#include <thread>

#include "common/status.h"
#include "obs/metrics.h"

namespace churnlab {
namespace obs {

/// Version stamp of the time-series JSONL schema (see
/// docs/OBSERVABILITY.md). Bump on breaking layout changes.
inline constexpr int kTimeseriesSchemaVersion = 1;

/// \brief Background thread that samples a MetricsRegistry at a fixed
/// interval and appends one JSON line per sample, turning the end-of-run
/// telemetry document into a live time series.
///
/// File layout (version 1) — one header line, then one line per sample:
/// \code
///   {"churnlab_timeseries_version":1,"interval_ms":250,"started_at_ns":N}
///   {"seq":0,"t_ns":N,
///    "counters":{"<name>":{"total":T,"delta":D},...},
///    "gauges":{"<name>":V,...},
///    "histograms":{"<name>":{"count":C,"mean":M,
///                            "p50":.,"p90":.,"p99":.},...}}
/// \endcode
/// `seq` and `t_ns` are strictly monotonic across the file. Counter deltas
/// are relative to the previous sample (the first sample's delta is
/// relative to Start()). Every line is flushed as written so a concurrent
/// `tail -f` observes the run live.
///
/// Stop() (and the destructor) takes one final sample before joining, so
/// short runs still produce at least one data line.
class TelemetrySnapshotter {
 public:
  struct Options {
    std::string path;        ///< JSONL output file (truncated on Start).
    int interval_ms = 1000;  ///< Sampling period; clamped to >= 10.
  };

  explicit TelemetrySnapshotter(
      Options options, MetricsRegistry* registry = &MetricsRegistry::Global());
  ~TelemetrySnapshotter();

  TelemetrySnapshotter(const TelemetrySnapshotter&) = delete;
  TelemetrySnapshotter& operator=(const TelemetrySnapshotter&) = delete;

  /// Opens the output file, writes the header line, records the counter
  /// baseline, and launches the sampling thread. Fails if already running
  /// or the file cannot be opened.
  Status Start();

  /// Takes a final sample, stops the thread, and closes the file.
  /// Idempotent; safe to call when Start was never called.
  void Stop();

  bool running() const;

  /// Samples written so far (header line excluded).
  uint64_t samples_taken() const;

 private:
  void Run();
  void WriteSample();

  const Options options_;
  MetricsRegistry* const registry_;

  mutable std::mutex mutex_;
  std::condition_variable wake_;
  bool stop_requested_ = false;
  bool running_ = false;
  std::thread thread_;

  // Touched only with the thread not running, or from the thread itself.
  std::FILE* file_ = nullptr;
  std::map<std::string, uint64_t> prev_counters_;
  uint64_t seq_ = 0;
  uint64_t last_sample_ns_ = 0;
};

}  // namespace obs
}  // namespace churnlab

#endif  // CHURNLAB_OBS_SNAPSHOT_H_
