#include "obs/fault_obs.h"

#include <atomic>
#include <mutex>
#include <set>
#include <string>

#include "common/failpoint.h"
#include "common/thread_pool.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace churnlab {
namespace obs {

namespace {

class TelemetryObserver : public FailpointObserver {
 public:
  void OnTrigger(const Failpoint& failpoint, FailpointAction action) override {
    static Counter* const triggered = MetricsRegistry::Global().GetCounter(
        "churnlab.failpoint.triggered");
    triggered->Increment();
    (void)action;
    // An instantaneous span: opened and closed on the hitting thread, so
    // the profile tree shows which sites fired and how often. The span
    // name is owned by the registry-held Failpoint, which is never freed.
    ScopedSpan span(failpoint.span_name().c_str());

    // The flight recorder sees the trigger too, so a post-mortem dump shows
    // the fault in sequence with the surrounding work...
    if (FlightRecorder::IsArmed()) {
      FlightRecorder::Record(FlightRecorder::RegisterSite(
          failpoint.span_name()));
      // ...and the *first* fire of each site snapshots the rings to the
      // auto-dump path: the dump captures what every thread was doing just
      // before the fault, before later events overwrite it. Subsequent
      // fires of the same site only record events (a repeatedly firing
      // failpoint must not turn every trigger into file I/O).
      bool first_fire = false;
      {
        std::lock_guard<std::mutex> lock(mutex_);
        first_fire = dumped_sites_.insert(failpoint.span_name()).second;
      }
      if (first_fire) {
        (void)FlightRecorder::TriggerDump("failpoint:" +
                                          failpoint.span_name());
      }
    }
  }

 private:
  std::mutex mutex_;
  std::set<std::string> dumped_sites_;
};

void CountDroppedException() {
  static Counter* const dropped = MetricsRegistry::Global().GetCounter(
      "churnlab.threadpool.dropped_exceptions");
  dropped->Increment();
}

void OnWorkerStart(size_t ordinal) {
  static Counter* const started = MetricsRegistry::Global().GetCounter(
      "churnlab.threadpool.workers_started");
  started->Increment();
  FlightRecorder::LabelThread("pool-worker-" + std::to_string(ordinal));
}

}  // namespace

void InstallFaultTelemetry() {
  static TelemetryObserver* const observer = [] {
    auto* bridge = new TelemetryObserver();
    FailpointRegistry::SetObserver(bridge);
    ThreadPool::SetDroppedExceptionHook(&CountDroppedException);
    ThreadPool::SetWorkerStartHook(&OnWorkerStart);
    return bridge;
  }();
  (void)observer;
}

}  // namespace obs
}  // namespace churnlab
