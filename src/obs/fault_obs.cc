#include "obs/fault_obs.h"

#include "common/failpoint.h"
#include "common/thread_pool.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace churnlab {
namespace obs {

namespace {

class TelemetryObserver : public FailpointObserver {
 public:
  void OnTrigger(const Failpoint& failpoint, FailpointAction action) override {
    static Counter* const triggered = MetricsRegistry::Global().GetCounter(
        "churnlab.failpoint.triggered");
    triggered->Increment();
    (void)action;
    // An instantaneous span: opened and closed on the hitting thread, so
    // the profile tree shows which sites fired and how often. The span
    // name is owned by the registry-held Failpoint, which is never freed.
    ScopedSpan span(failpoint.span_name().c_str());
  }
};

void CountDroppedException() {
  static Counter* const dropped = MetricsRegistry::Global().GetCounter(
      "churnlab.threadpool.dropped_exceptions");
  dropped->Increment();
}

}  // namespace

void InstallFaultTelemetry() {
  static TelemetryObserver* const observer = [] {
    auto* bridge = new TelemetryObserver();
    FailpointRegistry::SetObserver(bridge);
    ThreadPool::SetDroppedExceptionHook(&CountDroppedException);
    return bridge;
  }();
  (void)observer;
}

}  // namespace obs
}  // namespace churnlab
