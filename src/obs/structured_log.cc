#include "obs/structured_log.h"

#include <cstdio>
#include <mutex>

#include "common/string_util.h"

namespace churnlab {
namespace obs {

namespace {

struct SinkState {
  std::mutex mutex;
  std::FILE* file = nullptr;
};

SinkState& Sink() {
  static SinkState* const kSink = new SinkState();
  return *kSink;
}

}  // namespace

Status StructuredSink::Open(const std::string& path) {
  SinkState& sink = Sink();
  std::lock_guard<std::mutex> lock(sink.mutex);
  if (sink.file != nullptr) {
    std::fclose(sink.file);
    sink.file = nullptr;
  }
  sink.file = std::fopen(path.c_str(), "a");
  if (sink.file == nullptr) {
    return Status::IOError("cannot open structured log sink '" + path + "'");
  }
  return Status::OK();
}

void StructuredSink::Close() {
  SinkState& sink = Sink();
  std::lock_guard<std::mutex> lock(sink.mutex);
  if (sink.file != nullptr) {
    std::fclose(sink.file);
    sink.file = nullptr;
  }
}

bool StructuredSink::IsOpen() {
  SinkState& sink = Sink();
  std::lock_guard<std::mutex> lock(sink.mutex);
  return sink.file != nullptr;
}

void StructuredSink::Write(std::string_view json_line) {
  SinkState& sink = Sink();
  std::lock_guard<std::mutex> lock(sink.mutex);
  if (sink.file == nullptr) return;
  std::fwrite(json_line.data(), 1, json_line.size(), sink.file);
  std::fputc('\n', sink.file);
  std::fflush(sink.file);
}

LogEvent::LogEvent(LogLevel level, std::string_view event, const char* file,
                   int line)
    : enabled_(Logger::IsEnabled(level)),
      level_(level),
      file_(file),
      line_(line) {
  if (!enabled_) return;
  text_.assign(event);
  json_.BeginObject();
  json_.Key("level").String(LogLevelToString(level));
  json_.Key("event").String(event);
}

LogEvent& LogEvent::Str(std::string_view key, std::string_view value) {
  if (!enabled_) return *this;
  text_.append(" ").append(key).append("=").append(value);
  json_.Key(key).String(value);
  return *this;
}

LogEvent& LogEvent::Int(std::string_view key, int64_t value) {
  if (!enabled_) return *this;
  text_.append(" ").append(key).append("=").append(std::to_string(value));
  json_.Key(key).Int(value);
  return *this;
}

LogEvent& LogEvent::Uint(std::string_view key, uint64_t value) {
  if (!enabled_) return *this;
  text_.append(" ").append(key).append("=").append(std::to_string(value));
  json_.Key(key).Uint(value);
  return *this;
}

LogEvent& LogEvent::Num(std::string_view key, double value) {
  if (!enabled_) return *this;
  text_.append(" ").append(key).append("=").append(FormatDouble(value, 4));
  json_.Key(key).Double(value);
  return *this;
}

LogEvent& LogEvent::Bool(std::string_view key, bool value) {
  if (!enabled_) return *this;
  text_.append(" ").append(key).append(value ? "=true" : "=false");
  json_.Key(key).Bool(value);
  return *this;
}

LogEvent::~LogEvent() {
  if (!enabled_) return;
  Logger::Log(level_, file_, line_, text_);
  if (StructuredSink::IsOpen()) {
    json_.EndObject();
    StructuredSink::Write(json_.str());
  }
}

ProgressLogger::ProgressLogger(std::string task, uint64_t total_steps,
                               double min_interval_seconds)
    : task_(std::move(task)),
      total_steps_(total_steps),
      min_interval_seconds_(min_interval_seconds) {}

void ProgressLogger::Emit(uint64_t completed, std::string_view detail) {
  LogEvent event(LogLevel::kInfo, task_ + "_progress", __FILE__, __LINE__);
  event.Uint("done", completed).Uint("total", total_steps_);
  if (total_steps_ > 0) {
    event.Num("pct", 100.0 * static_cast<double>(completed) /
                         static_cast<double>(total_steps_));
  }
  if (!detail.empty()) event.Str("detail", detail);
  event.Num("elapsed_s", timer_.ElapsedSeconds());
  emitted_any_ = true;
  last_emit_seconds_ = timer_.ElapsedSeconds();
}

void ProgressLogger::Step(uint64_t completed, std::string_view detail) {
  if (!Logger::IsEnabled(LogLevel::kInfo)) return;
  const double now = timer_.ElapsedSeconds();
  if (last_emit_seconds_ >= 0.0 &&
      now - last_emit_seconds_ < min_interval_seconds_) {
    return;
  }
  Emit(completed, detail);
}

void ProgressLogger::Done() {
  if (!Logger::IsEnabled(LogLevel::kInfo)) return;
  Emit(total_steps_, "done");
}

}  // namespace obs
}  // namespace churnlab
