#ifndef CHURNLAB_CHURNLAB_H_
#define CHURNLAB_CHURNLAB_H_

/// \file
/// \brief The churnlab::api facade — the single header applications
/// include.
///
/// Everything an application needs sits behind three handles plus a few
/// data helpers (docs/API.md walks through each):
///
///   - ScorerHandle: batch scoring and per-customer explanation (wraps the
///     core stability model).
///   - FleetHandle: streaming multi-customer serving — sharded state,
///     batched ingestion, alerts, snapshot/restore (wraps src/serve/).
///   - EvalRunner: the paper's evaluations — Figure 1, grid search,
///     forecasting (wraps src/eval/).
///
/// Construction follows the library-wide `static Result<T> Make(Options)`
/// convention: options are validated eagerly and errors surface as Status,
/// never as exceptions or NaNs. Option and result structs are re-exported
/// here under churnlab::api so facade users need no subsystem includes.

#include <cstdint>
#include <span>
#include <string>

#include "common/failpoint.h"
#include "common/result.h"
#include "common/retry.h"
#include "core/stability_model.h"
#include "datagen/scenario.h"
#include "eval/experiment.h"
#include "eval/forecaster.h"
#include "eval/grid_search.h"
#include "eval/metrics.h"
#include "eval/report.h"
#include "eval/threshold.h"
#include "retail/dataset.h"
#include "serve/fleet.h"

namespace churnlab {
namespace api {

// ---------------------------------------------------------------------------
// Data: datasets and synthetic scenarios
// ---------------------------------------------------------------------------

using retail::Cohort;
using retail::CohortToString;
using retail::CustomerId;
using retail::Day;
using retail::Granularity;
using retail::ItemId;
using retail::kDaysPerMonth;
using retail::Receipt;

using Dataset = retail::Dataset;
using DatasetStats = retail::DatasetStats;
using ScenarioConfig = datagen::PaperScenarioConfig;

/// Loads a dataset by path: `*.clb` is the binary format, anything else is
/// treated as a CSV prefix (`<prefix>.receipts.csv` etc.).
Result<Dataset> LoadDataset(const std::string& path);

/// Generates the paper's synthetic scenario (loyal + defecting cohorts).
Result<Dataset> MakeScenario(const ScenarioConfig& config);

/// The scripted Figure-2 customer (coffee lost at month 20; milk, sponge
/// and cheese at month 22) embedded in a small population.
using Figure2Scenario = datagen::Figure2Scenario;
Result<Figure2Scenario> MakeFigure2Scenario();

// ---------------------------------------------------------------------------
// Batch scoring
// ---------------------------------------------------------------------------

using ScorerOptions = core::StabilityModelOptions;
using core::CustomerReport;
using core::CustomerWindowReport;
using core::NamedMissingProduct;
using core::ScoreMatrix;
using core::SignificanceProfile;
using core::StabilitySeries;

/// \brief Batch stability scoring and per-customer explanation.
///
/// \code
///   auto scorer = churnlab::api::ScorerHandle::Make({}).ValueOrDie();
///   auto scores = scorer.ScoreDataset(dataset).ValueOrDie();
/// \endcode
class ScorerHandle {
 public:
  static Result<ScorerHandle> Make(ScorerOptions options);

  /// Stability of every customer at every window (higher = more loyal).
  Result<ScoreMatrix> ScoreDataset(const Dataset& dataset) const;

  /// Stability series of one customer.
  Result<StabilitySeries> ScoreCustomer(const Dataset& dataset,
                                        CustomerId customer) const;

  /// Per-window walk-through with product-loss explanations (section 3.2).
  Result<CustomerReport> AnalyzeCustomer(const Dataset& dataset,
                                         CustomerId customer) const;

  /// Ranked significant-product table as seen by window `window` (the
  /// final window when negative).
  Result<SignificanceProfile> ProfileCustomer(const Dataset& dataset,
                                              CustomerId customer,
                                              int32_t window = -1) const;

  const ScorerOptions& options() const { return model_.options(); }

 private:
  explicit ScorerHandle(core::StabilityModel model)
      : model_(std::move(model)) {}

  core::StabilityModel model_;
};

// ---------------------------------------------------------------------------
// Streaming fleet serving
// ---------------------------------------------------------------------------

using serve::BatchReport;
using serve::FleetAlert;
using serve::FleetHealth;
using serve::FleetOptions;
using serve::ParseStateLayout;
using serve::PoisonedShard;
using serve::RejectedReceipt;
using serve::ShardHealthStats;
using serve::StateLayout;
using serve::StateLayoutToString;
using serve::StateMemoryStats;
using MonitorPolicy = core::MonitorPolicy;
using StabilityAlert = core::StabilityAlert;
/// Fault injection (docs/ROBUSTNESS.md): arm failpoints programmatically or
/// via FailpointRegistry::Global().ArmFromSpec / the CHURNLAB_FAILPOINTS
/// environment variable; RetryPolicy shapes shard-task and snapshot-write
/// retries through FleetOptions::shard_retry.
using churnlab::FailpointRegistry;
using churnlab::RetryPolicy;

/// \brief Streaming multi-customer serving: sharded per-customer state,
/// batched ingestion, alerting, and bit-identical snapshot/restore.
///
/// The handle borrows the dataset's taxonomy (segment granularity maps
/// items through it); the dataset must outlive the handle.
///
/// \code
///   auto fleet = churnlab::api::FleetHandle::Make(options, dataset)
///                    .ValueOrDie();
///   auto report = fleet.IngestBatch(receipts).ValueOrDie();
///   for (const auto& alert : report.alerts) notify(alert);
/// \endcode
class FleetHandle {
 public:
  static Result<FleetHandle> Make(FleetOptions options,
                                  const Dataset& dataset);

  /// Ingests one receipt batch; receipts of one customer must be
  /// chronological within and across batches. Alerts and reports are
  /// byte-identical for any thread count.
  Result<BatchReport> IngestBatch(std::span<const Receipt> receipts);

  /// Closes all windows before the one containing `day` for every
  /// customer (models "no activity through day X").
  Result<BatchReport> AdvanceAllTo(Day day);

  /// End-of-stream flush: closes every customer's in-progress window.
  Result<BatchReport> FinishAll();

  size_t NumCustomers() const { return fleet_.NumCustomers(); }
  const FleetOptions& options() const { return fleet_.options(); }

  /// Point-in-time fleet health: per-shard receipt/reject/alert counts,
  /// retry and poison state, population, task-latency histograms, and the
  /// worker pool's queue depth. Call between operations.
  FleetHealth Health() const { return fleet_.HealthReport(); }

  /// Byte accounting of the fleet's customer state, summed over shards.
  /// Publishes the `churnlab.serve.bytes_total` gauge (plus per-shard
  /// `churnlab.serve.bytes{shard=k}` under detailed timing). Call between
  /// operations, like Health().
  StateMemoryStats Memory() const { return fleet_.MemoryUsage(); }

  /// Writes a versioned, CRC-framed snapshot of the full fleet state
  /// (truncating `path`).
  Status SaveSnapshot(const std::string& path) const;

  /// Appends one snapshot *generation* to `path`; Restore loads the newest
  /// valid generation, so a torn tail loses at most the last append (see
  /// docs/ROBUSTNESS.md §Snapshot recovery).
  Status AppendSnapshot(const std::string& path) const;

  /// Rebuilds a fleet from a snapshot; continues bit-identically.
  /// Threads and the storage layout are never serialized; the restored
  /// fleet uses `num_threads` workers (1 when 0) and `layout` storage,
  /// with identical results for any choice of either.
  static Result<FleetHandle> Restore(
      const std::string& path, const Dataset& dataset,
      size_t num_threads = 0, StateLayout layout = StateLayout::kCompact);

 private:
  explicit FleetHandle(serve::ScoringFleet fleet)
      : fleet_(std::move(fleet)) {}

  serve::ScoringFleet fleet_;
};

// ---------------------------------------------------------------------------
// Evaluation
// ---------------------------------------------------------------------------

using eval::Figure1Options;
using eval::Figure1Result;
using eval::ForecastOptions;
using eval::ForecastResult;
using eval::GridSearchOptions;
using eval::GridSearchResult;
/// Plain-text/CSV result rendering, re-exported for facade-only programs.
using eval::TextTable;
/// Detection-quality primitives, re-exported for facade-only programs.
using eval::AurocPerWindow;
using eval::ConfusionAtThreshold;
using eval::ConfusionMatrix;
using eval::LiftAtFraction;
using eval::OperatingPoint;
using eval::ScoreOrientation;
using eval::SelectForRecall;
using eval::SelectMaxF1;
using eval::WindowAuroc;

struct EvalRunnerOptions {
  /// Worker threads for the evaluation sweeps; stamped over the
  /// per-evaluation options' num_threads fields. Results are identical for
  /// any thread count.
  size_t num_threads = 1;
};

/// \brief The paper's evaluations behind one handle.
class EvalRunner {
 public:
  static Result<EvalRunner> Make(EvalRunnerOptions options = {});

  /// Figure 1: stability vs RFM detection AUROC by month.
  Result<Figure1Result> Figure1(const Dataset& dataset,
                                Figure1Options options) const;

  /// Out-of-fold AUROC of future-defection prediction.
  Result<ForecastResult> Forecast(const Dataset& dataset,
                                  ForecastOptions options) const;

  /// Cross-validated (window span, alpha) search.
  Result<GridSearchResult> GridSearch(const Dataset& dataset,
                                      GridSearchOptions options) const;

 private:
  explicit EvalRunner(EvalRunnerOptions options) : options_(options) {}

  EvalRunnerOptions options_;
};

}  // namespace api
}  // namespace churnlab

#endif  // CHURNLAB_CHURNLAB_H_
