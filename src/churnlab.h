#ifndef CHURNLAB_CHURNLAB_H_
#define CHURNLAB_CHURNLAB_H_

/// \file
/// \brief The churnlab::api facade — the single header applications
/// include.
///
/// Everything an application needs sits behind three handles plus a few
/// data helpers (docs/API.md walks through each):
///
///   - ScorerHandle: batch scoring and per-customer explanation (wraps the
///     core stability model).
///   - FleetHandle: streaming multi-customer serving — sharded state,
///     batched ingestion, alerts, snapshot/restore (wraps src/serve/).
///   - EvalRunner: the paper's evaluations — Figure 1, grid search,
///     forecasting (wraps src/eval/).
///
/// Construction follows the library-wide `static Result<T> Make(Options)`
/// convention: options are validated eagerly and errors surface as Status,
/// never as exceptions or NaNs. Option and result structs are re-exported
/// here under churnlab::api so facade users need no subsystem includes.

#include <cstdint>
#include <memory>
#include <span>
#include <string>

#include "common/failpoint.h"
#include "common/result.h"
#include "common/retry.h"
#include "core/stability_model.h"
#include "datagen/scenario.h"
#include "eval/experiment.h"
#include "eval/forecaster.h"
#include "eval/grid_search.h"
#include "eval/metrics.h"
#include "eval/report.h"
#include "eval/threshold.h"
#include "net/backend.h"
#include "net/server.h"
#include "net/status_http.h"
#include "retail/dataset.h"
#include "serve/fleet.h"

namespace churnlab {
namespace api {

// ---------------------------------------------------------------------------
// Data: datasets and synthetic scenarios
// ---------------------------------------------------------------------------

using retail::Cohort;
using retail::CohortToString;
using retail::CustomerId;
using retail::Day;
using retail::Granularity;
using retail::ItemId;
using retail::kDaysPerMonth;
using retail::Receipt;

using Dataset = retail::Dataset;
using DatasetStats = retail::DatasetStats;
using ScenarioConfig = datagen::PaperScenarioConfig;

/// Loads a dataset by path: `*.clb` is the binary format, anything else is
/// treated as a CSV prefix (`<prefix>.receipts.csv` etc.).
Result<Dataset> LoadDataset(const std::string& path);

/// Generates the paper's synthetic scenario (loyal + defecting cohorts).
Result<Dataset> MakeScenario(const ScenarioConfig& config);

/// The scripted Figure-2 customer (coffee lost at month 20; milk, sponge
/// and cheese at month 22) embedded in a small population.
using Figure2Scenario = datagen::Figure2Scenario;
Result<Figure2Scenario> MakeFigure2Scenario();

// ---------------------------------------------------------------------------
// Batch scoring
// ---------------------------------------------------------------------------

using ScorerOptions = core::StabilityModelOptions;
using core::CustomerReport;
using core::CustomerWindowReport;
using core::NamedMissingProduct;
using core::ScoreMatrix;
using core::SignificanceProfile;
using core::StabilitySeries;

/// \brief Batch stability scoring and per-customer explanation.
///
/// \code
///   auto scorer = churnlab::api::ScorerHandle::Make({}).ValueOrDie();
///   auto scores = scorer.ScoreDataset(dataset).ValueOrDie();
/// \endcode
class ScorerHandle {
 public:
  static Result<ScorerHandle> Make(ScorerOptions options);

  /// Stability of every customer at every window (higher = more loyal).
  Result<ScoreMatrix> ScoreDataset(const Dataset& dataset) const;

  /// Stability series of one customer.
  Result<StabilitySeries> ScoreCustomer(const Dataset& dataset,
                                        CustomerId customer) const;

  /// Per-window walk-through with product-loss explanations (section 3.2).
  Result<CustomerReport> AnalyzeCustomer(const Dataset& dataset,
                                         CustomerId customer) const;

  /// Ranked significant-product table as seen by window `window` (the
  /// final window when negative).
  Result<SignificanceProfile> ProfileCustomer(const Dataset& dataset,
                                              CustomerId customer,
                                              int32_t window = -1) const;

  const ScorerOptions& options() const { return model_.options(); }

 private:
  explicit ScorerHandle(core::StabilityModel model)
      : model_(std::move(model)) {}

  core::StabilityModel model_;
};

// ---------------------------------------------------------------------------
// Streaming fleet serving
// ---------------------------------------------------------------------------

using serve::BatchReport;
using serve::CustomerQuery;
using serve::FleetAlert;
using serve::FleetHealth;
using serve::FleetOptions;
using serve::ParseStateLayout;
using serve::PoisonedShard;
using serve::RejectedReceipt;
using serve::ShardHealthStats;
using serve::StateLayout;
using serve::StateLayoutToString;
using serve::StateMemoryStats;
/// Durable ingest journal (docs/ROBUSTNESS.md §Durability): the
/// write-ahead log the HTTP server appends every coalesced batch to
/// before applying or acknowledging it, plus the recovery summary a
/// crash restart produces.
using serve::FsyncPolicy;
using serve::FsyncPolicyToString;
using serve::IngestJournal;
using serve::JournalOptions;
using serve::JournalRecovery;
using serve::ParseFsyncPolicy;
using serve::SnapshotRef;
using MonitorPolicy = core::MonitorPolicy;
using StabilityAlert = core::StabilityAlert;
/// Fault injection (docs/ROBUSTNESS.md): arm failpoints programmatically or
/// via FailpointRegistry::Global().ArmFromSpec / the CHURNLAB_FAILPOINTS
/// environment variable; RetryPolicy shapes shard-task and snapshot-write
/// retries through FleetOptions::shard_retry.
using churnlab::FailpointRegistry;
using churnlab::RetryPolicy;

class FleetHandle;
struct RecoveredFleet;
Result<RecoveredFleet> RecoverFleet(
    const std::string& journal_dir, const std::string& snapshot_path,
    FleetOptions fresh_options, const Dataset& dataset, size_t num_threads,
    StateLayout layout);

/// \brief Streaming multi-customer serving: sharded per-customer state,
/// batched ingestion, alerting, and bit-identical snapshot/restore.
///
/// The handle borrows the dataset's taxonomy (segment granularity maps
/// items through it); the dataset must outlive the handle.
///
/// \code
///   auto fleet = churnlab::api::FleetHandle::Make(options, dataset)
///                    .ValueOrDie();
///   auto report = fleet.IngestBatch(receipts).ValueOrDie();
///   for (const auto& alert : report.alerts) notify(alert);
/// \endcode
class FleetHandle {
 public:
  static Result<FleetHandle> Make(FleetOptions options,
                                  const Dataset& dataset);

  /// Ingests one receipt batch; receipts of one customer must be
  /// chronological within and across batches. Alerts and reports are
  /// byte-identical for any thread count.
  Result<BatchReport> IngestBatch(std::span<const Receipt> receipts);

  /// Closes all windows before the one containing `day` for every
  /// customer (models "no activity through day X").
  Result<BatchReport> AdvanceAllTo(Day day);

  /// End-of-stream flush: closes every customer's in-progress window.
  Result<BatchReport> FinishAll();

  size_t NumCustomers() const { return fleet_.NumCustomers(); }
  const FleetOptions& options() const { return fleet_.options(); }

  /// Point-in-time fleet health: per-shard receipt/reject/alert counts,
  /// retry and poison state, population, task-latency histograms, and the
  /// worker pool's queue depth. Call between operations.
  FleetHealth Health() const { return fleet_.HealthReport(); }

  /// Byte accounting of the fleet's customer state, summed over shards.
  /// Publishes the `churnlab.serve.bytes_total` gauge (plus per-shard
  /// `churnlab.serve.bytes{shard=k}` under detailed timing). Call between
  /// operations, like Health().
  StateMemoryStats Memory() const { return fleet_.MemoryUsage(); }

  /// One customer's latest stability plus state-memory bytes; NotFound for
  /// a customer the fleet has never seen. Locks only the customer's shard.
  Result<CustomerQuery> QueryCustomer(CustomerId customer) {
    return fleet_.QueryCustomer(customer);
  }

  /// Writes a versioned, CRC-framed snapshot of the full fleet state
  /// (truncating `path`).
  Status SaveSnapshot(const std::string& path) const;

  /// Appends one snapshot *generation* to `path`; Restore loads the newest
  /// valid generation, so a torn tail loses at most the last append (see
  /// docs/ROBUSTNESS.md §Snapshot recovery).
  Status AppendSnapshot(const std::string& path) const;

  /// Rebuilds a fleet from a snapshot; continues bit-identically.
  /// Threads and the storage layout are never serialized; the restored
  /// fleet uses `num_threads` workers (1 when 0) and `layout` storage,
  /// with identical results for any choice of either.
  static Result<FleetHandle> Restore(
      const std::string& path, const Dataset& dataset,
      size_t num_threads = 0, StateLayout layout = StateLayout::kCompact);

 private:
  friend class ServerHandle;
  friend Result<FleetHandle> OpenSnapshot(const std::string& path,
                                          const Dataset& dataset,
                                          size_t num_threads,
                                          StateLayout layout);
  friend struct RecoveredFleet;
  friend Result<RecoveredFleet> RecoverFleet(const std::string& journal_dir,
                                             const std::string& snapshot_path,
                                             FleetOptions fresh_options,
                                             const Dataset& dataset,
                                             size_t num_threads,
                                             StateLayout layout);

  explicit FleetHandle(serve::ScoringFleet fleet)
      : fleet_(std::move(fleet)) {}

  serve::ScoringFleet fleet_;
};

/// The canonical snapshot-open path, shared by `serve-replay --resume`, the
/// HTTP server, and FleetHandle::Restore: understands both bare "CHLFLEET"
/// snapshots and append-mode "CHLFGENS" generation files, falls back to the
/// newest valid generation on a torn or corrupted tail, and reports that
/// fallback uniformly (the `snapshot_generation_fallback` structured event
/// plus the `churnlab.serve.snapshot_fallbacks` counter).
Result<FleetHandle> OpenSnapshot(
    const std::string& path, const Dataset& dataset, size_t num_threads = 0,
    StateLayout layout = StateLayout::kCompact);

/// A fleet rebuilt from a journal by RecoverFleet, plus the recovery
/// summary (watermark, replayed frame/receipt counts, next sequence; the
/// replayed frames themselves are released after the rebuild).
struct RecoveredFleet {
  FleetHandle fleet;
  JournalRecovery recovery;
};

/// Read-only crash recovery for offline tools (`serve-replay --recover`):
/// opens `journal_dir` without mutating it, restores the checkpointed
/// snapshot generation from `snapshot_path` (or a fresh fleet built from
/// `fresh_options` when no checkpoint was ever written), and replays every
/// journal frame above the durable watermark in arrival-sequence order.
/// The result is byte-identical to the fleet the crashed server held after
/// its last journaled batch. Torn trailing frames are discarded (counted
/// in the recovery summary); any interior corruption or sequence gap is a
/// hard DataLoss error, never a silent skip.
Result<RecoveredFleet> RecoverFleet(
    const std::string& journal_dir, const std::string& snapshot_path,
    FleetOptions fresh_options, const Dataset& dataset,
    size_t num_threads = 0, StateLayout layout = StateLayout::kCompact);

// ---------------------------------------------------------------------------
// Network serving
// ---------------------------------------------------------------------------

using net::AdmissionGate;
using net::HttpParser;
using net::IngestCoalescer;
using net::ServerOptions;
using net::StatusToHttp;

/// \brief The HTTP/1.1 scoring front end over a FleetHandle
/// (docs/API.md "HTTP API").
///
/// Endpoints: POST /v1/ingest (coalesced, admission-controlled), GET
/// /v1/customers/{id}, GET /v1/health, GET /metrics (Prometheus), POST
/// /v1/snapshot. The handle owns the fleet; stopping the server (drain)
/// flushes a final snapshot to `snapshot_path` when one is configured.
///
/// \code
///   auto server = churnlab::api::ServerHandle::Make(
///       {.http = {.port = 8080}, .snapshot_path = "fleet.snap"},
///       std::move(fleet)).ValueOrDie();
///   server.Start().Abort("serve-http");
///   server.InstallSignalHandler().Abort("serve-http");
///   server.Wait().Abort("serve-http");  // returns after SIGTERM drain
/// \endcode
class ServerHandle {
 public:
  struct Options {
    net::ServerOptions http;
    /// Drain-time / POST /v1/snapshot destination; empty disables both.
    std::string snapshot_path;
    /// Append generations (crash-tolerant) versus truncate-and-write.
    /// Must stay true when a journal is configured: checkpoints name the
    /// exact snapshot generation they cover, and a truncating snapshot
    /// would destroy the previous checkpoint's bytes mid-write.
    bool snapshot_append = true;
    /// Durable ingest journal directory; empty disables journaling. When
    /// set, every coalesced ingest batch is appended (and synced per
    /// `journal_fsync`) BEFORE it is applied or acknowledged, and every
    /// snapshot doubles as a checkpoint that truncates the journal.
    /// Requires a snapshot_path and snapshot_append.
    std::string journal_dir;
    /// When to fsync journal appends (serve::FsyncPolicy).
    serve::FsyncPolicy journal_fsync = serve::FsyncPolicy::kBatch;
  };

  static Result<ServerHandle> Make(Options options, FleetHandle fleet);

  /// Crash recovery: opens `options.journal_dir` for replay + append,
  /// rebuilds the fleet from the checkpointed snapshot generation in
  /// `options.snapshot_path` plus the journal frames above the durable
  /// watermark (see RecoverFleet), and returns a server whose arrival
  /// sequence numbering continues where the crashed process stopped.
  /// `fleet_options` seeds a fresh fleet when no checkpoint was written
  /// before the crash. When `recovery_out` is non-null it receives the
  /// recovery summary (frames released).
  static Result<ServerHandle> Recover(
      Options options, FleetOptions fleet_options, const Dataset& dataset,
      size_t num_threads = 0, StateLayout layout = StateLayout::kCompact,
      JournalRecovery* recovery_out = nullptr);

  /// Binds, listens, and starts serving (returns immediately).
  Status Start();

  /// The bound port (useful with an ephemeral `http.port = 0`).
  uint16_t port() const { return server_->port(); }

  /// Routes SIGTERM/SIGINT to a graceful drain (one server per process).
  Status InstallSignalHandler() { return server_->InstallSignalHandler(); }

  /// Begins a graceful drain: acceptor stops, in-flight requests finish,
  /// a final snapshot is flushed. Thread-safe.
  void RequestDrain() { server_->RequestDrain(); }

  /// Blocks until the drain completed; returns the final flush's status.
  Status Wait() { return server_->Wait(); }

  /// RequestDrain + Wait.
  Status Shutdown() { return server_->Shutdown(); }

  /// The served fleet. Safe to inspect after Wait()/Shutdown(); while the
  /// server is running, use the HTTP endpoints instead.
  FleetHandle& fleet() { return *fleet_; }

 private:
  ServerHandle(std::unique_ptr<FleetHandle> fleet,
               std::unique_ptr<serve::IngestJournal> journal,
               std::unique_ptr<net::FleetBackend> backend,
               std::unique_ptr<net::HttpServer> server)
      : fleet_(std::move(fleet)),
        journal_(std::move(journal)),
        backend_(std::move(backend)),
        server_(std::move(server)) {}

  /// Shared tail of Make and Recover: validates journal/snapshot option
  /// coupling and wires fleet -> backend -> server.
  static Result<ServerHandle> Assemble(
      Options options, std::unique_ptr<FleetHandle> fleet,
      std::unique_ptr<serve::IngestJournal> journal);

  // Held as pointers so the handle stays movable while the server keeps
  // stable addresses for the backend, journal, and fleet.
  std::unique_ptr<FleetHandle> fleet_;
  std::unique_ptr<serve::IngestJournal> journal_;
  std::unique_ptr<net::FleetBackend> backend_;
  std::unique_ptr<net::HttpServer> server_;
};

// ---------------------------------------------------------------------------
// Evaluation
// ---------------------------------------------------------------------------

using eval::Figure1Options;
using eval::Figure1Result;
using eval::ForecastOptions;
using eval::ForecastResult;
using eval::GridSearchOptions;
using eval::GridSearchResult;
/// Plain-text/CSV result rendering, re-exported for facade-only programs.
using eval::TextTable;
/// Detection-quality primitives, re-exported for facade-only programs.
using eval::AurocPerWindow;
using eval::ConfusionAtThreshold;
using eval::ConfusionMatrix;
using eval::LiftAtFraction;
using eval::OperatingPoint;
using eval::ScoreOrientation;
using eval::SelectForRecall;
using eval::SelectMaxF1;
using eval::WindowAuroc;

struct EvalRunnerOptions {
  /// Worker threads for the evaluation sweeps; stamped over the
  /// per-evaluation options' num_threads fields. Results are identical for
  /// any thread count.
  size_t num_threads = 1;
};

/// \brief The paper's evaluations behind one handle.
class EvalRunner {
 public:
  static Result<EvalRunner> Make(EvalRunnerOptions options = {});

  /// Figure 1: stability vs RFM detection AUROC by month.
  Result<Figure1Result> Figure1(const Dataset& dataset,
                                Figure1Options options) const;

  /// Out-of-fold AUROC of future-defection prediction.
  Result<ForecastResult> Forecast(const Dataset& dataset,
                                  ForecastOptions options) const;

  /// Cross-validated (window span, alpha) search.
  Result<GridSearchResult> GridSearch(const Dataset& dataset,
                                      GridSearchOptions options) const;

 private:
  explicit EvalRunner(EvalRunnerOptions options) : options_(options) {}

  EvalRunnerOptions options_;
};

}  // namespace api
}  // namespace churnlab

#endif  // CHURNLAB_CHURNLAB_H_
