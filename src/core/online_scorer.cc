#include "core/online_scorer.h"

#include <algorithm>
#include <atomic>

#include "common/macros.h"
#include "obs/metrics.h"

namespace churnlab {
namespace core {

namespace {
struct OnlineMetrics {
  obs::Counter* observations;
  obs::Counter* windows_emitted;
  obs::Gauge* windows_per_sec;
  obs::Histogram* observe_latency_us;
};

const OnlineMetrics& Metrics() {
  static const OnlineMetrics metrics = [] {
    obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
    return OnlineMetrics{
        registry.GetCounter("churnlab.core.online_observations"),
        registry.GetCounter("churnlab.core.online_windows_emitted"),
        registry.GetGauge("churnlab.core.online_windows_per_sec"),
        registry.GetHistogram("churnlab.core.observe_latency_us",
                              obs::HistogramOptions::ExponentialLatency()),
    };
  }();
  return metrics;
}

// Process-wide anchor for the windows/sec throughput gauge: nanoseconds of
// the first window emission. Races on the initial store are benign (both
// writers store nearly identical timestamps).
std::atomic<uint64_t> g_first_emit_ns{0};

void RecordEmittedWindows(size_t count) {
  if (count == 0) return;
  const OnlineMetrics& metrics = Metrics();
  metrics.windows_emitted->Increment(count);
  const uint64_t now_ns = obs::MonotonicNanos();
  uint64_t first = g_first_emit_ns.load(std::memory_order_relaxed);
  if (first == 0) {
    g_first_emit_ns.compare_exchange_strong(first, now_ns,
                                            std::memory_order_relaxed);
    first = g_first_emit_ns.load(std::memory_order_relaxed);
  }
  const double elapsed_s = static_cast<double>(now_ns - first) * 1e-9;
  if (elapsed_s > 0.0) {
    metrics.windows_per_sec->Set(
        static_cast<double>(metrics.windows_emitted->Value()) / elapsed_s);
  }
}
}  // namespace

Result<OnlineStabilityScorer> OnlineStabilityScorer::Make(Options options) {
  if (options.window_span_days <= 0) {
    return Status::InvalidArgument("window_span_days must be positive");
  }
  if (options.origin_day < 0) {
    return Status::InvalidArgument("origin_day must be >= 0");
  }
  CHURNLAB_ASSIGN_OR_RETURN(const SignificanceTracker tracker,
                            SignificanceTracker::Make(options.significance));
  (void)tracker;
  return OnlineStabilityScorer(options);
}

StabilityPoint OnlineStabilityScorer::CloseCurrentWindow() {
  StabilityPoint point;
  point.window_index = current_window_;
  point.total_significance = tracker_.TotalSignificance();
  point.present_significance =
      tracker_.PresentSignificance(current_symbols_);
  if (point.total_significance > 0.0) {
    point.has_history = true;
    point.stability =
        point.present_significance / point.total_significance;
  } else {
    point.has_history = false;
    point.stability = 1.0;
  }
  tracker_.AdvanceWindow(current_symbols_);
  current_symbols_.clear();
  ++current_window_;
  return point;
}

Result<std::vector<StabilityPoint>> OnlineStabilityScorer::AdvanceTo(
    retail::Day day) {
  if (day < options_.origin_day) {
    return Status::InvalidArgument("day precedes the window origin");
  }
  if (day < last_observed_day_) {
    return Status::InvalidArgument(
        "stream is not chronological: day " + std::to_string(day) +
        " after day " + std::to_string(last_observed_day_));
  }
  last_observed_day_ = day;
  const int32_t target_window =
      (day - options_.origin_day) / options_.window_span_days;
  std::vector<StabilityPoint> emitted;
  while (current_window_ < target_window) {
    emitted.push_back(CloseCurrentWindow());
  }
  RecordEmittedWindows(emitted.size());
  return emitted;
}

Result<std::vector<StabilityPoint>> OnlineStabilityScorer::Observe(
    retail::Day day, const std::vector<Symbol>& symbols) {
  const OnlineMetrics& metrics = Metrics();
  obs::ScopedLatency latency(metrics.observe_latency_us);
  CHURNLAB_ASSIGN_OR_RETURN(std::vector<StabilityPoint> emitted,
                            AdvanceTo(day));
  // Merge the observation into the current window's sorted union.
  for (const Symbol symbol : symbols) {
    if (symbol == kInvalidSymbol) continue;
    const auto it = std::lower_bound(current_symbols_.begin(),
                                     current_symbols_.end(), symbol);
    if (it == current_symbols_.end() || *it != symbol) {
      current_symbols_.insert(it, symbol);
    }
  }
  metrics.observations->Increment();
  return emitted;
}

Result<StabilityPoint> OnlineStabilityScorer::Finish() {
  if (last_observed_day_ < 0) {
    return Status::FailedPrecondition(
        "no observations were ever fed; window 0 would be vacuous");
  }
  // The next acceptable observation starts at the next window boundary.
  last_observed_day_ =
      std::max(last_observed_day_,
               options_.origin_day +
                   (current_window_ + 1) * options_.window_span_days - 1);
  StabilityPoint point = CloseCurrentWindow();
  RecordEmittedWindows(1);
  return point;
}

void OnlineStabilityScorer::SaveState(BinaryWriter* writer) const {
  tracker_.SaveState(writer);
  writer->WriteVarint(current_symbols_.size());
  Symbol previous = 0;
  for (const Symbol symbol : current_symbols_) {  // sorted: delta-encode
    writer->WriteVarint(symbol - previous);
    previous = symbol;
  }
  writer->WriteSignedVarint(current_window_);
  writer->WriteSignedVarint(last_observed_day_);
}

Status OnlineStabilityScorer::LoadState(BinaryReader* reader) {
  CHURNLAB_RETURN_NOT_OK(tracker_.LoadState(reader));
  CHURNLAB_ASSIGN_OR_RETURN(const uint64_t num_symbols, reader->ReadVarint());
  // Untrusted length prefix: each symbol takes at least one byte, so a
  // count beyond the remaining buffer is corruption — reject before
  // reserving storage sized from it.
  if (num_symbols > reader->remaining()) {
    return Status::InvalidArgument(
        "scorer symbol count exceeds remaining state bytes");
  }
  current_symbols_.clear();
  current_symbols_.reserve(num_symbols);
  uint64_t symbol = 0;
  for (uint64_t i = 0; i < num_symbols; ++i) {
    CHURNLAB_ASSIGN_OR_RETURN(const uint64_t delta, reader->ReadVarint());
    symbol += delta;
    if (symbol >= static_cast<uint64_t>(kInvalidSymbol)) {
      return Status::OutOfRange("corrupt scorer symbol set");
    }
    current_symbols_.push_back(static_cast<Symbol>(symbol));
  }
  CHURNLAB_ASSIGN_OR_RETURN(const int64_t current_window,
                            reader->ReadSignedVarint());
  CHURNLAB_ASSIGN_OR_RETURN(const int64_t last_observed_day,
                            reader->ReadSignedVarint());
  if (current_window < 0 || current_window > INT32_MAX ||
      last_observed_day < -1 || last_observed_day > INT32_MAX) {
    return Status::OutOfRange("corrupt scorer stream position");
  }
  current_window_ = static_cast<int32_t>(current_window);
  last_observed_day_ = static_cast<retail::Day>(last_observed_day);
  return Status::OK();
}

}  // namespace core
}  // namespace churnlab
