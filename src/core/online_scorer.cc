#include "core/online_scorer.h"

#include <atomic>

#include "common/macros.h"
#include "core/state_kernel.h"
#include "obs/metrics.h"

namespace churnlab {
namespace core {
namespace kernel {

// Definitions of the shared observability hooks declared in
// state_kernel.h: one metric family regardless of storage layout.

obs::Counter* ObservationsCounter() {
  static obs::Counter* const counter =
      obs::MetricsRegistry::Global().GetCounter(
          "churnlab.core.online_observations");
  return counter;
}

obs::Histogram* ObserveLatencyHistogram() {
  static obs::Histogram* const histogram =
      obs::MetricsRegistry::Global().GetHistogram(
          "churnlab.core.observe_latency_us",
          obs::HistogramOptions::ExponentialLatency());
  return histogram;
}

namespace {
// Process-wide anchor for the windows/sec throughput gauge: nanoseconds of
// the first window emission. Races on the initial store are benign (both
// writers store nearly identical timestamps).
std::atomic<uint64_t> g_first_emit_ns{0};
}  // namespace

void RecordEmittedWindows(size_t count) {
  if (count == 0) return;
  static obs::Counter* const windows_emitted =
      obs::MetricsRegistry::Global().GetCounter(
          "churnlab.core.online_windows_emitted");
  static obs::Gauge* const windows_per_sec =
      obs::MetricsRegistry::Global().GetGauge(
          "churnlab.core.online_windows_per_sec");
  windows_emitted->Increment(count);
  const uint64_t now_ns = obs::MonotonicNanos();
  uint64_t first = g_first_emit_ns.load(std::memory_order_relaxed);
  if (first == 0) {
    g_first_emit_ns.compare_exchange_strong(first, now_ns,
                                            std::memory_order_relaxed);
    first = g_first_emit_ns.load(std::memory_order_relaxed);
  }
  const double elapsed_s = static_cast<double>(now_ns - first) * 1e-9;
  if (elapsed_s > 0.0) {
    windows_per_sec->Set(static_cast<double>(windows_emitted->Value()) /
                         elapsed_s);
  }
}

}  // namespace kernel

Result<OnlineStabilityScorer> OnlineStabilityScorer::Make(Options options) {
  if (options.window_span_days <= 0) {
    return Status::InvalidArgument("window_span_days must be positive");
  }
  if (options.origin_day < 0) {
    return Status::InvalidArgument("origin_day must be >= 0");
  }
  CHURNLAB_ASSIGN_OR_RETURN(const SignificanceTracker tracker,
                            SignificanceTracker::Make(options.significance));
  (void)tracker;
  return OnlineStabilityScorer(options);
}

Result<std::vector<StabilityPoint>> OnlineStabilityScorer::AdvanceTo(
    retail::Day day) {
  return kernel::ScorerAdvanceTo(tracker_.state(), state_, options_,
                                 tracker_.pows(), day);
}

Result<std::vector<StabilityPoint>> OnlineStabilityScorer::Observe(
    retail::Day day, const std::vector<Symbol>& symbols) {
  return kernel::ScorerObserve(tracker_.state(), state_, options_,
                               tracker_.pows(), day,
                               std::span<const Symbol>(symbols));
}

Result<StabilityPoint> OnlineStabilityScorer::Finish() {
  return kernel::ScorerFinish(tracker_.state(), state_, options_,
                              tracker_.pows());
}

size_t OnlineStabilityScorer::MemoryUsage() const {
  return tracker_.MemoryUsage() +
         state_.current_symbols.capacity() * sizeof(Symbol);
}

void OnlineStabilityScorer::SaveState(BinaryWriter* writer) const {
  kernel::ScorerSaveState(
      const_cast<OnlineStabilityScorer*>(this)->tracker_.state(),
      MutableState(), writer);
}

Status OnlineStabilityScorer::LoadState(BinaryReader* reader) {
  return kernel::ScorerLoadState(tracker_.state(), state_, reader);
}

}  // namespace core
}  // namespace churnlab
