#include "core/online_scorer.h"

#include <algorithm>

#include "common/macros.h"

namespace churnlab {
namespace core {

Result<OnlineStabilityScorer> OnlineStabilityScorer::Make(Options options) {
  if (options.window_span_days <= 0) {
    return Status::InvalidArgument("window_span_days must be positive");
  }
  if (options.origin_day < 0) {
    return Status::InvalidArgument("origin_day must be >= 0");
  }
  CHURNLAB_ASSIGN_OR_RETURN(const SignificanceTracker tracker,
                            SignificanceTracker::Make(options.significance));
  (void)tracker;
  return OnlineStabilityScorer(options);
}

StabilityPoint OnlineStabilityScorer::CloseCurrentWindow() {
  StabilityPoint point;
  point.window_index = current_window_;
  point.total_significance = tracker_.TotalSignificance();
  double present = 0.0;
  for (const Symbol symbol : current_symbols_) {
    present += tracker_.SignificanceOf(symbol);
  }
  point.present_significance = present;
  if (point.total_significance > 0.0) {
    point.has_history = true;
    point.stability = present / point.total_significance;
  } else {
    point.has_history = false;
    point.stability = 1.0;
  }
  tracker_.AdvanceWindow(current_symbols_);
  current_symbols_.clear();
  ++current_window_;
  return point;
}

Result<std::vector<StabilityPoint>> OnlineStabilityScorer::AdvanceTo(
    retail::Day day) {
  if (day < options_.origin_day) {
    return Status::InvalidArgument("day precedes the window origin");
  }
  if (day < last_observed_day_) {
    return Status::InvalidArgument(
        "stream is not chronological: day " + std::to_string(day) +
        " after day " + std::to_string(last_observed_day_));
  }
  last_observed_day_ = day;
  const int32_t target_window =
      (day - options_.origin_day) / options_.window_span_days;
  std::vector<StabilityPoint> emitted;
  while (current_window_ < target_window) {
    emitted.push_back(CloseCurrentWindow());
  }
  return emitted;
}

Result<std::vector<StabilityPoint>> OnlineStabilityScorer::Observe(
    retail::Day day, const std::vector<Symbol>& symbols) {
  CHURNLAB_ASSIGN_OR_RETURN(std::vector<StabilityPoint> emitted,
                            AdvanceTo(day));
  // Merge the observation into the current window's sorted union.
  for (const Symbol symbol : symbols) {
    if (symbol == kInvalidSymbol) continue;
    const auto it = std::lower_bound(current_symbols_.begin(),
                                     current_symbols_.end(), symbol);
    if (it == current_symbols_.end() || *it != symbol) {
      current_symbols_.insert(it, symbol);
    }
  }
  return emitted;
}

StabilityPoint OnlineStabilityScorer::Finish() {
  // The next acceptable observation starts at the next window boundary.
  last_observed_day_ =
      std::max(last_observed_day_,
               options_.origin_day +
                   (current_window_ + 1) * options_.window_span_days - 1);
  return CloseCurrentWindow();
}

}  // namespace core
}  // namespace churnlab
