#include "core/window.h"

#include <algorithm>

#include "obs/metrics.h"

namespace churnlab {
namespace core {

void RecordWindowingStats(size_t num_windows, size_t num_receipts) {
  static obs::Counter* const windows =
      obs::MetricsRegistry::Global().GetCounter("churnlab.core.windows_built");
  static obs::Counter* const receipts =
      obs::MetricsRegistry::Global().GetCounter(
          "churnlab.core.receipts_windowed");
  windows->Increment(num_windows);
  receipts->Increment(num_receipts);
}

bool Window::Contains(Symbol symbol) const {
  return std::binary_search(symbols.begin(), symbols.end(), symbol);
}

Windower::Windower(WindowerOptions options) : options_(options) {}

Result<Windower> Windower::Make(WindowerOptions options) {
  if (options.window_span_days <= 0) {
    return Status::InvalidArgument(
        "window_span_days must be positive, got " +
        std::to_string(options.window_span_days));
  }
  if (options.origin_day < 0) {
    return Status::InvalidArgument("origin_day must be >= 0, got " +
                                   std::to_string(options.origin_day));
  }
  return Windower(options);
}

int32_t Windower::WindowsToCover(retail::Day last_day) const {
  if (last_day < options_.origin_day) return 0;
  return (last_day - options_.origin_day) / options_.window_span_days + 1;
}

int32_t Windower::WindowIndexOf(retail::Day day) const {
  if (day < options_.origin_day) return -1;
  return (day - options_.origin_day) / options_.window_span_days;
}

}  // namespace core
}  // namespace churnlab
