#ifndef CHURNLAB_CORE_ONLINE_SCORER_H_
#define CHURNLAB_CORE_ONLINE_SCORER_H_

#include <cstddef>
#include <span>
#include <vector>

#include "common/result.h"
#include "core/significance.h"
#include "core/stability.h"
#include "core/window.h"
#include "retail/types.h"

namespace churnlab {
namespace core {

/// \brief Streaming per-customer stability scorer.
///
/// The batch pipeline (Windower + StabilityComputer) needs the whole
/// history up front; production monitoring instead sees receipts as they
/// happen. OnlineStabilityScorer consumes a chronological stream of
/// (day, symbol-set) observations and emits one StabilityPoint per window
/// as soon as the window closes — with results bit-identical to the batch
/// pipeline on the same data (guaranteed by tests).
///
/// The streaming logic lives in the shared kernels of
/// core/state_kernel.h, instantiated here over the nested State struct;
/// the serving layer's compact layout instantiates the same kernels.
///
/// \code
///   OnlineStabilityScorer scorer =
///       OnlineStabilityScorer::Make(options).ValueOrDie();
///   for (const retail::Receipt& r : stream) {
///     for (const StabilityPoint& p : scorer.Observe(r.day, r.items)) {
///       alert_if_low(p);
///     }
///   }
///   auto tail = scorer.Finish();  // closes the in-progress window
///   if (tail.ok()) report(*tail);  // error when nothing was ever observed
/// \endcode
class OnlineStabilityScorer {
 public:
  struct Options {
    SignificanceOptions significance;
    /// Width of each window in days (> 0).
    retail::Day window_span_days = 2 * retail::kDaysPerMonth;
    /// Day at which window 0 begins (>= 0).
    retail::Day origin_day = 0;
  };

  /// Heap-layout storage behind the shared kernels: the ScorerState
  /// concept of state_kernel.h over plain members.
  struct State {
    std::vector<Symbol> current_symbols;  // kept sorted + deduplicated
    int32_t current_window = 0;
    retail::Day last_observed_day = -1;

    std::span<const Symbol> CurrentSymbols() const {
      return {current_symbols.data(), current_symbols.size()};
    }
    void InsertCurrentSymbol(size_t pos, Symbol symbol) {
      current_symbols.insert(
          current_symbols.begin() + static_cast<ptrdiff_t>(pos), symbol);
    }
    void AppendCurrentSymbol(Symbol symbol) {
      current_symbols.push_back(symbol);
    }
    void ReserveCurrentSymbols(size_t n) { current_symbols.reserve(n); }
    void ClearCurrentSymbols() { current_symbols.clear(); }
    int32_t& CurrentWindow() { return current_window; }
    retail::Day& LastObservedDay() { return last_observed_day; }
  };

  /// Validates the options.
  static Result<OnlineStabilityScorer> Make(Options options);

  /// Feeds one observation. `day` must be >= every previously observed day
  /// (chronological stream) and >= origin; violations return
  /// InvalidArgument and leave the scorer unchanged. Returns the stability
  /// points of every window that closed strictly before `day`'s window
  /// (empty vector when `day` falls into the current window).
  Result<std::vector<StabilityPoint>> Observe(
      retail::Day day, const std::vector<Symbol>& symbols);

  /// Closes every window up to but excluding the one containing `day`,
  /// without recording a purchase. Use for "no activity through day X"
  /// advancement. Same ordering rules as Observe.
  Result<std::vector<StabilityPoint>> AdvanceTo(retail::Day day);

  /// Closes the current window and returns its point (plus nothing else).
  /// The scorer can keep streaming afterwards; the next observation must
  /// belong to a later window. Returns FailedPrecondition when no
  /// observation was ever fed (via Observe or AdvanceTo): window 0 would be
  /// a vacuous all-defaults point, and emitting it used to silently skew
  /// downstream aggregations.
  Result<StabilityPoint> Finish();

  /// Index of the window currently being accumulated.
  int32_t current_window() const { return state_.current_window; }

  /// Number of windows already emitted.
  int32_t windows_emitted() const { return tracker_.windows_seen(); }

  /// Heap bytes held behind this scorer (tracker plus the in-progress
  /// window's symbol union), excluding sizeof(*this).
  size_t MemoryUsage() const;

  /// Serializes the streaming state (tracker counters, the in-progress
  /// window's symbol union, stream position) so a restored scorer continues
  /// bit-identically. Options are not written; the caller persists them.
  void SaveState(BinaryWriter* writer) const;

  /// Restores state written by SaveState. The scorer must have been
  /// constructed with the same options as the saver.
  Status LoadState(BinaryReader* reader);

 private:
  explicit OnlineStabilityScorer(Options options)
      : options_(options), tracker_(options.significance) {}

  State& MutableState() const {
    return const_cast<OnlineStabilityScorer*>(this)->state_;
  }

  Options options_;
  SignificanceTracker tracker_;
  State state_;
};

}  // namespace core
}  // namespace churnlab

#endif  // CHURNLAB_CORE_ONLINE_SCORER_H_
