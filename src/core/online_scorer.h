#ifndef CHURNLAB_CORE_ONLINE_SCORER_H_
#define CHURNLAB_CORE_ONLINE_SCORER_H_

#include <vector>

#include "common/result.h"
#include "core/significance.h"
#include "core/stability.h"
#include "core/window.h"
#include "retail/types.h"

namespace churnlab {
namespace core {

/// \brief Streaming per-customer stability scorer.
///
/// The batch pipeline (Windower + StabilityComputer) needs the whole
/// history up front; production monitoring instead sees receipts as they
/// happen. OnlineStabilityScorer consumes a chronological stream of
/// (day, symbol-set) observations and emits one StabilityPoint per window
/// as soon as the window closes — with results bit-identical to the batch
/// pipeline on the same data (guaranteed by tests).
///
/// \code
///   OnlineStabilityScorer scorer =
///       OnlineStabilityScorer::Make(options).ValueOrDie();
///   for (const retail::Receipt& r : stream) {
///     for (const StabilityPoint& p : scorer.Observe(r.day, r.items)) {
///       alert_if_low(p);
///     }
///   }
///   auto tail = scorer.Finish();  // closes the in-progress window
///   if (tail.ok()) report(*tail);  // error when nothing was ever observed
/// \endcode
class OnlineStabilityScorer {
 public:
  struct Options {
    SignificanceOptions significance;
    /// Width of each window in days (> 0).
    retail::Day window_span_days = 2 * retail::kDaysPerMonth;
    /// Day at which window 0 begins (>= 0).
    retail::Day origin_day = 0;
  };

  /// Validates the options.
  static Result<OnlineStabilityScorer> Make(Options options);

  /// Feeds one observation. `day` must be >= every previously observed day
  /// (chronological stream) and >= origin; violations return
  /// InvalidArgument and leave the scorer unchanged. Returns the stability
  /// points of every window that closed strictly before `day`'s window
  /// (empty vector when `day` falls into the current window).
  Result<std::vector<StabilityPoint>> Observe(
      retail::Day day, const std::vector<Symbol>& symbols);

  /// Closes every window up to but excluding the one containing `day`,
  /// without recording a purchase. Use for "no activity through day X"
  /// advancement. Same ordering rules as Observe.
  Result<std::vector<StabilityPoint>> AdvanceTo(retail::Day day);

  /// Closes the current window and returns its point (plus nothing else).
  /// The scorer can keep streaming afterwards; the next observation must
  /// belong to a later window. Returns FailedPrecondition when no
  /// observation was ever fed (via Observe or AdvanceTo): window 0 would be
  /// a vacuous all-defaults point, and emitting it used to silently skew
  /// downstream aggregations.
  Result<StabilityPoint> Finish();

  /// Index of the window currently being accumulated.
  int32_t current_window() const { return current_window_; }

  /// Number of windows already emitted.
  int32_t windows_emitted() const { return tracker_.windows_seen(); }

  /// Serializes the streaming state (tracker counters, the in-progress
  /// window's symbol union, stream position) so a restored scorer continues
  /// bit-identically. Options are not written; the caller persists them.
  void SaveState(BinaryWriter* writer) const;

  /// Restores state written by SaveState. The scorer must have been
  /// constructed with the same options as the saver.
  Status LoadState(BinaryReader* reader);

 private:
  explicit OnlineStabilityScorer(Options options)
      : options_(options), tracker_(options.significance) {}

  /// Emits the current window and starts the next one.
  StabilityPoint CloseCurrentWindow();

  Options options_;
  SignificanceTracker tracker_;
  std::vector<Symbol> current_symbols_;  // kept sorted + deduplicated
  int32_t current_window_ = 0;
  retail::Day last_observed_day_ = -1;
};

}  // namespace core
}  // namespace churnlab

#endif  // CHURNLAB_CORE_ONLINE_SCORER_H_
