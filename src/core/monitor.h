#ifndef CHURNLAB_CORE_MONITOR_H_
#define CHURNLAB_CORE_MONITOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "core/online_scorer.h"

namespace churnlab {
namespace core {

/// When the monitor raises an alert for a customer.
struct MonitorPolicy {
  /// Low-stability rule: alert when stability <= beta for
  /// `consecutive_windows` windows in a row (the paper's beta threshold,
  /// debounced).
  double beta = 0.6;
  int32_t consecutive_windows = 1;
  /// Sharp-drop rule: alert when stability falls by more than this between
  /// consecutive windows. Values > 1 disable the rule.
  double drop_threshold = 0.25;
  /// Windows to ignore at the start of the stream (no significance history
  /// yet, stability is vacuous there).
  int32_t warmup_windows = 2;
};

/// One raised alert.
struct StabilityAlert {
  enum class Kind : uint8_t {
    /// stability <= beta for the configured streak.
    kLowStability = 0,
    /// single-window drop exceeded drop_threshold.
    kSharpDrop = 1,
  };
  Kind kind = Kind::kLowStability;
  int32_t window_index = 0;
  double stability = 0.0;
  /// stability(previous) - stability(current); 0 for the first window.
  double drop = 0.0;

  std::string ToString() const;
};

/// \brief Streaming per-customer attrition alerting: an
/// OnlineStabilityScorer plus debounced threshold policies.
///
/// The policy evaluation lives in the shared kernels of
/// core/state_kernel.h, instantiated here over the nested State struct;
/// the serving layer's compact layout instantiates the same kernels.
///
/// \code
///   auto monitor = StabilityMonitor::Make(scorer_options, policy)
///                      .ValueOrDie();
///   for (const auto& receipt : stream) {
///     for (const StabilityAlert& alert :
///          monitor.Observe(receipt.day, symbols).ValueOrDie()) {
///       notify_marketing(customer, alert);
///     }
///   }
/// \endcode
class StabilityMonitor {
 public:
  /// Heap-layout storage behind the shared kernels: the MonitorState
  /// concept of state_kernel.h over plain members.
  struct State {
    double last_stability = 1.0;
    uint8_t has_previous = 0;
    int32_t low_streak = 0;

    double& LastStability() { return last_stability; }
    uint8_t& HasPrevious() { return has_previous; }
    int32_t& LowStreak() { return low_streak; }
  };

  static Result<StabilityMonitor> Make(OnlineStabilityScorer::Options options,
                                       MonitorPolicy policy);

  /// Feeds one observation; returns alerts for every window that closed.
  /// Same stream-ordering contract as OnlineStabilityScorer::Observe.
  Result<std::vector<StabilityAlert>> Observe(
      retail::Day day, const std::vector<Symbol>& symbols);

  /// Closes windows up to the one containing `day` without a purchase.
  Result<std::vector<StabilityAlert>> AdvanceTo(retail::Day day);

  /// Closes the in-progress window and evaluates it against the policy
  /// (end-of-stream flush). No-op returning zero alerts when no observation
  /// was ever fed — the underlying scorer refuses to emit a vacuous window
  /// 0 point (see OnlineStabilityScorer::Finish), and a never-fed monitor
  /// has nothing to alert on.
  Result<std::vector<StabilityAlert>> Finish();

  /// Stability of the most recently closed window (1.0 before any closes).
  double last_stability() const { return state_.last_stability; }
  int32_t windows_closed() const { return scorer_.windows_emitted(); }
  const MonitorPolicy& policy() const { return policy_; }

  /// Heap bytes held behind this monitor (scorer plus tracker storage and
  /// power tables), excluding sizeof(*this).
  size_t MemoryUsage() const { return scorer_.MemoryUsage(); }

  /// Serializes scorer + debounce state so a restored monitor continues
  /// bit-identically (same alerts for the same future stream). Options and
  /// policy are not written; the caller persists them.
  void SaveState(BinaryWriter* writer) const;

  /// Restores state written by SaveState. The monitor must have been
  /// constructed with the same options and policy as the saver.
  Status LoadState(BinaryReader* reader);

 private:
  StabilityMonitor(OnlineStabilityScorer scorer, MonitorPolicy policy)
      : scorer_(std::move(scorer)), policy_(policy) {}

  OnlineStabilityScorer scorer_;
  MonitorPolicy policy_;
  State state_;
};

}  // namespace core
}  // namespace churnlab

#endif  // CHURNLAB_CORE_MONITOR_H_
