#include "core/significance_reference.h"

#include <algorithm>

#include "common/macros.h"
#include "common/math_util.h"

namespace churnlab {
namespace core {

ReferenceSignificanceTracker::ReferenceSignificanceTracker(
    SignificanceOptions options)
    : options_(options) {}

Result<ReferenceSignificanceTracker> ReferenceSignificanceTracker::Make(
    SignificanceOptions options) {
  // Same validation as the production tracker.
  CHURNLAB_ASSIGN_OR_RETURN(const SignificanceTracker tracker,
                            SignificanceTracker::Make(options));
  (void)tracker;
  return ReferenceSignificanceTracker(options);
}

double ReferenceSignificanceTracker::SignificanceOf(Symbol symbol) const {
  if (options_.kind == SignificanceKind::kEwma) {
    const auto it = ewma_scores_.find(symbol);
    return it == ewma_scores_.end() ? 0.0 : it->second;
  }
  const auto it = contain_counts_.find(symbol);
  if (it == contain_counts_.end()) return 0.0;
  const double exponent = 2.0 * it->second - windows_seen_;
  if (options_.alpha == 1.0) return 1.0;
  return ClampedPow(options_.alpha, exponent, options_.max_abs_exponent);
}

int32_t ReferenceSignificanceTracker::ContainCount(Symbol symbol) const {
  const auto it = contain_counts_.find(symbol);
  return it == contain_counts_.end() ? 0 : it->second;
}

int32_t ReferenceSignificanceTracker::MissCount(Symbol symbol) const {
  const auto it = contain_counts_.find(symbol);
  if (it == contain_counts_.end()) return 0;
  return windows_seen_ - it->second;
}

double ReferenceSignificanceTracker::TotalSignificance() const {
  double total = 0.0;
  if (options_.kind == SignificanceKind::kEwma) {
    for (const auto& [symbol, score] : ewma_scores_) {
      (void)symbol;
      total += score;
    }
    return total;
  }
  for (const auto& [symbol, count] : contain_counts_) {
    (void)symbol;
    if (options_.alpha == 1.0) {
      total += 1.0;
    } else {
      total += ClampedPow(options_.alpha, 2.0 * count - windows_seen_,
                          options_.max_abs_exponent);
    }
  }
  return total;
}

double ReferenceSignificanceTracker::PresentSignificance(
    const std::vector<Symbol>& symbols) const {
  double present = 0.0;
  const Symbol* previous = nullptr;
  for (const Symbol& symbol : symbols) {
    if (previous != nullptr && *previous == symbol) continue;
    present += SignificanceOf(symbol);
    previous = &symbol;
  }
  return present;
}

std::vector<Symbol> ReferenceSignificanceTracker::SeenSymbols() const {
  std::vector<Symbol> symbols;
  symbols.reserve(contain_counts_.size());
  for (const auto& [symbol, count] : contain_counts_) {
    (void)count;
    symbols.push_back(symbol);
  }
  std::sort(symbols.begin(), symbols.end());
  return symbols;
}

void ReferenceSignificanceTracker::AdvanceWindow(
    const std::vector<Symbol>& window_symbols) {
  if (options_.kind == SignificanceKind::kEwma) {
    // Decay every known symbol, then credit the present ones.
    for (auto& [symbol, score] : ewma_scores_) {
      (void)symbol;
      score *= options_.ewma_lambda;
    }
    const double credit = 1.0 - options_.ewma_lambda;
    const Symbol* previous_ewma = nullptr;
    for (const Symbol& symbol : window_symbols) {
      if (previous_ewma != nullptr && *previous_ewma == symbol) continue;
      ewma_scores_[symbol] += credit;
      previous_ewma = &symbol;
    }
  }
  const Symbol* previous = nullptr;
  for (const Symbol& symbol : window_symbols) {
    if (previous != nullptr && *previous == symbol) continue;
    ++contain_counts_[symbol];
    previous = &symbol;
  }
  ++windows_seen_;
}

}  // namespace core
}  // namespace churnlab
