#ifndef CHURNLAB_CORE_EXPLANATION_H_
#define CHURNLAB_CORE_EXPLANATION_H_

#include <cstddef>
#include <vector>

#include "core/stability.h"
#include "core/window.h"

namespace churnlab {
namespace core {

/// One product (symbol) that was significant but absent from a window.
struct MissingSymbol {
  Symbol symbol = kInvalidSymbol;
  /// S(p, k) at the explained window.
  double significance = 0.0;
  /// Share of the window's total significance this symbol accounts for —
  /// exactly the stability lost by its absence.
  double significance_share = 0.0;
  /// True when the symbol was present in window k-1 (a *new* loss, the kind
  /// Figure 2 annotates), false when it was already missing before.
  bool newly_missing = false;
};

/// Why window k has the stability it has.
struct WindowExplanation {
  int32_t window_index = 0;
  double stability = 1.0;
  /// stability(k-1) - stability(k); positive on drops. 0 for window 0.
  double drop_from_previous = 0.0;
  /// Missing significant symbols, most significant first, truncated to the
  /// engine's top_k. The paper's single-product explanation is the front
  /// element; the "easily extended to a set of products" variant is the
  /// whole vector.
  std::vector<MissingSymbol> missing;

  /// The argmax_{p not in u_k} S(p,k) of the paper, or kInvalidSymbol when
  /// nothing significant is missing.
  Symbol MostSignificantMissing() const {
    return missing.empty() ? kInvalidSymbol : missing.front().symbol;
  }
};

/// Options for the explanation engine.
struct ExplanationOptions {
  /// Maximum number of missing symbols reported per window.
  size_t top_k = 5;
  /// Symbols whose significance share is below this fraction of the window
  /// total are not reported (noise floor).
  double min_significance_share = 1e-6;
};

/// \brief Produces per-window attrition explanations (section 3.2).
///
/// For every window it lists the significant-but-absent symbols ranked by
/// S(p,k), which is the product-level account of each stability decrease:
/// the drop contributed by a missing symbol equals its significance share.
class ExplanationEngine {
 public:
  /// Takes an already-validated StabilityComputer (from
  /// StabilityComputer::Make), so there is no unchecked-options path into
  /// the engine.
  explicit ExplanationEngine(StabilityComputer computer,
                             ExplanationOptions options = {});

  /// Computes the stability series and an explanation per window.
  std::vector<WindowExplanation> Explain(const WindowedHistory& history) const;

  const ExplanationOptions& options() const { return options_; }

 private:
  StabilityComputer computer_;
  ExplanationOptions options_;
};

}  // namespace core
}  // namespace churnlab

#endif  // CHURNLAB_CORE_EXPLANATION_H_
