#include "core/stability_model.h"

#include <algorithm>
#include <sstream>

#include "common/macros.h"
#include "common/stopwatch.h"
#include "common/string_util.h"
#include "common/thread_pool.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace churnlab {
namespace core {

std::string CustomerReport::ToString() const {
  std::ostringstream out;
  out << "customer " << customer << "\n";
  out << "window  months   stability  drop     receipts  lost products\n";
  for (const CustomerWindowReport& window : windows) {
    out << "  " << window.window_index << "\t[" << window.begin_month << ","
        << window.end_month << ")\t" << FormatDouble(window.stability, 3)
        << "\t" << FormatDouble(window.drop_from_previous, 3) << "\t"
        << window.num_receipts << "\t";
    bool first = true;
    for (const NamedMissingProduct& missing : window.missing) {
      if (!missing.newly_missing) continue;
      if (!first) out << ", ";
      out << missing.name << " (share "
          << FormatDouble(missing.significance_share, 3) << ")";
      first = false;
    }
    out << "\n";
  }
  return out.str();
}

Result<StabilityModel> StabilityModel::Make(StabilityModelOptions options) {
  if (options.window_span_months <= 0) {
    return Status::InvalidArgument("window_span_months must be positive");
  }
  // Surface bad significance options eagerly; the computer built here is
  // reused by every scoring call.
  CHURNLAB_ASSIGN_OR_RETURN(StabilityComputer computer,
                            StabilityComputer::Make(options.significance));
  if (options.num_threads == 0) options.num_threads = 1;
  return StabilityModel(options, std::move(computer));
}

Result<Windower> StabilityModel::MakeWindower(
    const retail::Dataset& dataset) const {
  if (!dataset.store().finalized()) {
    return Status::InvalidArgument("dataset store is not finalized");
  }
  WindowerOptions window_options;
  window_options.window_span_days =
      options_.window_span_months * retail::kDaysPerMonth;
  window_options.origin_day = 0;
  window_options.num_windows = NumWindowsFor(dataset);
  return Windower::Make(window_options);
}

int32_t StabilityModel::NumWindowsFor(const retail::Dataset& dataset) const {
  if (options_.num_windows >= 0) return options_.num_windows;
  const retail::Day span_days =
      options_.window_span_months * retail::kDaysPerMonth;
  const retail::Day last_day = dataset.store().max_day();
  if (last_day < 0) return 0;
  return last_day / span_days + 1;
}

Result<ScoreMatrix> StabilityModel::ScoreDataset(
    const retail::Dataset& dataset) const {
  CHURNLAB_SPAN("core.score_dataset");
  CHURNLAB_ASSIGN_OR_RETURN(const Windower windower, MakeWindower(dataset));
  CHURNLAB_ASSIGN_OR_RETURN(
      const SymbolMapper mapper,
      SymbolMapper::Make(options_.granularity, &dataset.taxonomy()));

  const std::vector<retail::CustomerId>& customers =
      dataset.store().Customers();
  const int32_t num_windows = NumWindowsFor(dataset);
  ScoreMatrix matrix(customers, num_windows);

  static obs::Counter* const customers_scored =
      obs::MetricsRegistry::Global().GetCounter(
          "churnlab.core.customers_scored");
  static obs::Gauge* const windows_per_sec =
      obs::MetricsRegistry::Global().GetGauge(
          "churnlab.core.windows_per_sec");
  static obs::Histogram* const score_customer_us =
      obs::MetricsRegistry::Global().GetHistogram(
          "churnlab.core.score_customer_us",
          obs::HistogramOptions::ExponentialLatency());

  const StabilityComputer& computer = computer_;
  const auto score_one = [&](size_t row) {
    CHURNLAB_SPAN("core.score_customer");
    obs::ScopedLatency latency(score_customer_us);
    const auto history = windower.Build(
        dataset.store().History(customers[row]),
        [&](retail::ItemId item) { return mapper.Map(item); });
    const StabilitySeries series = computer.Compute(history);
    double* out = matrix.Row(row);
    for (size_t k = 0; k < series.points.size(); ++k) {
      out[k] = series.points[k].stability;
    }
  };

  Stopwatch stopwatch;
  ParallelFor(0, customers.size(), options_.num_threads, score_one);
  const double elapsed_s = stopwatch.ElapsedSeconds();
  customers_scored->Increment(customers.size());
  if (elapsed_s > 0.0) {
    windows_per_sec->Set(
        static_cast<double>(customers.size()) * num_windows / elapsed_s);
  }
  return matrix;
}

Result<StabilitySeries> StabilityModel::ScoreCustomer(
    const retail::Dataset& dataset, retail::CustomerId customer) const {
  CHURNLAB_SPAN("core.score_customer");
  CHURNLAB_ASSIGN_OR_RETURN(const Windower windower, MakeWindower(dataset));
  CHURNLAB_ASSIGN_OR_RETURN(
      const SymbolMapper mapper,
      SymbolMapper::Make(options_.granularity, &dataset.taxonomy()));
  const auto receipts = dataset.store().History(customer);
  if (receipts.empty()) {
    return Status::NotFound("customer " + std::to_string(customer) +
                            " has no receipts");
  }
  const auto history = windower.Build(
      receipts, [&](retail::ItemId item) { return mapper.Map(item); });
  return computer_.Compute(history);
}

Result<CustomerReport> StabilityModel::AnalyzeCustomer(
    const retail::Dataset& dataset, retail::CustomerId customer) const {
  CHURNLAB_ASSIGN_OR_RETURN(const Windower windower, MakeWindower(dataset));
  CHURNLAB_ASSIGN_OR_RETURN(
      const SymbolMapper mapper,
      SymbolMapper::Make(options_.granularity, &dataset.taxonomy()));
  const auto receipts = dataset.store().History(customer);
  if (receipts.empty()) {
    return Status::NotFound("customer " + std::to_string(customer) +
                            " has no receipts");
  }
  const auto history = windower.Build(
      receipts, [&](retail::ItemId item) { return mapper.Map(item); });

  const ExplanationEngine engine(computer_, options_.explanation);
  const std::vector<WindowExplanation> explanations = engine.Explain(history);

  CustomerReport report;
  report.customer = customer;
  report.windows.reserve(explanations.size());
  for (size_t k = 0; k < explanations.size(); ++k) {
    const WindowExplanation& explanation = explanations[k];
    const Window& window = history.windows[k];
    CustomerWindowReport window_report;
    window_report.window_index = explanation.window_index;
    window_report.begin_month = retail::DayToMonth(window.begin_day);
    window_report.end_month = retail::DayToMonth(window.end_day - 1) + 1;
    window_report.stability = explanation.stability;
    window_report.drop_from_previous = explanation.drop_from_previous;
    window_report.num_receipts = window.num_receipts;
    window_report.basket_union_size = window.symbols.size();
    for (const MissingSymbol& missing : explanation.missing) {
      NamedMissingProduct named;
      named.name = mapper.SymbolName(missing.symbol, dataset.items());
      named.significance = missing.significance;
      named.significance_share = missing.significance_share;
      named.newly_missing = missing.newly_missing;
      window_report.missing.push_back(std::move(named));
    }
    report.windows.push_back(std::move(window_report));
  }
  return report;
}

Result<SignificanceProfile> StabilityModel::ProfileCustomer(
    const retail::Dataset& dataset, retail::CustomerId customer,
    int32_t window) const {
  CHURNLAB_ASSIGN_OR_RETURN(const Windower windower, MakeWindower(dataset));
  CHURNLAB_ASSIGN_OR_RETURN(
      const SymbolMapper mapper,
      SymbolMapper::Make(options_.granularity, &dataset.taxonomy()));
  const auto receipts = dataset.store().History(customer);
  if (receipts.empty()) {
    return Status::NotFound("customer " + std::to_string(customer) +
                            " has no receipts");
  }
  const auto history = windower.Build(
      receipts, [&](retail::ItemId item) { return mapper.Map(item); });
  const int32_t num_windows = static_cast<int32_t>(history.num_windows());
  if (window < 0) window = num_windows - 1;
  if (window < 0 || window >= num_windows) {
    return Status::OutOfRange("window " + std::to_string(window) +
                              " outside [0, " + std::to_string(num_windows) +
                              ")");
  }

  // Replay the tracker up to (not including) the profiled window.
  SignificanceTracker tracker(options_.significance);
  for (int32_t k = 0; k < window; ++k) {
    tracker.AdvanceWindow(history.windows[static_cast<size_t>(k)].symbols);
  }
  const Window& profiled = history.windows[static_cast<size_t>(window)];

  SignificanceProfile profile;
  profile.customer = customer;
  profile.window_index = window;
  profile.total_significance = tracker.TotalSignificance();
  for (const Symbol symbol : tracker.SeenSymbols()) {
    SignificantProduct product;
    product.symbol = symbol;
    product.name = mapper.SymbolName(symbol, dataset.items());
    product.contain_count = tracker.ContainCount(symbol);
    product.miss_count = tracker.MissCount(symbol);
    product.significance = tracker.SignificanceOf(symbol);
    product.significance_share =
        profile.total_significance > 0.0
            ? product.significance / profile.total_significance
            : 0.0;
    product.present_in_window = profiled.Contains(symbol);
    profile.products.push_back(std::move(product));
  }
  std::stable_sort(profile.products.begin(), profile.products.end(),
                   [](const SignificantProduct& a,
                      const SignificantProduct& b) {
                     return a.significance > b.significance;
                   });
  return profile;
}

}  // namespace core
}  // namespace churnlab
