#ifndef CHURNLAB_CORE_WINDOW_H_
#define CHURNLAB_CORE_WINDOW_H_

#include <algorithm>
#include <cstdint>
#include <span>
#include <vector>

#include "common/result.h"
#include "obs/trace.h"
#include "retail/types.h"

namespace churnlab {
namespace core {

/// Symbols are what the stability model observes: raw product ids at
/// product granularity, segment ids at segment granularity (see
/// SymbolMapper). They share the integer domain of retail ids.
using Symbol = uint32_t;

/// One window of the windowed database D^w_i: the half-open day interval
/// [begin_day, end_day) and the set `u_k` of symbols bought inside it.
struct Window {
  int32_t index = 0;
  retail::Day begin_day = 0;
  retail::Day end_day = 0;
  /// Union of symbols bought in the window, sorted and deduplicated.
  std::vector<Symbol> symbols;
  /// Number of receipts that fell into the window (0 = no visit).
  size_t num_receipts = 0;
  /// Total monetary spend inside the window.
  double spend = 0.0;

  /// Binary-search membership test on the sorted symbol set.
  bool Contains(Symbol symbol) const;
};

/// A customer's full windowed history D^w_i: consecutive, non-overlapping,
/// equal-span windows anchored at a common origin. Windows with no receipts
/// are materialised with an empty symbol set — an empty `u_k` is meaningful
/// (it is maximal instability), not missing data.
struct WindowedHistory {
  std::vector<Window> windows;

  size_t num_windows() const { return windows.size(); }
};

/// Options controlling how purchase histories are windowed.
struct WindowerOptions {
  /// Width of each window in days. The paper's experiments use 2 months
  /// (see retail::kDaysPerMonth).
  retail::Day window_span_days = 2 * retail::kDaysPerMonth;
  /// Day at which window 0 begins. Using a dataset-global origin keeps
  /// window indices comparable across customers.
  retail::Day origin_day = 0;
  /// Number of windows to materialise. Negative = derive from the last
  /// receipt (enough windows to cover it).
  int32_t num_windows = -1;
};

/// \brief Splits a chronological receipt span into the windowed database of
/// section 2 of the paper.
///
/// The symbol for each purchased item is produced by a caller-supplied
/// mapper (identity for product granularity, taxonomy lookup for segment
/// granularity); see SymbolMapper.
class Windower {
 public:
  explicit Windower(WindowerOptions options);

  /// Validates the options (span > 0, origin >= 0).
  static Result<Windower> Make(WindowerOptions options);

  /// Builds the windowed history of one customer. `receipts` must be
  /// chronologically sorted (TransactionStore::History guarantees this).
  /// `map_symbol` converts an ItemId to the model's symbol space; it may
  /// return kInvalidSymbol to drop an item.
  template <typename SymbolFn>
  WindowedHistory Build(std::span<const retail::Receipt> receipts,
                        SymbolFn&& map_symbol) const;

  const WindowerOptions& options() const { return options_; }

  /// Number of windows needed to cover day `last_day` (>= 1 when
  /// last_day >= origin).
  int32_t WindowsToCover(retail::Day last_day) const;

  /// Index of the window containing `day`, or -1 if before the origin.
  int32_t WindowIndexOf(retail::Day day) const;

 private:
  WindowerOptions options_;
};

inline constexpr Symbol kInvalidSymbol = retail::kInvalidItem;

/// Bumps the churnlab.core.{windows_built,receipts_windowed} counters.
/// Out-of-line so the templated Build() does not pull metrics headers in.
void RecordWindowingStats(size_t num_windows, size_t num_receipts);

// ---------------------------------------------------------------------------
// Template implementation
// ---------------------------------------------------------------------------

template <typename SymbolFn>
WindowedHistory Windower::Build(std::span<const retail::Receipt> receipts,
                                SymbolFn&& map_symbol) const {
  CHURNLAB_SPAN("core.windowing");
  WindowedHistory history;
  int32_t num_windows = options_.num_windows;
  if (num_windows < 0) {
    num_windows = receipts.empty()
                      ? 0
                      : WindowsToCover(receipts.back().day);
  }
  history.windows.resize(static_cast<size_t>(std::max(0, num_windows)));
  for (int32_t k = 0; k < num_windows; ++k) {
    Window& window = history.windows[static_cast<size_t>(k)];
    window.index = k;
    window.begin_day = options_.origin_day + k * options_.window_span_days;
    window.end_day = window.begin_day + options_.window_span_days;
  }
  for (const retail::Receipt& receipt : receipts) {
    const int32_t k = WindowIndexOf(receipt.day);
    if (k < 0 || k >= num_windows) continue;
    Window& window = history.windows[static_cast<size_t>(k)];
    ++window.num_receipts;
    window.spend += receipt.spend;
    for (const retail::ItemId item : receipt.items) {
      const Symbol symbol = map_symbol(item);
      if (symbol != kInvalidSymbol) window.symbols.push_back(symbol);
    }
  }
  for (Window& window : history.windows) {
    std::sort(window.symbols.begin(), window.symbols.end());
    window.symbols.erase(
        std::unique(window.symbols.begin(), window.symbols.end()),
        window.symbols.end());
  }
  RecordWindowingStats(history.windows.size(), receipts.size());
  return history;
}

}  // namespace core
}  // namespace churnlab

#endif  // CHURNLAB_CORE_WINDOW_H_
