#ifndef CHURNLAB_CORE_STABILITY_H_
#define CHURNLAB_CORE_STABILITY_H_

#include <vector>

#include "common/result.h"
#include "core/significance.h"
#include "core/window.h"

namespace churnlab {
namespace core {

/// Stability of one window of one customer.
struct StabilityPoint {
  int32_t window_index = 0;
  /// Stability_i^k in [0, 1].
  double stability = 1.0;
  /// False when the significance table was empty (window 0, or no purchase
  /// ever observed before this window). The paper's formula is 0/0 there;
  /// we define stability = 1 — "no evidence of change" — and flag it so
  /// evaluations can skip burn-in windows.
  bool has_history = false;
  /// Numerator sum_{p in u_k} S(p,k) and denominator sum_{p in I} S(p,k),
  /// kept for diagnostics and tests.
  double present_significance = 0.0;
  double total_significance = 0.0;
};

/// A customer's stability series plus per-window context.
struct StabilitySeries {
  std::vector<StabilityPoint> points;

  size_t size() const { return points.size(); }
  double StabilityAt(size_t window) const {
    return points.at(window).stability;
  }
};

/// \brief Computes the per-window stability series of section 2:
///
///   Stability_i^k = sum_{p in u_k} S(p,k) / sum_{p in I} S(p,k).
///
/// Stability is 1 when every significant product reappears in window k and
/// decreases by the significance share of each missing product.
class StabilityComputer {
 public:
  /// Validates the significance options (alpha > 0, clamp >= 0, lambda in
  /// (0, 1) for kEwma). The only way to construct one, per the library-wide
  /// `static Result<T> Make(Options)` convention (docs/API.md): invalid
  /// options surface as a Status instead of propagating into NaN
  /// stabilities.
  static Result<StabilityComputer> Make(SignificanceOptions options);

  /// Computes the stability series of `history`. The companion overload
  /// also exposes the tracker state at each window for explanation.
  StabilitySeries Compute(const WindowedHistory& history) const;

  /// Like Compute, but invokes `on_window(k, tracker, window)` for every
  /// window *before* the tracker advances past it, i.e. with S(p,k) as seen
  /// by window k. Used by the ExplanationEngine.
  template <typename WindowFn>
  StabilitySeries ComputeWithCallback(const WindowedHistory& history,
                                      WindowFn&& on_window) const;

  const SignificanceOptions& options() const { return options_; }

 private:
  explicit StabilityComputer(SignificanceOptions options)
      : options_(options) {}

  SignificanceOptions options_;
};

// ---------------------------------------------------------------------------
// Template implementation
// ---------------------------------------------------------------------------

template <typename WindowFn>
StabilitySeries StabilityComputer::ComputeWithCallback(
    const WindowedHistory& history, WindowFn&& on_window) const {
  StabilitySeries series;
  series.points.reserve(history.windows.size());
  SignificanceTracker tracker(options_);
  for (const Window& window : history.windows) {
    StabilityPoint point;
    point.window_index = window.index;
    point.total_significance = tracker.TotalSignificance();
    point.present_significance = tracker.PresentSignificance(window.symbols);
    if (point.total_significance > 0.0) {
      point.has_history = true;
      point.stability =
          point.present_significance / point.total_significance;
    } else {
      point.has_history = false;
      point.stability = 1.0;
    }
    on_window(window.index, tracker, window);
    series.points.push_back(point);
    tracker.AdvanceWindow(window.symbols);
  }
  return series;
}

}  // namespace core
}  // namespace churnlab

#endif  // CHURNLAB_CORE_STABILITY_H_
