#include "core/pow_cache.h"

#include <cmath>
#include <cstdlib>

#include "common/math_util.h"

namespace churnlab {
namespace core {

namespace {
/// Exponents whose |value| exceeds this are served by a direct ClampedPow
/// call instead of growing the memo tables without bound. Far beyond the
/// default clamp of 500, so the tables cover every exact regime.
constexpr int64_t kMaxMemoisedExponent = 4096;
}  // namespace

PowCache::PowCache(double alpha, double max_abs_exponent, double ewma_lambda)
    : alpha_(alpha),
      max_abs_exponent_(max_abs_exponent),
      ewma_lambda_(ewma_lambda) {}

double PowCache::PowAlpha(int64_t exponent) const {
  if (std::llabs(exponent) > kMaxMemoisedExponent) {
    return ClampedPow(alpha_, static_cast<double>(exponent),
                      max_abs_exponent_);
  }
  std::vector<double>& table =
      exponent >= 0 ? alpha_pow_pos_ : alpha_pow_neg_;
  const size_t index = static_cast<size_t>(std::llabs(exponent));
  const int64_t sign = exponent >= 0 ? 1 : -1;
  while (table.size() <= index) {
    table.push_back(ClampedPow(alpha_,
                               static_cast<double>(sign) *
                                   static_cast<double>(table.size()),
                               max_abs_exponent_));
  }
  return table[index];
}

double PowCache::PowLambda(int32_t exponent) const {
  if (lambda_pow_.empty()) lambda_pow_.push_back(1.0);
  while (lambda_pow_.size() <= static_cast<size_t>(exponent)) {
    lambda_pow_.push_back(lambda_pow_.back() * ewma_lambda_);
  }
  return lambda_pow_[static_cast<size_t>(exponent)];
}

size_t PowCache::MemoryUsage() const {
  return (alpha_pow_pos_.capacity() + alpha_pow_neg_.capacity() +
          lambda_pow_.capacity()) *
         sizeof(double);
}

}  // namespace core
}  // namespace churnlab
