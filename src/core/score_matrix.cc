#include "core/score_matrix.h"

#include <cassert>
#include <cstdio>
#include <string>
#include <unordered_set>

#include "common/csv.h"
#include "common/macros.h"
#include "common/string_util.h"

namespace churnlab {
namespace core {

ScoreMatrix::ScoreMatrix(std::vector<retail::CustomerId> customers,
                         int32_t num_windows)
    : customers_(std::move(customers)),
      num_windows_(num_windows) {
  assert(num_windows >= 0);
  row_index_.reserve(customers_.size());
  for (size_t i = 0; i < customers_.size(); ++i) {
    row_index_.emplace(customers_[i], i);
  }
  scores_.assign(customers_.size() * static_cast<size_t>(num_windows_), 0.0);
}

double ScoreMatrix::At(size_t row, int32_t window) const {
  assert(row < customers_.size());
  assert(window >= 0 && window < num_windows_);
  return scores_[row * static_cast<size_t>(num_windows_) +
                 static_cast<size_t>(window)];
}

void ScoreMatrix::Set(size_t row, int32_t window, double score) {
  assert(row < customers_.size());
  assert(window >= 0 && window < num_windows_);
  scores_[row * static_cast<size_t>(num_windows_) +
          static_cast<size_t>(window)] = score;
}

double* ScoreMatrix::Row(size_t row) {
  assert(row < customers_.size());
  return scores_.data() + row * static_cast<size_t>(num_windows_);
}

const double* ScoreMatrix::Row(size_t row) const {
  assert(row < customers_.size());
  return scores_.data() + row * static_cast<size_t>(num_windows_);
}

Result<size_t> ScoreMatrix::RowOf(retail::CustomerId customer) const {
  const auto it = row_index_.find(customer);
  if (it == row_index_.end()) {
    return Status::NotFound("customer " + std::to_string(customer) +
                            " not in score matrix");
  }
  return it->second;
}

Result<double> ScoreMatrix::ScoreOf(retail::CustomerId customer,
                                    int32_t window) const {
  CHURNLAB_ASSIGN_OR_RETURN(const size_t row, RowOf(customer));
  if (window < 0 || window >= num_windows_) {
    return Status::OutOfRange("window " + std::to_string(window) +
                              " outside [0, " + std::to_string(num_windows_) +
                              ")");
  }
  return At(row, window);
}

Status ScoreMatrix::SaveCsv(const std::string& path) const {
  CHURNLAB_ASSIGN_OR_RETURN(CsvWriter writer, CsvWriter::Open(path));
  std::vector<std::string> header = {"customer"};
  for (int32_t window = 0; window < num_windows_; ++window) {
    header.push_back("w" + std::to_string(window));
  }
  CHURNLAB_RETURN_NOT_OK(writer.WriteRow(header));
  std::vector<std::string> cells;
  for (size_t row = 0; row < customers_.size(); ++row) {
    cells.clear();
    cells.push_back(std::to_string(customers_[row]));
    for (int32_t window = 0; window < num_windows_; ++window) {
      char buffer[32];
      std::snprintf(buffer, sizeof(buffer), "%.17g", At(row, window));
      cells.emplace_back(buffer);
    }
    CHURNLAB_RETURN_NOT_OK(writer.WriteRow(cells));
  }
  return writer.Close();
}

Result<ScoreMatrix> ScoreMatrix::LoadCsv(const std::string& path) {
  CHURNLAB_ASSIGN_OR_RETURN(CsvReader reader, CsvReader::Open(path));
  std::vector<std::string> row;
  if (!reader.ReadRow(&row) || row.empty()) {
    return Status::InvalidArgument("score CSV has no header");
  }
  const int32_t num_windows = static_cast<int32_t>(row.size()) - 1;

  std::vector<retail::CustomerId> customers;
  std::unordered_set<retail::CustomerId> seen_customers;
  std::vector<std::vector<double>> rows;
  while (reader.ReadRow(&row)) {
    if (row.size() != static_cast<size_t>(num_windows) + 1) {
      return Status::InvalidArgument(
          "score CSV row " + std::to_string(reader.row_number()) +
          " has inconsistent width");
    }
    CHURNLAB_ASSIGN_OR_RETURN(const uint64_t customer, ParseUint64(row[0]));
    // A duplicate id would silently shadow its later rows: row_index_ keeps
    // the first mapping, so ScoreOf would forever read the stale first row.
    if (!seen_customers.insert(static_cast<retail::CustomerId>(customer))
             .second) {
      return Status::InvalidArgument(
          "score CSV row " + std::to_string(reader.row_number()) +
          " repeats customer " + std::to_string(customer));
    }
    customers.push_back(static_cast<retail::CustomerId>(customer));
    std::vector<double> values;
    values.reserve(static_cast<size_t>(num_windows));
    for (int32_t window = 0; window < num_windows; ++window) {
      CHURNLAB_ASSIGN_OR_RETURN(const double value,
                                ParseDouble(row[window + 1]));
      values.push_back(value);
    }
    rows.push_back(std::move(values));
  }
  CHURNLAB_RETURN_NOT_OK(reader.status());

  ScoreMatrix matrix(customers, num_windows);
  for (size_t r = 0; r < rows.size(); ++r) {
    for (int32_t window = 0; window < num_windows; ++window) {
      matrix.Set(r, window, rows[r][window]);
    }
  }
  return matrix;
}

std::vector<double> ScoreMatrix::WindowColumn(int32_t window) const {
  assert(window >= 0 && window < num_windows_);
  std::vector<double> column;
  column.reserve(customers_.size());
  for (size_t row = 0; row < customers_.size(); ++row) {
    column.push_back(At(row, window));
  }
  return column;
}

}  // namespace core
}  // namespace churnlab
