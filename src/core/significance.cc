#include "core/significance.h"

#include <cmath>
#include <cstdlib>

#include "common/macros.h"
#include "common/math_util.h"

namespace churnlab {
namespace core {

namespace {
/// Exponents whose |value| exceeds this are served by a direct ClampedPow
/// call instead of growing the memo tables without bound. Far beyond the
/// default clamp of 500, so the tables cover every exact regime.
constexpr int64_t kMaxMemoisedExponent = 4096;
}  // namespace

SignificanceTracker::SignificanceTracker(SignificanceOptions options)
    : options_(options) {}

Result<SignificanceTracker> SignificanceTracker::Make(
    SignificanceOptions options) {
  if (!(options.alpha > 0.0)) {
    return Status::InvalidArgument("alpha must be > 0, got " +
                                   std::to_string(options.alpha));
  }
  if (options.max_abs_exponent < 0.0) {
    return Status::InvalidArgument("max_abs_exponent must be >= 0");
  }
  if (options.kind == SignificanceKind::kEwma &&
      (options.ewma_lambda <= 0.0 || options.ewma_lambda >= 1.0)) {
    return Status::InvalidArgument("ewma_lambda must be in (0, 1)");
  }
  return SignificanceTracker(options);
}

double SignificanceTracker::PowAlpha(int64_t exponent) const {
  if (std::llabs(exponent) > kMaxMemoisedExponent) {
    return ClampedPow(options_.alpha, static_cast<double>(exponent),
                      options_.max_abs_exponent);
  }
  std::vector<double>& table =
      exponent >= 0 ? alpha_pow_pos_ : alpha_pow_neg_;
  const size_t index = static_cast<size_t>(std::llabs(exponent));
  const int64_t sign = exponent >= 0 ? 1 : -1;
  while (table.size() <= index) {
    table.push_back(ClampedPow(options_.alpha,
                               static_cast<double>(sign) *
                                   static_cast<double>(table.size()),
                               options_.max_abs_exponent));
  }
  return table[index];
}

double SignificanceTracker::PowLambda(int32_t exponent) const {
  if (lambda_pow_.empty()) lambda_pow_.push_back(1.0);
  while (lambda_pow_.size() <= static_cast<size_t>(exponent)) {
    lambda_pow_.push_back(lambda_pow_.back() * options_.ewma_lambda);
  }
  return lambda_pow_[static_cast<size_t>(exponent)];
}

double SignificanceTracker::SignificanceOf(Symbol symbol) const {
  if (options_.kind == SignificanceKind::kEwma) {
    if (static_cast<size_t>(symbol) >= ewma_values_.size()) return 0.0;
    const double value = ewma_values_[symbol];
    if (value == 0.0) return 0.0;
    return value * PowLambda(windows_seen_ - ewma_stamps_[symbol]);
  }
  if (static_cast<size_t>(symbol) >= contain_counts_.size()) return 0.0;
  const int32_t count = contain_counts_[symbol];
  if (count == 0) return 0.0;
  if (options_.alpha == 1.0) return 1.0;
  return PowAlpha(2 * static_cast<int64_t>(count) - windows_seen_);
}

int32_t SignificanceTracker::ContainCount(Symbol symbol) const {
  if (static_cast<size_t>(symbol) >= contain_counts_.size()) return 0;
  return contain_counts_[symbol];
}

int32_t SignificanceTracker::MissCount(Symbol symbol) const {
  const int32_t count = ContainCount(symbol);
  if (count == 0) return 0;
  return windows_seen_ - count;
}

double SignificanceTracker::TotalSignificance() const {
  if (options_.kind == SignificanceKind::kEwma) return ewma_total_;
  if (num_seen_ == 0) return 0.0;
  if (options_.alpha == 1.0) return static_cast<double>(num_seen_);
  if (IncrementalTotalExact()) return incremental_total_;
  return HistogramTotal();
}

double SignificanceTracker::HistogramTotal() const {
  double total = 0.0;
  for (size_t count = 1; count < contain_histogram_.size(); ++count) {
    const uint32_t symbols = contain_histogram_[count];
    if (symbols == 0) continue;
    total += static_cast<double>(symbols) *
             PowAlpha(2 * static_cast<int64_t>(count) - windows_seen_);
  }
  return total;
}

double SignificanceTracker::PresentSignificance(
    const std::vector<Symbol>& symbols) const {
  double present = 0.0;
  const Symbol* previous = nullptr;  // tolerate duplicate neighbours
  for (const Symbol& symbol : symbols) {
    if (previous != nullptr && *previous == symbol) continue;
    present += SignificanceOf(symbol);
    previous = &symbol;
  }
  return present;
}

std::vector<Symbol> SignificanceTracker::SeenSymbols() const {
  std::vector<Symbol> symbols;
  symbols.reserve(num_seen_);
  // Dense scan in index order: already ascending, no sort needed.
  for (size_t symbol = 0; symbol < contain_counts_.size(); ++symbol) {
    if (contain_counts_[symbol] > 0) {
      symbols.push_back(static_cast<Symbol>(symbol));
    }
  }
  return symbols;
}

void SignificanceTracker::AdvanceEwma(
    const std::vector<Symbol>& window_symbols) {
  const double lambda = options_.ewma_lambda;
  const double credit = 1.0 - lambda;
  const int32_t next_window = windows_seen_ + 1;
  size_t present_count = 0;
  const Symbol* previous = nullptr;
  for (const Symbol& symbol : window_symbols) {
    if (previous != nullptr && *previous == symbol) continue;
    previous = &symbol;
    ++present_count;
    if (static_cast<size_t>(symbol) >= ewma_values_.size()) {
      ewma_values_.resize(static_cast<size_t>(symbol) + 1, 0.0);
      ewma_stamps_.resize(static_cast<size_t>(symbol) + 1, 0);
    }
    // Settle the lazy decay up to the post-advance window, then credit.
    ewma_values_[symbol] =
        ewma_values_[symbol] * PowLambda(next_window - ewma_stamps_[symbol]) +
        credit;
    ewma_stamps_[symbol] = next_window;
  }
  ewma_total_ = ewma_total_ * lambda + credit * present_count;
}

void SignificanceTracker::SaveState(BinaryWriter* writer) const {
  writer->WriteVarint(static_cast<uint64_t>(windows_seen_));
  // Sparse contain counts as (symbol delta, count) pairs, ascending symbol.
  writer->WriteVarint(num_seen_);
  Symbol previous = 0;
  for (size_t symbol = 0; symbol < contain_counts_.size(); ++symbol) {
    const int32_t count = contain_counts_[symbol];
    if (count == 0) continue;
    writer->WriteVarint(static_cast<Symbol>(symbol) - previous);
    writer->WriteVarint(static_cast<uint64_t>(count));
    previous = static_cast<Symbol>(symbol);
  }
  writer->WriteDouble(incremental_total_);
  // Sparse EWMA scores (value, stamp) keyed the same way. Empty for the
  // alpha-power kind.
  size_t num_ewma = 0;
  for (const double value : ewma_values_) {
    if (value != 0.0) ++num_ewma;
  }
  writer->WriteVarint(num_ewma);
  previous = 0;
  for (size_t symbol = 0; symbol < ewma_values_.size(); ++symbol) {
    if (ewma_values_[symbol] == 0.0) continue;
    writer->WriteVarint(static_cast<Symbol>(symbol) - previous);
    writer->WriteDouble(ewma_values_[symbol]);
    writer->WriteVarint(static_cast<uint64_t>(ewma_stamps_[symbol]));
    previous = static_cast<Symbol>(symbol);
  }
  writer->WriteDouble(ewma_total_);
}

Status SignificanceTracker::LoadState(BinaryReader* reader) {
  // Caps on untrusted state values. Symbols index dense vectors, so a
  // corrupted delta chain must not be allowed to size a multi-gigabyte
  // resize: 2^24 symbols is far beyond any retail taxonomy. Likewise the
  // contain histogram is indexed by per-symbol window counts, bounded by
  // windows_seen: 2^20 windows is centuries of daily windows.
  constexpr uint64_t kMaxSymbolSpace = uint64_t{1} << 24;
  constexpr uint64_t kMaxWindowsSeen = uint64_t{1} << 20;
  CHURNLAB_ASSIGN_OR_RETURN(const uint64_t windows_seen, reader->ReadVarint());
  if (windows_seen > kMaxWindowsSeen) {
    return Status::InvalidArgument(
        "significance state windows_seen is implausibly large");
  }
  windows_seen_ = static_cast<int32_t>(windows_seen);

  CHURNLAB_ASSIGN_OR_RETURN(const uint64_t num_seen, reader->ReadVarint());
  contain_counts_.clear();
  contain_histogram_.clear();
  num_seen_ = 0;
  uint64_t symbol = 0;
  for (uint64_t i = 0; i < num_seen; ++i) {
    CHURNLAB_ASSIGN_OR_RETURN(const uint64_t delta, reader->ReadVarint());
    // The first pair carries the absolute symbol; later pairs are deltas
    // from the previous one (strictly positive by construction).
    symbol += delta;
    CHURNLAB_ASSIGN_OR_RETURN(const uint64_t count, reader->ReadVarint());
    if (symbol >= static_cast<uint64_t>(kInvalidSymbol) || count == 0 ||
        count > windows_seen) {
      return Status::OutOfRange("corrupt significance state entry");
    }
    if (symbol >= kMaxSymbolSpace) {
      return Status::InvalidArgument(
          "significance state symbol is implausibly large");
    }
    if (symbol >= contain_counts_.size()) {
      contain_counts_.resize(symbol + 1, 0);
    }
    contain_counts_[symbol] = static_cast<int32_t>(count);
    ++num_seen_;
    if (count >= contain_histogram_.size()) {
      contain_histogram_.resize(count + 1, 0);
    }
    ++contain_histogram_[count];
  }
  CHURNLAB_ASSIGN_OR_RETURN(incremental_total_, reader->ReadDouble());

  CHURNLAB_ASSIGN_OR_RETURN(const uint64_t num_ewma, reader->ReadVarint());
  ewma_values_.clear();
  ewma_stamps_.clear();
  symbol = 0;
  for (uint64_t i = 0; i < num_ewma; ++i) {
    CHURNLAB_ASSIGN_OR_RETURN(const uint64_t delta, reader->ReadVarint());
    symbol += delta;
    CHURNLAB_ASSIGN_OR_RETURN(const double value, reader->ReadDouble());
    CHURNLAB_ASSIGN_OR_RETURN(const uint64_t stamp, reader->ReadVarint());
    if (symbol >= static_cast<uint64_t>(kInvalidSymbol) ||
        stamp > windows_seen) {
      return Status::OutOfRange("corrupt EWMA state entry");
    }
    if (symbol >= kMaxSymbolSpace) {
      return Status::InvalidArgument(
          "EWMA state symbol is implausibly large");
    }
    if (symbol >= ewma_values_.size()) {
      ewma_values_.resize(symbol + 1, 0.0);
      ewma_stamps_.resize(symbol + 1, 0);
    }
    ewma_values_[symbol] = value;
    ewma_stamps_[symbol] = static_cast<int32_t>(stamp);
  }
  CHURNLAB_ASSIGN_OR_RETURN(ewma_total_, reader->ReadDouble());
  return Status::OK();
}

void SignificanceTracker::AdvanceWindow(
    const std::vector<Symbol>& window_symbols) {
  if (options_.kind == SignificanceKind::kEwma) {
    AdvanceEwma(window_symbols);
  }
  // The incremental total is only maintained while it stays exact (and only
  // needed for the alpha-power kind with alpha != 1).
  const bool maintain_total =
      options_.kind == SignificanceKind::kAlphaPower &&
      options_.alpha != 1.0 &&
      static_cast<double>(windows_seen_) + 1.0 <= options_.max_abs_exponent;
  double present = 0.0;
  size_t new_symbols = 0;
  // Input is sorted (Windower invariant); skip duplicate neighbours so a
  // malformed caller cannot make c(k) exceed the window count.
  const Symbol* previous = nullptr;
  for (const Symbol& symbol : window_symbols) {
    if (previous != nullptr && *previous == symbol) continue;
    previous = &symbol;
    if (static_cast<size_t>(symbol) >= contain_counts_.size()) {
      contain_counts_.resize(static_cast<size_t>(symbol) + 1, 0);
    }
    int32_t& count = contain_counts_[symbol];
    if (count == 0) {
      ++new_symbols;
      ++num_seen_;
    } else {
      if (maintain_total) {
        present += PowAlpha(2 * static_cast<int64_t>(count) - windows_seen_);
      }
      --contain_histogram_[static_cast<size_t>(count)];
    }
    ++count;
    if (static_cast<size_t>(count) >= contain_histogram_.size()) {
      contain_histogram_.resize(static_cast<size_t>(count) + 1, 0);
    }
    ++contain_histogram_[static_cast<size_t>(count)];
  }
  if (maintain_total) {
    const double alpha = options_.alpha;
    // T_{k+1} = (T_k + (alpha^2 - 1) * P_k) / alpha + n_new * alpha^(1-k).
    incremental_total_ =
        (incremental_total_ + (alpha * alpha - 1.0) * present) / alpha +
        static_cast<double>(new_symbols) * PowAlpha(1 - windows_seen_);
  }
  ++windows_seen_;
}

}  // namespace core
}  // namespace churnlab
