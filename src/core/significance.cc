#include "core/significance.h"

#include <string>

#include "core/state_kernel.h"

namespace churnlab {
namespace core {

SignificanceTracker::SignificanceTracker(SignificanceOptions options)
    : options_(options),
      pows_(options.alpha, options.max_abs_exponent, options.ewma_lambda) {}

Result<SignificanceTracker> SignificanceTracker::Make(
    SignificanceOptions options) {
  if (!(options.alpha > 0.0)) {
    return Status::InvalidArgument("alpha must be > 0, got " +
                                   std::to_string(options.alpha));
  }
  if (options.max_abs_exponent < 0.0) {
    return Status::InvalidArgument("max_abs_exponent must be >= 0");
  }
  if (options.kind == SignificanceKind::kEwma &&
      (options.ewma_lambda <= 0.0 || options.ewma_lambda >= 1.0)) {
    return Status::InvalidArgument("ewma_lambda must be in (0, 1)");
  }
  return SignificanceTracker(options);
}

double SignificanceTracker::SignificanceOf(Symbol symbol) const {
  return kernel::SignificanceOf(MutableState(), options_, pows_, symbol);
}

int32_t SignificanceTracker::ContainCount(Symbol symbol) const {
  return kernel::ContainCount(MutableState(), symbol);
}

int32_t SignificanceTracker::MissCount(Symbol symbol) const {
  return kernel::MissCount(MutableState(), symbol);
}

double SignificanceTracker::TotalSignificance() const {
  return kernel::TotalSignificance(MutableState(), options_, pows_);
}

double SignificanceTracker::PresentSignificance(
    const std::vector<Symbol>& symbols) const {
  return kernel::PresentSignificance(MutableState(), options_, pows_,
                                     std::span<const Symbol>(symbols));
}

std::vector<Symbol> SignificanceTracker::SeenSymbols() const {
  std::vector<Symbol> symbols;
  symbols.reserve(state_.num_seen);
  // Dense scan in index order: already ascending, no sort needed.
  for (size_t symbol = 0; symbol < state_.contain_counts.size(); ++symbol) {
    if (state_.contain_counts[symbol] > 0) {
      symbols.push_back(static_cast<Symbol>(symbol));
    }
  }
  return symbols;
}

void SignificanceTracker::AdvanceWindow(
    const std::vector<Symbol>& window_symbols) {
  kernel::AdvanceWindow(state_, options_, pows_,
                        std::span<const Symbol>(window_symbols));
}

size_t SignificanceTracker::MemoryUsage() const {
  return state_.contain_counts.capacity() * sizeof(int32_t) +
         state_.contain_histogram.capacity() * sizeof(uint32_t) +
         state_.ewma_values.capacity() * sizeof(double) +
         state_.ewma_stamps.capacity() * sizeof(int32_t) +
         pows_.MemoryUsage();
}

void SignificanceTracker::SaveState(BinaryWriter* writer) const {
  kernel::TrackerSaveState(MutableState(), writer);
}

Status SignificanceTracker::LoadState(BinaryReader* reader) {
  return kernel::TrackerLoadState(state_, reader);
}

}  // namespace core
}  // namespace churnlab
