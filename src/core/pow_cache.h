#ifndef CHURNLAB_CORE_POW_CACHE_H_
#define CHURNLAB_CORE_POW_CACHE_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace churnlab {
namespace core {

/// \brief Memoised clamped powers of alpha and lambda.
///
/// Extracted from SignificanceTracker so the serving layer's compact
/// storage can share one cache per shard instead of carrying three memo
/// tables per customer. Every entry is computed with ClampedPow (alpha) or
/// the eager product chain (lambda), so values are bit-identical to the
/// reference scan implementation's regardless of which customer first
/// faulted an entry in.
///
/// Not thread-safe — the const accessors lazily extend the tables. Use one
/// cache per tracker or per shard-behind-a-mutex.
class PowCache {
 public:
  PowCache(double alpha, double max_abs_exponent, double ewma_lambda);

  /// alpha^exponent with the max_abs_exponent clamp, memoised per integer
  /// exponent; exponents beyond the memo horizon are served by a direct
  /// ClampedPow call instead of growing the tables without bound.
  double PowAlpha(int64_t exponent) const;

  /// lambda^exponent (exponent >= 0), memoised by repeated multiplication —
  /// the same product chain the eager per-window decay would perform.
  double PowLambda(int32_t exponent) const;

  /// Heap bytes held by the memo tables (excluding sizeof(*this)).
  size_t MemoryUsage() const;

 private:
  double alpha_;
  double max_abs_exponent_;
  double ewma_lambda_;
  /// alpha_pow_pos_[i] = alpha^i, alpha_pow_neg_[i] = alpha^-i,
  /// lambda_pow_[i] = lambda^i. Lazily extended by const accessors (hence
  /// mutable; see thread-safety note above).
  mutable std::vector<double> alpha_pow_pos_;
  mutable std::vector<double> alpha_pow_neg_;
  mutable std::vector<double> lambda_pow_;
};

}  // namespace core
}  // namespace churnlab

#endif  // CHURNLAB_CORE_POW_CACHE_H_
