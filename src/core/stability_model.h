#ifndef CHURNLAB_CORE_STABILITY_MODEL_H_
#define CHURNLAB_CORE_STABILITY_MODEL_H_

#include <string>
#include <vector>
#include <utility>

#include "common/result.h"
#include "core/explanation.h"
#include "core/score_matrix.h"
#include "core/significance.h"
#include "core/stability.h"
#include "core/symbol_mapper.h"
#include "core/window.h"
#include "retail/dataset.h"
#include "retail/types.h"

namespace churnlab {
namespace core {

/// Configuration of the end-to-end stability model.
struct StabilityModelOptions {
  /// alpha and the exponent clamp (paper: alpha = 2).
  SignificanceOptions significance;
  /// Window span in months (paper: 2). Windows are anchored at day 0 of the
  /// observation period for all customers.
  int32_t window_span_months = 2;
  /// Observe raw products or taxonomy segments (paper: segments).
  retail::Granularity granularity = retail::Granularity::kSegment;
  /// Number of windows to score. Negative = cover the whole dataset.
  int32_t num_windows = -1;
  /// Worker threads for per-customer scoring (1 = sequential).
  size_t num_threads = 1;
  /// Explanation depth for AnalyzeCustomer.
  ExplanationOptions explanation;
};

/// Explanation of one window of one customer with names resolved.
struct NamedMissingProduct {
  std::string name;
  double significance = 0.0;
  double significance_share = 0.0;
  bool newly_missing = false;
};

struct CustomerWindowReport {
  int32_t window_index = 0;
  int32_t begin_month = 0;
  int32_t end_month = 0;  // exclusive
  double stability = 1.0;
  double drop_from_previous = 0.0;
  size_t num_receipts = 0;
  size_t basket_union_size = 0;
  std::vector<NamedMissingProduct> missing;
};

/// Full per-customer analysis: the Figure-2 view of the paper.
struct CustomerReport {
  retail::CustomerId customer = retail::kInvalidCustomer;
  std::vector<CustomerWindowReport> windows;

  /// Multi-line rendering: one row per window with stability and the
  /// newly-missing significant products annotated.
  std::string ToString() const;
};

/// One product's standing in a customer's significance table at a given
/// window — the paper's "characterization of significant products"
/// (conclusion / future work), made queryable.
struct SignificantProduct {
  std::string name;
  Symbol symbol = kInvalidSymbol;
  /// Windows before the profiled window containing / missing the product.
  int32_t contain_count = 0;
  int32_t miss_count = 0;
  double significance = 0.0;
  /// significance / total significance at that window.
  double significance_share = 0.0;
  /// Whether the product was bought in the profiled window itself.
  bool present_in_window = false;
};

/// A customer's ranked significance table at one window.
struct SignificanceProfile {
  retail::CustomerId customer = retail::kInvalidCustomer;
  int32_t window_index = 0;
  double total_significance = 0.0;
  /// Products with c > 0, most significant first.
  std::vector<SignificantProduct> products;
};

/// \brief Facade over windowing + significance + stability + explanation:
/// score whole datasets and analyze individual customers.
///
/// \code
///   StabilityModelOptions options;
///   options.significance.alpha = 2.0;
///   options.window_span_months = 2;
///   CHURNLAB_ASSIGN_OR_RETURN(auto model, StabilityModel::Make(options));
///   CHURNLAB_ASSIGN_OR_RETURN(ScoreMatrix scores,
///                             model.ScoreDataset(dataset));
/// \endcode
class StabilityModel {
 public:
  /// Validates options.
  static Result<StabilityModel> Make(StabilityModelOptions options);

  /// Number of windows the model materialises for `dataset` (respects
  /// options.num_windows when set).
  int32_t NumWindowsFor(const retail::Dataset& dataset) const;

  /// Computes the stability of every customer at every window. Higher score
  /// = more stable = more loyal. Requires a finalized dataset.
  Result<ScoreMatrix> ScoreDataset(const retail::Dataset& dataset) const;

  /// Stability series of a single customer.
  Result<StabilitySeries> ScoreCustomer(const retail::Dataset& dataset,
                                        retail::CustomerId customer) const;

  /// Full per-window report with product-loss explanations for one
  /// customer (section 3.2 of the paper).
  Result<CustomerReport> AnalyzeCustomer(const retail::Dataset& dataset,
                                         retail::CustomerId customer) const;

  /// The customer's significance table as seen by window `window` (counts
  /// over windows 0..window-1), ranked by significance. `window` defaults
  /// to the final window when negative.
  Result<SignificanceProfile> ProfileCustomer(const retail::Dataset& dataset,
                                              retail::CustomerId customer,
                                              int32_t window = -1) const;

  const StabilityModelOptions& options() const { return options_; }

 private:
  StabilityModel(StabilityModelOptions options, StabilityComputer computer)
      : options_(options), computer_(std::move(computer)) {}

  Result<Windower> MakeWindower(const retail::Dataset& dataset) const;

  StabilityModelOptions options_;
  /// Built once at Make time from the validated significance options.
  StabilityComputer computer_;
};

}  // namespace core
}  // namespace churnlab

#endif  // CHURNLAB_CORE_STABILITY_MODEL_H_
