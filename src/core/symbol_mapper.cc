#include "core/symbol_mapper.h"

namespace churnlab {
namespace core {

Result<SymbolMapper> SymbolMapper::Make(retail::Granularity granularity,
                                        const retail::Taxonomy* taxonomy) {
  if (granularity == retail::Granularity::kSegment) {
    if (taxonomy == nullptr) {
      return Status::InvalidArgument(
          "segment granularity requires a taxonomy");
    }
    return SymbolMapper(granularity, taxonomy,
                        static_cast<Symbol>(taxonomy->num_segments()));
  }
  return SymbolMapper(granularity, nullptr, kInvalidSymbol);
}

std::string SymbolMapper::SymbolName(
    Symbol symbol, const retail::ItemDictionary& items) const {
  if (granularity_ == retail::Granularity::kProduct) {
    return items.NameOrPlaceholder(symbol);
  }
  if (symbol == unsegmented_bucket_) return "(unsegmented)";
  return taxonomy_->SegmentNameOrPlaceholder(symbol);
}

}  // namespace core
}  // namespace churnlab
