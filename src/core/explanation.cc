#include "core/explanation.h"

#include <algorithm>
#include <utility>

namespace churnlab {
namespace core {

ExplanationEngine::ExplanationEngine(StabilityComputer computer,
                                     ExplanationOptions options)
    : computer_(std::move(computer)), options_(options) {}

std::vector<WindowExplanation> ExplanationEngine::Explain(
    const WindowedHistory& history) const {
  std::vector<WindowExplanation> explanations;
  explanations.reserve(history.windows.size());

  const Window* previous_window = nullptr;

  const StabilitySeries series = computer_.ComputeWithCallback(
      history,
      [&](int32_t k, const SignificanceTracker& tracker, const Window& window) {
        WindowExplanation explanation;
        explanation.window_index = k;

        const double total = tracker.TotalSignificance();
        if (total > 0.0) {
          for (const Symbol symbol : tracker.SeenSymbols()) {
            if (window.Contains(symbol)) continue;
            const double significance = tracker.SignificanceOf(symbol);
            const double share = significance / total;
            if (share < options_.min_significance_share) continue;
            MissingSymbol missing;
            missing.symbol = symbol;
            missing.significance = significance;
            missing.significance_share = share;
            missing.newly_missing =
                previous_window != nullptr && previous_window->Contains(symbol);
            explanation.missing.push_back(missing);
          }
          std::stable_sort(explanation.missing.begin(),
                           explanation.missing.end(),
                           [](const MissingSymbol& a, const MissingSymbol& b) {
                             return a.significance > b.significance;
                           });
          if (explanation.missing.size() > options_.top_k) {
            explanation.missing.resize(options_.top_k);
          }
        }
        previous_window = &window;
        explanations.push_back(std::move(explanation));
      });

  // Stitch in stability values and drops now that the series is complete.
  for (size_t k = 0; k < explanations.size(); ++k) {
    explanations[k].stability = series.points[k].stability;
    explanations[k].drop_from_previous =
        k == 0 ? 0.0
               : series.points[k - 1].stability - series.points[k].stability;
  }
  return explanations;
}

}  // namespace core
}  // namespace churnlab
