#include "core/stability.h"

namespace churnlab {
namespace core {

StabilitySeries StabilityComputer::Compute(
    const WindowedHistory& history) const {
  return ComputeWithCallback(
      history,
      [](int32_t, const SignificanceTracker&, const Window&) {});
}

}  // namespace core
}  // namespace churnlab
