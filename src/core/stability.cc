#include "core/stability.h"

#include "common/macros.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace churnlab {
namespace core {

namespace {
struct StabilityMetrics {
  obs::Counter* series_computed;
  obs::Counter* windows_scored;
  obs::Histogram* observe_latency_us;
};

const StabilityMetrics& Metrics() {
  static const StabilityMetrics metrics = [] {
    obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
    return StabilityMetrics{
        registry.GetCounter("churnlab.core.stability_series_computed"),
        registry.GetCounter("churnlab.core.stability_windows_scored"),
        registry.GetHistogram("churnlab.core.observe_latency_us",
                              obs::HistogramOptions::ExponentialLatency()),
    };
  }();
  return metrics;
}
}  // namespace

Result<StabilityComputer> StabilityComputer::Make(
    SignificanceOptions options) {
  CHURNLAB_ASSIGN_OR_RETURN(const SignificanceTracker tracker,
                            SignificanceTracker::Make(options));
  return StabilityComputer(tracker.options());
}

StabilitySeries StabilityComputer::Compute(
    const WindowedHistory& history) const {
  CHURNLAB_SPAN("core.stability");
  const StabilityMetrics& metrics = Metrics();
  StabilitySeries series;
  if (obs::DetailedTimingEnabled()) {
    // Time the batch pass with the same histogram the online scorer feeds,
    // so `--trace` runs expose a latency distribution either way. The
    // inter-callback delta covers one window's tracker advance plus
    // scoring — the full per-window cost. Sampled 1-in-16 (an anchor
    // callback then a measured one) to keep the enabled overhead on the
    // per-window hot loop within the <=3% budget (docs/OBSERVABILITY.md).
    uint64_t anchor_ns = 0;
    uint32_t tick = 0;
    series = ComputeWithCallback(
        history,
        [&](int32_t, const SignificanceTracker&, const Window&) {
          const uint32_t phase = tick++ & 15u;
          if (phase == 0) {
            anchor_ns = obs::MonotonicNanos();
          } else if (phase == 1) {
            metrics.observe_latency_us->Record(
                static_cast<double>(obs::MonotonicNanos() - anchor_ns) *
                1e-3);
          }
        });
  } else {
    series = ComputeWithCallback(
        history, [](int32_t, const SignificanceTracker&, const Window&) {});
  }
  metrics.series_computed->Increment();
  metrics.windows_scored->Increment(series.size());
  return series;
}

}  // namespace core
}  // namespace churnlab
