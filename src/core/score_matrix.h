#ifndef CHURNLAB_CORE_SCORE_MATRIX_H_
#define CHURNLAB_CORE_SCORE_MATRIX_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "retail/types.h"

namespace churnlab {
namespace core {

/// \brief Dense customer-by-window score matrix.
///
/// Both the stability model and the RFM baseline emit one score per
/// (customer, window); evaluation consumes them uniformly through this
/// type. Row order is the customer vector passed at construction; rows are
/// addressable by position or by customer id.
class ScoreMatrix {
 public:
  ScoreMatrix() = default;

  /// Creates a zero-initialised matrix for `customers` x `num_windows`.
  ScoreMatrix(std::vector<retail::CustomerId> customers, int32_t num_windows);

  size_t num_rows() const { return customers_.size(); }
  int32_t num_windows() const { return num_windows_; }

  const std::vector<retail::CustomerId>& customers() const {
    return customers_;
  }

  /// Score of row `row` at window `window`; bounds-checked by assert.
  double At(size_t row, int32_t window) const;
  void Set(size_t row, int32_t window, double score);

  /// Mutable pointer to a full row (num_windows doubles).
  double* Row(size_t row);
  const double* Row(size_t row) const;

  /// Row position of `customer`, or NotFound.
  Result<size_t> RowOf(retail::CustomerId customer) const;

  /// Score of `customer` at `window`, resolving the row by id.
  Result<double> ScoreOf(retail::CustomerId customer, int32_t window) const;

  /// One window's scores across all rows, in row order.
  std::vector<double> WindowColumn(int32_t window) const;

  /// Writes the matrix as CSV: header `customer,w0,w1,...`, one row per
  /// customer. The export format of the CLI's `score --out`.
  Status SaveCsv(const std::string& path) const;

  /// Reads a CSV written by SaveCsv.
  static Result<ScoreMatrix> LoadCsv(const std::string& path);

 private:
  std::vector<retail::CustomerId> customers_;
  std::unordered_map<retail::CustomerId, size_t> row_index_;
  int32_t num_windows_ = 0;
  std::vector<double> scores_;  // row-major
};

}  // namespace core
}  // namespace churnlab

#endif  // CHURNLAB_CORE_SCORE_MATRIX_H_
