#ifndef CHURNLAB_CORE_SIGNIFICANCE_H_
#define CHURNLAB_CORE_SIGNIFICANCE_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "core/window.h"

namespace churnlab {
namespace core {

/// Which significance weighting to use.
enum class SignificanceKind : uint8_t {
  /// The paper's S(p,k) = alpha^(c(k) - l(k)).
  kAlphaPower = 0,
  /// Exponentially-weighted moving average of window presence:
  /// s_k = lambda * s_{k-1} + (1 - lambda) * [p in u_{k-1}], s in (0, 1].
  /// An extension for the ablation study: recent windows dominate, old
  /// history is forgotten at a fixed rate rather than the paper's
  /// count-difference rule.
  kEwma = 1,
};

/// Parameters of the significance weighting S(p,k) = alpha^(c(k) - l(k)).
struct SignificanceOptions {
  SignificanceKind kind = SignificanceKind::kAlphaPower;
  /// The paper's alpha. Must be > 0; the usual regime is alpha > 1 so that
  /// repeated purchases increase significance. The paper's experiments use
  /// alpha = 2 (chosen by 5-fold cross-validation).
  double alpha = 2.0;
  /// |c - l| is clamped to this bound before exponentiation so significance
  /// stays finite for arbitrarily long histories. 500 is far beyond the
  /// paper's 14-window horizon and exact for it.
  double max_abs_exponent = 500.0;
  /// Memory of the kEwma variant, in (0, 1). Larger = longer memory.
  double ewma_lambda = 0.7;
};

/// \brief Incremental per-customer significance table (section 2 of the
/// paper).
///
/// For item p at window k, let c(k) = number of windows *before* k
/// containing p and l(k) = number of windows before k not containing p.
/// Since every prior window either contains p or not, c(k) + l(k) = k, so
/// the tracker stores only c(k) per symbol and the current window count.
/// The significance is
///
///   S(p,k) = alpha^(c(k) - l(k)) = alpha^(2*c(k) - k)   if c(k) > 0
///   S(p,k) = 0                                           otherwise.
///
/// Usage: for each window k in order, query significances (they reflect
/// windows 0..k-1), then call `AdvanceWindow(u_k)`.
class SignificanceTracker {
 public:
  explicit SignificanceTracker(SignificanceOptions options);

  /// Validates options (alpha > 0, max_abs_exponent >= 0).
  static Result<SignificanceTracker> Make(SignificanceOptions options);

  /// S(p, current window). Zero for never-seen symbols.
  double SignificanceOf(Symbol symbol) const;

  /// c(current window) for `symbol` — number of past windows containing it.
  int32_t ContainCount(Symbol symbol) const;

  /// l(current window) for `symbol`. Zero for never-seen symbols (their
  /// significance is 0 regardless).
  int32_t MissCount(Symbol symbol) const;

  /// Sum of S(p, current window) over every symbol in I. Only symbols with
  /// c > 0 contribute (all others have S = 0), so this is a scan of the
  /// seen-symbol table.
  double TotalSignificance() const;

  /// All symbols with c > 0, ascending. (Stable ordering for reports.)
  std::vector<Symbol> SeenSymbols() const;

  /// Folds window k's symbol set into the counters, making the tracker
  /// reflect window k+1. `window_symbols` must be sorted and deduplicated
  /// (as produced by Windower).
  void AdvanceWindow(const std::vector<Symbol>& window_symbols);

  /// Number of windows folded in so far (the current k).
  int32_t windows_seen() const { return windows_seen_; }

  const SignificanceOptions& options() const { return options_; }

 private:
  SignificanceOptions options_;
  std::unordered_map<Symbol, int32_t> contain_counts_;
  /// kEwma only: the running presence average per seen symbol.
  std::unordered_map<Symbol, double> ewma_scores_;
  int32_t windows_seen_ = 0;
};

}  // namespace core
}  // namespace churnlab

#endif  // CHURNLAB_CORE_SIGNIFICANCE_H_
