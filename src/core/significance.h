#ifndef CHURNLAB_CORE_SIGNIFICANCE_H_
#define CHURNLAB_CORE_SIGNIFICANCE_H_

#include <cstdint>
#include <span>
#include <vector>

#include "common/binary_io.h"
#include "common/result.h"
#include "core/pow_cache.h"
#include "core/window.h"

namespace churnlab {
namespace core {

/// Which significance weighting to use.
enum class SignificanceKind : uint8_t {
  /// The paper's S(p,k) = alpha^(c(k) - l(k)).
  kAlphaPower = 0,
  /// Exponentially-weighted moving average of window presence:
  /// s_k = lambda * s_{k-1} + (1 - lambda) * [p in u_{k-1}], s in (0, 1].
  /// An extension for the ablation study: recent windows dominate, old
  /// history is forgotten at a fixed rate rather than the paper's
  /// count-difference rule.
  kEwma = 1,
};

/// Parameters of the significance weighting S(p,k) = alpha^(c(k) - l(k)).
struct SignificanceOptions {
  SignificanceKind kind = SignificanceKind::kAlphaPower;
  /// The paper's alpha. Must be > 0; the usual regime is alpha > 1 so that
  /// repeated purchases increase significance. The paper's experiments use
  /// alpha = 2 (chosen by 5-fold cross-validation).
  double alpha = 2.0;
  /// |c - l| is clamped to this bound before exponentiation so significance
  /// stays finite for arbitrarily long histories. 500 is far beyond the
  /// paper's 14-window horizon and exact for it.
  double max_abs_exponent = 500.0;
  /// Memory of the kEwma variant, in (0, 1). Larger = longer memory.
  double ewma_lambda = 0.7;
};

/// \brief Incremental per-customer significance table (section 2 of the
/// paper).
///
/// For item p at window k, let c(k) = number of windows *before* k
/// containing p and l(k) = number of windows before k not containing p.
/// Since every prior window either contains p or not, c(k) + l(k) = k, so
/// the tracker stores only c(k) per symbol and the current window count.
/// The significance is
///
///   S(p,k) = alpha^(c(k) - l(k)) = alpha^(2*c(k) - k)   if c(k) > 0
///   S(p,k) = 0                                           otherwise.
///
/// The denominator of the stability formula, T_k = sum_{p in I} S(p,k), is
/// maintained incrementally from the algebraic identity
///
///   T_{k+1} = (T_k + (alpha^2 - 1) * sum_{p in u_k, c>0} S(p,k)) / alpha
///             + |{p in u_k : c = 0}| * alpha^(1-k),
///
/// which follows from S(p,k) = alpha^(-k) * alpha^(2c(p)): advancing a
/// window divides every term by alpha and multiplies each term of a present
/// symbol by alpha^2. AdvanceWindow therefore costs O(|u_k|) and
/// TotalSignificance() is O(1) — a full customer series costs O(total
/// purchases) instead of O(windows x seen catalogue).
///
/// Clamp caveat: the identity above is the *unclamped* algebra. It is exact
/// as long as no per-symbol exponent can hit the max_abs_exponent clamp,
/// which is guaranteed while windows_seen() <= max_abs_exponent (the
/// exponent 2c - k is bounded by +-k). Beyond that horizon the tracker
/// falls back to an exact O(distinct contain-counts) summation over a
/// contain-count histogram — still independent of the catalogue size, and
/// unreachable in the paper's regime (14 windows vs the default clamp of
/// 500).
///
/// Per-symbol state lives in dense Symbol-indexed vectors (symbols are
/// dense ids produced by SymbolMapper), and alpha powers are served from a
/// memoised PowCache filled with the same ClampedPow the scan-based oracle
/// uses, so per-symbol significances agree bit-for-bit with
/// ReferenceSignificanceTracker (see significance_reference.h).
///
/// The math itself lives in the storage-agnostic kernels of
/// core/state_kernel.h, instantiated here over the nested State struct of
/// plain vectors; the serving layer instantiates the same kernels over its
/// compact SoA/arena layout, which keeps the two layouts bit-identical.
///
/// Not thread-safe — including const accessors, which lazily extend the
/// memoised power tables. Use one tracker per thread.
///
/// Usage: for each window k in order, query significances (they reflect
/// windows 0..k-1), then call `AdvanceWindow(u_k)`.
class SignificanceTracker {
 public:
  /// Heap-layout storage behind the shared kernels: plain members plus the
  /// accessor surface the TrackerState concept expects (state_kernel.h).
  struct State {
    int32_t windows_seen = 0;
    /// Number of symbols with c > 0.
    uint32_t num_seen = 0;
    /// sum_p alpha^(2c(p) - k), maintained incrementally while the clamp
    /// cannot bite; stale (and unused) afterwards.
    double incremental_total = 0.0;
    /// kEwma: running total, via T_{k+1} = lambda * T_k + (1-lambda)*|u_k|.
    double ewma_total = 0.0;
    /// Dense per-symbol contain counts; index = symbol, 0 = never seen.
    std::vector<int32_t> contain_counts;
    /// contain_histogram[c] = number of symbols with contain count c
    /// (c >= 1). Drives the exact clamped-regime total. kAlphaPower only.
    std::vector<uint32_t> contain_histogram;
    /// kEwma: lazily-decayed scores. The score of symbol s at the current
    /// window k is ewma_values[s] * lambda^(k - ewma_stamps[s]), so
    /// AdvanceWindow only touches present symbols instead of decaying the
    /// whole table.
    std::vector<double> ewma_values;
    std::vector<int32_t> ewma_stamps;

    int32_t& WindowsSeen() { return windows_seen; }
    uint32_t& NumSeen() { return num_seen; }
    double& IncrementalTotal() { return incremental_total; }
    double& EwmaTotal() { return ewma_total; }
    std::span<int32_t> ContainCounts() {
      return {contain_counts.data(), contain_counts.size()};
    }
    std::span<int32_t> GrowContainCounts(size_t n) {
      contain_counts.resize(n, 0);
      return ContainCounts();
    }
    std::span<uint32_t> ContainHistogram() {
      return {contain_histogram.data(), contain_histogram.size()};
    }
    std::span<uint32_t> GrowContainHistogram(size_t n) {
      contain_histogram.resize(n, 0);
      return ContainHistogram();
    }
    std::span<double> EwmaValues() {
      return {ewma_values.data(), ewma_values.size()};
    }
    std::span<int32_t> EwmaStamps() {
      return {ewma_stamps.data(), ewma_stamps.size()};
    }
    void GrowEwma(size_t n) {
      ewma_values.resize(n, 0.0);
      ewma_stamps.resize(n, 0);
    }
    void ClearTracker() { *this = State(); }
  };

  explicit SignificanceTracker(SignificanceOptions options);

  /// Validates options (alpha > 0, max_abs_exponent >= 0).
  static Result<SignificanceTracker> Make(SignificanceOptions options);

  /// S(p, current window). Zero for never-seen symbols.
  double SignificanceOf(Symbol symbol) const;

  /// c(current window) for `symbol` — number of past windows containing it.
  int32_t ContainCount(Symbol symbol) const;

  /// l(current window) for `symbol`. Zero for never-seen symbols (their
  /// significance is 0 regardless).
  int32_t MissCount(Symbol symbol) const;

  /// Sum of S(p, current window) over every symbol in I. O(1) while the
  /// exponent clamp cannot bite (see class comment), O(distinct
  /// contain-counts) afterwards.
  double TotalSignificance() const;

  /// Sum of S(p, current window) over `symbols`, which must be sorted;
  /// duplicate neighbours are counted once. This is the stability
  /// numerator sum_{p in u_k} S(p,k).
  double PresentSignificance(const std::vector<Symbol>& symbols) const;

  /// All symbols with c > 0, ascending. (Stable ordering for reports.)
  std::vector<Symbol> SeenSymbols() const;

  /// Folds window k's symbol set into the counters, making the tracker
  /// reflect window k+1. `window_symbols` must be sorted and deduplicated
  /// (as produced by Windower).
  void AdvanceWindow(const std::vector<Symbol>& window_symbols);

  /// Number of windows folded in so far (the current k).
  int32_t windows_seen() const { return state_.windows_seen; }

  const SignificanceOptions& options() const { return options_; }

  /// Heap bytes held behind this tracker (vector capacities plus the
  /// memoised power tables), excluding sizeof(*this).
  size_t MemoryUsage() const;

  /// Raw storage access for kernel instantiation by the streaming layers
  /// (OnlineStabilityScorer, the serving layer's equivalence tests).
  State& state() { return state_; }
  const State& state() const { return state_; }
  const PowCache& pows() const { return pows_; }

  /// Serializes the dynamic state (counters and running totals; *not* the
  /// options) to `writer`. Sparse encoding: only symbols with non-zero
  /// state are written, so the cost is O(distinct symbols seen), not
  /// O(symbol space). Floating-point accumulators are written as raw IEEE
  /// bytes, so a LoadState'd tracker continues bit-identically to the
  /// original.
  void SaveState(BinaryWriter* writer) const;

  /// Restores state written by SaveState into this tracker, replacing any
  /// current state. The tracker must have been constructed with the same
  /// options as the one that saved (the serving layer persists options in
  /// its snapshot header and enforces this).
  Status LoadState(BinaryReader* reader);

 private:
  /// Query kernels take a mutable state (the compact layout has no const
  /// refs); the heap members they touch never change on queries, and the
  /// power tables are mutable by design.
  State& MutableState() const {
    return const_cast<SignificanceTracker*>(this)->state_;
  }

  SignificanceOptions options_;
  State state_;
  PowCache pows_;
};

}  // namespace core
}  // namespace churnlab

#endif  // CHURNLAB_CORE_SIGNIFICANCE_H_
