#ifndef CHURNLAB_CORE_STATE_KERNEL_H_
#define CHURNLAB_CORE_STATE_KERNEL_H_

#include <algorithm>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/binary_io.h"
#include "common/macros.h"
#include "common/result.h"
#include "core/monitor.h"
#include "core/pow_cache.h"
#include "obs/metrics.h"
#include "retail/types.h"

namespace churnlab {
namespace core {

/// \brief Storage-agnostic streaming kernels behind SignificanceTracker,
/// OnlineStabilityScorer, and StabilityMonitor.
///
/// The math of the three classes is written once here as templates over a
/// *state* parameter, so the exact same code runs against two layouts:
///
///  - the heap layout: each class's nested `State` struct of plain members
///    and std::vectors (one instance per customer);
///  - the serving layer's compact layout: SoA scalar columns plus
///    arena-backed blocks, viewed through lightweight ref types
///    (serve/state_store.cc).
///
/// Identical code paths is what makes the two layouts byte-identical — in
/// emitted alerts and in serialized snapshots — by construction rather
/// than by parallel maintenance.
///
/// State concepts (duck-typed; no formal `concept` so the refs stay
/// minimal):
///
///  TrackerState — WindowsSeen()/NumSeen()/IncrementalTotal()/EwmaTotal()
///    scalar refs; ContainCounts()/ContainHistogram()/EwmaValues()/
///    EwmaStamps() spans; GrowContainCounts(n)/GrowContainHistogram(n)
///    zero-filling growth returning the fresh span; GrowEwma(n) growing
///    both EWMA arrays; ClearTracker() resetting everything to
///    freshly-constructed state. Growth invalidates only the grown span.
///
///  ScorerState — CurrentSymbols() span (sorted + deduplicated);
///    InsertCurrentSymbol(pos, s)/AppendCurrentSymbol(s)/
///    ReserveCurrentSymbols(n)/ClearCurrentSymbols(); CurrentWindow()/
///    LastObservedDay() scalar refs.
///
///  MonitorState — LastStability()/HasPrevious()/LowStreak() scalar refs
///    (HasPrevious is uint8_t: 0 or 1).
namespace kernel {

/// Shared observability hooks, defined in online_scorer.cc / monitor.cc so
/// both storage layouts feed the same metric families.
void RecordEmittedWindows(size_t count);
obs::Counter* ObservationsCounter();
obs::Histogram* ObserveLatencyHistogram();
void RecordAlert(StabilityAlert::Kind kind);

// ---------------------------------------------------------------------------
// SignificanceTracker kernels (see significance.h for the math).
// ---------------------------------------------------------------------------

/// True while no per-symbol exponent can exceed the clamp, i.e. while the
/// incremental total is exact.
inline bool IncrementalTotalExact(int32_t windows_seen,
                                  const SignificanceOptions& options) {
  return static_cast<double>(windows_seen) <= options.max_abs_exponent;
}

template <typename TrackerState>
double SignificanceOf(TrackerState& ts, const SignificanceOptions& options,
                      const PowCache& pows, Symbol symbol) {
  if (options.kind == SignificanceKind::kEwma) {
    const std::span<const double> values = ts.EwmaValues();
    if (static_cast<size_t>(symbol) >= values.size()) return 0.0;
    const double value = values[symbol];
    if (value == 0.0) return 0.0;
    return value * pows.PowLambda(ts.WindowsSeen() - ts.EwmaStamps()[symbol]);
  }
  const std::span<const int32_t> counts = ts.ContainCounts();
  if (static_cast<size_t>(symbol) >= counts.size()) return 0.0;
  const int32_t count = counts[symbol];
  if (count == 0) return 0.0;
  if (options.alpha == 1.0) return 1.0;
  return pows.PowAlpha(2 * static_cast<int64_t>(count) - ts.WindowsSeen());
}

template <typename TrackerState>
int32_t ContainCount(TrackerState& ts, Symbol symbol) {
  const std::span<const int32_t> counts = ts.ContainCounts();
  if (static_cast<size_t>(symbol) >= counts.size()) return 0;
  return counts[symbol];
}

template <typename TrackerState>
int32_t MissCount(TrackerState& ts, Symbol symbol) {
  const int32_t count = ContainCount(ts, symbol);
  if (count == 0) return 0;
  return ts.WindowsSeen() - count;
}

/// Exact total in the clamped regime: sums ClampedPow per distinct contain
/// count, weighted by the histogram.
template <typename TrackerState>
double HistogramTotal(TrackerState& ts, const PowCache& pows) {
  const std::span<const uint32_t> histogram = ts.ContainHistogram();
  const int32_t windows_seen = ts.WindowsSeen();
  double total = 0.0;
  for (size_t count = 1; count < histogram.size(); ++count) {
    const uint32_t symbols = histogram[count];
    if (symbols == 0) continue;
    total += static_cast<double>(symbols) *
             pows.PowAlpha(2 * static_cast<int64_t>(count) - windows_seen);
  }
  return total;
}

template <typename TrackerState>
double TotalSignificance(TrackerState& ts, const SignificanceOptions& options,
                         const PowCache& pows) {
  if (options.kind == SignificanceKind::kEwma) return ts.EwmaTotal();
  if (ts.NumSeen() == 0) return 0.0;
  if (options.alpha == 1.0) return static_cast<double>(ts.NumSeen());
  if (IncrementalTotalExact(ts.WindowsSeen(), options)) {
    return ts.IncrementalTotal();
  }
  return HistogramTotal(ts, pows);
}

template <typename TrackerState>
double PresentSignificance(TrackerState& ts,
                           const SignificanceOptions& options,
                           const PowCache& pows,
                           std::span<const Symbol> symbols) {
  double present = 0.0;
  const Symbol* previous = nullptr;  // tolerate duplicate neighbours
  for (const Symbol& symbol : symbols) {
    if (previous != nullptr && *previous == symbol) continue;
    present += SignificanceOf(ts, options, pows, symbol);
    previous = &symbol;
  }
  return present;
}

template <typename TrackerState>
void AdvanceEwma(TrackerState& ts, const SignificanceOptions& options,
                 const PowCache& pows,
                 std::span<const Symbol> window_symbols) {
  const double lambda = options.ewma_lambda;
  const double credit = 1.0 - lambda;
  const int32_t next_window = ts.WindowsSeen() + 1;
  size_t present_count = 0;
  std::span<double> values = ts.EwmaValues();
  std::span<int32_t> stamps = ts.EwmaStamps();
  const Symbol* previous = nullptr;
  for (const Symbol& symbol : window_symbols) {
    if (previous != nullptr && *previous == symbol) continue;
    previous = &symbol;
    ++present_count;
    if (static_cast<size_t>(symbol) >= values.size()) {
      ts.GrowEwma(static_cast<size_t>(symbol) + 1);
      values = ts.EwmaValues();
      stamps = ts.EwmaStamps();
    }
    // Settle the lazy decay up to the post-advance window, then credit.
    values[symbol] =
        values[symbol] * pows.PowLambda(next_window - stamps[symbol]) +
        credit;
    stamps[symbol] = next_window;
  }
  ts.EwmaTotal() = ts.EwmaTotal() * lambda +
                   credit * static_cast<double>(present_count);
}

template <typename TrackerState>
void AdvanceWindow(TrackerState& ts, const SignificanceOptions& options,
                   const PowCache& pows,
                   std::span<const Symbol> window_symbols) {
  if (options.kind == SignificanceKind::kEwma) {
    AdvanceEwma(ts, options, pows, window_symbols);
  }
  const int32_t windows_seen = ts.WindowsSeen();
  // The incremental total is only maintained while it stays exact (and only
  // needed for the alpha-power kind with alpha != 1).
  const bool maintain_total =
      options.kind == SignificanceKind::kAlphaPower && options.alpha != 1.0 &&
      static_cast<double>(windows_seen) + 1.0 <= options.max_abs_exponent;
  double present = 0.0;
  size_t new_symbols = 0;
  std::span<int32_t> counts = ts.ContainCounts();
  std::span<uint32_t> histogram = ts.ContainHistogram();
  // Input is sorted (Windower invariant); skip duplicate neighbours so a
  // malformed caller cannot make c(k) exceed the window count.
  const Symbol* previous = nullptr;
  for (const Symbol& symbol : window_symbols) {
    if (previous != nullptr && *previous == symbol) continue;
    previous = &symbol;
    if (static_cast<size_t>(symbol) >= counts.size()) {
      counts = ts.GrowContainCounts(static_cast<size_t>(symbol) + 1);
    }
    int32_t& count = counts[symbol];
    if (count == 0) {
      ++new_symbols;
      ++ts.NumSeen();
    } else {
      if (maintain_total) {
        present +=
            pows.PowAlpha(2 * static_cast<int64_t>(count) - windows_seen);
      }
      --histogram[static_cast<size_t>(count)];
    }
    ++count;
    if (static_cast<size_t>(count) >= histogram.size()) {
      histogram = ts.GrowContainHistogram(static_cast<size_t>(count) + 1);
    }
    ++histogram[static_cast<size_t>(count)];
  }
  if (maintain_total) {
    const double alpha = options.alpha;
    // T_{k+1} = (T_k + (alpha^2 - 1) * P_k) / alpha + n_new * alpha^(1-k).
    ts.IncrementalTotal() =
        (ts.IncrementalTotal() + (alpha * alpha - 1.0) * present) / alpha +
        static_cast<double>(new_symbols) * pows.PowAlpha(1 - windows_seen);
  }
  ++ts.WindowsSeen();
}

template <typename TrackerState>
void TrackerSaveState(TrackerState& ts, BinaryWriter* writer) {
  writer->WriteVarint(static_cast<uint64_t>(ts.WindowsSeen()));
  // Sparse contain counts as (symbol delta, count) pairs, ascending symbol.
  writer->WriteVarint(static_cast<uint64_t>(ts.NumSeen()));
  const std::span<const int32_t> counts = ts.ContainCounts();
  Symbol previous = 0;
  for (size_t symbol = 0; symbol < counts.size(); ++symbol) {
    const int32_t count = counts[symbol];
    if (count == 0) continue;
    writer->WriteVarint(static_cast<Symbol>(symbol) - previous);
    writer->WriteVarint(static_cast<uint64_t>(count));
    previous = static_cast<Symbol>(symbol);
  }
  writer->WriteDouble(ts.IncrementalTotal());
  // Sparse EWMA scores (value, stamp) keyed the same way. Empty for the
  // alpha-power kind.
  const std::span<const double> values = ts.EwmaValues();
  const std::span<const int32_t> stamps = ts.EwmaStamps();
  size_t num_ewma = 0;
  for (const double value : values) {
    if (value != 0.0) ++num_ewma;
  }
  writer->WriteVarint(num_ewma);
  previous = 0;
  for (size_t symbol = 0; symbol < values.size(); ++symbol) {
    if (values[symbol] == 0.0) continue;
    writer->WriteVarint(static_cast<Symbol>(symbol) - previous);
    writer->WriteDouble(values[symbol]);
    writer->WriteVarint(static_cast<uint64_t>(stamps[symbol]));
    previous = static_cast<Symbol>(symbol);
  }
  writer->WriteDouble(ts.EwmaTotal());
}

template <typename TrackerState>
Status TrackerLoadState(TrackerState& ts, BinaryReader* reader) {
  // Caps on untrusted state values. Symbols index dense vectors, so a
  // corrupted delta chain must not be allowed to size a multi-gigabyte
  // resize: 2^24 symbols is far beyond any retail taxonomy. Likewise the
  // contain histogram is indexed by per-symbol window counts, bounded by
  // windows_seen: 2^20 windows is centuries of daily windows.
  constexpr uint64_t kMaxSymbolSpace = uint64_t{1} << 24;
  constexpr uint64_t kMaxWindowsSeen = uint64_t{1} << 20;
  CHURNLAB_ASSIGN_OR_RETURN(const uint64_t windows_seen, reader->ReadVarint());
  if (windows_seen > kMaxWindowsSeen) {
    return Status::InvalidArgument(
        "significance state windows_seen is implausibly large");
  }
  CHURNLAB_ASSIGN_OR_RETURN(const uint64_t num_seen, reader->ReadVarint());
  ts.ClearTracker();
  ts.WindowsSeen() = static_cast<int32_t>(windows_seen);
  std::span<int32_t> counts = ts.ContainCounts();
  std::span<uint32_t> histogram = ts.ContainHistogram();
  uint64_t symbol = 0;
  for (uint64_t i = 0; i < num_seen; ++i) {
    CHURNLAB_ASSIGN_OR_RETURN(const uint64_t delta, reader->ReadVarint());
    // The first pair carries the absolute symbol; later pairs are deltas
    // from the previous one (strictly positive by construction).
    symbol += delta;
    CHURNLAB_ASSIGN_OR_RETURN(const uint64_t count, reader->ReadVarint());
    if (symbol >= static_cast<uint64_t>(kInvalidSymbol) || count == 0 ||
        count > windows_seen) {
      return Status::OutOfRange("corrupt significance state entry");
    }
    if (symbol >= kMaxSymbolSpace) {
      return Status::InvalidArgument(
          "significance state symbol is implausibly large");
    }
    if (symbol >= counts.size()) {
      counts = ts.GrowContainCounts(static_cast<size_t>(symbol) + 1);
    }
    counts[symbol] = static_cast<int32_t>(count);
    ++ts.NumSeen();
    if (count >= histogram.size()) {
      histogram = ts.GrowContainHistogram(static_cast<size_t>(count) + 1);
    }
    ++histogram[count];
  }
  CHURNLAB_ASSIGN_OR_RETURN(ts.IncrementalTotal(), reader->ReadDouble());

  CHURNLAB_ASSIGN_OR_RETURN(const uint64_t num_ewma, reader->ReadVarint());
  std::span<double> values = ts.EwmaValues();
  std::span<int32_t> stamps = ts.EwmaStamps();
  symbol = 0;
  for (uint64_t i = 0; i < num_ewma; ++i) {
    CHURNLAB_ASSIGN_OR_RETURN(const uint64_t delta, reader->ReadVarint());
    symbol += delta;
    CHURNLAB_ASSIGN_OR_RETURN(const double value, reader->ReadDouble());
    CHURNLAB_ASSIGN_OR_RETURN(const uint64_t stamp, reader->ReadVarint());
    if (symbol >= static_cast<uint64_t>(kInvalidSymbol) ||
        stamp > windows_seen) {
      return Status::OutOfRange("corrupt EWMA state entry");
    }
    if (symbol >= kMaxSymbolSpace) {
      return Status::InvalidArgument(
          "EWMA state symbol is implausibly large");
    }
    if (symbol >= values.size()) {
      ts.GrowEwma(static_cast<size_t>(symbol) + 1);
      values = ts.EwmaValues();
      stamps = ts.EwmaStamps();
    }
    values[symbol] = value;
    stamps[symbol] = static_cast<int32_t>(stamp);
  }
  CHURNLAB_ASSIGN_OR_RETURN(ts.EwmaTotal(), reader->ReadDouble());
  return Status::OK();
}

// ---------------------------------------------------------------------------
// OnlineStabilityScorer kernels (see online_scorer.h for the contract).
// ---------------------------------------------------------------------------

/// Emits the current window and starts the next one.
template <typename TrackerState, typename ScorerState>
StabilityPoint CloseCurrentWindow(TrackerState& ts, ScorerState& ss,
                                  const SignificanceOptions& significance,
                                  const PowCache& pows) {
  StabilityPoint point;
  point.window_index = ss.CurrentWindow();
  point.total_significance = TotalSignificance(ts, significance, pows);
  point.present_significance =
      PresentSignificance(ts, significance, pows, ss.CurrentSymbols());
  if (point.total_significance > 0.0) {
    point.has_history = true;
    point.stability = point.present_significance / point.total_significance;
  } else {
    point.has_history = false;
    point.stability = 1.0;
  }
  AdvanceWindow(ts, significance, pows, ss.CurrentSymbols());
  ss.ClearCurrentSymbols();
  ++ss.CurrentWindow();
  return point;
}

template <typename TrackerState, typename ScorerState>
Result<std::vector<StabilityPoint>> ScorerAdvanceTo(
    TrackerState& ts, ScorerState& ss,
    const OnlineStabilityScorer::Options& options, const PowCache& pows,
    retail::Day day) {
  if (day < options.origin_day) {
    return Status::InvalidArgument("day precedes the window origin");
  }
  if (day < ss.LastObservedDay()) {
    return Status::InvalidArgument(
        "stream is not chronological: day " + std::to_string(day) +
        " after day " + std::to_string(ss.LastObservedDay()));
  }
  ss.LastObservedDay() = day;
  const int32_t target_window =
      (day - options.origin_day) / options.window_span_days;
  std::vector<StabilityPoint> emitted;
  while (ss.CurrentWindow() < target_window) {
    emitted.push_back(
        CloseCurrentWindow(ts, ss, options.significance, pows));
  }
  RecordEmittedWindows(emitted.size());
  return emitted;
}

template <typename TrackerState, typename ScorerState>
Result<std::vector<StabilityPoint>> ScorerObserve(
    TrackerState& ts, ScorerState& ss,
    const OnlineStabilityScorer::Options& options, const PowCache& pows,
    retail::Day day, std::span<const Symbol> symbols) {
  obs::ScopedLatency latency(ObserveLatencyHistogram());
  CHURNLAB_ASSIGN_OR_RETURN(std::vector<StabilityPoint> emitted,
                            ScorerAdvanceTo(ts, ss, options, pows, day));
  // Merge the observation into the current window's sorted union.
  std::span<const Symbol> current = ss.CurrentSymbols();
  for (const Symbol symbol : symbols) {
    if (symbol == kInvalidSymbol) continue;
    const auto it =
        std::lower_bound(current.begin(), current.end(), symbol);
    if (it == current.end() || *it != symbol) {
      ss.InsertCurrentSymbol(static_cast<size_t>(it - current.begin()),
                             symbol);
      current = ss.CurrentSymbols();
    }
  }
  ObservationsCounter()->Increment();
  return emitted;
}

template <typename TrackerState, typename ScorerState>
Result<StabilityPoint> ScorerFinish(
    TrackerState& ts, ScorerState& ss,
    const OnlineStabilityScorer::Options& options, const PowCache& pows) {
  if (ss.LastObservedDay() < 0) {
    return Status::FailedPrecondition(
        "no observations were ever fed; window 0 would be vacuous");
  }
  // The next acceptable observation starts at the next window boundary.
  ss.LastObservedDay() =
      std::max(ss.LastObservedDay(),
               options.origin_day +
                   (ss.CurrentWindow() + 1) * options.window_span_days - 1);
  StabilityPoint point =
      CloseCurrentWindow(ts, ss, options.significance, pows);
  RecordEmittedWindows(1);
  return point;
}

template <typename TrackerState, typename ScorerState>
void ScorerSaveState(TrackerState& ts, ScorerState& ss,
                     BinaryWriter* writer) {
  TrackerSaveState(ts, writer);
  const std::span<const Symbol> current = ss.CurrentSymbols();
  writer->WriteVarint(current.size());
  Symbol previous = 0;
  for (const Symbol symbol : current) {  // sorted: delta-encode
    writer->WriteVarint(symbol - previous);
    previous = symbol;
  }
  writer->WriteSignedVarint(ss.CurrentWindow());
  writer->WriteSignedVarint(ss.LastObservedDay());
}

template <typename TrackerState, typename ScorerState>
Status ScorerLoadState(TrackerState& ts, ScorerState& ss,
                       BinaryReader* reader) {
  CHURNLAB_RETURN_NOT_OK(TrackerLoadState(ts, reader));
  CHURNLAB_ASSIGN_OR_RETURN(const uint64_t num_symbols, reader->ReadVarint());
  // Untrusted length prefix: each symbol takes at least one byte, so a
  // count beyond the remaining buffer is corruption — reject before
  // reserving storage sized from it.
  if (num_symbols > reader->remaining()) {
    return Status::InvalidArgument(
        "scorer symbol count exceeds remaining state bytes");
  }
  ss.ClearCurrentSymbols();
  ss.ReserveCurrentSymbols(num_symbols);
  uint64_t symbol = 0;
  for (uint64_t i = 0; i < num_symbols; ++i) {
    CHURNLAB_ASSIGN_OR_RETURN(const uint64_t delta, reader->ReadVarint());
    symbol += delta;
    if (symbol >= static_cast<uint64_t>(kInvalidSymbol)) {
      return Status::OutOfRange("corrupt scorer symbol set");
    }
    ss.AppendCurrentSymbol(static_cast<Symbol>(symbol));
  }
  CHURNLAB_ASSIGN_OR_RETURN(const int64_t current_window,
                            reader->ReadSignedVarint());
  CHURNLAB_ASSIGN_OR_RETURN(const int64_t last_observed_day,
                            reader->ReadSignedVarint());
  if (current_window < 0 || current_window > INT32_MAX ||
      last_observed_day < -1 || last_observed_day > INT32_MAX) {
    return Status::OutOfRange("corrupt scorer stream position");
  }
  ss.CurrentWindow() = static_cast<int32_t>(current_window);
  ss.LastObservedDay() = static_cast<retail::Day>(last_observed_day);
  return Status::OK();
}

// ---------------------------------------------------------------------------
// StabilityMonitor kernels (see monitor.h for the policy semantics).
// ---------------------------------------------------------------------------

template <typename MonitorState>
std::vector<StabilityAlert> Evaluate(MonitorState& ms,
                                     const MonitorPolicy& policy,
                                     std::span<const StabilityPoint> points) {
  std::vector<StabilityAlert> alerts;
  for (const StabilityPoint& point : points) {
    const double drop =
        ms.HasPrevious() != 0 ? ms.LastStability() - point.stability : 0.0;
    const bool in_warmup = point.window_index < policy.warmup_windows;

    if (!in_warmup && point.has_history) {
      if (point.stability <= policy.beta) {
        ++ms.LowStreak();
      } else {
        ms.LowStreak() = 0;
      }
      if (ms.LowStreak() == policy.consecutive_windows) {
        StabilityAlert alert;
        alert.kind = StabilityAlert::Kind::kLowStability;
        alert.window_index = point.window_index;
        alert.stability = point.stability;
        alert.drop = drop;
        RecordAlert(alert.kind);
        alerts.push_back(alert);
        // Re-arm only after recovery: keep the streak saturated so a long
        // low spell raises exactly one alert.
      }
      if (ms.LowStreak() > policy.consecutive_windows) {
        ms.LowStreak() = policy.consecutive_windows;  // saturate
      }
      if (policy.drop_threshold <= 1.0 && ms.HasPrevious() != 0 &&
          drop > policy.drop_threshold) {
        StabilityAlert alert;
        alert.kind = StabilityAlert::Kind::kSharpDrop;
        alert.window_index = point.window_index;
        alert.stability = point.stability;
        alert.drop = drop;
        RecordAlert(alert.kind);
        alerts.push_back(alert);
      }
    }
    ms.LastStability() = point.stability;
    ms.HasPrevious() = 1;
  }
  return alerts;
}

template <typename TrackerState, typename ScorerState, typename MonitorState>
Result<std::vector<StabilityAlert>> MonitorObserve(
    TrackerState& ts, ScorerState& ss, MonitorState& ms,
    const OnlineStabilityScorer::Options& options,
    const MonitorPolicy& policy, const PowCache& pows, retail::Day day,
    std::span<const Symbol> symbols) {
  CHURNLAB_ASSIGN_OR_RETURN(
      const std::vector<StabilityPoint> points,
      ScorerObserve(ts, ss, options, pows, day, symbols));
  return Evaluate(ms, policy, std::span<const StabilityPoint>(points));
}

template <typename TrackerState, typename ScorerState, typename MonitorState>
Result<std::vector<StabilityAlert>> MonitorAdvanceTo(
    TrackerState& ts, ScorerState& ss, MonitorState& ms,
    const OnlineStabilityScorer::Options& options,
    const MonitorPolicy& policy, const PowCache& pows, retail::Day day) {
  CHURNLAB_ASSIGN_OR_RETURN(const std::vector<StabilityPoint> points,
                            ScorerAdvanceTo(ts, ss, options, pows, day));
  return Evaluate(ms, policy, std::span<const StabilityPoint>(points));
}

template <typename TrackerState, typename ScorerState, typename MonitorState>
Result<std::vector<StabilityAlert>> MonitorFinish(
    TrackerState& ts, ScorerState& ss, MonitorState& ms,
    const OnlineStabilityScorer::Options& options,
    const MonitorPolicy& policy, const PowCache& pows) {
  Result<StabilityPoint> point = ScorerFinish(ts, ss, options, pows);
  if (!point.ok()) {
    if (point.status().IsFailedPrecondition()) {
      // Never-fed monitor: nothing to flush, by contract a no-op.
      return std::vector<StabilityAlert>();
    }
    return point.status();
  }
  const StabilityPoint points[] = {*point};
  return Evaluate(ms, policy, std::span<const StabilityPoint>(points));
}

/// The monitor's own debounce fields, appended after the scorer state.
template <typename MonitorState>
void MonitorTailSaveState(MonitorState& ms, BinaryWriter* writer) {
  writer->WriteDouble(ms.LastStability());
  writer->WriteVarint(ms.HasPrevious() != 0 ? 1 : 0);
  writer->WriteVarint(static_cast<uint64_t>(ms.LowStreak()));
}

template <typename MonitorState>
Status MonitorTailLoadState(MonitorState& ms, const MonitorPolicy& policy,
                            BinaryReader* reader) {
  CHURNLAB_ASSIGN_OR_RETURN(ms.LastStability(), reader->ReadDouble());
  CHURNLAB_ASSIGN_OR_RETURN(const uint64_t has_previous, reader->ReadVarint());
  if (has_previous > 1) {
    return Status::OutOfRange("corrupt monitor debounce state");
  }
  ms.HasPrevious() = has_previous == 1 ? 1 : 0;
  CHURNLAB_ASSIGN_OR_RETURN(const uint64_t low_streak, reader->ReadVarint());
  if (low_streak > static_cast<uint64_t>(policy.consecutive_windows)) {
    return Status::OutOfRange("corrupt monitor debounce state");
  }
  ms.LowStreak() = static_cast<int32_t>(low_streak);
  return Status::OK();
}

template <typename TrackerState, typename ScorerState, typename MonitorState>
void MonitorSaveState(TrackerState& ts, ScorerState& ss, MonitorState& ms,
                      BinaryWriter* writer) {
  ScorerSaveState(ts, ss, writer);
  MonitorTailSaveState(ms, writer);
}

template <typename TrackerState, typename ScorerState, typename MonitorState>
Status MonitorLoadState(TrackerState& ts, ScorerState& ss, MonitorState& ms,
                        const MonitorPolicy& policy, BinaryReader* reader) {
  CHURNLAB_RETURN_NOT_OK(ScorerLoadState(ts, ss, reader));
  return MonitorTailLoadState(ms, policy, reader);
}

}  // namespace kernel
}  // namespace core
}  // namespace churnlab

#endif  // CHURNLAB_CORE_STATE_KERNEL_H_
