#ifndef CHURNLAB_CORE_SYMBOL_MAPPER_H_
#define CHURNLAB_CORE_SYMBOL_MAPPER_H_

#include <string>

#include "common/result.h"
#include "core/window.h"
#include "retail/item_dictionary.h"
#include "retail/taxonomy.h"
#include "retail/types.h"

namespace churnlab {
namespace core {

/// \brief Maps purchased ItemIds into the symbol space a model observes.
///
/// - `Granularity::kProduct`: identity mapping; symbols are product ids.
/// - `Granularity::kSegment`: items are abstracted into their taxonomy
///   segment (the paper's setting: 4M products -> 3,388 segments). Items
///   without a segment assignment map to a single reserved "unsegmented"
///   bucket (`num_segments` at construction time) so no purchase is silently
///   dropped; the datagen taxonomy assigns every item, so the bucket stays
///   empty in the reproduction experiments.
///
/// The mapper borrows the taxonomy; the taxonomy must outlive it and not
/// gain segments while mapped symbols are in flight.
class SymbolMapper {
 public:
  /// Builds a mapper. `taxonomy` is required (non-null) for segment
  /// granularity and ignored for product granularity.
  static Result<SymbolMapper> Make(retail::Granularity granularity,
                                   const retail::Taxonomy* taxonomy);

  /// Maps one item. Never returns kInvalidSymbol.
  Symbol Map(retail::ItemId item) const {
    if (granularity_ == retail::Granularity::kProduct) return item;
    const retail::SegmentId segment = taxonomy_->SegmentOf(item);
    return segment == retail::kInvalidSegment ? unsegmented_bucket_ : segment;
  }

  /// Human-readable name of a symbol: the product name at product
  /// granularity, the segment name at segment granularity.
  std::string SymbolName(Symbol symbol,
                         const retail::ItemDictionary& items) const;

  retail::Granularity granularity() const { return granularity_; }

  /// The reserved bucket for unassigned items (segment granularity only).
  Symbol unsegmented_bucket() const { return unsegmented_bucket_; }

 private:
  SymbolMapper(retail::Granularity granularity,
               const retail::Taxonomy* taxonomy, Symbol unsegmented_bucket)
      : granularity_(granularity),
        taxonomy_(taxonomy),
        unsegmented_bucket_(unsegmented_bucket) {}

  retail::Granularity granularity_;
  const retail::Taxonomy* taxonomy_ = nullptr;
  Symbol unsegmented_bucket_ = kInvalidSymbol;
};

}  // namespace core
}  // namespace churnlab

#endif  // CHURNLAB_CORE_SYMBOL_MAPPER_H_
