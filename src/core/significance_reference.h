#ifndef CHURNLAB_CORE_SIGNIFICANCE_REFERENCE_H_
#define CHURNLAB_CORE_SIGNIFICANCE_REFERENCE_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "core/significance.h"
#include "core/window.h"

namespace churnlab {
namespace core {

/// \brief Reference oracle for SignificanceTracker: the original
/// scan-based implementation, kept verbatim behind the same interface.
///
/// TotalSignificance() re-derives the denominator by scanning the whole
/// seen-symbol table and calling ClampedPow per entry — O(seen catalogue)
/// per window, O(windows x catalogue) per customer series. That cost is why
/// the production tracker went incremental; this class exists so property
/// tests (significance_equivalence_test.cc) and benchmarks can pit the
/// O(|u_k|) implementation against the direct formula on arbitrary
/// histories.
///
/// Do not use on hot paths. Semantics are the paper's, identical to
/// SignificanceTracker within floating-point reassociation error.
class ReferenceSignificanceTracker {
 public:
  explicit ReferenceSignificanceTracker(SignificanceOptions options);

  /// Validates options exactly as SignificanceTracker::Make does.
  static Result<ReferenceSignificanceTracker> Make(
      SignificanceOptions options);

  /// S(p, current window). Zero for never-seen symbols.
  double SignificanceOf(Symbol symbol) const;

  /// c(current window) for `symbol`.
  int32_t ContainCount(Symbol symbol) const;

  /// l(current window) for `symbol`; zero for never-seen symbols.
  int32_t MissCount(Symbol symbol) const;

  /// Sum of S(p, current window) over every symbol in I, by scanning the
  /// seen-symbol table.
  double TotalSignificance() const;

  /// Sum of S(p, current window) over `symbols` (sorted; duplicate
  /// neighbours counted once).
  double PresentSignificance(const std::vector<Symbol>& symbols) const;

  /// All symbols with c > 0, ascending.
  std::vector<Symbol> SeenSymbols() const;

  /// Folds window k's symbol set into the counters.
  void AdvanceWindow(const std::vector<Symbol>& window_symbols);

  int32_t windows_seen() const { return windows_seen_; }

  const SignificanceOptions& options() const { return options_; }

 private:
  SignificanceOptions options_;
  std::unordered_map<Symbol, int32_t> contain_counts_;
  /// kEwma only: the running presence average per seen symbol.
  std::unordered_map<Symbol, double> ewma_scores_;
  int32_t windows_seen_ = 0;
};

}  // namespace core
}  // namespace churnlab

#endif  // CHURNLAB_CORE_SIGNIFICANCE_REFERENCE_H_
