#include "core/monitor.h"

#include <sstream>

#include "common/macros.h"
#include "common/string_util.h"
#include "core/state_kernel.h"
#include "obs/metrics.h"

namespace churnlab {
namespace core {
namespace kernel {

void RecordAlert(StabilityAlert::Kind kind) {
  static obs::Counter* const low_stability =
      obs::MetricsRegistry::Global().GetCounter(
          "churnlab.core.alerts_low_stability");
  static obs::Counter* const sharp_drop =
      obs::MetricsRegistry::Global().GetCounter(
          "churnlab.core.alerts_sharp_drop");
  (kind == StabilityAlert::Kind::kLowStability ? low_stability : sharp_drop)
      ->Increment();
}

}  // namespace kernel

std::string StabilityAlert::ToString() const {
  std::ostringstream out;
  out << (kind == Kind::kLowStability ? "LOW_STABILITY" : "SHARP_DROP")
      << " window=" << window_index
      << " stability=" << FormatDouble(stability, 3)
      << " drop=" << FormatDouble(drop, 3);
  return out.str();
}

Result<StabilityMonitor> StabilityMonitor::Make(
    OnlineStabilityScorer::Options options, MonitorPolicy policy) {
  if (policy.beta < 0.0 || policy.beta > 1.0) {
    return Status::InvalidArgument("beta must be in [0, 1]");
  }
  if (policy.consecutive_windows < 1) {
    return Status::InvalidArgument("consecutive_windows must be >= 1");
  }
  if (policy.warmup_windows < 0) {
    return Status::InvalidArgument("warmup_windows must be >= 0");
  }
  CHURNLAB_ASSIGN_OR_RETURN(OnlineStabilityScorer scorer,
                            OnlineStabilityScorer::Make(options));
  return StabilityMonitor(std::move(scorer), policy);
}

Result<std::vector<StabilityAlert>> StabilityMonitor::Observe(
    retail::Day day, const std::vector<Symbol>& symbols) {
  CHURNLAB_ASSIGN_OR_RETURN(const std::vector<StabilityPoint> points,
                            scorer_.Observe(day, symbols));
  return kernel::Evaluate(state_, policy_,
                          std::span<const StabilityPoint>(points));
}

Result<std::vector<StabilityAlert>> StabilityMonitor::AdvanceTo(
    retail::Day day) {
  CHURNLAB_ASSIGN_OR_RETURN(const std::vector<StabilityPoint> points,
                            scorer_.AdvanceTo(day));
  return kernel::Evaluate(state_, policy_,
                          std::span<const StabilityPoint>(points));
}

Result<std::vector<StabilityAlert>> StabilityMonitor::Finish() {
  Result<StabilityPoint> point = scorer_.Finish();
  if (!point.ok()) {
    if (point.status().IsFailedPrecondition()) {
      // Never-fed monitor: nothing to flush, by contract a no-op.
      return std::vector<StabilityAlert>();
    }
    return point.status();
  }
  const StabilityPoint points[] = {*point};
  return kernel::Evaluate(state_, policy_,
                          std::span<const StabilityPoint>(points));
}

void StabilityMonitor::SaveState(BinaryWriter* writer) const {
  scorer_.SaveState(writer);
  kernel::MonitorTailSaveState(
      const_cast<StabilityMonitor*>(this)->state_, writer);
}

Status StabilityMonitor::LoadState(BinaryReader* reader) {
  CHURNLAB_RETURN_NOT_OK(scorer_.LoadState(reader));
  return kernel::MonitorTailLoadState(state_, policy_, reader);
}

}  // namespace core
}  // namespace churnlab
