#include "core/monitor.h"

#include <sstream>

#include "common/macros.h"
#include "common/string_util.h"
#include "obs/metrics.h"

namespace churnlab {
namespace core {

namespace {
void RecordAlert(StabilityAlert::Kind kind) {
  static obs::Counter* const low_stability =
      obs::MetricsRegistry::Global().GetCounter(
          "churnlab.core.alerts_low_stability");
  static obs::Counter* const sharp_drop =
      obs::MetricsRegistry::Global().GetCounter(
          "churnlab.core.alerts_sharp_drop");
  (kind == StabilityAlert::Kind::kLowStability ? low_stability : sharp_drop)
      ->Increment();
}
}  // namespace

std::string StabilityAlert::ToString() const {
  std::ostringstream out;
  out << (kind == Kind::kLowStability ? "LOW_STABILITY" : "SHARP_DROP")
      << " window=" << window_index
      << " stability=" << FormatDouble(stability, 3)
      << " drop=" << FormatDouble(drop, 3);
  return out.str();
}

Result<StabilityMonitor> StabilityMonitor::Make(
    OnlineStabilityScorer::Options options, MonitorPolicy policy) {
  if (policy.beta < 0.0 || policy.beta > 1.0) {
    return Status::InvalidArgument("beta must be in [0, 1]");
  }
  if (policy.consecutive_windows < 1) {
    return Status::InvalidArgument("consecutive_windows must be >= 1");
  }
  if (policy.warmup_windows < 0) {
    return Status::InvalidArgument("warmup_windows must be >= 0");
  }
  CHURNLAB_ASSIGN_OR_RETURN(OnlineStabilityScorer scorer,
                            OnlineStabilityScorer::Make(options));
  return StabilityMonitor(std::move(scorer), policy);
}

std::vector<StabilityAlert> StabilityMonitor::Evaluate(
    const std::vector<StabilityPoint>& points) {
  std::vector<StabilityAlert> alerts;
  for (const StabilityPoint& point : points) {
    const double drop =
        has_previous_ ? last_stability_ - point.stability : 0.0;
    const bool in_warmup = point.window_index < policy_.warmup_windows;

    if (!in_warmup && point.has_history) {
      if (point.stability <= policy_.beta) {
        ++low_streak_;
      } else {
        low_streak_ = 0;
      }
      if (low_streak_ == policy_.consecutive_windows) {
        StabilityAlert alert;
        alert.kind = StabilityAlert::Kind::kLowStability;
        alert.window_index = point.window_index;
        alert.stability = point.stability;
        alert.drop = drop;
        RecordAlert(alert.kind);
        alerts.push_back(alert);
        // Re-arm only after recovery: keep the streak saturated so a long
        // low spell raises exactly one alert.
      }
      if (low_streak_ > policy_.consecutive_windows) {
        low_streak_ = policy_.consecutive_windows;  // saturate
      }
      if (policy_.drop_threshold <= 1.0 && has_previous_ &&
          drop > policy_.drop_threshold) {
        StabilityAlert alert;
        alert.kind = StabilityAlert::Kind::kSharpDrop;
        alert.window_index = point.window_index;
        alert.stability = point.stability;
        alert.drop = drop;
        RecordAlert(alert.kind);
        alerts.push_back(alert);
      }
    }
    last_stability_ = point.stability;
    has_previous_ = true;
  }
  return alerts;
}

Result<std::vector<StabilityAlert>> StabilityMonitor::Observe(
    retail::Day day, const std::vector<Symbol>& symbols) {
  CHURNLAB_ASSIGN_OR_RETURN(const std::vector<StabilityPoint> points,
                            scorer_.Observe(day, symbols));
  return Evaluate(points);
}

Result<std::vector<StabilityAlert>> StabilityMonitor::AdvanceTo(
    retail::Day day) {
  CHURNLAB_ASSIGN_OR_RETURN(const std::vector<StabilityPoint> points,
                            scorer_.AdvanceTo(day));
  return Evaluate(points);
}

Result<std::vector<StabilityAlert>> StabilityMonitor::Finish() {
  Result<StabilityPoint> point = scorer_.Finish();
  if (!point.ok()) {
    if (point.status().IsFailedPrecondition()) {
      // Never-fed monitor: nothing to flush, by contract a no-op.
      return std::vector<StabilityAlert>();
    }
    return point.status();
  }
  return Evaluate({*point});
}

void StabilityMonitor::SaveState(BinaryWriter* writer) const {
  scorer_.SaveState(writer);
  writer->WriteDouble(last_stability_);
  writer->WriteVarint(has_previous_ ? 1 : 0);
  writer->WriteVarint(static_cast<uint64_t>(low_streak_));
}

Status StabilityMonitor::LoadState(BinaryReader* reader) {
  CHURNLAB_RETURN_NOT_OK(scorer_.LoadState(reader));
  CHURNLAB_ASSIGN_OR_RETURN(last_stability_, reader->ReadDouble());
  CHURNLAB_ASSIGN_OR_RETURN(const uint64_t has_previous, reader->ReadVarint());
  if (has_previous > 1) {
    return Status::OutOfRange("corrupt monitor debounce state");
  }
  has_previous_ = has_previous == 1;
  CHURNLAB_ASSIGN_OR_RETURN(const uint64_t low_streak, reader->ReadVarint());
  if (low_streak > static_cast<uint64_t>(policy_.consecutive_windows)) {
    return Status::OutOfRange("corrupt monitor debounce state");
  }
  low_streak_ = static_cast<int32_t>(low_streak);
  return Status::OK();
}

}  // namespace core
}  // namespace churnlab
