#ifndef CHURNLAB_DATAGEN_PROFILES_H_
#define CHURNLAB_DATAGEN_PROFILES_H_

#include <cmath>
#include <cstdint>
#include <vector>

#include "retail/types.h"

namespace churnlab {
namespace datagen {

/// One item a customer habitually buys.
struct RepertoireEntry {
  retail::ItemId item = retail::kInvalidItem;
  /// Probability the item lands in the basket of a given shopping trip.
  double trip_probability = 0.5;
  /// First month the customer buys the item (0 = habitual from the start;
  /// later months model naturally adopted products).
  int32_t adoption_month = 0;
  /// Month index from which the customer stops buying the item; -1 = never.
  /// Loyal customers may carry *natural-turnover* losses here; attrition
  /// injection overlays the defection losses on top (taking the minimum).
  int32_t loss_month = -1;
};

/// Complete behavioural description of a simulated customer. Profiles are
/// pure data: the simulator turns them into receipts, the injector edits
/// loss_month / visit decay, tests can build them by hand.
struct CustomerProfile {
  retail::CustomerId customer = retail::kInvalidCustomer;
  retail::Cohort cohort = retail::Cohort::kUnlabeled;
  /// Ground-truth attrition onset month; -1 for non-defectors.
  int32_t attrition_onset_month = -1;

  /// Mean shopping trips per month (Poisson).
  double visits_per_month = 4.0;
  /// After onset, the visit rate is multiplied by
  /// visit_decay_per_month^(month - onset + 1); 1.0 = no decay.
  double visit_decay_per_month = 1.0;

  /// Pre-onset disengagement: during the `prodrome_months` months before
  /// the onset, the visit rate is multiplied by `prodrome_visit_factor`.
  /// Models the early, weak warning signal that makes forecasting future
  /// defection possible at all.
  int32_t prodrome_months = 0;
  double prodrome_visit_factor = 1.0;

  /// Personal shopping rhythm: the visit rate is multiplied by
  /// 1 + seasonal_amplitude * sin(2*pi*(month + seasonal_phase)/12).
  /// Amplitude 0 disables. Rhythm noise confounds frequency-based churn
  /// signals (RFM) but not content-based ones (stability) — see
  /// bench/ablation_seasonality.
  double seasonal_amplitude = 0.0;
  double seasonal_phase_months = 0.0;

  /// The customer's habitual items.
  std::vector<RepertoireEntry> repertoire;

  /// Mean number of one-off exploration items added per trip (Poisson),
  /// drawn from market-wide popularity.
  double exploration_items_per_trip = 0.5;

  /// Per-month probability that the customer's preferred brand within a
  /// repertoire segment is re-chosen (sticky brand switching: the new brand
  /// persists until the next switch). Invisible at segment granularity; at
  /// product granularity it reads as churn noise — the reason the paper
  /// abstracts products into segments.
  double brand_switch_probability = 0.2;

  /// Multiplicative basket-spend noise sigma (lognormal).
  double spend_noise_sigma = 0.1;

  /// Effective visit rate at `month` given rhythm, prodrome, onset and
  /// decay. Never negative (the seasonal factor is floored at 0).
  double VisitRateAt(int32_t month) const {
    double rate = visits_per_month * SeasonalFactorAt(month);
    if (attrition_onset_month < 0) return rate;
    if (month < attrition_onset_month) {
      if (month >= attrition_onset_month - prodrome_months) {
        rate *= prodrome_visit_factor;
      }
      return rate;
    }
    for (int32_t m = attrition_onset_month; m <= month; ++m) {
      rate *= visit_decay_per_month;
    }
    return rate;
  }

  /// The rhythm multiplier alone.
  double SeasonalFactorAt(int32_t month) const {
    if (seasonal_amplitude == 0.0) return 1.0;
    constexpr double kTwoPi = 6.283185307179586;
    const double factor =
        1.0 + seasonal_amplitude *
                  std::sin(kTwoPi *
                           (static_cast<double>(month) +
                            seasonal_phase_months) /
                           12.0);
    return factor > 0.0 ? factor : 0.0;
  }

  /// True iff repertoire entry `index` is active at `month` (already
  /// adopted, not yet lost).
  bool EntryActiveAt(size_t index, int32_t month) const {
    const RepertoireEntry& entry = repertoire[index];
    return month >= entry.adoption_month &&
           (entry.loss_month < 0 || month < entry.loss_month);
  }
};

}  // namespace datagen
}  // namespace churnlab

#endif  // CHURNLAB_DATAGEN_PROFILES_H_
