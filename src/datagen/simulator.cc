#include "datagen/simulator.h"

#include <algorithm>
#include <cmath>
#include <memory>

#include "common/logging.h"
#include "common/macros.h"

namespace churnlab {
namespace datagen {

Result<retail::Dataset> RetailSimulator::Simulate(
    const Market& market, const std::vector<CustomerProfile>& profiles,
    int32_t num_months, Rng* rng) {
  if (num_months <= 0) {
    return Status::InvalidArgument("num_months must be positive");
  }
  if (profiles.empty()) {
    return Status::InvalidArgument("no customer profiles to simulate");
  }
  for (const CustomerProfile& profile : profiles) {
    for (const RepertoireEntry& entry : profile.repertoire) {
      if (entry.item >= market.num_products()) {
        return Status::InvalidArgument(
            "profile of customer " + std::to_string(profile.customer) +
            " references item " + std::to_string(entry.item) +
            " outside the market");
      }
    }
  }

  retail::Dataset dataset;
  dataset.mutable_items() = market.items;
  dataset.mutable_taxonomy() = market.taxonomy;

  // Global exploration distribution: popularity of an item is its segment's
  // popularity times its within-segment popularity.
  std::vector<double> global_weights(market.num_products(), 0.0);
  for (size_t s = 0; s < market.num_segments(); ++s) {
    for (const retail::ItemId item : market.segment_items[s]) {
      global_weights[item] =
          market.segment_popularity[s] * market.item_popularity[item];
    }
  }
  const DiscreteDistribution exploration_sampler(global_weights);

  // Per-segment samplers for brand switching (built lazily; only segments
  // that actually appear in repertoires are materialised).
  std::vector<std::unique_ptr<DiscreteDistribution>> segment_samplers(
      market.num_segments());
  const auto sample_same_segment = [&](retail::ItemId item,
                                       Rng* rng_ptr) -> retail::ItemId {
    const retail::SegmentId segment = market.taxonomy.SegmentOf(item);
    if (segment == retail::kInvalidSegment) return item;
    const std::vector<retail::ItemId>& segment_items =
        market.segment_items[segment];
    if (segment_items.size() < 2) return item;
    if (segment_samplers[segment] == nullptr) {
      std::vector<double> weights;
      weights.reserve(segment_items.size());
      for (const retail::ItemId candidate : segment_items) {
        weights.push_back(market.item_popularity[candidate]);
      }
      segment_samplers[segment] =
          std::make_unique<DiscreteDistribution>(weights);
    }
    return segment_items[segment_samplers[segment]->Sample(rng_ptr)];
  };

  for (const CustomerProfile& profile : profiles) {
    // Independent stream per customer: profile order cannot perturb other
    // customers' draws.
    Rng customer_rng = rng->Fork();
    // Sticky per-segment brand preference, re-rolled monthly.
    std::vector<retail::ItemId> current_brand;
    current_brand.reserve(profile.repertoire.size());
    for (const RepertoireEntry& entry : profile.repertoire) {
      current_brand.push_back(entry.item);
    }
    for (int32_t month = 0; month < num_months; ++month) {
      for (size_t i = 0; i < current_brand.size(); ++i) {
        if (customer_rng.Bernoulli(profile.brand_switch_probability)) {
          current_brand[i] =
              sample_same_segment(profile.repertoire[i].item, &customer_rng);
        }
      }
      const double rate = profile.VisitRateAt(month);
      const int64_t trips = customer_rng.Poisson(rate);
      for (int64_t trip = 0; trip < trips; ++trip) {
        retail::Receipt receipt;
        receipt.customer = profile.customer;
        receipt.day = retail::MonthToFirstDay(month) +
                      static_cast<retail::Day>(
                          customer_rng.NextUint64(retail::kDaysPerMonth));
        for (size_t i = 0; i < profile.repertoire.size(); ++i) {
          if (!profile.EntryActiveAt(i, month)) continue;
          const RepertoireEntry& entry = profile.repertoire[i];
          if (customer_rng.Bernoulli(entry.trip_probability)) {
            receipt.items.push_back(current_brand[i]);
          }
        }
        const int64_t exploration =
            customer_rng.Poisson(profile.exploration_items_per_trip);
        for (int64_t e = 0; e < exploration; ++e) {
          receipt.items.push_back(static_cast<retail::ItemId>(
              exploration_sampler.Sample(&customer_rng)));
        }
        if (receipt.items.empty()) {
          // A trip always buys something; fall back to one popular item.
          receipt.items.push_back(static_cast<retail::ItemId>(
              exploration_sampler.Sample(&customer_rng)));
        }
        double spend = 0.0;
        for (const retail::ItemId item : receipt.items) {
          spend += market.PriceOf(item);
        }
        spend *= std::exp(
            customer_rng.Normal(0.0, profile.spend_noise_sigma));
        receipt.spend = spend;
        CHURNLAB_RETURN_NOT_OK(dataset.mutable_store().Append(
            std::move(receipt)));
      }
    }
    dataset.SetLabel(profile.customer,
                     {profile.cohort, profile.attrition_onset_month});
  }

  dataset.Finalize();
  CHURNLAB_LOG(Info) << "simulated " << dataset.store().num_receipts()
                     << " receipts for " << profiles.size()
                     << " customers over " << num_months << " months";
  return dataset;
}

}  // namespace datagen
}  // namespace churnlab
