#include "datagen/scenario.h"

#include <string>
#include <vector>

#include "common/macros.h"

namespace churnlab {
namespace datagen {

Result<PaperScenarioOutput> MakePaperScenario(
    const PaperScenarioConfig& config) {
  Rng rng(config.seed);
  PaperScenarioOutput output;
  CHURNLAB_ASSIGN_OR_RETURN(output.market,
                            MarketGenerator::Generate(config.market, &rng));
  CHURNLAB_ASSIGN_OR_RETURN(
      output.profiles,
      PopulationBuilder::Build(config.population, output.market,
                               config.num_months, &rng));
  CHURNLAB_ASSIGN_OR_RETURN(
      output.dataset,
      RetailSimulator::Simulate(output.market, output.profiles,
                                config.num_months, &rng));
  return output;
}

Result<retail::Dataset> MakePaperDataset(const PaperScenarioConfig& config) {
  CHURNLAB_ASSIGN_OR_RETURN(PaperScenarioOutput output,
                            MakePaperScenario(config));
  return std::move(output.dataset);
}

Result<retail::Dataset> MakePaperDataset() {
  return MakePaperDataset(PaperScenarioConfig{});
}

Result<Figure2Scenario> MakeFigure2Scenario(
    const Figure2ScenarioConfig& config) {
  Rng rng(config.seed);
  // A compact market; the named grocery segments come first by
  // construction, so "coffee"/"milk"/"sponge"/"cheese" exist.
  MarketConfig market_config;
  market_config.num_departments = 6;
  market_config.num_segments = 60;
  market_config.num_products = 300;
  CHURNLAB_ASSIGN_OR_RETURN(const Market market,
                            MarketGenerator::Generate(market_config, &rng));

  PopulationConfig population_config;
  population_config.num_loyal = config.num_background_customers;
  population_config.num_defecting = 0;
  population_config.min_repertoire_segments = 10;
  population_config.max_repertoire_segments = 20;

  std::vector<CustomerProfile> profiles;
  if (config.num_background_customers > 0) {
    CHURNLAB_ASSIGN_OR_RETURN(
        profiles, PopulationBuilder::Build(population_config, market,
                                           config.num_months, &rng));
  }

  // The scripted customer. Their habitual basket covers 12 named segments
  // bought with high regularity; the only attrition events are the two the
  // figure annotates.
  CustomerProfile scripted;
  scripted.customer = static_cast<retail::CustomerId>(profiles.size());
  scripted.cohort = retail::Cohort::kDefecting;
  scripted.attrition_onset_month = config.coffee_loss_month;
  scripted.visits_per_month = 5.0;
  scripted.visit_decay_per_month = 1.0;  // content-only attrition
  scripted.exploration_items_per_trip = 0.15;
  scripted.brand_switch_probability = 0.0;  // keep the explanations crisp

  const std::vector<std::string> staple_segments = {
      "coffee", "milk",  "sponge", "cheese", "bread",     "butter",
      "yogurt", "pasta", "rice",   "juice",  "chocolate", "eggs"};
  for (const std::string& segment_name : staple_segments) {
    const retail::SegmentId segment = market.FindSegment(segment_name);
    if (segment == retail::kInvalidSegment ||
        market.segment_items[segment].empty()) {
      return Status::Internal("market is missing staple segment '" +
                              segment_name + "'");
    }
    RepertoireEntry entry;
    entry.item = market.segment_items[segment].front();
    entry.trip_probability = 0.85;
    entry.loss_month = -1;
    if (segment_name == "coffee") entry.loss_month = config.coffee_loss_month;
    if (segment_name == "milk" || segment_name == "sponge" ||
        segment_name == "cheese") {
      entry.loss_month = config.dairy_loss_month;
    }
    scripted.repertoire.push_back(entry);
  }
  profiles.push_back(std::move(scripted));

  Figure2Scenario scenario;
  CHURNLAB_ASSIGN_OR_RETURN(
      scenario.dataset,
      RetailSimulator::Simulate(market, profiles, config.num_months, &rng));
  scenario.customer = static_cast<retail::CustomerId>(profiles.size() - 1);
  return scenario;
}

Result<Figure2Scenario> MakeFigure2Scenario() {
  return MakeFigure2Scenario(Figure2ScenarioConfig{});
}

}  // namespace datagen
}  // namespace churnlab
