#ifndef CHURNLAB_DATAGEN_ATTRITION_H_
#define CHURNLAB_DATAGEN_ATTRITION_H_

#include <cstdint>

#include "common/random.h"
#include "common/result.h"
#include "datagen/profiles.h"

namespace churnlab {
namespace datagen {

/// How a defecting customer's behaviour degrades. Grocery attrition is
/// *partial* (Buckinx & Van den Poel 2005; section 1 of the paper): the
/// customer keeps visiting but progressively stops buying habitual items
/// and comes less often — never a single hard cut-off.
struct AttritionConfig {
  /// Month at which defection starts (the paper's retailer reports month 18
  /// of the 28-month span).
  int32_t onset_month = 18;
  /// Uniform jitter applied to the onset per customer: actual onset is
  /// drawn from [onset_month - jitter, onset_month + jitter].
  int32_t onset_jitter_months = 1;
  /// Per month after onset, each remaining repertoire item is lost with
  /// this probability (geometric loss schedule).
  double item_loss_probability_per_month = 0.18;
  /// Monthly multiplicative decay of the visit rate after onset.
  double visit_decay_per_month = 0.90;
  /// Pre-onset disengagement phase: for this many months before the onset
  /// the visit rate is multiplied by `prodrome_visit_factor` (< 1 = the
  /// customer starts coming slightly less often before the basket content
  /// changes). 0 months disables the prodrome.
  int32_t prodrome_months = 2;
  double prodrome_visit_factor = 0.8;
  /// Smoldering-attrition phase: the customer's most weakly attached
  /// repertoire items (the `early_loss_quantile` fraction with the lowest
  /// trip probability) start their loss clock `early_loss_months` before
  /// the declared onset. The retailer's onset label marks when defection
  /// became obvious; the early content losses are the signal a
  /// forward-looking model can pick up.
  int32_t early_loss_months = 0;  // disabled by default
  double early_loss_quantile = 0.2;
};

/// \brief Applies partial-attrition dynamics to customer profiles.
///
/// For each repertoire entry an independent geometric loss month is drawn:
/// loss_month = onset + Geometric(item_loss_probability). Entries whose
/// sampled month exceeds the horizon keep loss_month = -1 (they survive).
/// The injector also stamps cohort, onset and visit decay onto the profile.
class AttritionInjector {
 public:
  /// Validates the config.
  static Result<AttritionInjector> Make(AttritionConfig config);

  /// Marks `profile` as defecting and injects its loss schedule.
  /// `horizon_months` bounds the simulation; losses beyond it are dropped.
  void Inject(CustomerProfile* profile, int32_t horizon_months,
              Rng* rng) const;

  const AttritionConfig& config() const { return config_; }

 private:
  explicit AttritionInjector(AttritionConfig config) : config_(config) {}

  AttritionConfig config_;
};

}  // namespace datagen
}  // namespace churnlab

#endif  // CHURNLAB_DATAGEN_ATTRITION_H_
