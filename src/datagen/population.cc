#include "datagen/population.h"

#include <algorithm>
#include <unordered_set>

#include "common/macros.h"

namespace churnlab {
namespace datagen {

namespace {
Status ValidateConfig(const PopulationConfig& config, const Market& market) {
  if (config.num_loyal + config.num_defecting == 0) {
    return Status::InvalidArgument("population is empty");
  }
  if (config.mean_visits_per_month <= 0.0) {
    return Status::InvalidArgument("mean_visits_per_month must be > 0");
  }
  if (config.visits_gamma_shape <= 0.0) {
    return Status::InvalidArgument("visits_gamma_shape must be > 0");
  }
  if (config.min_repertoire_segments == 0 ||
      config.min_repertoire_segments > config.max_repertoire_segments) {
    return Status::InvalidArgument(
        "need 0 < min_repertoire_segments <= max_repertoire_segments");
  }
  if (config.max_repertoire_segments > market.num_segments()) {
    return Status::InvalidArgument(
        "max_repertoire_segments exceeds the market's segment count");
  }
  if (config.trip_probability_min <= 0.0 ||
      config.trip_probability_min > config.trip_probability_max ||
      config.trip_probability_max > 1.0) {
    return Status::InvalidArgument(
        "need 0 < trip_probability_min <= trip_probability_max <= 1");
  }
  if (config.exploration_items_per_trip < 0.0) {
    return Status::InvalidArgument("exploration_items_per_trip must be >= 0");
  }
  if (config.brand_switch_probability < 0.0 ||
      config.brand_switch_probability > 1.0) {
    return Status::InvalidArgument(
        "brand_switch_probability must be in [0, 1]");
  }
  if (config.seasonal_amplitude_max < 0.0 ||
      config.seasonal_amplitude_max > 1.0) {
    return Status::InvalidArgument(
        "seasonal_amplitude_max must be in [0, 1]");
  }
  if (config.natural_loss_hazard_per_month < 0.0 ||
      config.natural_loss_hazard_per_month >= 1.0) {
    return Status::InvalidArgument(
        "natural_loss_hazard_per_month must be in [0, 1)");
  }
  if (config.late_adoption_fraction < 0.0 ||
      config.late_adoption_fraction > 1.0) {
    return Status::InvalidArgument(
        "late_adoption_fraction must be in [0, 1]");
  }
  return Status::OK();
}
}  // namespace

Result<CustomerProfile> PopulationBuilder::BuildOne(
    const PopulationConfig& config, const Market& market,
    retail::CustomerId customer, int32_t horizon_months, Rng* rng) {
  CHURNLAB_RETURN_NOT_OK(ValidateConfig(config, market));

  CustomerProfile profile;
  profile.customer = customer;
  profile.cohort = retail::Cohort::kLoyal;
  profile.attrition_onset_month = -1;
  // Gamma(shape, mean/shape) has the configured mean with CV =
  // 1/sqrt(shape); floor at a token rate so nobody is generated inactive.
  profile.visits_per_month = std::max(
      0.5, rng->Gamma(config.visits_gamma_shape,
                      config.mean_visits_per_month /
                          config.visits_gamma_shape));
  profile.exploration_items_per_trip = config.exploration_items_per_trip;
  profile.brand_switch_probability = config.brand_switch_probability;
  profile.spend_noise_sigma = config.spend_noise_sigma;
  if (config.seasonal_amplitude_max > 0.0) {
    profile.seasonal_amplitude =
        rng->UniformDouble(0.0, config.seasonal_amplitude_max);
    profile.seasonal_phase_months = rng->UniformDouble(0.0, 12.0);
  }

  const size_t repertoire_size = static_cast<size_t>(rng->UniformInt(
      static_cast<int64_t>(config.min_repertoire_segments),
      static_cast<int64_t>(config.max_repertoire_segments)));

  const DiscreteDistribution segment_sampler(market.segment_popularity);
  std::unordered_set<retail::SegmentId> adopted;
  adopted.reserve(repertoire_size * 2);
  profile.repertoire.reserve(repertoire_size);
  // Rejection loop over popular segments; bounded because repertoire_size
  // <= num_segments.
  size_t guard = 0;
  const size_t guard_limit = 200 * market.num_segments() + 1000;
  while (adopted.size() < repertoire_size && guard++ < guard_limit) {
    const retail::SegmentId segment =
        static_cast<retail::SegmentId>(segment_sampler.Sample(rng));
    if (!adopted.insert(segment).second) continue;
    const std::vector<retail::ItemId>& items = market.segment_items[segment];
    // Pick the representative product by within-segment popularity.
    std::vector<double> weights;
    weights.reserve(items.size());
    for (const retail::ItemId item : items) {
      weights.push_back(market.item_popularity[item]);
    }
    const DiscreteDistribution item_sampler(weights);
    RepertoireEntry entry;
    entry.item = items[item_sampler.Sample(rng)];
    entry.trip_probability = rng->UniformDouble(config.trip_probability_min,
                                                config.trip_probability_max);
    entry.adoption_month = 0;
    entry.loss_month = -1;
    // Natural turnover: some items are adopted mid-period, some are
    // abandoned for reasons unrelated to defection.
    if (horizon_months > 1 &&
        rng->Bernoulli(config.late_adoption_fraction)) {
      entry.adoption_month =
          static_cast<int32_t>(rng->UniformInt(1, horizon_months - 1));
    }
    if (config.natural_loss_hazard_per_month > 0.0) {
      int32_t month = entry.adoption_month + 1;
      while (month < horizon_months) {
        if (rng->Bernoulli(config.natural_loss_hazard_per_month)) {
          entry.loss_month = month;
          break;
        }
        ++month;
      }
    }
    profile.repertoire.push_back(entry);
  }
  if (adopted.size() < repertoire_size) {
    return Status::Internal(
        "segment adoption did not converge; popularity weights may be "
        "degenerate");
  }
  return profile;
}

Result<std::vector<CustomerProfile>> PopulationBuilder::Build(
    const PopulationConfig& config, const Market& market,
    int32_t horizon_months, Rng* rng) {
  CHURNLAB_RETURN_NOT_OK(ValidateConfig(config, market));
  CHURNLAB_ASSIGN_OR_RETURN(const AttritionInjector injector,
                            AttritionInjector::Make(config.attrition));

  std::vector<CustomerProfile> profiles;
  profiles.reserve(config.num_loyal + config.num_defecting);
  for (size_t i = 0; i < config.num_loyal + config.num_defecting; ++i) {
    CHURNLAB_ASSIGN_OR_RETURN(
        CustomerProfile profile,
        BuildOne(config, market, static_cast<retail::CustomerId>(i),
                 horizon_months, rng));
    if (i >= config.num_loyal) {
      injector.Inject(&profile, horizon_months, rng);
    }
    profiles.push_back(std::move(profile));
  }
  return profiles;
}

}  // namespace datagen
}  // namespace churnlab
