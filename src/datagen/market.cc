#include "datagen/market.h"

#include <algorithm>
#include <cmath>

#include "common/macros.h"

namespace churnlab {
namespace datagen {

const std::vector<std::string>& MarketGenerator::GrocerySegmentNames() {
  static const std::vector<std::string>* const kNames =
      new std::vector<std::string>{
          // The four products of the paper's Figure 2 come first so they are
          // always present, even in tiny test markets.
          "coffee", "milk", "sponge", "cheese",
          "bread", "butter", "yogurt", "eggs", "pasta", "rice",
          "flour", "sugar", "salt", "pepper", "olive-oil", "vinegar",
          "cereal", "jam", "honey", "chocolate", "biscuits", "crackers",
          "chips", "nuts", "apples", "bananas", "oranges", "grapes",
          "tomatoes", "potatoes", "onions", "carrots", "lettuce", "cucumber",
          "beef", "pork", "chicken", "ham", "sausage", "fish",
          "shrimp", "tofu", "beans", "lentils", "soup", "pizza",
          "ice-cream", "frozen-vegetables", "juice", "soda", "water", "beer",
          "wine", "tea", "detergent", "soap", "shampoo", "toothpaste",
          "toilet-paper", "paper-towels", "trash-bags", "dish-soap",
          "cat-food", "dog-food", "diapers", "baby-food",
      };
  return *kNames;
}

retail::SegmentId Market::FindSegment(std::string_view name) const {
  for (retail::SegmentId s = 0;
       s < static_cast<retail::SegmentId>(taxonomy.num_segments()); ++s) {
    if (taxonomy.SegmentNameOrPlaceholder(s) == name) return s;
  }
  return retail::kInvalidSegment;
}

Result<Market> MarketGenerator::Generate(const MarketConfig& config,
                                         Rng* rng) {
  if (config.num_departments == 0 || config.num_segments == 0 ||
      config.num_products == 0) {
    return Status::InvalidArgument(
        "market needs at least one department, segment and product");
  }
  if (config.num_products < config.num_segments) {
    return Status::InvalidArgument(
        "num_products must be >= num_segments so every segment has a "
        "product");
  }
  if (config.segment_zipf_s < 0.0 || config.product_zipf_s < 0.0) {
    return Status::InvalidArgument("zipf exponents must be >= 0");
  }

  Market market;

  for (size_t d = 0; d < config.num_departments; ++d) {
    market.taxonomy.AddDepartment("department-" + std::to_string(d));
  }

  const std::vector<std::string>& grocery_names = GrocerySegmentNames();
  market.segment_items.resize(config.num_segments);
  market.segment_popularity.resize(config.num_segments);
  for (size_t s = 0; s < config.num_segments; ++s) {
    const std::string name = s < grocery_names.size()
                                 ? grocery_names[s]
                                 : "segment-" + std::to_string(s);
    const retail::DepartmentId department =
        static_cast<retail::DepartmentId>(s % config.num_departments);
    CHURNLAB_ASSIGN_OR_RETURN(const retail::SegmentId segment,
                              market.taxonomy.AddSegment(name, department));
    (void)segment;
    // Zipf-like segment popularity: weight ~ 1 / (rank+1)^s, with mild
    // multiplicative noise so popularity is not perfectly rank-ordered.
    const double rank_weight =
        std::pow(1.0 / static_cast<double>(s + 1), config.segment_zipf_s);
    market.segment_popularity[s] =
        rank_weight * std::exp(rng->Normal(0.0, 0.25));
  }

  // Distribute products over segments: every segment gets one product,
  // the remainder go to Zipf-popular segments.
  std::vector<size_t> products_per_segment(config.num_segments, 1);
  {
    const ZipfDistribution segment_zipf(config.num_segments,
                                        config.segment_zipf_s);
    for (size_t extra = config.num_segments; extra < config.num_products;
         ++extra) {
      ++products_per_segment[segment_zipf.Sample(rng)];
    }
  }

  market.item_prices.reserve(config.num_products);
  market.item_popularity.reserve(config.num_products);
  for (size_t s = 0; s < config.num_segments; ++s) {
    const std::string segment_name =
        market.taxonomy.SegmentNameOrPlaceholder(
            static_cast<retail::SegmentId>(s));
    for (size_t p = 0; p < products_per_segment[s]; ++p) {
      const std::string item_name =
          segment_name + "-" + std::to_string(p);
      const retail::ItemId item = market.items.GetOrAdd(item_name);
      CHURNLAB_RETURN_NOT_OK(market.taxonomy.AssignItem(
          item, static_cast<retail::SegmentId>(s)));
      market.segment_items[s].push_back(item);
      market.item_prices.push_back(
          std::exp(rng->Normal(config.price_log_mu, config.price_log_sigma)));
      // Within-segment product popularity follows its own Zipf rank.
      market.item_popularity.push_back(
          std::pow(1.0 / static_cast<double>(p + 1), config.product_zipf_s));
    }
  }

  CHURNLAB_RETURN_NOT_OK(market.taxonomy.Validate());
  return market;
}

}  // namespace datagen
}  // namespace churnlab
