#ifndef CHURNLAB_DATAGEN_MARKET_H_
#define CHURNLAB_DATAGEN_MARKET_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/result.h"
#include "retail/item_dictionary.h"
#include "retail/taxonomy.h"
#include "retail/types.h"

namespace churnlab {
namespace datagen {

/// Shape of the synthetic product catalogue. Defaults are a laptop-scale
/// rendition of the paper's retailer (4M products / 3,388 segments /
/// unspecified departments); the ratios, not the absolute counts, carry the
/// behaviour.
struct MarketConfig {
  size_t num_departments = 12;
  size_t num_segments = 120;
  size_t num_products = 2400;
  /// Zipf skew of segment popularity (how concentrated demand is across
  /// segments) and of product popularity within a segment.
  double segment_zipf_s = 0.8;
  double product_zipf_s = 1.1;
  /// Item prices are lognormal: exp(Normal(mu, sigma)).
  double price_log_mu = 0.8;
  double price_log_sigma = 0.7;
};

/// The generated catalogue: taxonomy + named items + prices + popularity.
///
/// Segment popularity weights drive which segments a customer adopts into
/// their repertoire; product popularity weights pick the representative
/// product inside an adopted segment.
struct Market {
  retail::ItemDictionary items;
  retail::Taxonomy taxonomy;
  /// Price of each item, indexed by ItemId.
  std::vector<double> item_prices;
  /// Unnormalised popularity of each segment, indexed by SegmentId.
  std::vector<double> segment_popularity;
  /// Items of each segment, indexed by SegmentId.
  std::vector<std::vector<retail::ItemId>> segment_items;
  /// Unnormalised popularity of each item within its segment.
  std::vector<double> item_popularity;

  size_t num_products() const { return items.size(); }
  size_t num_segments() const { return taxonomy.num_segments(); }

  /// Price of `item`; 0 for unknown ids.
  double PriceOf(retail::ItemId item) const {
    return item < item_prices.size() ? item_prices[item] : 0.0;
  }

  /// Finds an item by name (kInvalidItem when absent) — used by scripted
  /// scenarios that need "coffee", "milk", etc.
  retail::ItemId FindItem(std::string_view name) const {
    return items.Find(name);
  }

  /// Finds a segment by name, kInvalidSegment when absent.
  retail::SegmentId FindSegment(std::string_view name) const;
};

/// \brief Builds a Market from a MarketConfig.
///
/// Segment names are drawn from a built-in list of real grocery segments
/// ("coffee", "milk", "cheese", "sponge", ...) so that explanations read
/// like the paper's Figure 2; once the list is exhausted names continue as
/// "segment-NNN". Product names are "<segment>-<i>".
class MarketGenerator {
 public:
  /// Generates a market. Deterministic given `rng`'s state.
  static Result<Market> Generate(const MarketConfig& config, Rng* rng);

  /// The built-in grocery segment name list (exposed for tests).
  static const std::vector<std::string>& GrocerySegmentNames();
};

}  // namespace datagen
}  // namespace churnlab

#endif  // CHURNLAB_DATAGEN_MARKET_H_
