#ifndef CHURNLAB_DATAGEN_SCENARIO_H_
#define CHURNLAB_DATAGEN_SCENARIO_H_

#include <cstdint>

#include "common/result.h"
#include "datagen/market.h"
#include "datagen/population.h"
#include "datagen/simulator.h"
#include "retail/dataset.h"

namespace churnlab {
namespace datagen {

/// Preset matching section 3 of the paper at laptop scale: a 28-month
/// observation period (May 2012 - Aug 2014), balanced loyal / defecting
/// cohorts, attrition onset at month 18 (the retailer-reported start of
/// defection in Figure 1), window-friendly 30-day months.
struct PaperScenarioConfig {
  MarketConfig market;
  PopulationConfig population;
  int32_t num_months = 28;
  uint64_t seed = 42;
};

/// Generates the paper-scenario dataset (finalized, labelled).
Result<retail::Dataset> MakePaperDataset(const PaperScenarioConfig& config);
Result<retail::Dataset> MakePaperDataset();

/// Dataset plus the generating ground truth — for experiments that grade
/// model output against what the simulator actually did (e.g. explanation
/// correctness: which items were really lost, when).
struct PaperScenarioOutput {
  retail::Dataset dataset;
  std::vector<CustomerProfile> profiles;
  Market market;
};

Result<PaperScenarioOutput> MakePaperScenario(
    const PaperScenarioConfig& config);

/// The Figure-2 case study: a single scripted defecting customer who buys a
/// steady 12-segment basket, stops buying *coffee* at month 20 and loses
/// *milk*, *sponge* and *cheese* at month 22, with no visit-rate decay (so
/// every stability drop is attributable to basket content, as in the
/// figure). A handful of loyal background customers are included so the
/// dataset is not degenerate.
struct Figure2ScenarioConfig {
  uint64_t seed = 7;
  int32_t num_months = 28;
  /// With 2-month windows reported at their end month, a loss during
  /// months [18, 20) surfaces as the month-20 stability drop — exactly the
  /// paper's "the decrease in month 20 [links] to the fact that the
  /// customer stopped buying coffee during this window".
  int32_t coffee_loss_month = 18;
  int32_t dairy_loss_month = 20;
  size_t num_background_customers = 8;
};

struct Figure2Scenario {
  retail::Dataset dataset;
  /// Id of the scripted defecting customer.
  retail::CustomerId customer = retail::kInvalidCustomer;
};

Result<Figure2Scenario> MakeFigure2Scenario(
    const Figure2ScenarioConfig& config);
Result<Figure2Scenario> MakeFigure2Scenario();

}  // namespace datagen
}  // namespace churnlab

#endif  // CHURNLAB_DATAGEN_SCENARIO_H_
