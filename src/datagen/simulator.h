#ifndef CHURNLAB_DATAGEN_SIMULATOR_H_
#define CHURNLAB_DATAGEN_SIMULATOR_H_

#include <cstdint>
#include <vector>

#include "common/random.h"
#include "common/result.h"
#include "datagen/market.h"
#include "datagen/profiles.h"
#include "retail/dataset.h"

namespace churnlab {
namespace datagen {

/// \brief Turns a market and a set of customer profiles into a timestamped
/// receipt Dataset — the synthetic stand-in for the paper's retailer data.
///
/// For each customer and month, the number of shopping trips is Poisson
/// with the profile's (possibly decayed) visit rate; each trip's basket is
/// the active repertoire filtered by per-item trip probabilities plus
/// Poisson exploration items drawn from market popularity; spend is the sum
/// of item prices with lognormal noise. Ground-truth cohort labels from the
/// profiles are stamped onto the dataset. Fully deterministic given the
/// Rng.
class RetailSimulator {
 public:
  /// Simulates `num_months` months. The market's dictionary and taxonomy
  /// are copied into the returned (finalized) dataset.
  static Result<retail::Dataset> Simulate(
      const Market& market, const std::vector<CustomerProfile>& profiles,
      int32_t num_months, Rng* rng);
};

}  // namespace datagen
}  // namespace churnlab

#endif  // CHURNLAB_DATAGEN_SIMULATOR_H_
