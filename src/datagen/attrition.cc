#include "datagen/attrition.h"

#include <algorithm>

namespace churnlab {
namespace datagen {

Result<AttritionInjector> AttritionInjector::Make(AttritionConfig config) {
  if (config.onset_month < 0) {
    return Status::InvalidArgument("onset_month must be >= 0");
  }
  if (config.onset_jitter_months < 0) {
    return Status::InvalidArgument("onset_jitter_months must be >= 0");
  }
  if (config.item_loss_probability_per_month <= 0.0 ||
      config.item_loss_probability_per_month > 1.0) {
    return Status::InvalidArgument(
        "item_loss_probability_per_month must be in (0, 1]");
  }
  if (config.visit_decay_per_month <= 0.0 ||
      config.visit_decay_per_month > 1.0) {
    return Status::InvalidArgument("visit_decay_per_month must be in (0, 1]");
  }
  if (config.prodrome_months < 0) {
    return Status::InvalidArgument("prodrome_months must be >= 0");
  }
  if (config.prodrome_visit_factor <= 0.0 ||
      config.prodrome_visit_factor > 1.0) {
    return Status::InvalidArgument(
        "prodrome_visit_factor must be in (0, 1]");
  }
  if (config.early_loss_months < 0) {
    return Status::InvalidArgument("early_loss_months must be >= 0");
  }
  if (config.early_loss_quantile < 0.0 || config.early_loss_quantile > 1.0) {
    return Status::InvalidArgument("early_loss_quantile must be in [0, 1]");
  }
  return AttritionInjector(config);
}

void AttritionInjector::Inject(CustomerProfile* profile,
                               int32_t horizon_months, Rng* rng) const {
  const int32_t onset = std::max<int32_t>(
      0, static_cast<int32_t>(rng->UniformInt(
             config_.onset_month - config_.onset_jitter_months,
             config_.onset_month + config_.onset_jitter_months)));
  profile->cohort = retail::Cohort::kDefecting;
  profile->attrition_onset_month = onset;
  profile->visit_decay_per_month = config_.visit_decay_per_month;
  profile->prodrome_months = config_.prodrome_months;
  profile->prodrome_visit_factor = config_.prodrome_visit_factor;

  // Weakly attached items (lowest trip probabilities) begin losing ground
  // before the declared onset.
  double early_loss_threshold = 0.0;
  if (config_.early_loss_quantile > 0.0 && !profile->repertoire.empty()) {
    std::vector<double> probabilities;
    probabilities.reserve(profile->repertoire.size());
    for (const RepertoireEntry& entry : profile->repertoire) {
      probabilities.push_back(entry.trip_probability);
    }
    std::sort(probabilities.begin(), probabilities.end());
    const size_t index = std::min(
        probabilities.size() - 1,
        static_cast<size_t>(config_.early_loss_quantile *
                            static_cast<double>(probabilities.size())));
    early_loss_threshold = probabilities[index];
  }

  for (RepertoireEntry& entry : profile->repertoire) {
    const bool early =
        config_.early_loss_quantile > 0.0 &&
        entry.trip_probability <= early_loss_threshold;
    const int32_t clock_start =
        early ? std::max(0, onset - config_.early_loss_months) : onset;
    // Geometric number of whole months the item survives past the start of
    // its loss clock. An item lost "at" month m disappears from baskets
    // from month m onwards.
    int32_t survived = 0;
    while (!rng->Bernoulli(config_.item_loss_probability_per_month)) {
      ++survived;
      if (clock_start + survived >= horizon_months) break;
    }
    int32_t loss_month = clock_start + survived;
    if (loss_month >= horizon_months) loss_month = -1;
    // Overlay on any natural-turnover loss already present: whichever
    // abandonment comes first wins.
    if (entry.loss_month >= 0 &&
        (loss_month < 0 || entry.loss_month < loss_month)) {
      loss_month = entry.loss_month;
    }
    entry.loss_month = loss_month;
  }
}

}  // namespace datagen
}  // namespace churnlab
