#ifndef CHURNLAB_DATAGEN_POPULATION_H_
#define CHURNLAB_DATAGEN_POPULATION_H_

#include <vector>

#include "common/random.h"
#include "common/result.h"
#include "datagen/attrition.h"
#include "datagen/market.h"
#include "datagen/profiles.h"

namespace churnlab {
namespace datagen {

/// Shape of the simulated customer base. The paper's cohorts — loyal
/// customers and loyal customers that defected in the last six months —
/// are generated directly, with the defectors produced by applying
/// AttritionInjector to otherwise-loyal profiles (defectors *were* loyal
/// before the onset, which is exactly the paper's setting).
struct PopulationConfig {
  size_t num_loyal = 1500;
  size_t num_defecting = 1500;

  /// Customer visit rates are Gamma-heterogeneous around this mean.
  double mean_visits_per_month = 4.0;
  double visits_gamma_shape = 6.0;

  /// Habitual repertoire: number of segments adopted per customer.
  size_t min_repertoire_segments = 12;
  size_t max_repertoire_segments = 40;

  /// Per-trip purchase probability of a repertoire item (uniform range).
  double trip_probability_min = 0.25;
  double trip_probability_max = 0.90;

  /// Mean one-off exploration items per trip.
  double exploration_items_per_trip = 0.6;

  /// Per-purchase probability of substituting a same-segment product
  /// (brand switching).
  double brand_switch_probability = 0.2;

  /// Per-customer shopping-rhythm noise: each customer's seasonal
  /// amplitude is uniform in [0, seasonal_amplitude_max] with a uniform
  /// random phase. 0 disables (the default; the paper's scenario has no
  /// stated seasonality).
  double seasonal_amplitude_max = 0.0;

  /// Natural repertoire turnover, applied to *every* customer (loyal ones
  /// included): per month, each habitual item is abandoned with this hazard
  /// (tastes change even without defection). This is what keeps loyal
  /// customers' stability below a perfect 1.0 and makes detection around
  /// the onset non-trivial, as in real data.
  double natural_loss_hazard_per_month = 0.015;
  /// Fraction of a customer's repertoire that is adopted after the start of
  /// the observation period (uniform adoption month) instead of being
  /// habitual from day one.
  double late_adoption_fraction = 0.2;

  /// Lognormal sigma of basket spend noise.
  double spend_noise_sigma = 0.1;

  /// Defection dynamics (applies to the defecting cohort only).
  AttritionConfig attrition;
};

/// \brief Generates customer profiles over a market.
///
/// Each customer adopts a random number of popular segments; inside each
/// adopted segment the representative product is drawn by within-segment
/// popularity. Defecting customers get an attrition schedule injected.
class PopulationBuilder {
 public:
  /// Builds num_loyal + num_defecting profiles with customer ids
  /// 0..n-1 (loyal first). Deterministic given `rng`.
  static Result<std::vector<CustomerProfile>> Build(
      const PopulationConfig& config, const Market& market,
      int32_t horizon_months, Rng* rng);

  /// Builds a single (loyal) profile, including natural repertoire
  /// turnover within `horizon_months`; the building block of Build and of
  /// scripted scenarios.
  static Result<CustomerProfile> BuildOne(const PopulationConfig& config,
                                          const Market& market,
                                          retail::CustomerId customer,
                                          int32_t horizon_months, Rng* rng);
};

}  // namespace datagen
}  // namespace churnlab

#endif  // CHURNLAB_DATAGEN_POPULATION_H_
