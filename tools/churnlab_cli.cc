// churnlab — command-line front end for the library.
//
// Subcommands:
//   simulate      generate a synthetic retail dataset and save it
//   stats         print dataset statistics
//   score         compute per-customer stability scores (CSV out)
//   explain       per-window stability walk-through for one customer
//   profile       a customer's ranked significant-product table
//   evaluate      stability vs RFM detection AUROC by month
//   forecast      out-of-fold AUROC of future-defection prediction
//   gridsearch    5-fold CV search over (window span, alpha)
//   serve-replay  replay a dataset through the sharded scoring fleet
//   serve-http    run the HTTP/1.1 scoring front end over a fleet
//   flood         stream a dataset into a running serve-http sequentially
//
// Datasets are addressed by path: `x.clb` loads the binary format, any
// other value is treated as a CSV prefix (x.receipts.csv / x.taxonomy.csv /
// x.labels.csv).
//
// Everything model-facing goes through the churnlab::api facade
// (src/churnlab.h); only flag parsing, logging and telemetry plumbing come
// from elsewhere.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "churnlab.h"
#include "common/flags.h"
#include "common/logging.h"
#include "common/macros.h"
#include "common/stopwatch.h"
#include "common/string_util.h"
#include "obs/export.h"
#include "obs/fault_obs.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/prometheus.h"
#include "obs/snapshot.h"
#include "obs/structured_log.h"
#include "obs/trace.h"

namespace churnlab {
namespace {

Result<api::Dataset> LoadDataset(const std::string& path) {
  if (path.empty()) {
    return Status::InvalidArgument("--data is required");
  }
  return api::LoadDataset(path);
}

Status RunSimulate(int argc, const char* const* argv) {
  FlagParser parser("churnlab simulate: generate a synthetic dataset");
  std::string out;
  uint64_t loyal, defecting, seed;
  int64_t months, onset;
  bool csv;
  parser.AddString("out", "", "output path (.clb) or CSV prefix with --csv",
                   &out);
  parser.AddUint64("loyal", 1000, "loyal customers", &loyal);
  parser.AddUint64("defecting", 1000, "defecting customers", &defecting);
  parser.AddInt64("months", 28, "observation months", &months);
  parser.AddInt64("onset", 18, "attrition onset month", &onset);
  parser.AddUint64("seed", 42, "simulation seed", &seed);
  parser.AddBool("csv", false, "write CSV files instead of binary", &csv);
  CHURNLAB_RETURN_NOT_OK(parser.Parse(argc, argv, 2));
  if (out.empty()) return Status::InvalidArgument("--out is required");

  api::ScenarioConfig config;
  config.population.num_loyal = loyal;
  config.population.num_defecting = defecting;
  config.num_months = static_cast<int32_t>(months);
  config.population.attrition.onset_month = static_cast<int32_t>(onset);
  config.seed = seed;
  CHURNLAB_ASSIGN_OR_RETURN(const api::Dataset dataset,
                            api::MakeScenario(config));
  if (csv) {
    CHURNLAB_RETURN_NOT_OK(dataset.SaveCsv(out));
    std::printf("wrote %s.{receipts,taxonomy,labels}.csv\n", out.c_str());
  } else {
    CHURNLAB_RETURN_NOT_OK(dataset.SaveBinary(out));
    std::printf("wrote %s\n", out.c_str());
  }
  std::printf("%s", dataset.ComputeStats().ToString().c_str());
  return Status::OK();
}

Status RunStats(int argc, const char* const* argv) {
  FlagParser parser("churnlab stats: print dataset statistics");
  std::string data;
  parser.AddString("data", "", "dataset path (.clb) or CSV prefix", &data);
  CHURNLAB_RETURN_NOT_OK(parser.Parse(argc, argv, 2));
  CHURNLAB_ASSIGN_OR_RETURN(const api::Dataset dataset, LoadDataset(data));
  std::printf("%s", dataset.ComputeStats().ToString().c_str());
  return Status::OK();
}

Status RunScore(int argc, const char* const* argv) {
  FlagParser parser("churnlab score: per-customer stability scores");
  std::string data, out;
  double alpha;
  int64_t window;
  uint64_t threads;
  bool products;
  parser.AddString("data", "", "dataset path (.clb) or CSV prefix", &data);
  parser.AddString("out", "", "output CSV (stdout summary if empty)", &out);
  parser.AddDouble("alpha", 2.0, "significance alpha", &alpha);
  parser.AddInt64("window", 2, "window span in months", &window);
  parser.AddUint64("threads", 1, "worker threads (same output for any count)",
                   &threads);
  parser.AddBool("products", false,
                 "observe raw products instead of taxonomy segments",
                 &products);
  CHURNLAB_RETURN_NOT_OK(parser.Parse(argc, argv, 2));
  CHURNLAB_ASSIGN_OR_RETURN(const api::Dataset dataset, LoadDataset(data));

  api::ScorerOptions options;
  options.significance.alpha = alpha;
  options.window_span_months = static_cast<int32_t>(window);
  options.num_threads = static_cast<size_t>(threads);
  options.granularity = products ? api::Granularity::kProduct
                                 : api::Granularity::kSegment;
  CHURNLAB_ASSIGN_OR_RETURN(const api::ScorerHandle scorer,
                            api::ScorerHandle::Make(options));
  CHURNLAB_ASSIGN_OR_RETURN(const api::ScoreMatrix scores,
                            scorer.ScoreDataset(dataset));

  if (out.empty()) {
    std::printf("scored %zu customers x %d windows (alpha=%.2f, w=%lld)\n",
                scores.num_rows(), scores.num_windows(), alpha,
                static_cast<long long>(window));
  } else {
    CHURNLAB_RETURN_NOT_OK(scores.SaveCsv(out));
    std::printf("wrote %s\n", out.c_str());
  }
  return Status::OK();
}

Status RunExplain(int argc, const char* const* argv) {
  FlagParser parser("churnlab explain: per-window analysis of one customer");
  std::string data;
  uint64_t customer;
  double alpha;
  int64_t window, top;
  parser.AddString("data", "", "dataset path (.clb) or CSV prefix", &data);
  parser.AddUint64("customer", 0, "customer id", &customer);
  parser.AddDouble("alpha", 2.0, "significance alpha", &alpha);
  parser.AddInt64("window", 2, "window span in months", &window);
  parser.AddInt64("top", 5, "missing products listed per window", &top);
  CHURNLAB_RETURN_NOT_OK(parser.Parse(argc, argv, 2));
  CHURNLAB_ASSIGN_OR_RETURN(const api::Dataset dataset, LoadDataset(data));

  api::ScorerOptions options;
  options.significance.alpha = alpha;
  options.window_span_months = static_cast<int32_t>(window);
  options.explanation.top_k = static_cast<size_t>(top);
  CHURNLAB_ASSIGN_OR_RETURN(const api::ScorerHandle scorer,
                            api::ScorerHandle::Make(options));
  CHURNLAB_ASSIGN_OR_RETURN(
      const api::CustomerReport report,
      scorer.AnalyzeCustomer(dataset,
                             static_cast<api::CustomerId>(customer)));
  std::printf("%s", report.ToString().c_str());
  return Status::OK();
}

Status RunProfile(int argc, const char* const* argv) {
  FlagParser parser(
      "churnlab profile: a customer's significant-product table");
  std::string data;
  uint64_t customer;
  double alpha;
  int64_t window_span, window, top;
  parser.AddString("data", "", "dataset path (.clb) or CSV prefix", &data);
  parser.AddUint64("customer", 0, "customer id", &customer);
  parser.AddDouble("alpha", 2.0, "significance alpha", &alpha);
  parser.AddInt64("window", 2, "window span in months", &window_span);
  parser.AddInt64("at", -1, "window index to profile (-1 = last)", &window);
  parser.AddInt64("top", 15, "products listed", &top);
  CHURNLAB_RETURN_NOT_OK(parser.Parse(argc, argv, 2));
  CHURNLAB_ASSIGN_OR_RETURN(const api::Dataset dataset, LoadDataset(data));

  api::ScorerOptions options;
  options.significance.alpha = alpha;
  options.window_span_months = static_cast<int32_t>(window_span);
  CHURNLAB_ASSIGN_OR_RETURN(const api::ScorerHandle scorer,
                            api::ScorerHandle::Make(options));
  CHURNLAB_ASSIGN_OR_RETURN(
      const api::SignificanceProfile profile,
      scorer.ProfileCustomer(dataset, static_cast<api::CustomerId>(customer),
                             static_cast<int32_t>(window)));
  std::printf("customer %u, window %d (months [%lld, %lld))\n",
              profile.customer, profile.window_index,
              static_cast<long long>(profile.window_index * window_span),
              static_cast<long long>((profile.window_index + 1) *
                                     window_span));
  api::TextTable table(
      {"product", "bought/missed windows", "significance", "share", ""});
  int64_t listed = 0;
  for (const auto& product : profile.products) {
    if (listed++ >= top) break;
    table.AddRow({product.name,
                  std::to_string(product.contain_count) + "/" +
                      std::to_string(product.miss_count),
                  FormatDouble(product.significance, 3),
                  FormatDouble(product.significance_share, 3),
                  product.present_in_window ? "" : "<- missing now"});
  }
  std::printf("%s", table.ToString().c_str());
  return Status::OK();
}

Status RunEvaluate(int argc, const char* const* argv) {
  FlagParser parser(
      "churnlab evaluate: stability vs RFM detection AUROC by month");
  std::string data;
  double alpha;
  int64_t window, first_month, last_month;
  uint64_t threads;
  parser.AddString("data", "", "dataset path (.clb) or CSV prefix", &data);
  parser.AddDouble("alpha", 2.0, "significance alpha", &alpha);
  parser.AddInt64("window", 2, "window span in months", &window);
  parser.AddInt64("first_month", 2, "first report month", &first_month);
  parser.AddInt64("last_month", 1000, "last report month", &last_month);
  parser.AddUint64("threads", 1, "worker threads (same output for any count)",
                   &threads);
  CHURNLAB_RETURN_NOT_OK(parser.Parse(argc, argv, 2));
  CHURNLAB_ASSIGN_OR_RETURN(const api::Dataset dataset, LoadDataset(data));

  api::Figure1Options options;
  options.stability.significance.alpha = alpha;
  options.stability.window_span_months = static_cast<int32_t>(window);
  options.stability.num_threads = static_cast<size_t>(threads);
  options.rfm.features.window_span_months = static_cast<int32_t>(window);
  options.first_report_month = static_cast<int32_t>(first_month);
  options.last_report_month = static_cast<int32_t>(last_month);
  CHURNLAB_ASSIGN_OR_RETURN(
      const api::EvalRunner runner,
      api::EvalRunner::Make({static_cast<size_t>(threads)}));
  CHURNLAB_ASSIGN_OR_RETURN(const api::Figure1Result result,
                            runner.Figure1(dataset, options));
  api::TextTable table({"month", "stability AUROC", "RFM AUROC"});
  for (const auto& row : result.rows) {
    table.AddRow({std::to_string(row.report_month),
                  FormatDouble(row.stability_auroc, 3),
                  FormatDouble(row.rfm_auroc, 3)});
  }
  std::printf("%s", table.ToString().c_str());
  return Status::OK();
}

Status RunForecast(int argc, const char* const* argv) {
  FlagParser parser(
      "churnlab forecast: predict which customers defect in the next months");
  std::string data;
  int64_t decision, horizon;
  parser.AddString("data", "", "dataset path (.clb) or CSV prefix", &data);
  parser.AddInt64("decision", 16, "decision month (data visible through it)",
                  &decision);
  parser.AddInt64("horizon", 6, "forecast horizon in months", &horizon);
  CHURNLAB_RETURN_NOT_OK(parser.Parse(argc, argv, 2));
  CHURNLAB_ASSIGN_OR_RETURN(const api::Dataset dataset, LoadDataset(data));

  api::ForecastOptions options;
  options.decision_month = static_cast<int32_t>(decision);
  options.horizon_months = static_cast<int32_t>(horizon);
  CHURNLAB_ASSIGN_OR_RETURN(const api::EvalRunner runner,
                            api::EvalRunner::Make());
  CHURNLAB_ASSIGN_OR_RETURN(const api::ForecastResult result,
                            runner.Forecast(dataset, options));
  std::printf("decision month %lld, horizon %lld months\n",
              static_cast<long long>(decision),
              static_cast<long long>(horizon));
  std::printf("future defectors: %zu  loyal: %zu  already defecting "
              "(excluded): %zu\n",
              result.num_future_defectors, result.num_loyal,
              result.num_already_defecting);
  std::printf("out-of-fold AUROC: %.3f\n", result.auroc);
  api::TextTable table({"lead (months)", "AUROC", "defectors"});
  for (const auto& bucket : result.by_lead) {
    table.AddRow({std::to_string(bucket.lead_months),
                  bucket.auroc < 0.0 ? "-" : FormatDouble(bucket.auroc, 3),
                  std::to_string(bucket.num_defectors)});
  }
  std::printf("%s", table.ToString().c_str());
  return Status::OK();
}

Status RunGridSearch(int argc, const char* const* argv) {
  FlagParser parser(
      "churnlab gridsearch: 5-fold CV over (window span, alpha)");
  std::string data;
  int64_t onset;
  uint64_t threads;
  parser.AddString("data", "", "dataset path (.clb) or CSV prefix", &data);
  parser.AddInt64("onset", 18, "attrition onset month (objective anchor)",
                  &onset);
  parser.AddUint64("threads", 1, "worker threads (same output for any count)",
                   &threads);
  CHURNLAB_RETURN_NOT_OK(parser.Parse(argc, argv, 2));
  CHURNLAB_ASSIGN_OR_RETURN(const api::Dataset dataset, LoadDataset(data));

  api::GridSearchOptions options;
  options.onset_month = static_cast<int32_t>(onset);
  CHURNLAB_ASSIGN_OR_RETURN(
      const api::EvalRunner runner,
      api::EvalRunner::Make({static_cast<size_t>(threads)}));
  CHURNLAB_ASSIGN_OR_RETURN(const api::GridSearchResult result,
                            runner.GridSearch(dataset, options));
  api::TextTable table({"window (months)", "alpha", "mean AUROC", "std"});
  for (const auto& cell : result.cells) {
    table.AddRow({std::to_string(cell.window_span_months),
                  FormatDouble(cell.alpha, 2),
                  FormatDouble(cell.mean_auroc, 3),
                  FormatDouble(cell.std_auroc, 3)});
  }
  std::printf("%s", table.ToString().c_str());
  std::printf("selected: window=%d months, alpha=%.2f\n",
              result.best.window_span_months, result.best.alpha);
  return Status::OK();
}

Status RunServeReplay(int argc, const char* const* argv) {
  FlagParser parser(
      "churnlab serve-replay: replay a dataset through the scoring fleet "
      "in day-ordered batches");
  std::string data, snapshot_out, resume, failpoints, state_layout, recover;
  double alpha, beta;
  int64_t window, batch_days, from_day, to_day, max_shard_retries;
  int64_t mem_budget_mb, limit_receipts;
  uint64_t threads, shards;
  bool products, finish;
  parser.AddString("data", "", "dataset path (.clb) or CSV prefix", &data);
  parser.AddDouble("alpha", 2.0, "significance alpha", &alpha);
  parser.AddDouble("beta", 0.6, "low-stability alert threshold", &beta);
  parser.AddInt64("window", 2, "window span in months", &window);
  parser.AddInt64("batch-days", 7, "days of receipts per ingested batch",
                  &batch_days);
  parser.AddUint64("threads", 1, "worker threads (same output for any count)",
                   &threads);
  parser.AddUint64("shards", 16, "state-store shards", &shards);
  parser.AddBool("products", false,
                 "observe raw products instead of taxonomy segments",
                 &products);
  parser.AddString("snapshot-out", "",
                   "write a fleet snapshot here after the replay", &snapshot_out);
  parser.AddString("resume", "",
                   "restore the fleet from this snapshot before replaying",
                   &resume);
  parser.AddString("recover", "",
                   "crash recovery: replay this journal directory "
                   "(read-only) atop the checkpointed generation named in "
                   "--resume's snapshot file before replaying any --data "
                   "receipts; see docs/ROBUSTNESS.md §Durability",
                   &recover);
  parser.AddInt64("limit-receipts", -1,
                  "replay only the first N receipts of the day-ordered "
                  "stream (-1 = all, 0 = none); an offline oracle for a "
                  "server's state after its Nth arrival sequence number",
                  &limit_receipts);
  parser.AddInt64("from-day", 0,
                  "replay only receipts on or after this day (for resuming "
                  "a mid-stream snapshot)",
                  &from_day);
  parser.AddInt64("to-day", -1,
                  "replay only receipts before this day (-1 = end of data); "
                  "combine with --snapshot-out for a mid-stream snapshot",
                  &to_day);
  parser.AddBool("finish", true,
                 "flush in-progress windows at end of stream (disable when "
                 "snapshotting mid-stream for a later --resume)",
                 &finish);
  parser.AddString("failpoints", "",
                   "fault-injection spec, e.g. "
                   "'serve.ingest.receipt=throw@every(1000)' "
                   "(docs/ROBUSTNESS.md)",
                   &failpoints);
  parser.AddInt64("max-shard-retries", 2,
                  "retries per failed shard task before the shard is "
                  "poisoned",
                  &max_shard_retries);
  parser.AddString("state-layout", "compact",
                   "customer-state storage: compact (SoA + arena) or heap "
                   "(one monitor object per customer); output is identical "
                   "either way",
                   &state_layout);
  parser.AddInt64("mem-budget-mb", 0,
                  "soft budget for fleet state bytes: when exceeded, a "
                  "warning is logged and a memory summary printed (0 = "
                  "no budget, no memory reporting)",
                  &mem_budget_mb);
  CHURNLAB_RETURN_NOT_OK(parser.Parse(argc, argv, 2));
  if (batch_days <= 0) {
    return Status::InvalidArgument("--batch-days must be positive");
  }
  if (to_day >= 0 && to_day <= from_day) {
    return Status::InvalidArgument("--to-day must be greater than --from-day");
  }
  if (max_shard_retries < 0) {
    return Status::InvalidArgument("--max-shard-retries must be >= 0");
  }
  if (mem_budget_mb < 0) {
    return Status::InvalidArgument("--mem-budget-mb must be >= 0");
  }
  if (limit_receipts < -1) {
    return Status::InvalidArgument("--limit-receipts must be >= -1");
  }
  if (!recover.empty() && resume.empty()) {
    return Status::InvalidArgument(
        "--recover requires --resume (the snapshot file the journal's "
        "checkpoints name generations in)");
  }
  if (!failpoints.empty()) {
    CHURNLAB_RETURN_NOT_OK(
        api::FailpointRegistry::Global().ArmFromSpec(failpoints));
  }
  CHURNLAB_ASSIGN_OR_RETURN(const api::Dataset dataset, LoadDataset(data));

  api::FleetOptions options;
  options.scorer.significance.alpha = alpha;
  options.scorer.window_span_days =
      static_cast<api::Day>(window) * api::kDaysPerMonth;
  options.policy.beta = beta;
  options.num_shards = static_cast<size_t>(shards);
  options.num_threads = static_cast<size_t>(threads);
  options.granularity = products ? api::Granularity::kProduct
                                 : api::Granularity::kSegment;
  options.shard_retry.max_retries = static_cast<int>(max_shard_retries);
  CHURNLAB_ASSIGN_OR_RETURN(options.layout,
                            api::ParseStateLayout(state_layout));

  Result<api::FleetHandle> fleet = Status::Internal("fleet not built");
  if (!recover.empty()) {
    // Crash recovery: checkpointed generation + journal frames above the
    // watermark, byte-identical to the crashed server's post-replay state.
    Result<api::RecoveredFleet> recovered = api::RecoverFleet(
        recover, resume, options, dataset, static_cast<size_t>(threads),
        options.layout);
    CHURNLAB_RETURN_NOT_OK(recovered.status());
    std::printf("recovered journal %s: watermark=%llu frames=%zu "
                "receipts=%llu discarded-tail-frames=%zu "
                "next-sequence=%llu\n",
                recover.c_str(),
                static_cast<unsigned long long>(
                    recovered->recovery.watermark),
                recovered->recovery.frames_scanned,
                static_cast<unsigned long long>(
                    recovered->recovery.next_sequence -
                    recovered->recovery.watermark),
                recovered->recovery.discarded_tail_frames,
                static_cast<unsigned long long>(
                    recovered->recovery.next_sequence));
    fleet = std::move(recovered->fleet);
  } else if (resume.empty()) {
    fleet = api::FleetHandle::Make(options, dataset);
  } else {
    // --resume shares api::OpenSnapshot with serve-http, so a corrupt tail
    // generation falls back (and is reported) identically in both paths.
    fleet = api::OpenSnapshot(resume, dataset, static_cast<size_t>(threads),
                              options.layout);
  }
  CHURNLAB_RETURN_NOT_OK(fleet.status());

  // Day-ordered replay. AllReceipts is (customer, day)-sorted; the stable
  // sort by day keeps each customer's receipts chronological.
  const std::span<const api::Receipt> all = dataset.store().AllReceipts();
  std::vector<api::Receipt> replay;
  replay.reserve(all.size());
  for (const api::Receipt& receipt : all) {
    if (receipt.day < from_day) continue;
    if (to_day >= 0 && receipt.day >= to_day) continue;
    replay.push_back(receipt);
  }
  std::stable_sort(replay.begin(), replay.end(),
                   [](const api::Receipt& a, const api::Receipt& b) {
                     return a.day < b.day;
                   });
  // --limit-receipts N cuts the stream after the server's Nth arrival
  // sequence number: a sequential flood client sends this exact ordering,
  // so the truncated replay is the fault-free oracle for a recovered
  // server whose journal reached sequence N.
  if (limit_receipts >= 0 &&
      static_cast<size_t>(limit_receipts) < replay.size()) {
    replay.resize(static_cast<size_t>(limit_receipts));
  }

  // Rate-limited progress: receipts/s, batches done, ETA. ProgressLogger
  // emits kInfo events, so a default (non --verbose) run stays quiet.
  obs::ProgressLogger progress("serve_replay", replay.size());
  Stopwatch replay_timer;
  const size_t mem_budget_bytes =
      static_cast<size_t>(mem_budget_mb) * 1024 * 1024;
  bool mem_budget_warned = false;
  size_t batches = 0, receipts = 0, alerts = 0, rejected = 0, poisoned = 0;
  for (size_t begin = 0; begin < replay.size();) {
    const api::Day batch_end =
        replay[begin].day + static_cast<api::Day>(batch_days);
    size_t end = begin;
    while (end < replay.size() && replay[end].day < batch_end) ++end;
    CHURNLAB_ASSIGN_OR_RETURN(
        const api::BatchReport report,
        fleet->IngestBatch(std::span<const api::Receipt>(
            replay.data() + begin, end - begin)));
    ++batches;
    receipts += report.receipts_ingested;
    alerts += report.alerts.size();
    rejected += report.rejected.size();
    poisoned = std::max(poisoned, report.poisoned.size());
    begin = end;

    // Soft memory budget: a breach warns (once) and keeps serving — the
    // budget is advisory, not an OOM killer.
    if (mem_budget_bytes > 0) {
      const api::StateMemoryStats memory = fleet->Memory();
      if (memory.total_bytes > mem_budget_bytes && !mem_budget_warned) {
        mem_budget_warned = true;
        obs::LogEvent(LogLevel::kWarning, "serve_mem_budget_exceeded",
                      __FILE__, __LINE__)
            .Uint("bytes_total", memory.total_bytes)
            .Uint("budget_bytes", mem_budget_bytes)
            .Uint("customers", memory.customers)
            .Str("layout", std::string(
                     api::StateLayoutToString(options.layout)));
      }
    }

    const double elapsed = replay_timer.ElapsedSeconds();
    const double rate = elapsed > 0.0 ? static_cast<double>(end) / elapsed
                                      : 0.0;
    const double eta =
        rate > 0.0 ? static_cast<double>(replay.size() - end) / rate : 0.0;
    char detail[96];
    std::snprintf(detail, sizeof(detail),
                  "batches=%zu rate=%.0f/s eta=%.1fs", batches, rate, eta);
    progress.Step(end, detail);
  }
  progress.Done();
  // Per-shard health, logged at kInfo so --verbose runs can spot skew or
  // poisoning; the same data is exported as labeled shard gauges when
  // detailed timing is on.
  {
    const api::FleetHealth health = fleet->Health();
    obs::LogEvent(LogLevel::kInfo, "fleet_health", __FILE__, __LINE__)
        .Uint("shards", health.shards.size())
        .Uint("poisoned_shards", health.poisoned_shards)
        .Uint("customers", health.customers_total)
        .Uint("receipts", health.receipts_total)
        .Uint("queue_depth", health.queue_depth);
  }
  if (finish) {
    CHURNLAB_ASSIGN_OR_RETURN(const api::BatchReport tail, fleet->FinishAll());
    alerts += tail.alerts.size();
    rejected += tail.rejected.size();
    poisoned = std::max(poisoned, tail.poisoned.size());
  }

  std::printf("replayed %zu receipts in %zu batches: %zu customers, "
              "%zu alerts\n",
              receipts, batches, fleet->NumCustomers(), alerts);
  if (rejected > 0 || poisoned > 0) {
    std::printf("quarantined %zu receipts; %zu shards poisoned\n", rejected,
                poisoned);
  }
  // Memory summary only when a budget was requested, so default runs keep
  // their exact historical stdout.
  if (mem_budget_bytes > 0) {
    const api::StateMemoryStats memory = fleet->Memory();
    const double per_customer =
        memory.customers > 0
            ? static_cast<double>(memory.total_bytes) /
                  static_cast<double>(memory.customers)
            : 0.0;
    std::printf("state memory: %.1f MiB for %zu customers "
                "(%.0f B/customer, layout=%s)%s\n",
                static_cast<double>(memory.total_bytes) / (1024.0 * 1024.0),
                memory.customers, per_customer,
                std::string(api::StateLayoutToString(options.layout))
                    .c_str(),
                mem_budget_warned ? " [budget exceeded]" : "");
  }
  if (!snapshot_out.empty()) {
    CHURNLAB_RETURN_NOT_OK(fleet->SaveSnapshot(snapshot_out));
    std::printf("wrote fleet snapshot to %s\n", snapshot_out.c_str());
  }
  return Status::OK();
}

Status RunServeHttp(int argc, const char* const* argv) {
  FlagParser parser(
      "churnlab serve-http: run the HTTP/1.1 scoring front end over a "
      "sharded fleet (POST /v1/ingest, GET /v1/customers/{id}, GET "
      "/v1/health, GET /metrics, POST /v1/snapshot)");
  std::string data, bind, snapshot_out, resume, failpoints, state_layout;
  std::string journal, journal_fsync;
  double alpha, beta;
  int64_t window, port, retry_after, poll_ms, max_shard_retries;
  int64_t snapshot_interval_ms;
  uint64_t threads, net_threads, shards;
  uint64_t max_body_mb, max_inflight, max_pending_mb;
  uint64_t coalesce_batch, coalesce_queue, max_request_receipts;
  bool products, snapshot_append, recover;
  parser.AddString("data", "", "dataset path (.clb) or CSV prefix; supplies "
                   "the product taxonomy the fleet scores against", &data);
  parser.AddString("bind", "127.0.0.1", "IPv4 address to bind", &bind);
  parser.AddInt64("port", 8080, "TCP port (0 = ephemeral)", &port);
  parser.AddUint64("net-threads", 8, "connection worker threads",
                   &net_threads);
  parser.AddUint64("threads", 1, "fleet scoring threads", &threads);
  parser.AddUint64("shards", 16, "state-store shards", &shards);
  parser.AddDouble("alpha", 2.0, "significance alpha", &alpha);
  parser.AddDouble("beta", 0.6, "low-stability alert threshold", &beta);
  parser.AddInt64("window", 2, "window span in months", &window);
  parser.AddBool("products", false,
                 "observe raw products instead of taxonomy segments",
                 &products);
  parser.AddString("state-layout", "compact",
                   "customer-state storage: compact (SoA + arena) or heap",
                   &state_layout);
  parser.AddInt64("max-shard-retries", 2,
                  "retries per failed shard task before the shard is "
                  "poisoned",
                  &max_shard_retries);
  parser.AddString("resume", "",
                   "restore the fleet from this snapshot before serving",
                   &resume);
  parser.AddString("snapshot-out", "",
                   "snapshot destination for POST /v1/snapshot and the "
                   "drain-time flush (empty disables both)",
                   &snapshot_out);
  parser.AddBool("snapshot-append", true,
                 "append snapshot generations instead of truncating",
                 &snapshot_append);
  parser.AddString("journal", "",
                   "durable ingest journal directory: every coalesced batch "
                   "is appended and synced BEFORE it is applied or "
                   "acknowledged; snapshots checkpoint and truncate it "
                   "(requires --snapshot-out and --snapshot-append; empty "
                   "disables)",
                   &journal);
  parser.AddString("journal-fsync", "batch",
                   "journal durability: always (fsync per append), batch "
                   "(one fsync per coalesced round, before acks), none "
                   "(page cache only)",
                   &journal_fsync);
  parser.AddBool("recover", false,
                 "crash recovery: replay the --journal directory atop its "
                 "checkpointed --snapshot-out generation, then serve with "
                 "the sequence numbering continued", &recover);
  parser.AddInt64("snapshot-interval-ms", 0,
                  "periodic snapshot/checkpoint interval (<= 0 disables); "
                  "with --journal each tick truncates the journal at the "
                  "new watermark, bounding crash-replay work",
                  &snapshot_interval_ms);
  parser.AddUint64("max-body-mb", 8, "largest accepted request body (MiB)",
                   &max_body_mb);
  parser.AddUint64("max-inflight", 64,
                   "admission bound on concurrent requests (429 beyond it)",
                   &max_inflight);
  parser.AddUint64("max-pending-mb", 32,
                   "admission bound on admitted-but-unfinished body bytes "
                   "(MiB)",
                   &max_pending_mb);
  parser.AddInt64("retry-after", 1,
                  "Retry-After seconds advertised on 429/503", &retry_after);
  parser.AddUint64("coalesce-batch", 8192,
                   "receipts per merged ingest batch", &coalesce_batch);
  parser.AddUint64("coalesce-queue", 65536,
                   "receipts queued in the coalescer before shedding",
                   &coalesce_queue);
  parser.AddUint64("max-request-receipts", 100000,
                   "receipts accepted per ingest request (413 beyond it)",
                   &max_request_receipts);
  parser.AddInt64("poll-ms", 100, "idle-connection poll tick (ms)", &poll_ms);
  parser.AddString("failpoints", "",
                   "fault-injection spec, e.g. 'net.read=error@every(100)' "
                   "(docs/ROBUSTNESS.md)",
                   &failpoints);
  CHURNLAB_RETURN_NOT_OK(parser.Parse(argc, argv, 2));
  if (port < 0 || port > 65535) {
    return Status::InvalidArgument("--port must be in [0, 65535]");
  }
  if (retry_after <= 0) {
    return Status::InvalidArgument("--retry-after must be positive");
  }
  if (poll_ms <= 0) {
    return Status::InvalidArgument("--poll-ms must be positive");
  }
  if (max_shard_retries < 0) {
    return Status::InvalidArgument("--max-shard-retries must be >= 0");
  }
  if (recover && journal.empty()) {
    return Status::InvalidArgument("--recover requires --journal");
  }
  if (!journal.empty() && snapshot_out.empty()) {
    return Status::InvalidArgument(
        "--journal requires --snapshot-out (checkpoints need a snapshot "
        "destination)");
  }
  if (!journal.empty() && !snapshot_append) {
    return Status::InvalidArgument(
        "--journal requires --snapshot-append: checkpoints name a snapshot "
        "generation, which a truncating snapshot would destroy");
  }
  if (recover && !resume.empty()) {
    return Status::InvalidArgument(
        "--recover and --resume are exclusive: recovery restores the "
        "generation the journal checkpoint names, not the newest one");
  }
  CHURNLAB_ASSIGN_OR_RETURN(const api::FsyncPolicy fsync_policy,
                            api::ParseFsyncPolicy(journal_fsync));
  if (!failpoints.empty()) {
    CHURNLAB_RETURN_NOT_OK(
        api::FailpointRegistry::Global().ArmFromSpec(failpoints));
  }
  CHURNLAB_ASSIGN_OR_RETURN(const api::Dataset dataset, LoadDataset(data));

  api::FleetOptions options;
  options.scorer.significance.alpha = alpha;
  options.scorer.window_span_days =
      static_cast<api::Day>(window) * api::kDaysPerMonth;
  options.policy.beta = beta;
  options.num_shards = static_cast<size_t>(shards);
  options.num_threads = static_cast<size_t>(threads);
  options.granularity = products ? api::Granularity::kProduct
                                 : api::Granularity::kSegment;
  options.shard_retry.max_retries = static_cast<int>(max_shard_retries);
  CHURNLAB_ASSIGN_OR_RETURN(options.layout,
                            api::ParseStateLayout(state_layout));

  api::ServerHandle::Options server_options;
  server_options.http.bind_address = bind;
  server_options.http.port = static_cast<uint16_t>(port);
  server_options.http.num_threads = static_cast<size_t>(net_threads);
  server_options.http.limits.max_body_bytes =
      static_cast<size_t>(max_body_mb) * 1024 * 1024;
  server_options.http.admission.max_inflight_requests =
      static_cast<size_t>(max_inflight);
  server_options.http.admission.max_pending_bytes =
      static_cast<size_t>(max_pending_mb) * 1024 * 1024;
  server_options.http.admission.retry_after_seconds =
      static_cast<int>(retry_after);
  server_options.http.coalescer.max_batch_receipts =
      static_cast<size_t>(coalesce_batch);
  server_options.http.coalescer.max_queue_receipts =
      static_cast<size_t>(coalesce_queue);
  server_options.http.max_receipts_per_request =
      static_cast<size_t>(max_request_receipts);
  server_options.http.poll_interval_ms = static_cast<int>(poll_ms);
  server_options.http.snapshot_interval_ms =
      static_cast<int>(snapshot_interval_ms);
  server_options.snapshot_path = snapshot_out;
  server_options.snapshot_append = snapshot_append;
  server_options.journal_dir = journal;
  server_options.journal_fsync = fsync_policy;

  Result<api::ServerHandle> server = Status::Internal("server not built");
  if (recover) {
    api::JournalRecovery recovery;
    server = api::ServerHandle::Recover(std::move(server_options), options,
                                        dataset,
                                        static_cast<size_t>(threads),
                                        options.layout, &recovery);
    CHURNLAB_RETURN_NOT_OK(server.status());
    std::printf("recovered journal %s: watermark=%llu frames=%zu "
                "receipts=%llu discarded-tail-frames=%zu "
                "next-sequence=%llu\n",
                journal.c_str(),
                static_cast<unsigned long long>(recovery.watermark),
                recovery.frames_scanned,
                static_cast<unsigned long long>(recovery.next_sequence -
                                                recovery.watermark),
                recovery.discarded_tail_frames,
                static_cast<unsigned long long>(recovery.next_sequence));
  } else {
    // --resume shares api::OpenSnapshot with serve-replay, so a corrupt
    // tail generation falls back (and is reported) identically in both
    // paths.
    Result<api::FleetHandle> fleet =
        resume.empty()
            ? api::FleetHandle::Make(options, dataset)
            : api::OpenSnapshot(resume, dataset,
                                static_cast<size_t>(threads),
                                options.layout);
    CHURNLAB_RETURN_NOT_OK(fleet.status());
    server = api::ServerHandle::Make(std::move(server_options),
                                     std::move(*fleet));
  }
  CHURNLAB_RETURN_NOT_OK(server.status());
  CHURNLAB_RETURN_NOT_OK(server->Start());
  CHURNLAB_RETURN_NOT_OK(server->InstallSignalHandler());
  std::printf("serving on http://%s:%u (SIGTERM or SIGINT drains)\n",
              bind.c_str(), static_cast<unsigned>(server->port()));
  std::fflush(stdout);
  CHURNLAB_RETURN_NOT_OK(server->Wait());

  const api::FleetHealth health = server->fleet().Health();
  std::printf("drained: %zu customers, %llu receipts, %zu shards poisoned\n",
              health.customers_total,
              static_cast<unsigned long long>(health.receipts_total),
              health.poisoned_shards);
  return Status::OK();
}

// ---------------------------------------------------------------------------
// flood: sequential HTTP ingest client (the chaos harness's load source)
// ---------------------------------------------------------------------------

/// Minimal blocking HTTP/1.1 client over one keep-alive connection. Only
/// what the flood loop needs: POST, read status + Content-Length + body.
class FloodConnection {
 public:
  ~FloodConnection() {
    if (fd_ >= 0) ::close(fd_);
  }

  Status Connect(const std::string& host, uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0) {
      return Status::IOError(std::string("socket: ") + std::strerror(errno));
    }
    sockaddr_in address{};
    address.sin_family = AF_INET;
    address.sin_port = htons(port);
    if (::inet_pton(AF_INET, host.c_str(), &address.sin_addr) != 1) {
      return Status::InvalidArgument("bad IPv4 address '" + host + "'");
    }
    if (::connect(fd_, reinterpret_cast<const sockaddr*>(&address),
                  sizeof(address)) != 0) {
      return Status::IOError("connect " + host + ":" +
                             std::to_string(port) + ": " +
                             std::strerror(errno));
    }
    return Status::OK();
  }

  /// POSTs `body` to `path`; returns the response body after checking the
  /// status code is 200. Any transport error is IOError (a killed server
  /// surfaces here as a reset or EOF).
  Result<std::string> Post(const std::string& path, const std::string& body) {
    std::string request = "POST " + path + " HTTP/1.1\r\n" +
                          "Host: flood\r\n" +
                          "Content-Type: application/json\r\n" +
                          "Content-Length: " + std::to_string(body.size()) +
                          "\r\n\r\n" + body;
    CHURNLAB_RETURN_NOT_OK(WriteAll(request));
    // Read headers.
    size_t header_end;
    while ((header_end = buffer_.find("\r\n\r\n")) == std::string::npos) {
      CHURNLAB_RETURN_NOT_OK(ReadMore());
    }
    const std::string headers = buffer_.substr(0, header_end);
    buffer_.erase(0, header_end + 4);
    int status_code = 0;
    if (std::sscanf(headers.c_str(), "HTTP/1.%*d %d", &status_code) != 1) {
      return Status::IOError("malformed HTTP response status line");
    }
    size_t content_length = 0;
    const std::string lowered = AsciiToLower(headers);
    const size_t cl = lowered.find("content-length:");
    if (cl != std::string::npos) {
      content_length = static_cast<size_t>(
          std::atoll(lowered.c_str() + cl + std::strlen("content-length:")));
    }
    while (buffer_.size() < content_length) {
      CHURNLAB_RETURN_NOT_OK(ReadMore());
    }
    std::string response_body = buffer_.substr(0, content_length);
    buffer_.erase(0, content_length);
    if (status_code != 200) {
      return Status::IOError("HTTP " + std::to_string(status_code) + ": " +
                             response_body);
    }
    return response_body;
  }

 private:
  Status WriteAll(const std::string& bytes) {
    size_t written = 0;
    while (written < bytes.size()) {
      const ssize_t n = ::send(fd_, bytes.data() + written,
                               bytes.size() - written, MSG_NOSIGNAL);
      if (n < 0) {
        if (errno == EINTR) continue;
        return Status::IOError(std::string("send: ") + std::strerror(errno));
      }
      written += static_cast<size_t>(n);
    }
    return Status::OK();
  }

  Status ReadMore() {
    char chunk[16384];
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n < 0) {
      if (errno == EINTR) return Status::OK();
      return Status::IOError(std::string("recv: ") + std::strerror(errno));
    }
    if (n == 0) {
      return Status::IOError("server closed the connection mid-response");
    }
    buffer_.append(chunk, static_cast<size_t>(n));
    return Status::OK();
  }

  int fd_ = -1;
  std::string buffer_;
};

Status RunFlood(int argc, const char* const* argv) {
  FlagParser parser(
      "churnlab flood: stream a dataset's receipts into a running "
      "serve-http instance over one connection, in the same day-ordered "
      "sequence serve-replay uses — so the Nth receipt sent carries "
      "arrival sequence number N and `serve-replay --limit-receipts N` is "
      "its offline oracle. Acknowledged sequences are appended to "
      "--acks-out as they return, making the log crash-accurate.");
  std::string data, host, acks_out;
  int64_t port, request_receipts, limit_receipts;
  parser.AddString("data", "", "dataset path (.clb) or CSV prefix", &data);
  parser.AddString("host", "127.0.0.1", "server IPv4 address", &host);
  parser.AddInt64("port", 8080, "server TCP port", &port);
  parser.AddInt64("request-receipts", 256,
                  "receipts per POST /v1/ingest request", &request_receipts);
  parser.AddInt64("limit-receipts", -1,
                  "send only the first N receipts of the day-ordered "
                  "stream (-1 = all)", &limit_receipts);
  parser.AddString("acks-out", "",
                   "append one 'ack seq=S count=N end=E' line per "
                   "acknowledged request (flushed immediately; empty "
                   "disables)",
                   &acks_out);
  CHURNLAB_RETURN_NOT_OK(parser.Parse(argc, argv, 2));
  if (port <= 0 || port > 65535) {
    return Status::InvalidArgument("--port must be in [1, 65535]");
  }
  if (request_receipts <= 0) {
    return Status::InvalidArgument("--request-receipts must be positive");
  }
  if (limit_receipts < -1) {
    return Status::InvalidArgument("--limit-receipts must be >= -1");
  }
  CHURNLAB_ASSIGN_OR_RETURN(const api::Dataset dataset, LoadDataset(data));

  // The same day-ordered stream serve-replay builds, so sequence numbers
  // line up between the live server and the offline oracle.
  const std::span<const api::Receipt> all = dataset.store().AllReceipts();
  std::vector<api::Receipt> replay(all.begin(), all.end());
  std::stable_sort(replay.begin(), replay.end(),
                   [](const api::Receipt& a, const api::Receipt& b) {
                     return a.day < b.day;
                   });
  if (limit_receipts >= 0 &&
      static_cast<size_t>(limit_receipts) < replay.size()) {
    replay.resize(static_cast<size_t>(limit_receipts));
  }

  std::FILE* acks = nullptr;
  if (!acks_out.empty()) {
    acks = std::fopen(acks_out.c_str(), "a");
    if (acks == nullptr) {
      return Status::IOError("cannot open --acks-out " + acks_out + ": " +
                             std::strerror(errno));
    }
  }
  FloodConnection connection;
  Status status = connection.Connect(host, static_cast<uint16_t>(port));
  size_t sent = 0, requests = 0;
  uint64_t acked_end = 0;
  while (status.ok() && sent < replay.size()) {
    const size_t count = std::min(static_cast<size_t>(request_receipts),
                                  replay.size() - sent);
    std::string body = "{\"receipts\":[";
    for (size_t i = 0; i < count; ++i) {
      const api::Receipt& receipt = replay[sent + i];
      if (i > 0) body += ',';
      // %.17g round-trips every finite double exactly: the server must
      // parse the same spend bits the offline oracle reads from the
      // dataset, or recovered-vs-oracle snapshots would differ.
      char spend[40];
      std::snprintf(spend, sizeof(spend), "%.17g", receipt.spend);
      body += "{\"customer\":" + std::to_string(receipt.customer) +
              ",\"day\":" + std::to_string(receipt.day) +
              ",\"spend\":" + spend +
              ",\"items\":[";
      for (size_t j = 0; j < receipt.items.size(); ++j) {
        if (j > 0) body += ',';
        body += std::to_string(receipt.items[j]);
      }
      body += "]}";
    }
    body += "]}";
    Result<std::string> response = connection.Post("/v1/ingest", body);
    if (!response.ok()) {
      status = response.status();
      break;
    }
    // The ingest reply's "sequence" field numbers the request's first
    // receipt; log it only AFTER the server acknowledged (journaled +
    // applied) so the acks file never over-claims across a crash.
    uint64_t sequence = 0;
    const size_t marker = response->find("\"sequence\":");
    if (marker == std::string::npos) {
      status = Status::Internal("ingest reply lacks a sequence field: " +
                                *response);
      break;
    }
    sequence = static_cast<uint64_t>(std::atoll(
        response->c_str() + marker + std::strlen("\"sequence\":")));
    acked_end = sequence + count;
    if (acks != nullptr) {
      std::fprintf(acks, "ack seq=%llu count=%zu end=%llu\n",
                   static_cast<unsigned long long>(sequence), count,
                   static_cast<unsigned long long>(acked_end));
      std::fflush(acks);
    }
    sent += count;
    ++requests;
  }
  if (acks != nullptr) std::fclose(acks);
  if (!status.ok()) {
    return status.WithContext("flood stopped after " +
                              std::to_string(requests) +
                              " acknowledged requests (acked-sequence-end " +
                              std::to_string(acked_end) + ")");
  }
  std::printf("flooded %zu receipts in %zu requests, "
              "acked-sequence-end=%llu\n",
              sent, requests, static_cast<unsigned long long>(acked_end));
  return Status::OK();
}

int Main(int argc, const char* const* argv) {
  const std::string usage =
      "usage: churnlab "
      "<simulate|stats|score|explain|profile|evaluate|forecast|gridsearch|"
      "serve-replay|serve-http|flood> [flags]\n"
      "       churnlab <subcommand> --help\n"
      "global flags: --verbose (progress logs), --trace (profile table on "
      "stderr),\n"
      "              --metrics-out=<path> (telemetry JSON), "
      "--log-json=<path> (JSONL log sink),\n"
      "              --telemetry-out=<path> (live time-series JSONL), "
      "--telemetry-interval-ms=<n>,\n"
      "              --prom-out=<path> (Prometheus textfile), "
      "--flight-recorder=<path> (post-mortem dump)\n";
  // Strip the global flags before subcommand parsing.
  std::string metrics_out;
  std::string log_json;
  std::string telemetry_out;
  std::string prom_out;
  std::string flight_recorder;
  int64_t telemetry_interval_ms = 1000;
  bool trace = false;
  std::vector<const char*> arguments;
  for (int i = 0; i < argc; ++i) {
    const std::string argument = argv[i];
    if (argument == "--verbose") {
      Logger::SetLevel(LogLevel::kInfo);
    } else if (argument == "--trace") {
      trace = true;
    } else if (StartsWith(argument, "--metrics-out=")) {
      metrics_out = argument.substr(std::string("--metrics-out=").size());
    } else if (argument == "--metrics-out" && i + 1 < argc) {
      metrics_out = argv[++i];
    } else if (StartsWith(argument, "--log-json=")) {
      log_json = argument.substr(std::string("--log-json=").size());
    } else if (argument == "--log-json" && i + 1 < argc) {
      log_json = argv[++i];
    } else if (StartsWith(argument, "--telemetry-out=")) {
      telemetry_out = argument.substr(std::string("--telemetry-out=").size());
    } else if (argument == "--telemetry-out" && i + 1 < argc) {
      telemetry_out = argv[++i];
    } else if (StartsWith(argument, "--telemetry-interval-ms=")) {
      telemetry_interval_ms = std::atoll(
          argument.c_str() + std::string("--telemetry-interval-ms=").size());
    } else if (argument == "--telemetry-interval-ms" && i + 1 < argc) {
      telemetry_interval_ms = std::atoll(argv[++i]);
    } else if (StartsWith(argument, "--prom-out=")) {
      prom_out = argument.substr(std::string("--prom-out=").size());
    } else if (argument == "--prom-out" && i + 1 < argc) {
      prom_out = argv[++i];
    } else if (StartsWith(argument, "--flight-recorder=")) {
      flight_recorder =
          argument.substr(std::string("--flight-recorder=").size());
    } else if (argument == "--flight-recorder" && i + 1 < argc) {
      flight_recorder = argv[++i];
    } else {
      arguments.push_back(argv[i]);
    }
  }
  if (telemetry_interval_ms <= 0) {
    std::fprintf(stderr,
                 "churnlab: --telemetry-interval-ms must be positive\n");
    return 2;
  }
  argc = static_cast<int>(arguments.size());
  argv = arguments.data();
  if (argc < 2) {
    std::fprintf(stderr, "%s", usage.c_str());
    return 2;
  }
  if (trace) obs::Trace::Enable(true);
  // Any telemetry consumer wants the per-operation latency histograms (and,
  // for the live exporters, the labeled per-shard serve gauges).
  if (trace || !metrics_out.empty() || !telemetry_out.empty() ||
      !prom_out.empty()) {
    obs::SetDetailedTiming(true);
  }
  if (!flight_recorder.empty()) {
    obs::FlightRecorder::Arm();
    obs::FlightRecorder::SetAutoDumpPath(flight_recorder);
    obs::FlightRecorder::LabelThread("main");
  }
  // Fault-injection plumbing: failpoints armed via the CHURNLAB_FAILPOINTS
  // environment variable count into the telemetry above like --failpoints.
  obs::InstallFaultTelemetry();
  {
    const Status armed = FailpointRegistry::Global().ArmFromEnv();
    if (!armed.ok()) {
      std::fprintf(stderr, "churnlab: bad CHURNLAB_FAILPOINTS spec: %s\n",
                   armed.ToString().c_str());
      return 2;
    }
  }
  if (!log_json.empty()) {
    const Status opened = obs::StructuredSink::Open(log_json);
    if (!opened.ok()) {
      std::fprintf(stderr, "churnlab: cannot open --log-json sink: %s\n",
                   opened.ToString().c_str());
      return 2;
    }
  }

  // The snapshotter brackets the subcommand so the series covers the whole
  // run (serve-replay batches, score sweeps, evaluate folds alike).
  obs::TelemetrySnapshotter::Options snapshotter_options;
  snapshotter_options.path = telemetry_out;
  snapshotter_options.interval_ms = static_cast<int>(telemetry_interval_ms);
  obs::TelemetrySnapshotter snapshotter(snapshotter_options);
  if (!telemetry_out.empty()) {
    const Status started = snapshotter.Start();
    if (!started.ok()) {
      std::fprintf(stderr, "churnlab: cannot open --telemetry-out: %s\n",
                   started.ToString().c_str());
      return 2;
    }
  }

  const std::string command = argv[1];
  const std::string span_name = "cli." + command;
  Status status;
  {
    obs::ScopedSpan span(span_name.c_str());
    if (command == "simulate") {
      status = RunSimulate(argc, argv);
    } else if (command == "stats") {
      status = RunStats(argc, argv);
    } else if (command == "score") {
      status = RunScore(argc, argv);
    } else if (command == "explain") {
      status = RunExplain(argc, argv);
    } else if (command == "profile") {
      status = RunProfile(argc, argv);
    } else if (command == "evaluate") {
      status = RunEvaluate(argc, argv);
    } else if (command == "forecast") {
      status = RunForecast(argc, argv);
    } else if (command == "gridsearch") {
      status = RunGridSearch(argc, argv);
    } else if (command == "serve-replay") {
      status = RunServeReplay(argc, argv);
    } else if (command == "serve-http") {
      status = RunServeHttp(argc, argv);
    } else if (command == "flood") {
      status = RunFlood(argc, argv);
    } else {
      std::fprintf(stderr, "unknown subcommand '%s'\n%s", command.c_str(),
                   usage.c_str());
      return 2;
    }
  }

  if (!telemetry_out.empty()) {
    snapshotter.Stop();
    std::fprintf(stderr, "wrote %llu telemetry samples to %s\n",
                 static_cast<unsigned long long>(snapshotter.samples_taken()),
                 telemetry_out.c_str());
  }
  if (!metrics_out.empty()) {
    const Status written = obs::JsonExporter::WriteGlobalTelemetry(metrics_out);
    if (!written.ok()) {
      std::fprintf(stderr, "churnlab: cannot write --metrics-out: %s\n",
                   written.ToString().c_str());
      if (status.ok()) return 1;
    } else {
      std::fprintf(stderr, "wrote telemetry to %s\n", metrics_out.c_str());
    }
  }
  if (!prom_out.empty()) {
    const Status written = obs::WritePrometheusFile(prom_out);
    if (!written.ok()) {
      std::fprintf(stderr, "churnlab: cannot write --prom-out: %s\n",
                   written.ToString().c_str());
      if (status.ok()) return 1;
    } else {
      std::fprintf(stderr, "wrote prometheus metrics to %s\n",
                   prom_out.c_str());
    }
  }
  if (!flight_recorder.empty()) {
    // Failpoint auto-dumps may have appended earlier; this final dump makes
    // the recorder useful for clean runs and fatal errors alike.
    const Status dumped = obs::FlightRecorder::TriggerDump(
        status.ok() || status.IsCancelled() ? "end_of_run" : "fatal_error");
    if (!dumped.ok()) {
      std::fprintf(stderr, "churnlab: cannot write --flight-recorder: %s\n",
                   dumped.ToString().c_str());
      if (status.ok()) return 1;
    } else {
      std::fprintf(stderr, "wrote flight-recorder dump to %s\n",
                   flight_recorder.c_str());
    }
  }
  if (trace) {
    std::fprintf(stderr, "%s",
                 obs::Trace::RenderAscii(obs::Trace::Collect()).c_str());
  }
  obs::StructuredSink::Close();

  if (status.IsCancelled()) return 0;  // --help
  if (!status.ok()) {
    std::fprintf(stderr, "churnlab %s failed: %s\n", command.c_str(),
                 status.ToString().c_str());
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace churnlab

int main(int argc, char** argv) { return churnlab::Main(argc, argv); }
