// Streaming monitoring: the production deployment pattern.
//
// Receipts arrive in day-ordered batches (here: replayed from a simulated
// dataset, one week per batch) and flow into a sharded scoring fleet. Each
// customer's monitor scores windows as they close and raises debounced
// alerts when stability crosses the beta threshold or drops sharply. The
// example replays a small population and prints the alert log with ground
// truth alongside.
//
// Usage: streaming_monitor [beta]

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <set>
#include <span>
#include <string>
#include <vector>

#include "churnlab.h"
#include "common/macros.h"

namespace {

churnlab::Status Run(double beta) {
  using namespace churnlab;

  api::ScenarioConfig scenario;
  scenario.population.num_loyal = 60;
  scenario.population.num_defecting = 60;
  scenario.seed = 17;
  CHURNLAB_ASSIGN_OR_RETURN(const api::Dataset dataset,
                            api::MakeScenario(scenario));

  api::FleetOptions options;
  options.scorer.significance.alpha = 2.0;
  options.scorer.window_span_days = 2 * api::kDaysPerMonth;
  options.policy.beta = beta;
  options.policy.consecutive_windows = 1;
  options.policy.drop_threshold = 0.35;
  options.policy.warmup_windows = 2;
  options.num_shards = 8;
  CHURNLAB_ASSIGN_OR_RETURN(api::FleetHandle fleet,
                            api::FleetHandle::Make(options, dataset));

  // Replay the dataset as a production stream: receipts sorted by day,
  // ingested one week per batch. (AllReceipts is (customer, day)-sorted;
  // the stable sort keeps each customer's receipts chronological.)
  const std::span<const api::Receipt> all = dataset.store().AllReceipts();
  std::vector<api::Receipt> replay(all.begin(), all.end());
  std::stable_sort(replay.begin(), replay.end(),
                   [](const api::Receipt& a, const api::Receipt& b) {
                     return a.day < b.day;
                   });

  size_t alerts_on_defectors = 0;
  size_t alerts_on_loyal = 0;
  std::set<api::CustomerId> alerted_defectors;
  std::vector<std::string> sample_log;
  const auto record = [&](const api::FleetAlert& fleet_alert) {
    const api::Cohort cohort = dataset.LabelOf(fleet_alert.customer).cohort;
    if (cohort == api::Cohort::kDefecting) {
      ++alerts_on_defectors;
      alerted_defectors.insert(fleet_alert.customer);
    } else {
      ++alerts_on_loyal;
    }
    if (sample_log.size() < 12) {
      sample_log.push_back("customer " + std::to_string(fleet_alert.customer) +
                           " (" + std::string(api::CohortToString(cohort)) +
                           "): " + fleet_alert.alert.ToString());
    }
  };

  for (size_t begin = 0; begin < replay.size();) {
    const api::Day batch_end = replay[begin].day + 7;
    size_t end = begin;
    while (end < replay.size() && replay[end].day < batch_end) ++end;
    CHURNLAB_ASSIGN_OR_RETURN(
        const api::BatchReport report,
        fleet.IngestBatch(std::span<const api::Receipt>(
            replay.data() + begin, end - begin)));
    for (const api::FleetAlert& alert : report.alerts) record(alert);
    begin = end;
  }
  // End of stream: flush every customer's in-progress window.
  CHURNLAB_ASSIGN_OR_RETURN(const api::BatchReport tail, fleet.FinishAll());
  for (const api::FleetAlert& alert : tail.alerts) record(alert);

  std::printf("=== Streaming fleet replay (beta = %.2f, %zu customers) ===\n\n",
              beta, fleet.NumCustomers());
  for (const std::string& line : sample_log) {
    std::printf("  %s\n", line.c_str());
  }
  std::printf("  ...\n\n");
  std::printf("alerts on defecting customers: %zu (%zu of 60 defectors "
              "flagged)\n",
              alerts_on_defectors, alerted_defectors.size());
  std::printf("alerts on loyal customers:     %zu (false alarms)\n",
              alerts_on_loyal);
  return Status::OK();
}

}  // namespace

int main(int argc, char** argv) {
  const double beta = argc > 1 ? std::strtod(argv[1], nullptr) : 0.55;
  const churnlab::Status status = Run(beta);
  if (!status.ok()) {
    std::fprintf(stderr, "streaming_monitor failed: %s\n",
                 status.ToString().c_str());
    return 1;
  }
  return 0;
}
