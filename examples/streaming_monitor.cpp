// Streaming monitoring: the production deployment pattern.
//
// Receipts arrive one at a time (here: replayed from a simulated dataset);
// each customer has a StabilityMonitor that scores windows as they close
// and raises debounced alerts when stability crosses the beta threshold or
// drops sharply. The example replays a small population and prints the
// alert log with ground truth alongside.
//
// Usage: streaming_monitor [beta]

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/macros.h"
#include "core/monitor.h"
#include "core/symbol_mapper.h"
#include "datagen/scenario.h"

namespace {

churnlab::Status Run(double beta) {
  using namespace churnlab;

  datagen::PaperScenarioConfig scenario;
  scenario.population.num_loyal = 60;
  scenario.population.num_defecting = 60;
  scenario.seed = 17;
  CHURNLAB_ASSIGN_OR_RETURN(const retail::Dataset dataset,
                            datagen::MakePaperDataset(scenario));
  CHURNLAB_ASSIGN_OR_RETURN(
      const core::SymbolMapper mapper,
      core::SymbolMapper::Make(retail::Granularity::kSegment,
                               &dataset.taxonomy()));

  core::OnlineStabilityScorer::Options scorer_options;
  scorer_options.significance.alpha = 2.0;
  scorer_options.window_span_days = 2 * retail::kDaysPerMonth;

  core::MonitorPolicy policy;
  policy.beta = beta;
  policy.consecutive_windows = 1;
  policy.drop_threshold = 0.35;
  policy.warmup_windows = 2;

  // One monitor per customer; receipts replayed per customer in order
  // (a real deployment would key a receipt stream by customer id).
  size_t alerts_on_defectors = 0;
  size_t alerts_on_loyal = 0;
  size_t alerted_defectors = 0;
  std::vector<std::string> sample_log;

  for (const retail::CustomerId customer : dataset.store().Customers()) {
    CHURNLAB_ASSIGN_OR_RETURN(
        core::StabilityMonitor monitor,
        core::StabilityMonitor::Make(scorer_options, policy));
    bool alerted = false;
    for (const retail::Receipt& receipt : dataset.store().History(customer)) {
      std::vector<core::Symbol> symbols;
      symbols.reserve(receipt.items.size());
      for (const retail::ItemId item : receipt.items) {
        symbols.push_back(mapper.Map(item));
      }
      std::sort(symbols.begin(), symbols.end());
      CHURNLAB_ASSIGN_OR_RETURN(const auto alerts,
                                monitor.Observe(receipt.day, symbols));
      for (const core::StabilityAlert& alert : alerts) {
        const retail::Cohort cohort = dataset.LabelOf(customer).cohort;
        if (cohort == retail::Cohort::kDefecting) {
          ++alerts_on_defectors;
          alerted = true;
        } else {
          ++alerts_on_loyal;
        }
        if (sample_log.size() < 12) {
          sample_log.push_back(
              "customer " + std::to_string(customer) + " (" +
              std::string(retail::CohortToString(cohort)) + "): " +
              alert.ToString());
        }
      }
    }
    if (alerted) ++alerted_defectors;
  }

  std::printf("=== Streaming monitor replay (beta = %.2f) ===\n\n", beta);
  for (const std::string& line : sample_log) {
    std::printf("  %s\n", line.c_str());
  }
  std::printf("  ...\n\n");
  std::printf("alerts on defecting customers: %zu (%zu of 60 defectors "
              "flagged)\n",
              alerts_on_defectors, alerted_defectors);
  std::printf("alerts on loyal customers:     %zu (false alarms)\n",
              alerts_on_loyal);
  return Status::OK();
}

}  // namespace

int main(int argc, char** argv) {
  const double beta = argc > 1 ? std::strtod(argv[1], nullptr) : 0.55;
  const churnlab::Status status = Run(beta);
  if (!status.ok()) {
    std::fprintf(stderr, "streaming_monitor failed: %s\n",
                 status.ToString().c_str());
    return 1;
  }
  return 0;
}
