// Individual-level attrition explanation — the paper's core selling point
// (section 3.2): for one customer, walk the stability trajectory window by
// window and attribute every decrease to the significant products that went
// missing.
//
// Runs on the scripted Figure-2 customer by default; pass a customer id to
// inspect any customer of the generated population instead.
//
// Usage: explain_customer [customer_id]

#include <cstdio>
#include <cstdlib>

#include "churnlab.h"
#include "common/macros.h"
#include "common/string_util.h"

namespace {

churnlab::Status Run(int64_t requested_customer) {
  using namespace churnlab;

  CHURNLAB_ASSIGN_OR_RETURN(const api::Figure2Scenario scenario,
                            api::MakeFigure2Scenario());
  const api::CustomerId customer =
      requested_customer >= 0
          ? static_cast<api::CustomerId>(requested_customer)
          : scenario.customer;

  api::ScorerOptions options;
  options.significance.alpha = 2.0;
  options.window_span_months = 2;
  options.explanation.top_k = 8;
  CHURNLAB_ASSIGN_OR_RETURN(const api::ScorerHandle scorer,
                            api::ScorerHandle::Make(options));
  CHURNLAB_ASSIGN_OR_RETURN(const api::CustomerReport report,
                            scorer.AnalyzeCustomer(scenario.dataset,
                                                   customer));

  std::printf("=== Stability walk-through for customer %u ===\n\n", customer);
  for (const api::CustomerWindowReport& window : report.windows) {
    std::printf("months [%d, %d): stability %.3f", window.begin_month,
                window.end_month, window.stability);
    if (window.drop_from_previous > 0.02) {
      std::printf("  (dropped %.3f)", window.drop_from_previous);
    }
    std::printf("\n");
    if (window.num_receipts == 0) {
      std::printf("    no visits this window\n");
    }
    for (const api::NamedMissingProduct& missing : window.missing) {
      if (missing.significance_share < 0.01) continue;
      std::printf("    missing %-18s significance %-8s share %5.1f%%%s\n",
                  missing.name.c_str(),
                  FormatDouble(missing.significance, 2).c_str(),
                  missing.significance_share * 100.0,
                  missing.newly_missing ? "  <- newly lost" : "");
    }
  }
  std::printf(
      "\nthe 'newly lost' annotations are the per-drop explanations of the\n"
      "paper's Figure 2 (coffee at the month-20 drop; milk, sponge and\n"
      "cheese at the month-22 drop).\n");
  return Status::OK();
}

}  // namespace

int main(int argc, char** argv) {
  const int64_t customer =
      argc > 1 ? std::strtoll(argv[1], nullptr, 10) : -1;
  const churnlab::Status status = Run(customer);
  if (!status.ok()) {
    std::fprintf(stderr, "explain_customer failed: %s\n",
                 status.ToString().c_str());
    return 1;
  }
  return 0;
}
