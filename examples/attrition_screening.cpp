// Attrition screening: the retailer workflow the paper motivates.
//
// Scores a customer base, ranks customers by current stability, prints the
// top at-risk list with the products each one stopped buying (the
// actionable output: "target your marketing on significant products that
// this customer is not buying anymore"), and summarises screening quality
// (confusion matrix at the chosen beta threshold, lift of the top decile).
//
// Usage: attrition_screening [num_customers_per_cohort] [beta]

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "churnlab.h"
#include "common/macros.h"
#include "common/string_util.h"

namespace {

churnlab::Status Run(size_t cohort_size, double beta) {
  using namespace churnlab;

  api::ScenarioConfig scenario;
  scenario.population.num_loyal = cohort_size;
  scenario.population.num_defecting = cohort_size;
  scenario.seed = 99;
  CHURNLAB_ASSIGN_OR_RETURN(const api::Dataset dataset,
                            api::MakeScenario(scenario));

  api::ScorerOptions options;
  options.significance.alpha = 2.0;
  options.window_span_months = 2;
  CHURNLAB_ASSIGN_OR_RETURN(const api::ScorerHandle scorer,
                            api::ScorerHandle::Make(options));
  CHURNLAB_ASSIGN_OR_RETURN(const api::ScoreMatrix scores,
                            scorer.ScoreDataset(dataset));
  const int32_t last_window = scores.num_windows() - 1;

  // Rank ascending by current stability: least stable first.
  std::vector<size_t> ranking(scores.num_rows());
  for (size_t i = 0; i < ranking.size(); ++i) ranking[i] = i;
  std::sort(ranking.begin(), ranking.end(), [&](size_t a, size_t b) {
    return scores.At(a, last_window) < scores.At(b, last_window);
  });

  std::printf("=== At-risk customers (lowest current stability) ===\n\n");
  api::TextTable table({"rank", "customer", "stability", "ground truth",
                         "recently lost significant products"});
  for (size_t rank = 0; rank < std::min<size_t>(15, ranking.size()); ++rank) {
    const size_t row = ranking[rank];
    const api::CustomerId customer = scores.customers()[row];
    CHURNLAB_ASSIGN_OR_RETURN(const api::CustomerReport report,
                              scorer.AnalyzeCustomer(dataset, customer));
    // Collect the newly-missing products of the last two windows.
    std::string lost;
    for (size_t w = report.windows.size() >= 2 ? report.windows.size() - 2
                                               : 0;
         w < report.windows.size(); ++w) {
      for (const api::NamedMissingProduct& missing :
           report.windows[w].missing) {
        if (!missing.newly_missing) continue;
        if (!lost.empty()) lost += ", ";
        lost += missing.name;
      }
    }
    table.AddRow(
        {std::to_string(rank + 1), std::to_string(customer),
         FormatDouble(scores.At(row, last_window), 3),
         std::string(api::CohortToString(dataset.LabelOf(customer).cohort)),
         lost.substr(0, 60)});
  }
  std::printf("%s", table.ToString().c_str());

  // Screening quality at the beta threshold ("defecting if stability <=
  // beta") and the marketing lift of mailing the bottom decile.
  std::vector<double> current_scores;
  std::vector<int> labels;
  for (size_t row = 0; row < scores.num_rows(); ++row) {
    const api::Cohort cohort =
        dataset.LabelOf(scores.customers()[row]).cohort;
    if (cohort == api::Cohort::kUnlabeled) continue;
    current_scores.push_back(scores.At(row, last_window));
    labels.push_back(cohort == api::Cohort::kDefecting ? 1 : 0);
  }
  CHURNLAB_ASSIGN_OR_RETURN(
      const api::ConfusionMatrix confusion,
      api::ConfusionAtThreshold(current_scores, labels, beta,
                                 api::ScoreOrientation::kLowerIsPositive));
  CHURNLAB_ASSIGN_OR_RETURN(
      const double lift,
      api::LiftAtFraction(current_scores, labels, 0.10,
                           api::ScoreOrientation::kLowerIsPositive));
  std::printf("\nscreening at beta = %.2f: %s\n", beta,
              confusion.ToString().c_str());
  std::printf("precision %.3f, recall %.3f, F1 %.3f\n", confusion.Precision(),
              confusion.Recall(), confusion.F1());
  std::printf("lift of bottom stability decile: %.2fx over random mailing\n",
              lift);

  // Data-driven alternatives to the hand-picked beta.
  CHURNLAB_ASSIGN_OR_RETURN(
      const api::OperatingPoint best_f1,
      api::SelectMaxF1(current_scores, labels,
                        api::ScoreOrientation::kLowerIsPositive));
  std::printf("\nbeta maximising F1:           %.3f (precision %.3f, "
              "recall %.3f, F1 %.3f)\n",
              best_f1.threshold, best_f1.precision, best_f1.recall,
              best_f1.f1);
  CHURNLAB_ASSIGN_OR_RETURN(
      const api::OperatingPoint recall_target,
      api::SelectForRecall(current_scores, labels,
                            api::ScoreOrientation::kLowerIsPositive, 0.9));
  std::printf("beta catching 90%% of churners: %.3f (precision %.3f, "
              "FPR %.3f)\n",
              recall_target.threshold, recall_target.precision,
              recall_target.false_positive_rate);
  return Status::OK();
}

}  // namespace

int main(int argc, char** argv) {
  const size_t cohort = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 400;
  const double beta = argc > 2 ? std::strtod(argv[2], nullptr) : 0.6;
  const churnlab::Status status = Run(cohort, beta);
  if (!status.ok()) {
    std::fprintf(stderr, "attrition_screening failed: %s\n",
                 status.ToString().c_str());
    return 1;
  }
  return 0;
}
