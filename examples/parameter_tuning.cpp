// Parameter tuning: how to select the stability model's window span and
// alpha for your own data with the built-in 5-fold cross-validated grid
// search — the procedure the paper used to arrive at w = 2 months and
// alpha = 2 (section 3.1).
//
// Usage: parameter_tuning

#include <cstdio>

#include "churnlab.h"
#include "common/macros.h"
#include "common/string_util.h"

namespace {

churnlab::Status Run() {
  using namespace churnlab;

  // A modest synthetic corpus; substitute Dataset::LoadCsv / LoadBinary of
  // your own export here.
  api::ScenarioConfig scenario;
  scenario.population.num_loyal = 300;
  scenario.population.num_defecting = 300;
  scenario.seed = 7;
  CHURNLAB_ASSIGN_OR_RETURN(const api::Dataset dataset,
                            api::MakeScenario(scenario));

  api::GridSearchOptions options;
  options.window_spans_months = {1, 2, 3};
  options.alphas = {1.5, 2.0, 3.0};
  options.folds = 5;
  options.onset_month = scenario.population.attrition.onset_month;

  CHURNLAB_ASSIGN_OR_RETURN(const api::EvalRunner runner,
                            api::EvalRunner::Make());
  CHURNLAB_ASSIGN_OR_RETURN(const api::GridSearchResult result,
                            runner.GridSearch(dataset, options));
  std::printf("grid search over %zu cells (5-fold CV):\n\n",
              result.cells.size());
  for (const auto& cell : result.cells) {
    std::printf("  w=%d months, alpha=%.1f -> AUROC %.3f +- %.3f\n",
                cell.window_span_months, cell.alpha, cell.mean_auroc,
                cell.std_auroc);
  }
  std::printf("\nselected: w=%d months, alpha=%.1f\n",
              result.best.window_span_months, result.best.alpha);
  std::printf("\nuse the selection like this:\n"
              "  churnlab::api::ScorerOptions options;\n"
              "  options.window_span_months = %d;\n"
              "  options.significance.alpha = %.1f;\n",
              result.best.window_span_months, result.best.alpha);
  return Status::OK();
}

}  // namespace

int main() {
  const churnlab::Status status = Run();
  if (!status.ok()) {
    std::fprintf(stderr, "parameter_tuning failed: %s\n",
                 status.ToString().c_str());
    return 1;
  }
  return 0;
}
