// Quickstart: simulate a small retail population, score customer stability,
// and explain one defecting customer's attrition — the full public API in
// ~80 lines, all through the churnlab::api facade.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <cstdio>

#include "churnlab.h"
#include "common/macros.h"

namespace {

churnlab::Status Run() {
  using namespace churnlab;

  // 1. Simulate a small market: 400 loyal + 400 defecting customers over 28
  //    months, attrition starting around month 18 (the paper's setting).
  api::ScenarioConfig scenario;
  scenario.population.num_loyal = 400;
  scenario.population.num_defecting = 400;
  scenario.seed = 2024;
  CHURNLAB_ASSIGN_OR_RETURN(const api::Dataset dataset,
                            api::MakeScenario(scenario));
  std::printf("--- dataset ---\n%s\n",
              dataset.ComputeStats().ToString().c_str());

  // 2. Score every customer's stability (alpha = 2, 2-month windows,
  //    segment granularity — the paper's cross-validated parameters).
  api::ScorerOptions options;
  options.significance.alpha = 2.0;
  options.window_span_months = 2;
  CHURNLAB_ASSIGN_OR_RETURN(const api::ScorerHandle scorer,
                            api::ScorerHandle::Make(options));
  CHURNLAB_ASSIGN_OR_RETURN(const api::ScoreMatrix scores,
                            scorer.ScoreDataset(dataset));

  // 3. How well does stability separate the cohorts at each window?
  CHURNLAB_ASSIGN_OR_RETURN(
      const auto auroc_series,
      api::AurocPerWindow(dataset, scores,
                          api::ScoreOrientation::kLowerIsPositive,
                          options.window_span_months));
  std::printf("--- detection AUROC by month ---\n");
  for (const api::WindowAuroc& point : auroc_series) {
    std::printf("  month %2d: %.3f\n", point.report_month, point.auroc);
  }

  // 4. Explain one defecting customer: which habitual products disappeared,
  //    window by window.
  const auto defectors = dataset.CustomersWithCohort(api::Cohort::kDefecting);
  CHURNLAB_ASSIGN_OR_RETURN(const api::CustomerReport report,
                            scorer.AnalyzeCustomer(dataset,
                                                   defectors.front()));
  std::printf("\n--- explanation for a defecting customer ---\n%s",
              report.ToString().c_str());
  return churnlab::Status::OK();
}

}  // namespace

int main() {
  const churnlab::Status status = Run();
  if (!status.ok()) {
    std::fprintf(stderr, "quickstart failed: %s\n",
                 status.ToString().c_str());
    return 1;
  }
  return 0;
}
