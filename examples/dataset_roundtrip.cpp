// Dataset I/O: exporting a corpus to the CSV interchange format (for
// inspection or external tooling) and to the compact binary format (for
// fast reloads), then verifying both round-trips.
//
// Usage: dataset_roundtrip [output_directory]

#include <cstdio>
#include <filesystem>
#include <string>

#include "churnlab.h"
#include "common/macros.h"

namespace {

churnlab::Status Run(const std::string& directory) {
  using namespace churnlab;

  api::ScenarioConfig scenario;
  scenario.population.num_loyal = 100;
  scenario.population.num_defecting = 100;
  scenario.seed = 31;
  CHURNLAB_ASSIGN_OR_RETURN(const api::Dataset dataset,
                            api::MakeScenario(scenario));
  const api::DatasetStats original = dataset.ComputeStats();

  std::filesystem::create_directories(directory);
  const std::string csv_prefix = directory + "/corpus";
  const std::string binary_path = directory + "/corpus.clb";

  CHURNLAB_RETURN_NOT_OK(dataset.SaveCsv(csv_prefix));
  CHURNLAB_RETURN_NOT_OK(dataset.SaveBinary(binary_path));

  CHURNLAB_ASSIGN_OR_RETURN(const api::Dataset from_csv,
                            api::LoadDataset(csv_prefix));
  CHURNLAB_ASSIGN_OR_RETURN(const api::Dataset from_binary,
                            api::LoadDataset(binary_path));

  const auto check = [&](const char* format,
                         const api::DatasetStats& loaded) -> Status {
    if (loaded.num_customers != original.num_customers ||
        loaded.num_receipts != original.num_receipts ||
        loaded.num_distinct_items != original.num_distinct_items ||
        loaded.num_segments != original.num_segments ||
        loaded.num_loyal != original.num_loyal ||
        loaded.num_defecting != original.num_defecting) {
      return Status::Internal(std::string(format) +
                              " round-trip changed the dataset");
    }
    std::printf("%s round-trip OK (%zu customers, %zu receipts)\n", format,
                loaded.num_customers, loaded.num_receipts);
    return Status::OK();
  };
  CHURNLAB_RETURN_NOT_OK(check("CSV", from_csv.ComputeStats()));
  CHURNLAB_RETURN_NOT_OK(check("binary", from_binary.ComputeStats()));

  const auto file_size = [](const std::string& path) {
    std::error_code ec;
    const auto size = std::filesystem::file_size(path, ec);
    return ec ? 0 : static_cast<long long>(size);
  };
  std::printf("\nfile sizes:\n");
  std::printf("  %s.receipts.csv  %lld bytes\n", csv_prefix.c_str(),
              file_size(csv_prefix + ".receipts.csv"));
  std::printf("  %s.taxonomy.csv  %lld bytes\n", csv_prefix.c_str(),
              file_size(csv_prefix + ".taxonomy.csv"));
  std::printf("  %s.labels.csv    %lld bytes\n", csv_prefix.c_str(),
              file_size(csv_prefix + ".labels.csv"));
  std::printf("  %s       %lld bytes (binary)\n", binary_path.c_str(),
              file_size(binary_path));
  return Status::OK();
}

}  // namespace

int main(int argc, char** argv) {
  const std::string directory =
      argc > 1 ? argv[1] : "/tmp/churnlab_roundtrip";
  const churnlab::Status status = Run(directory);
  if (!status.ok()) {
    std::fprintf(stderr, "dataset_roundtrip failed: %s\n",
                 status.ToString().c_str());
    return 1;
  }
  return 0;
}
