// Microbenchmarks of the HTTP front end: wire parsing (whole and torn),
// ingest-body JSON decoding, response rendering, coalescer throughput
// under contention, and the full loopback request round-trip.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include <benchmark/benchmark.h>

#include "net/backend.h"
#include "net/coalescer.h"
#include "net/http.h"
#include "net/json_codec.h"
#include "net/server.h"
#include "serve/fleet.h"

namespace churnlab {
namespace {

std::string IngestBody(size_t num_receipts) {
  std::string body = "{\"receipts\":[";
  for (size_t i = 0; i < num_receipts; ++i) {
    if (i > 0) body += ',';
    body += "{\"customer\":" + std::to_string(i % 512) +
            ",\"day\":" + std::to_string(1 + i / 512) +
            ",\"spend\":2.5,\"items\":[" + std::to_string(i % 7) + "," +
            std::to_string(20 + i % 3) + "]}";
  }
  body += "]}";
  return body;
}

std::string IngestWire(const std::string& body) {
  return "POST /v1/ingest HTTP/1.1\r\nHost: bench\r\nContent-Length: " +
         std::to_string(body.size()) + "\r\n\r\n" + body;
}

// Whole-buffer parse of a small GET — the keep-alive steady state.
void BM_HttpParseGet(benchmark::State& state) {
  const std::string wire = "GET /v1/customers/1234 HTTP/1.1\r\nHost: x\r\n"
                           "Accept: application/json\r\n\r\n";
  for (auto _ : state) {
    net::HttpParser parser((net::HttpParser::Limits()));
    parser.Feed(wire).Abort("feed");
    net::HttpRequest request = parser.TakeRequest();
    benchmark::DoNotOptimize(request.path.data());
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<int64_t>(wire.size()));
}
BENCHMARK(BM_HttpParseGet);

// POST with a receipt-batch body, fed in `range(0)`-byte slices — the
// torn-read reassembly path the server runs on every recv.
void BM_HttpParseTornIngest(benchmark::State& state) {
  const size_t chunk = static_cast<size_t>(state.range(0));
  const std::string wire = IngestWire(IngestBody(256));
  for (auto _ : state) {
    net::HttpParser parser((net::HttpParser::Limits()));
    for (size_t at = 0; at < wire.size(); at += chunk) {
      parser.Feed(std::string_view(wire).substr(at, chunk)).Abort("feed");
    }
    net::HttpRequest request = parser.TakeRequest();
    benchmark::DoNotOptimize(request.body.data());
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<int64_t>(wire.size()));
}
BENCHMARK(BM_HttpParseTornIngest)->Arg(64)->Arg(1024)->Arg(16384);

// Receipt-batch JSON decoding at three batch sizes.
void BM_ParseReceiptBatch(benchmark::State& state) {
  const size_t num_receipts = static_cast<size_t>(state.range(0));
  const std::string body = IngestBody(num_receipts);
  for (auto _ : state) {
    auto parsed = net::ParseReceiptBatch(body, num_receipts);
    parsed.status().Abort("parse");
    benchmark::DoNotOptimize(parsed->data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(num_receipts));
  state.SetBytesProcessed(state.iterations() *
                          static_cast<int64_t>(body.size()));
}
BENCHMARK(BM_ParseReceiptBatch)->Arg(16)->Arg(256)->Arg(4096);

// Rendering the merged report back to clients.
void BM_WriteBatchReportJson(benchmark::State& state) {
  serve::BatchReport report;
  report.receipts_ingested = 4096;
  for (int i = 0; i < 8; ++i) {
    serve::FleetAlert alert;
    alert.customer = static_cast<retail::CustomerId>(i);
    alert.batch_index = static_cast<size_t>(i) * 100;
    report.alerts.push_back(alert);
  }
  for (auto _ : state) {
    const std::string json = net::WriteBatchReportJson(report, 123456);
    benchmark::DoNotOptimize(json.data());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_WriteBatchReportJson);

// Backend that swallows receipts at zero cost: isolates the coalescer's
// own overhead (queueing, sequencing, slicing, wakeups).
class NullBackend final : public net::ScoringBackend {
 public:
  Result<serve::BatchReport> Ingest(
      uint64_t /*first_sequence*/,
      std::span<const retail::Receipt> receipts) override {
    serve::BatchReport report;
    report.receipts_ingested = receipts.size();
    return report;
  }
  Result<serve::CustomerQuery> Customer(retail::CustomerId) override {
    return serve::CustomerQuery{};
  }
  Result<serve::FleetHealth> Health() override {
    return serve::FleetHealth{};
  }
  Result<serve::StateMemoryStats> Memory() override {
    return serve::StateMemoryStats{};
  }
  Result<std::string> Snapshot() override { return std::string(); }
};

// Coalescer throughput: contended threads each ingesting small requests.
// Single-threaded measures pure per-request overhead; 8 threads measures
// merge efficiency under the contention it was built for.
void BM_CoalescerIngest(benchmark::State& state) {
  static NullBackend* backend = new NullBackend;
  static net::IngestCoalescer* coalescer =
      new net::IngestCoalescer(net::IngestCoalescer::Options(), backend);
  std::vector<retail::Receipt> receipts(16);
  for (size_t i = 0; i < receipts.size(); ++i) {
    receipts[i].customer = static_cast<retail::CustomerId>(
        state.thread_index() * 1000 + i);
    receipts[i].day = 1;
  }
  for (auto _ : state) {
    auto outcome = coalescer->Ingest(receipts);
    outcome.status().Abort("ingest");
    benchmark::DoNotOptimize(outcome->first_sequence);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(receipts.size()));
}
BENCHMARK(BM_CoalescerIngest)->Threads(1)->Threads(8)
    ->UseRealTime();

// Full loopback round-trip: a real server over a real fleet, one
// keep-alive connection per bench thread, one ingest request per
// iteration. This is the end-to-end requests/sec number.
class LoopbackServer {
 public:
  LoopbackServer() {
    serve::FleetOptions fleet_options;
    fleet_options.scorer.window_span_days = 60;
    fleet_options.num_shards = 16;
    fleet_options.num_threads = 1;
    fleet_options.granularity = retail::Granularity::kProduct;
    auto fleet_result = serve::ScoringFleet::Make(fleet_options, nullptr);
    fleet_result.status().Abort("fleet");
    fleet_ = std::make_unique<serve::ScoringFleet>(
        std::move(fleet_result).ValueOrDie());
    backend_ = std::make_unique<net::FleetBackend>(
        fleet_.get(), net::FleetBackend::Options());
    net::ServerOptions options;
    options.port = 0;
    options.num_threads = 8;
    auto server_result = net::HttpServer::Make(options, backend_.get());
    server_result.status().Abort("server");
    server_ = std::move(server_result).ValueOrDie();
    server_->Start().Abort("start");
  }
  ~LoopbackServer() { (void)server_->Shutdown(); }

  uint16_t port() const { return server_->port(); }

 private:
  std::unique_ptr<serve::ScoringFleet> fleet_;
  std::unique_ptr<net::FleetBackend> backend_;
  std::unique_ptr<net::HttpServer> server_;
};

class LoopbackClient {
 public:
  explicit LoopbackClient(uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    addr.sin_addr.s_addr = inet_addr("127.0.0.1");
    if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
        0) {
      Status::Internal("loopback connect failed").Abort("client");
    }
  }
  ~LoopbackClient() {
    if (fd_ >= 0) ::close(fd_);
  }

  /// Sends one request and reads one Content-Length-framed response.
  size_t RoundTrip(const std::string& wire) {
    std::string_view out = wire;
    while (!out.empty()) {
      const ssize_t sent = ::send(fd_, out.data(), out.size(), 0);
      if (sent <= 0) Status::Internal("send failed").Abort("client");
      out.remove_prefix(static_cast<size_t>(sent));
    }
    size_t header_end;
    while ((header_end = buffer_.find("\r\n\r\n")) == std::string::npos) {
      Recv();
    }
    const std::string_view head =
        std::string_view(buffer_).substr(0, header_end);
    const size_t cl_at = head.find("Content-Length: ");
    size_t content_length = 0;
    if (cl_at != std::string_view::npos) {
      content_length = static_cast<size_t>(
          std::strtoull(buffer_.c_str() + cl_at + 16, nullptr, 10));
    }
    const size_t total = header_end + 4 + content_length;
    while (buffer_.size() < total) Recv();
    buffer_.erase(0, total);
    return total;
  }

 private:
  void Recv() {
    char chunk[8192];
    const ssize_t got = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (got <= 0) Status::Internal("recv failed").Abort("client");
    buffer_.append(chunk, static_cast<size_t>(got));
  }

  int fd_ = -1;
  std::string buffer_;
};

void BM_LoopbackIngest(benchmark::State& state) {
  static LoopbackServer* server = new LoopbackServer;
  const size_t num_receipts = static_cast<size_t>(state.range(0));
  const std::string wire = IngestWire(IngestBody(num_receipts));
  LoopbackClient client(server->port());
  for (auto _ : state) {
    benchmark::DoNotOptimize(client.RoundTrip(wire));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(num_receipts));
  state.SetBytesProcessed(state.iterations() *
                          static_cast<int64_t>(wire.size()));
}
BENCHMARK(BM_LoopbackIngest)->Arg(1)->Arg(64)->Arg(1024)
    ->Threads(1)->Threads(8)->UseRealTime();

void BM_LoopbackHealth(benchmark::State& state) {
  static LoopbackServer* server = new LoopbackServer;
  const std::string wire = "GET /v1/health HTTP/1.1\r\nHost: bench\r\n\r\n";
  LoopbackClient client(server->port());
  for (auto _ : state) {
    benchmark::DoNotOptimize(client.RoundTrip(wire));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LoopbackHealth);

}  // namespace
}  // namespace churnlab
