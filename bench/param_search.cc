// Reproduces the paper's parameter selection (section 3.1): "The window
// length for this experiment is set to two months and the alpha parameter
// is set to 2. These values were chosen after performing a 5-fold
// cross-validation search."
//
// Runs a 5-fold cross-validated grid search over (window span, alpha) on
// the paper scenario and prints the mean +- std detection AUROC of every
// cell, marking the selected optimum.
//
// Usage: param_search [csv_output_path]

#include <cstdio>
#include <string>

#include "common/macros.h"
#include "common/stopwatch.h"
#include "common/string_util.h"
#include "datagen/scenario.h"
#include "eval/grid_search.h"
#include "eval/report.h"

namespace {

churnlab::Status Run(const char* csv_path) {
  using namespace churnlab;

  Stopwatch stopwatch;

  datagen::PaperScenarioConfig scenario;
  scenario.population.num_loyal = 800;
  scenario.population.num_defecting = 800;
  scenario.seed = 42;
  CHURNLAB_ASSIGN_OR_RETURN(const retail::Dataset dataset,
                            datagen::MakePaperDataset(scenario));
  const double simulate_seconds = stopwatch.LapSeconds();

  eval::GridSearchOptions options;
  options.window_spans_months = {1, 2, 3};
  options.alphas = {1.25, 1.5, 2.0, 3.0, 4.0};
  options.folds = 5;
  options.onset_month = scenario.population.attrition.onset_month;

  CHURNLAB_ASSIGN_OR_RETURN(const eval::StabilityGridSearch search,
                            eval::StabilityGridSearch::Make(options));
  CHURNLAB_ASSIGN_OR_RETURN(const eval::GridSearchResult result,
                            search.Run(dataset));
  const double search_seconds = stopwatch.LapSeconds();

  std::printf("=== Parameter search: 5-fold CV over (window span, alpha) ===\n\n");
  std::printf("objective: mean detection AUROC over the %d months after the "
              "onset (month %d)\n\n",
              options.objective_horizon_months, options.onset_month);

  eval::TextTable table(
      {"window (months)", "alpha", "mean AUROC", "std", ""});
  for (const eval::GridSearchCell& cell : result.cells) {
    const bool is_best =
        cell.window_span_months == result.best.window_span_months &&
        cell.alpha == result.best.alpha;
    table.AddRow({std::to_string(cell.window_span_months),
                  FormatDouble(cell.alpha, 2),
                  FormatDouble(cell.mean_auroc, 3),
                  FormatDouble(cell.std_auroc, 3),
                  is_best ? "<- selected" : ""});
  }
  std::printf("%s", table.ToString().c_str());
  std::printf("\nselected: window = %d months, alpha = %.2f "
              "(paper: 2 months, alpha = 2)\n",
              result.best.window_span_months, result.best.alpha);
  std::printf("elapsed: simulate %.1f s, search %.1f s, total %.1f s\n",
              simulate_seconds, search_seconds, stopwatch.ElapsedSeconds());

  if (csv_path != nullptr) {
    CHURNLAB_RETURN_NOT_OK(table.WriteCsv(csv_path));
    std::printf("wrote %s\n", csv_path);
  }
  return Status::OK();
}

}  // namespace

int main(int argc, char** argv) {
  const churnlab::Status status = Run(argc > 1 ? argv[1] : nullptr);
  if (!status.ok()) {
    std::fprintf(stderr, "param_search failed: %s\n",
                 status.ToString().c_str());
    return 1;
  }
  return 0;
}
