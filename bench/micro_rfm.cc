// Microbenchmarks of the RFM baseline: feature extraction and logistic
// training (both solvers).

#include <cmath>

#include <benchmark/benchmark.h>

#include "common/random.h"
#include "datagen/scenario.h"
#include "rfm/features.h"
#include "rfm/logistic.h"
#include "rfm/scaler.h"

namespace churnlab {
namespace {

const retail::Dataset& SharedDataset() {
  static const retail::Dataset* const kDataset = [] {
    datagen::PaperScenarioConfig scenario;
    scenario.population.num_loyal = 300;
    scenario.population.num_defecting = 300;
    scenario.seed = 5;
    auto result = datagen::MakePaperDataset(scenario);
    result.status().Abort("paper dataset");
    return new retail::Dataset(std::move(result).ValueOrDie());
  }();
  return *kDataset;
}

void BM_RfmExtract(benchmark::State& state) {
  const retail::Dataset& dataset = SharedDataset();
  auto extractor_result = rfm::RfmFeatureExtractor::Make({});
  const rfm::RfmFeatureExtractor& extractor = extractor_result.ValueOrDie();
  for (auto _ : state) {
    auto features = extractor.Extract(dataset);
    benchmark::DoNotOptimize(features);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(dataset.store().num_receipts()));
}
BENCHMARK(BM_RfmExtract)->Unit(benchmark::kMillisecond);

// Synthetic linearly separable-ish training set.
void MakeTrainingSet(size_t n, size_t d,
                     std::vector<std::vector<double>>* rows,
                     std::vector<int>* labels) {
  Rng rng(13);
  rows->clear();
  labels->clear();
  for (size_t i = 0; i < n; ++i) {
    std::vector<double> row(d);
    double score = 0.0;
    for (size_t j = 0; j < d; ++j) {
      row[j] = rng.Normal();
      score += (j % 2 == 0 ? 1.0 : -0.5) * row[j];
    }
    labels->push_back(rng.Bernoulli(1.0 / (1.0 + std::exp(-score))) ? 1 : 0);
    rows->push_back(std::move(row));
  }
}

void BM_LogisticIrls(benchmark::State& state) {
  std::vector<std::vector<double>> rows;
  std::vector<int> labels;
  MakeTrainingSet(static_cast<size_t>(state.range(0)), 6, &rows, &labels);
  rfm::LogisticRegressionOptions options;
  options.solver = rfm::LogisticSolver::kIrls;
  for (auto _ : state) {
    rfm::LogisticRegression model(options);
    model.Fit(rows, labels).Abort("fit");
    benchmark::DoNotOptimize(model.weights());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_LogisticIrls)->Arg(1000)->Arg(5000);

void BM_LogisticGradientDescent(benchmark::State& state) {
  std::vector<std::vector<double>> rows;
  std::vector<int> labels;
  MakeTrainingSet(static_cast<size_t>(state.range(0)), 6, &rows, &labels);
  rfm::LogisticRegressionOptions options;
  options.solver = rfm::LogisticSolver::kGradientDescent;
  options.max_iterations = 200;
  for (auto _ : state) {
    rfm::LogisticRegression model(options);
    model.Fit(rows, labels).Abort("fit");
    benchmark::DoNotOptimize(model.weights());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_LogisticGradientDescent)->Arg(1000);

void BM_ScalerFitTransform(benchmark::State& state) {
  std::vector<std::vector<double>> rows;
  std::vector<int> labels;
  MakeTrainingSet(static_cast<size_t>(state.range(0)), 6, &rows, &labels);
  for (auto _ : state) {
    std::vector<std::vector<double>> copy = rows;
    rfm::StandardScaler scaler;
    scaler.Fit(copy).Abort("fit");
    scaler.Transform(&copy).Abort("transform");
    benchmark::DoNotOptimize(copy);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ScalerFitTransform)->Arg(5000);

}  // namespace
}  // namespace churnlab
