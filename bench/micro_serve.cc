// Microbenchmarks of the serving subsystem: batched fleet ingestion
// (batch-size and shard-count sweeps), end-of-stream flush, and snapshot
// save/restore.
//
// Note on threads: results are byte-identical for any thread count by
// design, so the sweeps here vary shards and batch size; run with more
// threads on a multi-core box to measure fan-out speedup.

#include <algorithm>
#include <filesystem>
#include <span>
#include <vector>

#include <benchmark/benchmark.h>

#include "common/binary_io.h"
#include "datagen/scenario.h"
#include "obs/flight_recorder.h"
#include "retail/dataset.h"
#include "serve/fleet.h"
#include "serve/journal.h"
#include "serve/state_store.h"

namespace churnlab {
namespace {

const retail::Dataset& BenchDataset() {
  static const retail::Dataset* dataset = [] {
    datagen::PaperScenarioConfig config;
    config.population.num_loyal = 100;
    config.population.num_defecting = 100;
    config.seed = 31;
    auto result = datagen::MakePaperDataset(config);
    result.status().Abort("bench dataset");
    return new retail::Dataset(std::move(result).ValueOrDie());
  }();
  return *dataset;
}

// The dataset as a production stream: day-ordered, per-customer
// chronological.
const std::vector<retail::Receipt>& BenchStream() {
  static const std::vector<retail::Receipt>* stream = [] {
    const auto all = BenchDataset().store().AllReceipts();
    auto* replay = new std::vector<retail::Receipt>(all.begin(), all.end());
    std::stable_sort(replay->begin(), replay->end(),
                     [](const retail::Receipt& a, const retail::Receipt& b) {
                       return a.day < b.day;
                     });
    return replay;
  }();
  return *stream;
}

serve::FleetOptions BenchOptions(size_t num_shards) {
  serve::FleetOptions options;
  options.scorer.window_span_days = 2 * retail::kDaysPerMonth;
  options.num_shards = num_shards;
  options.num_threads = 1;
  return options;
}

// Replays the full stream in `batch_days`-day batches through a fresh
// fleet; returns total alerts (kept live so nothing is optimized away).
size_t ReplayOnce(size_t num_shards, retail::Day batch_days) {
  auto fleet_result =
      serve::ScoringFleet::Make(BenchOptions(num_shards),
                                &BenchDataset().taxonomy());
  fleet_result.status().Abort("fleet");
  serve::ScoringFleet& fleet = fleet_result.ValueOrDie();
  const std::vector<retail::Receipt>& replay = BenchStream();
  size_t alerts = 0;
  for (size_t begin = 0; begin < replay.size();) {
    const retail::Day batch_end = replay[begin].day + batch_days;
    size_t end = begin;
    while (end < replay.size() && replay[end].day < batch_end) ++end;
    auto report = fleet.IngestBatch(std::span<const retail::Receipt>(
        replay.data() + begin, end - begin));
    report.status().Abort("ingest");
    alerts += report->alerts.size();
    begin = end;
  }
  auto tail = fleet.FinishAll();
  tail.status().Abort("finish");
  return alerts + tail->alerts.size();
}

// Batch-size sweep at the default shard count: per-receipt overhead of the
// batching machinery (partitioning, locking, report merging) shrinks as
// batches grow.
void BM_FleetIngestBatchDays(benchmark::State& state) {
  const retail::Day batch_days = static_cast<retail::Day>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(ReplayOnce(16, batch_days));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(BenchStream().size()));
}
BENCHMARK(BM_FleetIngestBatchDays)
    ->Arg(1)
    ->Arg(7)
    ->Arg(30)
    ->Unit(benchmark::kMillisecond);

// Shard-count sweep at weekly batches: measures sharding overhead (hash,
// partition, per-shard lock) single-threaded; on multi-core machines more
// shards also unlock fan-out parallelism.
void BM_FleetIngestShards(benchmark::State& state) {
  const size_t num_shards = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(ReplayOnce(num_shards, 7));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(BenchStream().size()));
}
BENCHMARK(BM_FleetIngestShards)
    ->Arg(1)
    ->Arg(4)
    ->Arg(16)
    ->Arg(64)
    ->Unit(benchmark::kMillisecond);

// Full replay (weekly batches, 16 shards) with the flight recorder off
// (arg 0) vs armed (arg 1): the A/B pair behind the <5% overhead budget of
// the disarmed fast path plus ring recording.
void BM_ServeReplay(benchmark::State& state) {
  const bool record = state.range(0) != 0;
  if (record) obs::FlightRecorder::Arm();
  for (auto _ : state) {
    benchmark::DoNotOptimize(ReplayOnce(16, 7));
  }
  if (record) obs::FlightRecorder::Disarm();
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(BenchStream().size()));
  state.counters["flight_recorder"] = record ? 1.0 : 0.0;
}
BENCHMARK(BM_ServeReplay)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

serve::ScoringFleet FedFleet() {
  auto fleet_result = serve::ScoringFleet::Make(
      BenchOptions(16), &BenchDataset().taxonomy());
  fleet_result.status().Abort("fleet");
  serve::ScoringFleet fleet = std::move(fleet_result).ValueOrDie();
  auto report = fleet.IngestBatch(BenchStream());
  report.status().Abort("ingest");
  return fleet;
}

void BM_FleetSnapshotSave(benchmark::State& state) {
  const serve::ScoringFleet fleet = FedFleet();
  size_t bytes = 0;
  for (auto _ : state) {
    BinaryWriter writer;
    fleet.SaveSnapshot(&writer).Abort("snapshot");
    bytes = writer.buffer().size();
    benchmark::DoNotOptimize(writer.buffer().data());
  }
  state.SetBytesProcessed(state.iterations() * static_cast<int64_t>(bytes));
  state.counters["snapshot_bytes"] = static_cast<double>(bytes);
}
BENCHMARK(BM_FleetSnapshotSave);

void BM_FleetSnapshotRestore(benchmark::State& state) {
  BinaryWriter writer;
  FedFleet().SaveSnapshot(&writer).Abort("snapshot");
  for (auto _ : state) {
    BinaryReader reader(writer.buffer());
    auto restored =
        serve::ScoringFleet::Restore(&reader, &BenchDataset().taxonomy());
    restored.status().Abort("restore");
    benchmark::DoNotOptimize(restored->NumCustomers());
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<int64_t>(writer.buffer().size()));
}
BENCHMARK(BM_FleetSnapshotRestore);

// Raw store access path: hash + lock + slab lookup per touch.
void BM_StateStoreGetOrCreate(benchmark::State& state) {
  serve::StateStoreOptions options;
  options.scorer.window_span_days = 60;
  options.num_shards = 16;
  auto store_result = serve::CustomerStateStore::Make(options);
  store_result.status().Abort("store");
  serve::CustomerStateStore& store = store_result.ValueOrDie();
  const size_t kCustomers = 4096;
  retail::CustomerId next = 0;
  for (auto _ : state) {
    const retail::CustomerId customer = next++ % kCustomers;
    const size_t shard = store.ShardOf(customer);
    store.WithShard(shard,
                    [&](serve::CustomerStateStore::ShardAccessor& access) {
                      auto ref = access.GetOrCreate(customer);
                      benchmark::DoNotOptimize(ref.customer());
                      return 0;
                    });
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_StateStoreGetOrCreate);

// Byte-accounting A/B: the same synthetic population held in the compact
// (SoA + arena) layout vs the per-customer heap layout, at two scales.
// Iterations(1): the payload is the bytes counters, not wall time.
void BM_FleetMemory(benchmark::State& state) {
  const serve::StateLayout layout = state.range(0) == 0
                                        ? serve::StateLayout::kCompact
                                        : serve::StateLayout::kHeap;
  const size_t num_customers = static_cast<size_t>(state.range(1));
  serve::FleetOptions options = BenchOptions(64);
  options.layout = layout;
  options.granularity = retail::Granularity::kProduct;
  serve::StateMemoryStats stats;
  for (auto _ : state) {
    auto fleet_result = serve::ScoringFleet::Make(options, nullptr);
    fleet_result.status().Abort("fleet");
    serve::ScoringFleet& fleet = fleet_result.ValueOrDie();
    std::vector<retail::Receipt> batch(num_customers);
    for (int month = 0; month < 3; ++month) {
      for (size_t i = 0; i < num_customers; ++i) {
        retail::Receipt& receipt = batch[i];
        receipt.customer = static_cast<retail::CustomerId>(i + 1);
        receipt.day = month * retail::kDaysPerMonth;
        receipt.spend = 1.0;
        receipt.items = {static_cast<retail::ItemId>(1 + i % 7),
                         static_cast<retail::ItemId>(20 + i % 3)};
      }
      fleet.IngestBatch(batch).status().Abort("ingest");
    }
    stats = fleet.MemoryUsage();
    benchmark::DoNotOptimize(stats.total_bytes);
  }
  state.counters["bytes_total"] = static_cast<double>(stats.total_bytes);
  state.counters["bytes_per_customer"] =
      static_cast<double>(stats.total_bytes) /
      static_cast<double>(stats.customers == 0 ? 1 : stats.customers);
  state.counters["compact"] =
      layout == serve::StateLayout::kCompact ? 1.0 : 0.0;
}
BENCHMARK(BM_FleetMemory)
    ->Args({0, 1 << 14})
    ->Args({1, 1 << 14})
    ->Args({0, 1 << 20})
    ->Args({1, 1 << 20})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

// One 256-receipt journal frame per coalesced round.
std::vector<retail::Receipt> JournalFrameReceipts() {
  std::vector<retail::Receipt> frame(256);
  for (size_t i = 0; i < frame.size(); ++i) {
    frame[i].customer = static_cast<retail::CustomerId>(i % 512);
    frame[i].day = 1;
    frame[i].spend = 2.5;
    frame[i].items = {static_cast<retail::ItemId>(i % 7),
                      static_cast<retail::ItemId>(20 + i % 3)};
  }
  return frame;
}

// Write-ahead append + round flush: the latency the journal adds to every
// acknowledged coalesced round, per fsync policy (arg 0: none, 1: batch,
// 2: always). Under kBatch the Sync per iteration mirrors the server's
// one-fsync-per-round batch-ack discipline.
void BM_JournalAppend(benchmark::State& state) {
  const serve::FsyncPolicy policy =
      state.range(0) == 0   ? serve::FsyncPolicy::kNone
      : state.range(0) == 1 ? serve::FsyncPolicy::kBatch
                            : serve::FsyncPolicy::kAlways;
  const std::string dir =
      (std::filesystem::temp_directory_path() / "churnlab_bench_journal")
          .string();
  std::filesystem::remove_all(dir);
  serve::JournalOptions options;
  options.directory = dir;
  options.fsync = policy;
  auto journal_result = serve::IngestJournal::Open(options);
  journal_result.status().Abort("journal");
  serve::IngestJournal& journal = journal_result.ValueOrDie();
  const std::vector<retail::Receipt> frame = JournalFrameReceipts();
  for (auto _ : state) {
    journal.Append(journal.next_sequence(), frame).Abort("append");
    journal.Sync().Abort("sync");
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(frame.size()));
  journal.Close();
  std::filesystem::remove_all(dir);
}
BENCHMARK(BM_JournalAppend)->Arg(0)->Arg(1)->Arg(2);

// Checkpoint at the head: the periodic-snapshot tick's journal half
// (checkpoint record tmp+fsync+rename plus truncating fully-covered
// segments).
void BM_JournalCheckpoint(benchmark::State& state) {
  const std::string dir =
      (std::filesystem::temp_directory_path() / "churnlab_bench_journal_ckpt")
          .string();
  std::filesystem::remove_all(dir);
  serve::JournalOptions options;
  options.directory = dir;
  options.fsync = serve::FsyncPolicy::kNone;
  options.max_segment_bytes = 64 << 10;  // exercise rotation + truncation
  auto journal_result = serve::IngestJournal::Open(options);
  journal_result.status().Abort("journal");
  serve::IngestJournal& journal = journal_result.ValueOrDie();
  const std::vector<retail::Receipt> frame = JournalFrameReceipts();
  serve::SnapshotRef ref;
  ref.kind = serve::SnapshotRef::Kind::kGeneration;
  ref.size = 4096;
  ref.crc = 0x12345678;
  for (auto _ : state) {
    for (int i = 0; i < 4; ++i) {
      journal.Append(journal.next_sequence(), frame).Abort("append");
    }
    journal.Checkpoint(journal.next_sequence(), ref).Abort("checkpoint");
  }
  state.SetItemsProcessed(state.iterations());
  journal.Close();
  std::filesystem::remove_all(dir);
}
BENCHMARK(BM_JournalCheckpoint);

// Crash-recovery scan: reopening a journal of `range(0)` 64-receipt frames
// read-only and decoding every frame — the startup cost --recover pays per
// un-checkpointed frame.
void BM_JournalRecoveryScan(benchmark::State& state) {
  const size_t num_frames = static_cast<size_t>(state.range(0));
  const std::string dir =
      (std::filesystem::temp_directory_path() / "churnlab_bench_journal_scan")
          .string();
  std::filesystem::remove_all(dir);
  std::vector<retail::Receipt> frame = JournalFrameReceipts();
  frame.resize(64);
  {
    serve::JournalOptions options;
    options.directory = dir;
    options.fsync = serve::FsyncPolicy::kNone;
    auto journal_result = serve::IngestJournal::Open(options);
    journal_result.status().Abort("journal");
    serve::IngestJournal& journal = journal_result.ValueOrDie();
    for (size_t i = 0; i < num_frames; ++i) {
      journal.Append(journal.next_sequence(), frame).Abort("append");
    }
  }
  for (auto _ : state) {
    serve::JournalOptions options;
    options.directory = dir;
    options.recover = true;
    options.read_only = true;
    serve::JournalRecovery recovery;
    auto scanned = serve::IngestJournal::Open(options, &recovery);
    scanned.status().Abort("scan");
    benchmark::DoNotOptimize(recovery.frames.size());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(num_frames * frame.size()));
  std::filesystem::remove_all(dir);
}
BENCHMARK(BM_JournalRecoveryScan)->Arg(64)->Arg(1024);

}  // namespace
}  // namespace churnlab
