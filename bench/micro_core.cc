// Microbenchmarks of the stability model's hot paths: windowing,
// significance tracking, per-customer stability series, and whole-dataset
// scoring.

#include <benchmark/benchmark.h>

#include "common/random.h"
#include "core/significance_reference.h"
#include "core/stability.h"
#include "core/stability_model.h"
#include "core/window.h"
#include "datagen/scenario.h"

namespace churnlab {
namespace {

// Synthetic per-customer receipt history: `months` months, ~4 trips/month,
// `basket` items per trip from a 200-item repertoire.
std::vector<retail::Receipt> MakeHistory(int32_t months, size_t basket,
                                         uint64_t seed) {
  Rng rng(seed);
  std::vector<retail::Receipt> receipts;
  for (int32_t month = 0; month < months; ++month) {
    const int64_t trips = 4;
    for (int64_t t = 0; t < trips; ++t) {
      retail::Receipt receipt;
      receipt.customer = 1;
      receipt.day = retail::MonthToFirstDay(month) +
                    static_cast<retail::Day>(rng.NextUint64(30));
      for (size_t i = 0; i < basket; ++i) {
        receipt.items.push_back(
            static_cast<retail::ItemId>(rng.NextUint64(200)));
      }
      receipt.spend = 25.0;
      receipts.push_back(std::move(receipt));
    }
  }
  std::sort(receipts.begin(), receipts.end(),
            [](const retail::Receipt& a, const retail::Receipt& b) {
              return a.day < b.day;
            });
  return receipts;
}

void BM_Windowing(benchmark::State& state) {
  const auto receipts =
      MakeHistory(static_cast<int32_t>(state.range(0)), 15, 7);
  core::WindowerOptions options;
  options.window_span_days = 60;
  const core::Windower windower(options);
  for (auto _ : state) {
    auto history = windower.Build(
        std::span<const retail::Receipt>(receipts),
        [](retail::ItemId item) { return item; });
    benchmark::DoNotOptimize(history);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(receipts.size()));
}
BENCHMARK(BM_Windowing)->Arg(28)->Arg(120);

void BM_SignificanceAdvance(benchmark::State& state) {
  const size_t symbols = static_cast<size_t>(state.range(0));
  std::vector<core::Symbol> window(symbols);
  for (size_t i = 0; i < symbols; ++i) window[i] = static_cast<uint32_t>(i);
  for (auto _ : state) {
    core::SignificanceTracker tracker(core::SignificanceOptions{});
    for (int k = 0; k < 14; ++k) {
      tracker.AdvanceWindow(window);
      benchmark::DoNotOptimize(tracker.TotalSignificance());
    }
  }
  state.SetItemsProcessed(state.iterations() * 14 *
                          static_cast<int64_t>(symbols));
}
BENCHMARK(BM_SignificanceAdvance)->Arg(30)->Arg(300);

// Long-history scoring: 600 windows over a 300-symbol repertoire. The old
// scan-based tracker paid O(seen catalogue) per TotalSignificance call, so
// this is where the incremental recurrence shows up; the reference
// benchmark below keeps the before/after ratio measurable in one binary.
template <typename Tracker>
void RunLongHistory(benchmark::State& state) {
  const size_t symbols = 300;
  const int32_t windows = static_cast<int32_t>(state.range(0));
  // Rotating half-present windows so contain counts diverge per symbol.
  std::vector<std::vector<core::Symbol>> history(7);
  for (size_t w = 0; w < history.size(); ++w) {
    for (size_t s = w % 2; s < symbols; s += 2) {
      history[w].push_back(static_cast<core::Symbol>(s));
    }
  }
  for (auto _ : state) {
    Tracker tracker{core::SignificanceOptions{}};
    double checksum = 0.0;
    for (int32_t k = 0; k < windows; ++k) {
      const auto& window = history[static_cast<size_t>(k) % history.size()];
      checksum += tracker.PresentSignificance(window) /
                  (tracker.TotalSignificance() + 1.0);
      tracker.AdvanceWindow(window);
    }
    benchmark::DoNotOptimize(checksum);
  }
  state.SetItemsProcessed(state.iterations() * windows);
}

void BM_SignificanceLongHistory(benchmark::State& state) {
  RunLongHistory<core::SignificanceTracker>(state);
}
BENCHMARK(BM_SignificanceLongHistory)->Arg(120)->Arg(600);

void BM_SignificanceLongHistoryReference(benchmark::State& state) {
  RunLongHistory<core::ReferenceSignificanceTracker>(state);
}
BENCHMARK(BM_SignificanceLongHistoryReference)->Arg(120)->Arg(600);

void BM_StabilitySeries(benchmark::State& state) {
  const auto receipts =
      MakeHistory(static_cast<int32_t>(state.range(0)), 15, 11);
  core::WindowerOptions window_options;
  window_options.window_span_days = 60;
  const core::Windower windower(window_options);
  const auto history = windower.Build(
      std::span<const retail::Receipt>(receipts),
      [](retail::ItemId item) { return item; });
  const core::StabilityComputer computer =
      core::StabilityComputer::Make(core::SignificanceOptions{}).ValueOrDie();
  for (auto _ : state) {
    auto series = computer.Compute(history);
    benchmark::DoNotOptimize(series);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(history.num_windows()));
}
BENCHMARK(BM_StabilitySeries)->Arg(28)->Arg(120);

void BM_ScoreDataset(benchmark::State& state) {
  datagen::PaperScenarioConfig scenario;
  scenario.population.num_loyal = static_cast<size_t>(state.range(0)) / 2;
  scenario.population.num_defecting = scenario.population.num_loyal;
  scenario.seed = 5;
  auto dataset_result = datagen::MakePaperDataset(scenario);
  dataset_result.status().Abort("paper dataset");
  const retail::Dataset& dataset = dataset_result.ValueOrDie();

  auto model_result =
      core::StabilityModel::Make(core::StabilityModelOptions{});
  const core::StabilityModel& model = model_result.ValueOrDie();
  for (auto _ : state) {
    auto scores = model.ScoreDataset(dataset);
    benchmark::DoNotOptimize(scores);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ScoreDataset)->Arg(200)->Arg(1000)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace churnlab
