// Ablation: product- vs segment-granularity observation.
//
// The paper's dataset abstracts 4M products into 3,388 segments via the
// retailer taxonomy, and the experiments run at segment level. This
// ablation quantifies why: at raw product granularity a customer switching
// brands within a segment looks like a loss + an adoption, diluting the
// attrition signal; the taxonomy removes that within-segment substitution
// noise.

#include <cstdio>
#include <string>
#include <vector>

#include "common/macros.h"
#include "common/string_util.h"
#include "core/stability_model.h"
#include "datagen/scenario.h"
#include "eval/experiment.h"
#include "eval/report.h"

namespace {

churnlab::Status Run() {
  using namespace churnlab;

  datagen::PaperScenarioConfig scenario;
  scenario.population.num_loyal = 800;
  scenario.population.num_defecting = 800;
  scenario.seed = 42;
  CHURNLAB_ASSIGN_OR_RETURN(const retail::Dataset dataset,
                            datagen::MakePaperDataset(scenario));

  std::printf("=== Ablation: observation granularity ===\n\n");
  eval::TextTable table({"month", "AUROC (segments)", "AUROC (products)"});

  std::vector<std::vector<eval::WindowAuroc>> series_by_granularity;
  for (const retail::Granularity granularity :
       {retail::Granularity::kSegment, retail::Granularity::kProduct}) {
    core::StabilityModelOptions options;
    options.significance.alpha = 2.0;
    options.window_span_months = 2;
    options.granularity = granularity;
    CHURNLAB_ASSIGN_OR_RETURN(const core::StabilityModel model,
                              core::StabilityModel::Make(options));
    CHURNLAB_ASSIGN_OR_RETURN(const core::ScoreMatrix scores,
                              model.ScoreDataset(dataset));
    CHURNLAB_ASSIGN_OR_RETURN(
        std::vector<eval::WindowAuroc> series,
        eval::AurocPerWindow(dataset, scores,
                             eval::ScoreOrientation::kLowerIsPositive, 2));
    series_by_granularity.push_back(std::move(series));
  }

  for (size_t i = 0; i < series_by_granularity[0].size(); ++i) {
    const int32_t month = series_by_granularity[0][i].report_month;
    if (month < 12 || month > 24) continue;
    table.AddRow({std::to_string(month),
                  FormatDouble(series_by_granularity[0][i].auroc, 3),
                  FormatDouble(series_by_granularity[1][i].auroc, 3)});
  }
  std::printf("%s", table.ToString().c_str());
  std::printf("\npaper setting: segment granularity (3,388 segments for 4M "
              "products).\n");
  return Status::OK();
}

}  // namespace

int main() {
  const churnlab::Status status = Run();
  if (!status.ok()) {
    std::fprintf(stderr, "ablation_granularity failed: %s\n",
                 status.ToString().c_str());
    return 1;
  }
  return 0;
}
