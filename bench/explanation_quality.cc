// Quantitative version of section 3.2: the paper demonstrates explanation
// quality on one case study (Figure 2); here every defector's explanations
// are graded against the simulator's ground truth — when the model blames
// products for a stability drop, did the customer really stop buying them?
//
// Metrics:
//   precision      reported newly-missing products that are true losses
//   top-1 accuracy windows where the argmax missing product (the paper's
//                  primary explanation) is a true loss
//   recall         true lost segments that some graded window reported

#include <cstdio>
#include <string>

#include "common/macros.h"
#include "common/string_util.h"
#include "datagen/scenario.h"
#include "eval/explanation_quality.h"
#include "eval/report.h"

namespace {

churnlab::Status Run() {
  using namespace churnlab;

  datagen::PaperScenarioConfig config;
  config.population.num_loyal = 400;
  config.population.num_defecting = 400;
  config.seed = 42;
  CHURNLAB_ASSIGN_OR_RETURN(const datagen::PaperScenarioOutput scenario,
                            datagen::MakePaperScenario(config));

  std::printf("=== Explanation correctness vs simulator ground truth ===\n\n");
  eval::TextTable table({"top-k", "min drop", "windows graded", "precision",
                         "top-1 accuracy", "recall of losses"});
  for (const size_t top_k : {1u, 3u, 5u}) {
    for (const double min_drop : {0.05, 0.15}) {
      eval::ExplanationQualityOptions options;
      options.stability.significance.alpha = 2.0;
      options.stability.window_span_months = 2;
      options.top_k = top_k;
      options.min_drop = min_drop;
      CHURNLAB_ASSIGN_OR_RETURN(
          const eval::ExplanationQualityResult result,
          eval::ExplanationQuality::Run(scenario, options));
      table.AddRow({std::to_string(top_k), FormatDouble(min_drop, 2),
                    std::to_string(result.windows_graded),
                    FormatDouble(result.precision, 3),
                    FormatDouble(result.top1_accuracy, 3),
                    FormatDouble(result.recall, 3)});
    }
  }
  std::printf("%s", table.ToString().c_str());
  std::printf(
      "\nreading guide: precision ~1 would mean every blamed product was a\n"
      "genuine loss; the gap is trip noise (significant products missed in\n"
      "a window without being abandoned) plus visit-rate decay, both of\n"
      "which the model cannot distinguish from true losses at window\n"
      "granularity. The paper's single case study corresponds to the top-1\n"
      "row.\n");
  return Status::OK();
}

}  // namespace

int main() {
  const churnlab::Status status = Run();
  if (!status.ok()) {
    std::fprintf(stderr, "explanation_quality failed: %s\n",
                 status.ToString().c_str());
    return 1;
  }
  return 0;
}
