// Extension: realistic cohort imbalance.
//
// The paper's cohorts are retailer-provided and effectively balanced; a
// deployed screen faces a few percent of defectors. AUROC barely moves
// under imbalance (it is prevalence-free) while average precision and
// campaign lift collapse toward the base rate — the operational metrics a
// retailer actually budgets with. This harness re-runs detection at
// decreasing defector fractions.

#include <cstdio>
#include <string>

#include "common/macros.h"
#include "common/string_util.h"
#include "core/stability_model.h"
#include "datagen/scenario.h"
#include "eval/metrics.h"
#include "eval/pr_curve.h"
#include "eval/report.h"
#include "eval/roc.h"

namespace {

churnlab::Status Run() {
  using namespace churnlab;

  std::printf("=== Detection under cohort imbalance (month 22 scores) ===\n\n");
  eval::TextTable table({"defector share", "AUROC", "avg precision",
                         "lift@10%", "base rate"});

  for (const double share : {0.5, 0.2, 0.1, 0.05, 0.02}) {
    const size_t total = 3000;
    datagen::PaperScenarioConfig scenario;
    scenario.population.num_defecting =
        static_cast<size_t>(share * static_cast<double>(total));
    scenario.population.num_loyal = total - scenario.population.num_defecting;
    scenario.seed = 42;
    CHURNLAB_ASSIGN_OR_RETURN(const retail::Dataset dataset,
                              datagen::MakePaperDataset(scenario));

    core::StabilityModelOptions options;
    options.significance.alpha = 2.0;
    options.window_span_months = 2;
    CHURNLAB_ASSIGN_OR_RETURN(const core::StabilityModel model,
                              core::StabilityModel::Make(options));
    CHURNLAB_ASSIGN_OR_RETURN(const core::ScoreMatrix scores,
                              model.ScoreDataset(dataset));

    // Window reported at month 22 (onset + 4).
    const int32_t window = 22 / 2 - 1;
    std::vector<double> window_scores;
    std::vector<int> labels;
    for (size_t row = 0; row < scores.num_rows(); ++row) {
      const retail::Cohort cohort =
          dataset.LabelOf(scores.customers()[row]).cohort;
      if (cohort == retail::Cohort::kUnlabeled) continue;
      window_scores.push_back(scores.At(row, window));
      labels.push_back(cohort == retail::Cohort::kDefecting ? 1 : 0);
    }
    CHURNLAB_ASSIGN_OR_RETURN(
        const double auroc,
        eval::Auroc(window_scores, labels,
                    eval::ScoreOrientation::kLowerIsPositive));
    CHURNLAB_ASSIGN_OR_RETURN(
        const double average_precision,
        eval::AveragePrecision(window_scores, labels,
                               eval::ScoreOrientation::kLowerIsPositive));
    CHURNLAB_ASSIGN_OR_RETURN(
        const double lift,
        eval::LiftAtFraction(window_scores, labels, 0.10,
                             eval::ScoreOrientation::kLowerIsPositive));
    table.AddRow({FormatDouble(share, 2), FormatDouble(auroc, 3),
                  FormatDouble(average_precision, 3), FormatDouble(lift, 2),
                  FormatDouble(share, 2)});
  }
  std::printf("%s", table.ToString().c_str());
  std::printf(
      "\nreading guide: AUROC is stable across prevalence (ranking quality\n"
      "is unchanged) while average precision tracks the shrinking base\n"
      "rate; lift@10%% saturates at 1/0.10 = 10 once all defectors fit in\n"
      "the top decile — the number that prices a retention campaign.\n");
  return Status::OK();
}

}  // namespace

int main() {
  const churnlab::Status status = Run();
  if (!status.ok()) {
    std::fprintf(stderr, "cohort_imbalance failed: %s\n",
                 status.ToString().c_str());
    return 1;
  }
  return 0;
}
