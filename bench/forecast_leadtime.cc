// Extension experiment (abstract claim): "this model is able to identify
// customers that are likely to defect in the future months."
//
// A spread-onset scenario (onsets uniform over months 13..23) is scored by
// the stability forecaster at several decision months: at each decision
// month the forecaster sees stability data up to that month only and
// predicts which not-yet-defecting customers start defecting within the
// next 6 months. Out-of-fold AUROC against ground-truth onsets is
// reported.
//
// Expected shape: near-chance for decision months far before any onset
// (nothing has changed yet), rising as the prodrome (pre-onset visit
// disengagement) of nearby onsets becomes visible.

#include <cstdio>
#include <string>
#include <vector>

#include "common/macros.h"
#include "common/string_util.h"
#include "datagen/scenario.h"
#include "eval/forecaster.h"
#include "eval/report.h"

namespace {

churnlab::Status Run() {
  using namespace churnlab;

  datagen::PaperScenarioConfig scenario;
  scenario.population.num_loyal = 1200;
  scenario.population.num_defecting = 1200;
  scenario.population.attrition.onset_month = 18;
  scenario.population.attrition.onset_jitter_months = 5;  // onsets 13..23
  // Pronounced smoldering phase: weakly attached items start dropping four
  // months before the declared onset — the content signal the forecaster
  // hunts for.
  scenario.population.attrition.early_loss_months = 4;
  scenario.population.attrition.early_loss_quantile = 0.35;
  scenario.seed = 42;
  CHURNLAB_ASSIGN_OR_RETURN(const retail::Dataset dataset,
                            datagen::MakePaperDataset(scenario));

  std::printf("=== Forecasting future defection (lead-time sweep) ===\n\n");
  std::printf("onsets spread over months 13..23; horizon = 6 months\n\n");
  eval::TextTable table({"decision month", "AUROC (pooled)", "lead 1-2 mo",
                         "lead 3-4 mo", "lead 5-6 mo", "future defectors",
                         "already defecting"});
  const auto bucket_pair = [](const eval::ForecastResult& forecast,
                              size_t first) -> std::string {
    // Average the two adjacent per-lead AUROCs, weighted by defector count.
    double weighted = 0.0;
    size_t count = 0;
    for (size_t i = first; i < first + 2 && i < forecast.by_lead.size();
         ++i) {
      const auto& bucket = forecast.by_lead[i];
      if (bucket.auroc < 0.0) continue;
      weighted += bucket.auroc * static_cast<double>(bucket.num_defectors);
      count += bucket.num_defectors;
    }
    if (count == 0) return "-";
    return FormatDouble(weighted / static_cast<double>(count), 3);
  };
  for (const int32_t decision : {12, 14, 16, 18, 20}) {
    eval::ForecastOptions options;
    options.decision_month = decision;
    options.horizon_months = 6;
    const Result<eval::StabilityForecaster> forecaster =
        eval::StabilityForecaster::Make(options);
    const Result<eval::ForecastResult> result =
        forecaster.ok() ? forecaster.ValueOrDie().Run(dataset)
                        : forecaster.status();
    if (!result.ok()) {
      table.AddRow({std::to_string(decision),
                    "n/a (" + result.status().message() + ")"});
      continue;
    }
    const eval::ForecastResult& forecast = result.ValueOrDie();
    table.AddRow({std::to_string(decision), FormatDouble(forecast.auroc, 3),
                  bucket_pair(forecast, 0), bucket_pair(forecast, 2),
                  bucket_pair(forecast, 4),
                  std::to_string(forecast.num_future_defectors),
                  std::to_string(forecast.num_already_defecting)});
  }
  std::printf("%s", table.ToString().c_str());
  std::printf(
      "\nreading guide: the signal concentrates in the 1-2 month lead "
      "bucket\n(the smoldering-attrition phase); defection further out is "
      "near-chance,\nwhich bounds how early any behavioural model can "
      "warn.\n");
  return Status::OK();
}

}  // namespace

int main() {
  const churnlab::Status status = Run();
  if (!status.ok()) {
    std::fprintf(stderr, "forecast_leadtime failed: %s\n",
                 status.ToString().c_str());
    return 1;
  }
  return 0;
}
