// Reproduces Figure 2 of the paper: the stability trajectory of one
// defecting customer, with each drop attributed to the habitual products
// that disappeared from the basket.
//
// The scripted customer buys a steady 12-segment basket, stops buying
// coffee during the window reported at month 20, and loses milk, sponge and
// cheese during the window reported at month 22 — the paper's annotations.
//
// Usage: fig2_trajectory [csv_output_path]

#include <cstdio>
#include <string>

#include "common/macros.h"
#include "common/string_util.h"
#include "core/stability_model.h"
#include "datagen/scenario.h"
#include "eval/ascii_chart.h"
#include "eval/report.h"

namespace {

std::string AsciiBar(double value, size_t width) {
  const size_t filled = static_cast<size_t>(value * static_cast<double>(width));
  std::string bar(filled, '#');
  bar.resize(width, ' ');
  return bar;
}

churnlab::Status Run(const char* csv_path) {
  using namespace churnlab;

  CHURNLAB_ASSIGN_OR_RETURN(const datagen::Figure2Scenario scenario,
                            datagen::MakeFigure2Scenario());

  core::StabilityModelOptions options;
  options.significance.alpha = 2.0;
  options.window_span_months = 2;
  options.explanation.top_k = 6;
  CHURNLAB_ASSIGN_OR_RETURN(const core::StabilityModel model,
                            core::StabilityModel::Make(options));
  CHURNLAB_ASSIGN_OR_RETURN(
      const core::CustomerReport report,
      model.AnalyzeCustomer(scenario.dataset, scenario.customer));

  std::printf("=== Figure 2: defecting customer stability trajectory ===\n\n");
  eval::TextTable table({"month", "stability", "", "newly lost products"});
  for (const core::CustomerWindowReport& window : report.windows) {
    const int32_t report_month = window.end_month;
    std::string lost;
    for (const core::NamedMissingProduct& missing : window.missing) {
      if (!missing.newly_missing) continue;
      if (!lost.empty()) lost += ", ";
      lost += missing.name;
      lost += " (share " + FormatDouble(missing.significance_share, 2) + ")";
    }
    table.AddRow({std::to_string(report_month),
                  FormatDouble(window.stability, 3),
                  AsciiBar(window.stability, 30), lost});
  }
  std::printf("%s", table.ToString().c_str());

  eval::ChartSeries stability_series;
  stability_series.label = "stability value";
  stability_series.glyph = '*';
  for (const core::CustomerWindowReport& window : report.windows) {
    stability_series.xs.push_back(window.end_month);
    stability_series.ys.push_back(window.stability);
  }
  eval::AsciiChartOptions chart_options;
  chart_options.height = 14;
  CHURNLAB_ASSIGN_OR_RETURN(
      const std::string chart,
      eval::RenderAsciiChart({stability_series}, chart_options));
  std::printf("\n%s", chart.c_str());

  std::printf(
      "\npaper reference: stability ~1 while loyal; the month-20 decrease\n"
      "links to a coffee loss and the sharper month-22 decrease to losing\n"
      "milk, sponge and cheese.\n");

  if (csv_path != nullptr) {
    CHURNLAB_RETURN_NOT_OK(table.WriteCsv(csv_path));
    std::printf("wrote %s\n", csv_path);
  }
  return Status::OK();
}

}  // namespace

int main(int argc, char** argv) {
  const churnlab::Status status = Run(argc > 1 ? argv[1] : nullptr);
  if (!status.ok()) {
    std::fprintf(stderr, "fig2_trajectory failed: %s\n",
                 status.ToString().c_str());
    return 1;
  }
  return 0;
}
