// Ablation: which of the RFM baseline's predictor families carries the
// attrition signal. The paper's baseline uses all three (recency,
// frequency, monetary, per Buckinx & Van den Poel); this harness retrains
// the logistic regression with each family alone and with all combined.

#include <cstdio>
#include <string>
#include <vector>

#include "common/macros.h"
#include "common/string_util.h"
#include "datagen/scenario.h"
#include "eval/experiment.h"
#include "eval/report.h"
#include "rfm/rfm_model.h"

namespace {

struct Variant {
  const char* name;
  bool recency;
  bool frequency;
  bool monetary;
};

churnlab::Status Run() {
  using namespace churnlab;

  datagen::PaperScenarioConfig scenario;
  scenario.population.num_loyal = 800;
  scenario.population.num_defecting = 800;
  scenario.seed = 42;
  CHURNLAB_ASSIGN_OR_RETURN(const retail::Dataset dataset,
                            datagen::MakePaperDataset(scenario));

  const std::vector<Variant> variants = {
      {"R only", true, false, false},
      {"F only", false, true, false},
      {"M only", false, false, true},
      {"R+F+M (paper)", true, true, true},
  };
  const std::vector<int32_t> report_months = {16, 18, 20, 22, 24};

  std::printf("=== Ablation: RFM predictor families ===\n\n");
  std::vector<std::string> headers = {"variant"};
  for (const int32_t month : report_months) {
    headers.push_back("AUROC@" + std::to_string(month));
  }
  eval::TextTable table(headers);

  for (const Variant& variant : variants) {
    rfm::RfmModelOptions options;
    options.features.window_span_months = 2;
    options.features.use_recency = variant.recency;
    options.features.use_frequency = variant.frequency;
    options.features.use_monetary = variant.monetary;
    CHURNLAB_ASSIGN_OR_RETURN(const rfm::RfmModel model,
                              rfm::RfmModel::Make(options));
    CHURNLAB_ASSIGN_OR_RETURN(const core::ScoreMatrix scores,
                              model.ScoreDataset(dataset));
    CHURNLAB_ASSIGN_OR_RETURN(
        const std::vector<eval::WindowAuroc> series,
        eval::AurocPerWindow(dataset, scores,
                             eval::ScoreOrientation::kHigherIsPositive, 2));
    std::vector<std::string> row = {variant.name};
    for (const int32_t month : report_months) {
      std::string cell = "-";
      for (const eval::WindowAuroc& point : series) {
        if (point.report_month == month) cell = FormatDouble(point.auroc, 3);
      }
      row.push_back(cell);
    }
    table.AddRow(std::move(row));
  }
  std::printf("%s", table.ToString().c_str());
  return Status::OK();
}

}  // namespace

int main() {
  const churnlab::Status status = Run();
  if (!status.ok()) {
    std::fprintf(stderr, "ablation_rfm_features failed: %s\n",
                 status.ToString().c_str());
    return 1;
  }
  return 0;
}
