// Reproduces Figure 1 of the paper: AUROC of attrition detection by month,
// for the stability model (alpha = 2, 2-month windows, segment granularity)
// against the RFM logistic-regression baseline, on the synthetic paper
// scenario (attrition onset at month 18).
//
// Expected shape (see EXPERIMENTS.md): both models near 0.5 before the
// onset month, then a steep rise; the paper reports stability AUROC = 0.79
// two months after onset and "similar performances" for the two models.
//
// Usage: fig1_auroc [csv_output_path]

#include <cstdio>
#include <string>

#include "common/macros.h"
#include "common/stopwatch.h"
#include "common/string_util.h"
#include "eval/ascii_chart.h"
#include "eval/experiment.h"
#include "eval/report.h"

namespace {

churnlab::Status Run(const char* csv_path) {
  using namespace churnlab;

  eval::Figure1Options options;
  options.scenario.population.num_loyal = 1500;
  options.scenario.population.num_defecting = 1500;
  options.scenario.seed = 42;
  options.bootstrap_resamples = 300;  // 95% CI on the stability AUROC

  Stopwatch stopwatch;
  CHURNLAB_ASSIGN_OR_RETURN(const eval::ExperimentRunner runner,
                            eval::ExperimentRunner::Make(options));
  CHURNLAB_ASSIGN_OR_RETURN(const eval::Figure1Result result, runner.Run());
  const double experiment_seconds = stopwatch.LapSeconds();

  std::printf("=== Figure 1: attrition-detection AUROC by month ===\n\n");
  std::printf("scenario: %zu loyal + %zu defecting customers, onset month %d\n",
              result.stats.num_loyal, result.stats.num_defecting,
              result.onset_month);
  std::printf("stability model: alpha=%.2f, window=%d months, segments\n",
              options.stability.significance.alpha,
              options.stability.window_span_months);
  std::printf("RFM baseline: logistic regression, %zu-fold CV scoring\n\n",
              options.rfm.cv_folds);

  eval::TextTable table(
      {"month", "stability AUROC", "95% CI", "RFM AUROC", ""});
  for (const eval::Figure1Row& row : result.rows) {
    table.AddRow({std::to_string(row.report_month),
                  FormatDouble(row.stability_auroc, 3),
                  "[" + FormatDouble(row.stability_auroc_lower, 3) + ", " +
                      FormatDouble(row.stability_auroc_upper, 3) + "]",
                  FormatDouble(row.rfm_auroc, 3),
                  row.report_month == result.onset_month
                      ? "<- start of attrition"
                      : ""});
  }
  std::printf("%s", table.ToString().c_str());

  // Terminal rendition of the figure itself.
  eval::ChartSeries stability_series;
  stability_series.label = "stability model";
  stability_series.glyph = 's';
  eval::ChartSeries rfm_series;
  rfm_series.label = "RFM model";
  rfm_series.glyph = 'r';
  for (const eval::Figure1Row& row : result.rows) {
    stability_series.xs.push_back(row.report_month);
    stability_series.ys.push_back(row.stability_auroc);
    rfm_series.xs.push_back(row.report_month);
    rfm_series.ys.push_back(row.rfm_auroc);
  }
  eval::AsciiChartOptions chart_options;
  chart_options.x_marker = result.onset_month;
  CHURNLAB_ASSIGN_OR_RETURN(
      const std::string chart,
      eval::RenderAsciiChart({rfm_series, stability_series}, chart_options));
  std::printf("\n%s", chart.c_str());
  std::printf("  ('|' column: start of attrition, month %d)\n",
              result.onset_month);

  std::printf("\npaper reference: AUROC ~0.5 before onset; stability = 0.79 "
              "two months\nafter onset; RFM and stability comparable.\n");
  std::printf("elapsed: experiment %.1f s, reporting %.1f s\n",
              experiment_seconds, stopwatch.LapSeconds());

  if (csv_path != nullptr) {
    CHURNLAB_RETURN_NOT_OK(table.WriteCsv(csv_path));
    std::printf("wrote %s\n", csv_path);
  }
  return Status::OK();
}

}  // namespace

int main(int argc, char** argv) {
  const churnlab::Status status = Run(argc > 1 ? argv[1] : nullptr);
  if (!status.ok()) {
    std::fprintf(stderr, "fig1_auroc failed: %s\n", status.ToString().c_str());
    return 1;
  }
  return 0;
}
