// Ablation: how the stability model's two hyper-parameters shape detection.
//
//  - alpha controls how fast significance accrues and decays: larger alpha
//    weights long-standing habits more heavily, smaller alpha reacts faster
//    but is noisier.
//  - window span trades detection latency (long windows report late)
//    against within-window noise (short windows miss slow shoppers).
//
// Prints the post-onset detection AUROC trajectory for each combination on
// a shared dataset.

#include <cstdio>
#include <string>
#include <vector>

#include "common/macros.h"
#include "common/string_util.h"
#include "core/stability_model.h"
#include "datagen/scenario.h"
#include "eval/experiment.h"
#include "eval/report.h"

namespace {

churnlab::Status Run() {
  using namespace churnlab;

  datagen::PaperScenarioConfig scenario;
  scenario.population.num_loyal = 800;
  scenario.population.num_defecting = 800;
  scenario.seed = 42;
  CHURNLAB_ASSIGN_OR_RETURN(const retail::Dataset dataset,
                            datagen::MakePaperDataset(scenario));
  const int32_t onset = scenario.population.attrition.onset_month;

  const std::vector<double> alphas = {1.25, 2.0, 4.0};
  const std::vector<int32_t> spans = {1, 2, 3};
  const std::vector<int32_t> report_months = {16, 18, 20, 22, 24};

  std::printf("=== Ablation: alpha x window span (onset month %d) ===\n\n",
              onset);
  std::vector<std::string> headers = {"window", "alpha"};
  for (const int32_t month : report_months) {
    headers.push_back("AUROC@" + std::to_string(month));
  }
  eval::TextTable table(headers);

  for (const int32_t span : spans) {
    for (const double alpha : alphas) {
      core::StabilityModelOptions options;
      options.significance.alpha = alpha;
      options.window_span_months = span;
      CHURNLAB_ASSIGN_OR_RETURN(const core::StabilityModel model,
                                core::StabilityModel::Make(options));
      CHURNLAB_ASSIGN_OR_RETURN(const core::ScoreMatrix scores,
                                model.ScoreDataset(dataset));
      CHURNLAB_ASSIGN_OR_RETURN(
          const std::vector<eval::WindowAuroc> series,
          eval::AurocPerWindow(dataset, scores,
                               eval::ScoreOrientation::kLowerIsPositive,
                               span));
      std::vector<std::string> row = {std::to_string(span),
                                      FormatDouble(alpha, 2)};
      for (const int32_t month : report_months) {
        // Use the latest window whose report month does not exceed `month`
        // (spans that do not divide the month report the covering window).
        double auroc = 0.5;
        bool found = false;
        for (const eval::WindowAuroc& point : series) {
          if (point.report_month <= month) {
            auroc = point.auroc;
            found = true;
          }
        }
        row.push_back(found ? FormatDouble(auroc, 3) : "-");
      }
      table.AddRow(std::move(row));
    }
  }
  std::printf("%s", table.ToString().c_str());
  std::printf(
      "\nreading guide: short windows react at month %d already; longer\n"
      "windows and larger alpha smooth the pre-onset baseline toward 0.5\n"
      "at the cost of slower post-onset rise.\n",
      onset + 1);
  return Status::OK();
}

}  // namespace

int main() {
  const churnlab::Status status = Run();
  if (!status.ok()) {
    std::fprintf(stderr, "ablation_alpha_window failed: %s\n",
                 status.ToString().c_str());
    return 1;
  }
  return 0;
}
