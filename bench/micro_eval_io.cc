// Microbenchmarks of evaluation (AUROC, ROC curve) and dataset I/O
// (CSV and binary round trips).

#include <cstdio>

#include <benchmark/benchmark.h>

#include "common/random.h"
#include "datagen/scenario.h"
#include "eval/roc.h"
#include "retail/dataset.h"

namespace churnlab {
namespace {

void MakeScores(size_t n, std::vector<double>* scores,
                std::vector<int>* labels) {
  Rng rng(3);
  scores->clear();
  labels->clear();
  for (size_t i = 0; i < n; ++i) {
    const int label = rng.Bernoulli(0.5) ? 1 : 0;
    scores->push_back(rng.Normal(label == 1 ? 1.0 : 0.0, 1.0));
    labels->push_back(label);
  }
}

void BM_Auroc(benchmark::State& state) {
  std::vector<double> scores;
  std::vector<int> labels;
  MakeScores(static_cast<size_t>(state.range(0)), &scores, &labels);
  for (auto _ : state) {
    auto auroc =
        eval::Auroc(scores, labels, eval::ScoreOrientation::kHigherIsPositive);
    benchmark::DoNotOptimize(auroc);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Auroc)->Arg(1000)->Arg(100000);

void BM_RocCurve(benchmark::State& state) {
  std::vector<double> scores;
  std::vector<int> labels;
  MakeScores(static_cast<size_t>(state.range(0)), &scores, &labels);
  for (auto _ : state) {
    auto curve = eval::RocCurve(scores, labels,
                                eval::ScoreOrientation::kHigherIsPositive);
    benchmark::DoNotOptimize(curve);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_RocCurve)->Arg(10000);

const retail::Dataset& SharedDataset() {
  static const retail::Dataset* const kDataset = [] {
    datagen::PaperScenarioConfig scenario;
    scenario.population.num_loyal = 150;
    scenario.population.num_defecting = 150;
    scenario.seed = 5;
    auto result = datagen::MakePaperDataset(scenario);
    result.status().Abort("paper dataset");
    return new retail::Dataset(std::move(result).ValueOrDie());
  }();
  return *kDataset;
}

void BM_SaveLoadBinary(benchmark::State& state) {
  const retail::Dataset& dataset = SharedDataset();
  const std::string path = "/tmp/churnlab_bench_dataset.clb";
  for (auto _ : state) {
    dataset.SaveBinary(path).Abort("save");
    auto loaded = retail::Dataset::LoadBinary(path);
    loaded.status().Abort("load");
    benchmark::DoNotOptimize(loaded);
  }
  std::remove(path.c_str());
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(dataset.store().num_receipts()));
}
BENCHMARK(BM_SaveLoadBinary)->Unit(benchmark::kMillisecond);

void BM_SaveLoadCsv(benchmark::State& state) {
  const retail::Dataset& dataset = SharedDataset();
  const std::string prefix = "/tmp/churnlab_bench_dataset";
  for (auto _ : state) {
    dataset.SaveCsv(prefix).Abort("save");
    auto loaded = retail::Dataset::LoadCsv(prefix);
    loaded.status().Abort("load");
    benchmark::DoNotOptimize(loaded);
  }
  std::remove((prefix + ".receipts.csv").c_str());
  std::remove((prefix + ".taxonomy.csv").c_str());
  std::remove((prefix + ".labels.csv").c_str());
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(dataset.store().num_receipts()));
}
BENCHMARK(BM_SaveLoadCsv)->Unit(benchmark::kMillisecond);

void BM_SimulateDataset(benchmark::State& state) {
  for (auto _ : state) {
    datagen::PaperScenarioConfig scenario;
    scenario.population.num_loyal = static_cast<size_t>(state.range(0)) / 2;
    scenario.population.num_defecting = scenario.population.num_loyal;
    scenario.seed = 11;
    auto dataset = datagen::MakePaperDataset(scenario);
    dataset.status().Abort("simulate");
    benchmark::DoNotOptimize(dataset);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SimulateDataset)->Arg(200)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace churnlab
