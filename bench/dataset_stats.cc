// Prints the simulated dataset's shape next to the statistics the paper
// reports for its proprietary corpus (section 3): 6M customers, receipts
// from May 2012 to August 2014 (28 months), 4M products grouped into 3,388
// segments by a taxonomy.
//
// The synthetic corpus reproduces the *ratios and dynamics* at laptop
// scale; this harness makes the substitution explicit and auditable.

#include <cstdio>

#include "common/macros.h"
#include "common/string_util.h"
#include "datagen/scenario.h"
#include "eval/report.h"

namespace {

churnlab::Status Run() {
  using namespace churnlab;

  datagen::PaperScenarioConfig scenario;
  scenario.population.num_loyal = 1500;
  scenario.population.num_defecting = 1500;
  scenario.seed = 42;
  CHURNLAB_ASSIGN_OR_RETURN(const retail::Dataset dataset,
                            datagen::MakePaperDataset(scenario));
  const retail::DatasetStats stats = dataset.ComputeStats();

  std::printf("=== Dataset statistics: paper corpus vs simulated corpus ===\n\n");
  eval::TextTable table({"statistic", "paper (proprietary)", "simulated"});
  table.AddRow({"customers", "6,000,000",
                FormatWithThousandsSeparators(
                    static_cast<int64_t>(stats.num_customers))});
  table.AddRow({"time span (months)", "28 (May 2012 - Aug 2014)",
                std::to_string(stats.num_months)});
  table.AddRow({"products", "4,000,000",
                FormatWithThousandsSeparators(
                    static_cast<int64_t>(stats.num_distinct_items))});
  table.AddRow({"taxonomy segments", "3,388",
                FormatWithThousandsSeparators(
                    static_cast<int64_t>(stats.num_segments))});
  table.AddRow({"receipts", "(not reported)",
                FormatWithThousandsSeparators(
                    static_cast<int64_t>(stats.num_receipts))});
  table.AddRow({"avg basket size", "(not reported)",
                FormatDouble(stats.avg_basket_size, 2)});
  table.AddRow({"avg receipts/customer", "(not reported)",
                FormatDouble(stats.avg_receipts_per_customer, 2)});
  table.AddRow({"loyal cohort", "(ids provided by retailer)",
                std::to_string(stats.num_loyal)});
  table.AddRow({"defecting cohort", "(ids provided by retailer)",
                std::to_string(stats.num_defecting)});
  std::printf("%s", table.ToString().c_str());
  std::printf(
      "\nfull dataset detail:\n%s", stats.ToString().c_str());
  return Status::OK();
}

}  // namespace

int main() {
  const churnlab::Status status = Run();
  if (!status.ok()) {
    std::fprintf(stderr, "dataset_stats failed: %s\n",
                 status.ToString().c_str());
    return 1;
  }
  return 0;
}
