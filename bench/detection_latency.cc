// Operational view of Figure 1: not "how separable are the cohorts at
// month m" but "how many months after a customer starts defecting does the
// beta rule catch them, and how many loyal customers does it falsely flag
// over the whole period". Sweeps beta to show the latency / false-alarm
// trade-off.

#include <cstdio>
#include <string>

#include "common/macros.h"
#include "common/string_util.h"
#include "core/stability_model.h"
#include "datagen/scenario.h"
#include "eval/latency.h"
#include "eval/report.h"

namespace {

churnlab::Status Run() {
  using namespace churnlab;

  datagen::PaperScenarioConfig scenario;
  scenario.population.num_loyal = 1000;
  scenario.population.num_defecting = 1000;
  scenario.seed = 42;
  CHURNLAB_ASSIGN_OR_RETURN(const retail::Dataset dataset,
                            datagen::MakePaperDataset(scenario));

  core::StabilityModelOptions options;
  options.significance.alpha = 2.0;
  options.window_span_months = 2;
  CHURNLAB_ASSIGN_OR_RETURN(const core::StabilityModel model,
                            core::StabilityModel::Make(options));
  CHURNLAB_ASSIGN_OR_RETURN(const core::ScoreMatrix scores,
                            model.ScoreDataset(dataset));

  std::printf("=== Detection latency of the beta rule ===\n\n");
  std::printf("flag when Stability <= beta (after a 2-window burn-in);\n"
              "onset at month ~18; horizon ends at month 28.\n\n");
  eval::TextTable table({"beta", "defectors flagged", "median lag (months)",
                         "mean lag", "loyal false alarms"});
  for (const double beta : {0.3, 0.45, 0.6, 0.75}) {
    eval::LatencyOptions latency_options;
    latency_options.beta = beta;
    latency_options.window_span_months = 2;
    CHURNLAB_ASSIGN_OR_RETURN(
        const eval::LatencyResult result,
        eval::MeasureDetectionLatency(dataset, scores, latency_options));
    table.AddRow(
        {FormatDouble(beta, 2),
         std::to_string(result.defectors_flagged) + "/" +
             std::to_string(result.defectors),
         FormatDouble(result.median_lag_months, 1),
         FormatDouble(result.mean_lag_months, 1),
         FormatDouble(result.false_alarm_rate * 100.0, 1) + "%"});
  }
  std::printf("%s", table.ToString().c_str());
  std::printf(
      "\nreading guide: lower beta flags fewer loyal customers but waits\n"
      "longer for defectors' stability to sink; beta ~0.6 catches 97%% of\n"
      "defectors a median of two windows (~4 months) after onset at a\n"
      "~16%% lifetime false-alarm rate — the operating curve a retention\n"
      "campaign budgets against.\n");
  return Status::OK();
}

}  // namespace

int main() {
  const churnlab::Status status = Run();
  if (!status.ok()) {
    std::fprintf(stderr, "detection_latency failed: %s\n",
                 status.ToString().c_str());
    return 1;
  }
  return 0;
}
